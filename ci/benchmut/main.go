// Command benchmut rewrites one BENCH_<scenario>.json with every case's
// ns_per_op (and derived ns/event) multiplied by a factor. CI uses it to
// fabricate a known regression and assert `gretel-bench compare`
// actually exits non-zero — a gate that cannot trip is worse than none.
//
// Usage: benchmut <in.json> <factor> <out.json>
package main

import (
	"fmt"
	"os"
	"strconv"

	"gretel/internal/benchrunner"
)

func main() {
	if len(os.Args) != 4 {
		fmt.Fprintln(os.Stderr, "usage: benchmut <in.json> <factor> <out.json>")
		os.Exit(2)
	}
	factor, err := strconv.ParseFloat(os.Args[2], 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmut: bad factor %q: %v\n", os.Args[2], err)
		os.Exit(2)
	}
	res, err := benchrunner.LoadBenchFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmut:", err)
		os.Exit(1)
	}
	for i := range res.Cases {
		res.Cases[i].NsPerOp *= factor
		if v, ok := res.Cases[i].Extra["ns/event"]; ok {
			res.Cases[i].Extra["ns/event"] = v * factor
		}
	}
	b, err := benchrunner.MarshalResult(res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmut:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(os.Args[3], b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchmut:", err)
		os.Exit(1)
	}
}
