#!/usr/bin/env bash
# Export smoke: end-to-end soak of the telemetry export pipeline against
# a real gretel-tsdb. Two phases:
#
#   1. Healthy path — run a replay with -telemetry-export, then assert
#      the exporter's closed ledger balances (delivered + shed ==
#      sampled, nothing shed) and that the TSDB answers /query with
#      per-interval history for a core pipeline series.
#
#   2. Receiver outage — kill -9 the TSDB mid-run, restart it on the
#      same port and data directory, and assert the restarted store
#      recovers its segments, the exporter's retry loop drains the
#      spooled points into it, and any loss is counted in the ledger —
#      never silent.
set -euo pipefail

port=6201
out=$(mktemp -d)
tsdb_pid=
trap 'kill "$tsdb_pid" 2>/dev/null || true; rm -rf "$out"' EXIT

go build -o "$out/gretel" ./cmd/gretel
go build -o "$out/gretel-tsdb" ./cmd/gretel-tsdb

start_tsdb() {
  "$out/gretel-tsdb" -listen "127.0.0.1:$port" -dir "$out/tsdb-data" \
    >>"$out/tsdb.log" 2>&1 &
  tsdb_pid=$!
  for _ in $(seq 1 100); do
    if curl -fs "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: gretel-tsdb not ready on port $port" >&2
  cat "$out/tsdb.log" >&2
  exit 1
}

# ledger <run.log> prints "sampled delivered shed" from the summary and
# asserts delivered + shed == sampled with at least one delivery.
check_ledger() {
  local line
  line=$(grep '^export:' "$1" || true)
  if [ -z "$line" ]; then
    echo "FAIL: no export ledger in summary" >&2
    cat "$1" >&2
    exit 1
  fi
  # shellcheck disable=SC2086
  set -- $line # export: sampled N delivered N shed N
  local sampled=$3 delivered=$5 shed=$7
  if [ $((delivered + shed)) -ne "$sampled" ] || [ "$delivered" -eq 0 ]; then
    echo "FAIL: unbalanced export ledger: $line" >&2
    exit 1
  fi
  echo "$sampled $delivered $shed"
}

start_tsdb

# --- Phase 1: healthy receiver ---
"$out/gretel" -replay 40000 -fault-every 500 -quiet \
  -telemetry-export "http://127.0.0.1:$port" \
  -export-interval 200ms -replay-pace 25ms >"$out/run1.log" 2>&1

read -r sampled delivered shed <<<"$(check_ledger "$out/run1.log")"
echo "phase 1: sampled $sampled delivered $delivered shed $shed"
if [ "$shed" -ne 0 ]; then
  echo "FAIL: points shed against a healthy receiver" >&2
  exit 1
fi

# The soak history must be queryable: find the core.events_ingested
# series key (it carries host/proc/rev tags) and pull its points.
curl -fs "http://127.0.0.1:$port/series" -o "$out/series1.json"
key=$(grep -o '"series":"core\.events_ingested[^"]*"' "$out/series1.json" \
  | head -1 | sed 's/^"series":"//; s/"$//')
if [ -z "$key" ]; then
  echo "FAIL: core.events_ingested series missing from /series" >&2
  head -c 2000 "$out/series1.json" >&2
  exit 1
fi
curl -fsG --data-urlencode "series=$key" "http://127.0.0.1:$port/query" \
  -o "$out/query1.json"
count=$(grep -o '"count":[0-9]*' "$out/query1.json" | cut -d: -f2)
if [ -z "$count" ] || [ "$count" -lt 2 ]; then
  echo "FAIL: /query returned $count intervals for $key; want per-interval history" >&2
  head -c 2000 "$out/query1.json" >&2
  exit 1
fi
echo "phase 1: $count intervals queryable for $key"

# --- Phase 2: kill the receiver mid-run, restart, retry must drain ---
"$out/gretel" -replay 40000 -fault-every 500 -quiet \
  -telemetry-export "http://127.0.0.1:$port" \
  -export-interval 200ms -replay-pace 100ms >"$out/run2.log" 2>&1 &
gpid=$!

sleep 1
kill -9 "$tsdb_pid" 2>/dev/null || true
wait "$tsdb_pid" 2>/dev/null || true
echo "phase 2: TSDB killed mid-run"
sleep 1
start_tsdb
echo "phase 2: TSDB restarted"
if ! grep -q 'recovered .* points' "$out/tsdb.log"; then
  echo "FAIL: restarted TSDB did not recover its segments" >&2
  cat "$out/tsdb.log" >&2
  exit 1
fi

wait "$gpid"
read -r sampled delivered shed <<<"$(check_ledger "$out/run2.log")"
echo "phase 2: sampled $sampled delivered $delivered shed $shed (loss counted, not silent)"

# The retry loop must have landed post-restart points on top of what
# segment recovery restored.
stats=$(curl -fs "http://127.0.0.1:$port/stats")
points=$(echo "$stats" | grep -o '"points":[0-9]*' | cut -d: -f2)
recovered=$(echo "$stats" | grep -o '"recovered":[0-9]*' | cut -d: -f2)
if [ -z "$points" ] || [ -z "$recovered" ] || [ "$points" -le "$recovered" ]; then
  echo "FAIL: no points delivered after the restart (points=$points recovered=$recovered)" >&2
  echo "$stats" >&2
  exit 1
fi
echo "export smoke OK: $points points stored ($recovered via recovery), ledger balanced through the outage"
