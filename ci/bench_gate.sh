#!/usr/bin/env bash
# Bench gate: run every scenario in short mode, compare against the
# committed BENCH_*.json baselines at the repo root, and fail on
# regressions past tolerance.
#
# Tolerance policy (see DESIGN.md "Performance trajectory"): timing and
# throughput metrics get wide tolerances because baseline and fresh runs
# come from different machines — the gate only catches order-of-magnitude
# collapses there. Allocation metrics (allocs/op, B/op and their
# per-event forms) are machine-independent for identical builds and gate
# at the default 10%, which is where real regressions (a new allocation
# on the hot path) show up first.
#
# The script also fabricates a 2x ns_per_op regression from the fresh
# ingest run and asserts the gate trips on it: a gate that cannot fail
# is worse than none.
set -euo pipefail

TIMING_TOL="ns_per_op=3.0,ns/event=3.0,events/s=0.75,Mbps=0.75,delivered/s=0.75"

out=out/bench
rm -rf "$out"
mkdir -p "$out"

go build -o "$out/gretel-bench" ./cmd/gretel-bench

"$out/gretel-bench" run -scenario all -short -iterations 3 -report json -out-dir "$out"

echo
echo "=== regression gate (vs committed baselines) ==="
"$out/gretel-bench" compare -baseline . -fresh "$out" -tol "$TIMING_TOL"

echo
echo "=== gate self-test: synthetic 2x regression must fail ==="
selftest=$(mktemp -d)
trap 'rm -rf "$selftest"' EXIT
go run ./ci/benchmut "$out/BENCH_ingest.json" 2.0 "$selftest/BENCH_ingest.json"
if "$out/gretel-bench" compare -scenario ingest -baseline "$out" -fresh "$selftest" -quiet; then
  echo "FAIL: compare accepted a synthetic 2x ns_per_op regression" >&2
  exit 1
fi
echo "gate self-test OK: synthetic regression rejected"
