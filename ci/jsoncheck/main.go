// Command jsoncheck exits non-zero unless every argument is a file
// holding syntactically valid JSON. CI uses it to assert exported
// Chrome traces parse without depending on tools outside the Go
// toolchain.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			fmt.Fprintf(os.Stderr, "%s: invalid JSON: %v\n", path, err)
			os.Exit(1)
		}
	}
}
