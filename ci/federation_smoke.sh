#!/usr/bin/env bash
# Federation smoke, two phases.
#
# Phase 1 — parity: a federation of ONE member must be byte-identical
# to a bare analyzer. Run the same deterministic replay twice — once
# bare, once as a single-member fleet pulled by gretel-coord — and
# diff the coordinator's merged /reports NDJSON against the bare run's
# report lines.
#
# Phase 2 — failover: two live analyzers behind a coordinator, one
# agent resolving its assignment via -coord. kill -9 the assigned
# analyzer mid-burst; the coordinator must declare it dead, bump the
# epoch, and reassign, and the agent's spool ring must replay the
# retained stream into the survivor so its final per-agent ledger
# shows zero missing frames and zero duplicates.
set -euo pipefail

out=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$out"
}
trap cleanup EXIT

go build -o "$out/gretel" ./cmd/gretel
go build -o "$out/gretel-agent" ./cmd/gretel-agent
go build -o "$out/gretel-coord" ./cmd/gretel-coord

wait_http() { # url attempts
  for _ in $(seq 1 "${2:-100}"); do
    if curl -fs "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

EVENTS=40000
FAULT_EVERY=500

# ---- Phase 1: one-member federation parity ----

"$out/gretel" -replay "$EVENTS" -fault-every "$FAULT_EVERY" -json \
  2>"$out/log.base" | grep '^{' >"$out/reports.base" || true
n=$(wc -l <"$out/reports.base")
echo "phase 1: baseline produced $n reports"
if [ "$n" -eq 0 ]; then
  echo "FAIL: bare baseline produced no reports" >&2
  cat "$out/log.base" >&2
  exit 1
fi

"$out/gretel" -replay "$EVENTS" -fault-every "$FAULT_EVERY" -json \
  -telemetry 127.0.0.1:16267 -linger 60s \
  >"$out/reports.solo" 2>"$out/log.solo" &
pids+=($!)
wait_http "http://127.0.0.1:16267/healthz" || {
  echo "FAIL: single-member analyzer never became healthy" >&2
  cat "$out/log.solo" >&2
  exit 1
}

# EventAddr is only handed to agents; the replay member never uses it.
"$out/gretel-coord" -listen 127.0.0.1:16270 \
  -member solo,127.0.0.1:1,http://127.0.0.1:16267 \
  -probe-interval 100ms -pull-interval 50ms \
  >"$out/coord1.out" 2>"$out/coord1.log" &
pids+=($!)
wait_http "http://127.0.0.1:16270/cluster" || {
  echo "FAIL: coordinator API never came up" >&2
  cat "$out/coord1.log" >&2
  exit 1
}

# Wait for the coordinator to pull the member's full report history.
for _ in $(seq 1 200); do
  curl -fs "http://127.0.0.1:16270/reports" -o "$out/reports.merged" 2>/dev/null || true
  if [ -s "$out/reports.merged" ] && [ "$(wc -l <"$out/reports.merged")" -ge "$n" ]; then
    break
  fi
  sleep 0.1
done
merged=$(wc -l <"$out/reports.merged")
echo "phase 1: coordinator merged $merged reports"

if ! diff -u "$out/reports.base" "$out/reports.merged" >"$out/parity.diff"; then
  echo "FAIL: one-member federation output differs from the bare analyzer" >&2
  head -40 "$out/parity.diff" >&2
  exit 1
fi
echo "phase 1: PASS — merged /reports byte-identical to the bare analyzer"

for pid in "${pids[@]}"; do kill -9 "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; done
pids=()

# ---- Phase 2: failover mid-burst ----

"$out/gretel" -listen 127.0.0.1:16166 -telemetry 127.0.0.1:16167 \
  -member alpha -quiet >"$out/alpha.out" 2>"$out/alpha.log" &
alpha_pid=$!
pids+=("$alpha_pid")
"$out/gretel" -listen 127.0.0.1:16266 -telemetry 127.0.0.1:16268 \
  -member beta -quiet >"$out/beta.out" 2>"$out/beta.log" &
beta_pid=$!
pids+=("$beta_pid")
wait_http "http://127.0.0.1:16167/healthz" && wait_http "http://127.0.0.1:16268/healthz" || {
  echo "FAIL: analyzers never became healthy" >&2
  exit 1
}

"$out/gretel-coord" -listen 127.0.0.1:16170 \
  -member alpha,127.0.0.1:16166,http://127.0.0.1:16167 \
  -member beta,127.0.0.1:16266,http://127.0.0.1:16268 \
  -probe-interval 100ms -down-fails 2 -pull-interval 50ms \
  >"$out/coord2.out" 2>"$out/coord2.log" &
coord_pid=$!
pids+=("$coord_pid")
# /healthz is 200 only once every member probes alive.
wait_http "http://127.0.0.1:16170/healthz" || {
  echo "FAIL: coordinator never saw both members alive" >&2
  cat "$out/coord2.log" >&2
  exit 1
}

victim=$(curl -fs "http://127.0.0.1:16170/assign?agent=smoke" |
  grep -o '"member":"[^"]*"' | cut -d'"' -f4 || true)
case "$victim" in
alpha) victim_pid=$alpha_pid victim_tel=16167 survivor=beta survivor_pid=$beta_pid ;;
beta) victim_pid=$beta_pid victim_tel=16268 survivor=alpha survivor_pid=$alpha_pid ;;
*)
  echo "FAIL: could not resolve assignment for key 'smoke' (got '$victim')" >&2
  exit 1
  ;;
esac
echo "phase 2: key 'smoke' assigned to $victim; survivor is $survivor"

# Spool sized to retain the whole stream so failover replays everything.
"$out/gretel-agent" -coord http://127.0.0.1:16170 -name smoke \
  -parallel 50 -faults 4 -duration 2m -spool 262144 \
  -heartbeat 100ms -drain-timeout 60s \
  >"$out/agent.log" 2>&1 &
agent_pid=$!
pids+=("$agent_pid")

# Kill without warning once the victim has admitted real traffic.
killed=0
for _ in $(seq 1 300); do
  seq_now=$(curl -fs "http://127.0.0.1:$victim_tel/agents" 2>/dev/null |
    grep -o '"LastSeq":[0-9]*' | head -1 | cut -d: -f2 || true)
  if [ -n "${seq_now:-}" ] && [ "$seq_now" -gt 100 ]; then
    if ! kill -0 "$agent_pid" 2>/dev/null; then
      echo "FAIL: agent finished before the kill; failover smoke is vacuous" >&2
      exit 1
    fi
    kill -9 "$victim_pid"
    wait "$victim_pid" 2>/dev/null || true
    killed=1
    echo "phase 2: killed $victim at last_seq=$seq_now with the agent mid-burst"
    break
  fi
  sleep 0.05
done
if [ "$killed" -ne 1 ]; then
  echo "FAIL: victim $victim never admitted agent traffic" >&2
  cat "$out/agent.log" >&2
  exit 1
fi

# The agent must finish cleanly: resolve the replacement on redial,
# replay the spool, drain. A non-zero exit means frames were lost.
if ! wait "$agent_pid"; then
  echo "FAIL: agent did not drain cleanly after failover" >&2
  cat "$out/agent.log" >&2
  exit 1
fi
grep -q '^.*done: ' "$out/agent.log" || {
  echo "FAIL: agent log has no completion line" >&2
  cat "$out/agent.log" >&2
  exit 1
}

cluster=$(curl -fs "http://127.0.0.1:16170/cluster")
epoch=$(printf '%s' "$cluster" | grep -o '"epoch":[0-9]*' | head -1 | cut -d: -f2 || true)
if [ -z "$epoch" ] || [ "$epoch" -lt 2 ]; then
  echo "FAIL: coordinator never bumped the epoch after the kill (epoch=$epoch)" >&2
  printf '%s\n' "$cluster" >&2
  exit 1
fi
reassigned=$(curl -fs "http://127.0.0.1:16170/assign?agent=smoke" |
  grep -o '"member":"[^"]*"' | cut -d'"' -f4 || true)
if [ "$reassigned" != "$survivor" ]; then
  echo "FAIL: key 'smoke' not reassigned to survivor (got '$reassigned')" >&2
  exit 1
fi
echo "phase 2: epoch $epoch, key 'smoke' reassigned to $survivor"

# Merged reports must flow from the survivor (the agent injected 4 faults).
got_reports=0
for _ in $(seq 1 100); do
  mr=$(curl -fs "http://127.0.0.1:16170/cluster" | grep -o '"merged":[0-9]*' | cut -d: -f2 || true)
  if [ -n "${mr:-}" ] && [ "$mr" -gt 0 ]; then
    got_reports=1
    echo "phase 2: coordinator merged $mr reports fleet-wide"
    break
  fi
  sleep 0.1
done
if [ "$got_reports" -ne 1 ]; then
  echo "FAIL: coordinator merged no reports" >&2
  cat "$out/coord2.log" >&2
  exit 1
fi

# Survivor ledger: the replayed stream must close with zero loss.
kill -INT "$survivor_pid"
wait "$survivor_pid" 2>/dev/null || true
ledger=$(grep '^agent: ' "$out/$survivor.out" || true)
echo "phase 2: survivor ledger: ${ledger:-<none>}"
if ! printf '%s\n' "$ledger" | grep -q 'missing=0 dups=0'; then
  echo "FAIL: survivor ledger shows loss or duplicates after failover" >&2
  cat "$out/$survivor.out" >&2
  exit 1
fi
echo "phase 2: PASS — failover replayed the stream with zero loss"
echo "federation smoke: PASS"
