#!/usr/bin/env bash
# WAL crash smoke: kill -9 a WAL-enabled replay mid-burst, restart it,
# and require the restarted process's report stream to match an
# uninterrupted no-WAL run byte-for-byte. This is the end-to-end form
# of the package's loss bound: everything the analyzer acked before
# the kill survives in the log, boot recovery replays it, and the
# resumed run produces exactly the reports the uninterrupted run does.
#
# -replay-pace stretches the burst so the kill reliably lands while
# events are still being appended; the restart check asserts the kill
# actually interrupted the run (a kill that lands after completion
# would make the byte-identity test vacuous).
set -euo pipefail

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go build -o "$out/gretel" ./cmd/gretel

EVENTS=40000
FAULT_EVERY=500

# Baseline: uninterrupted, no WAL.
"$out/gretel" -replay "$EVENTS" -fault-every "$FAULT_EVERY" -json \
  2>"$out/log.base" | grep '^{' >"$out/reports.base" || true
n=$(wc -l <"$out/reports.base")
echo "baseline: $n reports"
if [ "$n" -eq 0 ]; then
  echo "FAIL: baseline produced no reports" >&2
  cat "$out/log.base" >&2
  exit 1
fi

# WAL run, killed mid-burst. Pace the replay (~2ms per 1000 events)
# so the process is still appending when the kill fires.
wal="$out/wal"
"$out/gretel" -replay "$EVENTS" -fault-every "$FAULT_EVERY" -json \
  -wal "$wal" -wal-fsync none -replay-pace 2ms \
  2>"$out/log.kill" | grep '^{' >"$out/reports.kill" &
pid=$!

# Wait for the log to show real progress, then kill without warning.
for _ in $(seq 1 200); do
  if [ -d "$wal" ] && [ "$(du -sb "$wal" 2>/dev/null | cut -f1)" -gt 100000 ]; then
    break
  fi
  sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

written=$(wc -l <"$out/reports.kill")
echo "killed run: $written reports before SIGKILL"
if [ "$written" -ge "$n" ]; then
  echo "FAIL: kill landed after the run completed ($written reports); smoke is vacuous" >&2
  exit 1
fi

# Restart the same command: boot recovery replays the WAL (reprinting
# every report, since -replay self-test mode ignores the cursor), then
# the synthesized stream resumes where the log ends.
"$out/gretel" -replay "$EVENTS" -fault-every "$FAULT_EVERY" -json \
  -wal "$wal" -wal-fsync none \
  2>"$out/log.restart" | grep '^{' >"$out/reports.restart" || true

if ! grep -q 'wal: recovered' "$out/log.restart"; then
  echo "FAIL: restart did not recover from the WAL" >&2
  cat "$out/log.restart" >&2
  exit 1
fi
if ! grep -q 'resuming after' "$out/log.restart"; then
  echo "FAIL: restart did not resume the synthesized stream mid-burst" >&2
  cat "$out/log.restart" >&2
  exit 1
fi

if ! diff -u "$out/reports.base" "$out/reports.restart" >"$out/diff"; then
  echo "FAIL: restarted run's reports differ from the uninterrupted baseline" >&2
  head -40 "$out/diff" >&2
  exit 1
fi

echo "wal smoke OK: kill -9 mid-burst, restart reports byte-identical to uninterrupted run"
echo "  ($(grep -o 'wal: recovered [0-9]* events[^)]*)' "$out/log.restart" | head -1))"
