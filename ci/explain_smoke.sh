#!/usr/bin/env bash
# Explain-mode smoke: run a short faulty replay with evidence tracing
# on, then hit the /traces endpoints while the analyzer lingers and
# assert that at least one trace was recorded with a non-empty
# candidate-rejection list, and that the Chrome-trace export emits
# Perfetto-loadable events.
set -euo pipefail

port=6199
out=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

go build -o "$out/gretel" ./cmd/gretel
"$out/gretel" -replay 40000 -fault-every 500 -quiet -explain \
  -telemetry "127.0.0.1:$port" -linger 60s >"$out/run.log" 2>&1 &
pid=$!

# Wait for the replay to finish and the trace store to fill.
for _ in $(seq 1 60); do
  if curl -fs "http://127.0.0.1:$port/traces?format=ndjson" -o "$out/traces.ndjson" \
      && [ -s "$out/traces.ndjson" ]; then
    break
  fi
  sleep 1
done

if ! [ -s "$out/traces.ndjson" ]; then
  echo "FAIL: /traces served no evidence traces" >&2
  cat "$out/run.log" >&2
  exit 1
fi
traces=$(wc -l <"$out/traces.ndjson")
echo "got $traces evidence traces"

if ! grep -q '"reason":"' "$out/traces.ndjson"; then
  echo "FAIL: no trace carries a candidate rejection reason" >&2
  exit 1
fi
rejections=$(grep -c '"reason":"' "$out/traces.ndjson" || true)
echo "rejection reasons recorded: $rejections"

# The index and one full trace render as text.
curl -fs "http://127.0.0.1:$port/traces" -o "$out/index.txt"
head -3 "$out/index.txt"
curl -fs "http://127.0.0.1:$port/traces/1" >/dev/null

# The Chrome export holds complete-span events Perfetto can load.
curl -fs "http://127.0.0.1:$port/traces/1?format=chrome" -o "$out/chrome.json"
if ! grep -q '"ph":"X"' "$out/chrome.json"; then
  echo "FAIL: chrome export has no complete events" >&2
  exit 1
fi
go run ./ci/jsoncheck "$out/chrome.json"
echo "explain smoke OK"
