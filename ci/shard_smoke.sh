#!/usr/bin/env bash
# Shard-ablation smoke: the sharded ingest front-end must be invisible
# in the output. Run the same faulty replay with -ingest-shards 0
# (classic inline ingest), 1, and 4, and require the JSON report
# streams to match byte-for-byte. Wall-clock summary lines vary run to
# run, so only the report lines (the JSON objects on stdout) count.
set -euo pipefail

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

go build -o "$out/gretel" ./cmd/gretel

for shards in 0 1 4; do
  "$out/gretel" -replay 40000 -fault-every 500 -json \
    -ingest-shards "$shards" 2>"$out/log.$shards" |
    grep '^{' >"$out/reports.$shards" || true
  n=$(wc -l <"$out/reports.$shards")
  echo "ingest-shards=$shards: $n reports"
  if [ "$n" -eq 0 ]; then
    echo "FAIL: no reports with -ingest-shards $shards" >&2
    cat "$out/log.$shards" >&2
    exit 1
  fi
done

for shards in 1 4; do
  if ! diff -u "$out/reports.0" "$out/reports.$shards" >"$out/diff.$shards"; then
    echo "FAIL: reports differ between -ingest-shards 0 and $shards" >&2
    head -40 "$out/diff.$shards" >&2
    exit 1
  fi
done

echo "shard smoke OK: reports byte-identical across ingest-shards {0,1,4}"
