// Live introspection: /metrics in flat text (grep-friendly "name value"
// lines) or JSON (?format=json), the expvar dump on /debug/vars, and
// net/http/pprof on /debug/pprof/ for CPU and heap profiles of a running
// analyzer or agent — the run-time half of keeping GRETEL measurably
// lightweight.

package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WriteText renders the snapshot as sorted "name value" lines.
// Histograms expand into .count/.mean_ms/.p50_ms/.p90_ms/.p99_ms/.max_ms
// lines so the whole dump stays flat and diffable.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Funcs)+6*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Funcs {
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, h.Count),
			fmt.Sprintf("%s.mean_ms %.3f", name, h.MeanMs),
			fmt.Sprintf("%s.p50_ms %.3f", name, h.P50Ms),
			fmt.Sprintf("%s.p90_ms %.3f", name, h.P90Ms),
			fmt.Sprintf("%s.p99_ms %.3f", name, h.P99Ms),
			fmt.Sprintf("%s.max_ms %.3f", name, h.MaxMs))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry snapshot on any path: flat text by
// default, JSON with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	})
}

// ready is the process-wide readiness bit behind /healthz. It starts
// false: a freshly exec'd analyzer that is still loading its fingerprint
// library or binding its listener answers 503, and flips to 200 the
// moment the main loop is live. Harnesses (the bench runner, smoke
// scripts, future federation coordinators) poll /healthz instead of
// sleeping an arbitrary grace period.
var ready atomic.Bool

// notReadyReason, when non-empty, replaces the generic "starting" body
// while the readiness bit is down — e.g. "recovering: wal replay 3/12"
// during boot-time WAL recovery, so a poller can tell a long replay
// from a hung process.
var notReadyReason atomic.Value // string

// SetReady flips the process readiness bit served by /healthz. Going
// ready clears any not-ready reason.
func SetReady(ok bool) {
	ready.Store(ok)
	if ok {
		notReadyReason.Store("")
	}
}

// SetNotReadyReason records why the process is not ready yet; /healthz
// serves it as the 503 body until SetReady(true). Call it freely while
// booting (e.g. per replayed WAL segment) — it is just an atomic store.
func SetNotReadyReason(reason string) { notReadyReason.Store(reason) }

// Ready reports the current readiness bit.
func Ready() bool { return ready.Load() }

// healthz answers 200 "ok" once SetReady(true) has been called and
// 503 before (and after SetReady(false), e.g. during drain) — with the
// SetNotReadyReason detail when one is set, "starting" otherwise. The
// body is flat text like /metrics; ?format=json wraps the same answer
// for machine consumers.
func healthz(w http.ResponseWriter, req *http.Request) {
	ok := ready.Load()
	status, body := http.StatusOK, "ok"
	if !ok {
		status, body = http.StatusServiceUnavailable, "starting"
		if r, _ := notReadyReason.Load().(string); r != "" {
			body = r
		}
	}
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"status": body, "ready": ok})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintln(w, body)
}

// Mount attaches an extra handler to the introspection mux — how
// subsystems with their own live views (e.g. the evidence-trace store's
// /traces endpoints) join the telemetry surface without this package
// importing them.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// NewMux builds the introspection mux: /metrics (the registry),
// /healthz (readiness), /debug/vars (expvar), /debug/pprof/
// (profiles), plus any extra mounts. The explicit pprof registrations mirror what net/http/pprof
// does on http.DefaultServeMux, which we deliberately avoid mutating.
func NewMux(r *Registry, mounts ...Mount) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/healthz", healthz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
	}
	return mux
}

// publishOnce guards the expvar names, which panic on double Publish.
var (
	publishMu   sync.Mutex
	publishSeen = map[*Registry]bool{}
)

func publishExpvar(r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishSeen[r] {
		return
	}
	publishSeen[r] = true
	name := "gretel"
	if r != std {
		name = fmt.Sprintf("gretel.%p", r)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Serve starts the introspection endpoint on addr (e.g. ":6167"; ":0"
// picks a free port) for the given registry (nil means the default),
// with any extra mounts attached to the mux. It registers
// process.uptime_seconds and process.goroutines, publishes the registry
// through expvar, and serves until the process exits or the returned
// shutdown function is called. Returns the bound address.
func Serve(addr string, r *Registry, mounts ...Mount) (string, func() error, error) {
	if r == nil {
		r = std
	}
	start := time.Now()
	r.RegisterFunc("process.uptime_seconds", func() float64 {
		return time.Since(start).Seconds()
	})
	r.RegisterFunc("process.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	publishExpvar(r)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(r, mounts...)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
