package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newPopulatedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("core.events_ingested").Add(42)
	r.Gauge("transport.active_connections").Set(3)
	h := r.Histogram("core.window_match")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	return r
}

func TestHandlerText(t *testing.T) {
	r := newPopulatedRegistry()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"core.events_ingested 42",
		"transport.active_connections 3",
		"core.window_match.count 100",
		"core.window_match.p50_ms",
		"core.window_match.p99_ms",
		"core.window_match.max_ms 100.000",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("text metrics missing %q; body:\n%s", want, body)
		}
	}
	// Flat text must be sorted line-by-line for diffability.
	lines := strings.Split(strings.TrimSpace(body), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("output not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
}

// TestHandlerTextContentType is the regression test for the /metrics
// text view's Content-Type: browsers and curl pipelines must see
// text/plain with an explicit charset, never Go's sniffed default.
func TestHandlerTextContentType(t *testing.T) {
	r := newPopulatedRegistry()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("text /metrics Content-Type = %q, want %q", ct, "text/plain; charset=utf-8")
	}
}

// TestMuxMounts verifies extra handlers (the /traces endpoints in
// production) attach to the introspection mux without disturbing the
// built-in routes.
func TestMuxMounts(t *testing.T) {
	r := newPopulatedRegistry()
	mux := NewMux(r, Mount{Pattern: "/extra", Handler: http.HandlerFunc(
		func(w http.ResponseWriter, req *http.Request) { io.WriteString(w, "mounted") })})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/extra", nil))
	if rec.Code != 200 || rec.Body.String() != "mounted" {
		t.Fatalf("/extra: code=%d body=%q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "core.events_ingested 42") {
		t.Fatalf("/metrics after mounting: code=%d", rec.Code)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := newPopulatedRegistry()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding JSON metrics: %v", err)
	}
	if snap.Counters["core.events_ingested"] != 42 {
		t.Fatalf("counter = %d, want 42", snap.Counters["core.events_ingested"])
	}
	h := snap.Histograms["core.window_match"]
	if h.Count != 100 || h.P50Ms < 40 || h.P50Ms > 60 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
}

// TestServeLive boots the real endpoint on a free port and checks
// /metrics, the JSON view, and the pprof index all answer.
func TestServeLive(t *testing.T) {
	r := newPopulatedRegistry()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "core.events_ingested 42") {
		t.Fatalf("/metrics: code %d, body %q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, "\"counters\"") {
		t.Fatalf("/metrics?format=json: code %d, body %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars: code %d", code)
	}
	// Serve registered the process funcs on the registry it was given.
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "process.goroutines") {
		t.Fatalf("/metrics missing process funcs: code %d, body %q", code, body)
	}
}

func TestHealthzReadiness(t *testing.T) {
	mux := NewMux(newPopulatedRegistry())
	get := func(path string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	SetReady(false)
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("before SetReady: code=%d body=%q, want 503 starting", code, body)
	}
	SetReady(true)
	defer SetReady(false)
	if !Ready() {
		t.Fatal("Ready() false after SetReady(true)")
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("after SetReady: code=%d body=%q, want 200 ok", code, body)
	}
	code, body := get("/healthz?format=json")
	if code != http.StatusOK {
		t.Fatalf("json healthz code = %d", code)
	}
	var parsed struct {
		Status string `json:"status"`
		Ready  bool   `json:"ready"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("healthz json: %v (%q)", err, body)
	}
	if parsed.Status != "ok" || !parsed.Ready {
		t.Fatalf("healthz json = %+v", parsed)
	}
}

func TestHealthzNotReadyReason(t *testing.T) {
	mux := NewMux(newPopulatedRegistry())
	get := func(path string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	SetReady(false)
	SetNotReadyReason("recovering: wal replay 3/12")
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "recovering: wal replay 3/12") {
		t.Fatalf("reason not served: code=%d body=%q", code, body)
	}
	// The reason flows into the JSON answer too.
	if _, body := get("/healthz?format=json"); !strings.Contains(body, "wal replay 3/12") {
		t.Fatalf("json body missing reason: %q", body)
	}
	// Going ready clears the reason: a later drain shows plain "starting".
	SetReady(true)
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("ready after reason: code=%d body=%q", code, body)
	}
	SetReady(false)
	defer SetReady(false)
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("reason leaked past SetReady(true): code=%d body=%q", code, body)
	}
}
