package export

import (
	"os"
	"sort"
	"time"

	"gretel/internal/telemetry"
)

// Sampler turns the telemetry registry into per-interval line-protocol
// points. Each Sample call captures every counter, gauge, func, and
// histogram, computes the delta against the previous capture with
// monotonic-reset detection (a value that went backwards means the
// registry was reset; the current capture becomes the interval), and
// appends one point per metric tagged with the process provenance.
//
// The sampler reuses its snapshot buffers and per-histogram captures, so
// a 1s interval stays allocation-free once the metric set stabilizes.
// It is not safe for concurrent use; the Exporter serializes calls.
type Sampler struct {
	reg      *telemetry.Registry
	baseTags []Tag

	snap         telemetry.Snapshot
	prevCounters map[string]uint64
	hists        map[string]*histState

	names   []string           // reusable sorted-iteration scratch
	fields  []Field            // reusable per-point field scratch
	scratch telemetry.HistSnap // reusable interval-delta workspace
}

type histState struct {
	h         *telemetry.Histogram
	prev, cur telemetry.HistSnap
}

// hostTag maps an os.Hostname result onto a usable tag value. A failed
// lookup or an empty name both fall back to "unknown": the line-protocol
// encoder drops tags with empty values entirely (see AppendPoint), which
// would silently change the series key and split one host's history into
// two series the moment the hostname became resolvable again.
func hostTag(host string, err error) string {
	if err != nil || host == "" {
		return "unknown"
	}
	return host
}

// NewSampler builds a sampler over reg. Every point carries the base
// tags host (os.Hostname), proc, and rev (short git revision from the
// build provenance, "+dirty" when the tree was modified).
func NewSampler(reg *telemetry.Registry, proc string) *Sampler {
	prov := telemetry.Prov()
	host := hostTag(os.Hostname())
	rev := prov.GitRev
	if rev == "" {
		rev = "unknown"
	}
	if prov.Dirty {
		// "-dirty", not the conventional "+dirty": the series key goes
		// into /query URLs verbatim, where '+' decodes to a space.
		rev += "-dirty"
	}
	if proc == "" {
		proc = "gretel"
	}
	return &Sampler{
		reg: reg,
		baseTags: []Tag{
			{Key: "host", Value: host},
			{Key: "proc", Value: proc},
			{Key: "rev", Value: rev},
		},
		prevCounters: make(map[string]uint64),
		hists:        make(map[string]*histState),
	}
}

// Sample captures the registry, appends one line-protocol point per
// metric onto dst, and returns the extended buffer plus the number of
// points appended. Metrics are emitted in sorted name order so the
// stream is deterministic for a given registry state.
func (s *Sampler) Sample(dst []byte, now time.Time) ([]byte, int) {
	s.reg.SnapshotInto(&s.snap)
	ts := now.UnixNano()
	points := 0

	// Counters: per-interval delta plus the running total. A total that
	// went backwards means the registry was reset mid-run (the
	// experiments harness does this between experiments); the current
	// total is then the whole interval.
	s.names = s.names[:0]
	for name := range s.snap.Counters {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	for _, name := range s.names {
		total := s.snap.Counters[name]
		delta := total
		if prev, ok := s.prevCounters[name]; ok && total >= prev {
			delta = total - prev
		}
		s.prevCounters[name] = total
		s.fields = append(s.fields[:0],
			Field{Key: "delta", Value: float64(delta), Integer: true},
			Field{Key: "total", Value: float64(total), Integer: true},
		)
		dst, points = s.emit(dst, name, ts, points)
	}

	// Gauges and funcs are instantaneous: a single value field.
	s.names = s.names[:0]
	for name := range s.snap.Gauges {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	for _, name := range s.names {
		s.fields = append(s.fields[:0],
			Field{Key: "value", Value: float64(s.snap.Gauges[name]), Integer: true})
		dst, points = s.emit(dst, name, ts, points)
	}
	s.names = s.names[:0]
	for name := range s.snap.Funcs {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	for _, name := range s.names {
		s.fields = append(s.fields[:0], Field{Key: "value", Value: s.snap.Funcs[name]})
		dst, points = s.emit(dst, name, ts, points)
	}

	// Histograms: per-interval quantiles from bucket-level deltas. Sub
	// reports false when the histogram was reset between captures; the
	// cumulative capture then stands in for the interval, mirroring the
	// counter rule.
	s.names = s.names[:0]
	for name := range s.snap.Histograms {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	for _, name := range s.names {
		st := s.hists[name]
		if st == nil {
			st = &histState{h: s.reg.Histogram(name)}
			s.hists[name] = st
		}
		st.h.Snap(&st.cur)
		// Sub mutates its receiver's buckets, and st.cur must stay
		// cumulative to serve as the next interval's baseline — delta
		// the reusable scratch copy instead.
		s.scratch.Count, s.scratch.Sum, s.scratch.Max = st.cur.Count, st.cur.Sum, st.cur.Max
		if cap(s.scratch.Buckets) < len(st.cur.Buckets) {
			s.scratch.Buckets = make([]uint64, len(st.cur.Buckets))
		}
		s.scratch.Buckets = s.scratch.Buckets[:len(st.cur.Buckets)]
		copy(s.scratch.Buckets, st.cur.Buckets)
		interval := &s.scratch
		// Sub reports false on reset, leaving scratch as the full
		// capture — which is then the interval, by the same
		// monotonic-reset rule counters use.
		interval.Sub(&st.prev)
		st.prev, st.cur = st.cur, st.prev // cumulative capture becomes next baseline
		if interval.Count == 0 {
			continue // idle interval: no latency samples to summarize
		}
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		s.fields = append(s.fields[:0],
			Field{Key: "count", Value: float64(interval.Count), Integer: true},
			Field{Key: "sum_ms", Value: float64(interval.Sum) / float64(time.Millisecond)},
			Field{Key: "p50_ms", Value: ms(interval.Quantile(0.50))},
			Field{Key: "p90_ms", Value: ms(interval.Quantile(0.90))},
			Field{Key: "p99_ms", Value: ms(interval.Quantile(0.99))},
			Field{Key: "max_ms", Value: float64(interval.MaxNS()) / float64(time.Millisecond)},
		)
		dst, points = s.emit(dst, name, ts, points)
	}
	return dst, points
}

// emit encodes one point named name with the staged s.fields.
func (s *Sampler) emit(dst []byte, name string, ts int64, points int) ([]byte, int) {
	p := Point{Name: name, Tags: s.baseTags, Fields: s.fields, TimeNS: ts}
	out, err := AppendPoint(dst, &p)
	if err != nil {
		return dst, points // NaN-only funcs etc.: nothing representable
	}
	return out, points + 1
}

// AppendSnapshot encodes a cumulative snapshot as line protocol — one
// point per metric with running totals rather than interval deltas. The
// experiments harness uses it to write out/telemetry.lp so any run can
// be bulk-loaded into gretel-tsdb. Metrics are emitted in sorted name
// order; histograms carry cumulative count/sum/quantiles.
func AppendSnapshot(dst []byte, snap *telemetry.Snapshot, tags []Tag, tsNS int64) []byte {
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Funcs)+len(snap.Histograms))
	emit := func(name string, fields []Field) {
		p := Point{Name: name, Tags: tags, Fields: fields, TimeNS: tsNS}
		if out, err := AppendPoint(dst, &p); err == nil {
			dst = out
		}
	}
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		emit(name, []Field{{Key: "total", Value: float64(snap.Counters[name]), Integer: true}})
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		emit(name, []Field{{Key: "value", Value: float64(snap.Gauges[name]), Integer: true}})
	}
	names = names[:0]
	for name := range snap.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		emit(name, []Field{{Key: "value", Value: snap.Funcs[name]}})
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		emit(name, []Field{
			{Key: "count", Value: float64(h.Count), Integer: true},
			{Key: "mean_ms", Value: h.MeanMs},
			{Key: "p50_ms", Value: h.P50Ms},
			{Key: "p90_ms", Value: h.P90Ms},
			{Key: "p99_ms", Value: h.P99Ms},
			{Key: "max_ms", Value: h.MaxMs},
		})
	}
	return dst
}

// BaseTags returns the sampler's identity tags (host/proc/rev) so
// callers composing their own points — the experiments harness writing
// telemetry.lp — stay consistent with the exported stream.
func (s *Sampler) BaseTags() []Tag {
	out := make([]Tag, len(s.baseTags))
	copy(out, s.baseTags)
	return out
}
