package export

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gretel/internal/telemetry"
)

func TestSamplerDeltasAndResetDetection(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("core.events_ingested")
	g := reg.Gauge("wal.segments")
	h := reg.Histogram("core.detect")
	reg.RegisterFunc("tracestore.traces", func() float64 { return 7 })

	s := NewSampler(reg, "test")

	c.Add(100)
	g.Set(3)
	h.Observe(8 * time.Millisecond)
	out, n := s.Sample(nil, time.Unix(100, 0))
	if n != 4 {
		t.Fatalf("first sample: %d points, want 4\n%s", n, out)
	}
	txt := string(out)
	for _, want := range []string{
		"core.events_ingested,", "delta=100i", "total=100i",
		"wal.segments,", "value=3i",
		"tracestore.traces,", "value=7",
		"core.detect,", "count=1i", "p50_ms=8", "max_ms=8",
	} {
		if !strings.Contains(txt, want) {
			t.Fatalf("first sample missing %q:\n%s", want, txt)
		}
	}

	// Second interval: counter advanced by 50, histogram idle.
	c.Add(50)
	out, n = s.Sample(nil, time.Unix(101, 0))
	if n != 3 { // idle histogram skipped
		t.Fatalf("second sample: %d points, want 3\n%s", n, out)
	}
	txt = string(out)
	if !strings.Contains(txt, "delta=50i") || !strings.Contains(txt, "total=150i") {
		t.Fatalf("second sample wrong counter delta:\n%s", txt)
	}
	if strings.Contains(txt, "core.detect") {
		t.Fatalf("idle histogram should be skipped:\n%s", txt)
	}

	// Registry reset mid-run (the experiments harness does this): the
	// post-reset total must become the interval, not a negative delta.
	reg.Reset()
	c.Add(30)
	h.Observe(2 * time.Millisecond)
	out, _ = s.Sample(nil, time.Unix(102, 0))
	txt = string(out)
	if !strings.Contains(txt, "delta=30i") || !strings.Contains(txt, "total=30i") {
		t.Fatalf("reset not detected for counter:\n%s", txt)
	}
	if !strings.Contains(txt, "count=1i") {
		t.Fatalf("reset not detected for histogram:\n%s", txt)
	}
}

func TestSamplerHistogramIntervalQuantiles(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat")
	s := NewSampler(reg, "test")

	// First interval: 100 observations at ~1ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	out, _ := s.Sample(nil, time.Unix(1, 0))
	if !strings.Contains(string(out), "count=100i") {
		t.Fatalf("first interval count wrong:\n%s", out)
	}

	// Second interval: a single 50ms observation. Interval quantiles
	// must reflect only this interval — p50 ≈ 50ms, not ~1ms.
	h.Observe(50 * time.Millisecond)
	out, _ = s.Sample(nil, time.Unix(2, 0))
	txt := string(out)
	if !strings.Contains(txt, "count=1i") {
		t.Fatalf("second interval count wrong:\n%s", txt)
	}
	if !strings.Contains(txt, "p50_ms=50") || !strings.Contains(txt, "max_ms=50") {
		t.Fatalf("interval quantiles not delta'd (want p50_ms=50, max_ms=50):\n%s", txt)
	}
}

func TestSamplerSteadyStateAllocs(t *testing.T) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Counter(fmt.Sprintf("c%d", i)).Add(uint64(i))
		reg.Gauge(fmt.Sprintf("g%d", i)).Set(int64(i))
		reg.Histogram(fmt.Sprintf("h%d", i)).Observe(time.Duration(i+1) * time.Millisecond)
	}
	s := NewSampler(reg, "test")
	buf := make([]byte, 0, 1<<16)
	ts := time.Unix(50, 0)
	// Warm up: maps, scratch slices, and histogram captures size up.
	for i := 0; i < 3; i++ {
		buf2, _ := s.Sample(buf[:0], ts)
		_ = buf2
	}
	allocs := testing.AllocsPerRun(50, func() {
		reg.Counter("c0").Inc()
		reg.Histogram("h0").Observe(time.Millisecond)
		out, _ := s.Sample(buf[:0], ts)
		if cap(out) > cap(buf) {
			buf = out[:0] // keep the grown buffer for the next round
		}
	})
	// Inc/Observe allocate nothing; the sample path may touch a few
	// map-internal allocations on some runtimes but must not rebuild
	// maps or buffers per scrape.
	if allocs > 4 {
		t.Fatalf("Sample allocates %.0f allocs/op steady-state, want ~0", allocs)
	}
}

// chaosReceiver is a fault-injecting line-protocol receiver: it can be
// killed and restarted on the same address mid-stream, and injects HTTP
// 500s with the given probability. It records every distinct point id
// it has accepted (first field of the line).
type chaosReceiver struct {
	addr    string
	failPct int

	mu   sync.Mutex
	srv  *http.Server
	ln   net.Listener
	seen map[string]bool
	rng  *rand.Rand
}

func newChaosReceiver(t *testing.T, failPct int) *chaosReceiver {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &chaosReceiver{
		addr:    ln.Addr().String(),
		failPct: failPct,
		seen:    make(map[string]bool),
		rng:     rand.New(rand.NewSource(42)),
	}
	r.start(t, ln)
	return r
}

func (r *chaosReceiver) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		r.mu.Lock()
		fail := r.rng.Intn(100) < r.failPct
		if fail {
			r.mu.Unlock()
			// Reject the whole batch: the shipper must retry it.
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		}
		sc := bufio.NewScanner(bytes.NewReader(body))
		for sc.Scan() {
			line := sc.Text()
			if line != "" {
				r.seen[line] = true
			}
		}
		r.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
}

func (r *chaosReceiver) start(t *testing.T, ln net.Listener) {
	if ln == nil {
		var err error
		for i := 0; i < 50; i++ {
			ln, err = net.Listen("tcp", r.addr)
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond) // port may linger in TIME_WAIT briefly
		}
		if err != nil {
			t.Fatalf("restart listener: %v", err)
		}
	}
	srv := &http.Server{Handler: r.handler()}
	r.mu.Lock()
	r.srv, r.ln = srv, ln
	r.mu.Unlock()
	go srv.Serve(ln)
}

func (r *chaosReceiver) kill() {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

func (r *chaosReceiver) seenCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seen)
}

// TestShipperChaosAccounting is the zero-silent-loss test: unique
// points stream through the shipper while the receiver is killed,
// restarted, and injecting 500s. After Close, delivered + shed must
// equal enqueued exactly, delivered points must all have reached the
// receiver, and nothing may be unaccounted.
func TestShipperChaosAccounting(t *testing.T) {
	recv := newChaosReceiver(t, 20)
	s := NewShipper(ShipperConfig{
		URL:        "http://" + recv.addr + "/write",
		MaxPoints:  200, // small ring so outages force shedding
		Client:     &http.Client{Timeout: time.Second},
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 40 * time.Millisecond,
	})

	const batches = 120
	const perBatch = 10
	var enqueued uint64
	for i := 0; i < batches; i++ {
		var buf []byte
		for j := 0; j < perBatch; j++ {
			p := Point{
				Name:   "chaos.point",
				Tags:   []Tag{{"id", fmt.Sprintf("b%03d-p%02d", i, j)}},
				Fields: []Field{{Key: "v", Value: 1, Integer: true}},
				TimeNS: int64(i*perBatch + j),
			}
			var err error
			buf, err = AppendPoint(buf, &p)
			if err != nil {
				t.Fatal(err)
			}
		}
		s.Enqueue(buf, perBatch)
		enqueued += perBatch

		switch i {
		case 30:
			recv.kill() // hard outage: connection refused
		case 55:
			recv.start(t, nil) // back up, still injecting 500s
		case 80:
			recv.kill()
		case 100:
			recv.start(t, nil)
		}
		time.Sleep(time.Millisecond)
	}

	s.Drain(5 * time.Second)
	s.Close()

	st := s.Stats()
	if st.Enqueued != enqueued {
		t.Fatalf("enqueued ledger %d != %d points handed in", st.Enqueued, enqueued)
	}
	if st.Delivered+st.Shed != st.Enqueued {
		t.Fatalf("silent loss: delivered %d + shed %d != enqueued %d",
			st.Delivered, st.Shed, st.Enqueued)
	}
	if st.Buffered != 0 {
		t.Fatalf("buffered %d after Close", st.Buffered)
	}
	// At-least-once: everything the ledger says was delivered must be
	// at the receiver. (The receiver may hold more — a batch counted as
	// shed can still have physically arrived if it was overflow-shed
	// while its POST was in flight.)
	if got := uint64(recv.seenCount()); got < st.Delivered {
		t.Fatalf("receiver saw %d points < %d delivered", got, st.Delivered)
	}
	if st.Delivered == 0 {
		t.Fatal("nothing delivered — receiver never reachable?")
	}
	if st.Shed == 0 {
		t.Log("note: no shedding occurred this run (outage drained in time)")
	}
	recv.kill()
}

// TestExporterEndToEnd runs the full sampler→shipper pipeline against a
// live receiver and checks the Sampled-side ledger.
func TestExporterEndToEnd(t *testing.T) {
	recv := newChaosReceiver(t, 0)
	defer recv.kill()

	reg := telemetry.NewRegistry()
	c := reg.Counter("e2e.events")
	e, err := Start(Options{
		URL:      "http://" + recv.addr,
		Interval: 10 * time.Millisecond,
		Buffer:   1000,
		Proc:     "test",
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Add(5)
		time.Sleep(5 * time.Millisecond)
	}
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain timed out against a healthy receiver")
	}
	e.Close()
	st := e.Stats()
	if st.Sampled == 0 {
		t.Fatal("nothing sampled")
	}
	if st.Sampled != st.Enqueued {
		t.Fatalf("sampled %d != enqueued %d", st.Sampled, st.Enqueued)
	}
	if st.Delivered+st.Shed != st.Sampled {
		t.Fatalf("delivered %d + shed %d != sampled %d", st.Delivered, st.Shed, st.Sampled)
	}
	if recv.seenCount() == 0 {
		t.Fatal("receiver saw no points")
	}
}

// TestShipperEmptyBatchShedsNotPanics pins the Enqueue guard: a batch
// with points > 0 but no bytes must be shed (counted) instead of
// reaching the delivery loop, whose head-identity check dereferences
// data[0].
func TestShipperEmptyBatchShedsNotPanics(t *testing.T) {
	recv := newChaosReceiver(t, 0)
	defer recv.kill()
	s := NewShipper(ShipperConfig{
		URL:        "http://" + recv.addr + "/write",
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	s.Enqueue(nil, 3)
	s.Enqueue([]byte{}, 2)
	// A real batch after the empty ones proves the loop is still alive.
	buf, _ := AppendPoint(nil, &Point{
		Name:   "m",
		Fields: []Field{{Key: "v", Value: 1, Integer: true}},
		TimeNS: 1,
	})
	s.Enqueue(buf, 1)
	if !s.Drain(2 * time.Second) {
		t.Fatal("drain timed out — delivery loop dead?")
	}
	s.Close()
	st := s.Stats()
	if st.Enqueued != 6 || st.Shed != 5 || st.Delivered != 1 {
		t.Fatalf("ledger %+v, want enqueued=6 shed=5 delivered=1", st)
	}
}

// TestStartNormalizesURL pins the /write join: a trailing slash must
// not produce "//write" (which ServeMux would 301 and the client would
// downgrade to GET), and a garbage URL must fail Start, not retry
// forever.
func TestStartNormalizesURL(t *testing.T) {
	e, err := Start(Options{
		URL:      "http://127.0.0.1:9/",
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.shipper.url, "http://127.0.0.1:9/write"; got != want {
		t.Fatalf("shipper url %q, want %q", got, want)
	}
	e.Close()

	for _, bad := range []string{"127.0.0.1:9187", "http://", ":::nope"} {
		if _, err := Start(Options{URL: bad, Registry: telemetry.NewRegistry()}); err == nil {
			t.Fatalf("Start(%q) accepted, want error", bad)
		}
	}
}

func TestShipperOverflowShedsOldestFirst(t *testing.T) {
	// Receiver that never answers: everything backs up in the ring.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open without responding.
			defer c.Close()
		}
	}()

	s := NewShipper(ShipperConfig{
		URL:        "http://" + ln.Addr().String() + "/write",
		MaxPoints:  30,
		Client:     &http.Client{Timeout: 50 * time.Millisecond},
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	for i := 0; i < 10; i++ {
		buf, _ := AppendPoint(nil, &Point{
			Name:   "m",
			Fields: []Field{{Key: "v", Value: float64(i), Integer: true}},
			TimeNS: int64(i),
		})
		s.Enqueue(buf, 10)
	}
	s.Close()
	st := s.Stats()
	if st.Delivered+st.Shed != st.Enqueued || st.Enqueued != 100 {
		t.Fatalf("ledger broken: %+v", st)
	}
	if st.Shed < 70 {
		t.Fatalf("expected ≥70 points shed with a 30-point ring, got %d", st.Shed)
	}
}
