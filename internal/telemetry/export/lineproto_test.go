package export

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current encoder output")

// TestAppendPointGolden holds the encoder to exact bytes: tag/field
// escaping, deterministic ordering of unsorted inputs, int vs float
// forms, and the one-trailing-newline invariant — the same
// byte-determinism policy the BENCH_*.json baselines follow.
func TestAppendPointGolden(t *testing.T) {
	points := []Point{
		{
			Name: "core.events_ingested",
			Tags: []Tag{{"host", "node-a"}, {"proc", "gretel"}},
			Fields: []Field{
				{Key: "delta", Value: 128, Integer: true},
				{Key: "total", Value: 4096, Integer: true},
			},
			TimeNS: 1700000000000000000,
		},
		{
			// Unsorted tags and fields must come out in key order.
			Name: "transport.frames",
			Tags: []Tag{{"zone", "z1"}, {"host", "node-b"}, {"proc", "agent"}},
			Fields: []Field{
				{Key: "total", Value: 7, Integer: true},
				{Key: "delta", Value: 2, Integer: true},
			},
			TimeNS: 1700000001000000000,
		},
		{
			// Escaping: spaces/commas in measurement; comma/equals/space
			// in tag keys, tag values, and field keys.
			Name: "odd metric,name",
			Tags: []Tag{{"ta g", "va,lue"}, {"k=ey", "v=al"}},
			Fields: []Field{
				{Key: "fie ld", Value: 1.5},
				{Key: "f,k", Value: -3, Integer: true},
			},
			TimeNS: 42,
		},
		{
			// Floats: shortest round-trip form; very small and large.
			Name: "detect.score",
			Fields: []Field{
				{Key: "value", Value: 0.30000000000000004},
				{Key: "tiny", Value: 1e-12},
				{Key: "big", Value: 1.797e+300},
				{Key: "zero", Value: 0},
			},
			TimeNS: 0,
		},
		{
			// NaN/Inf fields are dropped; the rest survive. Control
			// bytes (newline) are rewritten so framing cannot tear.
			Name: "wal.bytes\nwritten",
			Tags: []Tag{{"seg", "wal-0001"}},
			Fields: []Field{
				{Key: "nan", Value: math.NaN()},
				{Key: "ok", Value: 9, Integer: true},
				{Key: "inf", Value: math.Inf(1)},
			},
			TimeNS: -5,
		},
		{
			// Empty tag keys/values are skipped; trailing backslash in a
			// tag value is rewritten (it would escape the delimiter).
			Name: "tracestore.spans",
			Tags: []Tag{{"", "x"}, {"y", ""}, {"path", `C:\tmp\`}},
			Fields: []Field{
				{Key: "count", Value: 3, Integer: true},
			},
			TimeNS: 1700000002123456789,
		},
	}

	var got []byte
	for i := range points {
		var err error
		got, err = AppendPoint(got, &points[i])
		if err != nil {
			t.Fatalf("AppendPoint(%q): %v", points[i].Name, err)
		}
	}

	goldenPath := filepath.Join("testdata", "lineproto.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoder output diverged from golden file\n got:\n%s\nwant:\n%s", got, want)
	}

	// Trailing-newline invariant: every point ends its own line, the
	// buffer ends in exactly one '\n', and no point tore into two lines.
	if got[len(got)-1] != '\n' {
		t.Fatal("output does not end in newline")
	}
	lines := bytes.Split(bytes.TrimSuffix(got, []byte("\n")), []byte("\n"))
	if len(lines) != len(points) {
		t.Fatalf("got %d lines for %d points (framing torn?)", len(lines), len(points))
	}
	for _, ln := range lines {
		if len(ln) == 0 {
			t.Fatal("empty line in output")
		}
	}
}

func TestAppendPointErrors(t *testing.T) {
	dst := []byte("keep")
	if out, err := AppendPoint(dst, &Point{Fields: []Field{{Key: "v", Value: 1}}, TimeNS: 1}); err == nil {
		t.Fatal("expected error for empty measurement name")
	} else if !bytes.Equal(out, dst) {
		t.Fatal("dst modified on error")
	}
	if _, err := AppendPoint(dst, &Point{Name: "m", TimeNS: 1}); err == nil {
		t.Fatal("expected error for no fields")
	}
	if _, err := AppendPoint(dst, &Point{
		Name:   "m",
		Fields: []Field{{Key: "v", Value: math.NaN()}},
		TimeNS: 1,
	}); err == nil {
		t.Fatal("expected error when all fields are unrepresentable")
	}
}

func TestAppendPointDeterministic(t *testing.T) {
	mk := func() Point {
		return Point{
			Name:   "m",
			Tags:   []Tag{{"b", "2"}, {"a", "1"}, {"c", "3"}},
			Fields: []Field{{Key: "z", Value: 1, Integer: true}, {Key: "a", Value: 2.5}},
			TimeNS: 99,
		}
	}
	p1, p2 := mk(), mk()
	out1, err1 := AppendPoint(nil, &p1)
	out2, err2 := AppendPoint(nil, &p2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("non-deterministic encoding:\n%s\n%s", out1, out2)
	}
	const want = "m,a=1,b=2,c=3 a=2.5,z=1i 99\n"
	if string(out1) != want {
		t.Fatalf("got %q want %q", out1, want)
	}
}

// TestHostTagFallbackGolden pins the empty-hostname path end to end: a
// failed or empty os.Hostname must become host=unknown, because the
// encoder silently drops tags with empty values — the golden shows both
// the dropped-tag hazard and the fallback that avoids it.
func TestHostTagFallbackGolden(t *testing.T) {
	cases := []struct {
		host string
		err  error
		want string
	}{
		{"node-7", nil, "node-7"},
		{"", nil, "unknown"},
		{"", errors.New("hostname: lookup failed"), "unknown"},
		{"stale-name", errors.New("hostname: lookup failed"), "unknown"},
	}
	for _, tc := range cases {
		if got := hostTag(tc.host, tc.err); got != tc.want {
			t.Errorf("hostTag(%q, %v) = %q, want %q", tc.host, tc.err, got, tc.want)
		}
	}

	fields := []Field{{Key: "delta", Value: 1, Integer: true}}
	var buf []byte
	var err error
	// The hazard: an empty host value changes the series key — the tag
	// vanishes instead of encoding as host=.
	buf, err = AppendPoint(buf, &Point{
		Name:   "core.reports",
		Tags:   []Tag{{"host", ""}, {"proc", "gretel"}},
		Fields: fields,
		TimeNS: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf, []byte("host")) {
		t.Fatalf("encoder kept an empty host tag: %q", buf)
	}
	// The fix: the fallback keeps the series key stable.
	buf, err = AppendPoint(buf, &Point{
		Name:   "core.reports",
		Tags:   []Tag{{"host", hostTag("", errors.New("no hostname"))}, {"proc", "gretel"}},
		Fields: fields,
		TimeNS: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "hosttag.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", buf, want)
	}
}
