package export

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"gretel/internal/telemetry"
)

// Shipper delivers encoded line-protocol batches to a TSDB over plain
// HTTP POST. It applies the PR 3 transport discipline to metrics: a
// bounded in-memory ring of batches, jittered exponential-backoff retry
// while the receiver is down, oldest-first shedding when the ring
// overflows — every shed point counted, never silently dropped — and a
// graceful Drain/Close. At all times after Close:
//
//	delivered + shed == enqueued
//
// which the chaos test asserts across receiver kills and restarts.
// Delivery is at-least-once: a batch shed by overflow while its POST
// was in flight may still reach the receiver, but the ledger counts it
// as shed (conservative, and the sum still balances).
type Shipper struct {
	url        string
	client     *http.Client
	maxPts     int // ring capacity in points, not batches
	backoffMin time.Duration
	backoffMax time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	ring      []batch
	buffered  int // points currently in ring
	enqueued  uint64
	delivered uint64
	shed      uint64
	closed    bool

	closing chan struct{} // closed by Close; interrupts backoff sleeps
	done    chan struct{} // closed when the delivery loop exits

	rng *rand.Rand

	mDelivered *telemetry.Counter
	mShed      *telemetry.Counter
	mPosts     *telemetry.Counter
	mPostErrs  *telemetry.Counter
	mBuffered  *telemetry.Gauge
	mPost      *telemetry.Histogram
}

type batch struct {
	data   []byte
	points int
}

// ShipperConfig configures a Shipper. Zero values get defaults.
type ShipperConfig struct {
	// URL is the TSDB write endpoint (e.g. http://host:9187/write).
	URL string
	// MaxPoints bounds the ring in points; default 10000.
	MaxPoints int
	// Client overrides the HTTP client; default has a 5s timeout.
	Client *http.Client
	// BackoffMin/BackoffMax bound the retry schedule; defaults
	// 100ms / 5s. Tests tighten them.
	BackoffMin, BackoffMax time.Duration
}

// ShipperStats is the shipper's authoritative loss accounting. The
// registry counters mirror these values but can be reset mid-run (the
// experiments harness does); the struct fields cannot.
type ShipperStats struct {
	Enqueued  uint64 `json:"enqueued"`
	Delivered uint64 `json:"delivered"`
	Shed      uint64 `json:"shed"`
	Buffered  int    `json:"buffered"`
}

// NewShipper starts a shipper's delivery goroutine and returns it.
func NewShipper(cfg ShipperConfig) *Shipper {
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 10000
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = 5 * time.Second
	}
	s := &Shipper{
		url:        cfg.URL,
		client:     cfg.Client,
		maxPts:     cfg.MaxPoints,
		backoffMin: cfg.BackoffMin,
		backoffMax: cfg.BackoffMax,
		closing:    make(chan struct{}),
		done:       make(chan struct{}),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
		mDelivered: telemetry.GetCounter("export.points_delivered"),
		mShed:      telemetry.GetCounter("export.points_shed"),
		mPosts:     telemetry.GetCounter("export.posts"),
		mPostErrs:  telemetry.GetCounter("export.post_errors"),
		mBuffered:  telemetry.GetGauge("export.buffered_points"),
		mPost:      telemetry.GetHistogram("export.post"),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// Enqueue hands one encoded batch (data: line-protocol bytes, points:
// how many lines) to the delivery loop. The shipper owns data after the
// call. If the ring is full, the oldest batches are shed — counted in
// export.points_shed — until the new batch fits; a batch larger than
// the whole ring is itself shed immediately. Enqueue after Close sheds
// the batch (still counted) rather than dropping it silently.
func (s *Shipper) Enqueue(data []byte, points int) {
	if points <= 0 {
		return
	}
	s.mu.Lock()
	s.enqueued += uint64(points)
	if s.closed || len(data) == 0 {
		// Closed shipper, or a bodyless batch — which cannot be POSTed
		// and whose &data[0] would panic the loop's head-identity check:
		// shed it, counted, never silently dropped.
		s.shedLocked(uint64(points))
		s.mu.Unlock()
		return
	}
	for s.buffered+points > s.maxPts && len(s.ring) > 0 {
		old := s.ring[0]
		s.ring = s.ring[1:]
		s.buffered -= old.points
		s.shedLocked(uint64(old.points))
	}
	if points > s.maxPts {
		s.shedLocked(uint64(points))
		s.mu.Unlock()
		return
	}
	s.ring = append(s.ring, batch{data: data, points: points})
	s.buffered += points
	s.mBuffered.Set(int64(s.buffered))
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *Shipper) shedLocked(n uint64) {
	s.shed += n
	s.mShed.Add(n)
}

// loop is the delivery goroutine: take the oldest batch, POST it,
// retry with jittered exponential backoff on failure. The batch stays
// at the ring head while retrying, so overflow shedding under a dead
// receiver still evicts oldest-first.
func (s *Shipper) loop() {
	defer close(s.done)
	backoff := s.backoffMin
	for {
		s.mu.Lock()
		for len(s.ring) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.ring) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		b := s.ring[0]
		s.mu.Unlock()

		err := s.post(b.data)

		s.mu.Lock()
		// The batch may have been overflow-shed (and counted) while the
		// POST was in flight; only settle it if it is still the head.
		head := len(s.ring) > 0 && &s.ring[0].data[0] == &b.data[0]
		if head && err == nil {
			s.ring = s.ring[1:]
			s.buffered -= b.points
			s.delivered += uint64(b.points)
			s.mDelivered.Add(uint64(b.points))
			s.mBuffered.Set(int64(s.buffered))
			s.cond.Broadcast() // wake Drain waiters
		}
		if head && err != nil && s.closed {
			// Closing with a dead receiver: one failed attempt per
			// batch, then shed it so Close terminates promptly.
			s.ring = s.ring[1:]
			s.buffered -= b.points
			s.shedLocked(uint64(b.points))
			s.mBuffered.Set(int64(s.buffered))
			s.cond.Broadcast()
			err = nil // skip the backoff sleep below
		}
		s.mu.Unlock()

		if err == nil {
			backoff = s.backoffMin
			continue
		}
		// Jittered exponential backoff: sleep backoff ± 25%,
		// interruptible by Close.
		s.mu.Lock()
		jitter := time.Duration(s.rng.Int63n(int64(backoff)/2 + 1))
		s.mu.Unlock()
		t := time.NewTimer(backoff - backoff/4 + jitter)
		select {
		case <-t.C:
		case <-s.closing:
			t.Stop()
		}
		backoff *= 2
		if backoff > s.backoffMax {
			backoff = s.backoffMax
		}
	}
}

// post sends one batch; any non-2xx status or transport error counts as
// a failed attempt.
func (s *Shipper) post(data []byte) error {
	sp := s.mPost.Start()
	s.mPosts.Inc()
	resp, err := s.client.Post(s.url, "text/plain; charset=utf-8", bytes.NewReader(data))
	sp.End()
	if err != nil {
		s.mPostErrs.Inc()
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		s.mPostErrs.Inc()
		return fmt.Errorf("export: POST %s: status %d", s.url, resp.StatusCode)
	}
	return nil
}

// Drain blocks until the ring is empty (everything enqueued so far is
// delivered or shed) or the timeout elapses, reporting whether it
// drained. Points enqueued concurrently with Drain extend the wait.
func (s *Shipper) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ring) > 0 {
		if time.Now().After(deadline) {
			return false
		}
		// cond.Wait has no deadline; poll with a short sleep instead of
		// threading a timer through the delivery loop.
		s.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		s.mu.Lock()
	}
	return true
}

// Close attempts a best-effort final delivery (one attempt per buffered
// batch), then sheds whatever could not be delivered — counted, so the
// delivered + shed == enqueued ledger always balances after Close.
// Close is idempotent; Enqueue after Close sheds.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	close(s.closing)
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	s.mBuffered.Set(0)
}

// Stats returns the authoritative ledger.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShipperStats{
		Enqueued:  s.enqueued,
		Delivered: s.delivered,
		Shed:      s.shed,
		Buffered:  s.buffered,
	}
}
