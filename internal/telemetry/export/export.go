// Package export is the telemetry egress pipeline: a periodic sampler
// walks the registry, computes per-interval deltas, encodes InfluxDB
// line protocol, and hands batches to a shipper that POSTs them to
// gretel-tsdb (or any line-protocol /write endpoint) with bounded
// buffering and fully-accounted loss. See DESIGN.md "Telemetry export".
package export

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gretel/internal/telemetry"
)

// Options configures an Exporter.
type Options struct {
	// URL is the TSDB write endpoint; required.
	URL string
	// Interval between samples; default 1s.
	Interval time.Duration
	// Buffer bounds the shipper ring in points; default 10000.
	Buffer int
	// Proc names this process in the proc tag ("gretel",
	// "gretel-agent", "gretel-experiments").
	Proc string
	// Registry defaults to telemetry.Default().
	Registry *telemetry.Registry
}

// Exporter runs the sample→encode→ship loop on a ticker.
type Exporter struct {
	sampler  *Sampler
	shipper  *Shipper
	interval time.Duration

	sampled  atomic.Uint64
	mSampled *telemetry.Counter

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// ExporterStats extends the shipper ledger with the sampler's count.
// Sampled == Enqueued always (every sampled point is enqueued), so
// after Close: Delivered + Shed == Sampled.
type ExporterStats struct {
	Sampled uint64 `json:"sampled"`
	ShipperStats
}

// ErrNoURL reports Start without a destination.
var ErrNoURL = errors.New("export: no URL")

// Start builds and starts an exporter. It returns an error only for a
// missing URL; a down receiver is not an error — the shipper retries.
func Start(opts Options) (*Exporter, error) {
	if opts.URL == "" {
		return nil, ErrNoURL
	}
	// Normalize: a trailing slash would make the endpoint "…//write",
	// which ServeMux 301s; Go's client downgrades the redirected POST to
	// GET and every batch would retry until shed — silent zero delivery.
	base := strings.TrimRight(opts.URL, "/")
	if u, err := url.Parse(base); err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("export: invalid URL %q (want e.g. http://host:9187)", opts.URL)
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.Default()
	}
	e := &Exporter{
		sampler: NewSampler(opts.Registry, opts.Proc),
		shipper: NewShipper(ShipperConfig{
			URL:       base + "/write",
			MaxPoints: opts.Buffer,
		}),
		interval: opts.Interval,
		mSampled: telemetry.GetCounter("export.points_sampled"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go e.loop()
	return e, nil
}

func (e *Exporter) loop() {
	defer close(e.done)
	tick := time.NewTicker(e.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			e.sampleOnce()
		case <-e.stop:
			return
		}
	}
}

// sampleOnce captures one interval and enqueues it. The encode buffer
// is handed to the shipper (which owns it after Enqueue), so each
// interval allocates one buffer; the sampler's internal captures are
// reused.
func (e *Exporter) sampleOnce() {
	data, points := e.sampler.Sample(nil, time.Now())
	if points == 0 {
		return
	}
	e.sampled.Add(uint64(points))
	e.mSampled.Add(uint64(points))
	e.shipper.Enqueue(data, points)
}

// Drain waits for buffered points to deliver, up to timeout.
func (e *Exporter) Drain(timeout time.Duration) bool {
	return e.shipper.Drain(timeout)
}

// Close takes a final sample (so the last partial interval is not
// silently lost), stops the loop, and closes the shipper — after which
// Delivered + Shed == Sampled.
func (e *Exporter) Close() {
	e.closeOnce.Do(func() {
		close(e.stop)
		<-e.done
		e.sampleOnce()
		e.shipper.Close()
	})
}

// Stats returns the loss ledger.
func (e *Exporter) Stats() ExporterStats {
	return ExporterStats{Sampled: e.sampled.Load(), ShipperStats: e.shipper.Stats()}
}
