// InfluxDB line-protocol encoder: the wire format the telemetry
// exporter ships and gretel-tsdb ingests. One point per line:
//
//	measurement[,tag=value...] field=value[,field=value...] <ns timestamp>\n
//
// Encoding is byte-deterministic — tags and fields are emitted in
// ascending key order, floats are formatted with strconv's shortest
// round-trip form, and every point ends in exactly one '\n' — the same
// determinism policy the BENCH_*.json reporters follow, so golden-file
// tests can hold the encoder to exact bytes.
//
// Escaping follows the line-protocol rules: ',', '=', and ' ' are
// backslash-escaped in tag keys, tag values, and field keys; ',' and
// ' ' in measurements. Values are numeric only (int64 with the 'i'
// suffix, float64 bare); NaN and ±Inf are not representable in line
// protocol and such fields are dropped. Control characters (including
// '\n', which would tear the framing) are rewritten to '_'.
package export

import (
	"fmt"
	"math"
	"strconv"
)

// Tag is one key=value dimension of a point's series identity.
type Tag struct {
	Key, Value string
}

// Field is one measured value. Integer selects the line-protocol int64
// form ("42i"); otherwise Value is emitted as a float64.
type Field struct {
	Key     string
	Value   float64
	Integer bool
}

// Point is one measurement at one instant.
type Point struct {
	// Name is the measurement (the metric name: "core.events_ingested").
	Name string
	// Tags identify the series; AppendPoint sorts them in place.
	Tags []Tag
	// Fields hold the values; AppendPoint sorts them in place. At least
	// one representable field is required.
	Fields []Field
	// TimeNS is the timestamp in nanoseconds since the Unix epoch.
	TimeNS int64
}

// ErrNoFields reports a point with no representable field (empty, or
// all values NaN/Inf) — line protocol cannot express it.
var ErrNoFields = fmt.Errorf("export: point has no representable fields")

// AppendPoint encodes p onto dst and returns the extended buffer. Tags
// and fields are sorted in place for deterministic output. A point with
// an empty name or no representable fields returns dst unchanged with
// an error.
func AppendPoint(dst []byte, p *Point) ([]byte, error) {
	if p.Name == "" {
		return dst, fmt.Errorf("export: point has no measurement name")
	}
	representable := 0
	for i := range p.Fields {
		if !math.IsNaN(p.Fields[i].Value) && !math.IsInf(p.Fields[i].Value, 0) {
			representable++
		}
	}
	if representable == 0 {
		return dst, ErrNoFields
	}
	sortTags(p.Tags)
	sortFields(p.Fields)

	dst = appendEscaped(dst, p.Name, escMeasurement)
	for i := range p.Tags {
		if p.Tags[i].Key == "" || p.Tags[i].Value == "" {
			continue // line protocol forbids empty tag keys/values
		}
		dst = append(dst, ',')
		dst = appendEscaped(dst, p.Tags[i].Key, escTagOrKey)
		dst = append(dst, '=')
		dst = appendEscaped(dst, p.Tags[i].Value, escTagOrKey)
	}
	dst = append(dst, ' ')
	first := true
	for i := range p.Fields {
		f := &p.Fields[i]
		if math.IsNaN(f.Value) || math.IsInf(f.Value, 0) {
			continue
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = appendEscaped(dst, f.Key, escTagOrKey)
		dst = append(dst, '=')
		if f.Integer {
			dst = strconv.AppendInt(dst, int64(f.Value), 10)
			dst = append(dst, 'i')
		} else {
			dst = strconv.AppendFloat(dst, f.Value, 'g', -1, 64)
		}
	}
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, p.TimeNS, 10)
	return append(dst, '\n'), nil
}

// sortTags and sortFields are insertion sorts: point tag/field sets are
// tiny (≤ 8 entries) and sort.Slice's interface boxing would make every
// point cost allocations — the sampler's steady-state 0-alloc budget
// forbids that.
func sortTags(t []Tag) {
	for i := 1; i < len(t); i++ {
		for j := i; j > 0 && t[j].Key < t[j-1].Key; j-- {
			t[j], t[j-1] = t[j-1], t[j]
		}
	}
}

func sortFields(f []Field) {
	for i := 1; i < len(f); i++ {
		for j := i; j > 0 && f[j].Key < f[j-1].Key; j-- {
			f[j], f[j-1] = f[j-1], f[j]
		}
	}
}

// escape classes: which bytes need a backslash in each syntactic slot.
type escClass uint8

const (
	escMeasurement escClass = iota // ',' and ' '
	escTagOrKey                    // ',', '=', ' '
)

// appendEscaped writes s with the class's escapes applied; control
// bytes (which line protocol cannot carry — '\n' would tear framing)
// are rewritten to '_'.
func appendEscaped(dst []byte, s string, class escClass) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c < 0x20 || c == 0x7f:
			dst = append(dst, '_')
			continue
		case c == ',' || c == ' ' || (c == '=' && class == escTagOrKey):
			dst = append(dst, '\\')
		case c == '\\' && i == len(s)-1:
			// A trailing backslash would escape the delimiter that
			// follows; line protocol cannot express it — rewrite.
			dst = append(dst, '_')
			continue
		}
		dst = append(dst, c)
	}
	return dst
}
