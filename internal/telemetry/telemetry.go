// Package telemetry is GRETEL's self-observation layer: stdlib-only
// counters, gauges, and latency histograms that let the pipeline measure
// its own weight — the prerequisite for the paper's "lightweight" claim
// to stay a measured property rather than an aspiration.
//
// The package is built for hot paths: counters are sharded across cache
// lines and incremented with a single atomic add, histograms are
// HDR-style log-bucketed arrays (one atomic add per observation, ~3%
// relative bucket width) with P50/P90/P99/max read out via linear
// interpolation inside the landing bucket, and spans are two time.Now
// calls around a histogram observation. Everything hangs off a
// process-wide default registry (Snapshot for tests and the experiments
// harness, Handler/Serve in http.go for live introspection).
//
// Instrumented packages obtain their metrics once at init:
//
//	var mIngested = telemetry.GetCounter("core.events_ingested")
//
// and pay only the atomic operation per event thereafter. Metric names
// are dot-separated "<stage>.<what>" (see README.md "Observability" for
// the full inventory).
package telemetry

import (
	"fmt"
	"log"
	"math"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// shardCount is the number of cache-line-isolated cells a Counter
// spreads increments over. Must be a power of two.
const shardCount = 16

// shard picks a quasi-stable shard for the calling goroutine by hashing
// the address of a stack local: goroutine stacks are allocated far apart,
// so concurrent writers land on different cache lines while a tight loop
// in one goroutine keeps hitting the same shard. (Pointer-to-uintptr is
// the safe direction of the conversion; no pointer is ever materialized
// back.)
func shard() uint64 {
	var x byte
	p := uintptr(unsafe.Pointer(&x))
	return uint64((p>>9)^(p>>17)) & (shardCount - 1)
}

// counterCell pads one shard to a cache line so adjacent shards never
// false-share.
type counterCell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing, write-sharded counter. The zero
// value is ready to use; all methods are safe for concurrent use.
type Counter struct {
	cells [shardCount]counterCell
}

// Inc adds one.
func (c *Counter) Inc() { c.cells[shard()].n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.cells[shard()].n.Add(n) }

// Value sums the shards. The result is exact once writers quiesce and a
// consistent-enough lower bound while they run.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Reset zeroes the counter in place (existing *Counter handles stay
// valid — instrumented packages cache them at init).
func (c *Counter) Reset() {
	for i := range c.cells {
		c.cells[i].n.Store(0)
	}
}

// Gauge is an instantaneous int64 value (queue depths, open
// connections). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// Histogram bucket layout: values (nanoseconds) below 2^histSubBits land
// in exact unit buckets; above that, each power-of-two range splits into
// histSubCount log-spaced sub-buckets, bounding relative bucket width at
// 1/histSubCount (~3%).
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits + 1) * histSubCount
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := uint(bits.Len64(v) - 1)
	sub := int((v >> (exp - histSubBits)) & (histSubCount - 1))
	return int(exp-histSubBits+1)*histSubCount + sub
}

// bucketBounds returns the [lo, hi) nanosecond range of a bucket.
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < histSubCount {
		return uint64(idx), uint64(idx) + 1
	}
	exp := uint(idx/histSubCount - 1 + histSubBits)
	sub := uint64(idx % histSubCount)
	width := uint64(1) << (exp - histSubBits)
	lo = 1<<exp + sub*width
	return lo, lo + width
}

// Histogram records durations into log-spaced buckets and answers
// quantile queries by interpolating inside the landing bucket. The zero
// value is ready to use; all methods are safe for concurrent use.
// Quantiles read concurrently with writers are approximate (buckets are
// loaded one at a time), which is fine for monitoring.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration (negative clamps to zero).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Span times one stage execution into a histogram.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start opens a span on this histogram.
func (h *Histogram) Start() Span { return Span{h: h, start: time.Now()} }

// End records the elapsed time and returns it. Safe on a zero Span.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d)
	return d
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average observation, zero when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-th quantile (0 < q < 1) by walking the
// cumulative bucket counts and interpolating linearly inside the bucket
// the rank lands in. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	return quantileScan(func(i int) uint64 { return h.buckets[i].Load() },
		h.count.Load(), h.max.Load(), q)
}

// quantileScan is the shared quantile interpolation over log buckets,
// used by both the live histogram and HistSnap captures. Inside the
// bucket the rank lands in it interpolates linearly over [lo, hi) —
// except in the bucket holding the recorded maximum, where the true
// upper bound is the maximum itself, not the bucket edge: there it
// interpolates over [lo, max]. Without that, the top log bucket reports
// its (up to ~3% high) edge clamped back to max, and a single-sample
// histogram answers every quantile with the bucket boundary instead of
// the one value it actually saw.
func quantileScan(bucket func(int) uint64, total, max uint64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(max)
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i := 0; i < histBuckets; i++ {
		c := float64(bucket(i))
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			top := float64(hi)
			if max >= lo && max < hi {
				top = float64(max)
			} else {
				top = float64(hi - 1)
			}
			v := float64(lo) + (rank-cum)/c*(top-float64(lo))
			if m := float64(max); v > m {
				v = m
			}
			return time.Duration(v)
		}
		cum += c
	}
	return time.Duration(max)
}

// Reset zeroes the histogram in place.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistStats is a histogram snapshot rendered in operator units.
type HistStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Stats snapshots the histogram.
func (h *Histogram) Stats() HistStats {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return HistStats{
		Count:  h.Count(),
		MeanMs: ms(h.Mean()),
		P50Ms:  ms(h.Quantile(0.50)),
		P90Ms:  ms(h.Quantile(0.90)),
		P99Ms:  ms(h.Quantile(0.99)),
		MaxMs:  ms(h.Max()),
	}
}

// HistSnap is a raw histogram capture: the totals plus every bucket
// count, enough to compute quantiles over the *difference* of two
// captures — how the telemetry exporter turns cumulative histograms
// into per-interval latency series. The zero value is ready for Snap.
type HistSnap struct {
	Count, Sum uint64
	// Max is the cumulative maximum (nanoseconds) at capture time. A
	// histogram does not track per-interval maxima, so after Sub this
	// stays the cumulative value and quantile/max estimates clamp
	// against the tightest bound available (see MaxNS).
	Max     uint64
	Buckets []uint64
}

// Snap captures the histogram into dst, reusing dst.Buckets when it has
// capacity — steady-state captures allocate nothing.
func (h *Histogram) Snap(dst *HistSnap) {
	dst.Count = h.count.Load()
	dst.Sum = h.sum.Load()
	dst.Max = h.max.Load()
	if cap(dst.Buckets) < histBuckets {
		dst.Buckets = make([]uint64, histBuckets)
	}
	dst.Buckets = dst.Buckets[:histBuckets]
	for i := range h.buckets {
		dst.Buckets[i] = h.buckets[i].Load()
	}
}

// Sub subtracts prev from s in place, turning two cumulative captures
// into the per-interval delta. It reports false — leaving s as the full
// cumulative capture — when prev is not a prefix of s (the histogram
// was reset between captures): the caller then treats the whole current
// capture as the interval, the same monotonic-reset rule counters use.
func (s *HistSnap) Sub(prev *HistSnap) bool {
	if prev.Count == 0 {
		return true
	}
	if s.Count < prev.Count || s.Sum < prev.Sum || len(prev.Buckets) != len(s.Buckets) {
		return false
	}
	for i, p := range prev.Buckets {
		if s.Buckets[i] < p {
			return false
		}
	}
	s.Count -= prev.Count
	s.Sum -= prev.Sum
	for i, p := range prev.Buckets {
		s.Buckets[i] -= p
	}
	return true
}

// Quantile answers the q-th quantile over the capture with the same
// interpolation as Histogram.Quantile, bounded by MaxNS — exact for a
// single-sample interval whose sample is the cumulative maximum.
func (s *HistSnap) Quantile(q float64) time.Duration {
	if len(s.Buckets) == 0 {
		return 0
	}
	return quantileScan(func(i int) uint64 { return s.Buckets[i] }, s.Count, s.MaxNS(), q)
}

// MaxNS estimates the capture's maximum observation in nanoseconds: the
// cumulative maximum when it falls inside the highest non-empty bucket
// (exact for a fresh histogram or an interval that produced the max),
// otherwise that bucket's last representable value (within one bucket
// width, ~3%).
func (s *HistSnap) MaxNS() uint64 {
	if s.Count == 0 {
		return 0
	}
	for i := len(s.Buckets) - 1; i >= 0; i-- {
		if s.Buckets[i] == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		if s.Max >= lo && s.Max < hi {
			return s.Max
		}
		if s.Max < hi {
			return s.Max
		}
		return hi - 1
	}
	return 0
}

// Registry is a named collection of metrics. Get-or-create accessors are
// safe for concurrent use; instrumented packages call them once at init
// and cache the returned pointers.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc exposes a computed read-only value (uptime, goroutine
// count, external struct fields) under the given name.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// StartSpan opens a span recording into the named histogram. Hot paths
// should cache the *Histogram and call its Start method instead of
// paying the name lookup per event.
func (r *Registry) StartSpan(name string) Span { return r.Histogram(name).Start() }

// Provenance identifies the build and runtime a snapshot came from, so
// every exported measurement — /metrics JSON, out/telemetry.json from
// the experiments harness, BENCH_*.json from the bench runner — carries
// the same answer to "which code, on how many cores, produced this".
type Provenance struct {
	// GitRev is the VCS revision stamped into the binary by the go tool
	// ("unknown" when the build carries no VCS info, e.g. test binaries).
	GitRev string `json:"git_rev"`
	// Dirty reports uncommitted changes at build time (vcs.modified).
	Dirty bool `json:"dirty,omitempty"`
	// BuildTime is the commit timestamp stamped by the go tool (vcs.time,
	// RFC 3339), empty when unstamped.
	BuildTime string `json:"build_time,omitempty"`
	// GoVersion is the toolchain that built the process.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the parallelism limit at snapshot time.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// buildProv caches the per-process (build-determined) provenance fields.
var (
	buildProvOnce sync.Once
	buildProv     Provenance
)

// Prov returns the current provenance: build identity read once from
// runtime/debug.ReadBuildInfo, GOMAXPROCS read fresh (it can change at
// run time).
func Prov() Provenance {
	buildProvOnce.Do(func() {
		buildProv.GoVersion = runtime.Version()
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					buildProv.GitRev = s.Value
				case "vcs.time":
					buildProv.BuildTime = s.Value
				case "vcs.modified":
					buildProv.Dirty = s.Value == "true"
				}
			}
		}
		if buildProv.GitRev == "" {
			buildProv.GitRev = "unknown"
		}
	})
	p := buildProv
	p.GOMAXPROCS = runtime.GOMAXPROCS(0)
	return p
}

// Snapshot captures every metric's current value.
type Snapshot struct {
	Provenance Provenance           `json:"provenance"`
	Counters   map[string]uint64    `json:"counters"`
	Gauges     map[string]int64     `json:"gauges"`
	Funcs      map[string]float64   `json:"funcs,omitempty"`
	Histograms map[string]HistStats `json:"histograms"`

	// funcScratch is SnapshotInto's reusable staging area for evaluating
	// registered funcs outside the registry lock (a func is free to call
	// back into the registry; holding the read lock across that call
	// could deadlock against a waiting writer).
	funcScratch []funcEntry
}

type funcEntry struct {
	name string
	fn   func() float64
}

// Snapshot reads the registry into a fresh Snapshot. Counters and
// histograms written concurrently are captured approximately (each
// metric individually consistent).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	r.SnapshotInto(&snap)
	return snap
}

// SnapshotInto captures every metric into snap, reusing its maps and
// scratch buffers: a periodic scraper (the telemetry exporter at a 1s
// interval) reaches zero steady-state allocations once the metric set
// stabilizes, instead of rebuilding four maps per scrape. The snap must
// not be read concurrently with the next SnapshotInto on it.
func (r *Registry) SnapshotInto(snap *Snapshot) {
	snap.Provenance = Prov()
	if snap.Counters == nil {
		snap.Counters = make(map[string]uint64)
	}
	if snap.Gauges == nil {
		snap.Gauges = make(map[string]int64)
	}
	if snap.Histograms == nil {
		snap.Histograms = make(map[string]HistStats)
	}
	clear(snap.Counters)
	clear(snap.Gauges)
	clear(snap.Histograms)
	clear(snap.Funcs)
	snap.funcScratch = snap.funcScratch[:0]

	r.mu.RLock()
	for k, v := range r.counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range r.gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range r.hists {
		snap.Histograms[k] = v.Stats()
	}
	for k, fn := range r.funcs {
		snap.funcScratch = append(snap.funcScratch, funcEntry{k, fn})
	}
	r.mu.RUnlock()

	if len(snap.funcScratch) > 0 && snap.Funcs == nil {
		snap.Funcs = make(map[string]float64, len(snap.funcScratch))
	}
	for _, e := range snap.funcScratch {
		v := e.fn()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		snap.Funcs[e.name] = v
	}
}

// Reset zeroes every metric in place; cached pointers stay valid.
// Registered funcs are kept (they compute, they don't accumulate).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// std is the process-wide default registry every pipeline stage reports
// into.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// GetCounter returns a counter from the default registry.
func GetCounter(name string) *Counter { return std.Counter(name) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string) *Gauge { return std.Gauge(name) }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(name string) *Histogram { return std.Histogram(name) }

// RegisterFunc registers a computed value on the default registry.
func RegisterFunc(name string, fn func() float64) { std.RegisterFunc(name, fn) }

// StartSpan opens a span on the default registry.
func StartSpan(name string) Span { return std.StartSpan(name) }

// Snap snapshots the default registry.
func Snap() Snapshot { return std.Snapshot() }

// Reset zeroes the default registry (tests, per-run harnesses).
func Reset() { std.Reset() }

// logOnce tracks which keys have already produced a log line.
var logOnce sync.Map

// LogFirst logs the formatted message the first time key is seen and
// only counts thereafter — how failure paths surface once in the journal
// without flooding it at wire rate. Reports whether it logged.
func LogFirst(key, format string, args ...any) bool {
	if _, loaded := logOnce.LoadOrStore(key, struct{}{}); loaded {
		return false
	}
	log.Printf(format+" (first occurrence; further ones only counted)", args...)
	return true
}

// String renders a one-line registry summary (debugging aid).
func (s Snapshot) String() string {
	return fmt.Sprintf("telemetry: %d counters, %d gauges, %d histograms",
		len(s.Counters), len(s.Gauges), len(s.Histograms))
}
