package telemetry

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(24)
	if got := c.Value(); got != 1024 {
		t.Fatalf("Value = %d, want 1024", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value after Reset = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestBucketLayoutIsContiguous(t *testing.T) {
	// Every bucket's hi must equal the next bucket's lo, and bucketIndex
	// must invert bucketBounds for both endpoints of each bucket.
	prevHi := uint64(0)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo = %d, want %d (gap/overlap)", i, lo, prevHi)
		}
		if hi <= lo && i < histBuckets-1 {
			t.Fatalf("bucket %d: empty range [%d,%d)", i, lo, hi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi - 1); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", hi-1, got, i)
		}
		prevHi = hi
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	// Below 2^histSubBits ns, buckets are unit-width: quantiles are exact.
	for v := 1; v <= 31; v++ {
		h.Observe(time.Duration(v))
	}
	if got := h.Quantile(0.5); got != 16 {
		t.Fatalf("P50 over 1..31ns = %v, want 16ns", got)
	}
	if got := h.Max(); got != 31 {
		t.Fatalf("Max = %v, want 31ns", got)
	}
	if got := h.Count(); got != 31 {
		t.Fatalf("Count = %d, want 31", got)
	}
}

// TestHistogramQuantileAccuracy checks interpolation against a known
// uniform distribution: every microsecond count from 1ms to 100ms once.
// True quantiles are q*100ms; log buckets bound relative error at
// 1/histSubCount plus interpolation slack, so 5% is a safe gate.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	for us := 1000; us <= 100000; us++ {
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		relErr := (float64(got) - float64(tc.want)) / float64(tc.want)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.05 {
			t.Errorf("P%.0f = %v, want %v ±5%% (err %.1f%%)", tc.q*100, got, tc.want, relErr*100)
		}
	}
	if got, want := h.Max(), 100*time.Millisecond; got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got < want-want/20 || got > want+want/20 {
		t.Errorf("Mean = %v, want ≈%v", got, want)
	}
}

// TestHistogramQuantileAccuracyLognormal repeats the accuracy gate on a
// skewed distribution (deterministic seed).
func TestHistogramQuantileAccuracyLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	values := make([]float64, 0, 200000)
	for i := 0; i < 200000; i++ {
		// exp(N(ln(5ms), 0.7)) — latencies clustered around 5ms with a tail.
		v := 5e6 * math.Exp(rng.NormFloat64()*0.7)
		values = append(values, v)
		h.Observe(time.Duration(v))
	}
	sort.Float64s(values)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := values[int(q*float64(len(values)))]
		got := float64(h.Quantile(q))
		relErr := (got - want) / want
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.05 {
			t.Errorf("P%.0f = %v, want %v ±5%% (err %.1f%%)", q*100,
				time.Duration(got), time.Duration(want), relErr*100)
		}
	}
}

func TestHistogramEmptyAndExtremes(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty P50 = %v, want 0", got)
	}
	h.Observe(-5 * time.Second) // clamps to 0
	h.Observe(0)
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := h.Quantile(1.5); got != 0 {
		t.Fatalf("q>1 = %v, want Max=0", got)
	}
}

// TestConcurrentHammer exercises a shared Counter, Gauge, and Histogram
// from many goroutines; run under -race this is the data-race gate, and
// the final counts must be exact.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		perG       = 20000
	)
	var (
		c  Counter
		g  Gauge
		h  Histogram
		wg sync.WaitGroup
	)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i*perG+j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("Counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("Gauge = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("Histogram count = %d, want %d", got, goroutines*perG)
	}
	if got, want := h.Max(), time.Duration(goroutines*perG-1)*time.Microsecond; got != want {
		t.Errorf("Histogram max = %v, want %v", got, want)
	}
}

// TestConcurrentRegistryAccess hammers get-or-create and Snapshot
// concurrently (the -race gate for the registry maps).
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Duration(j))
				r.Gauge("depth").Set(int64(j))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*2000 {
		t.Fatalf("shared = %d, want %d", got, 8*2000)
	}
}

func TestRegistryGetOrCreateAndReset(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c1.Add(5)
	if c2 := r.Counter("a.b"); c2 != c1 {
		t.Fatal("Counter returned a different pointer for the same name")
	}
	h := r.Histogram("a.lat")
	h.Observe(time.Millisecond)
	r.RegisterFunc("a.fn", func() float64 { return 2.5 })

	snap := r.Snapshot()
	if snap.Counters["a.b"] != 5 {
		t.Fatalf("snapshot counter = %d, want 5", snap.Counters["a.b"])
	}
	if snap.Histograms["a.lat"].Count != 1 {
		t.Fatalf("snapshot hist count = %d, want 1", snap.Histograms["a.lat"].Count)
	}
	if snap.Funcs["a.fn"] != 2.5 {
		t.Fatalf("snapshot func = %g, want 2.5", snap.Funcs["a.fn"])
	}

	r.Reset()
	if c1.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset did not zero metrics in place")
	}
	c1.Inc() // cached pointer still live after Reset
	if r.Snapshot().Counters["a.b"] != 1 {
		t.Fatal("cached pointer detached from registry after Reset")
	}
}

func TestSpanRecordsIntoHistogram(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("stage.x")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d < 2*time.Millisecond {
		t.Fatalf("span measured %v, want >= 2ms", d)
	}
	st := r.Histogram("stage.x").Stats()
	if st.Count != 1 || st.MaxMs < 2 {
		t.Fatalf("histogram stats = %+v, want count 1 and max >= 2ms", st)
	}
	var zero Span
	if zero.End() != 0 {
		t.Fatal("zero Span End should be a no-op")
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	GetCounter("test.default_helper").Add(3)
	GetGauge("test.default_gauge").Set(9)
	GetHistogram("test.default_hist").Observe(time.Millisecond)
	snap := Snap()
	if snap.Counters["test.default_helper"] != 3 {
		t.Fatalf("default counter = %d, want 3", snap.Counters["test.default_helper"])
	}
	if snap.Gauges["test.default_gauge"] != 9 {
		t.Fatalf("default gauge = %d, want 9", snap.Gauges["test.default_gauge"])
	}
	if Default() != std {
		t.Fatal("Default() is not the package registry")
	}
}

func TestLogFirst(t *testing.T) {
	if !LogFirst("test.logfirst", "hello %d", 1) {
		t.Fatal("first LogFirst should log")
	}
	if LogFirst("test.logfirst", "hello %d", 2) {
		t.Fatal("second LogFirst should not log")
	}
}

func TestSnapshotCarriesProvenance(t *testing.T) {
	p := Prov()
	if p.GoVersion == "" {
		t.Error("provenance go_version empty")
	}
	if p.GOMAXPROCS < 1 {
		t.Errorf("provenance gomaxprocs = %d", p.GOMAXPROCS)
	}
	// Test binaries carry no VCS stamp; the field must still be filled.
	if p.GitRev == "" {
		t.Error("provenance git_rev empty (want a revision or \"unknown\")")
	}
	snap := NewRegistry().Snapshot()
	if snap.Provenance != p {
		t.Errorf("snapshot provenance %+v != Prov() %+v", snap.Provenance, p)
	}
}

// TestQuantileTopBucketInterpolation is the regression test for the
// top-log-bucket fix: inside the bucket holding the maximum, quantiles
// interpolate toward the recorded max, not the bucket's upper edge —
// so a single-sample histogram answers every quantile with the one
// value it saw (not the bucket boundary, and not 0 for a 0ns sample).
func TestQuantileTopBucketInterpolation(t *testing.T) {
	for _, d := range []time.Duration{0, 1, 5 * time.Millisecond, 987654321, 1<<40 + 12345} {
		h := &Histogram{}
		h.Observe(d)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if got := h.Quantile(q); got != d {
				t.Errorf("single sample %v: Quantile(%v) = %v, want the sample", d, q, got)
			}
		}
		if got := h.Stats(); got.MaxMs != float64(d)/1e6 {
			t.Errorf("single sample %v: MaxMs = %v", d, got.MaxMs)
		}
	}

	// Many samples in the max's bucket: the quantile must never exceed
	// the max, and the top quantile must land on it.
	h := &Histogram{}
	base := time.Duration(1 << 30)
	for i := 0; i < 100; i++ {
		h.Observe(base + time.Duration(i)) // all land in one log bucket
	}
	maxv := base + 99
	if got := h.Quantile(0.999); got > maxv {
		t.Errorf("P99.9 = %v beyond max %v", got, maxv)
	}
	if got := h.Quantile(1); got != maxv {
		t.Errorf("Quantile(1) = %v, want max %v", got, maxv)
	}
}

// TestHistSnapDeltaQuantiles exercises the capture-and-subtract path
// the exporter uses: quantiles over an interval's bucket deltas, with
// reset detection, and the single-sample-interval exactness regression.
func TestHistSnapDeltaQuantiles(t *testing.T) {
	h := &Histogram{}
	var prev, cur HistSnap
	h.Observe(2 * time.Millisecond)
	h.Snap(&prev)

	// One new sample this interval; it is also the cumulative max.
	h.Observe(8 * time.Millisecond)
	h.Snap(&cur)
	if !cur.Sub(&prev) {
		t.Fatal("Sub reported a reset on a monotonic histogram")
	}
	if cur.Count != 1 {
		t.Fatalf("interval count = %d, want 1", cur.Count)
	}
	want := 8 * time.Millisecond
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := cur.Quantile(q); got != want {
			t.Errorf("interval Quantile(%v) = %v, want %v (single-sample interval)", q, got, want)
		}
	}
	if got := time.Duration(cur.MaxNS()); got != want {
		t.Errorf("interval MaxNS = %v, want %v", got, want)
	}
	if got := time.Duration(cur.Sum); got != 8*time.Millisecond {
		t.Errorf("interval Sum = %v", got)
	}

	// An interval whose samples are all below the cumulative max: the
	// max estimate must come from the interval's own top bucket, within
	// one bucket width — not 0, not the stale cumulative max.
	h.Snap(&prev)
	h.Observe(1 * time.Millisecond)
	h.Snap(&cur)
	if !cur.Sub(&prev) {
		t.Fatal("Sub reported a reset")
	}
	got := time.Duration(cur.MaxNS())
	if got < 1*time.Millisecond || got > 1*time.Millisecond+time.Millisecond/16 {
		t.Errorf("interval MaxNS = %v, want ~1ms (one bucket width)", got)
	}
	if p := cur.Quantile(0.99); p < 1*time.Millisecond-time.Millisecond/16 || p > got {
		t.Errorf("interval P99 = %v, want ~1ms", p)
	}

	// Reset detection: a zeroed histogram is not a superset of prev.
	h.Reset()
	h.Observe(3 * time.Millisecond)
	h.Snap(&cur)
	if cur.Sub(&prev) {
		t.Fatal("Sub accepted a reset histogram as monotonic")
	}
	if cur.Count != 1 {
		t.Fatalf("failed Sub must leave the capture untouched; count = %d", cur.Count)
	}
}

// TestSnapshotIntoReusesBuffers pins the exporter's scrape cost: once
// the metric set is stable, SnapshotInto into a reused Snapshot must
// not allocate.
func TestSnapshotIntoReusesBuffers(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter(fmt.Sprintf("c.%d", i)).Add(uint64(i))
		r.Gauge(fmt.Sprintf("g.%d", i)).Set(int64(i))
		r.Histogram(fmt.Sprintf("h.%d", i)).Observe(time.Duration(i+1) * time.Millisecond)
	}
	r.RegisterFunc("f.0", func() float64 { return 1.5 })

	var snap Snapshot
	r.SnapshotInto(&snap) // warm the maps
	allocs := testing.AllocsPerRun(100, func() {
		r.SnapshotInto(&snap)
	})
	if allocs > 0 {
		t.Errorf("SnapshotInto steady-state allocs = %v, want 0", allocs)
	}
	if snap.Counters["c.3"] != 3 || snap.Gauges["g.5"] != 5 || snap.Funcs["f.0"] != 1.5 {
		t.Errorf("reused snapshot dropped values: %+v", snap)
	}
	if len(snap.Histograms) != 8 || snap.Histograms["h.2"].Count != 1 {
		t.Errorf("reused snapshot histograms wrong: %d entries", len(snap.Histograms))
	}

	// New metrics after the warm-up must still appear.
	r.Counter("c.new").Inc()
	r.SnapshotInto(&snap)
	if snap.Counters["c.new"] != 1 {
		t.Error("SnapshotInto missed a metric registered after warm-up")
	}
}
