package rest

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{Method: "POST", Path: "/v2.1/servers", Body: []byte(`{"server":{}}`)}
	req.Header.Set("Host", "nova")
	req.Header.Set("X-Auth-Token", "tok-123")
	raw := MarshalRequest(req)
	got, n, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d bytes", n, len(raw))
	}
	if got.Method != "POST" || got.Path != "/v2.1/servers" {
		t.Fatalf("start line mismatch: %+v", got)
	}
	if got.Header.Get("host") != "nova" || got.Header.Get("X-AUTH-TOKEN") != "tok-123" {
		t.Fatalf("headers lost: %+v", got.Header)
	}
	if !bytes.Equal(got.Body, req.Body) {
		t.Fatalf("body mismatch: %q", got.Body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{Status: 413, Body: []byte(`{"message":"Request Entity Too Large"}`)}
	resp.Header.Set("Content-Type", "application/json")
	raw := MarshalResponse(resp)
	got, n, err := ParseResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d", n, len(raw))
	}
	if got.Status != 413 || got.Reason != "Request Entity Too Large" {
		t.Fatalf("status line mismatch: %d %q", got.Status, got.Reason)
	}
	if !bytes.Equal(got.Body, resp.Body) {
		t.Fatalf("body mismatch")
	}
}

func TestResponseCustomReason(t *testing.T) {
	resp := &Response{Status: 500, Reason: "Boom"}
	got, _, err := ParseResponse(MarshalResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "Boom" {
		t.Fatalf("Reason = %q", got.Reason)
	}
}

func TestEmptyBody(t *testing.T) {
	req := &Request{Method: "GET", Path: "/v2.0/ports.json"}
	got, _, err := ParseRequest(MarshalRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Body) != 0 {
		t.Fatalf("expected empty body, got %q", got.Body)
	}
}

func TestPipelinedMessages(t *testing.T) {
	a := MarshalRequest(&Request{Method: "GET", Path: "/a"})
	b := MarshalRequest(&Request{Method: "GET", Path: "/b", Body: []byte("xyz")})
	raw := append(append([]byte{}, a...), b...)
	first, n, err := ParseRequest(raw)
	if err != nil || first.Path != "/a" {
		t.Fatalf("first parse: %v %+v", err, first)
	}
	second, n2, err := ParseRequest(raw[n:])
	if err != nil || second.Path != "/b" || string(second.Body) != "xyz" {
		t.Fatalf("second parse: %v %+v", err, second)
	}
	if n+n2 != len(raw) {
		t.Fatalf("consumed %d, want %d", n+n2, len(raw))
	}
}

func TestTruncatedMessage(t *testing.T) {
	raw := MarshalRequest(&Request{Method: "POST", Path: "/x", Body: []byte("hello world")})
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := ParseRequest(raw[:cut]); err == nil {
			// Only acceptable if the truncation happens to form a complete
			// message, which cannot occur since Content-Length covers the
			// full body.
			t.Fatalf("truncation at %d parsed successfully", cut)
		}
	}
}

func TestMalformedStartLine(t *testing.T) {
	raw := []byte("GARBAGE\r\nContent-Length: 0\r\n\r\n")
	if _, _, err := ParseRequest(raw); !errors.Is(err, ErrBadStartLine) {
		t.Fatalf("err = %v, want ErrBadStartLine", err)
	}
	if _, _, err := ParseResponse(raw); !errors.Is(err, ErrBadStartLine) {
		t.Fatalf("response err = %v, want ErrBadStartLine", err)
	}
}

func TestMalformedHeader(t *testing.T) {
	raw := []byte("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n")
	if _, _, err := ParseRequest(raw); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestBadContentLength(t *testing.T) {
	raw := []byte("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
	if _, _, err := ParseRequest(raw); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v, want ErrBadLength", err)
	}
	raw = []byte("GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
	if _, _, err := ParseRequest(raw); !errors.Is(err, ErrBadLength) {
		t.Fatalf("negative err = %v, want ErrBadLength", err)
	}
}

func TestBadResponseStatus(t *testing.T) {
	raw := []byte("HTTP/1.1 abc Odd\r\nContent-Length: 0\r\n\r\n")
	if _, _, err := ParseResponse(raw); !errors.Is(err, ErrBadStartLine) {
		t.Fatalf("err = %v, want ErrBadStartLine", err)
	}
}

func TestIsResponse(t *testing.T) {
	if IsResponse(MarshalRequest(&Request{Method: "GET", Path: "/x"})) {
		t.Error("request classified as response")
	}
	if !IsResponse(MarshalResponse(&Response{Status: 200})) {
		t.Error("response not classified")
	}
}

func TestReasonPhrase(t *testing.T) {
	if ReasonPhrase(413) != "Request Entity Too Large" {
		t.Errorf("413 phrase = %q", ReasonPhrase(413))
	}
	if ReasonPhrase(299) != "Unknown" {
		t.Errorf("unknown phrase = %q", ReasonPhrase(299))
	}
}

func TestHeaderSetReplaces(t *testing.T) {
	var h Header
	h.Set("X-A", "1")
	h.Set("x-a", "2")
	if h.Len() != 1 || h.Get("X-A") != "2" {
		t.Fatalf("Set did not replace case-insensitively: %+v", h)
	}
}

func TestNormalizePath(t *testing.T) {
	cases := map[string]string{
		"/v2.1/servers":    "/v2.1/servers",
		"/v2.1/servers/42": "/v2.1/servers/{id}",
		"/v2.1/servers/6f1c3b2a-99aa-4b1c-8d77-aabbccddeeff": "/v2.1/servers/{id}",
		"/v2/images/deadbeef01/file":                         "/v2/images/{id}/file",
		"/v2.0/ports.json":                                   "/v2.0/ports.json",
		"/v2.0/ports.json?tenant_id=77":                      "/v2.0/ports.json",
		"/v2.0/quotas/1234":                                  "/v2.0/quotas/{id}",
		"/v3/auth/tokens":                                    "/v3/auth/tokens",
		"/v2.0/security-groups":                              "/v2.0/security-groups",
		"/v2.1/servers/abc":                                  "/v2.1/servers/abc", // short hex-ish word stays
	}
	for in, want := range cases {
		if got := NormalizePath(in); got != want {
			t.Errorf("NormalizePath(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: round trip preserves method, path and body for any body bytes.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(body []byte) bool {
		req := &Request{Method: "PUT", Path: "/v2/images/x/file", Body: body}
		got, n, err := ParseRequest(MarshalRequest(req))
		return err == nil && n == len(MarshalRequest(req)) &&
			got.Method == "PUT" && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: marshaled requests always contain exactly one blank line
// separating head from body (no CRLF injection from headers we set).
func TestMarshalFraming(t *testing.T) {
	req := &Request{Method: "GET", Path: "/x"}
	req.Header.Set("X-Service", "nova")
	raw := string(MarshalRequest(req))
	if strings.Count(raw, "\r\n\r\n") != 1 {
		t.Fatalf("framing broken: %q", raw)
	}
}
