// Package rest implements a hand-rolled HTTP/1.1 wire codec for the
// inter-service REST traffic in the OpenStack simulation.
//
// OpenStack mandates that all inter-service communication happens via REST
// (§2 "Communication"). The simulator serializes every REST exchange to
// real HTTP/1.1 bytes so GRETEL's monitoring agents exercise the same
// parsing path the paper's Bro agents did: reconstruct the request line or
// status line and headers from raw bytes, without touching JSON bodies.
//
// The codec intentionally supports the subset OpenStack clients use:
// Content-Length framed bodies (no chunked transfer encoding), token
// headers, and the standard status-reason table.
package rest

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Error values returned by the parsers.
var (
	ErrShortMessage = errors.New("rest: message truncated")
	ErrBadStartLine = errors.New("rest: malformed start line")
	ErrBadHeader    = errors.New("rest: malformed header")
	ErrBadLength    = errors.New("rest: bad Content-Length")
)

const crlf = "\r\n"

// Header is an ordered list of key/value pairs. Order is preserved because
// the wire encoding must be byte-stable for deterministic replay.
type Header struct {
	pairs [][2]string
}

// Set appends or replaces the first header with the given (case-insensitive)
// key.
func (h *Header) Set(key, value string) {
	for i := range h.pairs {
		if strings.EqualFold(h.pairs[i][0], key) {
			h.pairs[i][1] = value
			return
		}
	}
	h.pairs = append(h.pairs, [2]string{key, value})
}

// Get returns the first value for the (case-insensitive) key, or "".
func (h *Header) Get(key string) string {
	for i := range h.pairs {
		if strings.EqualFold(h.pairs[i][0], key) {
			return h.pairs[i][1]
		}
	}
	return ""
}

// Len reports the number of header fields.
func (h *Header) Len() int { return len(h.pairs) }

// Pairs returns the headers in wire order. The slice aliases internal
// state; callers must not mutate it.
func (h *Header) Pairs() [][2]string { return h.pairs }

func (h *Header) write(b *bytes.Buffer) {
	for _, p := range h.pairs {
		b.WriteString(p[0])
		b.WriteString(": ")
		b.WriteString(p[1])
		b.WriteString(crlf)
	}
}

// Request is an HTTP/1.1 request message.
type Request struct {
	Method string
	// Path is the concrete request URI (with real identifiers), as sent
	// on the wire. Normalization to an API template happens in the agent.
	Path   string
	Header Header
	Body   []byte
}

// Response is an HTTP/1.1 response message.
type Response struct {
	Status int
	Reason string
	Header Header
	Body   []byte
}

// reasonPhrases covers the status codes the simulation produces. Unknown
// codes render a generic phrase; parsing accepts any phrase.
var reasonPhrases = map[int]string{
	200: "OK",
	201: "Created",
	202: "Accepted",
	204: "No Content",
	300: "Multiple Choices",
	400: "Bad Request",
	401: "Unauthorized",
	403: "Forbidden",
	404: "Not Found",
	409: "Conflict",
	413: "Request Entity Too Large",
	429: "Too Many Requests",
	500: "Internal Server Error",
	503: "Service Unavailable",
	504: "Gateway Timeout",
}

// ReasonPhrase returns the standard reason phrase for an HTTP status code.
func ReasonPhrase(status int) string {
	if r, ok := reasonPhrases[status]; ok {
		return r
	}
	return "Unknown"
}

// MarshalRequest encodes the request to HTTP/1.1 wire bytes. A
// Content-Length header is always emitted so the receiver can frame the
// body without connection teardown.
func MarshalRequest(r *Request) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1%s", r.Method, r.Path, crlf)
	r.Header.write(&b)
	fmt.Fprintf(&b, "Content-Length: %d%s%s", len(r.Body), crlf, crlf)
	b.Write(r.Body)
	return b.Bytes()
}

// MarshalResponse encodes the response to HTTP/1.1 wire bytes. If Reason is
// empty the standard phrase for the status is used.
func MarshalResponse(r *Response) []byte {
	reason := r.Reason
	if reason == "" {
		reason = ReasonPhrase(r.Status)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s%s", r.Status, reason, crlf)
	r.Header.write(&b)
	fmt.Fprintf(&b, "Content-Length: %d%s%s", len(r.Body), crlf, crlf)
	b.Write(r.Body)
	return b.Bytes()
}

// splitMessage splits raw bytes into start line, header block and body,
// honoring Content-Length. It returns the number of bytes consumed so a
// stream parser can handle back-to-back messages on one connection.
func splitMessage(raw []byte) (start string, hdr Header, body []byte, consumed int, err error) {
	headEnd := bytes.Index(raw, []byte(crlf+crlf))
	if headEnd < 0 {
		return "", Header{}, nil, 0, ErrShortMessage
	}
	head := string(raw[:headEnd])
	lines := strings.Split(head, crlf)
	if len(lines) == 0 || lines[0] == "" {
		return "", Header{}, nil, 0, ErrBadStartLine
	}
	start = lines[0]
	contentLen := 0
	for _, ln := range lines[1:] {
		k, v, ok := strings.Cut(ln, ":")
		if !ok {
			return "", Header{}, nil, 0, fmt.Errorf("%w: %q", ErrBadHeader, ln)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		hdr.pairs = append(hdr.pairs, [2]string{k, v})
		if strings.EqualFold(k, "Content-Length") {
			contentLen, err = strconv.Atoi(v)
			if err != nil || contentLen < 0 {
				return "", Header{}, nil, 0, ErrBadLength
			}
		}
	}
	bodyStart := headEnd + 4
	if len(raw) < bodyStart+contentLen {
		return "", Header{}, nil, 0, ErrShortMessage
	}
	body = raw[bodyStart : bodyStart+contentLen]
	return start, hdr, body, bodyStart + contentLen, nil
}

// ParseRequest decodes one HTTP/1.1 request from raw and reports the bytes
// consumed (trailing bytes may belong to the next pipelined message).
func ParseRequest(raw []byte) (*Request, int, error) {
	start, hdr, body, n, err := splitMessage(raw)
	if err != nil {
		return nil, 0, err
	}
	parts := strings.SplitN(start, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, 0, fmt.Errorf("%w: %q", ErrBadStartLine, start)
	}
	return &Request{Method: parts[0], Path: parts[1], Header: hdr, Body: body}, n, nil
}

// ParseResponse decodes one HTTP/1.1 response from raw and reports the
// bytes consumed.
func ParseResponse(raw []byte) (*Response, int, error) {
	start, hdr, body, n, err := splitMessage(raw)
	if err != nil {
		return nil, 0, err
	}
	parts := strings.SplitN(start, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, 0, fmt.Errorf("%w: %q", ErrBadStartLine, start)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, 0, fmt.Errorf("%w: status %q", ErrBadStartLine, parts[1])
	}
	reason := ""
	if len(parts) == 3 {
		reason = parts[2]
	}
	return &Response{Status: status, Reason: reason, Header: hdr, Body: body}, n, nil
}

// IsResponse reports whether raw starts like an HTTP response (rather than
// a request), without fully parsing it. Agents use this to classify tapped
// bytes cheaply.
func IsResponse(raw []byte) bool {
	return bytes.HasPrefix(raw, []byte("HTTP/"))
}

// NormalizePath rewrites a concrete request path into its API template by
// replacing path segments that look like identifiers (UUIDs, long hex or
// numeric ids) with "{id}". This is how agents collapse concrete URIs onto
// the finite API set without payload inspection.
func NormalizePath(path string) string {
	path, _, _ = strings.Cut(path, "?")
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if looksLikeID(s) {
			segs[i] = "{id}"
		}
	}
	return strings.Join(segs, "/")
}

// looksLikeID reports whether a path segment is a concrete identifier:
// a UUID-shaped token, a hex string of 8+ chars, or a decimal number.
func looksLikeID(s string) bool {
	if len(s) == 0 {
		return false
	}
	// Decimal identifiers.
	allDigit := true
	for _, c := range s {
		if c < '0' || c > '9' {
			allDigit = false
			break
		}
	}
	if allDigit {
		return true
	}
	// UUID-ish: hex and dashes, at least 8 hex chars, no letters beyond f.
	hexCount := 0
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
			hexCount++
		case c == '-':
		default:
			return false
		}
	}
	return hexCount >= 8
}
