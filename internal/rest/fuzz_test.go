package rest

import (
	"bytes"
	"testing"
)

// FuzzParseRequest hardens the request parser: arbitrary bytes must never
// panic, and whatever parses must re-marshal to something that parses to
// the same method/path/body.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte("GET /v2.1/servers HTTP/1.1\r\nContent-Length: 0\r\n\r\n"))
	f.Add([]byte("POST /v2/images HTTP/1.1\r\nHost: glance\r\nContent-Length: 2\r\n\r\n{}"))
	f.Add([]byte("garbage\r\n\r\n"))
	f.Add([]byte{0x01, 0x00, 0xCE})
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, n, err := ParseRequest(raw)
		if err != nil {
			return
		}
		if n <= 0 || n > len(raw) {
			t.Fatalf("consumed %d of %d", n, len(raw))
		}
		re := MarshalRequest(req)
		req2, _, err := ParseRequest(re)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if req2.Method != req.Method || req2.Path != req.Path || !bytes.Equal(req2.Body, req.Body) {
			t.Fatal("re-marshal not stable")
		}
	})
}

// FuzzParseResponse is the response-side twin.
func FuzzParseResponse(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 413 Request Entity Too Large\r\nContent-Length: 4\r\n\r\nbody"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		resp, n, err := ParseResponse(raw)
		if err != nil {
			return
		}
		if n <= 0 || n > len(raw) {
			t.Fatalf("consumed %d of %d", n, len(raw))
		}
		re := MarshalResponse(resp)
		resp2, _, err := ParseResponse(re)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if resp2.Status != resp.Status || !bytes.Equal(resp2.Body, resp.Body) {
			t.Fatal("re-marshal not stable")
		}
	})
}
