package cluster

import (
	"testing"
	"time"

	"gretel/internal/simclock"
	"gretel/internal/trace"
)

func newTestFabric() *Fabric {
	return NewFabric(simclock.New(), 42)
}

func TestAddAndLookupNodes(t *testing.T) {
	f := newTestFabric()
	f.AddNode("nova-node", "10.0.0.3", trace.SvcNova)
	f.AddNode("neutron-node", "10.0.0.4", trace.SvcNeutron)
	if f.Node("nova-node") == nil || f.Node("ghost") != nil {
		t.Fatal("Node lookup broken")
	}
	if got := f.NodeFor(trace.SvcNeutron); got == nil || got.Name != "neutron-node" {
		t.Fatalf("NodeFor(neutron) = %v", got)
	}
	if f.NodeFor(trace.SvcGlance) != nil {
		t.Fatal("NodeFor found a service with no node")
	}
	nodes := f.Nodes()
	if len(nodes) != 2 || nodes[0].Name != "neutron-node" || nodes[1].Name != "nova-node" {
		t.Fatalf("Nodes() order wrong: %v", nodes)
	}
}

func TestDefaultDependencies(t *testing.T) {
	f := newTestFabric()
	n := f.AddNode("n1", "10.0.0.1", trace.SvcNova)
	for _, dep := range []string{"ntp", "mysql-conn", "rabbitmq-conn"} {
		d := n.Dependency(dep)
		if d == nil || !d.Running {
			t.Errorf("default dependency %q missing or stopped", dep)
		}
	}
}

func TestSetDependency(t *testing.T) {
	f := newTestFabric()
	n := f.AddNode("c1", "10.0.0.9", trace.SvcNovaCompute)
	n.AddDependency("neutron-plugin-linuxbridge-agent")
	n.SetDependency("neutron-plugin-linuxbridge-agent", false)
	if n.Dependency("neutron-plugin-linuxbridge-agent").Running {
		t.Fatal("dependency still running after stop")
	}
	n.SetDependency("brand-new", false)
	if d := n.Dependency("brand-new"); d == nil || d.Running {
		t.Fatal("SetDependency did not create stopped dep")
	}
	deps := n.Dependencies()
	for i := 1; i < len(deps); i++ {
		if deps[i-1].Name > deps[i].Name {
			t.Fatal("Dependencies() not sorted")
		}
	}
}

func TestSampleReflectsLoadAndSurge(t *testing.T) {
	f := newTestFabric()
	n := f.AddNode("neutron-node", "10.0.0.4", trace.SvcNeutron)
	idle := n.Sample()
	n.ActiveOps = 100
	loaded := n.Sample()
	if loaded.CPUPercent <= idle.CPUPercent {
		t.Fatalf("CPU did not rise with load: %v -> %v", idle.CPUPercent, loaded.CPUPercent)
	}
	n.ActiveOps = 0
	n.CPUSurge = 60
	surged := n.Sample()
	if surged.CPUPercent < 50 {
		t.Fatalf("CPU surge not reflected: %v", surged.CPUPercent)
	}
	n.CPUSurge = 1000
	if capped := n.Sample(); capped.CPUPercent > 100 {
		t.Fatalf("CPU above 100%%: %v", capped.CPUPercent)
	}
}

func TestSendDeliversAfterLatencyAndTaps(t *testing.T) {
	f := newTestFabric()
	a := f.AddNode("a", "10.0.0.1", trace.SvcHorizon)
	b := f.AddNode("b", "10.0.0.2", trace.SvcNova)
	var tapped, delivered *Packet
	f.Tap(func(p Packet) { tapped = &p })
	payload := []byte("GET /v2.1/servers HTTP/1.1\r\n\r\n")
	err := f.Send("a", "b", Addr(a, 40000), Addr(b, 8774), 7, payload, func(p Packet) { delivered = &p })
	if err != nil {
		t.Fatal(err)
	}
	if delivered != nil {
		t.Fatal("delivered before latency elapsed")
	}
	f.Sim.Run()
	if delivered == nil || tapped == nil {
		t.Fatal("packet not delivered or not tapped")
	}
	if delivered.ConnID != 7 || string(delivered.Payload) != string(payload) {
		t.Fatalf("delivered packet mangled: %+v", delivered)
	}
	if tapped.SrcAddr != "10.0.0.1:40000" || tapped.DstAddr != "10.0.0.2:8774" {
		t.Fatalf("tap addresses wrong: %+v", tapped)
	}
	if !delivered.Time.After(simclock.Epoch) {
		t.Fatal("delivery time not after send time")
	}
	if f.Delivered != 1 || f.Bytes != uint64(len(payload)) {
		t.Fatalf("counters: %d packets %d bytes", f.Delivered, f.Bytes)
	}
}

func TestSendToDownNode(t *testing.T) {
	f := newTestFabric()
	f.AddNode("a", "10.0.0.1", trace.SvcHorizon)
	b := f.AddNode("b", "10.0.0.2", trace.SvcNova)
	b.Up = false
	err := f.Send("a", "b", "x", "y", 1, nil, nil)
	if _, ok := err.(ErrNodeDown); !ok {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestSendUnknownNode(t *testing.T) {
	f := newTestFabric()
	f.AddNode("a", "10.0.0.1", trace.SvcHorizon)
	if err := f.Send("a", "ghost", "x", "y", 1, nil, nil); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
	if err := f.Send("ghost", "a", "x", "y", 1, nil, nil); err == nil {
		t.Fatal("send from unknown node succeeded")
	}
}

func TestInjectLatencyDelaysDelivery(t *testing.T) {
	f := newTestFabric()
	f.AddNode("a", "10.0.0.1", trace.SvcHorizon)
	f.AddNode("glance-node", "10.0.0.6", trace.SvcGlance)

	var plainAt, slowAt time.Time
	f.Send("a", "glance-node", "x", "y", 1, nil, func(p Packet) { plainAt = p.Time })
	f.Sim.Run()

	f.InjectLatency("glance-node", 50*time.Millisecond)
	if f.InjectedLatency("glance-node") != 50*time.Millisecond {
		t.Fatal("InjectedLatency not recorded")
	}
	start := f.Sim.Now()
	f.Send("a", "glance-node", "x", "y", 2, nil, func(p Packet) { slowAt = p.Time })
	f.Sim.Run()
	if slowAt.Sub(start) < 50*time.Millisecond {
		t.Fatalf("injected latency not applied: took %v", slowAt.Sub(start))
	}
	_ = plainAt

	f.InjectLatency("glance-node", 0)
	if f.InjectedLatency("glance-node") != 0 {
		t.Fatal("latency injection not cleared")
	}
}

func TestConnAndPortAllocation(t *testing.T) {
	f := newTestFabric()
	c1, c2 := f.NewConnID(), f.NewConnID()
	if c1 == c2 {
		t.Fatal("conn ids collide")
	}
	p1, p2 := f.EphemeralPort(), f.EphemeralPort()
	if p1 == p2 || p1 < 33000 || p1 > 60999 {
		t.Fatalf("ports: %d %d", p1, p2)
	}
}

func TestEphemeralPortWraps(t *testing.T) {
	f := newTestFabric()
	f.nextPort = 60999
	if p := f.EphemeralPort(); p != 33000 {
		t.Fatalf("wrap port = %d, want 33000", p)
	}
}

func TestDeterministicSampling(t *testing.T) {
	f1 := NewFabric(simclock.New(), 1)
	f2 := NewFabric(simclock.New(), 1)
	n1 := f1.AddNode("same-name", "10.0.0.1", trace.SvcNova)
	n2 := f2.AddNode("same-name", "10.0.0.1", trace.SvcNova)
	for i := 0; i < 10; i++ {
		a, b := n1.Sample(), n2.Sample()
		if a != b {
			t.Fatalf("samples diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestServicePortsCoverServices(t *testing.T) {
	for _, svc := range trace.Services() {
		if ServicePorts[svc] == 0 {
			t.Errorf("no port for %v", svc)
		}
	}
}

func TestEphemeralPortSkipsLivePortsOnWrap(t *testing.T) {
	f := newTestFabric()
	// Pin a port near the end of the range as still-live, then force the
	// counter past it: the allocator must skip it rather than hand out a
	// port that still keys an active connection at the taps.
	f.nextPort = 60997
	live := f.EphemeralPort() // 60998
	if live != 60998 {
		t.Fatalf("setup port = %d, want 60998", live)
	}
	f.nextPort = 60997 // rewind the counter so the next scan re-visits 60998
	if p := f.EphemeralPort(); p == live {
		t.Fatalf("allocator reused live port %d", p)
	} else if p != 60999 {
		t.Fatalf("port = %d, want 60999 (skipping live 60998)", p)
	}
	if p := f.EphemeralPort(); p != 33000 {
		t.Fatalf("wrap port = %d, want 33000", p)
	}
	f.ReleasePort(live)
	f.nextPort = 60997
	if p := f.EphemeralPort(); p != live {
		t.Fatalf("released port not reallocated: got %d want %d", p, live)
	}
}

func TestEphemeralPortExhaustion(t *testing.T) {
	f := newTestFabric()
	span := ephemeralMax - ephemeralMin + 1
	seen := make(map[int]bool, span)
	for i := 0; i < span; i++ {
		p := f.EphemeralPort()
		if p < ephemeralMin || p > ephemeralMax {
			t.Fatalf("port %d outside [%d,%d]", p, ephemeralMin, ephemeralMax)
		}
		if seen[p] {
			t.Fatalf("port %d handed out twice after %d allocations", p, i+1)
		}
		seen[p] = true
	}
	if f.PortReuse != 0 {
		t.Fatalf("PortReuse = %d before exhaustion", f.PortReuse)
	}
	if got := f.PortsInUse(); got != span {
		t.Fatalf("PortsInUse = %d, want %d", got, span)
	}
	// The whole range is live: the allocator reuses (counted) instead of
	// wedging the simulation.
	p := f.EphemeralPort()
	if f.PortReuse != 1 {
		t.Fatalf("PortReuse = %d after exhausted alloc, want 1", f.PortReuse)
	}
	if p < ephemeralMin || p > ephemeralMax {
		t.Fatalf("fallback port %d outside range", p)
	}
	// Freeing any port makes the next allocation clean again.
	f.ReleasePort(40000)
	if q := f.EphemeralPort(); q != 40000 {
		t.Fatalf("post-release alloc = %d, want 40000", q)
	}
	if f.PortReuse != 1 {
		t.Fatalf("PortReuse moved to %d on a clean alloc", f.PortReuse)
	}
	f.ReleasePort(40000)
	f.ReleasePort(40000) // double release is a no-op
	if got := f.PortsInUse(); got != span-1 {
		t.Fatalf("PortsInUse = %d after release, want %d", got, span-1)
	}
}

func TestSendSelfLatencyChargedOnce(t *testing.T) {
	const inject = 50 * time.Millisecond
	cases := []struct {
		name     string
		src, dst string
		min, max time.Duration
	}{
		// BaseLatency is 300µs with ≤100µs jitter; 1ms of slack swamps it.
		{"self send, no injection", "a", "a", 0, time.Millisecond},
		{"self send charges injection once", "a", "a", inject, inject + time.Millisecond},
		{"cross send charges src injection", "a", "b", inject, inject + time.Millisecond},
		{"cross send charges both endpoints", "a", "glance", 2 * inject, 2*inject + time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newTestFabric()
			f.AddNode("a", "10.0.0.1", trace.SvcHorizon)
			f.AddNode("b", "10.0.0.2", trace.SvcNova)
			f.AddNode("glance", "10.0.0.6", trace.SvcGlance)
			if tc.name != "self send, no injection" {
				f.InjectLatency("a", inject)
				f.InjectLatency("glance", inject)
			}
			start := f.Sim.Now()
			var at time.Time
			if err := f.Send(tc.src, tc.dst, "x", "y", 1, nil, func(p Packet) { at = p.Time }); err != nil {
				t.Fatal(err)
			}
			f.Sim.Run()
			took := at.Sub(start)
			if took < tc.min || took > tc.max {
				t.Fatalf("delivery took %v, want [%v, %v]", took, tc.min, tc.max)
			}
		})
	}
}
