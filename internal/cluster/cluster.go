// Package cluster models the physical deployment substrate: nodes with
// resource state and software dependencies, and a network fabric that
// moves wire bytes between nodes with per-link latency and passive taps.
//
// GRETEL's model (§4) treats OpenStack as a closed system whose faults are
// caused by external factors — software dependencies (NTP, RabbitMQ,
// MySQL, agents/plugins, libvirt) and resource dependencies (CPU, memory,
// disk, network). This package owns exactly that state, so fault injectors
// perturb it here and root-cause analysis reads it back through the
// metrics/watcher layers.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gretel/internal/simclock"
	"gretel/internal/trace"
)

// Well-known service ports, matching a stock OpenStack deployment.
var ServicePorts = map[trace.Service]int{
	trace.SvcHorizon:      80,
	trace.SvcKeystone:     5000,
	trace.SvcNova:         8774,
	trace.SvcNovaCompute:  8775,
	trace.SvcNeutron:      9696,
	trace.SvcNeutronAgent: 9697,
	trace.SvcGlance:       9292,
	trace.SvcCinder:       8776,
	trace.SvcSwift:        8080,
	trace.SvcRabbitMQ:     5672,
	trace.SvcMySQL:        3306,
}

// Dependency is one third-party software dependency on a node, e.g. the
// NTP agent or the neutron-plugin-linuxbridge-agent. Watchers report
// Running; fault injectors flip it.
type Dependency struct {
	Name    string
	Running bool
}

// Resources is a snapshot of a node's resource state, in the units the
// paper's collectd agents reported.
type Resources struct {
	CPUPercent  float64 // total CPU utilization, 0..100
	MemUsedMB   float64
	MemTotalMB  float64
	DiskFreeGB  float64
	DiskTotalGB float64
	NetMbps     float64 // current NIC throughput
	DiskIOPS    float64
}

// Node is one server in the deployment. The reference deployment installs
// each OpenStack component on its own node (§5.4 "Improving precision").
type Node struct {
	Name    string
	IP      string
	Service trace.Service
	Up      bool

	// Baseline resource profile; live values derive from it plus load.
	Base Resources

	// ActiveOps counts operations currently executing on this node; the
	// CPU model charges CPUPerOp percent per active operation.
	ActiveOps int
	CPUPerOp  float64

	// CPUSurge and NetSurge are additive perturbations installed by fault
	// injectors (e.g. the Fig 6 Neutron CPU surge).
	CPUSurge float64
	NetSurge float64

	deps map[string]*Dependency
	rng  *rand.Rand
}

// AddDependency registers a software dependency in the running state.
func (n *Node) AddDependency(name string) {
	n.deps[name] = &Dependency{Name: name, Running: true}
}

// Dependency returns the named dependency, or nil.
func (n *Node) Dependency(name string) *Dependency { return n.deps[name] }

// Dependencies returns all dependencies sorted by name.
func (n *Node) Dependencies() []*Dependency {
	names := make([]string, 0, len(n.deps))
	for k := range n.deps {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*Dependency, len(names))
	for i, k := range names {
		out[i] = n.deps[k]
	}
	return out
}

// SetDependency flips a dependency's running state, creating it if needed.
func (n *Node) SetDependency(name string, running bool) {
	d, ok := n.deps[name]
	if !ok {
		d = &Dependency{Name: name}
		n.deps[name] = d
	}
	d.Running = running
}

// Sample returns the node's current resource reading: baseline plus
// load-proportional CPU, surges, and small deterministic jitter.
func (n *Node) Sample() Resources {
	r := n.Base
	jitter := func(scale float64) float64 { return (n.rng.Float64() - 0.5) * scale }
	r.CPUPercent += float64(n.ActiveOps)*n.CPUPerOp + n.CPUSurge + jitter(2.0)
	if r.CPUPercent > 100 {
		r.CPUPercent = 100
	}
	if r.CPUPercent < 0 {
		r.CPUPercent = 0
	}
	r.MemUsedMB += float64(n.ActiveOps)*8 + jitter(16)
	if r.MemUsedMB > r.MemTotalMB {
		r.MemUsedMB = r.MemTotalMB
	}
	r.NetMbps += float64(n.ActiveOps)*0.4 + n.NetSurge + jitter(0.5)
	if r.NetMbps < 0 {
		r.NetMbps = 0
	}
	r.DiskIOPS += float64(n.ActiveOps)*5 + jitter(10)
	if r.DiskIOPS < 0 {
		r.DiskIOPS = 0
	}
	return r
}

// Packet is one tapped transmission: wire bytes plus the connection
// metadata a passive monitor can see.
type Packet struct {
	Time             time.Time
	SrcNode, DstNode string
	SrcAddr, DstAddr string
	ConnID           uint64
	Payload          []byte
}

// TapFn receives a copy of every packet the fabric delivers. Taps observe;
// they must not mutate the payload.
type TapFn func(Packet)

// Fabric is the simulated network connecting the nodes. Transmission
// takes a base latency plus any injected per-node latency (the tc
// analogue from §7.3), after which the payload is delivered to the
// destination callback and mirrored to every tap.
type Fabric struct {
	Sim   *simclock.Sim
	nodes map[string]*Node
	taps  []TapFn
	rng   *rand.Rand

	// BaseLatency is the one-way delivery time for packets; small jitter
	// is added per packet.
	BaseLatency time.Duration

	// extraLatency maps node name -> injected one-way latency applied to
	// packets to or from that node.
	extraLatency map[string]time.Duration

	nextConn  uint64
	nextPort  int
	usedPorts map[int]bool

	// PortReuse counts EphemeralPort calls that had to hand out an
	// in-use port because the whole range was live — callers leaking
	// ports, or a soak with >28k concurrent connections.
	PortReuse uint64

	// Delivered counts packets handed to destinations; Bytes sums their
	// payload sizes.
	Delivered uint64
	Bytes     uint64
}

// NewFabric creates a fabric on the given simulator with a seeded RNG.
func NewFabric(sim *simclock.Sim, seed int64) *Fabric {
	return &Fabric{
		Sim:          sim,
		nodes:        make(map[string]*Node),
		rng:          rand.New(rand.NewSource(seed)),
		BaseLatency:  300 * time.Microsecond,
		extraLatency: make(map[string]time.Duration),
		nextPort:     ephemeralMin,
		usedPorts:    make(map[int]bool),
	}
}

// AddNode creates and registers a node hosting the given service.
func (f *Fabric) AddNode(name, ip string, svc trace.Service) *Node {
	n := &Node{
		Name:    name,
		IP:      ip,
		Service: svc,
		Up:      true,
		Base: Resources{
			CPUPercent:  3 + f.rng.Float64()*2,
			MemUsedMB:   2048,
			MemTotalMB:  128 * 1024, // the paper's x3650 M3 servers: 128 GB
			DiskFreeGB:  800,
			DiskTotalGB: 1000,
			NetMbps:     1,
			DiskIOPS:    20,
		},
		CPUPerOp: 0.15,
		deps:     make(map[string]*Dependency),
		rng:      rand.New(rand.NewSource(seedFor(name))),
	}
	// Dependencies standard across all nodes (§5): NTP sync plus
	// reachability to MySQL and RabbitMQ.
	n.AddDependency("ntp")
	n.AddDependency("mysql-conn")
	n.AddDependency("rabbitmq-conn")
	f.nodes[name] = n
	return n
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// Node returns the named node, or nil.
func (f *Fabric) Node(name string) *Node { return f.nodes[name] }

// Nodes returns all nodes sorted by name.
func (f *Fabric) Nodes() []*Node {
	names := make([]string, 0, len(f.nodes))
	for k := range f.nodes {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*Node, len(names))
	for i, k := range names {
		out[i] = f.nodes[k]
	}
	return out
}

// NodeFor returns the node hosting the given service, or nil. The
// reference deployment has exactly one node per service.
func (f *Fabric) NodeFor(svc trace.Service) *Node {
	for _, n := range f.Nodes() {
		if n.Service == svc {
			return n
		}
	}
	return nil
}

// Tap registers a passive monitor receiving a copy of every delivered
// packet.
func (f *Fabric) Tap(fn TapFn) { f.taps = append(f.taps, fn) }

// InjectLatency adds one-way latency to every packet to or from the node
// (the tc analogue). A zero duration removes the injection.
func (f *Fabric) InjectLatency(node string, d time.Duration) {
	if d == 0 {
		delete(f.extraLatency, node)
		return
	}
	f.extraLatency[node] = d
}

// InjectedLatency reports the current injected latency for a node.
func (f *Fabric) InjectedLatency(node string) time.Duration { return f.extraLatency[node] }

// NewConnID allocates a fresh TCP connection identifier.
func (f *Fabric) NewConnID() uint64 {
	f.nextConn++
	return f.nextConn
}

// The simulated client-side port range, matching the stock
// net.ipv4.ip_local_port_range on the paper's deployment hosts.
const (
	ephemeralMin = 33000
	ephemeralMax = 60999
)

// EphemeralPort allocates a client-side port number. Ports stay
// allocated — and are skipped when the counter wraps — until the
// connection using them closes and the caller hands them back via
// ReleasePort; reusing a port while its connection is still live would
// let two connections share an (addr, port) pairing key at the taps.
// If every port in the range is live, the next port is reused anyway
// (counted in PortReuse) rather than wedging the simulation.
func (f *Fabric) EphemeralPort() int {
	for i := 0; i < ephemeralMax-ephemeralMin+1; i++ {
		f.nextPort++
		if f.nextPort > ephemeralMax {
			f.nextPort = ephemeralMin
		}
		if !f.usedPorts[f.nextPort] {
			f.usedPorts[f.nextPort] = true
			return f.nextPort
		}
	}
	f.PortReuse++
	f.nextPort++
	if f.nextPort > ephemeralMax {
		f.nextPort = ephemeralMin
	}
	return f.nextPort
}

// ReleasePort returns an ephemeral port to the free pool once the
// connection using it has closed. Releasing an already-free port is a
// no-op.
func (f *Fabric) ReleasePort(p int) { delete(f.usedPorts, p) }

// PortsInUse reports how many ephemeral ports are currently allocated.
func (f *Fabric) PortsInUse() int { return len(f.usedPorts) }

// ErrNodeDown is returned by Send when the destination is unreachable.
type ErrNodeDown struct{ Node string }

func (e ErrNodeDown) Error() string { return fmt.Sprintf("cluster: node %s is down", e.Node) }

// Send transmits payload from src to dst. After the link latency elapses,
// taps observe the packet and deliver (if non-nil) runs on the destination.
// Send fails immediately if either node is missing or the destination is
// down (the sender's TCP stack would see a reset/timeout).
func (f *Fabric) Send(srcNode, dstNode, srcAddr, dstAddr string, connID uint64, payload []byte, deliver func(Packet)) error {
	src, ok := f.nodes[srcNode]
	if !ok {
		return fmt.Errorf("cluster: unknown src node %q", srcNode)
	}
	dst, ok := f.nodes[dstNode]
	if !ok {
		return fmt.Errorf("cluster: unknown dst node %q", dstNode)
	}
	if !src.Up {
		return ErrNodeDown{srcNode}
	}
	if !dst.Up {
		return ErrNodeDown{dstNode}
	}
	lat := f.BaseLatency + time.Duration(f.rng.Int63n(int64(f.BaseLatency)/3+1))
	// Injected latency models a tc qdisc on the node's NIC: a packet
	// crosses the source's NIC once and the destination's NIC once, so a
	// loopback send (src == dst) pays the injection once, not twice.
	if srcNode == dstNode {
		lat += f.extraLatency[srcNode]
	} else {
		lat += f.extraLatency[srcNode] + f.extraLatency[dstNode]
	}
	f.Sim.After(lat, func() {
		pkt := Packet{
			Time:    f.Sim.Now(),
			SrcNode: srcNode, DstNode: dstNode,
			SrcAddr: srcAddr, DstAddr: dstAddr,
			ConnID:  connID,
			Payload: payload,
		}
		f.Delivered++
		f.Bytes += uint64(len(payload))
		for _, tap := range f.taps {
			tap(pkt)
		}
		if deliver != nil {
			deliver(pkt)
		}
	})
	return nil
}

// Addr renders "ip:port" for a node and port.
func Addr(n *Node, port int) string { return fmt.Sprintf("%s:%d", n.IP, port) }
