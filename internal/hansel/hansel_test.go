package hansel

import (
	"testing"
	"time"

	"gretel/internal/trace"
)

var epoch = time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }

func ev(sec int, opID uint64, conn uint64, status int) trace.Event {
	return trace.Event{
		Time:   at(sec),
		Type:   trace.RESTResponse,
		API:    trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}"),
		OpID:   opID,
		ConnID: conn,
		Status: status,
	}
}

func TestBucketDelaysStitching(t *testing.T) {
	s := New(Config{BucketWindow: 30 * time.Second})
	s.Ingest(ev(0, 1, 1, 200))
	if s.Stitched != 0 {
		t.Fatal("message stitched before the bucket window elapsed")
	}
	// A message 31s later drains the first.
	s.Ingest(ev(31, 1, 2, 200))
	if s.Stitched != 1 {
		t.Fatalf("stitched = %d, want 1", s.Stitched)
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 5; i++ {
		s.Ingest(ev(i, 1, uint64(i+1), 200))
	}
	s.Flush(at(10))
	if s.Stitched != 5 {
		t.Fatalf("stitched = %d, want 5", s.Stitched)
	}
}

func TestChainsLinkByIdentifier(t *testing.T) {
	s := New(Config{BucketWindow: time.Second})
	s.Ingest(ev(0, 7, 1, 200))
	s.Ingest(ev(1, 7, 2, 200))
	s.Ingest(ev(2, 7, 3, 500)) // fault in the same operation
	s.Flush(at(10))
	reps := s.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if len(reps[0].Chain) != 3 {
		t.Fatalf("chain length = %d, want 3 (all op-7 messages)", len(reps[0].Chain))
	}
}

func TestSeparateOperationsSeparateChains(t *testing.T) {
	s := New(Config{BucketWindow: time.Second})
	s.Ingest(ev(0, 1, 1, 200))
	s.Ingest(ev(1, 2, 2, 200))
	s.Flush(at(10))
	if s.Chains() != 2 {
		t.Fatalf("chains = %d, want 2", s.Chains())
	}
}

func TestMergeOnBridgingMessage(t *testing.T) {
	s := New(Config{BucketWindow: time.Second})
	s.Ingest(ev(0, 1, 10, 200)) // chain A: op 1, conn 10
	s.Ingest(ev(1, 2, 20, 200)) // chain B: op 2, conn 20
	// A message sharing conn 10 and op 2 bridges both chains.
	bridge := ev(2, 2, 10, 200)
	s.Ingest(bridge)
	s.Flush(at(10))
	if s.Merges != 1 {
		t.Fatalf("merges = %d, want 1", s.Merges)
	}
	if s.Chains() != 1 {
		t.Fatalf("chains = %d, want 1 after merge", s.Chains())
	}
}

func TestReportLatencyIsBucketWindow(t *testing.T) {
	s := New(Config{BucketWindow: 30 * time.Second})
	fault := ev(0, 1, 1, 503)
	s.Ingest(fault)
	s.Flush(at(100))
	reps := s.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if got := reps[0].ReportedAt.Sub(fault.Time); got != 30*time.Second {
		t.Fatalf("report latency = %v, want 30s", got)
	}
}

func TestChainExpiry(t *testing.T) {
	s := New(Config{BucketWindow: time.Second, ChainTTL: 60 * time.Second})
	s.Ingest(ev(0, 1, 1, 200))
	s.Ingest(ev(2, 1, 2, 200))
	// Much later activity on a different op expires the idle chain.
	s.Ingest(ev(300, 2, 3, 200))
	s.Ingest(ev(302, 2, 4, 200))
	s.Flush(at(400))
	if s.Chains() != 1 {
		t.Fatalf("chains = %d, want 1 after expiry", s.Chains())
	}
}

func TestMaxChainLenBounds(t *testing.T) {
	s := New(Config{BucketWindow: time.Second, MaxChainLen: 10})
	for i := 0; i < 50; i++ {
		s.Ingest(ev(i, 1, uint64(i+1), 200))
	}
	s.Flush(at(100))
	for _, c := range s.chains {
		if len(c.Events) > 10 {
			t.Fatalf("chain grew to %d", len(c.Events))
		}
	}
}

func TestChainAPIs(t *testing.T) {
	s := New(Config{BucketWindow: time.Second})
	s.Ingest(ev(0, 1, 1, 200))
	s.Flush(at(10))
	for _, c := range s.chains {
		apis := c.APIs()
		if len(apis) != 1 || apis[0].Service != trace.SvcNova {
			t.Fatalf("APIs = %v", apis)
		}
	}
}

func TestTenantLinkingMergesOperations(t *testing.T) {
	// With a small tenant space, two different operations share a tenant
	// identifier and land in one chain; the fault chain then reports both.
	s := New(Config{BucketWindow: time.Second, TenantBuckets: 1})
	s.Ingest(ev(0, 1, 1, 200))
	s.Ingest(ev(1, 2, 2, 200)) // different op, same tenant bucket
	s.Ingest(ev(2, 1, 3, 503)) // fault in op 1
	s.Flush(at(10))
	reps := s.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if got := reps[0].OperationsLinked(); got != 2 {
		t.Fatalf("operations linked = %d, want 2 (tenant over-linking)", got)
	}

	// Without tenant linking the chain holds only the faulty operation.
	s2 := New(Config{BucketWindow: time.Second})
	s2.Ingest(ev(0, 1, 1, 200))
	s2.Ingest(ev(1, 2, 2, 200))
	s2.Ingest(ev(2, 1, 3, 503))
	s2.Flush(at(10))
	if got := s2.Reports()[0].OperationsLinked(); got != 1 {
		t.Fatalf("operations linked = %d, want 1", got)
	}
}

// TestFaultChainExtractsFaultChain verifies FaultChain returns exactly
// the chain holding the fault, in order, with linking identifiers, and
// excludes unrelated chains.
func TestFaultChainExtractsFaultChain(t *testing.T) {
	events := []trace.Event{
		ev(0, 7, 1, 200),
		ev(1, 9, 5, 200), // unrelated operation
		ev(2, 7, 2, 200),
		ev(3, 7, 3, 503), // fault
		ev(4, 9, 6, 200), // unrelated
	}
	for i := range events {
		events[i].Seq = uint64(100 + i)
	}
	links := FaultChain(events, 103, Config{})
	if len(links) != 3 {
		t.Fatalf("links = %d, want 3 (op-7 messages only): %+v", len(links), links)
	}
	for i, want := range []uint64{100, 102, 103} {
		if links[i].Seq != want {
			t.Fatalf("links[%d].Seq = %d, want %d", i, links[i].Seq, want)
		}
		// Every link shares the op identifier with the fault.
		if links[i].Ident != "op:7" {
			t.Fatalf("links[%d].Ident = %q, want op:7", i, links[i].Ident)
		}
	}
}

// TestFaultChainNoChain covers the degenerate inputs: no events, or a
// fault sequence no chain contains.
func TestFaultChainNoChain(t *testing.T) {
	if got := FaultChain(nil, 1, Config{}); got != nil {
		t.Fatalf("empty events: %v", got)
	}
	events := []trace.Event{ev(0, 7, 1, 200)}
	events[0].Seq = 50
	if got := FaultChain(events, 99, Config{}); got != nil {
		t.Fatalf("missing fault seq: %v", got)
	}
}

// TestFaultChainDeterministic re-runs the extraction and demands an
// identical result — the property the evidence-trace determinism
// guarantee rests on.
func TestFaultChainDeterministic(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 40; i++ {
		e := ev(i, uint64(1+i%3), uint64(i+1), 200)
		e.Seq = uint64(i + 1)
		events = append(events, e)
	}
	events[30].Status = 500
	a := FaultChain(events, 31, Config{})
	for trial := 0; trial < 20; trial++ {
		b := FaultChain(events, 31, Config{})
		if len(a) != len(b) {
			t.Fatalf("trial %d: lengths differ %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: link %d differs: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}
