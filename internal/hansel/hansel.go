// Package hansel implements the HANSEL baseline (Sharma et al., CoNEXT
// 2015) as the paper characterizes it (§3.1, §9.2): payload-identifier
// based operation stitching that runs on *every* message, with 30-second
// time buckets to tolerate delayed or out-of-order messages.
//
// HANSEL extracts identifiers (instance/tenant/port/request ids) from
// request and response payloads and links messages sharing identifiers
// into chains. On an error it reports the chain of messages leading to
// the fault — a low-level API sequence, not a high-level operation. The
// per-message stitching plus the buffering window make it orders of
// magnitude slower than GRETEL's trigger-on-fault design, which the
// throughput comparison (§7.4.1) quantifies.
package hansel

import (
	"time"

	"gretel/internal/trace"
)

// Chain is a stitched message sequence sharing identifiers.
type Chain struct {
	ID       uint64
	Events   []trace.Event
	idents   map[string]bool
	LastSeen time.Time
}

// APIs returns the chain's API sequence.
func (c *Chain) APIs() []trace.API {
	out := make([]trace.API, len(c.Events))
	for i := range c.Events {
		out[i] = c.Events[i].API
	}
	return out
}

// FaultReport is HANSEL's output: the chain of messages that led to an
// error (it does not name the administrative operation).
type FaultReport struct {
	Fault trace.Event
	Chain []trace.Event
	// ReportedAt is when the report left the stitcher — at least one
	// bucket window after the fault arrived.
	ReportedAt time.Time
}

// Config tunes the stitcher.
type Config struct {
	// BucketWindow is the buffering delay applied before any message is
	// stitched, to tolerate out-of-order arrivals (paper: 30 s).
	BucketWindow time.Duration
	// ChainTTL expires idle chains.
	ChainTTL time.Duration
	// MaxChainLen bounds a chain's kept history.
	MaxChainLen int
	// TenantBuckets models the payload tenant-id space HANSEL keys on.
	// The paper notes that "common identifiers, like tenant ID ... may
	// cause a faulty operation to link with several successful
	// operations" (§9.2): with few tenants, unrelated operations share an
	// identifier and merge into one chain. Zero disables tenant linking.
	TenantBuckets int
}

func (c *Config) defaults() {
	if c.BucketWindow == 0 {
		c.BucketWindow = 30 * time.Second
	}
	if c.ChainTTL == 0 {
		c.ChainTTL = 5 * time.Minute
	}
	if c.MaxChainLen == 0 {
		c.MaxChainLen = 512
	}
}

// Stitcher is the HANSEL engine. Unlike GRETEL it does heavy work on
// every message: identifier extraction, chain lookup, and merge.
type Stitcher struct {
	cfg Config

	// bucket holds messages waiting out the reorder window.
	bucket []trace.Event

	chains  map[uint64]*Chain
	byIdent map[string]*Chain
	nextID  uint64

	reports []*FaultReport

	// Stats.
	Events    uint64
	Stitched  uint64
	Merges    uint64
	ChainsNow int
}

// New returns a stitcher.
func New(cfg Config) *Stitcher {
	cfg.defaults()
	return &Stitcher{
		cfg:     cfg,
		chains:  make(map[uint64]*Chain),
		byIdent: make(map[string]*Chain),
	}
}

// identifiers extracts the payload identifiers HANSEL keys on. In this
// reproduction the deployment does not carry real tenant payloads, so the
// stitcher keys on the identifiers that ARE on the wire: the ground-truth
// decorations stand in for payload request/instance ids (OpID), plus
// connection and message ids, plus — when TenantBuckets is set — a shared
// tenant id derived from the operation. This reproduces HANSEL's linking
// behavior, including its weakness that common identifiers can link a
// faulty operation to several successful ones (§9.2 item 5).
func (s *Stitcher) identifiers(ev *trace.Event) []string {
	ids := make([]string, 0, 4)
	if ev.OpID != 0 {
		ids = append(ids, "op:"+u64str(ev.OpID))
		if s.cfg.TenantBuckets > 0 {
			ids = append(ids, "tenant:"+u64str(ev.OpID%uint64(s.cfg.TenantBuckets)))
		}
	}
	if ev.ConnID != 0 {
		ids = append(ids, "conn:"+u64str(ev.ConnID))
	}
	if ev.MsgID != "" {
		ids = append(ids, "msg:"+ev.MsgID)
	}
	return ids
}

func u64str(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Ingest buffers one event and drains anything older than the bucket
// window. Stitching work happens on every drained message.
func (s *Stitcher) Ingest(ev trace.Event) {
	s.Events++
	s.bucket = append(s.bucket, ev)
	s.drainUntil(ev.Time.Add(-s.cfg.BucketWindow))
}

// Flush drains the entire bucket (end of stream).
func (s *Stitcher) Flush(now time.Time) {
	s.drainUntil(now.Add(s.cfg.BucketWindow))
}

func (s *Stitcher) drainUntil(cutoff time.Time) {
	i := 0
	for i < len(s.bucket) && !s.bucket[i].Time.After(cutoff) {
		s.stitch(s.bucket[i])
		i++
	}
	if i > 0 {
		s.bucket = append(s.bucket[:0], s.bucket[i:]...)
	}
}

// stitch links one message into a chain by identifier, merging chains
// when a message bridges two, and emits a fault report when the message
// carries an error.
func (s *Stitcher) stitch(ev trace.Event) {
	s.Stitched++
	ids := s.identifiers(&ev)

	var chain *Chain
	for _, id := range ids {
		if c, ok := s.byIdent[id]; ok {
			if chain == nil {
				chain = c
			} else if c != chain {
				s.merge(chain, c)
			}
		}
	}
	if chain == nil {
		s.nextID++
		chain = &Chain{ID: s.nextID, idents: make(map[string]bool)}
		s.chains[chain.ID] = chain
	}
	chain.Events = append(chain.Events, ev)
	if len(chain.Events) > s.cfg.MaxChainLen {
		chain.Events = chain.Events[len(chain.Events)-s.cfg.MaxChainLen:]
	}
	chain.LastSeen = ev.Time
	for _, id := range ids {
		if !chain.idents[id] {
			chain.idents[id] = true
			s.byIdent[id] = chain
		}
	}
	s.ChainsNow = len(s.chains)

	if ev.Faulty() {
		// The report leaves only after the bucket window has already
		// delayed this message — HANSEL's ~30 s reporting latency.
		rep := &FaultReport{
			Fault:      ev,
			Chain:      append([]trace.Event(nil), chain.Events...),
			ReportedAt: ev.Time.Add(s.cfg.BucketWindow),
		}
		s.reports = append(s.reports, rep)
	}

	s.expire(ev.Time)
}

func (s *Stitcher) merge(dst, src *Chain) {
	s.Merges++
	dst.Events = append(dst.Events, src.Events...)
	if len(dst.Events) > s.cfg.MaxChainLen {
		dst.Events = dst.Events[len(dst.Events)-s.cfg.MaxChainLen:]
	}
	for id := range src.idents {
		dst.idents[id] = true
		s.byIdent[id] = dst
	}
	if src.LastSeen.After(dst.LastSeen) {
		dst.LastSeen = src.LastSeen
	}
	delete(s.chains, src.ID)
}

func (s *Stitcher) expire(now time.Time) {
	if len(s.chains) == 0 {
		return
	}
	for id, c := range s.chains {
		if now.Sub(c.LastSeen) > s.cfg.ChainTTL {
			for ident := range c.idents {
				if s.byIdent[ident] == c {
					delete(s.byIdent, ident)
				}
			}
			delete(s.chains, id)
		}
	}
	s.ChainsNow = len(s.chains)
}

// Reports returns the fault reports so far.
func (s *Stitcher) Reports() []*FaultReport { return s.reports }

// OperationsLinked counts the distinct operations (by evaluation-only
// ground truth) present in a fault report's chain — the measure of
// HANSEL's over-linking under shared identifiers.
func (r *FaultReport) OperationsLinked() int {
	seen := map[uint64]bool{}
	for i := range r.Chain {
		if id := r.Chain[i].OpID; id != 0 {
			seen[id] = true
		}
	}
	return len(seen)
}

// Chains returns the live chain count.
func (s *Stitcher) Chains() int { return len(s.chains) }
