// Fault-chain extraction for evidence traces: GRETEL's explain mode
// borrows HANSEL's identifier stitching to show the cross-operation
// links around a fault — evidence the fingerprint span tree cannot
// show, because it groups messages by exchange rather than by shared
// payload identifier.
package hansel

import (
	"gretel/internal/trace"
	"time"
)

// Link is one event tied to a fault by identifier stitching, annotated
// with the identifier that linked it.
type Link struct {
	Seq  uint64
	Time time.Time
	API  trace.API
	// Ident is the identifier shared with the fault event when one
	// exists, otherwise the identifier that first linked this event into
	// the chain.
	Ident string
}

// FaultChain stitches the given events (a frozen window slice, in
// arrival order) and returns the chain containing the fault event,
// identified by sequence number, as ordered links. It is a pure
// function of its inputs — deterministic across runs and worker
// counts — and returns nil when no chain contains the fault.
func FaultChain(events []trace.Event, faultSeq uint64, cfg Config) []Link {
	if len(events) == 0 {
		return nil
	}
	s := New(cfg)
	last := events[0].Time
	for _, ev := range events {
		s.Ingest(ev)
		if ev.Time.After(last) {
			last = ev.Time
		}
	}
	s.Flush(last)

	// The fault's sequence number appears in exactly one chain (every
	// stitched event lands in one chain; merges preserve membership), so
	// this map walk has a unique, order-independent result.
	var chain *Chain
	var fault *trace.Event
	for _, c := range s.chains {
		for i := range c.Events {
			if c.Events[i].Seq == faultSeq {
				chain = c
				fault = &c.Events[i]
				break
			}
		}
		if chain != nil {
			break
		}
	}
	if chain == nil {
		return nil
	}

	faultIDs := map[string]bool{}
	for _, id := range s.identifiers(fault) {
		faultIDs[id] = true
	}
	links := make([]Link, 0, len(chain.Events))
	for i := range chain.Events {
		ev := &chain.Events[i]
		ids := s.identifiers(ev)
		ident := ""
		if len(ids) > 0 {
			ident = ids[0]
			for _, id := range ids {
				if faultIDs[id] {
					ident = id
					break
				}
			}
		}
		links = append(links, Link{Seq: ev.Seq, Time: ev.Time, API: ev.API, Ident: ident})
	}
	return links
}
