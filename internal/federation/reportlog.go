package federation

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gretel/internal/core"
)

// LogEntry is one report as the member's ReportLog serves it: the
// member-local sequence number, the fault-arrival timestamp, and the
// report body exactly as the member marshaled it.
type LogEntry struct {
	Seq    uint64          `json:"seq"`
	At     time.Time       `json:"at"`
	Report json.RawMessage `json:"report"`
}

// LogPage is the /reports response: a boot id naming this log
// incarnation (a restarted analyzer starts a fresh log and a fresh
// sequence space), the retention bounds, and the entries after the
// requested cursor.
type LogPage struct {
	// Boot identifies this ReportLog incarnation; a change tells the
	// coordinator to reset its pull cursor and bump the epoch.
	Boot uint64 `json:"boot"`
	// First is the oldest retained sequence number (0 when empty): a
	// puller whose cursor is older has missed evicted reports.
	First uint64 `json:"first"`
	// Next is the sequence number the next report will get.
	Next uint64 `json:"next"`
	// Reports holds the retained entries with Seq > the since cursor.
	Reports []LogEntry `json:"reports"`
}

// ReportLog is the bounded report history an analyzer member exposes to
// the coordinator. Record is wired to core.Analyzer.OnReport, so
// entries are appended in fault-arrival order with monotonically
// increasing sequence numbers; the coordinator pulls increments with
// /reports?since=N. Safe for concurrent use.
type ReportLog struct {
	mu      sync.Mutex
	boot    uint64
	ring    []LogEntry
	head, n int
	next    uint64 // next seq to assign
	evicted uint64 // entries pushed out of the ring, for accounting
}

// NewReportLog builds a log retaining up to capacity reports (default
// 4096). The boot id is taken from the wall clock so every process
// incarnation gets a distinct one.
func NewReportLog(capacity int) *ReportLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &ReportLog{
		boot: uint64(time.Now().UnixNano()),
		ring: make([]LogEntry, capacity),
		next: 1,
	}
}

// Record appends one finished report. Marshal errors cannot happen for
// core.Report (plain data), but are counted as an eviction rather than
// silently skewing the sequence space.
func (l *ReportLog) Record(rep *core.Report) {
	body, err := json.Marshal(rep)
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.next
	l.next++
	if err != nil {
		l.evicted++
		return
	}
	if l.n == len(l.ring) {
		l.head = (l.head + 1) % len(l.ring)
		l.n--
		l.evicted++
	}
	l.ring[(l.head+l.n)%len(l.ring)] = LogEntry{Seq: seq, At: rep.DetectedAt, Report: body}
	l.n++
}

// Page returns the entries with Seq > since, plus the log bounds.
func (l *ReportLog) Page(since uint64) LogPage {
	l.mu.Lock()
	defer l.mu.Unlock()
	page := LogPage{Boot: l.boot, Next: l.next}
	if l.n > 0 {
		page.First = l.ring[l.head].Seq
	}
	for i := 0; i < l.n; i++ {
		e := l.ring[(l.head+i)%len(l.ring)]
		if e.Seq > since {
			page.Reports = append(page.Reports, e)
		}
	}
	return page
}

// Len reports how many entries are currently retained.
func (l *ReportLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Handler serves the log as JSON at GET ?since=N.
func (l *ReportLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad since: %v", err), http.StatusBadRequest)
				return
			}
			since = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(l.Page(since))
	})
}
