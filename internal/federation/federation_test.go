package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gretel/internal/core"
)

// --- Assign (rendezvous hashing) ---------------------------------------

func TestAssignDeterministicAndOrderIndependent(t *testing.T) {
	members := []string{"a", "b", "c"}
	reversed := []string{"c", "b", "a"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("agent-%d", i)
		got := Assign(key, members)
		if got == "" {
			t.Fatalf("Assign(%q) returned empty member", key)
		}
		if again := Assign(key, members); again != got {
			t.Fatalf("Assign(%q) not deterministic: %q then %q", key, got, again)
		}
		if rev := Assign(key, reversed); rev != got {
			t.Fatalf("Assign(%q) depends on member order: %q vs %q", key, got, rev)
		}
	}
	if Assign("anything", nil) != "" {
		t.Fatal("Assign with no members should return empty")
	}
}

func TestAssignSpreadsKeys(t *testing.T) {
	members := []string{"a", "b", "c"}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[Assign(fmt.Sprintf("agent-%d", i), members)]++
	}
	for _, m := range members {
		// A grossly skewed hash would defeat the partitioning; allow wide
		// slack (expected ~1000 each).
		if counts[m] < keys/6 {
			t.Fatalf("member %q owns only %d/%d keys: %v", m, counts[m], keys, counts)
		}
	}
}

// TestAssignMinimalDisruption is the rendezvous-hashing property the
// failover story leans on: when a member dies, only its keys move; when
// it recovers, exactly those keys move back.
func TestAssignMinimalDisruption(t *testing.T) {
	full := []string{"a", "b", "c"}
	without := []string{"a", "b"}
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("agent-%d", i)
		before := Assign(key, full)
		after := Assign(key, without)
		if before != "c" && after != before {
			t.Fatalf("key %q moved from %q to %q though its owner survived", key, before, after)
		}
		if before == "c" {
			moved++
			if after == "c" || after == "" {
				t.Fatalf("key %q kept dead owner: %q", key, after)
			}
		}
		if restored := Assign(key, full); restored != before {
			t.Fatalf("key %q did not move back after recovery: %q vs %q", key, restored, before)
		}
	}
	if moved == 0 {
		t.Fatal("degenerate test: no keys were owned by the removed member")
	}
}

// --- Merger -------------------------------------------------------------

func env(member string, epoch, seq uint64, atMs int) Envelope {
	return Envelope{
		Member: member,
		Epoch:  epoch,
		Seq:    seq,
		At:     time.Unix(0, int64(atMs)*int64(time.Millisecond)),
		Report: json.RawMessage(fmt.Sprintf(`{"m":%q,"seq":%d}`, member, seq)),
	}
}

func TestMergerOrdersAcrossMembers(t *testing.T) {
	var got []Envelope
	m := NewMerger(MergerConfig{Window: 50 * time.Millisecond, Emit: func(e Envelope) { got = append(got, e) }})

	// Two members interleaved out of global order but each in its own
	// seq order, all within the reorder window.
	m.Add(env("b", 1, 1, 20))
	m.Add(env("a", 1, 1, 10))
	m.Add(env("b", 1, 2, 40))
	m.Add(env("a", 1, 2, 30))
	m.Flush()

	want := []struct {
		member string
		seq    uint64
	}{{"a", 1}, {"b", 1}, {"a", 2}, {"b", 2}}
	if len(got) != len(want) {
		t.Fatalf("emitted %d envelopes, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Member != w.member || got[i].Seq != w.seq {
			t.Fatalf("position %d: got (%s,%d), want (%s,%d)", i, got[i].Member, got[i].Seq, w.member, w.seq)
		}
	}
	st := m.Stats()
	if st.Merged != 4 || st.Late != 0 || st.Dups != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMergerTieBreakDeterministic(t *testing.T) {
	run := func(order []Envelope) []Envelope {
		var got []Envelope
		m := NewMerger(MergerConfig{Window: time.Second, Emit: func(e Envelope) { got = append(got, e) }})
		for _, e := range order {
			m.Add(e)
		}
		m.Flush()
		return got
	}
	// Same At on every envelope: order must come out (member, epoch, seq)
	// regardless of arrival order.
	a := run([]Envelope{env("b", 1, 1, 10), env("a", 2, 1, 10), env("a", 1, 1, 10)})
	b := run([]Envelope{env("a", 1, 1, 10), env("b", 1, 1, 10), env("a", 2, 1, 10)})
	for i := range a {
		if a[i].Member != b[i].Member || a[i].Epoch != b[i].Epoch || a[i].Seq != b[i].Seq {
			t.Fatalf("order not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].Member != "a" || a[0].Epoch != 1 || a[1].Epoch != 2 || a[2].Member != "b" {
		t.Fatalf("tie-break order wrong: %+v", a)
	}
}

func TestMergerLateAndDup(t *testing.T) {
	var got []Envelope
	m := NewMerger(MergerConfig{Window: 10 * time.Millisecond, Emit: func(e Envelope) { got = append(got, e) }})

	m.Add(env("a", 1, 1, 100)) // watermark -> 90ms
	m.Add(env("a", 1, 1, 100)) // dup: same (member, epoch) seq
	m.Add(env("b", 1, 1, 50))  // behind the watermark: late, emitted immediately
	m.Flush()

	st := m.Stats()
	if st.Dups != 1 {
		t.Fatalf("dups = %d, want 1", st.Dups)
	}
	if st.Late != 1 {
		t.Fatalf("late = %d, want 1", st.Late)
	}
	if st.Merged != 2 || len(got) != 2 {
		t.Fatalf("merged = %d, emitted = %d, want 2", st.Merged, len(got))
	}
	// Late envelope came out first (immediately), held one on Flush.
	if got[0].Member != "b" || got[1].Member != "a" {
		t.Fatalf("emit order: %s then %s", got[0].Member, got[1].Member)
	}
	// A new epoch is a new incarnation: seq 1 is admissible again.
	m.Add(env("a", 2, 1, 200))
	m.Flush()
	if st := m.Stats(); st.Dups != 1 || st.Merged != 3 {
		t.Fatalf("after epoch bump: %+v", st)
	}
}

func TestMergerAdvanceToDrainsQuiescentStream(t *testing.T) {
	var got []Envelope
	m := NewMerger(MergerConfig{Window: time.Hour, Emit: func(e Envelope) { got = append(got, e) }})
	m.Add(env("a", 1, 1, 10))
	if len(got) != 0 {
		t.Fatal("released before watermark")
	}
	m.AdvanceTo(time.Unix(0, int64(5*time.Millisecond)))
	if len(got) != 0 {
		t.Fatal("released by a watermark behind the envelope")
	}
	m.AdvanceTo(time.Unix(0, int64(15*time.Millisecond)))
	if len(got) != 1 {
		t.Fatalf("clock-driven watermark did not drain: %d emitted", len(got))
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d", m.Pending())
	}
}

// --- ReportLog ----------------------------------------------------------

// logReport records a synthetic report whose DetectedAt is id
// milliseconds past now — wall-clock anchored because the coordinator's
// watermark advances with the wall clock, and id-ordered (successive
// calls are microseconds apart, so the millisecond id gaps dominate) so
// merge-order assertions can use trace ids.
func logReport(l *ReportLog, id int) {
	rep := &core.Report{TraceID: uint64(id), DetectedAt: time.Now().Add(time.Duration(id) * time.Millisecond)}
	l.Record(rep)
}

func TestReportLogPaging(t *testing.T) {
	l := NewReportLog(8)
	for i := 1; i <= 5; i++ {
		logReport(l, i)
	}
	page := l.Page(0)
	if page.First != 1 || page.Next != 6 || len(page.Reports) != 5 {
		t.Fatalf("full page: first=%d next=%d n=%d", page.First, page.Next, len(page.Reports))
	}
	for i, e := range page.Reports {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq at %d = %d", i, e.Seq)
		}
	}
	inc := l.Page(3)
	if len(inc.Reports) != 2 || inc.Reports[0].Seq != 4 {
		t.Fatalf("incremental page: %+v", inc.Reports)
	}
	if got := l.Page(99); len(got.Reports) != 0 {
		t.Fatalf("past-end page returned %d entries", len(got.Reports))
	}
}

func TestReportLogEviction(t *testing.T) {
	l := NewReportLog(4)
	for i := 1; i <= 10; i++ {
		logReport(l, i)
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d", l.Len())
	}
	page := l.Page(0)
	if page.First != 7 || page.Next != 11 {
		t.Fatalf("bounds after eviction: first=%d next=%d", page.First, page.Next)
	}
	// A cursor pointing into the evicted range only sees what's retained;
	// the gap is visible as First > since+1.
	stale := l.Page(2)
	if len(stale.Reports) != 4 || stale.Reports[0].Seq != 7 {
		t.Fatalf("stale cursor page: %+v", stale.Reports)
	}
}

func TestReportLogHandler(t *testing.T) {
	l := NewReportLog(8)
	logReport(l, 1)
	logReport(l, 2)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page LogPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Boot == 0 || len(page.Reports) != 1 || page.Reports[0].Seq != 2 {
		t.Fatalf("page over HTTP: %+v", page)
	}
	if resp, _ := http.Get(srv.URL + "?since=junk"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %d", resp.StatusCode)
	}
}

// --- Coordinator --------------------------------------------------------

// testMember is an httptest-backed analyzer stand-in: a ReportLog plus a
// flippable health switch.
type testMember struct {
	name string
	srv  *httptest.Server
	up   atomic.Bool

	mu  sync.Mutex
	log *ReportLog
}

func newTestMember(t *testing.T, name string) *testMember {
	t.Helper()
	m := &testMember{name: name, log: NewReportLog(256)}
	m.up.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !m.up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("/reports", func(w http.ResponseWriter, r *http.Request) {
		if !m.up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		m.mu.Lock()
		h := m.log.Handler()
		m.mu.Unlock()
		h.ServeHTTP(w, r)
	})
	m.srv = httptest.NewServer(mux)
	t.Cleanup(m.srv.Close)
	return m
}

func (m *testMember) config() MemberConfig {
	return MemberConfig{Name: m.name, EventAddr: m.name + ":19000", BaseURL: m.srv.URL}
}

func (m *testMember) record(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	logReport(m.log, id)
}

// restart swaps in a fresh ReportLog, as a restarted analyzer would.
func (m *testMember) restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.log = NewReportLog(256)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fastCoordinator(t *testing.T, members ...*testMember) *Coordinator {
	t.Helper()
	cfgs := make([]MemberConfig, len(members))
	for i, m := range members {
		cfgs[i] = m.config()
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Members:       cfgs,
		ProbeInterval: 10 * time.Millisecond,
		PullInterval:  10 * time.Millisecond,
		Window:        20 * time.Millisecond,
		DownFails:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	m := MemberConfig{Name: "a", EventAddr: "a:1", BaseURL: "http://a"}
	if _, err := NewCoordinator(CoordinatorConfig{Members: []MemberConfig{m, m}}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Members: []MemberConfig{{Name: "a"}}}); err == nil {
		t.Fatal("member without addresses accepted")
	}
}

func TestCoordinatorFailoverReassignsAndBumpsEpoch(t *testing.T) {
	a := newTestMember(t, "alpha")
	b := newTestMember(t, "beta")
	c := fastCoordinator(t, a, b)

	waitFor(t, "both members alive", func() bool {
		view := c.Cluster()
		return len(view.Members) == 2 && view.Members[0].Alive && view.Members[1].Alive
	})
	epoch0 := c.Epoch()

	// Find an agent assigned to alpha so the failover is observable.
	var victim string
	for i := 0; i < 100; i++ {
		agent := fmt.Sprintf("agent-%d", i)
		asg, err := c.Assignment(agent)
		if err != nil {
			t.Fatal(err)
		}
		if asg.Member == "alpha" {
			victim = agent
			break
		}
	}
	if victim == "" {
		t.Fatal("no agent hashed to alpha")
	}

	a.up.Store(false)
	waitFor(t, "alpha declared dead", func() bool {
		for _, m := range c.Cluster().Members {
			if m.Name == "alpha" {
				return !m.Alive
			}
		}
		return false
	})
	if c.Epoch() <= epoch0 {
		t.Fatalf("epoch did not bump on death: %d -> %d", epoch0, c.Epoch())
	}
	asg, err := c.Assignment(victim)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Member != "beta" {
		t.Fatalf("victim still assigned to %q", asg.Member)
	}
	if view := c.Cluster(); view.Assignments[victim] != "beta" {
		t.Fatalf("cluster view assignment: %q", view.Assignments[victim])
	}

	// Recovery: epoch bumps again, the victim moves back (rendezvous
	// hashing restores the original owner).
	epochDead := c.Epoch()
	a.up.Store(true)
	waitFor(t, "alpha alive again", func() bool { return c.Epoch() > epochDead })
	if asg, _ := c.Assignment(victim); asg.Member != "alpha" {
		t.Fatalf("victim did not move back: %q", asg.Member)
	}
}

func TestCoordinatorAssignmentFailsWithNoAliveMembers(t *testing.T) {
	a := newTestMember(t, "alpha")
	c := fastCoordinator(t, a)
	waitFor(t, "alpha alive", func() bool { return c.Cluster().Members[0].Alive })
	a.up.Store(false)
	waitFor(t, "alpha dead", func() bool { return !c.Cluster().Members[0].Alive })
	if _, err := c.Assignment("agent-1"); err == nil {
		t.Fatal("assignment succeeded with no alive members")
	}
	srv := httptest.NewServer(c.AssignHandler())
	defer srv.Close()
	if resp, _ := http.Get(srv.URL + "?agent=agent-1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("assign handler: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("assign handler without agent: %d", resp.StatusCode)
	}
}

func TestCoordinatorMergesMemberReports(t *testing.T) {
	a := newTestMember(t, "alpha")
	b := newTestMember(t, "beta")
	c := fastCoordinator(t, a, b)

	a.record(1)
	a.record(3)
	b.record(2)
	waitFor(t, "3 reports merged", func() bool { return len(c.Merged()) == 3 })

	envs := c.Merged()
	for _, e := range envs {
		if e.Member != "alpha" && e.Member != "beta" {
			t.Fatalf("unexpected member %q", e.Member)
		}
		var rep core.Report
		if err := json.Unmarshal(e.Report, &rep); err != nil {
			t.Fatalf("report body not verbatim JSON: %v", err)
		}
	}
	// Ordered by DetectedAt across members: trace ids 1, 2, 3.
	var ids []uint64
	for _, e := range envs {
		var rep core.Report
		json.Unmarshal(e.Report, &rep)
		ids = append(ids, rep.TraceID)
	}
	for i, want := range []uint64{1, 2, 3} {
		if ids[i] != want {
			t.Fatalf("merged order = %v", ids)
		}
	}

	// Pull cursors advance: nothing is ingested twice.
	waitFor(t, "cursors settle", func() bool {
		for _, m := range c.Cluster().Members {
			if m.Name == "alpha" && m.Since != 2 {
				return false
			}
			if m.Name == "beta" && m.Since != 1 {
				return false
			}
		}
		return true
	})
	time.Sleep(50 * time.Millisecond) // several more pull ticks
	if n := len(c.Merged()); n != 3 {
		t.Fatalf("re-pull duplicated reports: %d", n)
	}
}

func TestCoordinatorMemberRestartResetsCursor(t *testing.T) {
	a := newTestMember(t, "alpha")
	c := fastCoordinator(t, a)

	a.record(1)
	waitFor(t, "first report merged", func() bool { return len(c.Merged()) == 1 })
	epoch0 := c.Epoch()

	a.restart()
	a.record(7)
	waitFor(t, "post-restart report merged", func() bool { return len(c.Merged()) == 2 })
	if c.Epoch() <= epoch0 {
		t.Fatalf("member restart did not bump epoch: %d -> %d", epoch0, c.Epoch())
	}
	envs := c.Merged()
	last := envs[len(envs)-1]
	if last.Seq != 1 {
		t.Fatalf("post-restart seq = %d, want 1 (fresh log)", last.Seq)
	}
	if last.Epoch <= envs[0].Epoch {
		t.Fatalf("post-restart epoch %d not after %d", last.Epoch, envs[0].Epoch)
	}
}

func TestCoordinatorHealthzAggregates(t *testing.T) {
	a := newTestMember(t, "alpha")
	b := newTestMember(t, "beta")
	c := fastCoordinator(t, a, b)
	waitFor(t, "both alive", func() bool {
		v := c.Cluster()
		return v.Members[0].Alive && v.Members[1].Alive
	})
	srv := httptest.NewServer(c.HealthzHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy cluster: %d", resp.StatusCode)
	}
	b.up.Store(false)
	waitFor(t, "beta dead", func() bool { return !c.Cluster().Members[1].Alive })
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded cluster: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"beta"`)) || !bytes.Contains(body, []byte(`"alive":false`)) {
		t.Fatalf("healthz body does not name the dead member: %s", body)
	}
}
