package federation_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gretel/internal/core"
	"gretel/internal/experiments"
	"gretel/internal/federation"
	"gretel/internal/replay"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOneMemberFederationParity is the ISSUE acceptance criterion: a
// federation of one must produce byte-identical report output to a bare
// analyzer over the same stream — same discipline as the shard and
// detect-worker parity tests.
func TestOneMemberFederationParity(t *testing.T) {
	lib := experiments.BenchLibrary()
	stream := experiments.FaultyBenchStream(20000)

	// Bare analyzer: the baseline bytes.
	bare := core.New(lib, core.Config{})
	replay.Drive(bare, stream)
	var baseline bytes.Buffer
	for _, rep := range bare.Reports() {
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		baseline.Write(body)
		baseline.WriteByte('\n')
	}
	if baseline.Len() == 0 {
		t.Fatal("degenerate test: bare analyzer produced no reports")
	}

	// Federated member: identical config, reports captured by a
	// ReportLog and served to a 1-member coordinator.
	log := federation.NewReportLog(1024)
	member := core.New(lib, core.Config{})
	member.OnReport(log.Record)
	replay.Drive(member, stream)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	mux.Handle("/reports", log.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := federation.NewCoordinator(federation.CoordinatorConfig{
		Members:       []federation.MemberConfig{{Name: "solo", EventAddr: "solo:19000", BaseURL: srv.URL}},
		ProbeInterval: 10 * time.Millisecond,
		PullInterval:  10 * time.Millisecond,
		Window:        20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := len(bare.Reports())
	waitFor(t, "all reports merged", func() bool { return len(c.Merged()) == want })

	rsrv := httptest.NewServer(c.ReportsHandler())
	defer rsrv.Close()
	resp, err := http.Get(rsrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	merged, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	if !bytes.Equal(merged, baseline.Bytes()) {
		t.Fatalf("1-member federation output differs from bare analyzer:\nfederated %d bytes, bare %d bytes", len(merged), baseline.Len())
	}
	// Ordering stats must show the degenerate merge was clean.
	if st := c.MergeStats(); st.Dups != 0 {
		t.Fatalf("solo merge saw dups: %+v", st)
	}
}
