// Package federation partitions the monitored fleet across N analyzer
// instances and merges their output back into one cluster view.
//
// The division of labor keeps the protocol thin: analyzers stay plain
// single-process gretel instances, each exposing its report history at
// /reports (ReportLog); agents stay plain resilient senders, pointed at
// their analyzer by a Resolve hook instead of a static address; and the
// coordinator owns all the federation logic — rendezvous-hashed
// assignment (Assign), member liveness probing with epoch bumps, report
// pulling, and deterministic merge ordering (Merger). Analyzer failover
// is therefore "redial the replacement": the coordinator reassigns the
// dead member's agents, the agents' next redial resolves to the
// survivor, and the PR 3 spill ring replays everything it retained with
// a fresh session hello so the replacement adopts the stream instead of
// misreading its unseen prefix as loss.
//
// Reports carry (member id, analyzer epoch, member-local seq) in an
// Envelope; the merger emits them in fault-arrival order within a
// bounded reorder window, so a federation of one is byte-identical to a
// bare analyzer (enforced by TestOneMemberFederationParity, the same
// discipline as the shard and detect-worker parity tests).
package federation

import (
	"encoding/json"
	"hash/fnv"
	"time"
)

// Envelope wraps one member report with its global ordering key. Report
// is the member's core.Report exactly as the member marshaled it — the
// coordinator never re-encodes report bodies, which is what makes
// merged output byte-comparable to a bare analyzer's.
type Envelope struct {
	// Member is the producing analyzer instance.
	Member string `json:"member"`
	// Epoch is the coordinator's assignment epoch when the report was
	// ingested; it bumps on every membership change (death, recovery,
	// restart), so readers can correlate report provenance with
	// failover boundaries.
	Epoch uint64 `json:"epoch"`
	// Seq is the member-local report sequence number (1-based, from the
	// member's ReportLog; restarts reset it along with the boot id).
	Seq uint64 `json:"seq"`
	// At is the member's fault-arrival timestamp (Report.DetectedAt) —
	// the global merge-ordering key.
	At time.Time `json:"at"`
	// Report is the member-encoded report body, verbatim.
	Report json.RawMessage `json:"report"`
}

// Assign picks the member that owns key from the given candidates by
// highest-random-weight (rendezvous) hashing. The choice is
// deterministic in (key, member set) and minimally disruptive: removing
// a member moves only the keys it owned, and restoring it moves exactly
// those keys back. Returns "" when members is empty.
func Assign(key string, members []string) string {
	var (
		best       string
		bestWeight uint64
		found      bool
	)
	for _, m := range members {
		h := fnv.New64a()
		h.Write([]byte(m))
		h.Write([]byte{0})
		h.Write([]byte(key))
		w := h.Sum64()
		// Ties break toward the lexicographically smaller member so the
		// result stays independent of input order.
		if !found || w > bestWeight || (w == bestWeight && m < best) {
			best, bestWeight, found = m, w, true
		}
	}
	return best
}
