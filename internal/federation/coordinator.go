package federation

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"gretel/internal/telemetry"
)

// Coordinator telemetry (lives in the coordinator process's registry
// and shows up in its merged /metrics under the federation.* prefix).
var (
	mMerged      = telemetry.GetCounter("federation.reports_merged")
	mLate        = telemetry.GetCounter("federation.reports_late")
	mDup         = telemetry.GetCounter("federation.reports_dup")
	mSkipped     = telemetry.GetCounter("federation.reports_skipped")
	mPulls       = telemetry.GetCounter("federation.pulls")
	mPullErrors  = telemetry.GetCounter("federation.pull_errors")
	mProbeFails  = telemetry.GetCounter("federation.probe_failures")
	mAssignments = telemetry.GetCounter("federation.assignments")
	mEpochBumps  = telemetry.GetCounter("federation.epoch_bumps")
	gEpoch       = telemetry.GetGauge("federation.epoch")
	gAlive       = telemetry.GetGauge("federation.members_alive")
)

// MemberConfig names one analyzer instance: where agents stream events
// to it, and where its telemetry endpoints live.
type MemberConfig struct {
	// Name is the member id carried on envelopes (must be unique).
	Name string `json:"name"`
	// EventAddr is the member's agent-transport listener ("host:port"),
	// handed to agents via /assign.
	EventAddr string `json:"event_addr"`
	// BaseURL is the member's telemetry HTTP base ("http://host:port"),
	// probed for /healthz and pulled for /reports and /metrics.
	BaseURL string `json:"base_url"`
}

// CoordinatorConfig tunes the coordinator.
type CoordinatorConfig struct {
	// Members is the static fleet (≥1).
	Members []MemberConfig
	// ProbeInterval is the /healthz probe period (default 500ms).
	ProbeInterval time.Duration
	// DownFails is how many consecutive probe failures mark a member
	// dead (default 2). The first failure already reroutes nothing —
	// agents keep their assignment until the member is declared dead.
	DownFails int
	// PullInterval is the /reports pull period (default 250ms).
	PullInterval time.Duration
	// Window is the merge reorder horizon (default 2×PullInterval).
	Window time.Duration
	// MergedCap bounds the retained merged stream (default 65536;
	// oldest evicted and counted).
	MergedCap int
	// Client overrides the HTTP client (default: 2s timeout).
	Client *http.Client
	// OnEnvelope, when set, receives every merged envelope in order.
	OnEnvelope func(Envelope)
}

func (c *CoordinatorConfig) defaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.DownFails <= 0 {
		c.DownFails = 2
	}
	if c.PullInterval <= 0 {
		c.PullInterval = 250 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 2 * c.PullInterval
	}
	if c.MergedCap <= 0 {
		c.MergedCap = 65536
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
}

// memberState is the coordinator's live view of one member.
type memberState struct {
	cfg     MemberConfig
	alive   bool
	fails   int
	boot    uint64 // member ReportLog incarnation (0 = never pulled)
	since   uint64 // pull cursor: highest seq ingested
	skipped uint64 // reports evicted from the member ring before pull
	lastErr string
}

// MemberView is the /cluster JSON for one member.
type MemberView struct {
	MemberConfig
	Alive   bool   `json:"alive"`
	Boot    uint64 `json:"boot,omitempty"`
	Since   uint64 `json:"since"`
	Skipped uint64 `json:"skipped,omitempty"`
	LastErr string `json:"last_err,omitempty"`
}

// Assignment is the /assign response: where an agent should stream.
type Assignment struct {
	Agent  string `json:"agent"`
	Member string `json:"member"`
	Addr   string `json:"addr"`
	Epoch  uint64 `json:"epoch"`
}

// Coordinator probes member health, assigns agents to members by
// rendezvous hashing over the live set, pulls member report logs, and
// merges them into one deterministically ordered stream. It is the only
// federation-aware process; members and agents stay stock.
type Coordinator struct {
	cfg    CoordinatorConfig
	merger *Merger

	mu      sync.Mutex
	names   []string // configured member order
	members map[string]*memberState
	epoch   uint64
	agents  map[string]string // agent -> member it was last assigned
	merged  []Envelope
	evicted uint64 // merged entries dropped beyond MergedCap

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewCoordinator validates the fleet and starts the probe/pull loop.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.defaults()
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("federation: coordinator needs at least one member")
	}
	c := &Coordinator{
		cfg:     cfg,
		members: make(map[string]*memberState, len(cfg.Members)),
		agents:  make(map[string]string),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, m := range cfg.Members {
		if m.Name == "" || m.EventAddr == "" || m.BaseURL == "" {
			return nil, fmt.Errorf("federation: member needs name, event addr, and base URL: %+v", m)
		}
		if _, dup := c.members[m.Name]; dup {
			return nil, fmt.Errorf("federation: duplicate member %q", m.Name)
		}
		m.BaseURL = strings.TrimRight(m.BaseURL, "/")
		c.members[m.Name] = &memberState{cfg: m}
		c.names = append(c.names, m.Name)
	}
	c.merger = NewMerger(MergerConfig{Window: cfg.Window, Emit: c.emit})
	go c.run()
	return c, nil
}

// Close stops the loops (after one final pull) and flushes the merger.
// Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		<-c.done
		c.merger.Flush()
	})
}

// emit appends one merged envelope to the bounded retained stream.
func (c *Coordinator) emit(env Envelope) {
	mMerged.Inc()
	c.mu.Lock()
	if len(c.merged) >= c.cfg.MergedCap {
		drop := len(c.merged) - c.cfg.MergedCap + 1
		c.merged = append(c.merged[:0], c.merged[drop:]...)
		c.evicted += uint64(drop)
	}
	c.merged = append(c.merged, env)
	c.mu.Unlock()
	if c.cfg.OnEnvelope != nil {
		c.cfg.OnEnvelope(env)
	}
}

// run drives probing and pulling on one goroutine, so state transitions
// (and their epoch bumps) are serialized.
func (c *Coordinator) run() {
	defer close(c.done)
	probe := time.NewTicker(c.cfg.ProbeInterval)
	defer probe.Stop()
	pull := time.NewTicker(c.cfg.PullInterval)
	defer pull.Stop()
	c.probeAll() // prime liveness before the first tick
	for {
		select {
		case <-c.stop:
			c.pullAll() // final drain of whatever members still answer
			return
		case <-probe.C:
			c.probeAll()
		case <-pull.C:
			c.pullAll()
			c.merger.AdvanceTo(time.Now().Add(-c.cfg.Window))
		}
	}
}

// probeAll checks every member's /healthz and applies liveness
// transitions; any change to the alive set bumps the epoch.
func (c *Coordinator) probeAll() {
	changed := false
	for _, name := range c.names {
		st := c.member(name)
		ok, err := c.probe(st.cfg.BaseURL)
		c.mu.Lock()
		if ok {
			st.fails = 0
			st.lastErr = ""
			if !st.alive {
				st.alive = true
				changed = true
			}
		} else {
			mProbeFails.Inc()
			st.fails++
			st.lastErr = err
			if st.alive && st.fails >= c.cfg.DownFails {
				st.alive = false
				changed = true
			}
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	if changed {
		c.bumpEpochLocked()
	}
	alive := int64(0)
	for _, st := range c.members {
		if st.alive {
			alive++
		}
	}
	gAlive.Set(alive)
	c.mu.Unlock()
}

func (c *Coordinator) probe(base string) (bool, string) {
	resp, err := c.cfg.Client.Get(base + "/healthz")
	if err != nil {
		return false, err.Error()
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("healthz: %s", resp.Status)
	}
	return true, ""
}

// bumpEpochLocked advances the assignment epoch; c.mu must be held.
func (c *Coordinator) bumpEpochLocked() {
	c.epoch++
	mEpochBumps.Inc()
	gEpoch.Set(int64(c.epoch))
}

// pullAll ingests report increments from every alive member.
func (c *Coordinator) pullAll() {
	for _, name := range c.names {
		st := c.member(name)
		c.mu.Lock()
		alive, base, since := st.alive, st.cfg.BaseURL, st.since
		c.mu.Unlock()
		if !alive {
			continue
		}
		mPulls.Inc()
		page, err := c.fetchPage(base, since)
		if err != nil {
			mPullErrors.Inc()
			c.mu.Lock()
			st.lastErr = err.Error()
			c.mu.Unlock()
			continue
		}
		c.mu.Lock()
		if page.Boot != st.boot {
			// New log incarnation: the member restarted (or this is the
			// first pull). Reset the cursor and re-pull next tick; a
			// genuine restart is a membership event, so bump the epoch.
			if st.boot != 0 {
				c.bumpEpochLocked()
			}
			st.boot = page.Boot
			st.since = 0
			c.mu.Unlock()
			continue
		}
		if page.First > st.since+1 && len(page.Reports) > 0 {
			miss := page.First - st.since - 1
			st.skipped += miss
			mSkipped.Add(miss)
		}
		epoch := c.epoch
		for _, e := range page.Reports {
			if e.Seq > st.since {
				st.since = e.Seq
			}
		}
		reports := page.Reports
		c.mu.Unlock()
		for _, e := range reports {
			c.merger.Add(Envelope{Member: name, Epoch: epoch, Seq: e.Seq, At: e.At, Report: e.Report})
		}
	}
	st := c.merger.Stats()
	mLate.Add(st.Late - mLate.Value())
	mDup.Add(st.Dups - mDup.Value())
}

func (c *Coordinator) fetchPage(base string, since uint64) (LogPage, error) {
	var page LogPage
	resp, err := c.cfg.Client.Get(fmt.Sprintf("%s/reports?since=%d", base, since))
	if err != nil {
		return page, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return page, fmt.Errorf("reports: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return page, fmt.Errorf("reports: decoding: %w", err)
	}
	return page, nil
}

func (c *Coordinator) member(name string) *memberState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[name]
}

// aliveLocked returns the alive member names in configured order; c.mu
// must be held.
func (c *Coordinator) aliveLocked() []string {
	alive := make([]string, 0, len(c.names))
	for _, n := range c.names {
		if c.members[n].alive {
			alive = append(alive, n)
		}
	}
	return alive
}

// Assignment maps an agent onto its current analyzer. It fails when no
// member is alive; the agent's resolver treats that as a failed dial
// attempt and retries with backoff.
func (c *Coordinator) Assignment(agent string) (Assignment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := Assign(agent, c.aliveLocked())
	if name == "" {
		return Assignment{}, fmt.Errorf("federation: no alive members")
	}
	c.agents[agent] = name
	mAssignments.Inc()
	return Assignment{Agent: agent, Member: name, Addr: c.members[name].cfg.EventAddr, Epoch: c.epoch}, nil
}

// Epoch returns the current assignment epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// ClusterView is the /cluster JSON: epoch, members, and the last-known
// agent assignments (re-derived against the current alive set).
type ClusterView struct {
	Epoch       uint64            `json:"epoch"`
	Members     []MemberView      `json:"members"`
	Assignments map[string]string `json:"assignments,omitempty"`
	Merged      uint64            `json:"merged"`
	Pending     int               `json:"pending"`
	Evicted     uint64            `json:"evicted,omitempty"`
}

// Cluster snapshots the membership and assignment state.
func (c *Coordinator) Cluster() ClusterView {
	c.mu.Lock()
	defer c.mu.Unlock()
	view := ClusterView{Epoch: c.epoch, Evicted: c.evicted}
	for _, n := range c.names {
		st := c.members[n]
		view.Members = append(view.Members, MemberView{
			MemberConfig: st.cfg, Alive: st.alive, Boot: st.boot,
			Since: st.since, Skipped: st.skipped, LastErr: st.lastErr,
		})
	}
	alive := c.aliveLocked()
	if len(c.agents) > 0 {
		view.Assignments = make(map[string]string, len(c.agents))
		for agent := range c.agents {
			view.Assignments[agent] = Assign(agent, alive)
		}
	}
	view.Merged = c.merger.Stats().Merged
	view.Pending = c.merger.Pending()
	return view
}

// MergeStats reports the merger's ordering counters (merged, late,
// duplicate, and pending envelopes).
func (c *Coordinator) MergeStats() MergerStats {
	return c.merger.Stats()
}

// Merged returns a copy of the retained merged stream.
func (c *Coordinator) Merged() []Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Envelope, len(c.merged))
	copy(out, c.merged)
	return out
}

// --- HTTP surface -------------------------------------------------------

// AssignHandler serves GET /assign?agent=NAME.
func (c *Coordinator) AssignHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		agent := req.URL.Query().Get("agent")
		if agent == "" {
			http.Error(w, "missing agent parameter", http.StatusBadRequest)
			return
		}
		asg, err := c.Assignment(agent)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(asg)
	})
}

// ClusterHandler serves GET /cluster.
func (c *Coordinator) ClusterHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Cluster())
	})
}

// HealthzHandler merges member health into one cluster verdict: 200
// when every configured member is alive, 503 naming the dead ones.
func (c *Coordinator) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		c.mu.Lock()
		type memberHealth struct {
			Name    string `json:"name"`
			Alive   bool   `json:"alive"`
			LastErr string `json:"last_err,omitempty"`
		}
		out := struct {
			OK      bool           `json:"ok"`
			Epoch   uint64         `json:"epoch"`
			Members []memberHealth `json:"members"`
		}{OK: true, Epoch: c.epoch}
		var dead []string
		for _, n := range c.names {
			st := c.members[n]
			out.Members = append(out.Members, memberHealth{Name: n, Alive: st.alive, LastErr: st.lastErr})
			if !st.alive {
				dead = append(dead, n)
			}
		}
		c.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if len(dead) > 0 {
			out.OK = false
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(out)
	})
}

// ReportsHandler streams the merged report bodies as NDJSON — exactly
// the members' bytes, in merged order — or full envelopes with
// ?format=envelope.
func (c *Coordinator) ReportsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		envs := c.Merged()
		if req.URL.Query().Get("format") == "envelope" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			for _, env := range envs {
				enc.Encode(env)
			}
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, env := range envs {
			w.Write(env.Report)
			w.Write([]byte("\n"))
		}
	})
}

// MetricsHandler merges every alive member's /metrics?format=json
// snapshot with the coordinator's own registry into one cluster view:
// counters, gauges, and funcs sum per name; histogram counts sum with
// count-weighted means and quantiles (an approximation — exact merge
// would need the raw buckets) and max of maxes. Text by default,
// ?format=json for the merged snapshot.
func (c *Coordinator) MetricsHandler(own *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		merged := own.Snapshot()
		c.mu.Lock()
		targets := make([]string, 0, len(c.names))
		for _, n := range c.names {
			if st := c.members[n]; st.alive {
				targets = append(targets, st.cfg.BaseURL)
			}
		}
		c.mu.Unlock()
		for _, base := range targets {
			var snap telemetry.Snapshot
			resp, err := c.cfg.Client.Get(base + "/metrics?format=json")
			if err != nil {
				continue
			}
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err != nil {
				continue
			}
			mergeSnapshot(&merged, &snap)
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(merged)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		merged.WriteText(w)
	})
}

// mergeSnapshot folds src into dst.
func mergeSnapshot(dst, src *telemetry.Snapshot) {
	if dst.Counters == nil {
		dst.Counters = map[string]uint64{}
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	if dst.Gauges == nil {
		dst.Gauges = map[string]int64{}
	}
	for k, v := range src.Gauges {
		dst.Gauges[k] += v
	}
	if len(src.Funcs) > 0 && dst.Funcs == nil {
		dst.Funcs = map[string]float64{}
	}
	for k, v := range src.Funcs {
		dst.Funcs[k] += v
	}
	if dst.Histograms == nil {
		dst.Histograms = map[string]telemetry.HistStats{}
	}
	for k, v := range src.Histograms {
		cur := dst.Histograms[k]
		total := cur.Count + v.Count
		if total > 0 {
			wa := func(a, b float64) float64 {
				return (a*float64(cur.Count) + b*float64(v.Count)) / float64(total)
			}
			cur.MeanMs = wa(cur.MeanMs, v.MeanMs)
			cur.P50Ms = wa(cur.P50Ms, v.P50Ms)
			cur.P90Ms = wa(cur.P90Ms, v.P90Ms)
			cur.P99Ms = wa(cur.P99Ms, v.P99Ms)
		}
		cur.Count = total
		if v.MaxMs > cur.MaxMs {
			cur.MaxMs = v.MaxMs
		}
		dst.Histograms[k] = cur
	}
}

// Mux builds the coordinator's full HTTP surface: /assign, /cluster,
// /reports, and the federation-merged /metrics and /healthz (which is
// why it cannot reuse telemetry.NewMux — that mux owns those two
// patterns for the local process view).
func (c *Coordinator) Mux(own *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/assign", c.AssignHandler())
	mux.Handle("/cluster", c.ClusterHandler())
	mux.Handle("/reports", c.ReportsHandler())
	mux.Handle("/metrics", c.MetricsHandler(own))
	mux.Handle("/healthz", c.HealthzHandler())
	return mux
}
