package federation

import (
	"container/heap"
	"sync"
	"time"
)

// MergerConfig tunes the merge stage.
type MergerConfig struct {
	// Window is the reorder horizon: an envelope is held until the
	// watermark (the max fault-arrival time seen, or the clock handed to
	// AdvanceTo) passes its At by this much, giving slower members time
	// to contribute earlier reports. Default 500ms.
	Window time.Duration
	// Emit receives envelopes in merged order. Required.
	Emit func(Envelope)
}

// MergerStats counts merge outcomes.
type MergerStats struct {
	// Merged counts envelopes emitted in order.
	Merged uint64
	// Late counts envelopes that arrived after the watermark had passed
	// them; they are emitted immediately (never dropped) but out of
	// global order.
	Late uint64
	// Dups counts envelopes rejected by the per-(member, epoch)
	// sequence high-water mark — a coordinator cursor replay.
	Dups uint64
}

type memberEpoch struct {
	member string
	epoch  uint64
}

// Merger folds per-member report streams into one globally ordered
// stream: fault-arrival order (At), ties broken by (Member, Epoch, Seq)
// so the order is deterministic for identical inputs. Each member's
// stream must arrive in its own Seq order (ReportLog guarantees this);
// cross-member interleaving is what the reorder window absorbs. With a
// single member the merge degenerates to the identity: every envelope
// emits in Seq order, which is the byte-parity case.
type Merger struct {
	cfg MergerConfig

	mu        sync.Mutex
	pending   envHeap
	watermark time.Time
	seen      map[memberEpoch]uint64
	stats     MergerStats
}

// NewMerger builds a merger delivering to cfg.Emit.
func NewMerger(cfg MergerConfig) *Merger {
	if cfg.Window <= 0 {
		cfg.Window = 500 * time.Millisecond
	}
	return &Merger{cfg: cfg, seen: make(map[memberEpoch]uint64)}
}

// Add folds one envelope in, emitting everything the advancing
// watermark has released.
func (m *Merger) Add(env Envelope) {
	m.mu.Lock()
	key := memberEpoch{env.Member, env.Epoch}
	if env.Seq <= m.seen[key] {
		m.stats.Dups++
		m.mu.Unlock()
		return
	}
	m.seen[key] = env.Seq
	if !env.At.After(m.watermark) {
		// Its slot in the global order already passed: emit now rather
		// than never, and count the ordering violation.
		m.stats.Late++
		m.stats.Merged++
		emit := m.cfg.Emit
		m.mu.Unlock()
		emit(env)
		return
	}
	heap.Push(&m.pending, env)
	if wm := env.At.Add(-m.cfg.Window); wm.After(m.watermark) {
		m.watermark = wm
	}
	ready := m.releaseLocked()
	m.mu.Unlock()
	m.deliver(ready)
}

// AdvanceTo moves the watermark to t (typically now - Window, on a
// timer) so a quiescent stream still drains: without new arrivals the
// At-driven watermark would hold the last reports forever.
func (m *Merger) AdvanceTo(t time.Time) {
	m.mu.Lock()
	if t.After(m.watermark) {
		m.watermark = t
	}
	ready := m.releaseLocked()
	m.mu.Unlock()
	m.deliver(ready)
}

// Flush emits everything still pending, in order. Call at end of
// stream.
func (m *Merger) Flush() {
	m.mu.Lock()
	ready := make([]Envelope, 0, len(m.pending))
	for len(m.pending) > 0 {
		ready = append(ready, heap.Pop(&m.pending).(Envelope))
	}
	m.stats.Merged += uint64(len(ready))
	m.mu.Unlock()
	m.deliver(ready)
}

// Stats snapshots the merge counters.
func (m *Merger) Stats() MergerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Pending reports how many envelopes are held in the reorder window.
func (m *Merger) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// releaseLocked pops every envelope at or before the watermark; m.mu
// must be held.
func (m *Merger) releaseLocked() []Envelope {
	var ready []Envelope
	for len(m.pending) > 0 && !m.pending[0].At.After(m.watermark) {
		ready = append(ready, heap.Pop(&m.pending).(Envelope))
	}
	m.stats.Merged += uint64(len(ready))
	return ready
}

func (m *Merger) deliver(ready []Envelope) {
	for _, env := range ready {
		m.cfg.Emit(env)
	}
}

// envHeap orders envelopes by (At, Member, Epoch, Seq).
type envHeap []Envelope

func (h envHeap) Len() int { return len(h) }
func (h envHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if !a.At.Equal(b.At) {
		return a.At.Before(b.At)
	}
	if a.Member != b.Member {
		return a.Member < b.Member
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	return a.Seq < b.Seq
}
func (h envHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *envHeap) Push(x any)   { *h = append(*h, x.(Envelope)) }
func (h *envHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
