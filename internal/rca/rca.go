// Package rca implements GRETEL's root-cause analysis (Algorithm 3):
// given a fault report — the matched operations, the error messages in
// the snapshot, and their source/destination nodes — it inspects
// distributed state collected passively (resource time series from the
// collectd analogue, software-dependency watcher status) to name the
// likely root cause.
//
// Per the paper, the engine first examines the nodes the error messages
// touch; only if nothing anomalous is found there does it widen to the
// remaining nodes participating in the operation, since the true root
// cause may sit upstream of where the fault surfaced (§5.4, §7.2.3).
//
// The engine reads distributed state through the StateSource interface:
// in-process runs adapt the simulated fabric directly (NewFabricSource);
// the split analyzer service accumulates agents' StateUpdates into a
// Store (NewStore) — the collectd-to-analyzer pipeline of §6.
package rca

import (
	"fmt"
	"sync"
	"time"

	"gretel/internal/agent"
	"gretel/internal/cluster"
	"gretel/internal/core"
	"gretel/internal/fingerprint"
	"gretel/internal/metrics"
	"gretel/internal/telemetry"
	"gretel/internal/trace"
	"gretel/internal/tracestore"
	"gretel/internal/tsoutliers"
)

// RCA telemetry: how often the hook runs and what it finds, by cause
// class (the latency of each invocation is timed by the analyzer's
// core.rca histogram around the hook call).
var (
	mInvocations      = telemetry.GetCounter("rca.invocations")
	mFindingsResource = telemetry.GetCounter("rca.findings.resource")
	mFindingsSoftware = telemetry.GetCounter("rca.findings.software")
)

// StateSource is the engine's view of the deployment's distributed state.
type StateSource interface {
	// NodeStates returns the current node inventory with dependency health.
	NodeStates() []agent.NodeState
	// MetricWindow returns each metric's samples for a node in [from, to].
	MetricWindow(node string, from, to time.Time) map[string][]metrics.Point
}

// Config tunes the anomaly judgments over node state.
type Config struct {
	// Lookback bounds the metric window inspected before the fault.
	Lookback time.Duration
	// CPUHighPct flags sustained CPU above this level.
	CPUHighPct float64
	// DiskLowGB flags free disk below this level.
	DiskLowGB float64
	// MemHighFrac flags memory usage above this fraction of total.
	MemHighFrac float64
	// Shift configures the level-shift detector replayed over each
	// metric window.
	Shift tsoutliers.Options
}

func (c *Config) defaults() {
	if c.Lookback == 0 {
		c.Lookback = 120 * time.Second
	}
	if c.CPUHighPct == 0 {
		c.CPUHighPct = 85
	}
	if c.DiskLowGB == 0 {
		c.DiskLowGB = 5
	}
	if c.MemHighFrac == 0 {
		c.MemHighFrac = 0.95
	}
	if c.Shift.MinSpread == 0 {
		c.Shift.MinSpread = 1.5
	}
	if c.Shift.Warmup == 0 {
		c.Shift.Warmup = 10
	}
}

// Engine evaluates root causes against a deployment's observable state.
type Engine struct {
	cfg Config
	lib *fingerprint.Library
	src StateSource
}

// NewEngine builds the engine over the fingerprint library (for
// operation→node mapping) and a state source.
func NewEngine(lib *fingerprint.Library, src StateSource, cfg Config) *Engine {
	cfg.defaults()
	return &Engine{cfg: cfg, lib: lib, src: src}
}

// fabricSource adapts the in-process simulation (fabric + collector).
type fabricSource struct {
	fabric    *cluster.Fabric
	collector *metrics.Collector
}

// NewFabricSource adapts a simulated fabric and its metrics collector to
// the StateSource interface.
func NewFabricSource(f *cluster.Fabric, c *metrics.Collector) StateSource {
	return &fabricSource{fabric: f, collector: c}
}

func (s *fabricSource) NodeStates() []agent.NodeState {
	var out []agent.NodeState
	for _, n := range s.fabric.Nodes() {
		ns := agent.NodeState{
			Name: n.Name, Service: n.Service, Up: n.Up, MemTotalMB: n.Base.MemTotalMB,
		}
		for _, d := range n.Dependencies() {
			ns.Deps = append(ns.Deps, agent.DepStatus{Node: n.Name, Name: d.Name, Running: d.Running && n.Up})
		}
		out = append(out, ns)
	}
	return out
}

func (s *fabricSource) MetricWindow(node string, from, to time.Time) map[string][]metrics.Point {
	return s.collector.Snapshot(node, from, to)
}

// Store accumulates StateUpdates streamed by remote agents and serves
// them as a StateSource — the analyzer-service side of the collectd
// pipeline. Safe for concurrent use.
type Store struct {
	mu        sync.RWMutex
	nodes     map[string]agent.NodeState
	collector *metrics.Collector
}

// NewStore returns an empty state store.
func NewStore() *Store {
	return &Store{nodes: make(map[string]agent.NodeState), collector: metrics.NewCollector()}
}

// Apply merges one update.
func (s *Store) Apply(u agent.StateUpdate) {
	s.mu.Lock()
	for _, n := range u.Nodes {
		s.nodes[n.Name] = n
	}
	s.mu.Unlock()
	for _, m := range u.Samples {
		s.collector.Record(m.Node, m.Metric, m.Time, m.Value)
	}
}

// NodeStates implements StateSource.
func (s *Store) NodeStates() []agent.NodeState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]agent.NodeState, 0, len(s.nodes))
	for _, n := range s.nodes {
		out = append(out, n)
	}
	sortNodeStates(out)
	return out
}

func sortNodeStates(ns []agent.NodeState) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Name < ns[j-1].Name; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// MetricWindow implements StateSource.
func (s *Store) MetricWindow(node string, from, to time.Time) map[string][]metrics.Point {
	return s.collector.Snapshot(node, from, to)
}

// Hook adapts the engine to the analyzer's RCA hook signature.
func (e *Engine) Hook() func(*core.Report) []core.RootCause {
	return e.Analyze
}

// ExplainHook adapts the engine to the analyzer's explaining RCA hook
// signature: the same verdict as Hook, plus the evidence — every node
// examined, in order, with the watcher statuses and metric windows
// judged on it. Install with core.Analyzer.SetRCAExplain.
func (e *Engine) ExplainHook() func(*core.Report) ([]core.RootCause, *tracestore.RCAEvidence) {
	return func(rep *core.Report) ([]core.RootCause, *tracestore.RCAEvidence) {
		ev := &tracestore.RCAEvidence{}
		causes := e.analyze(rep, ev)
		return causes, ev
	}
}

// Analyze implements GET_ROOT_CAUSE: error nodes first, then the
// remaining operation nodes.
func (e *Engine) Analyze(rep *core.Report) []core.RootCause {
	return e.analyze(rep, nil)
}

// analyze is the shared implementation; when ev is non-nil it records
// the evidence behind the verdict. The recording never changes the
// verdict: both paths run the identical node walks and judgments.
func (e *Engine) analyze(rep *core.Report, ev *tracestore.RCAEvidence) []core.RootCause {
	mInvocations.Inc()
	at := rep.Fault.Time
	nodes := e.src.NodeStates()
	opNodes := e.nodesForOperations(rep.Candidates, nodes)

	errorNodes := map[string]bool{}
	for i := range rep.Errors {
		ev := &rep.Errors[i]
		if ev.SrcNode != "" {
			errorNodes[ev.SrcNode] = true
		}
		if ev.DstNode != "" {
			errorNodes[ev.DstNode] = true
		}
	}
	if len(rep.Errors) == 0 {
		// Performance faults carry no error messages; start from the
		// slow message's endpoints.
		if rep.Fault.SrcNode != "" {
			errorNodes[rep.Fault.SrcNode] = true
		}
		if rep.Fault.DstNode != "" {
			errorNodes[rep.Fault.DstNode] = true
		}
	}

	var first, rest []agent.NodeState
	for _, n := range nodes {
		switch {
		case errorNodes[n.Name]:
			first = append(first, n)
		case opNodes[n.Name]:
			rest = append(rest, n)
		}
	}

	causes := e.findRootCause(first, at, "error", ev)
	if len(causes) == 0 {
		causes = e.findRootCause(rest, at, "operation", ev)
	}
	for _, c := range causes {
		switch c.Kind {
		case "resource":
			mFindingsResource.Inc()
		case "software":
			mFindingsSoftware.Inc()
		}
	}
	return causes
}

// nodesForOperations maps the matched operations to deployment nodes via
// their fingerprints' services. nova-compute and neutron-agent APIs map
// to every compute host.
func (e *Engine) nodesForOperations(names []string, nodes []agent.NodeState) map[string]bool {
	svcWanted := map[trace.Service]bool{}
	for _, name := range names {
		fp := e.lib.ByName(name)
		if fp == nil {
			continue
		}
		for _, api := range fp.APIs {
			svcWanted[api.Service] = true
			if api.Service == trace.SvcNovaCompute || api.Service == trace.SvcNeutronAgent {
				svcWanted[trace.SvcNovaCompute] = true
			}
		}
	}
	out := map[string]bool{}
	for _, n := range nodes {
		if svcWanted[n.Service] {
			out[n.Name] = true
		}
		if n.Service == trace.SvcNovaCompute &&
			(svcWanted[trace.SvcNovaCompute] || svcWanted[trace.SvcNeutronAgent]) {
			out[n.Name] = true
		}
	}
	return out
}

// findRootCause implements FIND_ROOT_CAUSE over a node list: anomalies in
// resource metadata, then software-dependency health. With ev non-nil
// each examined node is appended to the evidence — its stage, watcher
// statuses, metric windows, and the findings it produced.
func (e *Engine) findRootCause(nodes []agent.NodeState, at time.Time, stage string, ev *tracestore.RCAEvidence) []core.RootCause {
	var out []core.RootCause
	for _, n := range nodes {
		var rec *tracestore.RCANode
		if ev != nil {
			ev.Nodes = append(ev.Nodes, tracestore.RCANode{Node: n.Name, Stage: stage, Up: n.Up})
			rec = &ev.Nodes[len(ev.Nodes)-1]
			for _, dep := range n.Deps {
				rec.Deps = append(rec.Deps, tracestore.RCADep{Name: dep.Name, Running: dep.Running})
			}
		}
		found := e.resourceAnomalies(n, at, rec)
		for _, dep := range n.Deps {
			if !dep.Running || !n.Up {
				detail := fmt.Sprintf("dependency %s is not running", dep.Name)
				if !n.Up {
					detail = fmt.Sprintf("node down (dependency %s unreachable)", dep.Name)
				}
				found = append(found, core.RootCause{Node: n.Name, Kind: "software", Detail: detail})
			}
		}
		if rec != nil {
			for _, c := range found {
				rec.Findings = append(rec.Findings, c.Detail)
			}
		}
		out = append(out, found...)
	}
	return out
}

// resourceAnomalies judges one node's metric windows: hard thresholds
// (disk nearly full, CPU pegged, memory exhausted) plus level shifts in
// the CPU and network series. With rec non-nil every inspected series is
// recorded in a fixed order (disk, memory, CPU, network) — the recording
// never alters the judgment.
func (e *Engine) resourceAnomalies(n agent.NodeState, at time.Time, rec *tracestore.RCANode) []core.RootCause {
	var out []core.RootCause
	from := at.Add(-e.cfg.Lookback)
	snap := e.src.MetricWindow(n.Name, from, at)

	record := func(name string, pts []metrics.Point, shifted bool, to float64) {
		if rec == nil {
			return
		}
		st := metrics.Summarize(pts)
		rec.Metrics = append(rec.Metrics, tracestore.RCAMetric{
			Name: name, Samples: len(pts), Last: pts[len(pts)-1].Value,
			Mean: st.Mean, Shifted: shifted, ShiftTo: to,
		})
	}

	if pts := snap[metrics.MetricDiskFree]; len(pts) > 0 {
		record(metrics.MetricDiskFree, pts, false, 0)
		if last := pts[len(pts)-1].Value; last < e.cfg.DiskLowGB {
			out = append(out, core.RootCause{Node: n.Name, Kind: "resource",
				Detail: fmt.Sprintf("low free disk space (%.1f GB)", last)})
		}
	}
	if pts := snap[metrics.MetricMemUsed]; len(pts) > 0 {
		record(metrics.MetricMemUsed, pts, false, 0)
		if last := pts[len(pts)-1].Value; n.MemTotalMB > 0 && last > e.cfg.MemHighFrac*n.MemTotalMB {
			out = append(out, core.RootCause{Node: n.Name, Kind: "resource",
				Detail: fmt.Sprintf("memory exhaustion (%.0f MB used)", last)})
		}
	}
	if pts := snap[metrics.MetricCPU]; len(pts) > 0 {
		st := metrics.Summarize(pts)
		shifted, to := e.levelShift(pts)
		record(metrics.MetricCPU, pts, shifted, to)
		switch {
		case st.Mean > e.cfg.CPUHighPct:
			out = append(out, core.RootCause{Node: n.Name, Kind: "resource",
				Detail: fmt.Sprintf("sustained high CPU (mean %.1f%%)", st.Mean)})
		case shifted && to > st.Min+10:
			out = append(out, core.RootCause{Node: n.Name, Kind: "resource",
				Detail: fmt.Sprintf("CPU usage surge (level shift to %.1f%%)", to)})
		}
	}
	if pts := snap[metrics.MetricNet]; len(pts) > 0 {
		shifted, to := e.levelShift(pts)
		record(metrics.MetricNet, pts, shifted, to)
		if shifted && to > 50 {
			out = append(out, core.RootCause{Node: n.Name, Kind: "resource",
				Detail: fmt.Sprintf("network throughput surge (%.1f Mbps)", to)})
		}
	}
	return out
}

// levelShift replays a metric window through a fresh LS detector and
// reports whether a shift occurred and its final level.
func (e *Engine) levelShift(pts []metrics.Point) (bool, float64) {
	det := tsoutliers.New(e.cfg.Shift)
	for _, p := range pts {
		det.Observe(p.Time, p.Value)
	}
	shifts := det.Shifts()
	if len(shifts) == 0 {
		return false, 0
	}
	return true, shifts[len(shifts)-1].To
}
