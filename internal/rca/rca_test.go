package rca_test

// Full-stack integration tests reproducing the paper's §7.2 case studies:
// each drives the simulated deployment through a scripted fault, lets the
// analyzer localize the operation, and checks the root-cause engine names
// the planted cause.

import (
	"strings"
	"testing"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/rca"
	"gretel/internal/scenario"
	"gretel/internal/trace"
	"gretel/internal/tracestore"
	"gretel/internal/tsoutliers"
)

// startBackground launches a few healthy core operations for ambient
// traffic.
func startBackground(h *scenario.Harness, n int) {
	ops := openstack.CoreOperations()
	for i := 0; i < n; i++ {
		h.D.Start(ops[i%len(ops)], nil)
	}
}

func findCause(t *testing.T, reps []*core.Report, node, kind, substr string) *core.Report {
	t.Helper()
	for _, rep := range reps {
		for _, rc := range rep.RootCauses {
			if rc.Node == node && rc.Kind == kind && strings.Contains(rc.Detail, substr) {
				return rep
			}
		}
	}
	var all []string
	for _, rep := range reps {
		for _, rc := range rep.RootCauses {
			all = append(all, rc.String())
		}
	}
	t.Fatalf("no root cause %q/%q on %s; reports=%d causes=%v", kind, substr, node, len(reps), all)
	return nil
}

// TestCaseStudyFailedImageUpload reproduces §7.2.1: image upload fails
// with REST 413 from Glance; RCA finds low free disk on the Glance node.
func TestCaseStudyFailedImageUpload(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 101, WithRCA: true, PollPeriod: time.Second})
	glance := h.D.Fabric.NodeFor(trace.SvcGlance)
	faults.ExhaustDisk(glance, 0.8)
	h.Plan.FailAPI(trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
		413, "Request Entity Too Large: insufficient store space")

	startBackground(h, 4)
	h.D.Start(openstack.OpImageUpload(), nil)
	h.Run(30 * time.Minute)
	h.Finish()

	rep := findCause(t, h.Reports(), "glance-node", "resource", "disk")
	if !rep.Hit() {
		t.Fatalf("operation not localized: candidates=%v truth=%s", rep.Candidates, rep.TruthOp)
	}
	// The paper narrowed this fault to exactly one operation.
	if len(rep.Candidates) != 1 || rep.Candidates[0] != "image-upload" {
		t.Fatalf("candidates = %v, want [image-upload]", rep.Candidates)
	}
	if rep.Fault.Status != 413 {
		t.Fatalf("fault status = %d", rep.Fault.Status)
	}
}

// TestCaseStudyNeutronLatency reproduces §7.2.2: a CPU surge on the
// Neutron server inflates its API latencies; GRETEL flags a performance
// fault and attributes it to the Neutron node's CPU.
func TestCaseStudyNeutronLatency(t *testing.T) {
	h := scenario.New(scenario.Options{
		Seed:       103,
		WithRCA:    true,
		PollPeriod: time.Second,
		Analyzer: core.Config{
			PerfDetection: true,
			Latency:       tsoutliers.Options{Warmup: 10, MinRun: 3, MinSpread: 0.01},
		},
	})
	neutron := h.D.Fabric.NodeFor(trace.SvcNeutron)

	// Steady VM-create stream to establish latency baselines, then the
	// surge.
	stop := false
	h.D.Sim.Every(20*time.Second, func() bool { return stop }, func() {
		h.D.Start(openstack.OpVMCreate(), nil)
	})
	h.Run(10 * time.Minute)
	restore := faults.InjectCPUSurge(neutron, 90)
	h.Run(15 * time.Minute)
	restore()
	stop = true
	h.Finish()

	if h.Analyzer.Stats.PerfAlarms == 0 {
		t.Fatal("no latency alarms under CPU surge")
	}
	var perf *core.Report
	for _, rep := range h.Reports() {
		if rep.Kind == core.Performance && rep.Fault.API.Service == trace.SvcNeutron {
			perf = rep
			break
		}
	}
	if perf == nil {
		t.Fatal("no performance report for a Neutron API")
	}
	findCause(t, []*core.Report{perf}, "neutron-node", "resource", "CPU")
	if !perf.Hit() {
		t.Fatalf("operation not identified: %v", perf.Candidates)
	}
}

// TestCaseStudyLinuxBridgeAgent reproduces §7.2.3: the linuxbridge agent
// crashes on the compute hosts, VM creation fails with "No valid host was
// found", and RCA — finding nothing on the error nodes — expands upstream
// to the compute hosts and names the crashed agent.
func TestCaseStudyLinuxBridgeAgent(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 107, WithRCA: true, PollPeriod: time.Second})
	for _, n := range h.D.ComputeNodes() {
		faults.StopDependency(n, "neutron-plugin-linuxbridge-agent")
	}
	h.Plan.Add(faults.Rule{
		Service:     trace.SvcNovaCompute,
		WhenDepDown: "neutron-plugin-linuxbridge-agent",
		StepIndex:   -1,
		Outcome: openstack.Outcome{Status: 1,
			ErrText: "NoValidHost: No valid host was found. There are not enough hosts available."},
	})

	startBackground(h, 3)
	h.D.Start(openstack.OpVMCreate(), nil)
	h.Run(time.Hour)
	h.Finish()

	rep := findCause(t, h.Reports(), "compute-1", "software", "neutron-plugin-linuxbridge-agent")
	if !rep.Hit() || rep.TruthOp != "vm-create" {
		t.Fatalf("vm-create not localized: %v (truth %s)", rep.Candidates, rep.TruthOp)
	}
	// The offending API is the upstream RPC, not the relayed REST error.
	if rep.OffendingAPI.Kind != trace.RPC {
		t.Fatalf("offending API = %v, want the RPC", rep.OffendingAPI)
	}
	// The RPC error and the relayed REST error are analyzed together.
	if len(rep.Errors) < 2 {
		t.Fatalf("snapshot errors = %d, want >= 2", len(rep.Errors))
	}
}

// TestCaseStudyNTPFailure reproduces §7.2.4: the NTP agent on the Cinder
// host stops, Keystone rejects Cinder's token validation with 401, and
// RCA finds the stopped NTP daemon on the Cinder node.
func TestCaseStudyNTPFailure(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 109, WithRCA: true, PollPeriod: time.Second})
	cinder := h.D.Fabric.NodeFor(trace.SvcCinder)
	faults.StopDependency(cinder, "ntp")
	h.Plan.Add(faults.Rule{
		API:         trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/auth/tokens"),
		WhenDepDown: "ntp",
		DepOnCaller: true,
		StepIndex:   -1,
		Outcome: openstack.Outcome{Status: 401,
			ErrText: "The request you have made requires authentication (token expired: clock skew)"},
	})

	h.D.Start(openstack.OpCinderList(), nil)
	h.Run(time.Hour)
	h.Finish()

	rep := findCause(t, h.Reports(), "cinder-node", "software", "ntp")
	// The 401 comes from Keystone toward Cinder.
	if rep.Fault.Status != 401 {
		t.Fatalf("fault status = %d, want 401", rep.Fault.Status)
	}
	if rep.Fault.SrcNode != "keystone-node" || rep.Fault.DstNode != "cinder-node" {
		t.Fatalf("401 endpoints: %s -> %s", rep.Fault.SrcNode, rep.Fault.DstNode)
	}
	// Auth APIs are pruned from fingerprints, so operation identification
	// legitimately finds no candidates (the paper's diagnosis also rests
	// on RCA alone here) — yet RCA still localizes the cause.
	if len(rep.Candidates) != 0 {
		t.Logf("note: candidates = %v", rep.Candidates)
	}
}

// TestRCAPerformanceFaultNoErrors checks Analyze's performance-fault path
// (no error messages): it starts from the slow message's endpoints.
func TestRCAPerformanceFaultNoErrors(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 113, WithRCA: true, PollPeriod: time.Second})
	glance := h.D.Fabric.NodeFor(trace.SvcGlance)
	faults.ExhaustDisk(glance, 0.4)
	h.Run(time.Minute) // collect some samples

	rep := &core.Report{
		Kind:  core.Performance,
		Fault: trace.Event{SrcNode: "glance-node", DstNode: "horizon-node", Time: h.D.Sim.Now()},
	}
	causes := h.Engine.Analyze(rep)
	found := false
	for _, c := range causes {
		if c.Node == "glance-node" && strings.Contains(c.Detail, "disk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("causes = %v", causes)
	}
	h.Finish()
}

// TestRCACleanSystemReportsNothing verifies no false root causes on a
// healthy deployment.
func TestRCACleanSystemReportsNothing(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 127, WithRCA: true, PollPeriod: time.Second})
	startBackground(h, 5)
	h.Run(10 * time.Minute)

	rep := &core.Report{
		Kind:       core.Operational,
		Fault:      trace.Event{SrcNode: "nova-node", DstNode: "horizon-node", Time: h.D.Sim.Now()},
		Errors:     []trace.Event{{SrcNode: "nova-node", DstNode: "horizon-node"}},
		Candidates: []string{"vm-create"},
	}
	causes := h.Engine.Analyze(rep)
	if len(causes) != 0 {
		t.Fatalf("healthy system produced causes: %v", causes)
	}
	h.Finish()
}

// TestCaseStudyMySQLOutage: the MySQL server becomes unreachable; every
// service's DB-backed API calls fail with 500s, watchers on each node
// report the lost mysql-conn dependency, and RCA names it.
func TestCaseStudyMySQLOutage(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 131, WithRCA: true, PollPeriod: time.Second})
	// The watchers observe TCP reachability to MySQL from every node.
	mysql := h.D.Fabric.Node("mysql-node")
	mysql.Up = false
	for _, n := range h.D.Fabric.Nodes() {
		if n.Name != "mysql-node" {
			faults.StopDependency(n, "mysql-conn")
		}
	}
	h.Plan.Add(faults.Rule{
		Service:     trace.SvcNova,
		WhenDepDown: "mysql-conn",
		StepIndex:   -1,
		Outcome: openstack.Outcome{Status: 500,
			ErrText: "DBConnectionError: Lost connection to MySQL server"},
	})

	h.D.Start(openstack.OpVMDelete(), nil)
	h.Run(time.Hour)
	h.Finish()

	rep := findCause(t, h.Reports(), "nova-node", "software", "mysql-conn")
	if rep.Fault.ErrorText == "" || !strings.Contains(rep.Fault.ErrorText, "MySQL") {
		t.Fatalf("error text = %q", rep.Fault.ErrorText)
	}
}

// TestCaseStudyBrokerOutage: with RabbitMQ down, RPC-bearing operations
// stall silently (paper limitation 2 — no wire-visible error), but the
// dependency watchers still expose the broker outage for operators.
func TestCaseStudyBrokerOutage(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 137, WithRCA: true, PollPeriod: time.Second})
	h.D.BrokerNode().Up = false
	inst := h.D.Start(openstack.OpVolumeCreate(), nil)
	h.Run(30 * time.Minute)
	h.Finish()

	if inst.State != openstack.StateAborted {
		t.Fatalf("state = %v, want aborted (publish fails)", inst.State)
	}
	if len(h.Reports()) != 0 {
		t.Fatalf("silent outage produced %d reports", len(h.Reports()))
	}
	// The watcher view still shows every node's rabbitmq-conn dead
	// (broker node down makes reachability false).
	statuses := agent.WatchDependencies(h.D.Fabric)
	down := 0
	for _, s := range statuses {
		if s.Node == "rabbitmq-node" && !s.Running {
			down++
		}
	}
	if down == 0 {
		t.Fatal("watchers did not surface the broker outage")
	}
}

// TestStoreBackedEngine drives RCA purely from agent StateUpdates — the
// split-architecture path where the analyzer service has no fabric
// access, only what the agents stream in.
func TestStoreBackedEngine(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 139})
	glance := h.D.Fabric.NodeFor(trace.SvcGlance)
	faults.ExhaustDisk(glance, 0.4)

	store := rca.NewStore()
	// Simulate the agent's periodic state reports.
	for i := 0; i < 30; i++ {
		h.Run(time.Second)
		store.Apply(agent.CollectState(h.D.Fabric, h.D.Sim.Now()))
	}

	engine := rca.NewEngine(h.Lib, store, rca.Config{})
	rep := &core.Report{
		Kind: core.Operational,
		Fault: trace.Event{SrcNode: "glance-node", DstNode: "horizon-node",
			Time: h.D.Sim.Now(), Status: 413},
		Errors:     []trace.Event{{SrcNode: "glance-node", DstNode: "horizon-node", Status: 413}},
		Candidates: []string{"image-upload"},
	}
	causes := engine.Analyze(rep)
	found := false
	for _, c := range causes {
		if c.Node == "glance-node" && strings.Contains(c.Detail, "disk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("store-backed RCA missed the disk cause: %v", causes)
	}
	h.Finish()
}

func TestStoreNodeStatesSortedAndMerged(t *testing.T) {
	store := rca.NewStore()
	store.Apply(agent.StateUpdate{Nodes: []agent.NodeState{{Name: "zeta", Up: true}}})
	store.Apply(agent.StateUpdate{Nodes: []agent.NodeState{{Name: "alpha", Up: true}}})
	store.Apply(agent.StateUpdate{Nodes: []agent.NodeState{{Name: "zeta", Up: false}}}) // update
	ns := store.NodeStates()
	if len(ns) != 2 || ns[0].Name != "alpha" || ns[1].Name != "zeta" {
		t.Fatalf("states = %+v", ns)
	}
	if ns[1].Up {
		t.Fatal("later update did not overwrite")
	}
}

// fabricate builds a Store with one node and a scripted metric series.
func fabricate(node string, memTotal float64, metric string, values []float64) (*rca.Store, time.Time) {
	store := rca.NewStore()
	t0 := time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)
	store.Apply(agent.StateUpdate{Nodes: []agent.NodeState{{
		Name: node, Service: trace.SvcNeutron, Up: true, MemTotalMB: memTotal,
	}}})
	var samples []agent.MetricSample
	for i, v := range values {
		samples = append(samples, agent.MetricSample{
			Node: node, Metric: metric, Time: t0.Add(time.Duration(i) * time.Second), Value: v,
		})
	}
	store.Apply(agent.StateUpdate{Samples: samples})
	return store, t0.Add(time.Duration(len(values)) * time.Second)
}

func analyzeOne(store *rca.Store, at time.Time, node string) []core.RootCause {
	lib := scenario.CoreLibrary()
	engine := rca.NewEngine(lib, store, rca.Config{})
	rep := &core.Report{
		Kind:   core.Operational,
		Fault:  trace.Event{SrcNode: node, Time: at},
		Errors: []trace.Event{{SrcNode: node}},
	}
	return engine.Analyze(rep)
}

func TestRCAMemoryExhaustion(t *testing.T) {
	series := make([]float64, 60)
	for i := range series {
		series[i] = 130000 // ~99% of 131072 MB
	}
	store, at := fabricate("neutron-node", 131072, "mem_used_mb", series)
	causes := analyzeOne(store, at, "neutron-node")
	found := false
	for _, c := range causes {
		if c.Kind == "resource" && strings.Contains(c.Detail, "memory exhaustion") {
			found = true
		}
	}
	if !found {
		t.Fatalf("memory exhaustion missed: %v", causes)
	}
}

func TestRCANetworkSurge(t *testing.T) {
	series := make([]float64, 0, 80)
	for i := 0; i < 40; i++ {
		series = append(series, 2) // quiet NIC
	}
	for i := 0; i < 40; i++ {
		series = append(series, 800) // saturation-level shift
	}
	store, at := fabricate("neutron-node", 131072, "net_mbps", series)
	causes := analyzeOne(store, at, "neutron-node")
	found := false
	for _, c := range causes {
		if c.Kind == "resource" && strings.Contains(c.Detail, "network throughput surge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("network surge missed: %v", causes)
	}
}

func TestRCASustainedHighCPU(t *testing.T) {
	series := make([]float64, 60)
	for i := range series {
		series[i] = 96
	}
	store, at := fabricate("neutron-node", 131072, "cpu", series)
	causes := analyzeOne(store, at, "neutron-node")
	found := false
	for _, c := range causes {
		if c.Kind == "resource" && strings.Contains(c.Detail, "sustained high CPU") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sustained CPU missed: %v", causes)
	}
}

func TestRCAHealthyMetricsNoCauses(t *testing.T) {
	series := make([]float64, 60)
	for i := range series {
		series[i] = 5 + float64(i%3)
	}
	store, at := fabricate("neutron-node", 131072, "cpu", series)
	if causes := analyzeOne(store, at, "neutron-node"); len(causes) != 0 {
		t.Fatalf("healthy node produced causes: %v", causes)
	}
}

// TestExplainHookMatchesAnalyze is the RCA no-drift contract: the
// explaining hook must return exactly Analyze's causes, plus evidence
// recording every node examined with its metric windows and findings.
func TestExplainHookMatchesAnalyze(t *testing.T) {
	series := make([]float64, 60)
	for i := range series {
		series[i] = 96 // pegged CPU
	}
	store, at := fabricate("neutron-node", 131072, "cpu", series)
	lib := scenario.CoreLibrary()
	engine := rca.NewEngine(lib, store, rca.Config{})
	rep := &core.Report{
		Kind:   core.Operational,
		Fault:  trace.Event{SrcNode: "neutron-node", Time: at},
		Errors: []trace.Event{{SrcNode: "neutron-node"}},
	}

	plain := engine.Analyze(rep)
	causes, ev := engine.ExplainHook()(rep)
	if len(plain) == 0 {
		t.Fatal("no causes from Analyze; scenario degenerated")
	}
	if len(causes) != len(plain) {
		t.Fatalf("explain causes = %v, Analyze = %v", causes, plain)
	}
	for i := range plain {
		if causes[i] != plain[i] {
			t.Fatalf("cause %d differs: %v vs %v", i, causes[i], plain[i])
		}
	}

	if ev == nil || len(ev.Nodes) == 0 {
		t.Fatal("no RCA evidence recorded")
	}
	n := ev.Nodes[0]
	if n.Node != "neutron-node" || n.Stage != "error" {
		t.Fatalf("first examined node = %+v, want neutron-node at error stage", n)
	}
	var cpu *tracestore.RCAMetric
	for i := range n.Metrics {
		if n.Metrics[i].Name == "cpu" {
			cpu = &n.Metrics[i]
		}
	}
	if cpu == nil {
		t.Fatalf("cpu window not recorded: %+v", n.Metrics)
	}
	if cpu.Samples != 60 || cpu.Last != 96 || cpu.Mean != 96 {
		t.Fatalf("cpu evidence = %+v", *cpu)
	}
	if len(n.Findings) == 0 || !strings.Contains(n.Findings[0], "CPU") {
		t.Fatalf("findings = %v", n.Findings)
	}
}

// TestExplainHookRecordsOperationStageWiden verifies the evidence shows
// the §5.4 widening: nothing anomalous on the error nodes, so the
// operation nodes are examined — and recorded — too.
func TestExplainHookRecordsOperationStageWiden(t *testing.T) {
	h := scenario.New(scenario.Options{Seed: 107, WithRCA: true, PollPeriod: time.Second})
	for _, n := range h.D.ComputeNodes() {
		faults.StopDependency(n, "neutron-plugin-linuxbridge-agent")
	}
	h.Run(time.Minute)
	rep := &core.Report{
		Kind:       core.Operational,
		Fault:      trace.Event{SrcNode: "nova-node", DstNode: "horizon-node", Time: h.D.Sim.Now()},
		Errors:     []trace.Event{{SrcNode: "nova-node", DstNode: "horizon-node"}},
		Candidates: []string{"vm-create"},
	}
	causes, ev := h.Engine.ExplainHook()(rep)
	found := false
	for _, c := range causes {
		if c.Kind == "software" && strings.Contains(c.Detail, "linuxbridge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stopped agent not found: %v", causes)
	}
	stages := map[string]int{}
	for _, n := range ev.Nodes {
		stages[n.Stage]++
	}
	if stages["error"] == 0 || stages["operation"] == 0 {
		t.Fatalf("evidence should show both stages examined, got %v", stages)
	}
	// Error-stage nodes come first in the recorded walk.
	if ev.Nodes[0].Stage != "error" {
		t.Fatalf("first node stage = %s", ev.Nodes[0].Stage)
	}
	h.Finish()
}
