// Pluggable reporters over ScenarioResult: a human table for terminals,
// xunit XML for CI test-result ingestion, and the canonical JSON layout
// that becomes the committed BENCH_<scenario>.json trajectory files.

package benchrunner

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Reporter renders one scenario result to a stream.
type Reporter interface {
	Report(res *ScenarioResult, w io.Writer) error
}

// NewReporter returns the named reporter: "human", "json", or "xunit".
func NewReporter(name string) (Reporter, error) {
	switch name {
	case "human":
		return HumanReporter{}, nil
	case "json":
		return JSONReporter{}, nil
	case "xunit":
		return XUnitReporter{}, nil
	default:
		return nil, fmt.Errorf("unknown reporter %q (have: human, json, xunit)", name)
	}
}

// HumanReporter renders a fixed-width table per scenario.
type HumanReporter struct{}

// Report writes the table.
func (HumanReporter) Report(res *ScenarioResult, w io.Writer) error {
	mode := "full"
	if res.Short {
		mode = "short"
	}
	fmt.Fprintf(w, "=== %s (%s, %d iterations, rev %s, GOMAXPROCS %d) ===\n",
		res.Scenario, mode, res.Iterations, shortRev(res.GitRev), res.GOMAXPROCS)
	fmt.Fprintf(w, "%-14s %14s %14s %14s  %s\n", "case", "ns/op", "allocs/op", "B/op", "extras")
	for _, c := range res.Cases {
		fmt.Fprintf(w, "%-14s %14.0f %14.0f %14.0f  %s\n",
			c.Name, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp, formatExtras(c.Extra))
	}
	writeHotspots := func(label string, hs []Hotspot) {
		if len(hs) == 0 {
			return
		}
		fmt.Fprintf(w, "%s hotspots:", label)
		for _, h := range hs {
			fmt.Fprintf(w, "  %.1f%% %s", h.FlatPct, h.Function)
		}
		fmt.Fprintln(w)
	}
	writeHotspots("cpu", res.CPUHotspots)
	writeHotspots("heap", res.HeapHotspots)
	return nil
}

// formatExtras renders extras sorted by name, rates first is not worth
// the special case — alphabetical is stable and greppable.
func formatExtras(extra map[string]float64) string {
	if len(extra) == 0 {
		return "-"
	}
	names := make([]string, 0, len(extra))
	for k := range extra {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, k := range names {
		parts = append(parts, fmt.Sprintf("%s=%.6g", k, extra[k]))
	}
	return strings.Join(parts, " ")
}

func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// JSONReporter emits the canonical indented JSON (fixed field order,
// sorted map keys, trailing newline) — byte-deterministic for a given
// result, which is what makes BENCH_*.json files diffable.
type JSONReporter struct{}

// Report writes the canonical JSON.
func (JSONReporter) Report(res *ScenarioResult, w io.Writer) error {
	b, err := MarshalResult(res)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// MarshalResult renders the canonical BENCH_*.json bytes.
func MarshalResult(res *ScenarioResult) ([]byte, error) {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// BenchFileName is the repo-root file a scenario's trajectory lives in.
func BenchFileName(scenario string) string { return "BENCH_" + scenario + ".json" }

// WriteBenchFile writes the canonical JSON to dir/BENCH_<scenario>.json
// and returns the path.
func WriteBenchFile(res *ScenarioResult, dir string) (string, error) {
	b, err := MarshalResult(res)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, BenchFileName(res.Scenario))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadBenchFile reads and validates one BENCH_*.json.
func LoadBenchFile(path string) (*ScenarioResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res ScenarioResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if res.Schema != CurrentSchema {
		return nil, fmt.Errorf("%s: schema %d, this binary reads %d", path, res.Schema, CurrentSchema)
	}
	if res.Scenario == "" || len(res.Cases) == 0 {
		return nil, fmt.Errorf("%s: empty scenario or case list", path)
	}
	return &res, nil
}

// XUnitReporter renders one <testsuite> per scenario, each case a
// <testcase> with its wall time — the shape CI dashboards ingest.
type XUnitReporter struct{}

type xunitProperty struct {
	Name  string  `xml:"name,attr"`
	Value float64 `xml:"value,attr"`
}

type xunitCase struct {
	Classname  string          `xml:"classname,attr"`
	Name       string          `xml:"name,attr"`
	Time       float64         `xml:"time,attr"`
	Properties []xunitProperty `xml:"properties>property,omitempty"`
}

type xunitSuite struct {
	XMLName xml.Name    `xml:"testsuite"`
	Name    string      `xml:"name,attr"`
	Tests   int         `xml:"tests,attr"`
	Time    float64     `xml:"time,attr"`
	Cases   []xunitCase `xml:"testcase"`
}

// Report writes the xunit XML.
func (XUnitReporter) Report(res *ScenarioResult, w io.Writer) error {
	suite := xunitSuite{
		Name:  "gretel-bench." + res.Scenario,
		Tests: len(res.Cases),
	}
	for _, c := range res.Cases {
		xc := xunitCase{
			Classname: suite.Name,
			Name:      c.Name,
			Time:      c.NsPerOp / 1e9,
		}
		suite.Time += xc.Time
		names := make([]string, 0, len(c.Extra))
		for k := range c.Extra {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			xc.Properties = append(xc.Properties, xunitProperty{Name: k, Value: c.Extra[k]})
		}
		xc.Properties = append(xc.Properties,
			xunitProperty{Name: "allocs/op", Value: c.AllocsPerOp},
			xunitProperty{Name: "B/op", Value: c.BytesPerOp})
		suite.Cases = append(suite.Cases, xc)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(suite); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
