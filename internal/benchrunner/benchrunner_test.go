package benchrunner

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gretel/internal/telemetry"
)

// benchSink keeps per-iteration allocations alive past escape analysis
// so the runner's MemStats accounting has something to measure.
var benchSink []byte

// busyScenario is a minimal in-test scenario: deterministic CPU-bound
// work with a known events/op, used to exercise the runner without
// dragging in a pipeline.
type busyScenario struct {
	spins      int
	setupRan   bool
	tornDown   bool
	iterations int
}

func (s *busyScenario) Name() string        { return "busy" }
func (s *busyScenario) Description() string { return "test scenario" }
func (s *busyScenario) Setup(opts Options) error {
	s.setupRan = true
	return nil
}
func (s *busyScenario) Teardown() error { s.tornDown = true; return nil }
func (s *busyScenario) Cases() []Case {
	return []Case{{
		Name: "spin",
		Run: func() (Metrics, error) {
			s.iterations++
			telemetry.GetCounter("bench_test.spins").Inc()
			x := 1.0
			for i := 0; i < s.spins; i++ {
				x = x*1.0000001 + float64(i%7)
			}
			_ = x
			// Allocate something measurable.
			benchSink = make([]byte, 4096)
			benchSink[0] = 1
			return Metrics{EventsPerOp: 1000, "events/s": 5e6}, nil
		},
	}}
}

func TestRunnerMeasuresAndDerives(t *testing.T) {
	s := &busyScenario{spins: 100000}
	res, err := Run(s, Options{Iterations: 3, Short: true, Timestamp: time.Unix(1754600000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !s.setupRan || !s.tornDown {
		t.Fatalf("lifecycle: setup=%v teardown=%v", s.setupRan, s.tornDown)
	}
	if s.iterations != 3 {
		t.Fatalf("case ran %d times, want 3", s.iterations)
	}
	if res.Schema != CurrentSchema || res.Scenario != "busy" || !res.Short {
		t.Fatalf("header fields wrong: %+v", res)
	}
	if res.GitRev == "" || res.GoVersion == "" || res.GOMAXPROCS < 1 {
		t.Fatalf("provenance missing: rev=%q go=%q procs=%d", res.GitRev, res.GoVersion, res.GOMAXPROCS)
	}
	if _, err := time.Parse(time.RFC3339, res.Timestamp); err != nil {
		t.Fatalf("timestamp %q not RFC3339: %v", res.Timestamp, err)
	}
	if len(res.Cases) != 1 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	c := res.Cases[0]
	if c.NsPerOp <= 0 {
		t.Errorf("ns_per_op = %v", c.NsPerOp)
	}
	if c.AllocsPerOp <= 0 || c.BytesPerOp < 4096 {
		t.Errorf("allocations not measured: allocs=%v bytes=%v", c.AllocsPerOp, c.BytesPerOp)
	}
	for _, want := range []string{"events/s", "ns/event", "allocs/event", "B/event"} {
		if _, ok := c.Extra[want]; !ok {
			t.Errorf("extra %q missing: %v", want, c.Extra)
		}
	}
	if got, want := c.Extra["ns/event"], c.NsPerOp/1000; got != want {
		t.Errorf("ns/event = %v, want %v", got, want)
	}
	// The telemetry snapshot rides along and reflects this run.
	if res.Telemetry == nil {
		t.Fatal("telemetry snapshot missing")
	}
	if got := res.Telemetry.Counters["bench_test.spins"]; got != 3 {
		t.Errorf("telemetry counter = %d, want 3 (registry not reset per run?)", got)
	}
}

func TestRunnerProfileCapturesHotspots(t *testing.T) {
	dir := t.TempDir()
	// Enough CPU-bound work for the 100 Hz profiler to land samples.
	s := &busyScenario{spins: 40_000_000}
	res, err := Run(s, Options{Iterations: 2, Profile: true, ProfileDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"busy.cpu.pprof", "busy.heap.pprof"} {
		if _, err := TopHotspots(filepath.Join(dir, p), "cpu", 1); err != nil {
			t.Errorf("profile %s unreadable: %v", p, err)
		}
	}
	if len(res.CPUHotspots) == 0 {
		t.Fatal("no CPU hotspots recorded")
	}
	if len(res.CPUHotspots) > 3 {
		t.Fatalf("hotspots not capped at 3: %v", res.CPUHotspots)
	}
	for _, h := range res.CPUHotspots {
		if h.Function == "" || h.FlatPct <= 0 || h.FlatPct > 100 {
			t.Errorf("bad hotspot %+v", h)
		}
	}
	if len(res.HeapHotspots) == 0 {
		t.Fatal("no heap hotspots recorded")
	}
}

func TestRegistryAndResolve(t *testing.T) {
	want := []string{"ingest", "fig8c-parallel", "explain-overhead", "chaos-soak", "table1-learning", "detector", "wal-append", "export-overhead", "cluster-soak"}
	got := Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	for _, name := range want {
		s, ok := Get(name)
		if !ok || s.Name() != name || s.Description() == "" {
			t.Errorf("Get(%q) = %v, %v", name, s, ok)
		}
	}
	all, err := Resolve("all")
	if err != nil || len(all) != len(want) {
		t.Fatalf("Resolve(all) = %v, %v", all, err)
	}
	two, err := Resolve("ingest, table1-learning")
	if err != nil || strings.Join(two, ",") != "ingest,table1-learning" {
		t.Fatalf("Resolve(list) = %v, %v", two, err)
	}
	if _, err := Resolve("nope"); err == nil {
		t.Fatal("Resolve accepted an unknown scenario")
	}
}

// TestScenarioIngestShort drives the real ingest scenario once in short
// mode: the harness must produce per-case throughput numbers from the
// same entry points the go-test benchmarks use.
func TestScenarioIngestShort(t *testing.T) {
	s, _ := Get("ingest")
	res, err := Run(s, Options{Iterations: 1, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 5 {
		t.Fatalf("ingest cases = %d, want inline + shards 1/2/4/8", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.Extra["events/s"] <= 0 || c.Extra[EventsPerOp] != 20000 {
			t.Errorf("case %s extras wrong: %v", c.Name, c.Extra)
		}
	}
	if res.Telemetry == nil || res.Telemetry.Counters["core.events_ingested"] == 0 {
		t.Error("telemetry snapshot lacks pipeline counters")
	}
}

// TestScenarioExplainOverheadShort checks the explain on/off pair
// produces traces on the "on" case only.
func TestScenarioExplainOverheadShort(t *testing.T) {
	s, _ := Get("explain-overhead")
	res, err := Run(s, Options{Iterations: 1, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	off, on := res.Cases[0], res.Cases[1]
	if off.Extra["traces_stored"] != 0 {
		t.Errorf("off case stored traces: %v", off.Extra)
	}
	if on.Extra["traces_stored"] <= 0 {
		t.Errorf("on case stored no traces: %v", on.Extra)
	}
	if on.Extra["reports"] != off.Extra["reports"] {
		t.Errorf("explain changed report count: off=%v on=%v", off.Extra["reports"], on.Extra["reports"])
	}
}

// TestScenarioChaosSoakShort runs the transport soak scenario once and
// checks the loss accounting rode along. Skipped in -short runs: it
// holds live sockets for a few seconds.
func TestScenarioChaosSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak scenario needs live sockets and a few seconds")
	}
	s, _ := Get("chaos-soak")
	res, err := Run(s, Options{Iterations: 1, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cases[0]
	if c.Extra["delivered/s"] <= 0 {
		t.Errorf("no delivered/s: %v", c.Extra)
	}
	if c.Extra["delivered"]+c.Extra["missing"] != 2500 {
		t.Errorf("loss accounting broken: %v", c.Extra)
	}
}
