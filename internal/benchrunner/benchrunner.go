// Package benchrunner is GRETEL's scenario-driven performance
// observability layer, modeled on elastic-package's internal/benchrunner
// (a runner plus pluggable reporters). Named scenarios wrap the real
// pipelines — the same entry points the repository's go-test benchmarks
// call, so the two measurement paths cannot drift — and every run
// produces a machine-readable result carrying full provenance: git
// revision, go version, GOMAXPROCS, per-case ns/op, events/s, allocs/op
// and B/op, the process telemetry snapshot, and (with profiling on) the
// top CPU and allocation hotspot frames.
//
// The canonical JSON reporter writes one BENCH_<scenario>.json per run;
// committed at the repo root these files form the repository's perf
// trajectory, and Compare diffs a fresh run against the last committed
// baseline with configurable per-metric tolerances — the CI bench-gate.
package benchrunner

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gretel/internal/telemetry"
)

// Metrics carries the extra, scenario-specific measurements one
// iteration reports (rates like "events/s", informational counts like
// "reports"). The runner merges them with the timing and allocation
// numbers it measures itself.
type Metrics map[string]float64

// EventsPerOp is the reserved metric name a Case reports to tell the
// runner how many pipeline events one iteration processed. The runner
// derives the scale-invariant per-event costs ("ns/event",
// "allocs/event", "B/event") from it — the numbers the regression gate
// compares, because they survive short-mode workload scaling.
const EventsPerOp = "events/op"

// Case is one parameterized sub-benchmark of a scenario ("shards=4",
// "workers=8"). Run executes exactly one iteration against state the
// scenario's Setup prepared.
type Case struct {
	Name string
	Run  func() (Metrics, error)
}

// Scenario is a named benchmark over the real pipelines: Setup builds
// the workload once (streams, libraries, listeners), Cases returns the
// parameterized sub-benchmarks the runner iterates, Teardown releases
// whatever Setup held.
type Scenario interface {
	Name() string
	Description() string
	Setup(opts Options) error
	Cases() []Case
	Teardown() error
}

// Options configures one scenario run.
type Options struct {
	// Iterations is how many times each case runs (the committed
	// baselines and the CI gate pin this; default 3). The reported ns/op
	// is the fastest iteration — the least-noise estimate, as in
	// benchstat practice — with allocations averaged across all of them.
	Iterations int
	// Short selects the reduced workload scales (CI-sized). Results are
	// tagged with the mode; Compare refuses to diff across modes.
	Short bool
	// Profile captures a CPU profile across the measured iterations and
	// a heap (allocs) profile after them, writes both under ProfileDir,
	// and records the top-3 hotspot frames of each into the result.
	Profile bool
	// ProfileDir is where -profile writes <scenario>.cpu.pprof and
	// <scenario>.heap.pprof (default "bench_profiles").
	ProfileDir string
	// Timestamp overrides the result timestamp (tests pin it for golden
	// comparison); zero means time.Now().UTC().
	Timestamp time.Time
}

func (o *Options) defaults() {
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	if o.ProfileDir == "" {
		o.ProfileDir = "bench_profiles"
	}
}

// CaseResult is one case's aggregated measurement.
type CaseResult struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	// NsPerOp is the wall time of the fastest iteration in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations per iteration,
	// averaged over all iterations (runtime.MemStats deltas).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Extra holds the case's own metrics (rates, counts) plus the
	// derived per-event costs when the case reported "events/op".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Hotspot is one profile frame: the leaf function and its share of the
// profile's samples — how the PR 5 "~60% of CPU is the MAD sort"
// observation becomes a tracked, diffable number.
type Hotspot struct {
	Function string  `json:"function"`
	FlatPct  float64 `json:"flat_pct"`
}

// ScenarioResult is the canonical per-run record — the BENCH_*.json
// schema. Field order is fixed and all maps marshal with sorted keys,
// so serialization is deterministic; Timestamp and GitRev are excluded
// from the comparison path.
type ScenarioResult struct {
	Schema      int    `json:"schema"`
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	GitRev      string `json:"git_rev"`
	Dirty       bool   `json:"dirty,omitempty"`
	Timestamp   string `json:"timestamp"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Short       bool   `json:"short"`
	Iterations  int    `json:"iterations"`

	Cases []CaseResult `json:"cases"`

	// CPUHotspots and HeapHotspots are the top-3 frames by flat CPU time
	// and flat allocated bytes (present only with Options.Profile).
	CPUHotspots  []Hotspot `json:"cpu_hotspots,omitempty"`
	HeapHotspots []Hotspot `json:"heap_hotspots,omitempty"`

	// Telemetry is the process registry snapshot taken after the run:
	// the pipeline counters and stage latency histograms ride along as
	// evidence for the headline numbers.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// CurrentSchema versions the BENCH_*.json layout.
const CurrentSchema = 1

// Run executes one scenario under opts and returns its result. The
// default telemetry registry is reset first so the embedded snapshot
// holds exactly this run's counters.
func Run(s Scenario, opts Options) (*ScenarioResult, error) {
	opts.defaults()
	telemetry.Reset()
	if err := s.Setup(opts); err != nil {
		return nil, fmt.Errorf("%s: setup: %w", s.Name(), err)
	}
	defer s.Teardown()

	res := &ScenarioResult{
		Schema:      CurrentSchema,
		Scenario:    s.Name(),
		Description: s.Description(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Short:       opts.Short,
		Iterations:  opts.Iterations,
	}
	res.GitRev, res.Dirty = buildRev()
	ts := opts.Timestamp
	if ts.IsZero() {
		ts = time.Now().UTC()
	}
	res.Timestamp = ts.UTC().Format(time.RFC3339)

	var stopCPU func() error
	cpuPath := filepath.Join(opts.ProfileDir, s.Name()+".cpu.pprof")
	heapPath := filepath.Join(opts.ProfileDir, s.Name()+".heap.pprof")
	if opts.Profile {
		var err error
		if stopCPU, err = startCPUProfile(cpuPath); err != nil {
			return nil, fmt.Errorf("%s: cpu profile: %w", s.Name(), err)
		}
	}

	for _, c := range s.Cases() {
		cr, err := runCase(c, opts.Iterations)
		if err != nil {
			if stopCPU != nil {
				stopCPU()
			}
			return nil, fmt.Errorf("%s/%s: %w", s.Name(), c.Name, err)
		}
		res.Cases = append(res.Cases, cr)
	}

	if opts.Profile {
		if err := stopCPU(); err != nil {
			return nil, fmt.Errorf("%s: cpu profile: %w", s.Name(), err)
		}
		if hs, err := TopHotspots(cpuPath, "cpu", 3); err == nil {
			res.CPUHotspots = hs
		} else {
			return nil, fmt.Errorf("%s: cpu hotspots: %w", s.Name(), err)
		}
		if err := writeHeapProfile(heapPath); err != nil {
			return nil, fmt.Errorf("%s: heap profile: %w", s.Name(), err)
		}
		if hs, err := TopHotspots(heapPath, "alloc_space", 3); err == nil {
			res.HeapHotspots = hs
		} else {
			return nil, fmt.Errorf("%s: heap hotspots: %w", s.Name(), err)
		}
	}

	snap := telemetry.Snap()
	res.Telemetry = &snap
	return res, nil
}

// runCase iterates one case, keeping the fastest iteration's wall time
// and extras and averaging allocations over all iterations.
func runCase(c Case, iters int) (CaseResult, error) {
	cr := CaseResult{Name: c.Name, Iterations: iters}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	best := time.Duration(-1)
	var bestExtra Metrics
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		extra, err := c.Run()
		d := time.Since(t0)
		if err != nil {
			return cr, err
		}
		if best < 0 || d < best {
			best, bestExtra = d, extra
		}
	}
	runtime.ReadMemStats(&m1)

	cr.NsPerOp = float64(best.Nanoseconds())
	cr.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(iters)
	cr.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters)
	if len(bestExtra) > 0 {
		cr.Extra = make(map[string]float64, len(bestExtra)+3)
		for k, v := range bestExtra {
			cr.Extra[k] = v
		}
		if ev := cr.Extra[EventsPerOp]; ev > 0 {
			cr.Extra["ns/event"] = cr.NsPerOp / ev
			cr.Extra["allocs/event"] = cr.AllocsPerOp / ev
			cr.Extra["B/event"] = cr.BytesPerOp / ev
		}
	}
	return cr, nil
}

// buildRev resolves the git revision for result provenance: the VCS
// stamp the go tool bakes into binaries when available, otherwise (test
// binaries, `go run`) one `git rev-parse` at first use.
var (
	revOnce  sync.Once
	revValue string
	revDirty bool
)

func buildRev() (string, bool) {
	revOnce.Do(func() {
		p := telemetry.Prov()
		revValue, revDirty = p.GitRev, p.Dirty
		if revValue != "unknown" {
			return
		}
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			if rev := strings.TrimSpace(string(out)); rev != "" {
				revValue = rev
			}
		}
	})
	return revValue, revDirty
}

// registry holds the first-class scenarios in display order.
var (
	regMu    sync.Mutex
	regOrder []string
	reg      = map[string]func() Scenario{}
)

// Register adds a scenario constructor under its name; later
// registrations of the same name replace earlier ones.
func Register(name string, mk func() Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; !dup {
		regOrder = append(regOrder, name)
	}
	reg[name] = mk
}

// Names lists the registered scenarios in registration order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// Get builds the named scenario.
func Get(name string) (Scenario, bool) {
	regMu.Lock()
	mk := reg[name]
	regMu.Unlock()
	if mk == nil {
		return nil, false
	}
	return mk(), true
}

// Resolve expands a -scenario argument ("all", one name, or a
// comma-separated list) into scenario names, rejecting unknowns.
func Resolve(arg string) ([]string, error) {
	if arg == "" || arg == "all" {
		return Names(), nil
	}
	var out []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := reg[name]; !ok {
			return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	return out, nil
}

// sortHotspots orders hotspots by flat share descending, name ascending
// on ties — the deterministic order the JSON records.
func sortHotspots(hs []Hotspot) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].FlatPct != hs[j].FlatPct {
			return hs[i].FlatPct > hs[j].FlatPct
		}
		return hs[i].Function < hs[j].Function
	})
}
