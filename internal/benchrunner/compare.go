// Regression gating: diff a fresh scenario run against the last
// committed BENCH_<scenario>.json baseline. Direction-aware — ns/op up
// is bad, events/s down is bad — with a configurable default tolerance
// and per-metric overrides, because timing metrics need slack across
// machines while allocation counts barely move between identical builds.

package benchrunner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tolerance bounds how far a gated metric may move for the worse before
// Compare flags a regression.
type Tolerance struct {
	// Default is the allowed worsening as a fraction (0.10 = 10%).
	Default float64
	// PerMetric overrides the default for named metrics ("ns_per_op",
	// "events/s", ...).
	PerMetric map[string]float64
}

// DefaultTolerance is the CI gate's baseline policy: 10%.
const DefaultTolerance = 0.10

func (t Tolerance) forMetric(name string) float64 {
	if v, ok := t.PerMetric[name]; ok {
		return v
	}
	if t.Default > 0 {
		return t.Default
	}
	return DefaultTolerance
}

// ParseTolerances parses a "-tol" flag value like
// "ns_per_op=0.5,events/s=0.3" into per-metric overrides.
func ParseTolerances(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad tolerance %q (want metric=fraction)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad tolerance %q: fraction must be a non-negative number", part)
		}
		out[name] = f
	}
	return out, nil
}

// metric directions: +1 higher is better, -1 lower is better, 0
// informational (never gated).
func metricDirection(name string) int {
	switch name {
	case "ns_per_op", "allocs_per_op", "bytes_per_op",
		"ns/event", "allocs/event", "B/event":
		return -1
	}
	if strings.HasSuffix(name, "/s") || name == "Mbps" {
		return +1
	}
	return 0
}

// Delta is one metric's movement between baseline and fresh.
type Delta struct {
	Case   string
	Metric string
	// Baseline and Fresh are the two values; Change is the signed
	// fraction (fresh-baseline)/baseline.
	Baseline, Fresh, Change float64
	// Gated reports whether the metric has a direction and participates
	// in regression gating.
	Gated bool
	// Regression is set when a gated metric moved the wrong way past its
	// tolerance.
	Regression bool
}

// String renders one delta line.
func (d Delta) String() string {
	mark := " "
	switch {
	case d.Regression:
		mark = "✗"
	case d.Gated:
		mark = "✓"
	}
	return fmt.Sprintf("%s %-16s %-14s %14.6g → %-14.6g %+7.1f%%",
		mark, d.Case, d.Metric, d.Baseline, d.Fresh, d.Change*100)
}

// Compare diffs fresh against baseline case by case. Timestamp, git
// revision, and telemetry are provenance, not comparison inputs. It
// refuses to diff across workload modes (short vs full): per-run
// absolute numbers are meaningless across scales, and the per-event
// derived metrics only fix part of that.
func Compare(baseline, fresh *ScenarioResult, tol Tolerance) ([]Delta, error) {
	if baseline.Scenario != fresh.Scenario {
		return nil, fmt.Errorf("scenario mismatch: baseline %q vs fresh %q", baseline.Scenario, fresh.Scenario)
	}
	if baseline.Short != fresh.Short {
		return nil, fmt.Errorf("%s: workload mode mismatch (baseline short=%v, fresh short=%v) — regenerate the baseline in the same mode",
			baseline.Scenario, baseline.Short, fresh.Short)
	}

	freshByName := make(map[string]CaseResult, len(fresh.Cases))
	for _, c := range fresh.Cases {
		freshByName[c.Name] = c
	}

	var out []Delta
	for _, bc := range baseline.Cases {
		fc, ok := freshByName[bc.Name]
		if !ok {
			// A vanished case is a coverage regression, not a perf one,
			// but it must fail the gate all the same.
			out = append(out, Delta{Case: bc.Name, Metric: "(case missing)", Gated: true, Regression: true})
			continue
		}
		out = append(out, diffCase(bc, fc, tol)...)
	}
	return out, nil
}

func diffCase(base, fresh CaseResult, tol Tolerance) []Delta {
	var out []Delta
	add := func(metric string, b, f float64) {
		dir := metricDirection(metric)
		d := Delta{Case: base.Name, Metric: metric, Baseline: b, Fresh: f, Gated: dir != 0}
		switch {
		case b == 0 && f == 0:
			d.Change = 0
		case b == 0:
			d.Change = 1 // appeared from zero: treat as +100%
		default:
			d.Change = (f - b) / b
		}
		if d.Gated {
			worse := d.Change
			if dir > 0 {
				worse = -d.Change
			}
			d.Regression = worse > tol.forMetric(metric)
		}
		out = append(out, d)
	}

	add("ns_per_op", base.NsPerOp, fresh.NsPerOp)
	add("allocs_per_op", base.AllocsPerOp, fresh.AllocsPerOp)
	add("bytes_per_op", base.BytesPerOp, fresh.BytesPerOp)

	names := make([]string, 0, len(base.Extra))
	for k := range base.Extra {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if f, ok := fresh.Extra[k]; ok {
			add(k, base.Extra[k], f)
		}
	}
	return out
}

// Regressions filters the deltas down to failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}
