package benchrunner

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gretel/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenResult is a fully pinned ScenarioResult: fixed timestamp, fixed
// revision, multi-key maps. If marshalling is deterministic anywhere, it
// is deterministic here.
func goldenResult() *ScenarioResult {
	return &ScenarioResult{
		Schema:      CurrentSchema,
		Scenario:    "ingest",
		Description: "golden fixture",
		GitRev:      "0123456789abcdef0123456789abcdef01234567",
		Timestamp:   "2026-08-08T12:00:00Z",
		GoVersion:   "go1.24.0",
		GOOS:        "linux",
		GOARCH:      "amd64",
		GOMAXPROCS:  1,
		Short:       true,
		Iterations:  3,
		Cases: []CaseResult{
			{
				Name: "inline", Iterations: 3,
				NsPerOp: 31536000, AllocsPerOp: 20640, BytesPerOp: 1310720,
				Extra: map[string]float64{
					EventsPerOp: 20000, "events/s": 634195.8,
					"ns/event": 1576.8, "allocs/event": 1.032,
					"B/event": 65.536, "Mbps": 212.4, "reports": 0,
				},
			},
			{
				Name: "shards=2", Iterations: 3,
				NsPerOp: 33112800, AllocsPerOp: 21640, BytesPerOp: 1410720,
				Extra: map[string]float64{
					EventsPerOp: 20000, "events/s": 604000,
					"ns/event": 1655.64, "allocs/event": 1.082,
					"B/event": 70.536, "Mbps": 202.3, "reports": 0,
				},
			},
		},
		CPUHotspots: []Hotspot{
			{Function: "gretel/internal/tsoutliers.mad", FlatPct: 58.3},
			{Function: "gretel/internal/core.(*Analyzer).Ingest", FlatPct: 12.1},
			{Function: "runtime.mallocgc", FlatPct: 7.9},
		},
		HeapHotspots: []Hotspot{
			{Function: "gretel/internal/replay.Synthesize", FlatPct: 41.0},
			{Function: "gretel/internal/core.newPairTable", FlatPct: 22.5},
		},
		Telemetry: &telemetry.Snapshot{
			Provenance: telemetry.Provenance{
				GitRev:    "0123456789abcdef0123456789abcdef01234567",
				GoVersion: "go1.24.0", GOMAXPROCS: 1,
			},
			Counters: map[string]uint64{
				"core.events_ingested": 40000,
				"core.reports_emitted": 0,
				"agent.frames_decoded": 120,
			},
			Gauges: map[string]int64{"core.pair_table_size": 812},
			Histograms: map[string]telemetry.HistStats{
				"core.detect_latency": {Count: 40000, MeanMs: 0.0012, P50Ms: 0.001, P90Ms: 0.002, P99Ms: 0.004, MaxMs: 0.9},
			},
		},
	}
}

// TestGoldenBenchJSON pins the canonical BENCH_*.json byte layout: fixed
// field order, sorted map keys, trailing newline. A diff here means the
// schema changed — bump CurrentSchema and regenerate baselines.
func TestGoldenBenchJSON(t *testing.T) {
	got, err := MarshalResult(goldenResult())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_bench.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run TestGoldenBenchJSON -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("marshal drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Determinism: a second marshal of an equal fixture is byte-identical.
	again, err := MarshalResult(goldenResult())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Error("two marshals of equal results differ")
	}
	if !bytes.HasSuffix(got, []byte("}\n")) {
		t.Error("missing trailing newline")
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res := goldenResult()
	path, err := WriteBenchFile(res, dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_ingest.json" {
		t.Fatalf("path = %s", path)
	}
	back, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Errorf("round trip lost data:\n got %+v\nwant %+v", back, res)
	}
}

func TestLoadBenchFileValidates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadBenchFile(write("schema.json", `{"schema": 99, "scenario": "x", "cases": [{"name": "a"}]}`)); err == nil {
		t.Error("future schema accepted")
	}
	if _, err := LoadBenchFile(write("empty.json", `{"schema": 1, "scenario": "x", "cases": []}`)); err == nil {
		t.Error("empty case list accepted")
	}
	if _, err := LoadBenchFile(write("garbage.json", `not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadBenchFile(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Error("missing file should surface os.IsNotExist")
	}
}

func TestHumanReporter(t *testing.T) {
	var buf bytes.Buffer
	if err := (HumanReporter{}).Report(goldenResult(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"=== ingest (short, 3 iterations, rev 0123456789ab, GOMAXPROCS 1) ===",
		"inline", "shards=2", "events/s=634196",
		"cpu hotspots:", "58.3% gretel/internal/tsoutliers.mad",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestXUnitReporter(t *testing.T) {
	var buf bytes.Buffer
	if err := (XUnitReporter{}).Report(goldenResult(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`<testsuite name="gretel-bench.ingest" tests="2"`,
		`classname="gretel-bench.ingest" name="inline"`,
		`<property name="events/s" value="634195.8">`,
		`<property name="B/op"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xunit missing %q:\n%s", want, out)
		}
	}
}

func TestNewReporter(t *testing.T) {
	for _, name := range []string{"human", "json", "xunit"} {
		if r, err := NewReporter(name); err != nil || r == nil {
			t.Errorf("NewReporter(%q) = %v, %v", name, r, err)
		}
	}
	if _, err := NewReporter("csv"); err == nil {
		t.Error("unknown reporter accepted")
	}
}
