// The first-class scenario registry: each named scenario wires the
// runner to a real pipeline through the same entry points the go-test
// benchmarks use (internal/experiments bench workloads, replay.Drive,
// core.New), so harness results and `go test -bench` results measure
// the same code on the same inputs.

package benchrunner

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"gretel/internal/agent"
	"gretel/internal/chaos"
	"gretel/internal/core"
	"gretel/internal/experiments"
	"gretel/internal/federation"
	"gretel/internal/fingerprint"
	"gretel/internal/replay"
	"gretel/internal/scenario"
	"gretel/internal/telemetry"
	"gretel/internal/telemetry/export"
	"gretel/internal/trace"
	"gretel/internal/tracestore"
	"gretel/internal/tsoutliers"
	"gretel/internal/wal"
)

func init() {
	Register("ingest", func() Scenario {
		return &ingestScenario{desc: "sharded ingest front-end vs inline baseline on the canonical fault-free stream (replay.Drive)"}
	})
	Register("fig8c-parallel", func() Scenario {
		return &parallelScenario{desc: "detect worker pool 1/2/4/8 vs inline on the canonical Fig 8c faulty stream"}
	})
	Register("explain-overhead", func() Scenario {
		return &explainScenario{desc: "evidence-trace recording on vs off on the canonical faulty stream (tracestore delta)"}
	})
	Register("chaos-soak", func() Scenario {
		return &chaosScenario{desc: "delivered/s through the fault-injecting chaos dialer, sender → TCP → receiver → analyzer"}
	})
	Register("table1-learning", func() Scenario {
		return &table1Scenario{desc: "full offline characterization: 1200 isolated executions, noise filtering, LCS learning"}
	})
	Register("detector", func() Scenario {
		return &detectorScenario{desc: "steady-state level-shift detector Observe cost (incremental order statistics) across window sizes"}
	})
	Register("wal-append", func() Scenario {
		return &walScenario{desc: "write-ahead log append cost on the canonical fault-free stream, fsync none vs interval"}
	})
	Register("export-overhead", func() Scenario {
		return &exportScenario{desc: "telemetry export (registry sampling + line-protocol shipping to a live receiver) on vs off on the canonical fault-free stream"}
	})
	Register("cluster-soak", func() Scenario {
		return &clusterScenario{desc: "federated fleet soak: two analyzers, rendezvous-partitioned deployments, mid-burst member kill, spool-replay failover, merged-report ledger"}
	})
}

// driveExtras folds a replay result into the standard extra metrics.
func driveExtras(res replay.Result) Metrics {
	return Metrics{
		EventsPerOp: float64(res.Events),
		"events/s":  res.EventsPerSec,
		"Mbps":      res.Mbps,
		"reports":   float64(res.Reports),
	}
}

// --- ingest: inline vs -ingest-shards 1/2/4/8 ---

type ingestScenario struct {
	desc   string
	lib    *fingerprint.Library
	stream []trace.Event
}

func (s *ingestScenario) Name() string        { return "ingest" }
func (s *ingestScenario) Description() string { return s.desc }
func (s *ingestScenario) Teardown() error     { s.lib, s.stream = nil, nil; return nil }

func (s *ingestScenario) Setup(opts Options) error {
	events := 50000
	if opts.Short {
		events = 20000
	}
	s.lib = experiments.BenchLibrary()
	s.stream = experiments.CleanBenchStream(events)
	return nil
}

func (s *ingestScenario) Cases() []Case {
	mk := func(name string, cfg core.Config) Case {
		return Case{Name: name, Run: func() (Metrics, error) {
			a := core.New(s.lib, cfg)
			return driveExtras(replay.Drive(a, s.stream)), nil
		}}
	}
	cases := []Case{mk("inline", core.Config{})}
	for _, shards := range []int{1, 2, 4, 8} {
		cases = append(cases, mk(fmt.Sprintf("shards=%d", shards), core.Config{IngestShards: shards}))
	}
	return cases
}

// --- fig8c-parallel: detect workers 1/2/4/8 ---

type parallelScenario struct {
	desc   string
	lib    *fingerprint.Library
	stream []trace.Event
}

func (s *parallelScenario) Name() string        { return "fig8c-parallel" }
func (s *parallelScenario) Description() string { return s.desc }
func (s *parallelScenario) Teardown() error     { s.lib, s.stream = nil, nil; return nil }

func (s *parallelScenario) Setup(opts Options) error {
	events := 100000
	if opts.Short {
		events = 30000
	}
	s.lib = experiments.BenchLibrary()
	s.stream = experiments.FaultyBenchStream(events)
	return nil
}

func (s *parallelScenario) Cases() []Case {
	mk := func(name string, workers int) Case {
		return Case{Name: name, Run: func() (Metrics, error) {
			a := core.New(s.lib, core.Config{DetectWorkers: workers})
			res := replay.Drive(a, s.stream)
			if res.Reports == 0 {
				return nil, fmt.Errorf("faulty stream produced no reports")
			}
			return driveExtras(res), nil
		}}
	}
	cases := []Case{mk("inline", 0)}
	for _, w := range []int{1, 2, 4, 8} {
		cases = append(cases, mk(fmt.Sprintf("workers=%d", w), w))
	}
	return cases
}

// --- explain-overhead: evidence tracing on vs off ---

type explainScenario struct {
	desc   string
	lib    *fingerprint.Library
	stream []trace.Event
}

func (s *explainScenario) Name() string        { return "explain-overhead" }
func (s *explainScenario) Description() string { return s.desc }
func (s *explainScenario) Teardown() error     { s.lib, s.stream = nil, nil; return nil }

func (s *explainScenario) Setup(opts Options) error {
	events := 50000
	if opts.Short {
		events = 20000
	}
	s.lib = experiments.BenchLibrary()
	// Faulty stream: traces are only recorded when reports fire, so an
	// all-healthy run would measure the (nil-check) disabled path twice.
	s.stream = experiments.FaultyBenchStream(events)
	return nil
}

func (s *explainScenario) Cases() []Case {
	return []Case{
		{Name: "off", Run: func() (Metrics, error) {
			a := core.New(s.lib, core.Config{})
			a.SetExplain(nil)
			return driveExtras(replay.Drive(a, s.stream)), nil
		}},
		{Name: "on", Run: func() (Metrics, error) {
			a := core.New(s.lib, core.Config{})
			a.SetExplain(tracestore.New(0))
			res := replay.Drive(a, s.stream)
			if res.TracesStored == 0 {
				return nil, fmt.Errorf("explain mode stored no traces")
			}
			extra := driveExtras(res)
			extra["traces_stored"] = float64(res.TracesStored)
			return extra, nil
		}},
	}
}

// --- chaos-soak: delivered/s through the chaos dialer ---

type chaosScenario struct {
	desc   string
	events []trace.Event
	lib    *fingerprint.Library
}

func (s *chaosScenario) Name() string        { return "chaos-soak" }
func (s *chaosScenario) Description() string { return s.desc }
func (s *chaosScenario) Teardown() error     { s.events, s.lib = nil, nil; return nil }

func (s *chaosScenario) Setup(opts Options) error {
	n := 6000
	if opts.Short {
		n = 2500
	}
	// The chaos soak test's stream shape (internal/chaos/soak_test.go),
	// scaled for benchmarking.
	s.events = replay.Synthesize(replay.StreamConfig{
		Events: n, Concurrency: 40, FaultEvery: 400, Seed: 11,
	})
	s.lib = scenario.CoreLibrary()
	return nil
}

func (s *chaosScenario) Cases() []Case {
	return []Case{{Name: "soak", Run: s.runSoak}}
}

// runSoak pushes the stream through sender → chaos conn → receiver →
// analyzer once and reports delivered/s plus the loss accounting. The
// zero-silent-loss invariant (delivered + missing == sent) is asserted:
// a bench run that loses events silently measures garbage.
func (s *chaosScenario) runSoak() (Metrics, error) {
	recv, err := agent.ListenConfig(agent.ReceiverConfig{
		Addr: "127.0.0.1:0", ReadTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	snd, err := agent.DialConfig(agent.SenderConfig{
		Addr: recv.Addr(), Agent: "bench-agent",
		Ring:       1 << 15, // retain the whole stream: resets replay, nothing sheds
		Heartbeat:  5 * time.Millisecond,
		BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		WriteTimeout: 2 * time.Second, DrainTimeout: 30 * time.Second,
		Dialer: chaos.Dialer(chaos.Config{
			Seed: 1971,
			Drop: 0.02, Corrupt: 0.02, Split: 0.1,
			Delay: 0.05, DelayBy: 100 * time.Microsecond,
			Stall: 0.002, StallFor: 10 * time.Millisecond,
			Reset: 0.005,
		}),
	})
	if err != nil {
		recv.Close()
		return nil, err
	}

	a := core.New(s.lib, core.Config{Alpha: 256})
	var sendErr error
	var final agent.AgentStat
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range s.events {
			snd.Send(s.events[i])
			if i%16 == 15 {
				// Brief throttle so the writer flushes many small chunks,
				// giving per-write fault injection frame boundaries to hit.
				time.Sleep(50 * time.Microsecond)
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			final = recv.AgentStats()["bench-agent"]
			if final.LastSeq >= uint64(len(s.events)) {
				break
			}
			if time.Now().After(deadline) {
				sendErr = fmt.Errorf("receiver high-water stuck at %d/%d", final.LastSeq, len(s.events))
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		snd.Close()
		recv.Close()
	}()
	res := replay.DriveTransport(a, recv, nil)
	<-done
	if sendErr != nil {
		return nil, sendErr
	}

	delivered := a.Stats.Events
	if delivered+final.Missing != uint64(len(s.events)) {
		return nil, fmt.Errorf("silent loss: %d delivered + %d missing != %d sent",
			delivered, final.Missing, len(s.events))
	}
	return Metrics{
		EventsPerOp:   float64(delivered),
		"delivered/s": res.EventsPerSec,
		"delivered":   float64(delivered),
		"missing":     float64(final.Missing),
		"dups":        float64(final.Dups),
		"gaps":        float64(res.Gaps),
	}, nil
}

// --- detector: level-shift detector Observe microbench ---

type detectorScenario struct {
	desc   string
	series []float64
}

func (s *detectorScenario) Name() string        { return "detector" }
func (s *detectorScenario) Description() string { return s.desc }
func (s *detectorScenario) Teardown() error     { s.series = nil; return nil }

func (s *detectorScenario) Setup(opts Options) error {
	n := 1_000_000
	if opts.Short {
		n = 250_000
	}
	s.series = experiments.DetectorBenchSeries(n)
	return nil
}

// Cases sweep the inlier window bound: per-event work is O(log W), so
// the trajectory should stay near-flat as W grows 16x — the committed
// numbers are the regression guard for that property.
func (s *detectorScenario) Cases() []Case {
	mk := func(window int) Case {
		return Case{Name: fmt.Sprintf("window=%d", window), Run: func() (Metrics, error) {
			d := tsoutliers.New(tsoutliers.Options{Window: window, MinSpread: 0.5, MaxAlarms: 4096})
			t0 := time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)
			for i, v := range s.series {
				d.Observe(t0.Add(time.Duration(i)*time.Millisecond), v)
			}
			if d.AlarmCount(0) == 0 || len(d.Shifts()) == 0 {
				return nil, fmt.Errorf("detector series raised no alarms/shifts (alarms=%d, shifts=%d)",
					d.AlarmCount(0), len(d.Shifts()))
			}
			return Metrics{
				EventsPerOp: float64(len(s.series)),
				"alarms":    float64(d.AlarmCount(0)),
				"shifts":    float64(len(d.Shifts())),
			}, nil
		}}
	}
	return []Case{mk(60), mk(240), mk(960)}
}

// --- wal-append: durable capture cost per event ---

type walScenario struct {
	desc   string
	stream []trace.Event
}

func (s *walScenario) Name() string        { return "wal-append" }
func (s *walScenario) Description() string { return s.desc }
func (s *walScenario) Teardown() error     { s.stream = nil; return nil }

func (s *walScenario) Setup(opts Options) error {
	events := 50000
	if opts.Short {
		events = 20000
	}
	s.stream = experiments.CleanBenchStream(events)
	return nil
}

// Cases measure the two fsync policies a deployment actually chooses
// between: none (flush to the OS per batch, fsync only on rotation)
// and interval (a bounded loss window). "every" is deliberately not
// benchmarked — one fsync per append is disk-bound, not a pipeline
// cost, and would swamp the gate tolerance with device noise. Each run
// appends the canonical stream in ingest-sized batches through a
// fresh log in a throwaway directory.
func (s *walScenario) Cases() []Case {
	mk := func(name string, policy wal.Fsync) Case {
		return Case{Name: name, Run: func() (Metrics, error) {
			dir, err := os.MkdirTemp("", "gretel-bench-wal-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			l, err := wal.Open(wal.Options{Dir: dir, Fsync: policy})
			if err != nil {
				return nil, err
			}
			const batch = 256
			for i := 0; i < len(s.stream); i += batch {
				end := i + batch
				if end > len(s.stream) {
					end = len(s.stream)
				}
				if _, err := l.AppendBatch(s.stream[i:end]); err != nil {
					l.Close()
					return nil, err
				}
			}
			st := l.Stats()
			if err := l.Close(); err != nil {
				return nil, err
			}
			if st.Appended != uint64(len(s.stream)) {
				return nil, fmt.Errorf("appended %d of %d events", st.Appended, len(s.stream))
			}
			return Metrics{
				EventsPerOp: float64(len(s.stream)),
				"B/event":   float64(st.Bytes) / float64(len(s.stream)),
				"segments":  float64(st.Segments),
				"syncs":     float64(st.Synced),
			}, nil
		}}
	}
	return []Case{mk("fsync=none", wal.FsyncNone), mk("fsync=interval", wal.FsyncInterval)}
}

// --- export-overhead: telemetry sampling + shipping on vs off ---

type exportScenario struct {
	desc   string
	lib    *fingerprint.Library
	stream []trace.Event
	srv    *http.Server
	url    string
}

func (s *exportScenario) Name() string        { return "export-overhead" }
func (s *exportScenario) Description() string { return s.desc }

func (s *exportScenario) Setup(opts Options) error {
	events := 50000
	if opts.Short {
		events = 20000
	}
	s.lib = experiments.BenchLibrary()
	s.stream = experiments.CleanBenchStream(events)
	// A healthy local receiver: accept every /write POST with 204, so
	// the "on" case measures sampling + encoding + delivery, not retry.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusNoContent)
	})}
	go s.srv.Serve(ln)
	s.url = "http://" + ln.Addr().String() + "/write"
	return nil
}

func (s *exportScenario) Teardown() error {
	err := s.srv.Close()
	s.lib, s.stream, s.srv = nil, nil, nil
	return err
}

// Cases compare the canonical ingest workload bare against the same
// workload with the export pipeline live. Sampling is driven at a fixed
// event cadence (32 samples per op) rather than the production
// wall-clock tick, so the per-op export work — registry walks, delta
// computation, line-protocol encoding, HTTP delivery — is deterministic
// and the allocation gate stays meaningful across machine speeds.
func (s *exportScenario) Cases() []Case {
	return []Case{
		{Name: "off", Run: func() (Metrics, error) { return s.run(0) }},
		{Name: "on", Run: func() (Metrics, error) { return s.run(len(s.stream) / 32) }},
	}
}

func (s *exportScenario) run(sampleEvery int) (Metrics, error) {
	var smp *export.Sampler
	var ship *export.Shipper
	if sampleEvery > 0 {
		smp = export.NewSampler(telemetry.Default(), "gretel-bench")
		ship = export.NewShipper(export.ShipperConfig{URL: s.url, MaxPoints: 1 << 16})
	}
	a := core.New(s.lib, core.Config{})
	start := time.Now()
	samples := 0
	for i := range s.stream {
		a.Ingest(s.stream[i])
		if sampleEvery > 0 && (i+1)%sampleEvery == 0 {
			// Pre-size the batch (the shipper takes ownership, so it cannot
			// be reused): append-doubling growth sits on a power-of-two
			// knife edge where a one-byte-longer tag value (e.g. a -dirty
			// rev suffix) shifts bytes/op past the gate tolerance.
			buf, n := smp.Sample(make([]byte, 0, 128<<10), time.Now())
			ship.Enqueue(buf, n)
			samples++
		}
	}
	a.Close()
	wall := time.Since(start)
	m := Metrics{
		EventsPerOp: float64(len(s.stream)),
		"events/s":  float64(len(s.stream)) / wall.Seconds(),
	}
	if sampleEvery == 0 {
		return m, nil
	}
	drained := ship.Drain(30 * time.Second)
	ship.Close()
	st := ship.Stats()
	if !drained {
		return nil, fmt.Errorf("shipper failed to drain against a healthy receiver (buffered %d)", st.Buffered)
	}
	// The same zero-silent-loss discipline the chaos soak asserts: a
	// bench that loses points quietly measures garbage.
	if st.Delivered+st.Shed != st.Enqueued {
		return nil, fmt.Errorf("export ledger unbalanced: %d delivered + %d shed != %d enqueued",
			st.Delivered, st.Shed, st.Enqueued)
	}
	if st.Shed != 0 || st.Delivered == 0 {
		return nil, fmt.Errorf("healthy receiver: want 0 shed and >0 delivered, got shed=%d delivered=%d",
			st.Shed, st.Delivered)
	}
	m["samples"] = float64(samples)
	m["points"] = float64(st.Delivered)
	return m, nil
}

// --- table1-learning: the full offline characterization pass ---

type table1Scenario struct {
	desc string
	runs int
}

func (s *table1Scenario) Name() string        { return "table1-learning" }
func (s *table1Scenario) Description() string { return s.desc }
func (s *table1Scenario) Teardown() error     { return nil }

func (s *table1Scenario) Setup(opts Options) error {
	s.runs = 2
	if opts.Short {
		s.runs = 1
	}
	return nil
}

func (s *table1Scenario) Cases() []Case {
	return []Case{{
		Name: fmt.Sprintf("runs=%d", s.runs),
		Run: func() (Metrics, error) {
			res := experiments.Table1(1, s.runs)
			if res.FPMax != 384 {
				return nil, fmt.Errorf("FPmax = %d, want the paper's 384", res.FPMax)
			}
			return Metrics{"fpmax": float64(res.FPMax)}, nil
		},
	}}
}

// --- cluster-soak: federated failover + merged-report ledger ---

type clusterScenario struct {
	desc    string
	streams [][]trace.Event
	lib     *fingerprint.Library
}

func (s *clusterScenario) Name() string        { return "cluster-soak" }
func (s *clusterScenario) Description() string { return s.desc }
func (s *clusterScenario) Teardown() error     { s.streams, s.lib = nil, nil; return nil }

func (s *clusterScenario) Setup(opts Options) error {
	n := 6000
	if opts.Short {
		n = 2500
	}
	// One event stream per monitored deployment: a deployment's pairing
	// spans its nodes, so each stream is one federation partition key.
	s.streams = nil
	for i := 0; i < 2; i++ {
		s.streams = append(s.streams, replay.Synthesize(replay.StreamConfig{
			Events: n, Concurrency: 40, FaultEvery: 400, Seed: int64(21 + i),
		}))
	}
	s.lib = scenario.CoreLibrary()
	return nil
}

func (s *clusterScenario) Cases() []Case {
	return []Case{
		{Name: "steady", Run: func() (Metrics, error) { return s.runFleet(false) }},
		{Name: "failover", Run: func() (Metrics, error) { return s.runFleet(true) }},
	}
}

// fedMember is one in-process analyzer member: receiver, analyzer,
// report log, and the transport-drive goroutine.
type fedMember struct {
	name string
	addr string
	recv *agent.Receiver
	core *core.Analyzer
	log  *federation.ReportLog
	done chan struct{}
}

// runFleet stands up a two-member analyzer fleet, streams each
// deployment to its rendezvous-assigned member, optionally kills the
// first deployment's owner mid-burst (the spool ring replays the whole
// stream into the survivor on the next resolve), and closes the run
// with two ledgers: per-stream zero silent loss at the final owner, and
// produced == merged with zero dups across the member report logs.
func (s *clusterScenario) runFleet(kill bool) (Metrics, error) {
	names := []string{"alpha", "beta"}
	members := map[string]*fedMember{}
	for _, name := range names {
		recv, err := agent.ListenConfig(agent.ReceiverConfig{
			Addr: "127.0.0.1:0", ReadTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			for _, m := range members {
				m.recv.Close()
			}
			return nil, err
		}
		m := &fedMember{
			name: name, addr: recv.Addr(), recv: recv,
			core: core.New(s.lib, core.Config{Alpha: 256, Member: name}),
			log:  federation.NewReportLog(0),
			done: make(chan struct{}),
		}
		m.core.OnReport(m.log.Record)
		members[name] = m
		go func(m *fedMember) {
			replay.DriveTransport(m.core, m.recv, nil)
			close(m.done)
		}(m)
	}

	// The coordinator's control plane in miniature: rendezvous assignment
	// over the alive set, consulted by every sender redial.
	var mu sync.Mutex
	alive := append([]string(nil), names...)
	resolve := func(key string) func() (string, error) {
		return func() (string, error) {
			mu.Lock()
			defer mu.Unlock()
			owner := federation.Assign(key, alive)
			if owner == "" {
				return "", fmt.Errorf("no alive members")
			}
			return members[owner].addr, nil
		}
	}
	currentOwner := func(key string) *fedMember {
		mu.Lock()
		defer mu.Unlock()
		return members[federation.Assign(key, alive)]
	}

	victim := federation.Assign("dep-1", names)
	// The kill is volume-deterministic so the committed bench numbers
	// are stable: every sender pauses at half stream, the controller
	// waits until the victim has admitted each paused first half, kills
	// it, and resumes — the survivor then replays exactly the retained
	// halves plus the back halves instead of a scheduling-dependent cut.
	halfDone := make(chan string, len(s.streams))
	resume := make(chan struct{})

	start := time.Now()
	errs := make(chan error, 2*len(s.streams))
	var wg sync.WaitGroup
	for i := range s.streams {
		key, stream := fmt.Sprintf("dep-%d", i+1), s.streams[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			snd, err := agent.DialConfig(agent.SenderConfig{
				Resolve: resolve(key), Agent: key,
				Ring:       1 << 15, // retain the whole stream: failover replays everything
				Heartbeat:  5 * time.Millisecond,
				BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
				WriteTimeout: 2 * time.Second, DrainTimeout: 30 * time.Second,
			})
			if err != nil {
				errs <- err
				return
			}
			defer snd.Close()
			for j := range stream {
				snd.Send(stream[j])
				if kill && j == len(stream)/2 {
					halfDone <- key
					<-resume
				}
				if j%16 == 15 {
					// Let the writer flush so frames actually reach the
					// owner instead of piling up in the spool.
					time.Sleep(50 * time.Microsecond)
				}
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				st := currentOwner(key).recv.AgentStats()[key]
				if st.LastSeq >= uint64(len(stream)) {
					if st.Missing != 0 || st.Dups != 0 {
						errs <- fmt.Errorf("%s: silent loss at final owner: missing=%d dups=%d", key, st.Missing, st.Dups)
					}
					return
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("%s: owner high-water stuck at %d/%d", key, st.LastSeq, len(stream))
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	if kill {
		paused := map[string]int{}
		for range s.streams {
			key := <-halfDone
			for i := range s.streams {
				if key == fmt.Sprintf("dep-%d", i+1) {
					paused[key] = len(s.streams[i])/2 + 1
				}
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for key, sent := range paused {
			if currentOwner(key).name != victim {
				continue
			}
			for currentOwner(key).recv.AgentStats()[key].LastSeq < uint64(sent) {
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("%s: victim never admitted the first half", key)
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		mu.Lock()
		keep := alive[:0]
		for _, n := range alive {
			if n != victim {
				keep = append(keep, n)
			}
		}
		alive = keep
		mu.Unlock()
		members[victim].recv.Close()
		close(resume)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, name := range names {
		members[name].recv.Close() // idempotent for the killed victim
		<-members[name].done
	}
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}

	// Merge the member logs exactly as the coordinator does and close
	// the report ledger: every produced report merges, none twice.
	produced, merged := 0, 0
	mrg := federation.NewMerger(federation.MergerConfig{
		Window: time.Second, Emit: func(federation.Envelope) { merged++ },
	})
	for _, name := range names {
		page := members[name].log.Page(0)
		produced += len(page.Reports)
		for _, e := range page.Reports {
			mrg.Add(federation.Envelope{Member: name, Epoch: 1, Seq: e.Seq, At: e.At, Report: e.Report})
		}
	}
	mrg.Flush()
	if st := mrg.Stats(); st.Dups != 0 || int(st.Merged) != merged || merged != produced {
		return nil, fmt.Errorf("merge ledger broken: produced %d, merged %d, stats %+v", produced, merged, st)
	}

	totalSent := 0
	for _, stream := range s.streams {
		totalSent += len(stream)
	}
	var delivered uint64
	for _, m := range members {
		delivered += m.core.Stats.Events
	}
	metrics := Metrics{
		EventsPerOp:   float64(totalSent),
		"delivered/s": float64(delivered) / elapsed.Seconds(),
		"delivered":   float64(delivered),
		"reports":     float64(produced),
		"merged":      float64(merged),
	}
	if kill {
		// The survivor re-analyzes the victim's replayed prefix; the
		// overlap is the failover's at-least-once cost, surfaced here.
		metrics["replayed"] = float64(delivered) - float64(totalSent)
	}
	return metrics, nil
}
