// Profile capture and hotspot extraction. The runner writes standard
// runtime/pprof CPU and allocs profiles next to the bench results; the
// top-3 leaf frames of each are decoded here — stdlib only, via a
// minimal reader for the subset of the pprof protobuf the aggregation
// needs — and recorded into BENCH_*.json so hotspot drift is diffable
// per commit instead of living in one-off pprof sessions.

package benchrunner

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile begins a CPU profile into path (creating the parent
// directory) and returns the stop function.
func startCPUProfile(path string) (func() error, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// writeHeapProfile snapshots the allocs profile (cumulative allocation
// sites since process start) into path after a GC pass.
func writeHeapProfile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

// TopHotspots parses a gzipped pprof protobuf profile and returns the n
// leaf functions with the largest flat share of the given sample type
// ("cpu" for CPU profiles, "alloc_space" for allocs profiles; an
// unmatched name falls back to the profile's last value column).
func TopHotspots(path, sampleType string, n int) ([]Hotspot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return topHotspots(raw, sampleType, n)
}

func topHotspots(raw []byte, sampleType string, n int) ([]Hotspot, error) {
	p, err := parseProfile(raw)
	if err != nil {
		return nil, err
	}
	idx := len(p.sampleTypes) - 1
	for i, st := range p.sampleTypes {
		if p.str(st.typ) == sampleType {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, errors.New("profile has no sample types")
	}

	flat := map[string]int64{}
	var total int64
	for _, s := range p.samples {
		if idx >= len(s.vals) || len(s.locs) == 0 {
			continue
		}
		v := s.vals[idx]
		if v == 0 {
			continue
		}
		name := p.funcNameAt(s.locs[0])
		flat[name] += v
		total += v
	}
	if total == 0 {
		return nil, nil
	}
	hs := make([]Hotspot, 0, len(flat))
	for name, v := range flat {
		hs = append(hs, Hotspot{Function: name, FlatPct: 100 * float64(v) / float64(total)})
	}
	sortHotspots(hs)
	if len(hs) > n {
		hs = hs[:n]
	}
	return hs, nil
}

// --- minimal pprof protobuf decoding ---
//
// profile.proto subset:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table (string)
//	ValueType: 1 type, 2 unit            (string table indexes)
//	Sample:    1 location_id (repeated uint64), 2 value (repeated int64)
//	Location:  1 id, 4 line (Line)
//	Line:      1 function_id
//	Function:  1 id, 2 name              (string table index)

type valueType struct{ typ, unit int64 }

type sample struct {
	locs []uint64
	vals []int64
}

type profile struct {
	sampleTypes []valueType
	samples     []sample
	locLeafFunc map[uint64]uint64 // location id → innermost function id
	funcNames   map[uint64]int64  // function id → string index
	strings     []string
}

func (p *profile) str(i int64) string {
	if i >= 0 && int(i) < len(p.strings) {
		return p.strings[i]
	}
	return ""
}

// funcNameAt resolves a location id to its innermost function name,
// with placeholders for unsymbolized locations.
func (p *profile) funcNameAt(loc uint64) string {
	fid, ok := p.locLeafFunc[loc]
	if !ok {
		return "(unsymbolized)"
	}
	if name := p.str(p.funcNames[fid]); name != "" {
		return name
	}
	return "(unnamed)"
}

type pbuf struct {
	b []byte
	i int
}

func (p *pbuf) empty() bool { return p.i >= len(p.b) }

func (p *pbuf) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if p.i >= len(p.b) {
			return 0, io.ErrUnexpectedEOF
		}
		c := p.b[p.i]
		p.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("varint overflows 64 bits")
}

// tag reads one field tag, returning field number and wire type.
func (p *pbuf) tag() (int, int, error) {
	v, err := p.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytesField reads one length-delimited field body.
func (p *pbuf) bytesField() ([]byte, error) {
	n, err := p.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.b)-p.i) {
		return nil, io.ErrUnexpectedEOF
	}
	out := p.b[p.i : p.i+int(n)]
	p.i += int(n)
	return out, nil
}

func (p *pbuf) skip(wire int) error {
	switch wire {
	case 0:
		_, err := p.varint()
		return err
	case 1:
		if len(p.b)-p.i < 8 {
			return io.ErrUnexpectedEOF
		}
		p.i += 8
		return nil
	case 2:
		_, err := p.bytesField()
		return err
	case 5:
		if len(p.b)-p.i < 4 {
			return io.ErrUnexpectedEOF
		}
		p.i += 4
		return nil
	default:
		return fmt.Errorf("unsupported wire type %d", wire)
	}
}

// uints decodes a repeated uint64 field occurrence: packed
// (length-delimited) or a single unpacked varint.
func uints(p *pbuf, wire int, into []uint64) ([]uint64, error) {
	if wire == 0 {
		v, err := p.varint()
		if err != nil {
			return nil, err
		}
		return append(into, v), nil
	}
	body, err := p.bytesField()
	if err != nil {
		return nil, err
	}
	q := &pbuf{b: body}
	for !q.empty() {
		v, err := q.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

func parseProfile(raw []byte) (*profile, error) {
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		if raw, err = io.ReadAll(zr); err != nil {
			return nil, err
		}
	}

	p := &profile{
		locLeafFunc: map[uint64]uint64{},
		funcNames:   map[uint64]int64{},
	}
	top := &pbuf{b: raw}
	for !top.empty() {
		field, wire, err := top.tag()
		if err != nil {
			return nil, err
		}
		if wire != 2 || (field != 1 && field != 2 && field != 4 && field != 5 && field != 6) {
			if err := top.skip(wire); err != nil {
				return nil, err
			}
			continue
		}
		body, err := top.bytesField()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1:
			vt, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			p.sampleTypes = append(p.sampleTypes, vt)
		case 2:
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			p.samples = append(p.samples, s)
		case 4:
			if err := parseLocation(body, p); err != nil {
				return nil, err
			}
		case 5:
			if err := parseFunction(body, p); err != nil {
				return nil, err
			}
		case 6:
			p.strings = append(p.strings, string(body))
		}
	}
	return p, nil
}

func parseValueType(body []byte) (valueType, error) {
	var vt valueType
	p := &pbuf{b: body}
	for !p.empty() {
		field, wire, err := p.tag()
		if err != nil {
			return vt, err
		}
		if wire == 0 && (field == 1 || field == 2) {
			v, err := p.varint()
			if err != nil {
				return vt, err
			}
			if field == 1 {
				vt.typ = int64(v)
			} else {
				vt.unit = int64(v)
			}
			continue
		}
		if err := p.skip(wire); err != nil {
			return vt, err
		}
	}
	return vt, nil
}

func parseSample(body []byte) (sample, error) {
	var s sample
	p := &pbuf{b: body}
	for !p.empty() {
		field, wire, err := p.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1:
			if s.locs, err = uints(p, wire, s.locs); err != nil {
				return s, err
			}
		case 2:
			vals, err := uints(p, wire, nil)
			if err != nil {
				return s, err
			}
			for _, v := range vals {
				s.vals = append(s.vals, int64(v))
			}
		default:
			if err := p.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// parseLocation records the location's innermost (first listed) line's
// function id.
func parseLocation(body []byte, out *profile) error {
	var id, leafFunc uint64
	seenLine := false
	p := &pbuf{b: body}
	for !p.empty() {
		field, wire, err := p.tag()
		if err != nil {
			return err
		}
		switch {
		case field == 1 && wire == 0:
			if id, err = p.varint(); err != nil {
				return err
			}
		case field == 4 && wire == 2:
			line, err := p.bytesField()
			if err != nil {
				return err
			}
			if seenLine {
				continue // only the innermost frame counts as the leaf
			}
			seenLine = true
			q := &pbuf{b: line}
			for !q.empty() {
				lf, lw, err := q.tag()
				if err != nil {
					return err
				}
				if lf == 1 && lw == 0 {
					if leafFunc, err = q.varint(); err != nil {
						return err
					}
					continue
				}
				if err := q.skip(lw); err != nil {
					return err
				}
			}
		default:
			if err := p.skip(wire); err != nil {
				return err
			}
		}
	}
	if id != 0 && seenLine {
		out.locLeafFunc[id] = leafFunc
	}
	return nil
}

func parseFunction(body []byte, out *profile) error {
	var id uint64
	var name int64
	p := &pbuf{b: body}
	for !p.empty() {
		field, wire, err := p.tag()
		if err != nil {
			return err
		}
		if wire == 0 && (field == 1 || field == 2) {
			v, err := p.varint()
			if err != nil {
				return err
			}
			if field == 1 {
				id = v
			} else {
				name = int64(v)
			}
			continue
		}
		if err := p.skip(wire); err != nil {
			return err
		}
	}
	if id != 0 {
		out.funcNames[id] = name
	}
	return nil
}
