package benchrunner

import (
	"strings"
	"testing"
)

func baselineResult() *ScenarioResult {
	return &ScenarioResult{
		Schema: CurrentSchema, Scenario: "ingest", Short: true, Iterations: 3,
		GitRev: "aaaa", Timestamp: "2026-08-01T00:00:00Z",
		Cases: []CaseResult{
			{
				Name: "inline", Iterations: 3,
				NsPerOp: 1e9, AllocsPerOp: 1000, BytesPerOp: 64000,
				Extra: map[string]float64{
					EventsPerOp: 20000, "events/s": 600000,
					"ns/event": 50000, "reports": 12,
				},
			},
			{
				Name: "shards=4", Iterations: 3,
				NsPerOp: 2e9, AllocsPerOp: 2000, BytesPerOp: 128000,
				Extra: map[string]float64{EventsPerOp: 20000, "events/s": 300000},
			},
		},
	}
}

// cloneResult deep-copies a ScenarioResult so tests can perturb one side.
func cloneResult(r *ScenarioResult) *ScenarioResult {
	out := *r
	out.Cases = make([]CaseResult, len(r.Cases))
	for i, c := range r.Cases {
		out.Cases[i] = c
		out.Cases[i].Extra = make(map[string]float64, len(c.Extra))
		for k, v := range c.Extra {
			out.Cases[i].Extra[k] = v
		}
	}
	return &out
}

func TestCompareFlagsSyntheticRegression(t *testing.T) {
	base := baselineResult()
	fresh := cloneResult(base)
	// The synthetic 2× regression the satellite spec demands: wall time
	// doubles, throughput halves.
	fresh.Cases[0].NsPerOp *= 2
	fresh.Cases[0].Extra["events/s"] /= 2
	fresh.Cases[0].Extra["ns/event"] *= 2

	deltas, err := Compare(base, fresh, Tolerance{Default: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) == 0 {
		t.Fatal("2× regression not flagged")
	}
	wantReg := map[string]bool{"ns_per_op": true, "events/s": true, "ns/event": true}
	for _, d := range regs {
		if d.Case != "inline" {
			t.Errorf("untouched case flagged: %+v", d)
		}
		if !wantReg[d.Metric] {
			t.Errorf("unexpected regression metric %q", d.Metric)
		}
		delete(wantReg, d.Metric)
	}
	for m := range wantReg {
		t.Errorf("metric %q not flagged", m)
	}
	// The regression lines render with the failure mark.
	if s := regs[0].String(); !strings.Contains(s, "✗") {
		t.Errorf("regression line lacks mark: %q", s)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := baselineResult()
	fresh := cloneResult(base)
	// 5% worse everywhere: inside the default 10% gate.
	fresh.Cases[0].NsPerOp *= 1.05
	fresh.Cases[0].Extra["events/s"] *= 0.95
	fresh.Cases[1].AllocsPerOp *= 1.05

	deltas, err := Compare(base, fresh, Tolerance{Default: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %+v", regs)
	}
}

func TestCompareImprovementNeverFlags(t *testing.T) {
	base := baselineResult()
	fresh := cloneResult(base)
	// Better in both directions: faster and higher throughput.
	fresh.Cases[0].NsPerOp /= 3
	fresh.Cases[0].Extra["events/s"] *= 3

	deltas, err := Compare(base, fresh, Tolerance{Default: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

func TestCompareInformationalMetricsNotGated(t *testing.T) {
	base := baselineResult()
	fresh := cloneResult(base)
	// "reports" is informational (no direction): a big move must not gate.
	fresh.Cases[0].Extra["reports"] = 999

	deltas, err := Compare(base, fresh, Tolerance{Default: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Metric == "reports" && (d.Gated || d.Regression) {
			t.Fatalf("informational metric gated: %+v", d)
		}
	}
}

func TestComparePerMetricToleranceOverride(t *testing.T) {
	base := baselineResult()
	fresh := cloneResult(base)
	fresh.Cases[0].NsPerOp *= 1.5 // +50%

	// Default 10% flags it...
	deltas, _ := Compare(base, fresh, Tolerance{Default: 0.10})
	if len(Regressions(deltas)) == 0 {
		t.Fatal("+50% ns_per_op not flagged at 10%")
	}
	// ...a 3.0 override for timing lets it through.
	deltas, _ = Compare(base, fresh, Tolerance{
		Default: 0.10, PerMetric: map[string]float64{"ns_per_op": 3.0},
	})
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("per-metric override ignored: %+v", regs)
	}
}

func TestCompareRefusesModeMismatch(t *testing.T) {
	base := baselineResult()
	fresh := cloneResult(base)
	fresh.Short = false
	if _, err := Compare(base, fresh, Tolerance{}); err == nil {
		t.Fatal("short-vs-full compare accepted")
	}
	other := cloneResult(base)
	other.Scenario = "chaos-soak"
	if _, err := Compare(base, other, Tolerance{}); err == nil {
		t.Fatal("cross-scenario compare accepted")
	}
}

func TestCompareMissingCaseFailsGate(t *testing.T) {
	base := baselineResult()
	fresh := cloneResult(base)
	fresh.Cases = fresh.Cases[:1] // shards=4 vanished

	deltas, err := Compare(base, fresh, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range Regressions(deltas) {
		if d.Case == "shards=4" && d.Metric == "(case missing)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("vanished case did not fail the gate: %+v", deltas)
	}
}

func TestParseTolerances(t *testing.T) {
	m, err := ParseTolerances("ns_per_op=0.5, events/s=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if m["ns_per_op"] != 0.5 || m["events/s"] != 0.3 {
		t.Fatalf("parsed %v", m)
	}
	if m, err := ParseTolerances(""); err != nil || m != nil {
		t.Fatalf("empty flag: %v, %v", m, err)
	}
	for _, bad := range []string{"ns_per_op", "x=-1", "x=abc"} {
		if _, err := ParseTolerances(bad); err == nil {
			t.Errorf("ParseTolerances(%q) accepted", bad)
		}
	}
}
