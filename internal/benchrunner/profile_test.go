package benchrunner

import (
	"bytes"
	"compress/gzip"
	"math"
	"runtime/pprof"
	"testing"
)

// --- hand-encoded profile.proto fixture ---

func pvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func pfield(b []byte, field, wire int) []byte {
	return pvarint(b, uint64(field<<3|wire))
}

func pbytes(b []byte, field int, body []byte) []byte {
	b = pfield(b, field, 2)
	b = pvarint(b, uint64(len(body)))
	return append(b, body...)
}

// testProfile builds a two-sample CPU profile by hand:
//
//	sample_type: (samples, count), (cpu, nanoseconds)
//	fnHot: leaf of a 700ns sample; fnWarm: leaf of a 300ns sample
//
// Sample 1 uses packed repeated encoding, sample 2 unpacked — the parser
// must accept both.
func testProfile() []byte {
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "fnHot", "fnWarm"}

	var vt1, vt2 []byte
	vt1 = pfield(vt1, 1, 0)
	vt1 = pvarint(vt1, 1) // samples
	vt1 = pfield(vt1, 2, 0)
	vt1 = pvarint(vt1, 2) // count
	vt2 = pfield(vt2, 1, 0)
	vt2 = pvarint(vt2, 3) // cpu
	vt2 = pfield(vt2, 2, 0)
	vt2 = pvarint(vt2, 4) // nanoseconds

	mkFunc := func(id, name uint64) []byte {
		var f []byte
		f = pfield(f, 1, 0)
		f = pvarint(f, id)
		f = pfield(f, 2, 0)
		f = pvarint(f, name)
		return f
	}
	mkLoc := func(id, funcID uint64) []byte {
		var line []byte
		line = pfield(line, 1, 0)
		line = pvarint(line, funcID)
		var l []byte
		l = pfield(l, 1, 0)
		l = pvarint(l, id)
		return pbytes(l, 4, line)
	}

	// Sample 1: stack [loc1, loc2] (leaf fnHot), values [7, 700], packed.
	var s1, packedLocs, packedVals []byte
	packedLocs = pvarint(packedLocs, 1)
	packedLocs = pvarint(packedLocs, 2)
	packedVals = pvarint(packedVals, 7)
	packedVals = pvarint(packedVals, 700)
	s1 = pbytes(s1, 1, packedLocs)
	s1 = pbytes(s1, 2, packedVals)

	// Sample 2: stack [loc2, loc1] (leaf fnWarm), values [3, 300], unpacked.
	var s2 []byte
	for _, loc := range []uint64{2, 1} {
		s2 = pfield(s2, 1, 0)
		s2 = pvarint(s2, loc)
	}
	for _, v := range []uint64{3, 300} {
		s2 = pfield(s2, 2, 0)
		s2 = pvarint(s2, v)
	}

	var p []byte
	p = pbytes(p, 1, vt1)
	p = pbytes(p, 1, vt2)
	p = pbytes(p, 2, s1)
	p = pbytes(p, 2, s2)
	p = pbytes(p, 4, mkLoc(1, 1))
	p = pbytes(p, 4, mkLoc(2, 2))
	p = pbytes(p, 5, mkFunc(1, 5))
	p = pbytes(p, 5, mkFunc(2, 6))
	for _, s := range strs {
		p = pbytes(p, 6, []byte(s))
	}
	return p
}

func TestTopHotspotsHandEncoded(t *testing.T) {
	hs, err := topHotspots(testProfile(), "cpu", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 {
		t.Fatalf("hotspots = %+v, want 2", hs)
	}
	if hs[0].Function != "fnHot" || math.Abs(hs[0].FlatPct-70) > 1e-9 {
		t.Errorf("top = %+v, want fnHot 70%%", hs[0])
	}
	if hs[1].Function != "fnWarm" || math.Abs(hs[1].FlatPct-30) > 1e-9 {
		t.Errorf("second = %+v, want fnWarm 30%%", hs[1])
	}
	// The "samples" column tells a different story: 7 vs 3.
	hs, err = topHotspots(testProfile(), "samples", 1)
	if err != nil || len(hs) != 1 || hs[0].Function != "fnHot" || math.Abs(hs[0].FlatPct-70) > 1e-9 {
		t.Errorf("samples column: %+v, %v", hs, err)
	}
	// An unknown sample type falls back to the last value column.
	hs, err = topHotspots(testProfile(), "wall", 1)
	if err != nil || len(hs) != 1 || math.Abs(hs[0].FlatPct-70) > 1e-9 {
		t.Errorf("fallback column: %+v, %v", hs, err)
	}
}

func TestTopHotspotsGzipped(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(testProfile())
	zw.Close()
	hs, err := topHotspots(buf.Bytes(), "cpu", 3)
	if err != nil || len(hs) != 2 || hs[0].Function != "fnHot" {
		t.Fatalf("gzipped parse: %+v, %v", hs, err)
	}
}

func TestTopHotspotsTruncated(t *testing.T) {
	// Cut inside the final length-delimited string so the parser sees a
	// body shorter than its declared length.
	raw := testProfile()
	if _, err := topHotspots(raw[:len(raw)-3], "cpu", 3); err == nil {
		t.Error("truncated profile accepted")
	}
}

// TestTopHotspotsRealAllocsProfile feeds a profile the runtime actually
// wrote — the allocs profile always has samples in a test binary — so
// the decoder is checked against real pprof output, not just the
// hand-built fixture.
func TestTopHotspotsRealAllocsProfile(t *testing.T) {
	// Make sure at least one allocation site exists with a healthy count.
	sink := make([][]byte, 0, 512)
	for i := 0; i < 512; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink

	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	hs, err := topHotspots(buf.Bytes(), "alloc_space", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) == 0 {
		t.Fatal("real allocs profile yielded no hotspots")
	}
	var sum float64
	for _, h := range hs {
		if h.Function == "" || h.FlatPct <= 0 || h.FlatPct > 100 {
			t.Errorf("bad hotspot %+v", h)
		}
		sum += h.FlatPct
	}
	if sum > 100.0001 {
		t.Errorf("top-3 shares sum to %.2f%% > 100%%", sum)
	}
}
