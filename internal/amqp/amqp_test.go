package amqp

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
)

func sample() *Message {
	return &Message{
		MethodID:   BasicPublish,
		Exchange:   "nova",
		RoutingKey: "compute.compute-1",
		Envelope: Envelope{
			MsgID:   "msg-0001",
			ReplyTo: "reply_nova_1",
			Method:  "build_and_run_instance",
			Args:    json.RawMessage(`{"instance_id":"i-1"}`),
		},
	}
}

func TestRoundTrip(t *testing.T) {
	m := sample()
	raw, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Fatalf("consumed %d of %d bytes", n, len(raw))
	}
	if got.MethodID != BasicPublish || got.Exchange != "nova" || got.RoutingKey != "compute.compute-1" {
		t.Fatalf("routing mismatch: %+v", got)
	}
	if got.Envelope.MsgID != "msg-0001" || got.Envelope.Method != "build_and_run_instance" ||
		got.Envelope.ReplyTo != "reply_nova_1" {
		t.Fatalf("envelope mismatch: %+v", got.Envelope)
	}
	if string(got.Envelope.Args) != `{"instance_id":"i-1"}` {
		t.Fatalf("args mismatch: %s", got.Envelope.Args)
	}
}

func TestReplyWithFailure(t *testing.T) {
	m := &Message{
		MethodID:   BasicDeliver,
		Exchange:   "",
		RoutingKey: "reply_nova_1",
		Envelope: Envelope{
			MsgID:   "msg-0001",
			Failure: "ComputeServiceUnavailable: No valid host was found",
		},
	}
	raw, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Envelope.Failure == "" || got.Envelope.Method != "" {
		t.Fatalf("failure reply mismatch: %+v", got.Envelope)
	}
}

func TestStreamOfMessages(t *testing.T) {
	var stream []byte
	for i := 0; i < 5; i++ {
		m := sample()
		m.Envelope.MsgID = string(rune('a' + i))
		raw, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, raw...)
	}
	count := 0
	for len(stream) > 0 {
		m, n, err := Unmarshal(stream)
		if err != nil {
			t.Fatalf("message %d: %v", count, err)
		}
		if m.Envelope.MsgID != string(rune('a'+count)) {
			t.Fatalf("message %d out of order: %q", count, m.Envelope.MsgID)
		}
		stream = stream[n:]
		count++
	}
	if count != 5 {
		t.Fatalf("decoded %d messages, want 5", count)
	}
}

func TestTruncation(t *testing.T) {
	raw, err := Marshal(sample())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, _, err := Unmarshal(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d parsed successfully", cut)
		}
	}
}

func TestCorruptFrameEnd(t *testing.T) {
	raw, _ := Marshal(sample())
	// Find the first frame's end marker and corrupt it.
	// Frame: 1 type + 2 chan + 4 size + payload + end.
	size := int(uint32(raw[3])<<24 | uint32(raw[4])<<16 | uint32(raw[5])<<8 | uint32(raw[6]))
	endIdx := 7 + size
	raw[endIdx] = 0x00
	if _, _, err := Unmarshal(raw); !errors.Is(err, ErrBadEnd) {
		t.Fatalf("err = %v, want ErrBadEnd", err)
	}
}

func TestBadFrameType(t *testing.T) {
	raw, _ := Marshal(sample())
	raw[0] = 9
	if _, _, err := Unmarshal(raw); err == nil {
		t.Fatal("bad frame type accepted")
	}
}

func TestWrongFrameOrder(t *testing.T) {
	raw, _ := Marshal(sample())
	// Flip the first frame's type from method to body.
	raw[0] = FrameBody
	_, _, err := Unmarshal(raw)
	if err == nil {
		t.Fatal("body-first message accepted")
	}
}

func TestIsAMQP(t *testing.T) {
	raw, _ := Marshal(sample())
	if !IsAMQP(raw) {
		t.Error("marshaled message not recognized")
	}
	if IsAMQP([]byte("GET / HTTP/1.1\r\n\r\n")) {
		t.Error("HTTP recognized as AMQP")
	}
	if IsAMQP([]byte{1, 2}) {
		t.Error("short buffer recognized as AMQP")
	}
}

func TestLongStringsTruncatedTo255(t *testing.T) {
	m := sample()
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'r'
	}
	m.RoutingKey = string(long)
	raw, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.RoutingKey) != 255 {
		t.Fatalf("routing key length = %d, want 255", len(got.RoutingKey))
	}
}

// Property: round trip preserves exchange, routing key, msg id and method
// for arbitrary printable strings up to short-string limits.
func TestQuickRoundTrip(t *testing.T) {
	f := func(exch, rk, msgID, method string) bool {
		if len(exch) > 255 || len(rk) > 255 {
			return true // skip: short strings truncate by design
		}
		m := &Message{MethodID: BasicDeliver, Exchange: exch, RoutingKey: rk,
			Envelope: Envelope{MsgID: msgID, Method: method}}
		raw, err := Marshal(m)
		if err != nil {
			return false
		}
		got, n, err := Unmarshal(raw)
		return err == nil && n == len(raw) &&
			got.Exchange == exch && got.RoutingKey == rk &&
			got.Envelope.MsgID == msgID && got.Envelope.Method == method
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
