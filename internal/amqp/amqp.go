// Package amqp implements a binary wire framing for broker-routed RPC
// traffic, modeled on AMQP 0-9-1 as used by RabbitMQ, carrying an
// oslo.messaging-style JSON envelope.
//
// The paper augmented Bro with a custom protocol parser for the RabbitMQ
// messaging protocol (§6). This package plays both roles: the simulator
// serializes every RPC into frames, and GRETEL's monitoring agents parse
// those frames back into events — extracting only the routing key, method
// name, message id and error marker, never the argument payload.
//
// Frame layout (following AMQP 0-9-1's general shape):
//
//	octet 0      frame type (1 method, 2 header, 3 body)
//	octets 1-2   channel (big endian)
//	octets 3-6   payload size (big endian)
//	octets 7..   payload
//	last octet   frame-end marker 0xCE
//
// A complete message is a method frame (basic.publish or basic.deliver
// with exchange + routing key), a content-header frame (body size), and a
// single body frame holding the envelope JSON.
package amqp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Frame types.
const (
	FrameMethod byte = 1
	FrameHeader byte = 2
	FrameBody   byte = 3
)

// FrameEnd terminates every frame, as in AMQP 0-9-1.
const FrameEnd byte = 0xCE

// Method ids carried in method frames (class 60 "basic" in AMQP).
const (
	BasicPublish uint16 = 40
	BasicDeliver uint16 = 60
)

// Parsing errors.
var (
	ErrShort    = errors.New("amqp: truncated frame")
	ErrBadFrame = errors.New("amqp: malformed frame")
	ErrBadEnd   = errors.New("amqp: missing frame-end marker")
)

// Envelope is the oslo.messaging-style payload: the RPC method, a unique
// message id for call/reply correlation, an optional reply-to queue, and
// either args (requests) or a result/failure (replies). GRETEL's agents
// read only Method, MsgID, and Failure — Args is opaque payload.
type Envelope struct {
	MsgID   string          `json:"_msg_id,omitempty"`
	ReqID   string          `json:"_request_id,omitempty"`
	ReplyTo string          `json:"_reply_q,omitempty"`
	Method  string          `json:"method,omitempty"`
	Args    json.RawMessage `json:"args,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	// Failure carries the oslo failure class + message on errored replies,
	// e.g. "ComputeServiceUnavailable: no hosts available".
	Failure string `json:"failure,omitempty"`
}

// Message is a full broker message: routing metadata plus the envelope.
type Message struct {
	// MethodID is BasicPublish (producer→broker) or BasicDeliver
	// (broker→consumer).
	MethodID uint16
	// Exchange and RoutingKey select the destination topic, e.g.
	// exchange "nova", routing key "compute.compute-1".
	Exchange   string
	RoutingKey string
	Envelope   Envelope
}

func writeShortStr(b *bytes.Buffer, s string) {
	if len(s) > 255 {
		s = s[:255]
	}
	b.WriteByte(byte(len(s)))
	b.WriteString(s)
}

func readShortStr(p []byte) (string, int, error) {
	if len(p) < 1 {
		return "", 0, ErrShort
	}
	n := int(p[0])
	if len(p) < 1+n {
		return "", 0, ErrShort
	}
	return string(p[1 : 1+n]), 1 + n, nil
}

func writeFrame(b *bytes.Buffer, ftype byte, channel uint16, payload []byte) {
	b.WriteByte(ftype)
	var hdr [6]byte
	binary.BigEndian.PutUint16(hdr[0:2], channel)
	binary.BigEndian.PutUint32(hdr[2:6], uint32(len(payload)))
	b.Write(hdr[:])
	b.Write(payload)
	b.WriteByte(FrameEnd)
}

// readFrame parses one frame from p, returning its type, channel, payload
// and total bytes consumed.
func readFrame(p []byte) (ftype byte, channel uint16, payload []byte, consumed int, err error) {
	if len(p) < 8 {
		return 0, 0, nil, 0, ErrShort
	}
	ftype = p[0]
	if ftype != FrameMethod && ftype != FrameHeader && ftype != FrameBody {
		return 0, 0, nil, 0, fmt.Errorf("%w: type %d", ErrBadFrame, ftype)
	}
	channel = binary.BigEndian.Uint16(p[1:3])
	size := int(binary.BigEndian.Uint32(p[3:7]))
	total := 7 + size + 1
	if len(p) < total {
		return 0, 0, nil, 0, ErrShort
	}
	if p[total-1] != FrameEnd {
		return 0, 0, nil, 0, ErrBadEnd
	}
	return ftype, channel, p[7 : 7+size], total, nil
}

// Marshal encodes the message as a method + content-header + body frame
// sequence on channel 1.
func Marshal(m *Message) ([]byte, error) {
	body, err := json.Marshal(&m.Envelope)
	if err != nil {
		return nil, fmt.Errorf("amqp: encoding envelope: %w", err)
	}

	var method bytes.Buffer
	var ids [4]byte
	binary.BigEndian.PutUint16(ids[0:2], 60) // class basic
	binary.BigEndian.PutUint16(ids[2:4], m.MethodID)
	method.Write(ids[:])
	writeShortStr(&method, m.Exchange)
	writeShortStr(&method, m.RoutingKey)

	var header bytes.Buffer
	var sz [8]byte
	binary.BigEndian.PutUint64(sz[:], uint64(len(body)))
	header.Write(sz[:])

	var out bytes.Buffer
	writeFrame(&out, FrameMethod, 1, method.Bytes())
	writeFrame(&out, FrameHeader, 1, header.Bytes())
	writeFrame(&out, FrameBody, 1, body)
	return out.Bytes(), nil
}

// Unmarshal decodes one complete message (three frames) from raw and
// reports the bytes consumed, allowing back-to-back messages on a stream.
func Unmarshal(raw []byte) (*Message, int, error) {
	ftype, _, payload, n1, err := readFrame(raw)
	if err != nil {
		return nil, 0, err
	}
	if ftype != FrameMethod {
		return nil, 0, fmt.Errorf("%w: expected method frame, got %d", ErrBadFrame, ftype)
	}
	if len(payload) < 4 {
		return nil, 0, ErrBadFrame
	}
	class := binary.BigEndian.Uint16(payload[0:2])
	if class != 60 {
		return nil, 0, fmt.Errorf("%w: class %d", ErrBadFrame, class)
	}
	m := &Message{MethodID: binary.BigEndian.Uint16(payload[2:4])}
	exch, en, err := readShortStr(payload[4:])
	if err != nil {
		return nil, 0, err
	}
	rk, _, err := readShortStr(payload[4+en:])
	if err != nil {
		return nil, 0, err
	}
	m.Exchange, m.RoutingKey = exch, rk

	ftype, _, headerPayload, n2, err := readFrame(raw[n1:])
	if err != nil {
		return nil, 0, err
	}
	if ftype != FrameHeader || len(headerPayload) < 8 {
		return nil, 0, fmt.Errorf("%w: expected content header", ErrBadFrame)
	}
	bodySize := binary.BigEndian.Uint64(headerPayload[:8])

	ftype, _, body, n3, err := readFrame(raw[n1+n2:])
	if err != nil {
		return nil, 0, err
	}
	if ftype != FrameBody {
		return nil, 0, fmt.Errorf("%w: expected body frame", ErrBadFrame)
	}
	if uint64(len(body)) != bodySize {
		return nil, 0, fmt.Errorf("%w: header says %d body bytes, frame has %d", ErrBadFrame, bodySize, len(body))
	}
	if err := json.Unmarshal(body, &m.Envelope); err != nil {
		return nil, 0, fmt.Errorf("amqp: decoding envelope: %w", err)
	}
	return m, n1 + n2 + n3, nil
}

// IsAMQP reports whether raw starts with a plausible AMQP frame header.
// Agents use this to cheaply distinguish broker traffic from HTTP.
func IsAMQP(raw []byte) bool {
	return len(raw) >= 8 && (raw[0] == FrameMethod || raw[0] == FrameHeader || raw[0] == FrameBody)
}
