package amqp

import "testing"

// FuzzUnmarshal hardens the frame parser: arbitrary bytes must never
// panic, and successful parses must re-marshal and re-parse stably.
func FuzzUnmarshal(f *testing.F) {
	good, _ := Marshal(&Message{
		MethodID: BasicDeliver, Exchange: "nova", RoutingKey: "compute",
		Envelope: Envelope{MsgID: "m1", Method: "build_and_run_instance"},
	})
	f.Add(good)
	f.Add([]byte{FrameMethod, 0, 1, 0, 0, 0, 0, FrameEnd})
	f.Add([]byte("HTTP/1.1 200 OK\r\n\r\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, n, err := Unmarshal(raw)
		if err != nil {
			return
		}
		if n <= 0 || n > len(raw) {
			t.Fatalf("consumed %d of %d", n, len(raw))
		}
		re, err := Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		m2, _, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if m2.Exchange != m.Exchange || m2.RoutingKey != m.RoutingKey ||
			m2.Envelope.MsgID != m.Envelope.MsgID {
			t.Fatal("round trip not stable")
		}
	})
}
