// Indexable order-statistic multiset over float64 keys: a treap
// (randomized balanced BST) with duplicate counts and subtree sizes,
// giving O(log n) Insert/Remove/Kth. The detector keeps one per series
// for the inlier window's absolute deviations, so the rolling MAD is
// two rank selections instead of a full re-sort per observation.
//
// Selection is value-based: Kth(k) returns the same float64 the k-th
// slot of the sorted multiset would hold, so Median reproduces the
// naive sort-and-pick median bit for bit — the property the detector's
// old-vs-new equivalence tests pin. The key order matches
// sort.Float64s: NaN sorts before everything else, and all NaNs
// compare equal (they share one node, so a rank inside the NaN run
// yields a NaN just as a sorted slice would).
//
// Nodes are pooled on a free list: once a detector has seen its
// window's worth of distinct values, steady-state maintenance
// allocates nothing. Priorities come from a deterministic xorshift so
// runs are reproducible; tree shape never affects selected values.
package tsoutliers

import "math"

type osNode struct {
	key         float64
	prio        uint64
	cnt         uint32 // multiplicity of key
	size        uint32 // total multiplicity in this subtree
	left, right *osNode
}

// orderStat is the selectable multiset. The zero value is ready to use.
type orderStat struct {
	root *osNode
	free *osNode // node pool, chained via left
	rng  uint64
}

// osLess orders keys like sort.Float64s: ascending with NaN first.
func osLess(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// osEq collapses keys that occupy one sort position: equal values, and
// any pair of NaNs.
func osEq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func osSize(n *osNode) uint32 {
	if n == nil {
		return 0
	}
	return n.size
}

// Len reports the total element count, duplicates included.
func (t *orderStat) Len() int { return int(osSize(t.root)) }

func (t *orderStat) nextPrio() uint64 {
	if t.rng == 0 {
		t.rng = 0x9e3779b97f4a7c15
	}
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

func (t *orderStat) get() *osNode {
	if n := t.free; n != nil {
		t.free = n.left
		*n = osNode{}
		return n
	}
	return &osNode{}
}

func (t *orderStat) put(n *osNode) {
	n.right = nil
	n.left = t.free
	t.free = n
}

// rotations re-derive sizes from children, so callers may rotate with
// temporarily stale counts and fix up afterwards.
func osRotRight(n *osNode) *osNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.size = osSize(n.left) + osSize(n.right) + n.cnt
	l.size = osSize(l.left) + n.size + l.cnt
	return l
}

func osRotLeft(n *osNode) *osNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.size = osSize(n.left) + osSize(n.right) + n.cnt
	r.size = n.size + osSize(r.right) + r.cnt
	return r
}

// Insert adds one occurrence of v.
func (t *orderStat) Insert(v float64) { t.root = t.insert(t.root, v) }

func (t *orderStat) insert(n *osNode, v float64) *osNode {
	if n == nil {
		nn := t.get()
		nn.key, nn.prio, nn.cnt, nn.size = v, t.nextPrio(), 1, 1
		return nn
	}
	if osEq(v, n.key) {
		n.cnt++
		n.size++
		return n
	}
	if osLess(v, n.key) {
		n.left = t.insert(n.left, v)
		n.size++
		if n.left.prio < n.prio {
			n = osRotRight(n)
		}
	} else {
		n.right = t.insert(n.right, v)
		n.size++
		if n.right.prio < n.prio {
			n = osRotLeft(n)
		}
	}
	return n
}

// Remove drops one occurrence of v. Removing an absent key is a no-op
// (the detector only ever evicts values it inserted).
func (t *orderStat) Remove(v float64) { t.root = t.remove(t.root, v) }

func (t *orderStat) remove(n *osNode, v float64) *osNode {
	if n == nil {
		return nil
	}
	if osEq(v, n.key) {
		if n.cnt > 1 {
			n.cnt--
			n.size--
			return n
		}
		switch {
		case n.left == nil:
			r := n.right
			t.put(n)
			return r
		case n.right == nil:
			l := n.left
			t.put(n)
			return l
		case n.left.prio < n.right.prio:
			n = osRotRight(n)
			n.right = t.remove(n.right, v)
		default:
			n = osRotLeft(n)
			n.left = t.remove(n.left, v)
		}
	} else if osLess(v, n.key) {
		n.left = t.remove(n.left, v)
	} else {
		n.right = t.remove(n.right, v)
	}
	n.size = osSize(n.left) + osSize(n.right) + n.cnt
	return n
}

// Kth returns the k-th smallest element (0-based, duplicates counted):
// the value sorted-multiset[k] would hold. Out-of-range ranks yield 0.
func (t *orderStat) Kth(k int) float64 {
	n := t.root
	for n != nil {
		ls := int(osSize(n.left))
		switch {
		case k < ls:
			n = n.left
		case k < ls+int(n.cnt):
			return n.key
		default:
			k -= ls + int(n.cnt)
			n = n.right
		}
	}
	return 0
}

// Median reproduces the naive sorted-slice median exactly: s[m/2] for
// odd m, (s[m/2-1]+s[m/2])/2 for even, 0 when empty.
func (t *orderStat) Median() float64 {
	m := t.Len()
	if m == 0 {
		return 0
	}
	if m%2 == 1 {
		return t.Kth(m / 2)
	}
	return (t.Kth(m/2-1) + t.Kth(m/2)) / 2
}

// Reset empties the multiset, returning every node to the pool.
func (t *orderStat) Reset() {
	t.recycle(t.root)
	t.root = nil
}

func (t *orderStat) recycle(n *osNode) {
	if n == nil {
		return
	}
	t.recycle(n.left)
	t.recycle(n.right)
	t.put(n)
}
