// Package tsoutliers implements online level-shift (LS) outlier detection
// over continuous value streams, the analogue of the R tsoutliers
// package's LS mode the paper used (§6 "Anomaly detection").
//
// The LS semantics the paper relies on: flag sudden, sustained shifts in a
// series (API latency, CPU utilization); adapt the baseline once the shift
// is confirmed so the detector "does not report many false alarms" and
// "does not raise alerts even if latency variations are smaller than the
// initial observed spike" (§7.3).
//
// The detector keeps a robust baseline (median level, MAD spread) over the
// recent inlier history. Each observation yields a residual against the
// level; residuals beyond K spreads raise outlier alarms, and a run of
// MinRun same-signed outliers confirms a level shift, moving the level to
// the run's median. The adjusted series is the observation minus the
// accumulated shifts — the blue line in the paper's Figs 6 and 8b, with
// shifts the red line.
package tsoutliers

import (
	"math"
	"sort"
	"time"
)

// AlarmKind classifies a raised alarm.
type AlarmKind uint8

const (
	// Outlier flags a single observation beyond the threshold (the R
	// package's AO — additive outlier — when isolated).
	Outlier AlarmKind = iota + 1
	// Shift flags a confirmed level shift (LS), raised once per shift.
	Shift
	// TempChange flags a temporary change (TC): a confirmed shift that
	// reverts to the prior level within the TC window — the R package's
	// third outlier class, and exactly the shape of a bounded fault
	// injection like Fig 8b's 10-minute latency window.
	TempChange
)

// String implements fmt.Stringer.
func (k AlarmKind) String() string {
	switch k {
	case Outlier:
		return "outlier"
	case Shift:
		return "level-shift"
	case TempChange:
		return "temporary-change"
	default:
		return "unknown"
	}
}

// Alarm is one raised anomaly.
type Alarm struct {
	Time      time.Time
	Kind      AlarmKind
	Value     float64
	Level     float64 // baseline level at alarm time
	Threshold float64 // residual threshold in effect
}

// ShiftRecord documents one confirmed level shift.
type ShiftRecord struct {
	Time     time.Time
	From, To float64
}

// Options configures a detector. Zero values select defaults.
type Options struct {
	// K is the residual threshold in robust spreads (default 4).
	K float64
	// MinRun is the count of consecutive same-signed outliers that
	// confirms a level shift (default 4).
	MinRun int
	// Window bounds the inlier residual history used for the spread
	// estimate (default 60 samples).
	Window int
	// Warmup is the number of initial samples used to seed the level
	// before any alarms are raised (default 8).
	Warmup int
	// MinSpread floors the spread estimate so near-constant series do
	// not alarm on numeric noise (default 1e-9: effectively off; callers
	// set it to the measurement granularity).
	MinSpread float64
	// TCWindow is the sample horizon within which a shift that reverts
	// to the prior level is classified as a temporary change (default
	// 2000 samples; 0 keeps the default, negative disables TC).
	TCWindow int
	// TCTolerance is the relative tolerance for "reverted to the prior
	// level" (default 0.25: within 25% of the pre-shift level).
	TCTolerance float64
	// MaxAlarms bounds the retained alarm history to a ring of the most
	// recent alarms, so hours-long soaks cannot grow detector memory
	// without limit. 0 keeps the full history (unbounded — the
	// back-compatible test default); the analyzer config applies a
	// generous bound. AlarmCount stays exact regardless: per-kind totals
	// are counted separately from the ring.
	MaxAlarms int
}

func (o *Options) defaults() {
	if o.K == 0 {
		o.K = 4
	}
	if o.MinRun == 0 {
		o.MinRun = 4
	}
	if o.Window == 0 {
		o.Window = 60
	}
	if o.Warmup == 0 {
		o.Warmup = 8
	}
	if o.MinSpread == 0 {
		o.MinSpread = 1e-9
	}
	if o.TCWindow == 0 {
		o.TCWindow = 2000
	}
	if o.TCTolerance == 0 {
		o.TCTolerance = 0.25
	}
}

// Detector is an online level-shift detector for one series. Not safe for
// concurrent use; callers shard one detector per series.
//
// Per-observation work is O(log Window) and allocation-free in steady
// state: the inlier window's absolute deviations around the current
// level live in an incremental order-statistic multiset (orderstat.go),
// so the rolling MAD is two rank selections instead of a re-sort. The
// level only moves on seed and confirmed shifts — rare — and those are
// the only points that rebuild the deviation structure.
type Detector struct {
	opt Options

	seeded  bool
	seedBuf []float64
	level   float64
	base    float64 // initial level, anchor of the adjusted series

	// Inlier window: win is a ring of the recent inlier values in
	// arrival order (the eviction order), dev the order-statistic
	// multiset of their deviations |x - level|. All deviations in dev
	// were computed against the current level: every level move
	// rebuilds the window, so the two never drift.
	win     []float64
	winHead int
	winLen  int
	dev     orderStat

	run     []float64 // current consecutive-outlier run values
	runSign int

	// alarms is the retained history: a plain append log when
	// Options.MaxAlarms <= 0, otherwise a ring of the most recent
	// MaxAlarms alarms starting at alarmHead. kindCounts keeps exact
	// totals (index 0 = all kinds) even after ring eviction.
	alarms     []Alarm
	alarmHead  int
	kindCounts [4]uint64

	out     []Alarm   // Observe's reusable return buffer
	scratch []float64 // seed/shift median scratch

	shifts []ShiftRecord
	// lastShiftN records the sample index of the most recent shift, for
	// temporary-change classification.
	lastShiftN int
	tempCount  int
	n          int
}

// New returns a detector with the given options.
func New(opt Options) *Detector {
	opt.defaults()
	return &Detector{opt: opt}
}

// median is the naive sort-and-pick median. It survives as the oracle
// the equivalence tests compare the incremental structure against, and
// still defines the selection semantics: s[m/2] for odd m,
// (s[m/2-1]+s[m/2])/2 for even.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// mad computes the scaled median absolute deviation around center —
// the naive oracle form (see median).
func mad(xs []float64, center float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - center)
	}
	return 1.4826 * median(dev)
}

// medianOf is the allocation-free naive median used where the window
// is rebuilt anyway (seed, confirmed shift): it sorts into a detector-
// owned scratch slice. Selection is identical to median.
func (d *Detector) medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	d.scratch = append(d.scratch[:0], xs...)
	sort.Float64s(d.scratch)
	s := d.scratch
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// spread returns the scaled MAD of the inlier window around the
// current level, from the incremental structure: value-identical to
// mad(inliers, level) because rank selection over the deviation
// multiset picks the same floats the sorted slice would.
func (d *Detector) spread() float64 {
	return 1.4826 * d.dev.Median()
}

// rebuildWindow resets the inlier window to xs around the (just moved)
// current level: the only O(n log n)-ish moment, at seeds and
// confirmed shifts.
func (d *Detector) rebuildWindow(xs []float64) {
	d.dev.Reset()
	if cap(d.win) < len(xs) {
		d.win = make([]float64, len(xs))
	}
	d.win = d.win[:cap(d.win)]
	d.winHead, d.winLen = 0, len(xs)
	copy(d.win, xs)
	for _, x := range xs {
		d.dev.Insert(math.Abs(x - d.level))
	}
}

// Observe feeds one sample and returns any alarms it raised. The
// returned slice is a detector-owned buffer reused by the next Observe
// call: read or copy it before observing again, do not retain it.
func (d *Detector) Observe(t time.Time, v float64) []Alarm {
	d.n++
	if !d.seeded {
		d.seedBuf = append(d.seedBuf, v)
		if len(d.seedBuf) >= d.opt.Warmup {
			d.level = d.medianOf(d.seedBuf)
			d.base = d.level
			d.rebuildWindow(d.seedBuf)
			d.seedBuf = nil
			d.seeded = true
		}
		return nil
	}

	spread := d.spread()
	if spread < d.opt.MinSpread {
		spread = d.opt.MinSpread
	}
	threshold := d.opt.K * spread
	resid := v - d.level

	if math.Abs(resid) <= threshold {
		// Inlier: extend baseline, cancel any pending run.
		d.pushInlier(v)
		d.run = d.run[:0]
		d.runSign = 0
		return nil
	}

	// Outlier.
	sign := 1
	if resid < 0 {
		sign = -1
	}
	if sign != d.runSign {
		d.run = d.run[:0]
		d.runSign = sign
	}
	d.run = append(d.run, v)

	out := append(d.out[:0], Alarm{Time: t, Kind: Outlier, Value: v, Level: d.level, Threshold: threshold})

	if len(d.run) >= d.opt.MinRun {
		from := d.level
		d.level = d.medianOf(d.run)
		d.shifts = append(d.shifts, ShiftRecord{Time: t, From: from, To: d.level})
		out = append(out, Alarm{Time: t, Kind: Shift, Value: v, Level: d.level, Threshold: threshold})
		// Temporary change: this shift undoes a recent one, landing back
		// near the level that held before the earlier shift.
		if d.opt.TCWindow > 0 && len(d.shifts) >= 2 {
			prev := d.shifts[len(d.shifts)-2]
			reverted := math.Abs(d.level-prev.From) <= d.opt.TCTolerance*math.Max(math.Abs(prev.From), d.opt.MinSpread)
			if reverted && d.n-d.lastShiftN <= d.opt.TCWindow {
				d.tempCount++
				out = append(out, Alarm{Time: t, Kind: TempChange, Value: v, Level: d.level, Threshold: threshold})
			}
		}
		d.lastShiftN = d.n
		// Re-seed the baseline at the new level so post-shift variation
		// is judged against fresh spread.
		d.rebuildWindow(d.run)
		d.run = d.run[:0]
		d.runSign = 0
	}

	d.out = out
	for i := range out {
		d.record(out[i])
	}
	return out
}

// pushInlier appends v to the inlier window and evicts past the
// Window bound, keeping the deviation multiset in lockstep.
func (d *Detector) pushInlier(v float64) {
	if d.winLen == len(d.win) {
		d.growWin()
	}
	i := d.winHead + d.winLen
	if i >= len(d.win) {
		i -= len(d.win)
	}
	d.win[i] = v
	d.winLen++
	d.dev.Insert(math.Abs(v - d.level))
	for d.winLen > d.opt.Window {
		old := d.win[d.winHead]
		d.winHead++
		if d.winHead == len(d.win) {
			d.winHead = 0
		}
		d.winLen--
		d.dev.Remove(math.Abs(old - d.level))
	}
}

// growWin linearizes the ring into a larger buffer. It settles once
// capacity exceeds the Window bound (and the warmup/run sizes), after
// which pushes never allocate.
func (d *Detector) growWin() {
	newCap := 2 * len(d.win)
	if min := d.opt.Window + 1; newCap < min {
		newCap = min
	}
	nw := make([]float64, newCap)
	for i := 0; i < d.winLen; i++ {
		j := d.winHead + i
		if j >= len(d.win) {
			j -= len(d.win)
		}
		nw[i] = d.win[j]
	}
	d.win = nw
	d.winHead = 0
}

// record appends one alarm to the retained history, evicting the
// oldest when the MaxAlarms ring is full. Kind totals stay exact.
func (d *Detector) record(a Alarm) {
	d.kindCounts[0]++
	if k := int(a.Kind); k > 0 && k < len(d.kindCounts) {
		d.kindCounts[k]++
	}
	max := d.opt.MaxAlarms
	if max <= 0 || len(d.alarms) < max {
		d.alarms = append(d.alarms, a)
		return
	}
	d.alarms[d.alarmHead] = a
	d.alarmHead++
	if d.alarmHead == max {
		d.alarmHead = 0
	}
}

// Level returns the current baseline level (0 before warmup completes).
func (d *Detector) Level() float64 { return d.level }

// Adjusted maps an observation onto the shift-adjusted series (the
// paper's blue line): the value minus accumulated level movement.
func (d *Detector) Adjusted(v float64) float64 { return v - (d.level - d.base) }

// Alarms returns the retained alarm history in chronological order:
// everything raised so far when Options.MaxAlarms <= 0, otherwise the
// most recent MaxAlarms alarms (AlarmCount totals stay exact either
// way). Until the ring wraps this is the live backing slice; a wrapped
// ring is linearized into a fresh slice.
func (d *Detector) Alarms() []Alarm {
	if d.alarmHead == 0 {
		return d.alarms
	}
	out := make([]Alarm, len(d.alarms))
	n := copy(out, d.alarms[d.alarmHead:])
	copy(out[n:], d.alarms[:d.alarmHead])
	return out
}

// AlarmCount reports the number of alarms of the given kind raised
// over the detector's whole lifetime (0 counts all kinds). Counts are
// exact even after the MaxAlarms ring evicted old alarms.
func (d *Detector) AlarmCount(kind AlarmKind) int {
	if k := int(kind); k >= 0 && k < len(d.kindCounts) {
		return int(d.kindCounts[k])
	}
	return 0
}

// Shifts returns the confirmed level shifts.
func (d *Detector) Shifts() []ShiftRecord { return d.shifts }

// TempChanges reports how many temporary-change episodes were classified.
func (d *Detector) TempChanges() int { return d.tempCount }

// Observations reports how many samples have been fed.
func (d *Detector) Observations() int { return d.n }

// Bank shards detectors by series key, creating each on first use with
// shared options. It is the analyzer-side registry: one detector per API
// latency stream and per node resource stream.
type Bank struct {
	opt  Options
	byID map[string]*Detector
}

// NewBank returns an empty bank whose detectors use opt.
func NewBank(opt Options) *Bank {
	opt.defaults()
	return &Bank{opt: opt, byID: make(map[string]*Detector)}
}

// Observe routes a sample to the keyed detector. Like
// Detector.Observe, the returned slice is a buffer owned by that
// detector, valid only until its next observation.
func (b *Bank) Observe(key string, t time.Time, v float64) []Alarm {
	d, ok := b.byID[key]
	if !ok {
		d = New(b.opt)
		b.byID[key] = d
	}
	return d.Observe(t, v)
}

// Detector returns the keyed detector, or nil.
func (b *Bank) Detector(key string) *Detector { return b.byID[key] }

// Len reports how many series the bank tracks.
func (b *Bank) Len() int { return len(b.byID) }
