package tsoutliers

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sliceOracle mirrors an orderStat with a sorted slice.
type sliceOracle struct{ s []float64 }

func (o *sliceOracle) insert(v float64) {
	o.s = append(o.s, v)
	sort.Float64s(o.s)
}

func (o *sliceOracle) remove(v float64) {
	for i, x := range o.s {
		if x == v || (math.IsNaN(x) && math.IsNaN(v)) {
			o.s = append(o.s[:i], o.s[i+1:]...)
			return
		}
	}
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

func TestOrderStatAgainstSortedSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tr orderStat
	var or sliceOracle
	var live []float64 // insertion order, for FIFO-style removals

	for step := 0; step < 5000; step++ {
		if len(live) > 0 && (rng.Intn(3) == 0 || len(live) > 64) {
			v := live[0]
			live = live[1:]
			tr.Remove(v)
			or.remove(v)
		} else {
			// Small value domain forces heavy duplication.
			v := float64(rng.Intn(12)) / 4
			live = append(live, v)
			tr.Insert(v)
			or.insert(v)
		}
		if tr.Len() != len(or.s) {
			t.Fatalf("step %d: Len = %d, oracle %d", step, tr.Len(), len(or.s))
		}
		if len(or.s) > 0 {
			// Spot-check three ranks plus the median every step.
			for _, k := range []int{0, len(or.s) / 2, len(or.s) - 1} {
				if got := tr.Kth(k); !bitsEqual(got, or.s[k]) {
					t.Fatalf("step %d: Kth(%d) = %v, oracle %v", step, k, got, or.s[k])
				}
			}
			if got, want := tr.Median(), median(or.s); !bitsEqual(got, want) {
				t.Fatalf("step %d: Median = %v, oracle %v", step, got, want)
			}
		}
	}
}

func TestOrderStatNaNOrder(t *testing.T) {
	var tr orderStat
	tr.Insert(math.NaN())
	tr.Insert(1)
	tr.Insert(math.NaN())
	tr.Insert(-2)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// sort.Float64s order: NaN, NaN, -2, 1.
	if !math.IsNaN(tr.Kth(0)) || !math.IsNaN(tr.Kth(1)) {
		t.Fatal("NaNs must sort first")
	}
	if tr.Kth(2) != -2 || tr.Kth(3) != 1 {
		t.Fatalf("order = %v %v", tr.Kth(2), tr.Kth(3))
	}
	tr.Remove(math.NaN())
	tr.Remove(math.NaN())
	if tr.Len() != 2 || tr.Kth(0) != -2 {
		t.Fatalf("after NaN removal: len=%d kth0=%v", tr.Len(), tr.Kth(0))
	}
}

func TestOrderStatEdges(t *testing.T) {
	var tr orderStat
	if tr.Len() != 0 || tr.Median() != 0 || tr.Kth(0) != 0 {
		t.Fatal("empty multiset accessors")
	}
	tr.Remove(5) // absent key: no-op
	tr.Insert(3)
	if tr.Median() != 3 || tr.Kth(5) != 0 {
		t.Fatalf("singleton median=%v out-of-range=%v", tr.Median(), tr.Kth(5))
	}
	// Even count averages the two middle slots exactly like the oracle.
	tr.Insert(4)
	if got, want := tr.Median(), (3.0+4.0)/2; got != want {
		t.Fatalf("even median = %v, want %v", got, want)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset left elements")
	}
	// Pool reuse after Reset: structure still correct.
	for i := 0; i < 10; i++ {
		tr.Insert(float64(i % 3))
	}
	if tr.Len() != 10 || tr.Median() != 1 {
		t.Fatalf("after reuse: len=%d median=%v", tr.Len(), tr.Median())
	}
}

func TestOrderStatPoolSteadyStateAllocFree(t *testing.T) {
	var tr orderStat
	// Warm the pool to its high-water mark: 64 distinct live keys plus
	// headroom for the insert-before-remove ordering.
	for i := 0; i < 130; i++ {
		tr.Insert(float64(i % 65))
	}
	for i := 0; i < 130; i++ {
		tr.Remove(float64(i % 65))
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Insert(float64(i % 64))
		tr.Median()
		tr.Remove(float64((i + 7) % 64))
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state insert/median/remove allocated %.1f allocs/op", allocs)
	}
}
