package tsoutliers_test

import (
	"fmt"
	"time"

	"gretel/internal/tsoutliers"
)

// Feed a latency stream into the level-shift detector: a sustained jump
// raises outlier alarms until the shift is confirmed, after which the
// adapted baseline stays quiet (the paper's Fig 6 behavior).
func ExampleDetector() {
	det := tsoutliers.New(tsoutliers.Options{MinRun: 3, MinSpread: 1})
	t0 := time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)

	series := make([]float64, 0, 40)
	for i := 0; i < 20; i++ {
		series = append(series, 35) // steady ~35ms
	}
	for i := 0; i < 20; i++ {
		series = append(series, 114) // CPU surge inflates latency
	}
	for i, v := range series {
		for _, alarm := range det.Observe(t0.Add(time.Duration(i)*time.Second), v) {
			fmt.Printf("t=%02ds %s (level %.0f -> value %.0f)\n",
				i, alarm.Kind, alarm.Level, alarm.Value)
		}
	}
	fmt.Printf("adapted level: %.0f\n", det.Level())
	// Output:
	// t=20s outlier (level 35 -> value 114)
	// t=21s outlier (level 35 -> value 114)
	// t=22s outlier (level 35 -> value 114)
	// t=22s level-shift (level 114 -> value 114)
	// adapted level: 114
}
