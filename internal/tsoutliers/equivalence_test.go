package tsoutliers

// Old-vs-new detector equivalence: referenceDetector is a verbatim copy
// of the pre-incremental implementation (per-Observe deviation slice +
// full re-sort, the naive median/mad oracles). Every test here feeds
// the same stream to both and requires bit-identical behavior — same
// alarms (kind, time, value, level, threshold), same shifts, same
// level — because the analyzer's replay byte-identity across shard
// counts rests on the detector being deterministic down to the float.

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"time"
)

// referenceDetector is the old O(W log W)-per-event implementation.
type referenceDetector struct {
	opt Options

	seeded  bool
	seedBuf []float64
	level   float64
	base    float64

	inliers []float64

	run     []float64
	runSign int

	alarms     []Alarm
	shifts     []ShiftRecord
	lastShiftN int
	tempCount  int
	n          int
}

func newReference(opt Options) *referenceDetector {
	opt.defaults()
	return &referenceDetector{opt: opt}
}

func (d *referenceDetector) Observe(t time.Time, v float64) []Alarm {
	d.n++
	if !d.seeded {
		d.seedBuf = append(d.seedBuf, v)
		if len(d.seedBuf) >= d.opt.Warmup {
			d.level = median(d.seedBuf)
			d.base = d.level
			d.inliers = append(d.inliers, d.seedBuf...)
			d.seedBuf = nil
			d.seeded = true
		}
		return nil
	}

	spread := mad(d.inliers, d.level)
	if spread < d.opt.MinSpread {
		spread = d.opt.MinSpread
	}
	threshold := d.opt.K * spread
	resid := v - d.level

	if math.Abs(resid) <= threshold {
		d.pushInlier(v)
		d.run = d.run[:0]
		d.runSign = 0
		return nil
	}

	sign := 1
	if resid < 0 {
		sign = -1
	}
	if sign != d.runSign {
		d.run = d.run[:0]
		d.runSign = sign
	}
	d.run = append(d.run, v)

	out := []Alarm{{Time: t, Kind: Outlier, Value: v, Level: d.level, Threshold: threshold}}

	if len(d.run) >= d.opt.MinRun {
		from := d.level
		d.level = median(d.run)
		d.shifts = append(d.shifts, ShiftRecord{Time: t, From: from, To: d.level})
		out = append(out, Alarm{Time: t, Kind: Shift, Value: v, Level: d.level, Threshold: threshold})
		if d.opt.TCWindow > 0 && len(d.shifts) >= 2 {
			prev := d.shifts[len(d.shifts)-2]
			reverted := math.Abs(d.level-prev.From) <= d.opt.TCTolerance*math.Max(math.Abs(prev.From), d.opt.MinSpread)
			if reverted && d.n-d.lastShiftN <= d.opt.TCWindow {
				d.tempCount++
				out = append(out, Alarm{Time: t, Kind: TempChange, Value: v, Level: d.level, Threshold: threshold})
			}
		}
		d.lastShiftN = d.n
		d.inliers = append(d.inliers[:0], d.run...)
		d.run = d.run[:0]
		d.runSign = 0
	}

	d.alarms = append(d.alarms, out...)
	return out
}

func (d *referenceDetector) pushInlier(v float64) {
	d.inliers = append(d.inliers, v)
	if len(d.inliers) > d.opt.Window {
		d.inliers = d.inliers[len(d.inliers)-d.opt.Window:]
	}
}

// alarmsBitEqual compares two alarm slices field-by-field, with floats
// by bit pattern (NaN payloads collapse: any NaN equals any NaN).
func alarmsBitEqual(a, b []Alarm) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].Kind != b[i].Kind ||
			!bitsEqual(a[i].Value, b[i].Value) ||
			!bitsEqual(a[i].Level, b[i].Level) ||
			!bitsEqual(a[i].Threshold, b[i].Threshold) {
			return false
		}
	}
	return true
}

// driveBoth feeds series to a fresh pair of detectors and fails on the
// first divergence: per-Observe alarms, then final level/shifts/TC.
func driveBoth(t *testing.T, opt Options, series []float64) {
	t.Helper()
	d := New(opt)
	ref := newReference(opt)
	for i, v := range series {
		got := d.Observe(at(i), v)
		want := ref.Observe(at(i), v)
		if !alarmsBitEqual(got, want) {
			t.Fatalf("sample %d (v=%v): alarms diverged\n new: %+v\n old: %+v", i, v, got, want)
		}
	}
	if !bitsEqual(d.Level(), ref.level) {
		t.Fatalf("final level: new %v, old %v", d.Level(), ref.level)
	}
	if d.TempChanges() != ref.tempCount {
		t.Fatalf("temp changes: new %d, old %d", d.TempChanges(), ref.tempCount)
	}
	gs, ws := d.Shifts(), ref.shifts
	if len(gs) != len(ws) {
		t.Fatalf("shifts: new %d, old %d", len(gs), len(ws))
	}
	for i := range gs {
		if !gs[i].Time.Equal(ws[i].Time) || !bitsEqual(gs[i].From, ws[i].From) || !bitsEqual(gs[i].To, ws[i].To) {
			t.Fatalf("shift %d: new %+v, old %+v", i, gs[i], ws[i])
		}
	}
	if d.AlarmCount(0) != len(ref.alarms) {
		t.Fatalf("alarm total: new %d, old %d", d.AlarmCount(0), len(ref.alarms))
	}
}

// tieHeavy yields values from a tiny quantized domain so the deviation
// multiset is dominated by duplicate keys — the case where value-based
// selection over merged nodes must still match sorted-slice ranks.
func tieHeavy(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = 10 + float64(rng.Intn(5))*0.25
	}
	return s
}

func TestDetectorEquivalenceTable(t *testing.T) {
	dflt := Options{MinSpread: 0.5}
	cases := []struct {
		name   string
		opt    Options
		series []float64
	}{
		{"warmup-only", dflt, noisy(6, 10, 2, 101)},
		{"quiet", dflt, noisy(300, 10, 2, 102)},
		{"single-spike", dflt, append(noisy(50, 10, 2, 103), append([]float64{150}, noisy(50, 10, 2, 104)...)...)},
		{"sustained-shift", dflt, append(noisy(60, 10, 2, 105), noisy(120, 60, 2, 106)...)},
		{"tc-revert", Options{MinSpread: 0.5, MinRun: 4},
			append(append(noisy(60, 10, 2, 107), noisy(100, 60, 2, 108)...), noisy(60, 10, 2, 109)...)},
		{"tie-heavy", Options{MinSpread: 0.1}, tieHeavy(500, 110)},
		{"near-constant-minspread", Options{MinSpread: 1.0},
			append(constSeries(80, 5), 5.5, 5.4, 5.6, 50, 5.1, 5.2)},
		{"mixed-sign-runs", Options{MinSpread: 0.5, MinRun: 4},
			append(noisy(60, 50, 2, 111), 200, -100, 200, -100, 200, -100, 200, -100)},
		{"window-eviction", Options{MinSpread: 0.3, Window: 16}, noisy(400, 20, 3, 112)},
		{"warmup-larger-than-window", Options{MinSpread: 0.3, Warmup: 32, Window: 8}, noisy(200, 20, 3, 113)},
		{"shift-run-larger-than-window", Options{MinSpread: 0.3, MinRun: 12, Window: 6},
			append(noisy(60, 10, 1, 114), noisy(80, 90, 1, 115)...)},
		{"downward-shift", dflt, append(noisy(60, 60, 2, 116), noisy(80, 10, 2, 117)...)},
		{"staircase", Options{MinSpread: 0.4, MinRun: 3},
			append(append(noisy(50, 10, 1, 118), noisy(50, 40, 1, 119)...), noisy(50, 90, 1, 120)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { driveBoth(t, tc.opt, tc.series) })
	}
}

// TestDetectorEquivalenceRandomized sweeps option sets against random
// walks with injected level episodes.
func TestDetectorEquivalenceRandomized(t *testing.T) {
	opts := []Options{
		{},
		{MinSpread: 0.5},
		{MinSpread: 0.01, K: 3, MinRun: 3, Window: 20},
		{MinSpread: 0.2, Window: 7, Warmup: 3, MinRun: 2, TCWindow: 40},
		{MinSpread: 1, K: 6, Window: 128, Warmup: 24},
		{MinSpread: 0.1, TCWindow: -1},
	}
	for oi, opt := range opts {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(oi)))
			series := make([]float64, 800)
			level := 20.0
			for i := range series {
				switch {
				case rng.Intn(150) == 0: // episode: move the level
					level = 10 + rng.Float64()*100
				case rng.Intn(90) == 0: // isolated spike
					series[i] = level + 300
					continue
				}
				series[i] = level + rng.NormFloat64()*2
			}
			driveBoth(t, opt, series)
		}
	}
}

// fuzzSeries decodes the fuzzer's bytes into detector options plus a
// float64 series (any bit pattern: ±Inf and NaNs included).
func fuzzSeries(data []byte) (Options, []float64) {
	if len(data) < 4 {
		return Options{}, nil
	}
	opt := Options{
		Window:    1 + int(data[0]%64),
		Warmup:    1 + int(data[1]%16),
		MinRun:    1 + int(data[2]%8),
		K:         1 + float64(data[3]%8)/2,
		MinSpread: 1e-3,
		TCWindow:  64,
	}
	data = data[4:]
	n := len(data) / 8
	if n > 2048 {
		n = 2048
	}
	series := make([]float64, n)
	for i := 0; i < n; i++ {
		series[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return opt, series
}

// FuzzDetectorEquivalence drives arbitrary byte-derived series through
// both implementations. Any divergence — alarms, level, shifts — is a
// crash, including on ±Inf and NaN inputs.
func FuzzDetectorEquivalence(f *testing.F) {
	seed1 := make([]byte, 4, 4+40*8)
	seed1[0], seed1[1], seed1[2], seed1[3] = 16, 4, 3, 4
	for i := 0; i < 40; i++ {
		v := 10.0
		if i >= 20 {
			v = 80
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		seed1 = append(seed1, b[:]...)
	}
	f.Add(seed1)
	f.Add([]byte{8, 8, 4, 6, 0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		opt, series := fuzzSeries(data)
		if len(series) == 0 {
			return
		}
		d := New(opt)
		ref := newReference(opt)
		for i, v := range series {
			got := d.Observe(at(i), v)
			want := ref.Observe(at(i), v)
			if !alarmsBitEqual(got, want) {
				t.Fatalf("sample %d (bits %#x): alarms diverged\n new: %+v\n old: %+v",
					i, math.Float64bits(v), got, want)
			}
		}
		if !bitsEqual(d.Level(), ref.level) {
			t.Fatalf("final level: new %v (%#x), old %v (%#x)",
				d.Level(), math.Float64bits(d.Level()), ref.level, math.Float64bits(ref.level))
		}
		if len(d.Shifts()) != len(ref.shifts) || d.TempChanges() != ref.tempCount {
			t.Fatalf("shifts/tc: new %d/%d, old %d/%d",
				len(d.Shifts()), d.TempChanges(), len(ref.shifts), ref.tempCount)
		}
	})
}
