package tsoutliers

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func at(i int) time.Time {
	return time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
}

// feed pushes a series and returns all alarms raised.
func feed(d *Detector, values []float64) []Alarm {
	var out []Alarm
	for i, v := range values {
		out = append(out, d.Observe(at(i), v)...)
	}
	return out
}

func constSeries(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func noisy(n int, level, amp float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = level + (rng.Float64()-0.5)*amp
	}
	return s
}

func TestQuietSeriesNoAlarms(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	alarms := feed(d, noisy(200, 10, 2, 1))
	if len(alarms) != 0 {
		t.Fatalf("quiet series raised %d alarms: %+v", len(alarms), alarms[0])
	}
}

func TestWarmupSuppressesAlarms(t *testing.T) {
	d := New(Options{Warmup: 8, MinSpread: 0.1})
	// Even wild values during warmup raise nothing.
	for i := 0; i < 7; i++ {
		if got := d.Observe(at(i), float64(i*1000)); len(got) != 0 {
			t.Fatalf("alarm during warmup at %d", i)
		}
	}
}

func TestSpikeRaisesOutlier(t *testing.T) {
	d := New(Options{MinSpread: 0.5, K: 4})
	series := noisy(50, 10, 2, 2)
	series = append(series, 100) // single spike
	alarms := feed(d, series)
	if len(alarms) != 1 || alarms[0].Kind != Outlier {
		t.Fatalf("alarms = %+v, want one outlier", alarms)
	}
	if alarms[0].Value != 100 {
		t.Fatalf("alarm value = %v", alarms[0].Value)
	}
}

func TestSingleSpikeDoesNotShiftLevel(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	series := append(noisy(50, 10, 2, 3), 100)
	series = append(series, noisy(50, 10, 2, 4)...)
	feed(d, series)
	if len(d.Shifts()) != 0 {
		t.Fatalf("isolated spike confirmed a shift: %+v", d.Shifts())
	}
	if math.Abs(d.Level()-10) > 2 {
		t.Fatalf("level drifted to %v", d.Level())
	}
}

func TestSustainedShiftConfirmedAndAdapts(t *testing.T) {
	d := New(Options{MinSpread: 0.5, MinRun: 4})
	series := noisy(60, 10, 2, 5)
	series = append(series, noisy(100, 60, 2, 6)...) // level shift to 60
	alarms := feed(d, series)

	shifts := d.Shifts()
	if len(shifts) != 1 {
		t.Fatalf("shifts = %d, want 1 (%+v)", len(shifts), shifts)
	}
	if math.Abs(shifts[0].To-60) > 3 || math.Abs(shifts[0].From-10) > 2 {
		t.Fatalf("shift = %+v", shifts[0])
	}
	// Alarms stop after adaptation: outliers only around the transition.
	var shiftAlarms, outliers int
	for _, a := range alarms {
		switch a.Kind {
		case Shift:
			shiftAlarms++
		case Outlier:
			outliers++
		}
	}
	if shiftAlarms != 1 {
		t.Fatalf("shift alarms = %d", shiftAlarms)
	}
	if outliers > 8 {
		t.Fatalf("detector kept alarming after adaptation: %d outliers", outliers)
	}
	if math.Abs(d.Level()-60) > 3 {
		t.Fatalf("level = %v, want ~60", d.Level())
	}
}

func TestDownwardShiftDetected(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	series := append(noisy(60, 60, 2, 7), noisy(60, 10, 2, 8)...)
	feed(d, series)
	if len(d.Shifts()) != 1 || math.Abs(d.Shifts()[0].To-10) > 3 {
		t.Fatalf("downward shift missed: %+v", d.Shifts())
	}
}

func TestShiftUpThenDownTwoShifts(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	series := noisy(60, 10, 2, 9)
	series = append(series, noisy(120, 60, 2, 10)...)
	series = append(series, noisy(120, 10, 2, 11)...)
	feed(d, series)
	if len(d.Shifts()) != 2 {
		t.Fatalf("shifts = %d, want 2: %+v", len(d.Shifts()), d.Shifts())
	}
}

func TestAdjustedSeriesRemovesShift(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	series := append(noisy(60, 10, 2, 12), noisy(100, 60, 2, 13)...)
	feed(d, series)
	// After the shift to ~60, the adjusted value of 60 should map back
	// near the original base level ~10.
	adj := d.Adjusted(60)
	if math.Abs(adj-10) > 4 {
		t.Fatalf("Adjusted(60) = %v, want ~10", adj)
	}
}

func TestMixedSignRunDoesNotShift(t *testing.T) {
	d := New(Options{MinSpread: 0.5, MinRun: 4})
	series := noisy(60, 50, 2, 14)
	// Alternating extreme outliers: +/-, never 4 in a row on one side.
	series = append(series, 200, -100, 200, -100, 200, -100, 200, -100)
	feed(d, series)
	if len(d.Shifts()) != 0 {
		t.Fatalf("alternating outliers confirmed shift: %+v", d.Shifts())
	}
}

func TestAlarmCount(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	series := append(noisy(60, 10, 2, 15), noisy(30, 60, 2, 16)...)
	feed(d, series)
	all := d.AlarmCount(0)
	if all != d.AlarmCount(Outlier)+d.AlarmCount(Shift) {
		t.Fatal("alarm counts inconsistent")
	}
	if d.AlarmCount(Shift) != 1 {
		t.Fatalf("shift count = %d", d.AlarmCount(Shift))
	}
}

func TestObservationsCounted(t *testing.T) {
	d := New(Options{})
	feed(d, constSeries(25, 1))
	if d.Observations() != 25 {
		t.Fatalf("Observations = %d", d.Observations())
	}
}

func TestMinSpreadFloorsConstantSeries(t *testing.T) {
	// A perfectly constant series has MAD 0; MinSpread must keep tiny
	// jitter from alarming.
	d := New(Options{MinSpread: 1.0})
	series := constSeries(50, 5)
	series = append(series, 5.5, 5.4, 5.6) // tiny wiggle
	if alarms := feed(d, series); len(alarms) != 0 {
		t.Fatalf("tiny wiggle alarmed: %+v", alarms)
	}
	// But a jump beyond K*MinSpread still alarms.
	if alarms := d.Observe(at(999), 50); len(alarms) == 0 {
		t.Fatal("real jump missed")
	}
}

func TestBankShardsByKey(t *testing.T) {
	b := NewBank(Options{MinSpread: 0.5})
	for i := 0; i < 60; i++ {
		b.Observe("a", at(i), 10)
		b.Observe("b", at(i), 500)
	}
	// A value normal for series b must alarm on series a.
	if alarms := b.Observe("a", at(100), 500); len(alarms) == 0 {
		t.Fatal("bank mixed series baselines")
	}
	if alarms := b.Observe("b", at(100), 500); len(alarms) != 0 {
		t.Fatal("bank alarmed on series b's own level")
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Detector("a") == nil || b.Detector("zzz") != nil {
		t.Fatal("Detector lookup broken")
	}
}

func TestKindString(t *testing.T) {
	if Outlier.String() != "outlier" || Shift.String() != "level-shift" || AlarmKind(9).String() != "unknown" {
		t.Fatal("kind strings wrong")
	}
}

func TestMedianHelpers(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median(nil)")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	if mad(nil, 0) != 0 {
		t.Fatal("mad(nil)")
	}
	got := mad([]float64{1, 1, 1}, 1)
	if got != 0 {
		t.Fatalf("mad of constant = %v", got)
	}
}

func TestTemporaryChangeClassification(t *testing.T) {
	d := New(Options{MinSpread: 0.5, MinRun: 4})
	// Baseline 10, shift to 60 for a bounded episode, back to 10: the
	// second shift is classified as a temporary change.
	series := noisy(60, 10, 2, 41)
	series = append(series, noisy(120, 60, 2, 42)...)
	series = append(series, noisy(60, 10, 2, 43)...)
	feed(d, series)
	if len(d.Shifts()) != 2 {
		t.Fatalf("shifts = %d, want 2", len(d.Shifts()))
	}
	if d.TempChanges() != 1 {
		t.Fatalf("temp changes = %d, want 1", d.TempChanges())
	}
	if d.AlarmCount(TempChange) != 1 {
		t.Fatalf("TC alarms = %d", d.AlarmCount(TempChange))
	}
}

func TestPermanentShiftNotTemporary(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	series := append(noisy(60, 10, 2, 44), noisy(120, 60, 2, 45)...)
	feed(d, series)
	if d.TempChanges() != 0 {
		t.Fatalf("permanent shift classified temporary: %d", d.TempChanges())
	}
}

func TestShiftToNewLevelNotTemporary(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	// Up to 60, then on to 120: two shifts but no reversion.
	series := noisy(60, 10, 2, 46)
	series = append(series, noisy(60, 60, 2, 47)...)
	series = append(series, noisy(60, 120, 2, 48)...)
	feed(d, series)
	if len(d.Shifts()) != 2 || d.TempChanges() != 0 {
		t.Fatalf("shifts=%d tc=%d", len(d.Shifts()), d.TempChanges())
	}
}

func TestTCWindowExpiry(t *testing.T) {
	d := New(Options{MinSpread: 0.5, TCWindow: 50})
	// The episode lasts 200 samples: longer than the TC window, so the
	// reversion is a plain level shift, not a temporary change.
	series := noisy(60, 10, 2, 49)
	series = append(series, noisy(200, 60, 2, 50)...)
	series = append(series, noisy(60, 10, 2, 51)...)
	feed(d, series)
	if d.TempChanges() != 0 {
		t.Fatalf("expired episode classified temporary")
	}
}

func TestTCDisabled(t *testing.T) {
	d := New(Options{MinSpread: 0.5, TCWindow: -1})
	series := noisy(60, 10, 2, 52)
	series = append(series, noisy(80, 60, 2, 53)...)
	series = append(series, noisy(60, 10, 2, 54)...)
	feed(d, series)
	if d.TempChanges() != 0 {
		t.Fatal("TC detection ran while disabled")
	}
}

func TestTempChangeKindString(t *testing.T) {
	if TempChange.String() != "temporary-change" {
		t.Fatal("kind string")
	}
}

func TestMaxAlarmsRing(t *testing.T) {
	opt := Options{MinSpread: 0.5, MinRun: 1000, MaxAlarms: 8}
	d := New(opt)
	unbounded := New(Options{MinSpread: 0.5, MinRun: 1000})
	// Warm both on a quiet baseline, then raise many isolated outliers
	// (MinRun is unreachable, so every alarm is an Outlier).
	for i := 0; i < 40; i++ {
		d.Observe(at(i), 10)
		unbounded.Observe(at(i), 10)
	}
	for i := 0; i < 25; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1 // alternate sides so no run ever builds
		}
		d.Observe(at(100+i), 10+sign*500)
		unbounded.Observe(at(100+i), 10+sign*500)
	}

	if got := d.Alarms(); len(got) != 8 {
		t.Fatalf("ring holds %d alarms, want 8", len(got))
	}
	// The ring keeps the most recent alarms in chronological order.
	want := unbounded.Alarms()
	tail := want[len(want)-8:]
	for i, a := range d.Alarms() {
		if !a.Time.Equal(tail[i].Time) || a.Value != tail[i].Value {
			t.Fatalf("ring[%d] = %+v, want %+v", i, a, tail[i])
		}
	}
	// Counts stay exact despite eviction.
	if d.AlarmCount(0) != 25 || d.AlarmCount(Outlier) != 25 {
		t.Fatalf("counts = %d/%d, want 25/25", d.AlarmCount(0), d.AlarmCount(Outlier))
	}
	if d.AlarmCount(Shift) != 0 || d.AlarmCount(AlarmKind(9)) != 0 {
		t.Fatal("kind counts wrong")
	}
}

func TestMaxAlarmsUnlimitedByDefault(t *testing.T) {
	d := New(Options{MinSpread: 0.5})
	for i := 0; i < 30; i++ {
		d.Observe(at(i), 10)
	}
	for i := 0; i < 500; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		d.Observe(at(100+i), 10+sign*500)
	}
	if len(d.Alarms()) != 500 || d.AlarmCount(0) != 500 {
		t.Fatalf("unlimited history truncated: %d alarms, count %d", len(d.Alarms()), d.AlarmCount(0))
	}
}

func TestMaxAlarmsRingKindCountsAcrossShifts(t *testing.T) {
	d := New(Options{MinSpread: 0.5, MinRun: 3, MaxAlarms: 4})
	series := noisy(60, 10, 2, 77)
	series = append(series, noisy(60, 80, 2, 78)...) // confirmed shift
	feed(d, series)
	if d.AlarmCount(Shift) != 1 {
		t.Fatalf("shift count = %d, want 1 (exact despite 4-alarm ring)", d.AlarmCount(Shift))
	}
	if got := d.AlarmCount(0); got != d.AlarmCount(Outlier)+d.AlarmCount(Shift)+d.AlarmCount(TempChange) {
		t.Fatalf("total %d != sum of kinds", got)
	}
	if len(d.Alarms()) > 4 {
		t.Fatalf("ring exceeded cap: %d", len(d.Alarms()))
	}
}

// TestObserveSteadyStateAllocFree pins the hot path: once warm (window
// populated, alarm ring full, node pool at high water), Observe must
// not allocate — neither on inliers nor on outlier alarms.
func TestObserveSteadyStateAllocFree(t *testing.T) {
	t.Run("inliers", func(t *testing.T) {
		d := New(Options{MinSpread: 0.5, MaxAlarms: 64})
		series := noisy(500, 10, 2, 88)
		for i, v := range series {
			d.Observe(at(i), v)
		}
		i := 0
		allocs := testing.AllocsPerRun(2000, func() {
			d.Observe(at(1000+i), series[i%len(series)])
			i++
		})
		if allocs != 0 {
			t.Fatalf("steady-state inlier Observe: %.2f allocs/op, want 0", allocs)
		}
	})
	t.Run("outlier-alarms", func(t *testing.T) {
		d := New(Options{MinSpread: 0.5, MinRun: 1000, MaxAlarms: 64})
		for i := 0; i < 200; i++ {
			d.Observe(at(i), 10)
		}
		// Fill the alarm ring so record() stops growing the slice.
		for i := 0; i < 128; i++ {
			sign := 1.0
			if i%2 == 1 {
				sign = -1
			}
			d.Observe(at(500+i), 10+sign*500)
		}
		i := 0
		allocs := testing.AllocsPerRun(2000, func() {
			sign := 1.0
			if i%2 == 1 {
				sign = -1
			}
			d.Observe(at(5000+i), 10+sign*500)
			i++
		})
		if allocs != 0 {
			t.Fatalf("steady-state outlier Observe: %.2f allocs/op, want 0", allocs)
		}
	})
}

// TestObserveReturnBufferReused documents the Observe contract: the
// returned slice is detector-owned and overwritten by the next call.
func TestObserveReturnBufferReused(t *testing.T) {
	d := New(Options{MinSpread: 0.5, MinRun: 1000})
	for i := 0; i < 30; i++ {
		d.Observe(at(i), 10)
	}
	first := d.Observe(at(100), 900)
	if len(first) != 1 || first[0].Value != 900 {
		t.Fatalf("first = %+v", first)
	}
	second := d.Observe(at(101), -900)
	if len(second) != 1 || second[0].Value != -900 {
		t.Fatalf("second = %+v", second)
	}
	// Same backing buffer: the first slice now shows the second alarm.
	if first[0].Value != -900 {
		t.Fatalf("Observe buffer not reused (first[0].Value = %v) — update the contract docs if this is intentional", first[0].Value)
	}
}
