// Package tempest generates and runs the integration-test workload GRETEL
// learns from — the analogue of OpenStack's Tempest suite (§7.1).
//
// The catalog contains 1200 runnable tests in the paper's five categories
// with Table 1's category sizes (Compute 517, Image 55, Network 251,
// Storage 84, Misc 293). Each test is a distinct high-level operation:
// a category template (hand-written cores like VM create for a few,
// synthetic service workflows for the rest) extended with per-test
// variation segments drawn from the category's API pool. Fingerprint
// lengths are distributed around Table 1's per-category averages, with
// one 384-step Compute test providing the paper's FPmax.
package tempest

import (
	"fmt"
	"math/rand"
	"time"

	"gretel/internal/agent"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/trace"
)

// CategorySizes pins Table 1's test counts.
var CategorySizes = map[openstack.Category]int{
	openstack.Compute: 517,
	openstack.Image:   55,
	openstack.Network: 251,
	openstack.Storage: 84,
	openstack.Misc:    293,
}

// targetLens holds the desired mean fingerprint length (with RPC) and the
// approximate REST share per category, from Table 1's last columns.
var targetLens = map[openstack.Category]struct {
	mean      int
	restShare float64
}{
	openstack.Compute: {100, 0.56},
	openstack.Image:   {18, 15.0 / 18.0},
	openstack.Network: {31, 16.0 / 31.0},
	openstack.Storage: {17, 15.0 / 17.0},
	openstack.Misc:    {16, 11.0 / 16.0},
}

// FPMax is the paper's largest fingerprint size.
const FPMax = 384

// Test is one catalog entry.
type Test struct {
	Index int
	Op    *openstack.Operation
}

// Catalog is the full generated suite.
type Catalog struct {
	Tests      []*Test
	ByCategory map[openstack.Category][]*Test
	Pools      map[openstack.Category]*openstack.APIPool
}

// callerFor picks the client service initiating a category's REST calls.
func callerFor(cat openstack.Category) trace.Service {
	return trace.SvcHorizon // all admin tasks originate at the dashboard/CLI (§4)
}

// rpcCallerFor picks the controller that publishes a category's RPCs.
func rpcCallerFor(cat openstack.Category) trace.Service {
	switch cat {
	case openstack.Compute, openstack.Misc:
		return trace.SvcNova
	case openstack.Network:
		return trace.SvcNeutron
	case openstack.Image:
		return trace.SvcGlance
	default:
		return trace.SvcCinder
	}
}

// coreTemplates returns the hand-written operation cores reused as
// category templates. Catalog tests embed these cores so realistic
// workflows (VM create et al.) appear throughout the suite.
func coreTemplates(cat openstack.Category) []*openstack.Operation {
	switch cat {
	case openstack.Compute:
		return []*openstack.Operation{
			openstack.OpVMCreate(), openstack.OpVMDelete(), openstack.OpVMSnapshot(),
			openstack.OpVMMigrate(), openstack.OpVMResize(),
		}
	case openstack.Image:
		return []*openstack.Operation{openstack.OpImageUpload()}
	case openstack.Network:
		return []*openstack.Operation{
			openstack.OpNetworkCreate(), openstack.OpRouterCreate(),
			openstack.OpFloatingIPAssociate(), openstack.OpSecurityGroupCreate(),
		}
	case openstack.Storage:
		return []*openstack.Operation{
			openstack.OpVolumeCreate(), openstack.OpCinderList(), openstack.OpVolumeAttach(),
		}
	default:
		return nil
	}
}

// crossAPIs are the other-service APIs a category's composite operations
// legitimately touch; they create the small cross-category fingerprint
// overlap Fig 5 measures.
func crossAPIs(cat openstack.Category, pools map[openstack.Category]*openstack.APIPool) []trace.API {
	switch cat {
	case openstack.Compute:
		return []trace.API{
			trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}"),
			trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/ports.json"),
			trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/ports.json"),
			trace.RESTAPI(trace.SvcCinder, "POST", "/v2/volumes"),
		}
	case openstack.Network:
		return []trace.API{
			trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}"),
		}
	case openstack.Storage:
		return []trace.API{
			trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}"),
			trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}"),
		}
	default:
		return nil
	}
}

// NewCatalog deterministically generates the 1200-test suite from a seed.
func NewCatalog(seed int64) *Catalog {
	pools := openstack.Pools()
	c := &Catalog{
		ByCategory: make(map[openstack.Category][]*Test),
		Pools:      pools,
	}
	for _, cat := range openstack.Categories() {
		rng := rand.New(rand.NewSource(seed ^ int64(cat+1)*104729))
		n := CategorySizes[cat]
		templates := coreTemplates(cat)
		cross := crossAPIs(cat, pools)
		pool := pools[cat]
		// Round-robin cursors guarantee near-complete pool coverage.
		restCur, rpcCur := 0, 0
		for i := 0; i < n; i++ {
			op := buildTest(cat, i, rng, pool, templates, cross, &restCur, &rpcCur)
			t := &Test{Index: len(c.Tests), Op: op}
			c.Tests = append(c.Tests, t)
			c.ByCategory[cat] = append(c.ByCategory[cat], t)
		}
	}
	return c
}

// buildTest assembles one catalog operation: auth preamble, a variation
// prefix (per-test distinguishing state changes), a template core, and a
// variation suffix, sized to the category's length distribution.
func buildTest(cat openstack.Category, i int, rng *rand.Rand, pool *openstack.APIPool,
	templates []*openstack.Operation, cross []trace.API, restCur, rpcCur *int) *openstack.Operation {

	tl := targetLens[cat]
	// Triangular-ish distribution with mean ≈ tl.mean; Compute test 0 is
	// the FPmax=384 giant.
	target := tl.mean/2 + rng.Intn(tl.mean/2+1) + rng.Intn(tl.mean/2+1)
	if cat == openstack.Compute && i == 0 {
		target = FPMax
	}

	var core []openstack.Step
	name := fmt.Sprintf("%s-%04d", categorySlug(cat), i)
	if len(templates) > 0 {
		tmpl := templates[i%len(templates)]
		// Strip the template's own auth preamble (re-added below).
		for _, s := range tmpl.Steps {
			if !s.Noise {
				core = append(core, s)
			}
		}
		name = fmt.Sprintf("%s-%s-%04d", categorySlug(cat), tmpl.Name, i)
	}

	caller := callerFor(cat)
	rpcCaller := rpcCallerFor(cat)

	var crossStep *openstack.Step
	if len(cross) > 0 && rng.Float64() < 0.5 {
		a := cross[rng.Intn(len(cross))]
		s := mkStep(a, callerFor(cat), rpcCallerFor(cat), rng)
		crossStep = &s
	}

	// Every test ends with its category's status-poll GET — the call a
	// dashboard/CLI makes to confirm the result, and the API through which
	// RPC failures are relayed back (openstack.RelayAPI).
	relay := openstack.Step{API: openstack.RelayAPI(cat), Caller: callerFor(cat)}

	need := target - len(core) - 1
	if crossStep != nil {
		need--
	}
	if need < 4 {
		need = 4
	}
	nREST := int(float64(need) * tl.restShare)
	nRPC := need - nREST

	pick := func(apis []trace.API, cur *int, n int, stateChangers int) []openstack.Step {
		steps := make([]openstack.Step, 0, n)
		// First take per-test random state-change picks (distinguishers),
		// then round-robin the pool for coverage.
		taken := 0
		for attempts := 0; taken < stateChangers && attempts < 8*n+64; attempts++ {
			a := apis[rng.Intn(len(apis))]
			if a.StateChanging() {
				steps = append(steps, mkStep(a, caller, rpcCaller, rng))
				taken++
			}
		}
		for len(steps) < n {
			a := apis[*cur%len(apis)]
			*cur++
			steps = append(steps, mkStep(a, caller, rpcCaller, rng))
		}
		return steps
	}

	restSteps := pick(pool.REST, restCur, nREST, minInt(3, nREST))
	var rpcSteps []openstack.Step
	if len(pool.RPC) > 0 && nRPC > 0 {
		rpcSteps = pick(pool.RPC, rpcCur, nRPC, minInt(2, nRPC))
	}

	// Interleave REST and RPC variation steps deterministically, split
	// them around the core, and sprinkle the cross-service APIs.
	variation := interleave(restSteps, rpcSteps, rng)
	if crossStep != nil {
		variation = append(variation, *crossStep)
	}
	cut := len(variation) / 2
	steps := make([]openstack.Step, 0, len(variation)+len(core)+2)
	steps = append(steps, openstack.Step{API: openstack.AuthAPIs[0], Caller: caller, Noise: true})
	steps = append(steps, openstack.Step{API: openstack.AuthAPIs[1], Caller: caller, Noise: true})
	steps = append(steps, variation[:cut]...)
	steps = append(steps, core...)
	steps = append(steps, variation[cut:]...)
	steps = append(steps, relay)

	return &openstack.Operation{Name: name, Category: cat, Steps: normalizeSteps(steps)}
}

// normalizeSteps removes adjacent duplicate idempotent (GET/HEAD) steps.
// On the wire such repeats are indistinguishable from transient retries,
// and the fingerprint noise filter rightly collapses them — so the
// catalog's ground truth must not contain them either.
func normalizeSteps(steps []openstack.Step) []openstack.Step {
	out := steps[:0]
	lastReal := -1
	for _, s := range steps {
		if !s.Noise && lastReal >= 0 {
			prev := out[lastReal]
			if s.API == prev.API && (s.API.Method == "GET" || s.API.Method == "HEAD") {
				continue
			}
		}
		out = append(out, s)
		if !s.Noise {
			lastReal = len(out) - 1
		}
	}
	return out
}

func mkStep(a trace.API, caller, rpcCaller trace.Service, rng *rand.Rand) openstack.Step {
	if a.Kind == trace.RPC {
		return openstack.Step{API: a, Caller: rpcCaller, Cast: rng.Float64() < 0.2}
	}
	return openstack.Step{API: a, Caller: caller}
}

func interleave(a, b []openstack.Step, rng *rand.Rand) []openstack.Step {
	out := make([]openstack.Step, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		takeA := j >= len(b) || (i < len(a) && rng.Float64() < float64(len(a)-i)/float64(len(a)-i+len(b)-j))
		if takeA {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}

func categorySlug(cat openstack.Category) string {
	switch cat {
	case openstack.Compute:
		return "compute"
	case openstack.Image:
		return "image"
	case openstack.Network:
		return "network"
	case openstack.Storage:
		return "storage"
	default:
		return "misc"
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SustainPool keeps n uniformly drawn catalog tests executing
// concurrently on the deployment, restarting a new test whenever one
// completes. It returns a stop function; after stop, running instances
// drain but no new ones start. The uniform draw over the catalog is
// proportional to the suite's category distribution (§7.3).
func SustainPool(d *openstack.Deployment, c *Catalog, n int, rng *rand.Rand) (stop func()) {
	stopped := false
	var restart func(*openstack.Instance)
	restart = func(*openstack.Instance) {
		if stopped {
			return
		}
		d.Start(c.Tests[rng.Intn(len(c.Tests))].Op, restart)
	}
	for i := 0; i < n; i++ {
		d.Start(c.Tests[rng.Intn(len(c.Tests))].Op, restart)
	}
	return func() { stopped = true }
}

// RunStats aggregates event counts across learning runs — the Events
// columns of Table 1.
type RunStats struct {
	RESTEvents uint64
	RPCEvents  uint64
}

// RunIsolated executes one test alone on a fresh deployment (heartbeats
// on, per the controlled learning setting) and returns the request-side
// API sequence the monitoring agent captured, plus event counts.
func RunIsolated(test *Test, runSeed int64, stats *RunStats) []trace.API {
	d := openstack.NewDeployment(openstack.Config{
		Seed:            runSeed,
		HeartbeatPeriod: 10 * time.Second,
		// Learning runs compress think time: the controlled setting has
		// no competing load, so pacing only stretches simulated time.
		ThinkMin:  300 * time.Millisecond,
		ThinkMax:  1500 * time.Millisecond,
		RetryProb: 0.08,
	})
	var apis []trace.API
	mon := agent.NewMonitor("learner", func(ev trace.Event) {
		if stats != nil {
			switch ev.Type {
			case trace.RESTRequest, trace.RESTResponse:
				stats.RESTEvents++
			default:
				stats.RPCEvents++
			}
		}
		if ev.Type.Request() {
			apis = append(apis, ev.API)
		}
	}, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	inst := d.Start(test.Op, func(*openstack.Instance) {
		// The test finished; stop heartbeat noise so the simulation
		// drains instead of idling.
		d.StopNoise()
	})
	d.Sim.Run()
	if inst.State != openstack.StateSucceeded {
		// Learning only uses successful iterations (§5); callers retry
		// with another seed if this ever fires (it cannot without an
		// injector).
		return nil
	}
	return apis
}

// LearnLibrary runs every catalog test runsPerTest times in isolation and
// learns the fingerprint library (Algorithm 1 end to end). It returns the
// library and the Table 1 event counters per category.
func LearnLibrary(c *Catalog, runsPerTest int, seed int64) (*fingerprint.Library, map[openstack.Category]*RunStats) {
	if runsPerTest < 1 {
		runsPerTest = 1
	}
	nf := fingerprint.NewNoiseFilter(openstack.NoiseAPIs())
	lib := fingerprint.NewLibrary()
	stats := make(map[openstack.Category]*RunStats)
	for _, cat := range openstack.Categories() {
		stats[cat] = &RunStats{}
	}
	for _, test := range c.Tests {
		traces := make([][]trace.API, 0, runsPerTest)
		for r := 0; r < runsPerTest; r++ {
			st := stats[test.Op.Category]
			if r > 0 {
				st = nil // Table 1 counts each test's single monitored run
			}
			tr := RunIsolated(test, seed^int64(test.Index*runsPerTest+r+1), st)
			if tr != nil {
				traces = append(traces, tr)
			}
		}
		lib.Add(test.Op.Name, test.Op.Category.String(), traces, nf)
	}
	return lib, stats
}
