package tempest

import (
	"testing"

	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/trace"
)

func TestCatalogSizes(t *testing.T) {
	c := NewCatalog(1)
	if len(c.Tests) != 1200 {
		t.Fatalf("total tests = %d, want 1200", len(c.Tests))
	}
	for cat, want := range CategorySizes {
		if got := len(c.ByCategory[cat]); got != want {
			t.Errorf("%v tests = %d, want %d", cat, got, want)
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a, b := NewCatalog(7), NewCatalog(7)
	for i := range a.Tests {
		sa, sb := a.Tests[i].Op.Steps, b.Tests[i].Op.Steps
		if a.Tests[i].Op.Name != b.Tests[i].Op.Name || len(sa) != len(sb) {
			t.Fatalf("test %d differs across builds", i)
		}
		for j := range sa {
			if sa[j].API != sb[j].API {
				t.Fatalf("test %d step %d differs", i, j)
			}
		}
	}
}

func TestCatalogSeedsDiffer(t *testing.T) {
	a, b := NewCatalog(1), NewCatalog(2)
	same := 0
	for i := range a.Tests {
		if len(a.Tests[i].Op.Steps) == len(b.Tests[i].Op.Steps) {
			same++
		}
	}
	if same == len(a.Tests) {
		t.Fatal("different seeds produced identical catalogs")
	}
}

func TestTestNamesUnique(t *testing.T) {
	c := NewCatalog(3)
	seen := map[string]bool{}
	for _, test := range c.Tests {
		if seen[test.Op.Name] {
			t.Fatalf("duplicate test name %q", test.Op.Name)
		}
		seen[test.Op.Name] = true
	}
}

func TestFingerprintLengthDistribution(t *testing.T) {
	c := NewCatalog(5)
	maxLen := 0
	for cat, tl := range targetLens {
		sum := 0
		for _, test := range c.ByCategory[cat] {
			l := test.Op.FingerprintLen(true)
			sum += l
			if l > maxLen {
				maxLen = l
			}
		}
		avg := float64(sum) / float64(len(c.ByCategory[cat]))
		lo, hi := float64(tl.mean)*0.7, float64(tl.mean)*1.4
		if avg < lo || avg > hi {
			t.Errorf("%v avg fingerprint len = %.1f, want within [%.0f, %.0f] of Table 1's %d",
				cat, avg, lo, hi, tl.mean)
		}
	}
	if maxLen != FPMax {
		t.Errorf("max fingerprint len = %d, want FPmax=%d", maxLen, FPMax)
	}
}

func TestTestsAreDistinguishable(t *testing.T) {
	// Tests sharing a template must differ in their non-noise API
	// sequences; sample within Compute.
	c := NewCatalog(9)
	tests := c.ByCategory[openstack.Compute]
	a, b := tests[3].Op.APIs(), tests[6].Op.APIs() // same template (3 templates)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("two catalog tests have identical fingerprints")
		}
	}
}

func TestVariationDrawsFromCategoryPool(t *testing.T) {
	c := NewCatalog(11)
	pool := c.Pools[openstack.Image]
	inPool := map[trace.API]bool{}
	for _, a := range pool.REST {
		inPool[a] = true
	}
	for _, a := range pool.RPC {
		inPool[a] = true
	}
	// Image templates use only Glance + auth; catalog variation should
	// stay within the Image pool (no cross APIs configured for Image).
	for _, test := range c.ByCategory[openstack.Image] {
		for _, s := range test.Op.Steps {
			if s.Noise {
				continue
			}
			if !inPool[s.API] && s.API.Service != trace.SvcGlance {
				t.Fatalf("image test %s uses out-of-pool API %v", test.Op.Name, s.API)
			}
		}
	}
}

func TestPoolCoverage(t *testing.T) {
	// Round-robin coverage: the vast majority of each pool should be
	// touched by at least one test (Table 1 counts unique APIs).
	c := NewCatalog(13)
	for _, cat := range openstack.Categories() {
		used := map[trace.API]bool{}
		for _, test := range c.ByCategory[cat] {
			for _, a := range test.Op.APIs() {
				used[a] = true
			}
		}
		pool := c.Pools[cat]
		total, covered := 0, 0
		for _, a := range append(append([]trace.API{}, pool.REST...), pool.RPC...) {
			total++
			if used[a] {
				covered++
			}
		}
		if float64(covered) < 0.9*float64(total) {
			t.Errorf("%v pool coverage %d/%d < 90%%", cat, covered, total)
		}
	}
}

func TestRunIsolatedProducesTrace(t *testing.T) {
	c := NewCatalog(17)
	test := c.ByCategory[openstack.Storage][0]
	var stats RunStats
	apis := RunIsolated(test, 99, &stats)
	if apis == nil {
		t.Fatal("isolated run failed")
	}
	if stats.RESTEvents == 0 || stats.RPCEvents == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
	// The captured request APIs must contain the operation's fingerprint
	// as a subsequence (noise and repeats may be interspersed).
	want := test.Op.APIs()
	i := 0
	for _, a := range apis {
		if i < len(want) && a == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("trace missing fingerprint APIs: matched %d of %d", i, len(want))
	}
}

func TestLearnLibrarySmall(t *testing.T) {
	// Learn fingerprints for a small slice of the catalog and verify the
	// learned sequences equal the ground-truth (noise pruned, transients
	// removed by LCS).
	c := NewCatalog(19)
	small := &Catalog{
		ByCategory: map[openstack.Category][]*Test{},
		Pools:      c.Pools,
	}
	for _, cat := range openstack.Categories() {
		tests := c.ByCategory[cat][:2]
		small.Tests = append(small.Tests, tests...)
		small.ByCategory[cat] = tests
	}
	lib, stats := LearnLibrary(small, 3, 23)
	if lib.Len() != len(small.Tests) {
		t.Fatalf("library has %d fingerprints, want %d", lib.Len(), len(small.Tests))
	}
	for _, test := range small.Tests {
		fp := lib.ByName(test.Op.Name)
		if fp == nil {
			t.Fatalf("no fingerprint for %s", test.Op.Name)
		}
		want := test.Op.APIs()
		if len(fp.APIs) != len(want) {
			t.Fatalf("%s learned %d APIs, want %d\nlearned: %v\nwant:    %v",
				test.Op.Name, len(fp.APIs), len(want), fp.APIs, want)
		}
		for i := range want {
			if fp.APIs[i] != want[i] {
				t.Fatalf("%s fingerprint[%d] = %v, want %v", test.Op.Name, i, fp.APIs[i], want[i])
			}
		}
	}
	for cat, st := range stats {
		if len(small.ByCategory[cat]) > 0 && (st.RESTEvents == 0 || st.RPCEvents == 0) {
			t.Errorf("%v stats empty: %+v", cat, st)
		}
	}
}

func TestLearnedFingerprintsMostlyUniqueAcrossCategories(t *testing.T) {
	// Fig 5 precondition: fingerprints are substantially unique across
	// categories. Check on ground-truth sequences (cheaper than learning).
	c := NewCatalog(29)
	lib := fingerprint.NewLibrary()
	for _, cat := range openstack.Categories() {
		for _, test := range c.ByCategory[cat][:20] {
			lib.AddAPIs(test.Op.Name, cat.String(), test.Op.APIs())
		}
	}
	all := lib.All()
	lowOverlap := 0
	computeCount := 0
	for _, f := range all {
		if f.Category != "Compute" {
			continue
		}
		computeCount++
		maxOv := 0.0
		for _, g := range all {
			if g.Category == "Compute" {
				continue
			}
			if ov := fingerprint.Overlap(f, g); ov > maxOv {
				maxOv = ov
			}
		}
		if maxOv < 0.15 {
			lowOverlap++
		}
	}
	if computeCount == 0 {
		t.Fatal("no compute fingerprints")
	}
	frac := float64(lowOverlap) / float64(computeCount)
	if frac < 0.7 {
		t.Errorf("only %.0f%% of compute fingerprints have <15%% cross-category overlap (paper: ~90%%)", frac*100)
	}
}

// TestLearnLibraryFullCatalog is the strongest learning statement: over
// the entire 1200-test catalog, Algorithm 1 (noise filter + LCS over two
// isolated runs) recovers exactly each operation's ground-truth API
// sequence.
func TestLearnLibraryFullCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog learning (~4s)")
	}
	c := NewCatalog(47)
	lib, _ := LearnLibrary(c, 2, 53)
	if lib.Len() != len(c.Tests) {
		t.Fatalf("library %d vs catalog %d", lib.Len(), len(c.Tests))
	}
	mismatches := 0
	for _, test := range c.Tests {
		fp := lib.ByName(test.Op.Name)
		want := test.Op.APIs()
		if fp == nil || len(fp.APIs) != len(want) {
			mismatches++
			continue
		}
		for i := range want {
			if fp.APIs[i] != want[i] {
				mismatches++
				break
			}
		}
	}
	if mismatches != 0 {
		t.Fatalf("%d of %d fingerprints differ from ground truth", mismatches, len(c.Tests))
	}
}
