// Package trace defines the shared event model for GRETEL: API identities
// for OpenStack REST and RPC interfaces, and the network events the
// monitoring agents extract from the wire and stream to the analyzer.
//
// The model mirrors what the paper's Bro-based agents could observe without
// parsing JSON payloads: the API invoked, the endpoints, HTTP status or RPC
// error markers, timestamps, and the connection/message identifiers used to
// pair requests with responses.
package trace

import (
	"fmt"
	"time"
)

// Service identifies an OpenStack component (or supporting dependency) that
// terminates REST calls or sends/receives RPCs.
type Service uint8

// OpenStack services and supporting infrastructure from Fig. 1 of the paper.
const (
	SvcUnknown Service = iota
	SvcHorizon
	SvcKeystone
	SvcNova        // Nova controller (nova-api, nova-scheduler, nova-conductor)
	SvcNovaCompute // nova-compute agents on compute nodes
	SvcNeutron
	SvcNeutronAgent // L2/L3/DHCP agents on compute/network nodes
	SvcGlance
	SvcCinder
	SvcSwift
	SvcRabbitMQ
	SvcMySQL
	numServices
)

var serviceNames = [...]string{
	SvcUnknown:      "unknown",
	SvcHorizon:      "horizon",
	SvcKeystone:     "keystone",
	SvcNova:         "nova",
	SvcNovaCompute:  "nova-compute",
	SvcNeutron:      "neutron",
	SvcNeutronAgent: "neutron-agent",
	SvcGlance:       "glance",
	SvcCinder:       "cinder",
	SvcSwift:        "swift",
	SvcRabbitMQ:     "rabbitmq",
	SvcMySQL:        "mysql",
}

// String returns the lowercase service name used in URIs and logs.
func (s Service) String() string {
	if int(s) < len(serviceNames) {
		return serviceNames[s]
	}
	return fmt.Sprintf("service(%d)", uint8(s))
}

// ServiceByName resolves a service from its lowercase name; SvcUnknown
// for unrecognized names.
func ServiceByName(name string) Service {
	for s := SvcHorizon; s < numServices; s++ {
		if serviceNames[s] == name {
			return s
		}
	}
	return SvcUnknown
}

// Services lists every real service value (excluding SvcUnknown).
func Services() []Service {
	out := make([]Service, 0, numServices-1)
	for s := SvcHorizon; s < numServices; s++ {
		out = append(out, s)
	}
	return out
}

// Kind distinguishes the two OpenStack communication styles: inter-service
// REST over HTTP, and intra-service RPC routed through the RabbitMQ broker.
type Kind uint8

const (
	// REST is an HTTP request/response between two services.
	REST Kind = iota + 1
	// RPC is an oslo.messaging invocation via the broker.
	RPC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case REST:
		return "REST"
	case RPC:
		return "RPC"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// API identifies one OpenStack API interface: a REST (method, URI template)
// pair on a service, or an RPC method on a service's topic. API values are
// comparable and are the unit the symbol table maps to single runes.
type API struct {
	Service Service
	Kind    Kind
	// Method is the HTTP verb for REST APIs ("GET", "POST", "PUT",
	// "DELETE") or the RPC method name (e.g. "build_and_run_instance").
	Method string
	// Path is the normalized URI template for REST APIs (identifiers
	// replaced by placeholders, e.g. "/v2.1/servers/{id}"). Empty for RPC.
	Path string
}

// RESTAPI builds a REST API identity.
func RESTAPI(svc Service, method, path string) API {
	return API{Service: svc, Kind: REST, Method: method, Path: path}
}

// RPCAPI builds an RPC API identity.
func RPCAPI(svc Service, method string) API {
	return API{Service: svc, Kind: RPC, Method: method}
}

// Zero reports whether the API is the zero value.
func (a API) Zero() bool { return a == API{} }

// StateChanging reports whether the API mutates system state. Per the
// paper (§5.3.1), REST POST/PUT/DELETE and all RPCs are state-changing;
// these symbols are matched as mandatory literals while read-only symbols
// are optional in the relaxed fingerprint match.
func (a API) StateChanging() bool {
	if a.Kind == RPC {
		return true
	}
	switch a.Method {
	case "POST", "PUT", "DELETE", "PATCH":
		return true
	}
	return false
}

// String renders the API in a compact, human-readable form such as
// "nova REST POST /v2.1/servers" or "nova-compute RPC build_and_run_instance".
func (a API) String() string {
	if a.Kind == RPC {
		return fmt.Sprintf("%s RPC %s", a.Service, a.Method)
	}
	return fmt.Sprintf("%s REST %s %s", a.Service, a.Method, a.Path)
}

// EventType describes the direction/shape of a captured message.
type EventType uint8

const (
	// RESTRequest is an HTTP request observed on the wire.
	RESTRequest EventType = iota + 1
	// RESTResponse is an HTTP response observed on the wire.
	RESTResponse
	// RPCCall is a broker-routed RPC expecting a reply.
	RPCCall
	// RPCReply is the reply to an RPCCall, paired by message id.
	RPCReply
	// RPCCast is a fire-and-forget RPC (no reply expected).
	RPCCast
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case RESTRequest:
		return "REST-req"
	case RESTResponse:
		return "REST-resp"
	case RPCCall:
		return "RPC-call"
	case RPCReply:
		return "RPC-reply"
	case RPCCast:
		return "RPC-cast"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Request reports whether the event initiates an exchange (REST request,
// RPC call or cast) as opposed to completing one.
func (t EventType) Request() bool {
	return t == RESTRequest || t == RPCCall || t == RPCCast
}

// Event is one REST or RPC message as reconstructed by a monitoring agent
// from raw wire bytes. It carries only header-level metadata — GRETEL never
// parses JSON payloads (§5.3) — plus, for evaluation only, the ground-truth
// operation identity used to score precision.
type Event struct {
	// Seq is a receiver-assigned monotonically increasing sequence number.
	Seq uint64
	// Time is the capture timestamp (virtual time inside the simulation).
	Time time.Time
	// Type is the message shape.
	Type EventType
	// API identifies the invoked interface.
	API API
	// SrcNode and DstNode are deployment node names (one service per node
	// in the reference deployment, §5.4 "Improving precision").
	SrcNode, DstNode string
	// SrcAddr and DstAddr are "ip:port" endpoints from the wire.
	SrcAddr, DstAddr string
	// ConnID identifies the TCP connection (REST pairing key).
	ConnID uint64
	// MsgID is the oslo.messaging message id (RPC pairing key).
	MsgID string
	// CorrID is the per-operation correlation identifier
	// (X-Openstack-Request-Id), when the deployment emits one — the
	// extension §5.3.1 anticipates. Empty otherwise.
	CorrID string
	// Status is the HTTP status code on RESTResponse events, or an
	// RPC error indicator (0 ok, nonzero fault class) on RPCReply events.
	Status int
	// ErrorText is the error excerpt the agent's regular-expression scan
	// found in the raw message, empty when the message is healthy.
	ErrorText string
	// WireBytes is the encoded on-the-wire size of the message, used for
	// throughput accounting.
	WireBytes int

	// OpID and OpName are ground truth for evaluation: the high-level
	// administrative task instance this message belongs to. The detector
	// must never read these; they exist so experiments can score precision.
	OpID   uint64
	OpName string
}

// Faulty reports whether the event carries an operational error marker:
// an HTTP status >= 400 or a nonzero RPC error class.
func (e *Event) Faulty() bool {
	switch e.Type {
	case RESTResponse:
		return e.Status >= 400
	case RPCReply:
		return e.Status != 0
	}
	return false
}

// String renders a single-line summary of the event.
func (e *Event) String() string {
	return fmt.Sprintf("#%d %s %s %s->%s status=%d op=%s",
		e.Seq, e.Type, e.API, e.SrcNode, e.DstNode, e.Status, e.OpName)
}
