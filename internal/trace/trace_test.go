package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestServiceStrings(t *testing.T) {
	cases := map[Service]string{
		SvcHorizon:      "horizon",
		SvcKeystone:     "keystone",
		SvcNova:         "nova",
		SvcNovaCompute:  "nova-compute",
		SvcNeutron:      "neutron",
		SvcNeutronAgent: "neutron-agent",
		SvcGlance:       "glance",
		SvcCinder:       "cinder",
		SvcSwift:        "swift",
		SvcRabbitMQ:     "rabbitmq",
		SvcMySQL:        "mysql",
		SvcUnknown:      "unknown",
	}
	for svc, want := range cases {
		if got := svc.String(); got != want {
			t.Errorf("Service(%d).String() = %q, want %q", svc, got, want)
		}
	}
	if got := Service(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range service string = %q", got)
	}
}

func TestServicesListsAll(t *testing.T) {
	svcs := Services()
	if len(svcs) != int(numServices)-1 {
		t.Fatalf("Services() returned %d entries, want %d", len(svcs), numServices-1)
	}
	seen := map[Service]bool{}
	for _, s := range svcs {
		if s == SvcUnknown {
			t.Error("Services() includes SvcUnknown")
		}
		if seen[s] {
			t.Errorf("Services() duplicates %v", s)
		}
		seen[s] = true
	}
}

func TestKindString(t *testing.T) {
	if REST.String() != "REST" || RPC.String() != "RPC" {
		t.Errorf("kind strings wrong: %q %q", REST, RPC)
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Errorf("unknown kind string = %q", Kind(9))
	}
}

func TestAPIConstructors(t *testing.T) {
	r := RESTAPI(SvcNova, "POST", "/v2.1/servers")
	if r.Kind != REST || r.Service != SvcNova || r.Method != "POST" || r.Path != "/v2.1/servers" {
		t.Fatalf("RESTAPI built %+v", r)
	}
	p := RPCAPI(SvcNovaCompute, "build_and_run_instance")
	if p.Kind != RPC || p.Path != "" {
		t.Fatalf("RPCAPI built %+v", p)
	}
	if (API{}).Zero() != true || r.Zero() {
		t.Error("Zero() misreports")
	}
}

func TestStateChanging(t *testing.T) {
	cases := []struct {
		api  API
		want bool
	}{
		{RESTAPI(SvcNova, "GET", "/v2.1/servers"), false},
		{RESTAPI(SvcNova, "HEAD", "/v2.1/servers"), false},
		{RESTAPI(SvcNova, "POST", "/v2.1/servers"), true},
		{RESTAPI(SvcNeutron, "PUT", "/v2.0/ports/{id}"), true},
		{RESTAPI(SvcNeutron, "DELETE", "/v2.0/ports/{id}"), true},
		{RESTAPI(SvcGlance, "PATCH", "/v2/images/{id}"), true},
		{RPCAPI(SvcNovaCompute, "report_state"), true},
	}
	for _, c := range cases {
		if got := c.api.StateChanging(); got != c.want {
			t.Errorf("%v StateChanging() = %v, want %v", c.api, got, c.want)
		}
	}
}

func TestAPIString(t *testing.T) {
	r := RESTAPI(SvcNova, "POST", "/v2.1/servers")
	if got := r.String(); got != "nova REST POST /v2.1/servers" {
		t.Errorf("REST api string = %q", got)
	}
	p := RPCAPI(SvcNovaCompute, "build_and_run_instance")
	if got := p.String(); got != "nova-compute RPC build_and_run_instance" {
		t.Errorf("RPC api string = %q", got)
	}
}

func TestAPIComparable(t *testing.T) {
	a := RESTAPI(SvcNova, "GET", "/v2.1/servers/{id}")
	b := RESTAPI(SvcNova, "GET", "/v2.1/servers/{id}")
	if a != b {
		t.Fatal("identical APIs compare unequal")
	}
	m := map[API]int{a: 1}
	if m[b] != 1 {
		t.Fatal("API not usable as map key")
	}
}

func TestEventTypeRequest(t *testing.T) {
	cases := map[EventType]bool{
		RESTRequest:  true,
		RESTResponse: false,
		RPCCall:      true,
		RPCReply:     false,
		RPCCast:      true,
	}
	for et, want := range cases {
		if et.Request() != want {
			t.Errorf("%v.Request() = %v, want %v", et, et.Request(), want)
		}
	}
}

func TestEventTypeStrings(t *testing.T) {
	for _, et := range []EventType{RESTRequest, RESTResponse, RPCCall, RPCReply, RPCCast} {
		if s := et.String(); strings.HasPrefix(s, "event(") {
			t.Errorf("missing string for %d", et)
		}
	}
	if !strings.Contains(EventType(99).String(), "99") {
		t.Error("unknown event type string")
	}
}

func TestEventFaulty(t *testing.T) {
	cases := []struct {
		ev   Event
		want bool
	}{
		{Event{Type: RESTResponse, Status: 200}, false},
		{Event{Type: RESTResponse, Status: 399}, false},
		{Event{Type: RESTResponse, Status: 400}, true},
		{Event{Type: RESTResponse, Status: 413}, true},
		{Event{Type: RESTResponse, Status: 503}, true},
		{Event{Type: RESTRequest, Status: 500}, false}, // requests carry no status
		{Event{Type: RPCReply, Status: 0}, false},
		{Event{Type: RPCReply, Status: 1}, true},
		{Event{Type: RPCCall, Status: 1}, false},
		{Event{Type: RPCCast, Status: 1}, false},
	}
	for i, c := range cases {
		if got := c.ev.Faulty(); got != c.want {
			t.Errorf("case %d: Faulty() = %v, want %v", i, got, c.want)
		}
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Seq: 7, Type: RESTResponse, API: RESTAPI(SvcGlance, "PUT", "/v2/images/{id}/file"),
		SrcNode: "glance-node", DstNode: "horizon-node", Status: 413, OpName: "image-upload"}
	s := ev.String()
	for _, frag := range []string{"#7", "glance", "413", "image-upload"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Event.String() = %q missing %q", s, frag)
		}
	}
}

// Property: StateChanging is a pure function of Kind and Method — never of
// Service or Path.
func TestStateChangingIgnoresServiceAndPath(t *testing.T) {
	f := func(svcRaw uint8, pathRaw string) bool {
		svc := Service(svcRaw % uint8(numServices))
		get := RESTAPI(svc, "GET", pathRaw)
		post := RESTAPI(svc, "POST", pathRaw)
		rpc := RPCAPI(svc, pathRaw)
		return !get.StateChanging() && post.StateChanging() && rpc.StateChanging()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
