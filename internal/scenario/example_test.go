package scenario_test

import (
	"fmt"
	"time"

	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/scenario"
	"gretel/internal/trace"
)

// Assemble the full GRETEL stack, inject the §7.2.1 disk-exhaustion
// fault, and read the report: operation localization plus root cause.
func Example() {
	h := scenario.New(scenario.Options{Seed: 101, WithRCA: true, PollPeriod: time.Second})

	faults.ExhaustDisk(h.D.Fabric.NodeFor(trace.SvcGlance), 0.8)

	// Ambient traffic sharpens matching: vm-snapshot also contains the
	// failing API, and its other state changes showing up out of order in
	// the window rule it out.
	for _, op := range openstack.CoreOperations()[:4] {
		h.D.Start(op, nil)
	}
	inst := h.D.Start(openstack.OpImageUpload(), nil)
	h.Plan.FailInstanceAt(inst.ID,
		trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
		413, "Request Entity Too Large")
	h.Run(30 * time.Minute)
	h.Finish()

	for _, rep := range h.Reports() {
		fmt.Printf("%s fault on %v\n", rep.Kind, rep.OffendingAPI)
		fmt.Printf("operation: %v\n", rep.Candidates)
		for _, rc := range rep.RootCauses {
			fmt.Printf("root cause: %s\n", rc)
		}
	}
	// Output:
	// operational fault on glance REST PUT /v2/images/{id}/file
	// operation: [image-upload]
	// root cause: glance-node: low free disk space (0.8 GB) (resource)
}
