package scenario

import (
	"testing"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/trace"
)

func TestCoreLibraryCoversCoreOperations(t *testing.T) {
	lib := CoreLibrary()
	ops := openstack.CoreOperations()
	if lib.Len() != len(ops) {
		t.Fatalf("library %d vs core ops %d", lib.Len(), len(ops))
	}
	for _, op := range ops {
		fp := lib.ByName(op.Name)
		if fp == nil {
			t.Fatalf("missing fingerprint for %s", op.Name)
		}
		if fp.Len() != len(op.APIs()) {
			t.Fatalf("%s fingerprint len %d vs %d", op.Name, fp.Len(), len(op.APIs()))
		}
	}
}

func TestHarnessEndToEnd(t *testing.T) {
	h := New(Options{Seed: 5, WithRCA: true, PollPeriod: time.Second})
	h.Plan.FailAPI(trace.RESTAPI(trace.SvcCinder, "POST", "/v2/volumes"), 500, "boom")
	h.D.Start(openstack.OpVolumeCreate(), nil)
	h.Run(20 * time.Minute)
	h.Finish()
	reps := h.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if !reps[0].Hit() {
		t.Fatalf("candidates = %v", reps[0].Candidates)
	}
	if h.Monitor.ParseErrors != 0 {
		t.Fatalf("parse errors: %d", h.Monitor.ParseErrors)
	}
}

func TestHarnessWithoutRCA(t *testing.T) {
	h := New(Options{Seed: 7})
	if h.Engine != nil {
		t.Fatal("engine built without WithRCA")
	}
	h.Plan.FailAPI(trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"), 413, "too large")
	h.D.Start(openstack.OpImageUpload(), nil)
	h.Run(20 * time.Minute)
	h.Finish()
	if len(h.Reports()) != 1 {
		t.Fatalf("reports = %d", len(h.Reports()))
	}
	if len(h.Reports()[0].RootCauses) != 0 {
		t.Fatal("root causes without an engine")
	}
}

func TestHarnessCustomAnalyzerConfig(t *testing.T) {
	h := New(Options{Seed: 9, Analyzer: core.Config{Alpha: 128}})
	if h.Analyzer.Config().Alpha != 128 {
		t.Fatalf("alpha = %d", h.Analyzer.Config().Alpha)
	}
}

// The paper's §8 limitations, demonstrated as tests so they stay honest.

// Limitation 2: faults that produce no wire-visible error — a stuck
// operation whose response never comes (Outcome.Drop) — are missed.
func TestLimitationStuckOperationMissed(t *testing.T) {
	h := New(Options{Seed: 11})
	h.Plan.Add(faults.Rule{
		API:       trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers"),
		StepIndex: -1,
		Outcome:   openstack.Outcome{Drop: true},
	})
	inst := h.D.Start(openstack.OpVMCreate(), nil)
	h.Run(30 * time.Minute)
	h.Finish()
	if inst.State != openstack.StateRunning {
		t.Fatalf("instance state = %v, want stuck (running forever)", inst.State)
	}
	if len(h.Reports()) != 0 {
		t.Fatalf("GRETEL reported a silent fault: %d reports (the paper says it cannot)", len(h.Reports()))
	}
}

// Limitation 4: faults in operations never fingerprinted yield no
// candidates (detection is predicated on test-suite completeness).
func TestLimitationUncoveredOperationNoMatch(t *testing.T) {
	h := New(Options{Seed: 13})
	// An operation outside the core library.
	rogue := &openstack.Operation{
		Name:     "rogue-op",
		Category: openstack.Misc,
		Steps: []openstack.Step{
			{API: trace.RESTAPI(trace.SvcSwift, "PUT", "/v1/{id}/{id}"), Caller: trace.SvcHorizon},
		},
	}
	h.Plan.FailAPI(trace.RESTAPI(trace.SvcSwift, "PUT", "/v1/{id}/{id}"), 500, "boom")
	h.D.Start(rogue, nil)
	h.Run(20 * time.Minute)
	h.Finish()
	reps := h.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d (the error itself is still seen)", len(reps))
	}
	if len(reps[0].Candidates) != 0 {
		t.Fatalf("uncovered operation matched: %v", reps[0].Candidates)
	}
}

// TestBranchedFingerprintExtension: an operation with an asynchronous
// optional step (§8 limitation 6). Classic LCS learning erases the async
// API, so faults in it find no candidates; variant-aware learning keeps
// both branches and localizes faults on either path.
func TestBranchedFingerprintExtension(t *testing.T) {
	asyncAPI := trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/qos/policies")
	branchy := &openstack.Operation{
		Name:     "branchy-op",
		Category: openstack.Network,
		Steps: []openstack.Step{
			{API: trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/networks"), Caller: trace.SvcHorizon},
			{API: asyncAPI, Caller: trace.SvcHorizon, Optional: 0.5},
			{API: trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/subnets.json"), Caller: trace.SvcHorizon},
			{API: trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/networks/{id}"), Caller: trace.SvcHorizon},
		},
	}

	// Learn from isolated executions.
	var traces [][]trace.API
	for r := 0; r < 10; r++ {
		d := openstack.NewDeployment(openstack.Config{Seed: int64(1000 + r)})
		var apis []trace.API
		mon := agent.NewMonitor("learn", func(ev trace.Event) {
			if ev.Type.Request() {
				apis = append(apis, ev.API)
			}
		}, nil)
		d.Fabric.Tap(mon.HandlePacket)
		d.Start(branchy, nil)
		d.Sim.Run()
		traces = append(traces, apis)
	}
	nf := fingerprint.NewNoiseFilter(openstack.NoiseAPIs())

	// Classic learning removes the async API entirely.
	classic := fingerprint.Learn(traces, nf)
	for _, a := range classic {
		if a == asyncAPI {
			t.Fatal("LCS kept the async API (traces never diverged?)")
		}
	}

	// Variant learning keeps both branches.
	variants := fingerprint.LearnVariants(traces, nf, 2, 2)
	if len(variants) != 2 {
		t.Fatalf("variants = %d, want 2", len(variants))
	}

	// A library holding both variants localizes a fault in the async API.
	lib := fingerprint.NewLibrary()
	for _, v := range variants {
		lib.AddAPIs("branchy-op", "Network", v)
	}
	d := openstack.NewDeployment(openstack.Config{Seed: 4242})
	plan := faults.NewPlan()
	plan.FailAPI(asyncAPI, 500, "boom in the async branch")
	d.Injector = plan
	analyzer := core.New(lib, core.Config{Alpha: 64})
	mon := agent.NewMonitor("x", analyzer.Ingest, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	// Start instances until one takes the async branch and faults.
	for i := 0; i < 10; i++ {
		d.Start(branchy, nil)
	}
	d.Sim.Run()
	analyzer.Flush()

	reps := analyzer.Reports()
	if len(reps) == 0 {
		t.Fatal("no instance took the async branch in 10 runs")
	}
	for _, rep := range reps {
		if !rep.Hit() {
			t.Fatalf("async-branch fault not localized: %v", rep.Candidates)
		}
		if len(rep.Candidates) != 1 {
			t.Fatalf("candidates = %v (variants must dedupe by name)", rep.Candidates)
		}
	}
}
