// Package scenario wires a complete GRETEL stack around the simulated
// OpenStack deployment: monitoring agents tapping the fabric, the
// analyzer consuming their events, the collectd-analogue poller, the
// root-cause engine, and a fault-injection plan.
//
// The case-study tests (§7.2), the evaluation experiments (§7.3/§7.4)
// and the runnable examples all build on this harness.
package scenario

import (
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/rca"
	"gretel/internal/trace"
)

// Options configures a harness. Zero values take sensible defaults.
type Options struct {
	Seed     int64
	Deploy   openstack.Config
	Analyzer core.Config
	RCA      rca.Config
	WithRCA  bool
	// Library is the fingerprint library the analyzer matches against.
	// When nil, a library over the hand-written core operations is built
	// from ground truth.
	Library *fingerprint.Library
	// PollPeriod spaces resource polls (paper: 1 s). Zero disables
	// polling (faster when RCA is off).
	PollPeriod time.Duration
}

// Harness is the assembled stack.
type Harness struct {
	D        *openstack.Deployment
	Lib      *fingerprint.Library
	Analyzer *core.Analyzer
	Plan     *faults.Plan
	Monitor  *agent.Monitor
	Engine   *rca.Engine

	finished bool
}

// CoreLibrary builds a fingerprint library over the hand-written core
// operations from their ground-truth API sequences (as offline learning
// would recover them).
func CoreLibrary() *fingerprint.Library {
	lib := fingerprint.NewLibrary()
	for _, op := range openstack.CoreOperations() {
		lib.AddAPIs(op.Name, op.Category.String(), op.APIs())
	}
	return lib
}

// New assembles a harness.
func New(opts Options) *Harness {
	if opts.Deploy.Seed == 0 {
		opts.Deploy.Seed = opts.Seed
	}
	if opts.Deploy.HeartbeatPeriod == 0 {
		opts.Deploy.HeartbeatPeriod = 10 * time.Second
	}
	lib := opts.Library
	if lib == nil {
		lib = CoreLibrary()
	}

	h := &Harness{
		D:    openstack.NewDeployment(opts.Deploy),
		Lib:  lib,
		Plan: faults.NewPlan(),
	}
	h.D.Injector = h.Plan
	h.Analyzer = core.New(lib, opts.Analyzer)
	h.Monitor = agent.NewMonitor("analyzer", func(ev trace.Event) {
		h.Analyzer.Ingest(ev)
	}, h.D.GroundTruth)
	h.D.Fabric.Tap(h.Monitor.HandlePacket)

	if opts.WithRCA {
		src := rca.NewFabricSource(h.D.Fabric, h.D.Metrics)
		h.Engine = rca.NewEngine(lib, src, opts.RCA)
		h.Analyzer.SetRCA(h.Engine.Hook())
	}
	if opts.PollPeriod > 0 {
		h.D.Metrics.StartPolling(h.D.Fabric, h.D.Sim, opts.PollPeriod, func() bool { return h.finished })
	}
	return h
}

// Run advances the simulation by a virtual duration.
func (h *Harness) Run(d time.Duration) {
	h.D.Sim.RunUntil(h.D.Sim.Now().Add(d))
}

// Finish stops noise generation and polling, drains the simulation, and
// flushes any armed snapshots so trailing faults still report.
func (h *Harness) Finish() {
	h.finished = true
	h.D.StopNoise()
	h.D.Sim.Run()
	h.Analyzer.Flush()
}

// Reports is shorthand for the analyzer's reports.
func (h *Harness) Reports() []*core.Report { return h.Analyzer.Reports() }
