// Crash soak: the WAL's reason to exist, proven the hard way. A writer
// is killed mid-append at random byte offsets (torn records) and at
// clean record boundaries, over and over, recovering between kills and
// re-appending what the tear lost. After every crash the recovery scan
// must uphold the loss bound — recovered + quarantined == written,
// acked records never lost, nothing silently missing — and when the
// full stream has finally been captured, replaying the log through the
// analyzer must produce reports byte-identical to an uninterrupted run.
//
// External test package: the soak drives the real replay/core stack,
// which imports wal.

package wal_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"testing"

	"gretel/internal/chaos"
	"gretel/internal/core"
	"gretel/internal/experiments"
	"gretel/internal/replay"
	"gretel/internal/trace"
	"gretel/internal/wal"
)

// scan runs a full recovery pass and returns the intact events + stats.
func scan(t *testing.T, dir string) ([]trace.Event, wal.ReadStats) {
	t.Helper()
	r, err := wal.OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer r.Close()
	var out []trace.Event
	for {
		_, ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, ev)
	}
	r.Close()
	return out, r.Stats()
}

func TestWALCrashSoak(t *testing.T) {
	total := 3000
	if testing.Short() {
		total = 800
	}
	events := replay.Synthesize(replay.StreamConfig{
		Concurrency: 100, Events: total, FaultEvery: 97, Seed: 42,
	})

	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	appended := 0 // records proven durable at cycle start
	var lastSkipped uint64
	var kills, tears int

	for cycle := 0; appended < total; cycle++ {
		if cycle > 400 {
			t.Fatalf("soak not converging: %d/%d after %d cycles", appended, total, cycle)
		}
		// Half the crashes land mid-write (torn record), half at a clean
		// record boundary.
		torn := rng.Intn(2) == 0
		killBytes := int64(0)
		if torn {
			killBytes = int64(200 + rng.Intn(40000))
		}
		cleanStop := 1 + rng.Intn(120)

		opts := wal.Options{
			Dir: dir, SegmentBytes: 256 << 10, Fsync: wal.FsyncNone, RetainBytes: -1,
		}
		if torn {
			opts.WrapWriter = func(w io.Writer) io.Writer {
				return chaos.WrapWriter(w, chaos.WriterConfig{
					Seed: rng.Int63(), KillAfterBytes: killBytes,
				})
			}
		}
		l, err := wal.Open(opts)
		if err != nil {
			t.Fatalf("cycle %d: Open: %v", cycle, err)
		}
		if got := int(l.LastSeq()); got != appended {
			t.Fatalf("cycle %d: writer resumed at seq %d, recovery said %d", cycle, got, appended)
		}

		acked := 0
		killedMidWrite := false
		for i := appended; i < total; i++ {
			if _, err := l.Append(events[i]); err != nil {
				killedMidWrite = true
				kills++
				break
			}
			acked++
			if !torn && acked >= cleanStop {
				kills++
				break
			}
		}
		// Crash: the log is abandoned, never Closed — whatever the kill
		// let through is all recovery gets.

		recovered, stats := scan(t, dir)
		tornPartial := stats.BytesSkipped > lastSkipped // this crash left ink behind
		if tornPartial {
			tears++
		}
		lastSkipped = stats.BytesSkipped

		if int(stats.Records) != appended+acked {
			t.Fatalf("cycle %d: acked records lost: recovered %d, want %d (prev %d + acked %d)",
				cycle, stats.Records, appended+acked, appended, acked)
		}
		written := uint64(appended + acked)
		if tornPartial {
			written++ // the torn append reached the log partially
		}
		if stats.Records+stats.Quarantined != written {
			t.Fatalf("cycle %d: recovered+quarantined = %d+%d, want written %d (torn=%v killed=%v)",
				cycle, stats.Records, stats.Quarantined, written, tornPartial, killedMidWrite)
		}
		if stats.TornTail != tornPartial {
			t.Fatalf("cycle %d: TornTail=%v but partial-tear=%v (%+v)", cycle, stats.TornTail, tornPartial, stats)
		}
		for i, ev := range recovered {
			if ev.ConnID != events[i].ConnID || ev.Seq != events[i].Seq {
				t.Fatalf("cycle %d: recovered record %d is the wrong event", cycle, i)
			}
		}
		appended = int(stats.Records)
	}
	if kills == 0 || tears == 0 {
		t.Fatalf("soak injected no faults (kills %d, tears %d) — not a soak", kills, tears)
	}

	// The full stream survived the gauntlet: the log must now replay
	// byte-identically to a run that never crashed.
	final, stats := scan(t, dir)
	if len(final) != total || stats.FirstSeq != 1 || stats.LastSeq != uint64(total) {
		t.Fatalf("final log: %d records over %d..%d, want %d over 1..%d",
			len(final), stats.FirstSeq, stats.LastSeq, total, total)
	}

	reports := func(drive func(a *core.Analyzer)) []byte {
		a := core.New(experiments.BenchLibrary(), core.Config{})
		drive(a)
		a.Close()
		b, err := json.Marshal(a.Reports())
		if err != nil {
			t.Fatalf("marshal reports: %v", err)
		}
		return b
	}
	fromWAL := reports(func(a *core.Analyzer) {
		res, err := replay.DriveWAL(a, dir, replay.WALDrive{})
		if err != nil {
			t.Fatalf("DriveWAL: %v", err)
		}
		if res.Events != total || res.Recovery.Quarantined != 0 {
			t.Fatalf("DriveWAL fed %d events (quarantined %d), want %d clean", res.Events, res.Recovery.Quarantined, total)
		}
	})
	uninterrupted := reports(func(a *core.Analyzer) {
		for i := range events {
			a.Ingest(events[i])
		}
	})
	if !bytes.Equal(fromWAL, uninterrupted) {
		t.Fatalf("reports after crash recovery differ from uninterrupted run (%d vs %d bytes)",
			len(fromWAL), len(uninterrupted))
	}
}

// TestCaptureThroughAnalyzer wires a real wal.Log into the analyzer's
// capture hook and checks the durable log holds exactly the ingested
// stream, the cursor tracks processing, and a WAL replay of it through
// a second analyzer reproduces the reports byte-for-byte.
func TestCaptureThroughAnalyzer(t *testing.T) {
	events := replay.Synthesize(replay.StreamConfig{
		Concurrency: 100, Events: 1500, FaultEvery: 101, Seed: 9,
	})
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, CursorEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	a := core.New(experiments.BenchLibrary(), core.Config{})
	a.SetCapture(l)
	for i := range events {
		a.Ingest(events[i])
	}
	a.Close()
	repsLive, _ := json.Marshal(a.Reports())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if l.LastSeq() != uint64(len(events)) {
		t.Fatalf("captured %d records, want %d", l.LastSeq(), len(events))
	}
	if l.Cursor() != uint64(len(events)) {
		t.Fatalf("cursor %d, want %d", l.Cursor(), len(events))
	}
	if a.Stats.CaptureErrors != 0 {
		t.Fatalf("capture errors: %d", a.Stats.CaptureErrors)
	}

	got, stats := scan(t, dir)
	if len(got) != len(events) || stats.Quarantined != 0 {
		t.Fatalf("recovered %d (quarantined %d), want %d clean", len(got), stats.Quarantined, len(events))
	}

	b := core.New(experiments.BenchLibrary(), core.Config{})
	if _, err := replay.DriveWAL(b, dir, replay.WALDrive{}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	repsReplayed, _ := json.Marshal(b.Reports())
	if !bytes.Equal(repsLive, repsReplayed) {
		t.Fatalf("WAL replay reports differ from live run")
	}
}

// TestCaptureBatchedOnce guards the Ingest⇄IngestBatch routing: with
// the sharded front-end on, each event must be captured exactly once
// whichever public entry point it came through.
func TestCaptureBatchedOnce(t *testing.T) {
	events := replay.Synthesize(replay.StreamConfig{Concurrency: 50, Events: 600, Seed: 3})
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(experiments.BenchLibrary(), core.Config{IngestShards: 2, IngestBatch: 64})
	a.SetCapture(l)
	// Mix entry points: batches and single-event ingests.
	a.IngestBatch(events[:256])
	for _, ev := range events[256:300] {
		a.Ingest(ev)
	}
	a.IngestBatch(events[300:])
	a.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := scan(t, dir)
	if len(got) != len(events) || stats.Duplicates != 0 || stats.Quarantined != 0 {
		t.Fatalf("captured %d records (dups %d, quarantined %d), want %d exactly once",
			len(got), stats.Duplicates, stats.Quarantined, len(events))
	}
	for i := range got {
		if got[i].ConnID != events[i].ConnID {
			t.Fatalf("record %d out of order", i)
		}
	}
}

// TestDriveWALBarrierSplitsBatch: boot recovery lifts report
// suppression at the durable cursor via the replay barrier. The split
// must land exactly on the cursor even when it falls mid-batch —
// everything at or below it ingested before OnBarrier fires, nothing
// after it — or reports triggered by the unprocessed suffix are
// silently swallowed while suppression is still on.
func TestDriveWALBarrierSplitsBatch(t *testing.T) {
	events := replay.Synthesize(replay.StreamConfig{Concurrency: 50, Events: 600, Seed: 5})
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Barrier 100 falls inside the first 256-event ingest batch.
	a := core.New(experiments.BenchLibrary(), core.Config{})
	atBarrier := -1
	res, err := replay.DriveWAL(a, dir, replay.WALDrive{
		Barrier:   100,
		OnBarrier: func() { atBarrier = int(a.Stats.Events) },
	})
	a.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 600 {
		t.Fatalf("replayed %d events, want 600", res.Events)
	}
	if atBarrier != 100 {
		t.Fatalf("OnBarrier fired with %d events ingested, want exactly the 100 at or below the barrier", atBarrier)
	}

	// A barrier at or past the end of the log is never crossed: the
	// caller keeps suppression until the replay returns.
	b := core.New(experiments.BenchLibrary(), core.Config{})
	fired := false
	if _, err := replay.DriveWAL(b, dir, replay.WALDrive{
		Barrier:   600,
		OnBarrier: func() { fired = true },
	}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if fired {
		t.Fatal("OnBarrier fired although no record lies past the barrier")
	}
}
