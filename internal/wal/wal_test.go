package wal

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gretel/internal/agent"
	"gretel/internal/trace"
)

// testEvents builds n distinguishable events.
func testEvents(n int) []trace.Event {
	base := time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{
			Type:      trace.RESTRequest,
			Time:      base.Add(time.Duration(i) * time.Millisecond),
			ConnID:    uint64(i + 1),
			Status:    200,
			WireBytes: 150 + i%100,
			SrcNode:   "nova-api-node",
			DstNode:   "nova-compute-node",
			OpID:      uint64(i/10 + 1),
		}
	}
	return evs
}

// readAll scans the log and returns every intact record plus the stats.
func readAll(t *testing.T, dir string) ([]trace.Event, ReadStats) {
	t.Helper()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer r.Close()
	var out []trace.Event
	for {
		_, ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, ev)
	}
	r.Close()
	return out, r.Stats()
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	evs := testEvents(100)
	for i, ev := range evs {
		seq, err := l.Append(ev)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, stats := readAll(t, dir)
	if len(got) != len(evs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].ConnID != evs[i].ConnID || !got[i].Time.Equal(evs[i].Time) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], evs[i])
		}
	}
	if stats.Quarantined != 0 || stats.TornTail || stats.BytesSkipped != 0 {
		t.Fatalf("clean log shows damage: %+v", stats)
	}
	if stats.FirstSeq != 1 || stats.LastSeq != 100 {
		t.Fatalf("seq bounds %d..%d, want 1..100", stats.FirstSeq, stats.LastSeq)
	}
}

func TestAppendBatchMatchesAppend(t *testing.T) {
	evs := testEvents(64)
	dirA, dirB := t.TempDir(), t.TempDir()

	la, _ := Open(Options{Dir: dirA})
	for _, ev := range evs {
		la.Append(ev)
	}
	la.Close()

	lb, _ := Open(Options{Dir: dirB})
	if last, err := lb.AppendBatch(evs); err != nil || last != 64 {
		t.Fatalf("AppendBatch: last=%d err=%v", last, err)
	}
	lb.Close()

	ba, _ := os.ReadFile(filepath.Join(dirA, segName(1)))
	bb, _ := os.ReadFile(filepath.Join(dirB, segName(1)))
	if !bytes.Equal(ba, bb) {
		t.Fatalf("batch and single appends produced different bytes (%d vs %d)", len(ba), len(bb))
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, RetainBytes: 16 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	evs := testEvents(400)
	for _, ev := range evs {
		if _, err := l.Append(ev); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Rotated == 0 {
		t.Fatalf("no rotations at 4KiB segments over %d events", len(evs))
	}
	if st.Retired == 0 {
		t.Fatalf("no segments retired at 16KiB budget (stats %+v)", st)
	}
	if st.Bytes > 16<<10+4<<10 {
		t.Fatalf("retained %d bytes, budget 16KiB (+1 active segment)", st.Bytes)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Retention drops history oldest-first: the surviving suffix must be
	// dense and end at the last append.
	got, stats := readAll(t, dir)
	if stats.LastSeq != 400 {
		t.Fatalf("LastSeq %d, want 400", stats.LastSeq)
	}
	if stats.FirstSeq <= 1 {
		t.Fatalf("FirstSeq %d: retention dropped nothing?", stats.FirstSeq)
	}
	if uint64(len(got)) != stats.LastSeq-stats.FirstSeq+1 {
		t.Fatalf("suffix not dense: %d records over %d..%d", len(got), stats.FirstSeq, stats.LastSeq)
	}
	if stats.Quarantined != 0 {
		t.Fatalf("retention must not look like loss: %+v", stats)
	}
}

func TestAgeRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir, SegmentAge: time.Millisecond})
	l.Append(testEvents(1)[0])
	time.Sleep(5 * time.Millisecond)
	l.Append(testEvents(1)[0])
	if l.Stats().Rotated != 1 {
		t.Fatalf("aged segment not rotated: %+v", l.Stats())
	}
	l.Close()
}

func TestFsyncPolicies(t *testing.T) {
	evs := testEvents(50)
	for _, tc := range []struct {
		fsync Fsync
		check func(t *testing.T, st Stats)
	}{
		{FsyncNone, func(t *testing.T, st Stats) {
			// Only the Close barrier syncs.
			if st.Synced != 1 {
				t.Fatalf("FsyncNone synced %d times mid-run, want only the close sync", st.Synced)
			}
		}},
		{FsyncEvery, func(t *testing.T, st Stats) {
			if st.Synced < 50 {
				t.Fatalf("FsyncEvery synced %d times for 50 appends", st.Synced)
			}
		}},
		{FsyncInterval, func(t *testing.T, st Stats) {
			if st.Synced == 0 || st.Synced > 51 {
				t.Fatalf("FsyncInterval synced %d times", st.Synced)
			}
		}},
	} {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Fsync: tc.fsync, FsyncInterval: time.Nanosecond})
		if err != nil {
			t.Fatalf("Open(%v): %v", tc.fsync, err)
		}
		for _, ev := range evs {
			if _, err := l.Append(ev); err != nil {
				t.Fatalf("Append(%v): %v", tc.fsync, err)
			}
		}
		l.Close()
		if tc.fsync != FsyncInterval {
			tc.check(t, l.Stats())
		}
		if got, _ := readAll(t, dir); len(got) != 50 {
			t.Fatalf("fsync=%v: recovered %d/50", tc.fsync, len(got))
		}
	}
}

func TestParseFsync(t *testing.T) {
	for name, want := range map[string]Fsync{"none": FsyncNone, "interval": FsyncInterval, "every": FsyncEvery} {
		got, err := ParseFsync(name)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatalf("ParseFsync accepted garbage")
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	evs := testEvents(30)

	l, _ := Open(Options{Dir: dir})
	for _, ev := range evs[:10] {
		l.Append(ev)
	}
	l.Close()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.LastSeq() != 10 {
		t.Fatalf("reopened LastSeq %d, want 10", l2.LastSeq())
	}
	for _, ev := range evs[10:] {
		l2.Append(ev)
	}
	l2.Close()

	got, stats := readAll(t, dir)
	if len(got) != 30 || stats.Quarantined != 0 {
		t.Fatalf("recovered %d records, quarantined %d; want 30, 0", len(got), stats.Quarantined)
	}
	// Reopen starts a fresh segment: the old tail is never appended to.
	if stats.Segments != 2 {
		t.Fatalf("segments %d, want 2 (reopen must start fresh)", stats.Segments)
	}
}

func TestRecoveryTruncatedTail(t *testing.T) {
	for cut := 1; cut <= 25; cut += 6 {
		dir := t.TempDir()
		l, _ := Open(Options{Dir: dir})
		for _, ev := range testEvents(20) {
			l.Append(ev)
		}
		l.Close()

		// Tear the final record: drop `cut` bytes off the segment.
		path := filepath.Join(dir, segName(1))
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b[:len(b)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		got, stats := readAll(t, dir)
		if len(got) != 19 {
			t.Fatalf("cut=%d: recovered %d records, want 19", cut, len(got))
		}
		if !stats.TornTail || stats.Quarantined != 1 {
			t.Fatalf("cut=%d: torn tail not quarantined: %+v", cut, stats)
		}
		if stats.Records+stats.Quarantined != 20 {
			t.Fatalf("cut=%d: recovered+quarantined = %d+%d, want 20 (written)", cut, stats.Records, stats.Quarantined)
		}
	}
}

func TestRecoveryCorruptMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	for _, ev := range testEvents(20) {
		l.Append(ev)
	}
	l.Close()

	// Flip one byte inside record 10's body: its CRC fails, the reader
	// resyncs at record 11, and the loss shows up as a sequence gap.
	path := filepath.Join(dir, segName(1))
	b, _ := os.ReadFile(path)
	recLen := len(b) / 20 // records here are near-identical length; land inside the middle
	b[recLen*9+recLen/2] ^= 0xff
	os.WriteFile(path, b, 0o644)

	got, stats := readAll(t, dir)
	if stats.Quarantined != 1 {
		t.Fatalf("corrupt record not quarantined exactly once: %+v", stats)
	}
	if stats.Records+stats.Quarantined != 20 {
		t.Fatalf("recovered+quarantined = %d+%d, want 20", stats.Records, stats.Quarantined)
	}
	if stats.BytesSkipped == 0 || stats.TornTail {
		t.Fatalf("mid-record corruption misattributed: %+v", stats)
	}
	if len(got) != 19 {
		t.Fatalf("recovered %d records, want 19", len(got))
	}
}

func TestRecoveryGarbageBetweenRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	for _, ev := range testEvents(5) {
		l.Append(ev)
	}
	l.Close()

	// Splice garbage (including a fake magic prefix) between records:
	// the reader must skip it without losing either neighbor.
	path := filepath.Join(dir, segName(1))
	b, _ := os.ReadFile(path)
	var out []byte
	out = append(out, b...)
	junk := []byte{recMagic0, recMagic1, 'X', 0xde, 0xad, 0xbe, 0xef, recMagic0}
	out = append(out[:len(b)/2:len(b)/2], append(junk, b[len(b)/2:]...)...)
	os.WriteFile(path, out, 0o644)

	got, stats := readAll(t, dir)
	// The splice point may also land inside a record, tearing it; what
	// is never acceptable is silent loss or a panic.
	if stats.Records+stats.Quarantined != 5 {
		t.Fatalf("recovered+quarantined = %d+%d, want 5", stats.Records, stats.Quarantined)
	}
	if len(got) == 0 || stats.BytesSkipped == 0 {
		t.Fatalf("garbage splice handled wrong: %d records, %+v", len(got), stats)
	}
}

func TestCursorPersistsAtomically(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir, CursorEvery: 1})
	for _, ev := range testEvents(10) {
		seq, _ := l.Append(ev)
		l.MarkProcessed(seq)
	}
	l.Close()

	l2, _ := Open(Options{Dir: dir})
	if l2.Cursor() != 10 {
		t.Fatalf("cursor %d after restart, want 10", l2.Cursor())
	}
	l2.Close()

	if err := RemoveCursor(dir); err != nil {
		t.Fatalf("RemoveCursor: %v", err)
	}
	l3, _ := Open(Options{Dir: dir})
	if l3.Cursor() != 0 {
		t.Fatalf("cursor %d after removal, want 0", l3.Cursor())
	}
	l3.Close()
}

func TestCursorClampedToDurableLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir, CursorEvery: 1})
	for _, ev := range testEvents(5) {
		seq, _ := l.Append(ev)
		l.MarkProcessed(seq)
	}
	l.Close()

	// Tear the last record after its processing was already recorded:
	// the cursor now points past the durable log and must clamp.
	path := filepath.Join(dir, segName(1))
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-10], 0o644)

	l2, _ := Open(Options{Dir: dir})
	if l2.Cursor() != 4 || l2.LastSeq() != 4 {
		t.Fatalf("cursor/lastSeq = %d/%d after torn tail, want 4/4", l2.Cursor(), l2.LastSeq())
	}
	l2.Close()
}

// TestSegmentIsAgentFrameStream pins the format-reuse claim: a WAL
// segment is a valid PR 3 wire-frame stream, decodable by the agent's
// own frame reader.
func TestSegmentIsAgentFrameStream(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	evs := testEvents(5)
	for _, ev := range evs {
		l.Append(ev)
	}
	l.Close()

	f, err := os.Open(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for i := range evs {
		got, err := agent.ReadEvent(br)
		if err != nil {
			t.Fatalf("agent.ReadEvent record %d: %v", i, err)
		}
		if got.ConnID != evs[i].ConnID || !got.Time.Equal(evs[i].Time) {
			t.Fatalf("record %d decoded wrong via agent reader: %+v", i, got)
		}
	}
}

func TestEmptyLog(t *testing.T) {
	dir := t.TempDir()
	got, stats := readAll(t, dir)
	if len(got) != 0 || stats.Quarantined != 0 || stats.Segments != 0 {
		t.Fatalf("empty dir scan: %d records, %+v", len(got), stats)
	}
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	if l.LastSeq() != 0 {
		t.Fatalf("LastSeq %d on empty log", l.LastSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close empty: %v", err)
	}
}

// TestReopenAfterTornFirstAppend reopens a log whose newest segment
// holds zero intact records — a crash tore the very first append after
// a rotation (or the first append ever). Open must drop the recordless
// segment so the next append can recreate its name; before the fix the
// O_EXCL create collided with the torn file and every Append failed
// with EEXIST forever.
func TestReopenAfterTornFirstAppend(t *testing.T) {
	t.Run("after-rotation", func(t *testing.T) {
		dir := t.TempDir()
		evs := testEvents(12)
		l, _ := Open(Options{Dir: dir})
		for _, ev := range evs[:10] {
			l.Append(ev)
		}
		l.Close()
		// Simulate the crash: the writer rotated to wal-11 and died with
		// only a torn partial of record 11 on disk.
		torn := filepath.Join(dir, segName(11))
		if err := os.WriteFile(torn, []byte{recMagic0, recMagic1, recKind, 0xde, 0xad}, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("reopen over torn segment: %v", err)
		}
		if l2.LastSeq() != 10 {
			t.Fatalf("reopened LastSeq %d, want 10", l2.LastSeq())
		}
		for i, ev := range evs[10:] {
			if _, err := l2.Append(ev); err != nil {
				t.Fatalf("Append %d after reopen: %v", i, err)
			}
		}
		l2.Close()

		got, stats := readAll(t, dir)
		if len(got) != 12 || stats.Quarantined != 0 || stats.Duplicates != 0 {
			t.Fatalf("recovered %d records (quarantined %d, dups %d), want 12 clean",
				len(got), stats.Quarantined, stats.Duplicates)
		}
		if stats.FirstSeq != 1 || stats.LastSeq != 12 {
			t.Fatalf("sequence range %d..%d, want dense 1..12", stats.FirstSeq, stats.LastSeq)
		}
	})
	t.Run("first-ever-append", func(t *testing.T) {
		dir := t.TempDir()
		torn := filepath.Join(dir, segName(1))
		if err := os.WriteFile(torn, []byte{recMagic0, recMagic1}, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("open over torn first segment: %v", err)
		}
		if l.LastSeq() != 0 {
			t.Fatalf("LastSeq %d, want 0", l.LastSeq())
		}
		ev := testEvents(1)[0]
		if seq, err := l.Append(ev); err != nil || seq != 1 {
			t.Fatalf("Append after reopen: seq %d, err %v (want 1, nil)", seq, err)
		}
		l.Close()
		got, stats := readAll(t, dir)
		if len(got) != 1 || stats.Quarantined != 0 {
			t.Fatalf("recovered %d records (quarantined %d), want 1 clean", len(got), stats.Quarantined)
		}
	})
}

// TestAppendRejectsOversizedRecord: the reader skips any length prefix
// over MaxRecord, so an oversized body must be refused at append time —
// acking it would make it durable but guaranteed-quarantined.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	evs := testEvents(3)
	if _, err := l.Append(evs[0]); err != nil {
		t.Fatal(err)
	}
	huge := evs[1]
	huge.ErrorText = string(bytes.Repeat([]byte{'x'}, MaxRecord))
	if _, err := l.Append(huge); err == nil {
		t.Fatal("Append acked a record the reader is guaranteed to quarantine")
	}
	if l.LastSeq() != 1 {
		t.Fatalf("LastSeq %d after rejected append, want 1", l.LastSeq())
	}
	// A batch containing one oversized event is refused whole, before
	// any byte of it is written.
	if _, err := l.AppendBatch([]trace.Event{evs[2], huge}); err == nil {
		t.Fatal("AppendBatch acked a batch containing an unrecoverable record")
	}
	if seq, err := l.Append(evs[2]); err != nil || seq != 2 {
		t.Fatalf("Append after rejection: seq %d, err %v (want 2, nil)", seq, err)
	}
	l.Close()
	got, stats := readAll(t, dir)
	if len(got) != 2 || stats.Quarantined != 0 || stats.LastSeq != 2 {
		t.Fatalf("recovered %d records (quarantined %d, last %d), want 2 clean dense",
			len(got), stats.Quarantined, stats.LastSeq)
	}
}
