// Package wal is GRETEL's durable event plane: a segmented, append-only
// write-ahead log for captured trace events, so the evidence the
// analyzer passively observes survives the crashes it exists to
// explain. Everything else in the analyzer is rebuildable state — the
// WAL is the one thing that must not die with the process.
//
// Records reuse the PR 3 wire-frame format (internal/agent frame.go,
// wire format v2): two-byte magic, kind tag, big-endian sequence
// number, length prefix, and a CRC32 (IEEE) over header+body, followed
// by the JSON-encoded event. A WAL segment is therefore exactly a
// captured frame stream on disk, and the reader recovers it the same
// way the transport receiver resynchronizes on the wire: corruption is
// skipped and counted, never trusted and never fatal.
//
//	offset size
//	0      2    magic 0xF5 0x9E
//	2      1    kind 'E'
//	3      8    record sequence number, big-endian (1-based, dense)
//	11     4    body length, big-endian
//	15     4    CRC32 (IEEE) over bytes [2,15) and the body
//	19     n    JSON body (trace.Event)
//
// Segments are named wal-<first-seq>.seg and rotate on a size or age
// bound; retention drops whole closed segments oldest-first to hold a
// byte budget. Appends are flushed to the OS on every call — a
// kill -9 after Append returns loses nothing — while fsync (surviving
// machine crashes) is policy-controlled: none, interval, or every.
//
// The recovery invariant, proven by the crash soak: for every record
// handed to Append, recovery either returns it intact (recovered) or
// counts it as lost (quarantined) — recovered + quarantined == written.
// Silent loss is the only failure mode the log does not permit.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

// WAL telemetry: append/rotation/retention on the write side,
// recovered/quarantined on the read side (the durable twin of the
// transport's delivered/missed accounting). The wal.append histogram
// times Append/AppendBatch calls — the cost the ingest path pays for
// durability — and wal.replay times full recovery scans.
var (
	mAppended     = telemetry.GetCounter("wal.appended")
	mAppendErrors = telemetry.GetCounter("wal.append_errors")
	mSynced       = telemetry.GetCounter("wal.synced")
	mRotated      = telemetry.GetCounter("wal.rotated")
	mRetired      = telemetry.GetCounter("wal.segments_retired")
	mRecovered    = telemetry.GetCounter("wal.recovered")
	mQuarantined  = telemetry.GetCounter("wal.quarantined")
	mBytesSkipped = telemetry.GetCounter("wal.bytes_skipped")
	mCursorSaves  = telemetry.GetCounter("wal.cursor_saves")
	hAppend       = telemetry.GetHistogram("wal.append")
	hReplay       = telemetry.GetHistogram("wal.replay")
)

// Record layout constants — byte-identical to the agent wire format so
// a WAL segment is a valid frame stream (tested against agent.ReadEvent).
const (
	recMagic0 = 0xF5
	recMagic1 = 0x9E
	recKind   = 'E'
	recHdrLen = 19
	// MaxRecord bounds one encoded record, defending the reader against
	// corrupt length prefixes (same bound as agent.MaxFrame).
	MaxRecord = 1 << 22
)

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// cursorFile holds the durable consumer cursor: the highest record
	// sequence the analyzer has fully processed. Written atomically
	// (tmp + rename) so a crash never leaves a torn cursor.
	cursorFile = "CURSOR"
)

// Fsync selects the durability policy for appends.
type Fsync uint8

const (
	// FsyncNone never calls fsync: appends are flushed to the OS (they
	// survive a process kill) but a machine crash can lose the page
	// cache. The fastest policy.
	FsyncNone Fsync = iota
	// FsyncInterval calls fsync at most once per Options.FsyncInterval,
	// bounding machine-crash loss to that window.
	FsyncInterval
	// FsyncEvery calls fsync on every Append/AppendBatch: nothing acked
	// is ever lost, at one disk flush per call.
	FsyncEvery
)

// String implements fmt.Stringer.
func (f Fsync) String() string {
	switch f {
	case FsyncNone:
		return "none"
	case FsyncInterval:
		return "interval"
	case FsyncEvery:
		return "every"
	default:
		return fmt.Sprintf("fsync(%d)", uint8(f))
	}
}

// ParseFsync resolves a policy name ("none", "interval", "every").
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "none":
		return FsyncNone, nil
	case "interval":
		return FsyncInterval, nil
	case "every":
		return FsyncEvery, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want none, interval, or every)", s)
}

// Options tunes the log. The zero value (plus Dir) is production-ready.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// SegmentBytes rotates the active segment once it would exceed this
	// size (default 8 MiB).
	SegmentBytes int64
	// SegmentAge rotates a non-empty active segment older than this,
	// so retention can expire quiet periods too (0 disables).
	SegmentAge time.Duration
	// Fsync is the durability policy (default FsyncInterval).
	Fsync Fsync
	// FsyncInterval is the FsyncInterval policy's flush period
	// (default 100ms).
	FsyncInterval time.Duration
	// RetainBytes drops closed segments oldest-first once the log
	// exceeds this budget (default 1 GiB; negative retains everything).
	RetainBytes int64
	// CursorEvery persists the consumer cursor after this many
	// MarkProcessed advances (default 4096; it is always persisted on
	// Sync and Close).
	CursorEvery uint64
	// WrapWriter, when set, wraps the segment file before the buffered
	// writer — the chaos tests inject torn writes, short writes, and
	// bit flips here. Sync still reaches the underlying file.
	WrapWriter func(io.Writer) io.Writer
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.RetainBytes == 0 {
		o.RetainBytes = 1 << 30
	}
	if o.CursorEvery == 0 {
		o.CursorEvery = 4096
	}
}

// Stats is a point-in-time view of the log's write-side accounting.
type Stats struct {
	// Appended counts records acked by Append/AppendBatch this session.
	Appended uint64
	// Synced counts fsync calls; Rotated counts segment rotations;
	// Retired counts whole segments dropped by retention.
	Synced, Rotated, Retired uint64
	// Segments is the current on-disk segment count (active included);
	// Bytes is their total size.
	Segments int
	Bytes    int64
}

// segInfo is one on-disk segment the log tracks for retention.
type segInfo struct {
	path     string
	firstSeq uint64
	bytes    int64
}

// Log is the append side. All methods are safe for a single writer
// goroutine (the analyzer's ingest goroutine); Append never reorders —
// record sequence numbers are dense and monotonically increasing.
type Log struct {
	opts Options

	segs     []segInfo // closed segments, oldest first
	f        *os.File
	bw       *bufio.Writer
	active   segInfo
	openedAt time.Time
	lastSync time.Time

	nextSeq uint64 // last assigned record sequence
	scratch []byte

	cursor          uint64 // highest record seq marked processed
	cursorPersisted uint64

	stats Stats
}

// segName renders the canonical segment file name for a first sequence.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

// parseSegName extracts the first sequence from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segments sorted by first
// sequence (which is also creation order).
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, e.Name()), firstSeq: first, bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// Open opens (or creates) the log at opts.Dir for appending. Existing
// segments are preserved: the writer scans backwards for the last
// intact record and continues the sequence after it, always starting a
// fresh segment — it never appends to a file a crash may have torn.
// Trailing segments holding no intact record at all (a crash tore
// their first append) are removed so the next segment's name cannot
// collide with them.
func Open(opts Options) (*Log, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", opts.Dir, err)
	}
	l := &Log{opts: opts}
	// Resume the sequence after the last intact record on disk.
	resume := -1 // index of the newest segment holding an intact record
	for i := len(segs) - 1; i >= 0; i-- {
		last, ok, err := lastGoodSeq(segs[i].path)
		if err != nil {
			return nil, err
		}
		if ok {
			l.nextSeq = last
			resume = i
			break
		}
	}
	// Segments newer than the resume point hold no intact record: a
	// crash tore their very first append (or created them and died
	// before any write). They must go, or openSegment's next file name
	// — segName(nextSeq+1), exactly the torn segment's name — would
	// collide on O_EXCL and fail every future append. Recovery returns
	// nothing from them (any scan before this Open has counted their
	// ink as a torn tail), and removal makes the torn sequence get
	// reused by the next append exactly as it is after a mid-segment
	// tear, keeping sequences dense.
	for _, s := range segs[resume+1:] {
		if err := os.Remove(s.path); err != nil {
			return nil, fmt.Errorf("wal: removing recordless segment %s: %w", s.path, err)
		}
		telemetry.LogFirst("wal.recordless", "wal: dropped recordless torn segment %s (%d bytes)", s.path, s.bytes)
	}
	l.segs = segs[:resume+1]
	l.stats.Segments = len(l.segs)
	for _, s := range l.segs {
		l.stats.Bytes += s.bytes
	}
	l.cursor = loadCursor(opts.Dir)
	if l.cursor > l.nextSeq {
		// The cursor can run ahead of the durable log when the final
		// record was torn after being processed; clamp so MarkProcessed
		// stays monotonic against replayed sequences.
		l.cursor = l.nextSeq
	}
	l.cursorPersisted = l.cursor
	return l, nil
}

// lastGoodSeq scans one segment for its last CRC-intact record.
func lastGoodSeq(path string) (uint64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var last uint64
	found := false
	for {
		seq, _, _, err := readRecord(br, nil)
		if err != nil {
			break
		}
		last, found = seq, true
	}
	return last, found, nil
}

// LastSeq returns the highest record sequence acked so far.
func (l *Log) LastSeq() uint64 { return l.nextSeq }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Stats snapshots the write-side accounting.
func (l *Log) Stats() Stats { return l.stats }

// Cursor returns the durable consumer cursor loaded at Open and
// advanced by MarkProcessed: the highest record sequence the consumer
// has fully processed.
func (l *Log) Cursor() uint64 { return l.cursor }

// encodeRecord appends one encoded event record to buf and returns it.
func encodeRecord(buf []byte, seq uint64, body []byte) []byte {
	return EncodeRecord(buf, recKind, seq, body)
}

// Append encodes and appends one event, returning its record sequence.
// The record is flushed to the OS before Append returns (a process kill
// after the ack loses nothing); fsync follows the configured policy.
func (l *Log) Append(ev trace.Event) (uint64, error) {
	return l.AppendBatch([]trace.Event{ev})
}

// AppendBatch appends a batch of events as consecutive records with one
// flush (and at most one fsync), returning the last record sequence.
// On error the batch may be partially durable; the sequence reflects
// only what was acked, and recovery quarantines any torn remainder.
func (l *Log) AppendBatch(evs []trace.Event) (uint64, error) {
	if len(evs) == 0 {
		return l.nextSeq, nil
	}
	span := hAppend.Start()
	defer span.End()
	l.scratch = l.scratch[:0]
	for i := range evs {
		body, err := json.Marshal(&evs[i])
		if err != nil {
			mAppendErrors.Inc()
			return l.nextSeq, fmt.Errorf("wal: encoding event: %w", err)
		}
		if len(body) > MaxRecord {
			// The reader unconditionally skips any length prefix over
			// MaxRecord, so acking this record would make it durable but
			// unrecoverable — refuse the whole batch before any byte of
			// it is written.
			mAppendErrors.Inc()
			return l.nextSeq, fmt.Errorf("wal: encoded event is %d bytes, over the %d-byte record bound", len(body), MaxRecord)
		}
		l.scratch = encodeRecord(l.scratch, l.nextSeq+uint64(i)+1, body)
	}
	if err := l.rotateIfDue(int64(len(l.scratch))); err != nil {
		mAppendErrors.Inc()
		return l.nextSeq, err
	}
	if _, err := l.bw.Write(l.scratch); err != nil {
		mAppendErrors.Inc()
		return l.nextSeq, fmt.Errorf("wal: appending: %w", err)
	}
	if err := l.bw.Flush(); err != nil {
		mAppendErrors.Inc()
		return l.nextSeq, fmt.Errorf("wal: flushing: %w", err)
	}
	l.nextSeq += uint64(len(evs))
	l.active.bytes += int64(len(l.scratch))
	l.stats.Bytes += int64(len(l.scratch))
	l.stats.Appended += uint64(len(evs))
	mAppended.Add(uint64(len(evs)))
	switch l.opts.Fsync {
	case FsyncEvery:
		return l.nextSeq, l.fsync()
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.FsyncInterval {
			return l.nextSeq, l.fsync()
		}
	}
	return l.nextSeq, nil
}

// rotateIfDue opens the first segment lazily and rotates when the
// active segment would exceed the size bound or has exceeded the age
// bound. need is the byte size of the write about to happen.
func (l *Log) rotateIfDue(need int64) error {
	if l.f != nil {
		over := l.active.bytes > 0 && l.active.bytes+need > l.opts.SegmentBytes
		aged := l.opts.SegmentAge > 0 && l.active.bytes > 0 && time.Since(l.openedAt) >= l.opts.SegmentAge
		if !over && !aged {
			return nil
		}
		if err := l.closeActive(); err != nil {
			return err
		}
		l.stats.Rotated++
		mRotated.Inc()
		l.retain()
	}
	return l.openSegment()
}

// openSegment creates the next active segment, named for the first
// sequence it will hold.
func (l *Log) openSegment() error {
	name := segName(l.nextSeq + 1)
	path := filepath.Join(l.opts.Dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", path, err)
	}
	l.f = f
	var w io.Writer = f
	if l.opts.WrapWriter != nil {
		w = l.opts.WrapWriter(f)
	}
	l.bw = bufio.NewWriterSize(w, 64<<10)
	l.active = segInfo{path: path, firstSeq: l.nextSeq + 1}
	l.openedAt = time.Now()
	l.stats.Segments++
	return nil
}

// closeActive flushes, fsyncs, and closes the active segment, moving it
// to the closed list. Closed segments are always fsynced — whatever the
// append policy, a rotated-away segment is finished evidence.
func (l *Log) closeActive() error {
	if l.f == nil {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing %s: %w", l.active.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", l.active.path, err)
	}
	l.stats.Synced++
	mSynced.Inc()
	l.lastSync = time.Now()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing %s: %w", l.active.path, err)
	}
	l.segs = append(l.segs, l.active)
	l.f, l.bw = nil, nil
	return nil
}

// retain enforces the byte budget by unlinking closed segments
// oldest-first. The active segment is never touched: retention can
// only drop finished history, not in-flight capture.
func (l *Log) retain() {
	if l.opts.RetainBytes < 0 {
		return
	}
	for len(l.segs) > 0 && l.stats.Bytes > l.opts.RetainBytes {
		old := l.segs[0]
		if err := os.Remove(old.path); err != nil {
			telemetry.LogFirst("wal.retain", "wal: dropping %s: %v", old.path, err)
			return
		}
		l.segs = l.segs[1:]
		l.stats.Bytes -= old.bytes
		l.stats.Segments--
		l.stats.Retired++
		mRetired.Inc()
	}
}

// fsync forces the active segment to disk.
func (l *Log) fsync() error {
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		mAppendErrors.Inc()
		return fmt.Errorf("wal: fsync %s: %w", l.active.path, err)
	}
	l.stats.Synced++
	mSynced.Inc()
	l.lastSync = time.Now()
	return nil
}

// Sync flushes and fsyncs the active segment and persists the cursor —
// a durability barrier callers can place wherever they need one.
func (l *Log) Sync() error {
	if l.bw != nil {
		if err := l.bw.Flush(); err != nil {
			return fmt.Errorf("wal: flushing: %w", err)
		}
	}
	if err := l.fsync(); err != nil {
		return err
	}
	return l.saveCursor()
}

// MarkProcessed advances the durable consumer cursor: every record at
// or below seq has been fully processed by the consumer, so a restart
// may treat them as already-reported history. The cursor is persisted
// every Options.CursorEvery advances and on Sync/Close; report
// emission across a crash boundary is therefore at-least-once, while
// the log itself stays exactly-once.
func (l *Log) MarkProcessed(seq uint64) {
	if seq <= l.cursor {
		return
	}
	l.cursor = seq
	if l.cursor-l.cursorPersisted >= l.opts.CursorEvery {
		if err := l.saveCursor(); err != nil {
			telemetry.LogFirst("wal.cursor", "wal: persisting cursor: %v", err)
		}
	}
}

// saveCursor writes the cursor atomically (tmp + rename).
func (l *Log) saveCursor() error {
	if l.cursor == l.cursorPersisted {
		return nil
	}
	if err := saveCursor(l.opts.Dir, l.cursor); err != nil {
		return err
	}
	l.cursorPersisted = l.cursor
	mCursorSaves.Inc()
	return nil
}

// Close flushes, fsyncs, persists the cursor, and closes the log.
func (l *Log) Close() error {
	var firstErr error
	if err := l.saveCursor(); err != nil {
		firstErr = err
	}
	if err := l.closeActive(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// loadCursor reads the persisted consumer cursor (0 when absent or
// unreadable — recovery then replays the whole retained log, which is
// always safe).
func loadCursor(dir string) uint64 {
	b, err := os.ReadFile(filepath.Join(dir, cursorFile))
	if err != nil {
		return 0
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// saveCursor atomically persists a consumer cursor value for dir.
func saveCursor(dir string, seq uint64) error {
	path := filepath.Join(dir, cursorFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(seq, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("wal: writing cursor: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: committing cursor: %w", err)
	}
	return nil
}

// LoadCursor reads dir's persisted consumer cursor without opening the
// log — boot recovery decides report suppression from it before the
// writer exists (0 when absent: replay everything, report everything).
func LoadCursor(dir string) uint64 { return loadCursor(dir) }

// RemoveCursor deletes the persisted cursor, turning the next boot
// replay into a full from-scratch reanalysis. Missing cursors are not
// an error.
func RemoveCursor(dir string) error {
	err := os.Remove(filepath.Join(dir, cursorFile))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
