package wal

import (
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"gretel/internal/trace"
)

// FuzzSegmentRecovery throws arbitrary bytes at the recovery reader as
// a segment file. The reader's contract under any input: never panic,
// never loop, never return a record whose CRC did not pass, and keep
// the accounting coherent (every byte is either part of a returned
// record or counted as skipped).
func FuzzSegmentRecovery(f *testing.F) {
	// Seed corpus: a healthy segment, truncations, and spliced garbage.
	var healthy []byte
	for i := 1; i <= 4; i++ {
		body, _ := json.Marshal(&trace.Event{Seq: uint64(i), ConnID: uint64(i), Status: 200})
		healthy = encodeRecord(healthy, uint64(i), body)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-7])
	f.Add(append([]byte{recMagic0, recMagic1, recKind, 0xff}, healthy...))
	f.Add([]byte{})
	f.Add([]byte{recMagic0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(dir)
		if err != nil {
			t.Fatalf("OpenReader: %v", err)
		}
		defer r.Close()

		var n uint64
		lastSeq := uint64(0)
		for {
			seq, _, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("Next returned non-EOF error: %v", err)
			}
			n++
			if n > uint64(len(data)) {
				t.Fatalf("more records than input bytes: the scan is not advancing")
			}
			if seq <= lastSeq {
				t.Fatalf("records out of order: %d after %d", seq, lastSeq)
			}
			lastSeq = seq
		}
		stats := r.Stats()
		if stats.Records != n {
			t.Fatalf("stats.Records=%d but Next returned %d", stats.Records, n)
		}
		if stats.BytesSkipped > uint64(len(data)) {
			t.Fatalf("skipped %d bytes of a %d-byte input", stats.BytesSkipped, len(data))
		}
	})
}

// FuzzRecordCRC cross-checks the reader against a brute-force scan:
// any record the reader returns must correspond to a byte range whose
// stored CRC verifies. Mutating one byte of a healthy segment must
// never yield more intact records than were written.
func FuzzRecordCRC(f *testing.F) {
	var healthy []byte
	for i := 1; i <= 3; i++ {
		body, _ := json.Marshal(&trace.Event{Seq: uint64(i), ConnID: uint64(i)})
		healthy = encodeRecord(healthy, uint64(i), body)
	}
	f.Add(uint16(0), byte(0xff))
	f.Add(uint16(20), byte(0x01))
	f.Fuzz(func(t *testing.T, pos uint16, flip byte) {
		data := append([]byte(nil), healthy...)
		if flip != 0 {
			data[int(pos)%len(data)] ^= flip
		}
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644)
		r, err := OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		var n int
		for {
			seq, _, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			// Re-verify the returned record against the raw bytes: its
			// encoded form must exist in data with a passing CRC.
			if !recordVerifies(data, seq) {
				t.Fatalf("reader returned seq %d with no CRC-valid encoding in the input", seq)
			}
			n++
		}
		if n > 3 {
			t.Fatalf("one byte flip produced %d records from 3", n)
		}
	})
}

// recordVerifies brute-force scans data for a CRC-valid record with the
// given sequence — the fuzz oracle, independent of the reader's logic.
func recordVerifies(data []byte, seq uint64) bool {
	for i := 0; i+recHdrLen <= len(data); i++ {
		if data[i] != recMagic0 || data[i+1] != recMagic1 || data[i+2] != recKind {
			continue
		}
		var s uint64
		for _, b := range data[i+3 : i+11] {
			s = s<<8 | uint64(b)
		}
		if s != seq {
			continue
		}
		n := int(uint32(data[i+11])<<24 | uint32(data[i+12])<<16 | uint32(data[i+13])<<8 | uint32(data[i+14]))
		if i+recHdrLen+n > len(data) {
			continue
		}
		want := uint32(data[i+15])<<24 | uint32(data[i+16])<<16 | uint32(data[i+17])<<8 | uint32(data[i+18])
		crc := crc32.ChecksumIEEE(data[i+2 : i+15])
		crc = crc32.Update(crc, crc32.IEEETable, data[i+recHdrLen:i+recHdrLen+n])
		if crc == want {
			return true
		}
	}
	return false
}
