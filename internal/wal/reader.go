// Recovery reader: scans a WAL directory the way the transport
// receiver scans a damaged wire — skip-and-count, never abort. Torn
// writes, truncated tails, and corrupt records are quarantined
// (counted, with their bytes skipped) and every record whose CRC
// passes is returned, so recovery upholds the log's one invariant:
// recovered + quarantined == written.

package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"

	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

// ReadStats is the recovery scan's accounting.
type ReadStats struct {
	// Segments is the number of segment files in the scan.
	Segments int
	// Records counts CRC-intact records returned.
	Records uint64
	// Quarantined counts records lost to corruption: sequence gaps
	// between intact records, undecodable bodies, and a torn tail.
	// Trailing garbage counts as (at least) one record — a torn write
	// can only lose the record it tore.
	Quarantined uint64
	// Duplicates counts intact records skipped because their sequence
	// was already seen (a resumed writer re-appending a torn record's
	// payload can legitimately produce these).
	Duplicates uint64
	// BytesSkipped is the total bytes discarded while resynchronizing.
	BytesSkipped uint64
	// TornTail reports whether the log ended in unparseable bytes —
	// the signature of a crash mid-append.
	TornTail bool
	// FirstSeq/LastSeq bound the intact records returned (0,0 when the
	// log is empty). FirstSeq > 1 means retention has dropped history.
	FirstSeq, LastSeq uint64
}

// Reader iterates every intact record in a WAL directory in sequence
// order. It reads a static snapshot of the segment list taken at open;
// a concurrently appending writer is safe but its new records are not
// seen.
type Reader struct {
	segs []segInfo
	cur  int // index into segs of the open segment (len(segs) = done)

	f  *os.File
	br *bufio.Reader

	buf         []byte
	lastSeq     uint64
	tailSkipped int64 // bytes skipped since the last intact record
	stats       ReadStats
	span        telemetry.Span
	done        bool
}

// OpenReader opens a recovery scan over the log directory. A directory
// that does not exist yet is an empty log, not an error — first boot
// recovers nothing.
func OpenReader(dir string) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	r := &Reader{segs: segs, span: hReplay.Start()}
	r.stats.Segments = len(segs)
	return r, nil
}

// Progress reports the 1-based index of the segment being scanned and
// the total segment count — the "wal replay <segment>/<total>" the
// readiness endpoint serves during boot recovery.
func (r *Reader) Progress() (segment, total int) {
	seg := r.cur + 1
	if seg > len(r.segs) {
		seg = len(r.segs)
	}
	return seg, len(r.segs)
}

// Stats snapshots the scan accounting. Final (including torn-tail
// attribution) once Next has returned io.EOF.
func (r *Reader) Stats() ReadStats { return r.stats }

// Next returns the next intact record in sequence order, or io.EOF at
// the end of the log. Corruption never surfaces as an error: damaged
// bytes are skipped and quarantined, and the scan continues.
func (r *Reader) Next() (seq uint64, ev trace.Event, err error) {
	for {
		if r.br == nil {
			if r.cur >= len(r.segs) {
				r.finish()
				return 0, trace.Event{}, io.EOF
			}
			f, err := os.Open(r.segs[r.cur].path)
			if err != nil {
				// An unreadable segment is quarantined wholesale: the gap
				// accounting on the next segment's records counts what it
				// held; here we only note the skipped bytes.
				r.stats.BytesSkipped += uint64(r.segs[r.cur].bytes)
				r.tailSkipped += r.segs[r.cur].bytes
				mBytesSkipped.Add(uint64(r.segs[r.cur].bytes))
				r.cur++
				continue
			}
			r.f = f
			r.br = bufio.NewReaderSize(f, 256<<10)
		}
		recSeq, body, skipped, rerr := readRecord(r.br, r.buf)
		if skipped > 0 {
			r.stats.BytesSkipped += uint64(skipped)
			r.tailSkipped += skipped
			mBytesSkipped.Add(uint64(skipped))
		}
		if rerr != nil {
			// End of this segment; move on. Tail garbage inside a
			// non-final segment is resolved by sequence-gap accounting
			// against the next segment's records.
			r.f.Close()
			r.f, r.br = nil, nil
			r.cur++
			continue
		}
		if cap(body) > cap(r.buf) {
			r.buf = body[:0]
		}
		if r.lastSeq != 0 && recSeq <= r.lastSeq {
			r.stats.Duplicates++
			continue
		}
		if err := json.Unmarshal(body, &ev); err != nil {
			// CRC-intact but undecodable: a writer-side bug, not wire
			// damage. Quarantine it and advance the sequence so the gap
			// accounting does not double-count.
			r.stats.Quarantined++
			mQuarantined.Inc()
			r.lastSeq = recSeq
			r.tailSkipped = 0
			continue
		}
		if r.lastSeq != 0 && recSeq > r.lastSeq+1 {
			gap := recSeq - r.lastSeq - 1
			r.stats.Quarantined += gap
			mQuarantined.Add(gap)
		}
		if r.stats.Records == 0 {
			r.stats.FirstSeq = recSeq
		}
		r.lastSeq = recSeq
		r.stats.LastSeq = recSeq
		r.stats.Records++
		mRecovered.Inc()
		r.tailSkipped = 0
		return recSeq, ev, nil
	}
}

// finish closes out the scan: bytes skipped after the last intact
// record are a torn tail — at least one record died there.
func (r *Reader) finish() {
	if r.done {
		return
	}
	r.done = true
	r.span.End()
	if r.tailSkipped > 0 {
		r.stats.TornTail = true
		r.stats.Quarantined++
		mQuarantined.Inc()
	}
}

// Close releases the scan. Safe after io.EOF.
func (r *Reader) Close() error {
	if r.f != nil {
		r.f.Close()
		r.f, r.br = nil, nil
	}
	r.finish()
	return nil
}

// readRecord reads the next intact event record from br; the shared
// codec (record.go) does the resynchronization.
func readRecord(br *bufio.Reader, buf []byte) (seq uint64, body []byte, skipped int64, err error) {
	return ReadRecord(br, recKind, buf)
}
