// Record codec, shared between the event WAL and the telemetry TSDB
// (internal/tsdb): the same magic/kind/seq/len/CRC framing, the same
// skip-and-count resynchronization, parameterized only by the kind
// byte — 'E' for WAL event records, 'P' for TSDB point batches. The
// kind byte is covered by the CRC, so a record of one kind can never
// be mistaken for an intact record of the other.

package wal

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// EncodeRecord appends one framed record of the given kind to buf and
// returns the extended buffer. The body must be at most MaxRecord
// bytes; longer bodies would be durable but unrecoverable, since the
// reader unconditionally skips oversized length prefixes.
func EncodeRecord(buf []byte, kind byte, seq uint64, body []byte) []byte {
	var hdr [recHdrLen]byte
	hdr[0] = recMagic0
	hdr[1] = recMagic1
	hdr[2] = kind
	binary.BigEndian.PutUint64(hdr[3:], seq)
	binary.BigEndian.PutUint32(hdr[11:], uint32(len(body)))
	crc := crc32.ChecksumIEEE(hdr[2:15])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	binary.BigEndian.PutUint32(hdr[15:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// ReadRecord reads the next intact record of the given kind from br,
// resynchronizing on corruption exactly like agent.readFrame: a bad
// magic, kind, or length advances the scan one byte; a CRC mismatch
// skips the record. skipped counts every discarded byte, including a
// truncated tail — unlike the wire reader, a file has a real end, so a
// partial record at EOF is drained and counted rather than left
// pending. The returned body aliases buf (grown as needed); it is
// valid until the next call.
func ReadRecord(br *bufio.Reader, kind byte, buf []byte) (seq uint64, body []byte, skipped int64, err error) {
	for {
		b0, rerr := br.ReadByte()
		if rerr != nil {
			return 0, nil, skipped, io.EOF
		}
		if b0 != recMagic0 {
			skipped++
			continue
		}
		hdr, rerr := br.Peek(recHdrLen - 1)
		if rerr != nil {
			if len(hdr) == 0 || hdr[0] != recMagic1 {
				skipped++
				continue
			}
			// A genuine record start torn mid-header: tail garbage.
			br.Discard(len(hdr))
			skipped += 1 + int64(len(hdr))
			return 0, nil, skipped, io.EOF
		}
		if hdr[0] != recMagic1 {
			skipped++
			continue
		}
		if hdr[1] != kind {
			skipped++
			continue
		}
		n := binary.BigEndian.Uint32(hdr[10:14])
		if n > MaxRecord {
			skipped++
			continue
		}
		seq = binary.BigEndian.Uint64(hdr[2:10])
		want := binary.BigEndian.Uint32(hdr[14:18])
		crc := crc32.ChecksumIEEE(hdr[1:14])
		br.Discard(recHdrLen - 1)
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		body = buf[:n]
		got, rerr := io.ReadFull(br, body)
		if rerr != nil {
			// Truncated body at end of file: header + partial body is
			// tail garbage.
			skipped += recHdrLen + int64(got)
			return 0, nil, skipped, io.EOF
		}
		if crc32.Update(crc, crc32.IEEETable, body) != want {
			skipped += recHdrLen + int64(n)
			continue
		}
		return seq, body, skipped, nil
	}
}

// KindEvent and KindPoints are the registered record kinds: trace
// events in the WAL, line-protocol point batches in the TSDB.
const (
	KindEvent  = recKind
	KindPoints = 'P'
)
