package agent

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame reader. The
// invariants under fuzzing: never panic, never return an invalid kind
// or an oversized body, never claim to have consumed more bytes than
// exist, and always terminate (corruption must surface as resync or
// EOF, not a hang or a connection-fatal parse error).
func FuzzReadFrame(f *testing.F) {
	ev := sampleEvent(7)
	evBody, _ := json.Marshal(&ev)
	good := encodeFrame(frameEvent, 7, evBody)
	state, _ := json.Marshal(&StateUpdate{Nodes: []NodeState{{Name: "n1", Up: true}}})
	goodState := encodeFrame(frameState, 8, state)
	hb, _ := json.Marshal(heartbeatBody{Agent: "fuzz", Shed: 3})

	// Seed corpus: real frames, then each documented corruption class.
	f.Add(good)
	f.Add(goodState)
	f.Add(encodeFrame(frameHeartbeat, 99, hb))
	f.Add(append(append([]byte{}, good...), goodState...)) // back-to-back
	f.Add(append([]byte{0x00, 0xF5, 0x13}, good...))       // garbage prefix

	badKind := append([]byte{}, good...)
	badKind[2] = 'X'
	f.Add(badKind)

	oversized := append([]byte{}, good...)
	binary.BigEndian.PutUint32(oversized[11:], MaxFrame+1)
	f.Add(oversized)

	truncLen := append([]byte{}, good...)
	binary.BigEndian.PutUint32(truncLen[11:], uint32(len(evBody)+100))
	f.Add(truncLen)
	f.Add(good[:frameHdrLen-3]) // truncated header

	badCRC := append([]byte{}, good...)
	badCRC[len(badCRC)-1] ^= 0xff // flip a body byte: CRC mismatch
	f.Add(append(badCRC, good...))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		consumed := 0
		for {
			kind, _, body, skipped, err := readFrame(br)
			if err != nil {
				// Only I/O-level errors may surface; corruption must not.
				consumed += skipped
				if consumed > len(data) {
					t.Fatalf("claimed %d bytes skipped of %d input", consumed, len(data))
				}
				return
			}
			if !validKind(kind) {
				t.Fatalf("returned invalid kind %q", kind)
			}
			if len(body) > MaxFrame {
				t.Fatalf("returned %d-byte body beyond MaxFrame", len(body))
			}
			consumed += skipped + frameHdrLen + len(body)
			if consumed > len(data) {
				t.Fatalf("consumed %d bytes of %d input", consumed, len(data))
			}
		}
	})
}

// FuzzReadFrameRecovery embeds one valid frame after fuzzed garbage and
// asserts the reader always recovers it — the resync guarantee.
func FuzzReadFrameRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xF5})            // lone magic0
	f.Add([]byte{0xF5, 0x9E})      // magic pair, no header
	f.Add([]byte{0xF5, 0x9E, 'E'}) // looks like a frame start
	f.Add([]byte{'X', 0, 0, 0, 1}) // old-format garbage
	f.Add(bytes.Repeat([]byte{0xF5}, 40))

	ev := sampleEvent(42)
	body, _ := json.Marshal(&ev)
	good := encodeFrame(frameEvent, 42, body)

	f.Fuzz(func(t *testing.T, garbage []byte) {
		if len(garbage) > 1<<16 {
			return
		}
		br := bufio.NewReader(bytes.NewReader(append(append([]byte{}, garbage...), good...)))
		for {
			kind, seq, got, _, err := readFrame(br)
			if err != nil {
				// Permissible only if the garbage happened to embed a
				// frame prefix that swallowed our frame into its body or
				// desynced past it; but a clean EOF before any frame means
				// the good frame vanished entirely — only acceptable when
				// the garbage itself parses as frames that consumed it.
				return
			}
			if kind == frameEvent && seq == 42 && bytes.Equal(got, body) {
				return // recovered
			}
		}
	})
}
