// Distributed-state reporting: alongside network events, the paper's
// agents shipped collectd resource snapshots and dependency-watcher
// status to the analyzer service (§5.1, §6). These types are that
// side-channel: periodic StateUpdates carrying per-node resource samples
// and software-dependency health, serializable over the same TCP
// transport as events.

package agent

import (
	"time"

	"gretel/internal/cluster"
	"gretel/internal/metrics"
	"gretel/internal/trace"
)

// NodeState is the watcher/inventory view of one node at a point in time.
type NodeState struct {
	Name       string        `json:"name"`
	Service    trace.Service `json:"service"`
	Up         bool          `json:"up"`
	MemTotalMB float64       `json:"mem_total_mb"`
	Deps       []DepStatus   `json:"deps,omitempty"`
}

// MetricSample is one resource observation.
type MetricSample struct {
	Node   string    `json:"node"`
	Metric string    `json:"metric"`
	Time   time.Time `json:"time"`
	Value  float64   `json:"value"`
}

// StateUpdate is one periodic report from the monitoring layer.
type StateUpdate struct {
	Time    time.Time      `json:"time"`
	Nodes   []NodeState    `json:"nodes"`
	Samples []MetricSample `json:"samples,omitempty"`
}

// CollectState gathers the current node inventory, dependency health and
// one resource sample per node/metric from a fabric — what the paper's
// per-node collectd + watcher agents reported each polling interval.
func CollectState(f *cluster.Fabric, at time.Time) StateUpdate {
	u := StateUpdate{Time: at}
	for _, n := range f.Nodes() {
		ns := NodeState{
			Name:       n.Name,
			Service:    n.Service,
			Up:         n.Up,
			MemTotalMB: n.Base.MemTotalMB,
		}
		for _, d := range n.Dependencies() {
			ns.Deps = append(ns.Deps, DepStatus{Node: n.Name, Name: d.Name, Running: d.Running && n.Up})
		}
		u.Nodes = append(u.Nodes, ns)
		if n.Up {
			r := n.Sample()
			for _, mv := range []struct {
				name string
				v    float64
			}{
				{metrics.MetricCPU, r.CPUPercent},
				{metrics.MetricMemUsed, r.MemUsedMB},
				{metrics.MetricDiskFree, r.DiskFreeGB},
				{metrics.MetricNet, r.NetMbps},
				{metrics.MetricDiskIOPS, r.DiskIOPS},
			} {
				u.Samples = append(u.Samples, MetricSample{Node: n.Name, Metric: mv.name, Time: at, Value: mv.v})
			}
		}
	}
	return u
}
