package agent

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

func sampleEvent(seq uint64) trace.Event {
	return trace.Event{
		Seq:     seq,
		Time:    time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC),
		Type:    trace.RESTResponse,
		API:     trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
		SrcNode: "glance-node", DstNode: "horizon-node",
		ConnID: 42, Status: 413, ErrorText: "Request Entity Too Large",
		WireBytes: 211, OpID: 7, OpName: "image-upload",
	}
}

func TestWriteReadEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ev := sampleEvent(3)
	if err := WriteEvent(&buf, &ev); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || got.API != ev.API || got.Status != 413 ||
		got.ErrorText != ev.ErrorText || got.OpName != "image-upload" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.Time.Equal(ev.Time) {
		t.Fatalf("time mismatch: %v", got.Time)
	}
}

func TestReadEventRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadEvent(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadEventShortBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := ReadEvent(&buf); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestSenderReceiverEndToEnd(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := Dial(recv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	const n = 500
	go func() {
		for i := uint64(1); i <= n; i++ {
			sender.Send(sampleEvent(i))
		}
		sender.Close()
	}()

	var got []trace.Event
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case ev, ok := <-recv.Events():
			if !ok {
				t.Fatalf("receiver closed early after %d events", len(got))
			}
			got = append(got, ev)
		case <-timeout:
			t.Fatalf("timeout after %d events", len(got))
		}
	}
	// Per-connection ordering must be preserved (§5.2).
	for i := range got {
		if got[i].Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d (order broken)", i, got[i].Seq)
		}
	}
	recv.Close()
}

func TestMultipleSenders(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const senders, per = 4, 100
	for s := 0; s < senders; s++ {
		s := s
		go func() {
			snd, err := Dial(recv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				ev := sampleEvent(uint64(s*per + i))
				ev.SrcNode = "node-" + string(rune('a'+s))
				snd.Send(ev)
			}
			snd.Close()
		}()
	}
	count := 0
	timeout := time.After(5 * time.Second)
	for count < senders*per {
		select {
		case _, ok := <-recv.Events():
			if !ok {
				t.Fatalf("closed early at %d", count)
			}
			count++
		case <-timeout:
			t.Fatalf("timeout at %d events", count)
		}
	}
	recv.Close()
}

func TestStateFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	u := StateUpdate{
		Time: time.Date(2016, 12, 12, 0, 0, 5, 0, time.UTC),
		Nodes: []NodeState{{
			Name: "glance-node", Service: trace.SvcGlance, Up: true, MemTotalMB: 131072,
			Deps: []DepStatus{{Node: "glance-node", Name: "ntp", Running: true}},
		}},
		Samples: []MetricSample{{Node: "glance-node", Metric: "disk_free_gb",
			Time: time.Date(2016, 12, 12, 0, 0, 5, 0, time.UTC), Value: 0.6}},
	}
	if err := WriteState(&buf, &u); err != nil {
		t.Fatal(err)
	}
	// ReadEvent must reject a state frame.
	if _, err := ReadEvent(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadEvent accepted a state frame")
	}
	kind, body, err := readFrame(bytes.NewReader(buf.Bytes()))
	if err != nil || kind != frameState {
		t.Fatalf("kind=%q err=%v", kind, err)
	}
	if len(body) == 0 {
		t.Fatal("empty state body")
	}
}

func TestMixedFrameStreamOverTCP(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := Dial(recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 50; i++ {
			sender.Send(sampleEvent(uint64(i + 1)))
			if i%10 == 0 {
				sender.SendState(StateUpdate{Nodes: []NodeState{{Name: "n1", Up: true}}})
			}
		}
		sender.Close()
	}()
	events, states := 0, 0
	timeout := time.After(5 * time.Second)
	for events < 50 || states < 5 {
		select {
		case _, ok := <-recv.Events():
			if ok {
				events++
			}
		case _, ok := <-recv.States():
			if ok {
				states++
			}
		case <-timeout:
			t.Fatalf("timeout: %d events, %d states", events, states)
		}
	}
	recv.Close()
}

func TestCollectStateAndStoreRoundTrip(t *testing.T) {
	// CollectState over a fabric, applied to an rca.Store via the wire
	// format, must reproduce dependency status (tested here only up to
	// the agent package boundary: serialize/deserialize).
	var buf bytes.Buffer
	u := StateUpdate{Nodes: []NodeState{{Name: "c1", Up: false}}}
	if err := WriteState(&buf, &u); err != nil {
		t.Fatal(err)
	}
	kind, body, err := readFrame(&buf)
	if err != nil || kind != frameState {
		t.Fatal("frame broken")
	}
	var got StateUpdate
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 1 || got.Nodes[0].Name != "c1" || got.Nodes[0].Up {
		t.Fatalf("round trip: %+v", got)
	}
}

// waitCounterAbove polls a telemetry counter until it exceeds floor or
// the deadline passes (receiver goroutines count asynchronously).
func waitCounterAbove(t *testing.T, c *telemetry.Counter, floor uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() <= floor {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d (want > %d)", c.Value(), floor)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReceiverCountsDroppedConnections closes the satellite gap at the
// old bare-return drop site: a corrupt frame must increment
// transport.connections_dropped rather than vanish.
func TestReceiverCountsDroppedConnections(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	dropped := telemetry.GetCounter("transport.connections_dropped")
	before := dropped.Value()

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Unknown frame kind 'X': readFrame fails mid-stream.
	conn.Write([]byte{'X', 0, 0, 0, 1, 'a'})
	conn.Close()
	waitCounterAbove(t, dropped, before)
}

// TestReceiverCountsDecodeErrors: a well-framed but undecodable event
// body must be counted (and the connection dropped), not silently eaten.
func TestReceiverCountsDecodeErrors(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	decode := telemetry.GetCounter("transport.decode_errors")
	before := decode.Value()

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("not-json")
	hdr := []byte{'E', 0, 0, 0, byte(len(body))}
	conn.Write(append(hdr, body...))
	conn.Close()
	waitCounterAbove(t, decode, before)
}

// TestSenderReconnectAfterFailure drives a sender into a sticky error by
// closing the server side, then verifies Reconnect restores the stream
// and counts itself.
func TestSenderReconnectAfterFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conns := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()

	s, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	first := <-conns
	first.Close()

	reconnects := telemetry.GetCounter("transport.reconnects")
	recBefore := reconnects.Value()
	dropped := telemetry.GetCounter("transport.frames_dropped")
	dropBefore := dropped.Value()

	// Writes into a peer-closed connection fail once the RST lands.
	deadline := time.Now().Add(5 * time.Second)
	for s.Flush() == nil {
		if time.Now().After(deadline) {
			t.Fatal("sender never observed the closed connection")
		}
		s.Send(sampleEvent(1))
		time.Sleep(time.Millisecond)
	}
	s.Send(sampleEvent(1)) // dropped on the sticky error
	if dropped.Value() <= dropBefore {
		t.Fatal("dropped frames not counted")
	}

	if err := s.Reconnect(); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if got := reconnects.Value(); got != recBefore+1 {
		t.Fatalf("reconnects = %d, want %d", got, recBefore+1)
	}
	s.Send(sampleEvent(2))
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after reconnect: %v", err)
	}
	second := <-conns
	ev, err := ReadEvent(second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 2 {
		t.Fatalf("event after reconnect has seq %d, want 2", ev.Seq)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after reconnect: %v", err)
	}
}
