package agent

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"gretel/internal/chaos"
	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

func sampleEvent(seq uint64) trace.Event {
	return trace.Event{
		Seq:     seq,
		Time:    time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC),
		Type:    trace.RESTResponse,
		API:     trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
		SrcNode: "glance-node", DstNode: "horizon-node",
		ConnID: 42, Status: 413, ErrorText: "Request Entity Too Large",
		WireBytes: 211, OpID: 7, OpName: "image-upload",
	}
}

// fastSender returns a SenderConfig with test-tight timers.
func fastSender(addr, name string) SenderConfig {
	return SenderConfig{
		Addr: addr, Agent: name,
		DialTimeout: time.Second, WriteTimeout: 2 * time.Second,
		BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		Heartbeat: 10 * time.Millisecond, DrainTimeout: 5 * time.Second,
	}
}

func TestWriteReadEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ev := sampleEvent(3)
	if err := WriteEvent(&buf, &ev); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || got.API != ev.API || got.Status != 413 ||
		got.ErrorText != ev.ErrorText || got.OpName != "image-upload" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.Time.Equal(ev.Time) {
		t.Fatalf("time mismatch: %v", got.Time)
	}
}

func TestReadEventRejectsGarbageStream(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadEvent(&buf); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

func TestReadFrameSkipsOversizedLength(t *testing.T) {
	// A header whose length field exceeds MaxFrame must be rejected as
	// corrupt (scan past it), never allocated.
	ev := sampleEvent(1)
	body, _ := json.Marshal(&ev)
	fr := encodeFrame(frameEvent, 1, body)
	huge := append([]byte{}, fr...)
	huge[11], huge[12], huge[13], huge[14] = 0xff, 0xff, 0xff, 0xff
	good := encodeFrame(frameEvent, 2, body)
	br := bufio.NewReader(bytes.NewReader(append(huge, good...)))
	kind, seq, _, skipped, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameEvent || seq != 2 {
		t.Fatalf("got kind=%q seq=%d, want the good frame after the corrupt one", kind, seq)
	}
	if skipped == 0 {
		t.Fatal("corrupt prefix not reported as skipped")
	}
}

func TestReadEventShortBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := ReadEvent(&buf); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestReadFrameResyncAfterCorruptFrame(t *testing.T) {
	// Flip a body byte: CRC fails, frame is skipped, and the next valid
	// frame is returned — corruption must not surface as an error.
	ev := sampleEvent(1)
	body, _ := json.Marshal(&ev)
	bad := encodeFrame(frameEvent, 1, body)
	bad[frameHdrLen] ^= 0xff
	good := encodeFrame(frameEvent, 2, body)
	br := bufio.NewReader(bytes.NewReader(append(bad, good...)))
	kind, seq, gotBody, skipped, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameEvent || seq != 2 {
		t.Fatalf("kind=%q seq=%d, want good frame", kind, seq)
	}
	if skipped != len(bad) {
		t.Fatalf("skipped=%d, want %d (the whole corrupt frame)", skipped, len(bad))
	}
	var got trace.Event
	if err := json.Unmarshal(gotBody, &got); err != nil || got.Status != 413 {
		t.Fatalf("body mangled: %v %+v", err, got)
	}
}

func TestSenderReceiverEndToEnd(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := Dial(recv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	const n = 500
	go func() {
		for i := uint64(1); i <= n; i++ {
			sender.Send(sampleEvent(i))
		}
		sender.Close()
	}()

	var got []trace.Event
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case ev, ok := <-recv.Events():
			if !ok {
				t.Fatalf("receiver closed early after %d events", len(got))
			}
			got = append(got, ev)
		case <-timeout:
			t.Fatalf("timeout after %d events", len(got))
		}
	}
	// Per-connection ordering must be preserved (§5.2).
	for i := range got {
		if got[i].Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d (order broken)", i, got[i].Seq)
		}
	}
	recv.Close()
}

func TestMultipleSenders(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const senders, per = 4, 100
	for s := 0; s < senders; s++ {
		s := s
		go func() {
			snd, err := DialConfig(fastSender(recv.Addr(), "node-"+string(rune('a'+s))))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				ev := sampleEvent(uint64(s*per + i))
				ev.SrcNode = "node-" + string(rune('a'+s))
				snd.Send(ev)
			}
			snd.Close()
		}()
	}
	count := 0
	timeout := time.After(5 * time.Second)
	for count < senders*per {
		select {
		case _, ok := <-recv.Events():
			if !ok {
				t.Fatalf("closed early at %d", count)
			}
			count++
		case <-timeout:
			t.Fatalf("timeout at %d events", count)
		}
	}
	recv.Close()
}

func TestStateFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	u := StateUpdate{
		Time: time.Date(2016, 12, 12, 0, 0, 5, 0, time.UTC),
		Nodes: []NodeState{{
			Name: "glance-node", Service: trace.SvcGlance, Up: true, MemTotalMB: 131072,
			Deps: []DepStatus{{Node: "glance-node", Name: "ntp", Running: true}},
		}},
		Samples: []MetricSample{{Node: "glance-node", Metric: "disk_free_gb",
			Time: time.Date(2016, 12, 12, 0, 0, 5, 0, time.UTC), Value: 0.6}},
	}
	if err := WriteState(&buf, &u); err != nil {
		t.Fatal(err)
	}
	// ReadEvent must reject a state frame.
	if _, err := ReadEvent(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadEvent accepted a state frame")
	}
	kind, seq, body, skipped, err := readFrame(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil || kind != frameState || seq != 0 || skipped != 0 {
		t.Fatalf("kind=%q seq=%d skipped=%d err=%v", kind, seq, skipped, err)
	}
	if len(body) == 0 {
		t.Fatal("empty state body")
	}
}

func TestMixedFrameStreamOverTCP(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := Dial(recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 50; i++ {
			sender.Send(sampleEvent(uint64(i + 1)))
			if i%10 == 0 {
				sender.SendState(StateUpdate{Nodes: []NodeState{{Name: "n1", Up: true}}})
			}
		}
		sender.Close()
	}()
	events, states := 0, 0
	timeout := time.After(5 * time.Second)
	for events < 50 || states < 5 {
		select {
		case _, ok := <-recv.Events():
			if ok {
				events++
			}
		case _, ok := <-recv.States():
			if ok {
				states++
			}
		case <-timeout:
			t.Fatalf("timeout: %d events, %d states", events, states)
		}
	}
	recv.Close()
}

func TestCollectStateAndStoreRoundTrip(t *testing.T) {
	// CollectState over a fabric, applied to an rca.Store via the wire
	// format, must reproduce dependency status (tested here only up to
	// the agent package boundary: serialize/deserialize).
	var buf bytes.Buffer
	u := StateUpdate{Nodes: []NodeState{{Name: "c1", Up: false}}}
	if err := WriteState(&buf, &u); err != nil {
		t.Fatal(err)
	}
	kind, _, body, _, err := readFrame(bufio.NewReader(&buf))
	if err != nil || kind != frameState {
		t.Fatal("frame broken")
	}
	var got StateUpdate
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 1 || got.Nodes[0].Name != "c1" || got.Nodes[0].Up {
		t.Fatalf("round trip: %+v", got)
	}
}

// waitCounterAbove polls a telemetry counter until it exceeds floor or
// the deadline passes (receiver goroutines count asynchronously).
func waitCounterAbove(t *testing.T, c *telemetry.Counter, floor uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() <= floor {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d (want > %d)", c.Value(), floor)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReceiverResyncsOnCorruptBytes: garbage on the wire must be
// skipped via resync — the connection survives and the next valid
// frame is still delivered.
func TestReceiverResyncsOnCorruptBytes(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	resyncs := telemetry.GetCounter("transport.resyncs")
	before := resyncs.Value()

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{'X', 0xff, 0x01, 0xab, 0x00, 0x7f})
	ev := sampleEvent(99)
	if err := WriteEvent(conn, &ev); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv.Events():
		if got.Seq != 99 {
			t.Fatalf("wrong event after resync: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event after garbage never arrived: connection torn down?")
	}
	waitCounterAbove(t, resyncs, before)
}

// TestReceiverSkipsUndecodableFrame: a well-framed but undecodable body
// must be counted and skipped — the connection survives.
func TestReceiverSkipsUndecodableFrame(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	decode := telemetry.GetCounter("transport.decode_errors")
	before := decode.Value()

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(encodeFrame(frameEvent, 0, []byte("not-json")))
	ev := sampleEvent(7)
	if err := WriteEvent(conn, &ev); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv.Events():
		if got.Seq != 7 {
			t.Fatalf("wrong event after decode error: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event after undecodable frame never arrived")
	}
	waitCounterAbove(t, decode, before)
}

// TestReceiverRecordsGapAndDedups drives sequence tracking directly: a
// jump in sequence numbers yields a gap record, and a replayed frame is
// dropped as a duplicate.
func TestReceiverRecordsGapAndDedups(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	hello, _ := json.Marshal(helloBody{Agent: "gap-agent"})
	conn.Write(encodeFrame(frameHello, 0, hello))
	mk := func(seq uint64) []byte {
		ev := sampleEvent(seq)
		body, _ := json.Marshal(&ev)
		return encodeFrame(frameEvent, seq, body)
	}
	conn.Write(mk(1))
	conn.Write(mk(5)) // gap: 2,3,4 missing
	conn.Write(mk(5)) // duplicate

	var events []trace.Event
	timeout := time.After(5 * time.Second)
	for len(events) < 2 {
		select {
		case ev := <-recv.Events():
			events = append(events, ev)
		case <-timeout:
			t.Fatalf("timeout after %d events", len(events))
		}
	}
	select {
	case h := <-recv.Health():
		if h.Kind != HealthGap || h.Agent != "gap-agent" || h.Missing != 3 {
			t.Fatalf("health = %+v, want gap of 3 for gap-agent", h)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no gap record")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := recv.AgentStats()["gap-agent"]
		if st.LastSeq == 5 && st.Missing == 3 && st.Dups == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent stats = %+v, want lastSeq=5 missing=3 dups=1", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReceiverLivenessDownUp: an agent whose frames stop is declared
// down after DownAfter, and flips back up when it returns.
func TestReceiverLivenessDownUp(t *testing.T) {
	recv, err := ListenConfig(ReceiverConfig{Addr: "127.0.0.1:0", DownAfter: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	snd, err := DialConfig(fastSender(recv.Addr(), "hb-agent"))
	if err != nil {
		t.Fatal(err)
	}
	snd.Send(sampleEvent(1))
	<-recv.Events()
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}

	waitHealth := func(want HealthKind) {
		t.Helper()
		timeout := time.After(5 * time.Second)
		for {
			select {
			case h := <-recv.Health():
				if h.Kind == want && h.Agent == "hb-agent" {
					return
				}
			case <-timeout:
				t.Fatalf("no %v record for hb-agent", want)
			}
		}
	}
	waitHealth(HealthDown)
	if st := recv.AgentStats()["hb-agent"]; !st.Down {
		t.Fatalf("agent not marked down: %+v", st)
	}

	// The agent comes back: fresh sender, same identity.
	snd2, err := DialConfig(fastSender(recv.Addr(), "hb-agent"))
	if err != nil {
		t.Fatal(err)
	}
	defer snd2.Close()
	waitHealth(HealthUp)
}

// TestSenderAutoReconnectReplays kills the live connection server-side;
// the sender must redial on its own and replay the ring so every frame
// is eventually seen (the receiver side dedups).
func TestSenderAutoReconnectReplays(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conns := make(chan net.Conn, 8)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()

	reconnects := telemetry.GetCounter("transport.reconnects")
	recBefore := reconnects.Value()
	replayed := telemetry.GetCounter("transport.frames_replayed")
	repBefore := replayed.Value()

	cfg := fastSender(ln.Addr().String(), "replayer")
	cfg.Heartbeat = -1 // quiet stream: only payload frames
	s, err := DialConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitConnected(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	first := <-conns
	for i := uint64(1); i <= 10; i++ {
		s.Send(sampleEvent(i))
	}
	first.Close() // sender's writes now fail → background redial
	for i := uint64(11); i <= 20; i++ {
		s.Send(sampleEvent(i))
	}

	var second net.Conn
	select {
	case second = <-conns:
	case <-time.After(5 * time.Second):
		t.Fatal("sender never redialed")
	}
	br := bufio.NewReader(second)
	seen := make(map[uint64]bool)
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(seen) < 20 {
		kind, _, body, _, err := readFrame(br)
		if err != nil {
			t.Fatalf("after %d distinct events: %v", len(seen), err)
		}
		if kind != frameEvent {
			continue
		}
		var ev trace.Event
		if err := json.Unmarshal(body, &ev); err != nil {
			t.Fatal(err)
		}
		seen[ev.Seq] = true
	}
	if got := reconnects.Value(); got <= recBefore {
		t.Fatalf("reconnects = %d, want > %d", got, recBefore)
	}
	// The redial replayed the ring suffix the dead conn never acked:
	// at least the 10 pre-disconnect events went over the wire twice,
	// and every replay is counted.
	if got := replayed.Value(); got < repBefore+10 {
		t.Fatalf("transport.frames_replayed = %d, want >= %d (10 ring frames replayed on reconnect)",
			got, repBefore+10)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	second.Close()
}

// TestSenderLazyDialBeforeReceiver: the sender must be usable before
// the analyzer is listening — frames spool and flow once it appears.
func TestSenderLazyDialBeforeReceiver(t *testing.T) {
	// Reserve an address, then free it for the late receiver.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	s, err := DialConfig(fastSender(addr, "early-bird"))
	if err != nil {
		t.Fatalf("lazy dial must not fail: %v", err)
	}
	for i := uint64(1); i <= 5; i++ {
		s.Send(sampleEvent(i))
	}
	time.Sleep(20 * time.Millisecond) // let a few dial attempts fail

	recv, err := Listen(addr)
	if err != nil {
		t.Skipf("reserved address %s re-taken: %v", addr, err)
	}
	defer recv.Close()
	if err := s.WaitConnected(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]bool)
	timeout := time.After(5 * time.Second)
	for len(got) < 5 {
		select {
		case ev := <-recv.Events():
			got[ev.Seq] = true
		case <-timeout:
			t.Fatalf("timeout with %d/5 spooled events delivered", len(got))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSenderShedsOldestWhenRingFull: with no analyzer reachable, ring
// overflow sheds oldest-first and is counted; Close reports the
// incomplete drain.
func TestSenderShedsOldestWhenRingFull(t *testing.T) {
	// An address nothing listens on.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	shedC := telemetry.GetCounter("transport.frames_shed")
	before := shedC.Value()

	cfg := fastSender(addr, "shedder")
	cfg.Ring = 8
	cfg.DrainTimeout = 50 * time.Millisecond
	s, err := DialConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		s.Send(sampleEvent(i))
	}
	st := s.Stats()
	if st.Shed != 12 {
		t.Fatalf("shed = %d, want 12 (20 sent into a ring of 8)", st.Shed)
	}
	if got := shedC.Value(); got != before+12 {
		t.Fatalf("transport.frames_shed advanced by %d, want 12", got-before)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close must report the failed drain when frames never flushed")
	}
}

// TestReceiverCloseMidBurst is the shutdown-race regression test: a
// serve goroutine blocked handing events to a consumer that stopped
// reading must not deadlock Close.
func TestReceiverCloseMidBurst(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Blast more events than the channel buffers; nobody consumes, so
	// serve blocks mid-burst on the events channel.
	go func() {
		for i := uint64(1); i <= 8192; i++ {
			ev := sampleEvent(i)
			if WriteEvent(conn, &ev) != nil {
				return
			}
		}
	}()
	// Wait until the buffer is provably full (serve is blocked sending).
	deadline := time.Now().Add(5 * time.Second)
	for len(recv.Events()) < cap(recv.Events()) {
		if time.Now().After(deadline) {
			t.Fatal("events channel never filled")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		recv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Receiver.Close deadlocked with a blocked serve goroutine")
	}
}

// TestConcurrentSendDuringReconnect hammers Send from many goroutines
// while chaos-injected connection resets force reconnects mid-stream:
// every event must arrive exactly once, with zero shed and zero gaps.
func TestConcurrentSendDuringReconnect(t *testing.T) {
	recv, err := ListenConfig(ReceiverConfig{Addr: "127.0.0.1:0", ReadTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSender(recv.Addr(), "stress")
	cfg.Ring = 1 << 14 // retain everything: resets must not shed
	cfg.Heartbeat = 5 * time.Millisecond
	cfg.Dialer = chaos.Dialer(chaos.Config{Seed: 42, Reset: 0.002})
	s, err := DialConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, per = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Send(sampleEvent(uint64(g*per + i + 1)))
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("close (drain) failed: %v", err)
	}
	if st := s.Stats(); st.Shed != 0 {
		t.Fatalf("shed %d frames with an oversized ring", st.Shed)
	}

	const total = goroutines * per
	counts := make(map[uint64]int, total)
	delivered := 0
	timeout := time.After(20 * time.Second)
	for delivered < total {
		select {
		case ev := <-recv.Events():
			counts[ev.Seq]++
			if counts[ev.Seq] > 1 {
				t.Fatalf("event %d delivered %d times", ev.Seq, counts[ev.Seq])
			}
			delivered++
		case <-timeout:
			st := recv.AgentStats()["stress"]
			t.Fatalf("timeout with %d/%d delivered (receiver view: %+v)", delivered, total, st)
		}
	}
	st := recv.AgentStats()["stress"]
	if st.Missing != 0 {
		t.Fatalf("receiver recorded %d missing frames; replay should cover resets", st.Missing)
	}
	if st.LastSeq != total {
		t.Fatalf("lastSeq = %d, want %d (monotonic sequence numbering broke)", st.LastSeq, total)
	}
	recv.Close()
}
