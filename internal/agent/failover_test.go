package agent

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestRedialToReplacementAdoptsSession is the failover regression: an
// agent whose analyzer dies redials a *replacement* receiver that never
// saw its history. The ring has long since dropped the early frames
// (consumed by the dead analyzer), so the replacement's first payload
// frame carries a high sequence number — before session hellos, the
// receiver misread the whole unseen prefix as a gap. With the session
// base adopted, the replacement reports zero missing frames.
func TestRedialToReplacementAdoptsSession(t *testing.T) {
	recvA, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	recvB, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recvB.Close()

	var target atomic.Value
	target.Store(recvA.Addr())
	cfg := fastSender("", "fed-agent")
	cfg.Addr = ""
	cfg.Resolve = func() (string, error) { return target.Load().(string), nil }
	cfg.Ring = 8 // retain only a short suffix: the prefix is unrecoverable
	s, err := DialConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitConnected(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Feed in small drained batches so nothing sheds while A is alive:
	// the prefix must be *consumed* by the dead analyzer, not lost.
	const total = 100
	for i := uint64(1); i <= total; i++ {
		s.Send(sampleEvent(i))
		if i%4 == 0 {
			if err := s.Drain(5 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if shed := s.Stats().Shed; shed != 0 {
		t.Fatalf("test setup shed %d frames", shed)
	}
	gotA := 0
	for timeout := time.After(5 * time.Second); gotA < total; {
		select {
		case <-recvA.Events():
			gotA++
		case <-timeout:
			t.Fatalf("receiver A got %d/%d events", gotA, total)
		}
	}

	// Fail the analyzer over: reassign first, then kill A so the very
	// next redial resolves to the replacement.
	target.Store(recvB.Addr())
	recvA.Close()

	// The replacement receives the ring suffix; heartbeats then confirm
	// the high-water mark. Nothing in the unseen prefix may be counted
	// as missing.
	deadline := time.After(10 * time.Second)
	for {
		st, ok := recvB.AgentStats()["fed-agent"]
		if ok && st.LastSeq == total {
			if st.Missing != 0 {
				t.Fatalf("replacement counted %d missing frames from the unseen prefix", st.Missing)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("replacement never caught up: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	replayedAtB := 0
	for {
		select {
		case ev := <-recvB.Events():
			if ev.Seq <= total-uint64(cfg.Ring) {
				t.Fatalf("replacement received seq %d, below the retained suffix", ev.Seq)
			}
			replayedAtB++
			continue
		case <-time.After(50 * time.Millisecond):
		}
		break
	}
	if replayedAtB == 0 {
		t.Fatal("ring suffix was not replayed to the replacement")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAgentRestartStartsNewSession: a restarted agent re-registers with
// a fresh session and a sequence space starting over at 1. The receiver
// must accept the new stream rather than deduplicating it against the
// dead session's high-water mark.
func TestAgentRestartStartsNewSession(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	cfg := fastSender(recv.Addr(), "phoenix")
	cfg.Session = 1
	s1, err := DialConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		s1.Send(sampleEvent(i))
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	for got := 0; got < 50; got++ {
		select {
		case <-recv.Events():
		case <-time.After(5 * time.Second):
			t.Fatalf("first incarnation delivered %d/50", got)
		}
	}

	cfg.Session = 2
	s2, err := DialConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := uint64(1); i <= 10; i++ {
		s2.Send(sampleEvent(i))
	}
	if err := s2.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for got := 0; got < 10; got++ {
		select {
		case <-recv.Events():
		case <-time.After(5 * time.Second):
			t.Fatalf("restarted agent delivered %d/10 — deduplicated against the old session", got)
		}
	}
	st := recv.AgentStats()["phoenix"]
	if st.Dups != 0 || st.Missing != 0 {
		t.Fatalf("restart accounting polluted: %+v", st)
	}
}

// TestReceiverHelloSessionStateMachine pins the tracker transitions
// directly: reconnect vs shed-while-away vs new session vs legacy hello.
func TestReceiverHelloSessionStateMachine(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const a = "sm-agent"
	recv.hello(a, 7, 10) // first contact mid-stream: adopt base 10
	if st := recv.AgentStats()[a]; st.LastSeq != 10 || st.Missing != 0 {
		t.Fatalf("after first hello: %+v", st)
	}
	if !recv.admit(a, 11) {
		t.Fatal("seq 11 rejected after base 10")
	}
	if recv.admit(a, 5) {
		t.Fatal("below-base frame not deduplicated")
	}
	recv.hello(a, 7, 10) // same-session reconnect, base behind: no-op
	if st := recv.AgentStats()[a]; st.LastSeq != 11 || st.Missing != 0 {
		t.Fatalf("after reconnect hello: %+v", st)
	}
	recv.hello(a, 7, 20) // same session, base advanced: 12..20 shed = real gap
	if st := recv.AgentStats()[a]; st.LastSeq != 20 || st.Missing != 9 {
		t.Fatalf("after shed hello: %+v", st)
	}
	recv.hello(a, 8, 3) // new session: adopt, keep lifetime totals
	st := recv.AgentStats()[a]
	if st.LastSeq != 3 || st.Missing != 9 {
		t.Fatalf("after new-session hello: %+v", st)
	}
	if !recv.admit(a, 4) {
		t.Fatal("new session's frames rejected")
	}
	recv.hello(a, 0, 0) // legacy sender: no session info, no state change
	if st := recv.AgentStats()[a]; st.LastSeq != 4 {
		t.Fatalf("legacy hello mutated state: %+v", st)
	}
}

func TestDialConfigNeedsAddrOrResolver(t *testing.T) {
	if _, err := DialConfig(SenderConfig{Agent: "x"}); err == nil {
		t.Fatal("sender with neither Addr nor Resolve accepted")
	}
	s, err := DialConfig(SenderConfig{Agent: "x", Resolve: func() (string, error) { return "", nil }})
	if err != nil {
		t.Fatalf("resolver-only sender rejected: %v", err)
	}
	s.Close()
}
