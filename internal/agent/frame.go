// Wire format v2: kind-tagged, length-prefixed JSON frames hardened for
// a monitoring plane that must tolerate the faults it watches for. Every
// frame opens with a two-byte magic so a receiver that loses alignment
// can resynchronize by scanning instead of dropping the connection,
// carries a per-agent sequence number so replayed frames deduplicate and
// losses surface as explicit gap records, and closes the header with a
// CRC32 over header+body so a corrupt frame is skipped, not trusted.
//
//	offset size
//	0      2    magic 0xF5 0x9E
//	2      1    kind ('I' hello, 'E' event, 'S' state, 'H' heartbeat)
//	3      8    sequence number, big-endian (0 = unsequenced)
//	11     4    body length, big-endian
//	15     4    CRC32 (IEEE) over bytes [2,15) and the body
//	19     n    JSON body

package agent

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"gretel/internal/trace"
)

// MaxFrame bounds a single encoded frame (defense against corrupt
// length prefixes).
const MaxFrame = 1 << 22

const (
	frameMagic0 = 0xF5
	frameMagic1 = 0x9E
	frameHdrLen = 19
)

// Frame kinds on the wire.
const (
	frameHello     byte = 'I' // per-connection agent identification
	frameEvent     byte = 'E'
	frameState     byte = 'S'
	frameHeartbeat byte = 'H' // liveness + sequence high-water mark
)

func validKind(k byte) bool {
	switch k {
	case frameHello, frameEvent, frameState, frameHeartbeat:
		return true
	}
	return false
}

// helloBody identifies the sending agent on a fresh connection, keying
// the receiver's sequence tracking across reconnects. Session names one
// sender incarnation: it changes when the agent process restarts, so a
// receiver can tell "same stream, reconnected" (missing sequence numbers
// are losses) from "new stream" (an agent restart, or an agent redialing
// a replacement analyzer that never saw the old history — in neither
// case did this receiver lose anything). Base is the sequence number
// immediately before the first frame this connection can replay; frames
// at or below it are unrecoverable on this session and are the
// receiver's starting point, not a gap. Zero values keep the legacy
// (session-less) behavior for old senders.
type helloBody struct {
	Agent   string `json:"agent"`
	Session uint64 `json:"session,omitempty"`
	Base    uint64 `json:"base,omitempty"`
}

// heartbeatBody rides in liveness frames. The frame's sequence number is
// the sender's high-water mark: every payload frame at or below it has
// already been written ahead of the heartbeat on this connection, so a
// receiver behind that mark has a proven gap.
type heartbeatBody struct {
	Agent string `json:"agent"`
	Shed  uint64 `json:"shed,omitempty"`
}

// encodeFrame builds one complete wire frame.
func encodeFrame(kind byte, seq uint64, body []byte) []byte {
	fr := make([]byte, frameHdrLen+len(body))
	fr[0] = frameMagic0
	fr[1] = frameMagic1
	fr[2] = kind
	binary.BigEndian.PutUint64(fr[3:], seq)
	binary.BigEndian.PutUint32(fr[11:], uint32(len(body)))
	copy(fr[frameHdrLen:], body)
	crc := crc32.ChecksumIEEE(fr[2:15])
	crc = crc32.Update(crc, crc32.IEEETable, fr[frameHdrLen:])
	binary.BigEndian.PutUint32(fr[15:], crc)
	return fr
}

func writeFrame(w io.Writer, kind byte, seq uint64, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("agent: encoding frame: %w", err)
	}
	_, err = w.Write(encodeFrame(kind, seq, body))
	return err
}

// readFrame reads the next valid frame, resynchronizing on corruption:
// a bad magic, unknown kind, or implausible length advances the scan by
// one byte; a CRC mismatch skips the frame. skipped reports the bytes
// discarded before the returned frame (0 on a healthy stream). Errors
// are only I/O-level (EOF, deadline): corruption never surfaces as an
// error, so one mangled frame cannot tear down a connection.
func readFrame(br *bufio.Reader) (kind byte, seq uint64, body []byte, skipped int, err error) {
	for {
		b0, err := br.ReadByte()
		if err != nil {
			return 0, 0, nil, skipped, err
		}
		if b0 != frameMagic0 {
			skipped++
			continue
		}
		// Candidate header: peek the rest so a false positive costs one
		// byte of scan, not a consumed prefix.
		hdr, err := br.Peek(frameHdrLen - 1)
		if err != nil {
			if len(hdr) == 0 || hdr[0] != frameMagic1 {
				skipped++
				continue
			}
			return 0, 0, nil, skipped, err
		}
		if hdr[0] != frameMagic1 {
			skipped++
			continue
		}
		kind = hdr[1]
		n := binary.BigEndian.Uint32(hdr[10:14])
		if !validKind(kind) || n > MaxFrame {
			skipped++
			continue
		}
		seq = binary.BigEndian.Uint64(hdr[2:10])
		want := binary.BigEndian.Uint32(hdr[14:18])
		crc := crc32.ChecksumIEEE(hdr[1:14])
		if _, err := br.Discard(frameHdrLen - 1); err != nil {
			return 0, 0, nil, skipped, err
		}
		body = make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return 0, 0, nil, skipped, err
		}
		if crc32.Update(crc, crc32.IEEETable, body) != want {
			// Corrupt frame (or a false-positive magic inside corrupted
			// bytes): skip it and keep scanning. If the length field
			// itself was corrupted we are now misaligned, and the next
			// magic check resynchronizes.
			mCRCErrors.Inc()
			skipped += frameHdrLen + len(body)
			continue
		}
		return kind, seq, body, skipped, nil
	}
}

// WriteEvent encodes one unsequenced event frame (test and
// single-purpose producers; the Sender assigns sequence numbers).
func WriteEvent(w io.Writer, ev *trace.Event) error {
	return writeFrame(w, frameEvent, 0, ev)
}

// WriteState encodes one unsequenced state-update frame.
func WriteState(w io.Writer, u *StateUpdate) error {
	return writeFrame(w, frameState, 0, u)
}

// ReadEvent decodes one frame, which must be an event frame (test and
// single-purpose consumers; the Receiver handles mixed streams).
func ReadEvent(r io.Reader) (trace.Event, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	kind, _, body, _, err := readFrame(br)
	if err != nil {
		return trace.Event{}, err
	}
	if kind != frameEvent {
		return trace.Event{}, fmt.Errorf("agent: expected event frame, got %q", kind)
	}
	var ev trace.Event
	if err := json.Unmarshal(body, &ev); err != nil {
		return trace.Event{}, fmt.Errorf("agent: decoding event: %w", err)
	}
	return ev, nil
}
