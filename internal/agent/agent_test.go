package agent

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"gretel/internal/amqp"
	"gretel/internal/cluster"
	"gretel/internal/rest"
	"gretel/internal/trace"
)

func pkt(conn uint64, src, dst string, payload []byte) cluster.Packet {
	return cluster.Packet{
		Time:    time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC),
		SrcNode: "src-node", DstNode: "dst-node",
		SrcAddr: src, DstAddr: dst,
		ConnID: conn, Payload: payload,
	}
}

func collect() (*[]trace.Event, Sink) {
	events := &[]trace.Event{}
	return events, func(ev trace.Event) { *events = append(*events, ev) }
}

func restReqBytes(method, path, host string) []byte {
	req := &rest.Request{Method: method, Path: path, Body: []byte(`{}`)}
	req.Header.Set("Host", host)
	return rest.MarshalRequest(req)
}

func restRespBytes(status int, body string) []byte {
	resp := &rest.Response{Status: status, Body: []byte(body)}
	return rest.MarshalResponse(resp)
}

func TestMonitorParsesRESTExchange(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)

	m.HandlePacket(pkt(1, "10.0.0.1:40000", "10.0.0.3:8774",
		restReqBytes("POST", "/v2.1/servers", "nova")))
	m.HandlePacket(pkt(1, "10.0.0.3:8774", "10.0.0.1:40000",
		restRespBytes(201, `{"server":{}}`)))

	if len(*events) != 2 {
		t.Fatalf("events = %d", len(*events))
	}
	req, resp := (*events)[0], (*events)[1]
	if req.Type != trace.RESTRequest || req.API != trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers") {
		t.Fatalf("request event: %+v", req)
	}
	if resp.Type != trace.RESTResponse || resp.Status != 201 || resp.API != req.API {
		t.Fatalf("response event: %+v", resp)
	}
	if m.Parsed != 2 || m.ParseErrors != 0 {
		t.Fatalf("parsed=%d errors=%d", m.Parsed, m.ParseErrors)
	}
}

func TestMonitorNormalizesConcreteIDs(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	m.HandlePacket(pkt(2, "a:1", "b:9292",
		restReqBytes("PUT", "/v2/images/6f1c3b2a-99aa-4b1c-8d77-aabbccddeeff/file", "glance")))
	if got := (*events)[0].API.Path; got != "/v2/images/{id}/file" {
		t.Fatalf("path = %q", got)
	}
}

func TestMonitorFallsBackToPortClassification(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	m.HandlePacket(pkt(3, "a:1", "10.0.0.4:9696", restReqBytes("GET", "/v2.0/ports.json", "")))
	if got := (*events)[0].API.Service; got != trace.SvcNeutron {
		t.Fatalf("service = %v (want port-based neutron)", got)
	}
}

func TestMonitorExtractsErrorText(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	m.HandlePacket(pkt(4, "a:1", "b:9292", restReqBytes("PUT", "/v2/images/1234abcd99/file", "glance")))
	m.HandlePacket(pkt(4, "b:9292", "a:1",
		restRespBytes(413, `{"error": {"code": 413, "message": "Request Entity Too Large"}}`)))
	resp := (*events)[1]
	if resp.ErrorText != "Request Entity Too Large" {
		t.Fatalf("error text = %q", resp.ErrorText)
	}
	// Error body without a message field falls back to the reason phrase.
	m.HandlePacket(pkt(5, "a:1", "b:9292", restReqBytes("GET", "/v2/images", "glance")))
	m.HandlePacket(pkt(5, "b:9292", "a:1", restRespBytes(503, `{}`)))
	if got := (*events)[3].ErrorText; got != "Service Unavailable" {
		t.Fatalf("fallback error text = %q", got)
	}
}

func TestMonitorSplitPackets(t *testing.T) {
	// A message fragmented across packets must reassemble.
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	raw := restReqBytes("GET", "/v2.1/servers/detail", "nova")
	half := len(raw) / 2
	m.HandlePacket(pkt(6, "a:1", "b:8774", raw[:half]))
	if len(*events) != 0 {
		t.Fatal("emitted event from half a message")
	}
	m.HandlePacket(pkt(6, "a:1", "b:8774", raw[half:]))
	if len(*events) != 1 {
		t.Fatalf("events = %d after reassembly", len(*events))
	}
}

func TestMonitorPipelinedMessages(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	raw := append(restReqBytes("GET", "/a", "nova"), restReqBytes("GET", "/b", "nova")...)
	m.HandlePacket(pkt(7, "a:1", "b:8774", raw))
	if len(*events) != 2 {
		t.Fatalf("events = %d, want 2 from one packet", len(*events))
	}
}

func rpcBytes(t *testing.T, methodID uint16, exchange, key, msgID, method, failure string, replyTo string) []byte {
	t.Helper()
	m := &amqp.Message{
		MethodID: methodID, Exchange: exchange, RoutingKey: key,
		Envelope: amqp.Envelope{MsgID: msgID, Method: method, ReplyTo: replyTo, Failure: failure},
	}
	if method != "" {
		m.Envelope.Args = json.RawMessage(`{}`)
	}
	raw, err := amqp.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestMonitorSkipsPublishLegByDefault(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	m.HandlePacket(pkt(8, "a:1", "b:5672",
		rpcBytes(t, amqp.BasicPublish, "nova", "compute", "m1", "build_and_run_instance", "", "reply_nova")))
	if len(*events) != 0 {
		t.Fatal("publish leg reported")
	}
	m.HandlePacket(pkt(9, "b:5672", "c:8775",
		rpcBytes(t, amqp.BasicDeliver, "nova", "compute", "m1", "build_and_run_instance", "", "reply_nova")))
	if len(*events) != 1 {
		t.Fatal("deliver leg not reported")
	}
	ev := (*events)[0]
	if ev.Type != trace.RPCCall || ev.API != trace.RPCAPI(trace.SvcNovaCompute, "build_and_run_instance") {
		t.Fatalf("rpc event: %+v", ev)
	}

	m2 := NewMonitor("n2", sink, nil)
	m2.ReportPublishLeg = true
	m2.HandlePacket(pkt(10, "a:1", "b:5672",
		rpcBytes(t, amqp.BasicPublish, "nova", "compute", "m2", "x", "", "reply_nova")))
	if len(*events) != 2 {
		t.Fatal("publish leg not reported when enabled")
	}
}

func TestMonitorRPCCastAndReply(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	// Cast: method set, no reply-to.
	m.HandlePacket(pkt(11, "b:5672", "c:8775",
		rpcBytes(t, amqp.BasicDeliver, "nova", "topic.nova", "hb1", "report_state", "", "")))
	if (*events)[0].Type != trace.RPCCast {
		t.Fatalf("cast type = %v", (*events)[0].Type)
	}
	// Call then failed reply pairs by msg id and carries the failure text.
	m.HandlePacket(pkt(12, "b:5672", "c:8775",
		rpcBytes(t, amqp.BasicDeliver, "cinder", "topic.cinder", "m9", "create_volume", "", "reply_cinder")))
	m.HandlePacket(pkt(13, "b:5672", "d:8776",
		rpcBytes(t, amqp.BasicDeliver, "", "reply_cinder", "m9", "", "VolumeBackendAPIException: boom", "")))
	reply := (*events)[2]
	if reply.Type != trace.RPCReply || reply.Status == 0 {
		t.Fatalf("reply event: %+v", reply)
	}
	if reply.API != trace.RPCAPI(trace.SvcCinder, "create_volume") {
		t.Fatalf("reply API not paired: %v", reply.API)
	}
	if reply.ErrorText != "VolumeBackendAPIException: boom" {
		t.Fatalf("failure text = %q", reply.ErrorText)
	}
}

func TestMonitorGroundTruthDecoration(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, func(conn uint64, msgID string) (uint64, string) {
		if conn == 20 {
			return 77, "vm-create"
		}
		return 0, ""
	})
	m.HandlePacket(pkt(20, "a:1", "b:8774", restReqBytes("GET", "/v2.1/servers", "nova")))
	if (*events)[0].OpID != 77 || (*events)[0].OpName != "vm-create" {
		t.Fatalf("ground truth missing: %+v", (*events)[0])
	}
}

func TestMonitorAbandonsCorruptStream(t *testing.T) {
	events, sink := collect()
	m := NewMonitor("n1", sink, nil)
	m.HandlePacket(pkt(21, "a:1", "b:8774", []byte("GARBAGE\r\nNoColon\r\n\r\n")))
	if len(*events) != 0 {
		t.Fatal("event from garbage")
	}
	if m.ParseErrors == 0 {
		t.Fatal("parse error not counted")
	}
}

func TestServiceHelpers(t *testing.T) {
	if serviceFromHost("nova") != trace.SvcNova || serviceFromHost("nova:8774") != trace.SvcNova {
		t.Error("serviceFromHost")
	}
	if serviceFromHost("whatever") != trace.SvcUnknown {
		t.Error("serviceFromHost unknown")
	}
	if serviceFromPort("1.2.3.4:9696") != trace.SvcNeutron {
		t.Error("serviceFromPort")
	}
	if serviceFromPort("nonsense") != trace.SvcUnknown || serviceFromPort("1.2.3.4:1") != trace.SvcUnknown {
		t.Error("serviceFromPort unknown")
	}
	cases := map[[2]string]trace.Service{
		{"nova", "compute"}:             trace.SvcNovaCompute,
		{"nova", "compute.compute-2"}:   trace.SvcNovaCompute,
		{"neutron", "q-agent-notifier"}: trace.SvcNeutronAgent,
		{"cinder", "topic.cinder"}:      trace.SvcCinder,
		{"", "reply_nova"}:              trace.SvcNova,
		{"glance", "weird"}:             trace.SvcGlance, // exchange fallback
		{"unknown-exch", "weird"}:       trace.SvcUnknown,
	}
	for in, want := range cases {
		if got := serviceFromTopic(in[0], in[1]); got != want {
			t.Errorf("serviceFromTopic(%q,%q) = %v, want %v", in[0], in[1], got, want)
		}
	}
}

func TestCheckTCPReachable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if !CheckTCPReachable(addr, time.Second) {
		t.Fatal("live listener reported unreachable")
	}
	ln.Close()
	if CheckTCPReachable(addr, 200*time.Millisecond) {
		t.Fatal("closed listener reported reachable")
	}
}

func TestOwnerPolicyExactlyOnceWithPairing(t *testing.T) {
	// Two per-node monitors each see both directions of a REST exchange;
	// the owner policy must yield exactly one request and one response
	// event, both with a paired API on the response.
	var events []trace.Event
	sink := func(ev trace.Event) { events = append(events, ev) }
	mkMon := func(node string) *Monitor {
		m := NewMonitor(node, sink, nil)
		m.Emit = OwnerPolicy(node)
		return m
	}
	client := mkMon("horizon-node")
	server := mkMon("nova-node")

	req := pkt(1, "10.0.0.1:40000", "10.0.0.3:8774", restReqBytes("POST", "/v2.1/servers", "nova"))
	req.SrcNode, req.DstNode = "horizon-node", "nova-node"
	resp := pkt(1, "10.0.0.3:8774", "10.0.0.1:40000", restRespBytes(500, `{"error":{"message":"boom"}}`))
	resp.SrcNode, resp.DstNode = "nova-node", "horizon-node"

	for _, p := range []cluster.Packet{req, resp} {
		client.HandlePacket(p)
		server.HandlePacket(p)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2 (exactly once)", len(events))
	}
	if events[0].Type != trace.RESTRequest || events[1].Type != trace.RESTResponse {
		t.Fatalf("event types: %v %v", events[0].Type, events[1].Type)
	}
	if events[1].API.Zero() || events[1].API.Path != "/v2.1/servers" {
		t.Fatalf("response not paired: %+v", events[1].API)
	}
	if events[1].ErrorText != "boom" {
		t.Fatalf("error text = %q", events[1].ErrorText)
	}
}
