// TCP transport: the Broccoli analogue (§6) carrying parsed events and
// periodic distributed-state updates (collectd snapshots + watcher
// status) from node agents to the analyzer service as kind-tagged,
// length-prefixed JSON frames. TCP preserves per-agent ordering, which
// the event receiver relies on (§5.2).

package agent

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

// Transport telemetry. frames_dropped counts events/states discarded on
// a sender whose connection already failed (sticky error);
// connections_dropped counts receiver-side streams abandoned on framing
// or decode errors — the failure path that used to be a bare return.
var (
	mFramesSent    = telemetry.GetCounter("transport.frames_sent")
	mFramesRecv    = telemetry.GetCounter("transport.frames_received")
	mFramesDropped = telemetry.GetCounter("transport.frames_dropped")
	mReconnects    = telemetry.GetCounter("transport.reconnects")
	mConnsDropped  = telemetry.GetCounter("transport.connections_dropped")
	mDecodeErrors  = telemetry.GetCounter("transport.decode_errors")
	mActiveConns   = telemetry.GetGauge("transport.active_connections")
)

// MaxFrame bounds a single encoded frame (defense against corrupt
// length prefixes).
const MaxFrame = 1 << 22

// Frame kinds on the wire.
const (
	frameEvent byte = 'E'
	frameState byte = 'S'
)

func writeFrame(w io.Writer, kind byte, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("agent: encoding frame: %w", err)
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind := hdr[0]
	if kind != frameEvent && kind != frameState {
		return 0, nil, fmt.Errorf("agent: unknown frame kind %q", kind)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("agent: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return kind, body, nil
}

// WriteEvent encodes one event frame.
func WriteEvent(w io.Writer, ev *trace.Event) error {
	return writeFrame(w, frameEvent, ev)
}

// WriteState encodes one state-update frame.
func WriteState(w io.Writer, u *StateUpdate) error {
	return writeFrame(w, frameState, u)
}

// ReadEvent decodes one frame, which must be an event frame (test and
// single-purpose consumers; the Receiver handles mixed streams).
func ReadEvent(r io.Reader) (trace.Event, error) {
	kind, body, err := readFrame(r)
	if err != nil {
		return trace.Event{}, err
	}
	if kind != frameEvent {
		return trace.Event{}, fmt.Errorf("agent: expected event frame, got %q", kind)
	}
	var ev trace.Event
	if err := json.Unmarshal(body, &ev); err != nil {
		return trace.Event{}, fmt.Errorf("agent: decoding event: %w", err)
	}
	return ev, nil
}

// Sender streams events to the analyzer over one TCP connection. Its Send
// method is safe for concurrent use and satisfies the Sink signature.
type Sender struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	bw   *bufio.Writer
	err  error
}

// Dial connects a sender to the analyzer's event listener.
func Dial(addr string) (*Sender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: dialing analyzer: %w", err)
	}
	return &Sender{addr: addr, conn: conn, bw: bufio.NewWriterSize(conn, 64<<10)}, nil
}

// Reconnect re-dials the analyzer and clears the sticky error so
// subsequent Sends flow again. A no-op when the sender is healthy.
func (s *Sender) Reconnect() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		return nil
	}
	conn, err := net.Dial("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("agent: reconnecting to analyzer: %w", err)
	}
	s.conn.Close()
	s.conn = conn
	s.bw = bufio.NewWriterSize(conn, 64<<10)
	s.err = nil
	mReconnects.Inc()
	return nil
}

// Send writes one event; errors are sticky and reported by Close.
func (s *Sender) Send(ev trace.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		mFramesDropped.Inc()
		return
	}
	if s.err = WriteEvent(s.bw, &ev); s.err != nil {
		s.failLocked()
		return
	}
	mFramesSent.Inc()
}

// SendState writes one state update; errors are sticky.
func (s *Sender) SendState(u StateUpdate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		mFramesDropped.Inc()
		return
	}
	if s.err = WriteState(s.bw, &u); s.err != nil {
		s.failLocked()
		return
	}
	mFramesSent.Inc()
}

// failLocked counts the frame lost to a fresh transport error and logs
// the first occurrence; the caller holds s.mu and has set s.err.
func (s *Sender) failLocked() {
	mFramesDropped.Inc()
	telemetry.LogFirst("transport.send", "agent: send to %s failed: %v; dropping frames until Reconnect", s.addr, s.err)
}

// Flush pushes buffered frames to the socket.
func (s *Sender) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Close flushes and closes the connection, returning the first error
// encountered during the sender's lifetime.
func (s *Sender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw != nil {
		if err := s.bw.Flush(); err != nil && s.err == nil {
			s.err = err
		}
	}
	if cerr := s.conn.Close(); cerr != nil && s.err == nil {
		s.err = cerr
	}
	return s.err
}

// Receiver accepts agent connections and forwards their events, in
// per-connection arrival order, to a single handler goroutine.
type Receiver struct {
	ln      net.Listener
	events  chan trace.Event
	states  chan StateUpdate
	wg      sync.WaitGroup
	closing chan struct{}
}

// Listen starts a receiver on addr (e.g. ":6166").
func Listen(addr string) (*Receiver, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: listening on %s: %w", addr, err)
	}
	r := &Receiver{
		ln:      ln,
		events:  make(chan trace.Event, 4096),
		states:  make(chan StateUpdate, 64),
		closing: make(chan struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the bound listen address.
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

// Events is the merged event stream. It closes after Close is called and
// all connections drain.
func (r *Receiver) Events() <-chan trace.Event { return r.events }

// States is the merged state-update stream. It closes with the receiver.
func (r *Receiver) States() <-chan StateUpdate { return r.states }

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go r.serve(conn)
	}
}

func (r *Receiver) serve(conn net.Conn) {
	defer r.wg.Done()
	defer conn.Close()
	mActiveConns.Add(1)
	defer mActiveConns.Add(-1)
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			if err != io.EOF {
				// Mid-frame truncation or a corrupt header: the stream is
				// unrecoverable, but the loss must not be silent.
				mConnsDropped.Inc()
				telemetry.LogFirst("transport.drop",
					"agent: dropping connection from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		mFramesRecv.Inc()
		switch kind {
		case frameEvent:
			var ev trace.Event
			if derr := json.Unmarshal(body, &ev); derr != nil {
				mDecodeErrors.Inc()
				mConnsDropped.Inc()
				telemetry.LogFirst("transport.decode",
					"agent: dropping connection from %s: undecodable event frame: %v", conn.RemoteAddr(), derr)
				return
			}
			select {
			case r.events <- ev:
			case <-r.closing:
				return
			}
		case frameState:
			var u StateUpdate
			if derr := json.Unmarshal(body, &u); derr != nil {
				mDecodeErrors.Inc()
				mConnsDropped.Inc()
				telemetry.LogFirst("transport.decode",
					"agent: dropping connection from %s: undecodable state frame: %v", conn.RemoteAddr(), derr)
				return
			}
			select {
			case r.states <- u:
			case <-r.closing:
				return
			}
		}
	}
}

// Close stops accepting, terminates connection readers, and closes the
// event channel once they exit.
func (r *Receiver) Close() {
	close(r.closing)
	r.ln.Close()
	r.wg.Wait()
	close(r.events)
	close(r.states)
}
