// TCP transport: the Broccoli analogue (§6) carrying parsed events and
// periodic distributed-state updates (collectd snapshots + watcher
// status) from node agents to the analyzer service as kind-tagged,
// length-prefixed JSON frames (frame.go). TCP preserves per-agent
// ordering, which the event receiver relies on (§5.2).
//
// The plane is self-healing: the sender spools frames into a bounded
// in-memory ring and a background loop redials with exponential backoff,
// replaying the ring on reconnect so a broker/analyzer blip loses
// nothing up to the ring bound (overflow is shed oldest-first and
// counted). The receiver deduplicates replayed frames by per-agent
// sequence number, records explicit gap records for frames that never
// arrived, skips corrupt frames via CRC + magic resync instead of
// dropping the connection, and declares agents down when heartbeats
// stop — all surfaced on the Health channel so the analyzer can degrade
// gracefully (core.Analyzer.NodeGap).

package agent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

// Transport telemetry. frames_shed counts spool-ring overflow on a
// disconnected sender (the only sender-side loss); frames_missed is the
// receiver-side count of sequence numbers that never arrived (the
// ground truth for "zero silent loss": delivered + missed = assigned).
var (
	mFramesSent     = telemetry.GetCounter("transport.frames_sent")
	mFramesReplayed = telemetry.GetCounter("transport.frames_replayed")
	mFramesRecv     = telemetry.GetCounter("transport.frames_received")
	mFramesDropped  = telemetry.GetCounter("transport.frames_dropped")
	mFramesShed     = telemetry.GetCounter("transport.frames_shed")
	mFramesDup      = telemetry.GetCounter("transport.frames_dup")
	mFramesMissed   = telemetry.GetCounter("transport.frames_missed")
	mGaps           = telemetry.GetCounter("transport.gaps")
	mReconnects     = telemetry.GetCounter("transport.reconnects")
	mConnsDropped   = telemetry.GetCounter("transport.connections_dropped")
	mDecodeErrors   = telemetry.GetCounter("transport.decode_errors")
	mCRCErrors      = telemetry.GetCounter("transport.crc_errors")
	mResyncs        = telemetry.GetCounter("transport.resyncs")
	mBytesSkipped   = telemetry.GetCounter("transport.bytes_skipped")
	mHeartbeats     = telemetry.GetCounter("transport.heartbeats")
	mAgentDown      = telemetry.GetCounter("transport.agent_down")
	mAgentUp        = telemetry.GetCounter("transport.agent_up")
	mHealthDropped  = telemetry.GetCounter("transport.health_dropped")
	mActiveConns    = telemetry.GetGauge("transport.active_connections")
)

// SenderConfig tunes the resilient sender. The zero value (plus Addr)
// is production-ready; tests tighten the timers.
type SenderConfig struct {
	// Addr is the analyzer's event listener address.
	Addr string
	// Resolve, when set, is consulted before every dial attempt and
	// overrides Addr — the federation hook: a coordinator can move the
	// agent to a replacement analyzer and the next redial lands there,
	// with the spill ring replaying everything retained. Errors and
	// empty results fall back to Addr (or count as a failed attempt when
	// Addr is empty) and go through the normal backoff.
	Resolve func() (string, error)
	// Session names this sender incarnation in hello frames (default:
	// wall-clock nanoseconds at Dial). A receiver that has never seen
	// the session — a fresh replacement analyzer, or the same analyzer
	// after an agent restart — adopts the hello's base sequence instead
	// of misreading the unseen history as a gap.
	Session uint64
	// Agent names this agent in hello/heartbeat frames; the receiver
	// keys sequence tracking and liveness by it. Default "agent".
	Agent string
	// Ring bounds the in-memory spill ring in frames (default 4096).
	// The ring retains recent frames even after they are written, so a
	// reconnect can replay everything a dying connection may have lost.
	Ring int
	// DialTimeout bounds one dial attempt (default 3s).
	DialTimeout time.Duration
	// WriteTimeout is the per-write deadline (default 10s); a stalled
	// analyzer surfaces as a write error and triggers a redial.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential redial backoff
	// (defaults 50ms and 3s); each delay adds seeded jitter.
	BackoffMin, BackoffMax time.Duration
	// Heartbeat is the liveness frame period (default 1s, negative
	// disables). Heartbeats carry the sender's sequence high-water mark
	// so the receiver can detect shed frames even on an idle stream.
	Heartbeat time.Duration
	// DrainTimeout bounds Close's final flush (default 2s).
	DrainTimeout time.Duration
	// Seed drives backoff jitter (default 1).
	Seed int64
	// Dialer overrides the TCP dial (tests, chaos injection).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

func (c *SenderConfig) defaults() {
	if c.Agent == "" {
		c.Agent = "agent"
	}
	if c.Ring <= 0 {
		c.Ring = 4096
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 3 * time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Session == 0 {
		c.Session = uint64(time.Now().UnixNano())
	}
	if c.Dialer == nil {
		c.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
}

// wireFrame is one encoded frame retained in the spill ring.
type wireFrame struct {
	seq  uint64
	data []byte
}

// SenderStats is a point-in-time view of the sender's sequence space.
type SenderStats struct {
	// Assigned is the highest sequence number handed out.
	Assigned uint64
	// Flushed is the highest sequence number written and flushed to a
	// socket at least once (delivery is confirmed only by the receiver).
	Flushed uint64
	// Shed counts frames evicted from the ring before they were ever
	// written — the sender's only deliberate loss, taken oldest-first
	// when a disconnection outlasts the ring.
	Shed uint64
}

// Sender streams events to the analyzer, surviving analyzer restarts
// and network faults. Send and SendState never block and never fail:
// frames enter a bounded ring drained by a background writer that
// redials with backoff and replays the ring after every reconnect.
// Safe for concurrent use.
type Sender struct {
	cfg SenderConfig

	mu      sync.Mutex
	ring    []wireFrame
	head, n int    // circular: ring[head..head+n) holds contiguous seqs
	nextSeq uint64 // last assigned sequence number
	cursor  uint64 // next seq to write on the current connection
	maxSent uint64 // highest seq ever written (replay detection)
	flushed uint64 // highest seq flushed to a socket
	shed    uint64
	lastErr error
	closed  bool

	kick      chan struct{}
	stop      chan struct{}
	done      chan struct{}
	connected atomic.Bool
	firstConn chan struct{}
	connOnce  sync.Once
	lastAddr  atomic.Value // string: most recently resolved target
}

// target is the address the sender is currently aimed at — the last
// Resolve result, falling back to the static Addr. For messages.
func (s *Sender) target() string {
	if a, ok := s.lastAddr.Load().(string); ok && a != "" {
		return a
	}
	return s.cfg.Addr
}

// Dial starts a sender for the analyzer's event listener with default
// configuration. Dialing is lazy: the sender is usable immediately and
// connects (and keeps reconnecting) in the background — use
// WaitConnected to bound startup ordering.
func Dial(addr string) (*Sender, error) {
	return DialConfig(SenderConfig{Addr: addr})
}

// DialConfig starts a sender with explicit configuration.
func DialConfig(cfg SenderConfig) (*Sender, error) {
	cfg.defaults()
	if cfg.Addr == "" && cfg.Resolve == nil {
		return nil, fmt.Errorf("agent: sender needs an address or a resolver")
	}
	s := &Sender{
		cfg:       cfg,
		ring:      make([]wireFrame, cfg.Ring),
		cursor:    1,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		firstConn: make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// WaitConnected blocks until the sender establishes its first
// connection, or the timeout passes.
func (s *Sender) WaitConnected(timeout time.Duration) error {
	select {
	case <-s.firstConn:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("agent: no connection to %s within %v: %v", s.target(), timeout, s.err())
	}
}

// Connected reports whether a connection is currently established.
func (s *Sender) Connected() bool { return s.connected.Load() }

// Stats returns a snapshot of the sequence space.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SenderStats{Assigned: s.nextSeq, Flushed: s.flushed, Shed: s.shed}
}

func (s *Sender) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

func (s *Sender) setErr(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// Send spools one event. It never blocks and never fails; if the ring
// is full the oldest unsent frame is shed and counted.
func (s *Sender) Send(ev trace.Event) { s.enqueue(frameEvent, &ev) }

// SendState spools one state update.
func (s *Sender) SendState(u StateUpdate) { s.enqueue(frameState, &u) }

func (s *Sender) enqueue(kind byte, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		mFramesDropped.Inc()
		telemetry.LogFirst("transport.encode", "agent: encoding frame: %v; dropping", err)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		mFramesDropped.Inc()
		return
	}
	s.nextSeq++
	fr := wireFrame{seq: s.nextSeq, data: encodeFrame(kind, s.nextSeq, body)}
	if s.n == len(s.ring) {
		old := s.ring[s.head]
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		if old.seq >= s.cursor {
			// Evicted before it was ever written: deliberate, counted
			// loss. The receiver will see the sequence gap too.
			s.shed++
			s.cursor = old.seq + 1
			mFramesShed.Inc()
			telemetry.LogFirst("transport.shed",
				"agent: spill ring full (%d frames) while disconnected from %s; shedding oldest", len(s.ring), s.target())
		}
	}
	s.ring[(s.head+s.n)%len(s.ring)] = fr
	s.n++
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// takeFrame hands the writer the next unwritten frame, if any.
func (s *Sender) takeFrame() (wireFrame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return wireFrame{}, false
	}
	oldest := s.ring[s.head].seq
	if s.cursor < oldest {
		s.cursor = oldest
	}
	if s.cursor > s.nextSeq {
		return wireFrame{}, false
	}
	fr := s.ring[(s.head+int(s.cursor-oldest))%len(s.ring)]
	s.cursor++
	return fr, true
}

// helloBase is the sequence number immediately before the first frame
// this connection can replay: the oldest retained ring entry minus one,
// or the full assigned space when the ring is empty. Frames at or below
// it are gone from this sender for good (shed, or consumed by a previous
// session) — a receiver meeting this session for the first time starts
// counting after it instead of calling the unseen prefix a gap.
func (s *Sender) helloBase() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return s.ring[s.head].seq - 1
	}
	return s.nextSeq
}

// rewind points the write cursor at the oldest retained frame — called
// on every reconnect so frames a dying connection may have swallowed
// are replayed (the receiver deduplicates by sequence number).
func (s *Sender) rewind() {
	s.mu.Lock()
	if s.n > 0 {
		s.cursor = s.ring[s.head].seq
	} else {
		s.cursor = s.nextSeq + 1
	}
	s.mu.Unlock()
}

// noteWritten updates sent/replayed accounting after a frame write.
func (s *Sender) noteWritten(seq uint64) {
	s.mu.Lock()
	if seq <= s.maxSent {
		mFramesReplayed.Inc()
	} else {
		s.maxSent = seq
		mFramesSent.Inc()
	}
	s.mu.Unlock()
}

// noteFlushed records that everything written so far reached the socket.
func (s *Sender) noteFlushed() {
	s.mu.Lock()
	if w := s.cursor - 1; w > s.flushed {
		s.flushed = w
	}
	s.mu.Unlock()
}

// errSenderStopped signals an orderly stop through the writer loop.
var errSenderStopped = fmt.Errorf("agent: sender stopped")

// run is the background writer: dial with backoff, stream the ring,
// redial on error. One goroutine per sender.
func (s *Sender) run() {
	defer close(s.done)
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	first := true
	for {
		conn := s.dialLoop(rng)
		if conn == nil {
			return
		}
		if !first {
			mReconnects.Inc()
		}
		first = false
		s.connOnce.Do(func() { close(s.firstConn) })
		s.connected.Store(true)
		err := s.stream(conn)
		s.connected.Store(false)
		conn.Close()
		if err == errSenderStopped {
			return
		}
		s.setErr(err)
		telemetry.LogFirst("transport.send",
			"agent: connection to %s failed: %v; spooling and redialing", s.target(), err)
	}
}

// dialLoop dials until it succeeds or the sender stops, backing off
// exponentially with jitter between attempts. The target address is
// re-resolved before every attempt, so a reassignment takes effect on
// the very next redial.
func (s *Sender) dialLoop(rng *rand.Rand) net.Conn {
	backoff := s.cfg.BackoffMin
	for {
		select {
		case <-s.stop:
			return nil
		default:
		}
		addr := s.cfg.Addr
		var err error
		if s.cfg.Resolve != nil {
			if a, rerr := s.cfg.Resolve(); rerr == nil && a != "" {
				addr = a
			} else if addr == "" {
				if rerr == nil {
					rerr = fmt.Errorf("agent: resolver returned no address")
				}
				err = rerr
			}
		}
		if err == nil {
			s.lastAddr.Store(addr)
			var conn net.Conn
			conn, err = s.cfg.Dialer(addr, s.cfg.DialTimeout)
			if err == nil {
				return conn
			}
		}
		s.setErr(err)
		telemetry.LogFirst("transport.dial",
			"agent: dialing %s: %v; retrying with backoff", s.target(), err)
		delay := backoff + time.Duration(rng.Int63n(int64(backoff)+1))
		select {
		case <-s.stop:
			return nil
		case <-time.After(delay):
		}
		if backoff *= 2; backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// stream drives one connection: hello, ring replay, live frames, and
// idle heartbeats, until a write fails or the sender stops.
func (s *Sender) stream(conn net.Conn) error {
	bw := bufio.NewWriterSize(conn, 64<<10)
	write := func(frame []byte) error {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_, err := bw.Write(frame)
		return err
	}
	hello, _ := json.Marshal(helloBody{Agent: s.cfg.Agent, Session: s.cfg.Session, Base: s.helloBase()})
	if err := write(encodeFrame(frameHello, 0, hello)); err != nil {
		return err
	}
	s.rewind()

	var hbC <-chan time.Time
	if s.cfg.Heartbeat > 0 {
		t := time.NewTicker(s.cfg.Heartbeat)
		defer t.Stop()
		hbC = t.C
	}
	for {
		if fr, ok := s.takeFrame(); ok {
			if err := write(fr.data); err != nil {
				return err
			}
			s.noteWritten(fr.seq)
			continue
		}
		// Drained: push buffered frames out before waiting.
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := bw.Flush(); err != nil {
			return err
		}
		s.noteFlushed()
		select {
		case <-s.kick:
		case <-hbC:
			s.mu.Lock()
			seq, shed := s.nextSeq, s.shed
			drained := s.cursor > s.nextSeq || s.n == 0
			s.mu.Unlock()
			if !drained {
				continue // frames are flowing; they carry liveness
			}
			body, _ := json.Marshal(heartbeatBody{Agent: s.cfg.Agent, Shed: shed})
			if err := write(encodeFrame(frameHeartbeat, seq, body)); err != nil {
				return err
			}
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err := bw.Flush(); err != nil {
				return err
			}
			mHeartbeats.Inc()
		case <-s.stop:
			bw.Flush()
			return errSenderStopped
		}
	}
}

// Drain blocks until every frame spooled so far has been written and
// flushed to a socket at least once, or the timeout passes (e.g. the
// analyzer is unreachable and frames are still spooled).
func (s *Sender) Drain(timeout time.Duration) error {
	s.mu.Lock()
	target := s.nextSeq
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		flushed, shed := s.flushed, s.shed
		s.mu.Unlock()
		// Shed frames can never flush; they are accounted, not awaited.
		if flushed+shed >= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("agent: drain timed out with %d frames unflushed (analyzer %s unreachable?)",
				target-flushed, s.target())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close drains spooled frames (bounded by DrainTimeout), stops the
// writer, and returns the drain error if the flush was incomplete.
func (s *Sender) Close() error {
	err := s.Drain(s.cfg.DrainTimeout)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return err
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	return err
}

// HealthKind classifies a monitoring-plane health record.
type HealthKind uint8

const (
	// HealthGap records frames lost for an agent (Missing counts them).
	HealthGap HealthKind = iota + 1
	// HealthDown marks an agent that stopped heartbeating.
	HealthDown
	// HealthUp marks an agent that resumed after being down.
	HealthUp
)

// String implements fmt.Stringer.
func (k HealthKind) String() string {
	switch k {
	case HealthGap:
		return "gap"
	case HealthDown:
		return "down"
	case HealthUp:
		return "up"
	default:
		return "unknown"
	}
}

// Health is one monitoring-plane health record: an explicit gap in an
// agent's frame sequence, or a liveness transition.
type Health struct {
	Kind    HealthKind
	Agent   string
	Missing uint64
	At      time.Time
}

// AgentStat is the receiver's view of one agent's stream.
type AgentStat struct {
	// LastSeq is the sequence high-water mark seen (frames or
	// heartbeat marks).
	LastSeq uint64
	// Missing counts sequence numbers that never arrived — every one
	// was surfaced as a HealthGap record.
	Missing uint64
	// Dups counts replayed frames deduplicated after reconnects.
	Dups uint64
	// Down reports whether the agent is currently declared down.
	Down bool
}

// agentState tracks one agent across connections. session pins the
// sender incarnation the sequence accounting belongs to; counters are
// receiver-lifetime totals and survive session changes.
type agentState struct {
	session  uint64
	lastSeq  uint64
	missing  uint64
	dups     uint64
	lastSeen time.Time
	down     bool
}

// ReceiverConfig tunes the hardened receiver.
type ReceiverConfig struct {
	// Addr is the listen address (e.g. ":6166").
	Addr string
	// DownAfter declares an agent down when no frame (heartbeats
	// included) arrives for this long. 0 disables liveness tracking.
	DownAfter time.Duration
	// ReadTimeout is the per-frame read deadline (default 30s, negative
	// disables). It bounds how long a corrupt length prefix can stall a
	// connection: the read times out, the connection drops, and the
	// sender replays through a fresh one.
	ReadTimeout time.Duration
}

// Receiver accepts agent connections and forwards their events, in
// per-connection arrival order, to a single handler goroutine. Corrupt
// frames are skipped via CRC + resync, replayed frames are
// deduplicated per agent, and losses surface as Health records rather
// than silence.
type Receiver struct {
	ln        net.Listener
	cfg       ReceiverConfig
	events    chan trace.Event
	states    chan StateUpdate
	health    chan Health
	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	agents   map[string]*agentState
	conns    map[net.Conn]struct{}
	shutdown bool
}

// Listen starts a receiver on addr with default configuration (no
// liveness tracking).
func Listen(addr string) (*Receiver, error) {
	return ListenConfig(ReceiverConfig{Addr: addr})
}

// ListenConfig starts a receiver with explicit configuration.
func ListenConfig(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("agent: listening on %s: %w", cfg.Addr, err)
	}
	r := &Receiver{
		ln:      ln,
		cfg:     cfg,
		events:  make(chan trace.Event, 4096),
		states:  make(chan StateUpdate, 64),
		health:  make(chan Health, 256),
		closing: make(chan struct{}),
		agents:  make(map[string]*agentState),
		conns:   make(map[net.Conn]struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	if cfg.DownAfter > 0 {
		r.wg.Add(1)
		go r.liveness()
	}
	return r, nil
}

// Addr returns the bound listen address.
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

// Events is the merged event stream. It closes after Close is called and
// all connections drain.
func (r *Receiver) Events() <-chan trace.Event { return r.events }

// DrainEvents appends events already buffered in the merged stream to
// buf without blocking, up to max total entries, and returns the
// extended slice. Batched drivers (replay.DriveTransport) take one
// event with a blocking receive, then top the batch up from here —
// amortizing the analyzer's sharded fan-out at high rate while adding
// no latency when the stream is sparse. Safe to call after the stream
// closed (it simply stops appending).
func (r *Receiver) DrainEvents(buf []trace.Event, max int) []trace.Event {
	for len(buf) < max {
		select {
		case ev, ok := <-r.events:
			if !ok {
				return buf
			}
			buf = append(buf, ev)
		default:
			return buf
		}
	}
	return buf
}

// States is the merged state-update stream. It closes with the receiver.
func (r *Receiver) States() <-chan StateUpdate { return r.states }

// Health is the stream of gap and liveness records. It closes with the
// receiver; if nobody consumes it, records are dropped (and counted)
// rather than blocking ingest — totals stay available via AgentStats.
func (r *Receiver) Health() <-chan Health { return r.health }

// AgentStats snapshots per-agent stream accounting.
func (r *Receiver) AgentStats() map[string]AgentStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]AgentStat, len(r.agents))
	for name, st := range r.agents {
		out[name] = AgentStat{LastSeq: st.lastSeq, Missing: st.missing, Dups: st.dups, Down: st.down}
	}
	return out
}

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.mu.Lock()
		if r.shutdown {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.serve(conn)
	}
}

// state returns the tracker for an agent; r.mu must be held.
func (r *Receiver) state(agent string) *agentState {
	st := r.agents[agent]
	if st == nil {
		st = &agentState{}
		r.agents[agent] = st
	}
	return st
}

// emit delivers a health record without ever blocking ingest.
func (r *Receiver) emit(h Health) {
	select {
	case r.health <- h:
	default:
		mHealthDropped.Inc()
	}
}

// touchLocked refreshes liveness and flips a down agent back up; r.mu
// must be held.
func (r *Receiver) touchLocked(st *agentState, agent string, now time.Time) {
	st.lastSeen = now
	if st.down {
		st.down = false
		mAgentUp.Inc()
		r.emit(Health{Kind: HealthUp, Agent: agent, At: now})
	}
}

// hello folds a connection's hello frame into the agent's tracker. A
// session this receiver has not seen — the agent restarted, or it was
// reassigned here from another analyzer whose history we never received
// — adopts the hello's base sequence outright: the stream genuinely
// starts there, and the unseen prefix is not this receiver's loss. A
// repeated hello for the session already being tracked is a reconnect;
// a base that moved past lastSeq means frames were shed from the ring
// while disconnected and can never be replayed, which is a real gap.
// Session-less hellos (legacy senders) keep the old behavior, where
// admit treats any backward jump as duplicates and any forward jump as
// a gap.
func (r *Receiver) hello(agent string, session, base uint64) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(agent)
	r.touchLocked(st, agent, now)
	if session == 0 {
		return
	}
	if st.session != session {
		st.session = session
		st.lastSeq = base
		return
	}
	if base > st.lastSeq {
		miss := base - st.lastSeq
		st.lastSeq = base
		st.missing += miss
		mGaps.Inc()
		mFramesMissed.Add(miss)
		r.emit(Health{Kind: HealthGap, Agent: agent, Missing: miss, At: now})
	}
}

// admit applies per-agent sequence tracking to a payload frame:
// duplicates (replays already seen) are rejected, gaps are recorded and
// surfaced. Unsequenced frames (seq 0) always pass.
func (r *Receiver) admit(agent string, seq uint64) bool {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(agent)
	r.touchLocked(st, agent, now)
	if seq == 0 {
		return true
	}
	if seq <= st.lastSeq {
		st.dups++
		mFramesDup.Inc()
		return false
	}
	if miss := seq - st.lastSeq - 1; miss > 0 {
		st.missing += miss
		mGaps.Inc()
		mFramesMissed.Add(miss)
		r.emit(Health{Kind: HealthGap, Agent: agent, Missing: miss, At: now})
	}
	st.lastSeq = seq
	return true
}

// noteHeartbeat folds a liveness frame in: the heartbeat's sequence is
// the sender's high-water mark, so a receiver behind it has lost frames
// that will never be replayed on this connection — an explicit gap.
func (r *Receiver) noteHeartbeat(agent string, seq uint64) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(agent)
	r.touchLocked(st, agent, now)
	if seq > st.lastSeq {
		miss := seq - st.lastSeq
		st.lastSeq = seq
		st.missing += miss
		mGaps.Inc()
		mFramesMissed.Add(miss)
		r.emit(Health{Kind: HealthGap, Agent: agent, Missing: miss, At: now})
	}
}

// liveness declares agents down when their frames stop.
func (r *Receiver) liveness() {
	defer r.wg.Done()
	period := r.cfg.DownAfter / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-r.closing:
			return
		case <-tick.C:
			now := time.Now()
			r.mu.Lock()
			for name, st := range r.agents {
				if !st.down && now.Sub(st.lastSeen) > r.cfg.DownAfter {
					st.down = true
					mAgentDown.Inc()
					telemetry.LogFirst("transport.down",
						"agent: %s went dark (no frames for %v)", name, r.cfg.DownAfter)
					r.emit(Health{Kind: HealthDown, Agent: name, At: now})
				}
			}
			r.mu.Unlock()
		}
	}
}

func (r *Receiver) serve(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()
	mActiveConns.Add(1)
	defer mActiveConns.Add(-1)
	br := bufio.NewReaderSize(conn, 64<<10)
	// Until a hello identifies the agent, track by remote address.
	agent := "conn:" + conn.RemoteAddr().String()
	for {
		if rt := r.cfg.ReadTimeout; rt > 0 {
			conn.SetReadDeadline(time.Now().Add(rt))
		}
		kind, seq, body, skipped, err := readFrame(br)
		if skipped > 0 {
			mResyncs.Inc()
			mBytesSkipped.Add(uint64(skipped))
			telemetry.LogFirst("transport.resync",
				"agent: corrupt bytes from %s (%s): skipped %d resynchronizing", conn.RemoteAddr(), agent, skipped)
		}
		if err != nil {
			if err != io.EOF {
				mConnsDropped.Inc()
				telemetry.LogFirst("transport.drop",
					"agent: dropping connection from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		mFramesRecv.Inc()
		switch kind {
		case frameHello:
			var h helloBody
			if json.Unmarshal(body, &h) == nil && h.Agent != "" {
				agent = h.Agent
			}
			r.hello(agent, h.Session, h.Base)
		case frameHeartbeat:
			var h heartbeatBody
			if json.Unmarshal(body, &h) == nil && h.Agent != "" {
				agent = h.Agent
			}
			mHeartbeats.Inc()
			r.noteHeartbeat(agent, seq)
		case frameEvent:
			var ev trace.Event
			if derr := json.Unmarshal(body, &ev); derr != nil {
				mDecodeErrors.Inc()
				telemetry.LogFirst("transport.decode",
					"agent: undecodable event frame from %s: %v; skipping", conn.RemoteAddr(), derr)
				continue
			}
			if !r.admit(agent, seq) {
				continue
			}
			select {
			case r.events <- ev:
			case <-r.closing:
				return
			}
		case frameState:
			var u StateUpdate
			if derr := json.Unmarshal(body, &u); derr != nil {
				mDecodeErrors.Inc()
				telemetry.LogFirst("transport.decode",
					"agent: undecodable state frame from %s: %v; skipping", conn.RemoteAddr(), derr)
				continue
			}
			if !r.admit(agent, seq) {
				continue
			}
			select {
			case r.states <- u:
			case <-r.closing:
				return
			}
		}
	}
}

// Close stops accepting, terminates connection readers (even ones
// blocked handing frames to a consumer that already stopped reading, or
// fed a steady heartbeat stream that would otherwise keep them reading
// forever), and closes the event, state, and health channels once they
// exit. Senders see the closed connections as a failure and redial —
// with a Resolve hook, onto whatever replacement they are assigned.
// Idempotent: failover paths close a dead member's receiver from both
// the kill site and the shutdown sweep.
func (r *Receiver) Close() {
	r.closeOnce.Do(r.close)
}

func (r *Receiver) close() {
	close(r.closing)
	r.ln.Close()
	r.mu.Lock()
	r.shutdown = true
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	close(r.events)
	close(r.states)
	close(r.health)
}
