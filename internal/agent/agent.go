// Package agent implements GRETEL's distributed monitoring agents — the
// Bro analogue of §5.1/§6: passive taps that parse raw REST and RPC wire
// bytes into events, resource pollers, and software-dependency watchers.
//
// The network agent reconstructs per-connection byte streams from tapped
// packets and parses them incrementally, extracting only header-level
// metadata: the API (verb + normalized URI, or RPC method + topic), the
// endpoints, status codes, and error excerpts found by lightweight
// regular-expression scans. It never decodes JSON argument payloads.
package agent

import (
	"net"
	"regexp"
	"strings"
	"time"

	"gretel/internal/amqp"
	"gretel/internal/cluster"
	"gretel/internal/rest"
	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

// Monitoring-layer telemetry, aggregated across every Monitor in the
// process (the per-Monitor Parsed/ParseErrors/Ignored fields stay as the
// per-agent view). Emitted events are broken out per destination service
// so an operator can see which OpenStack component dominates the stream.
var (
	mPacketsSeen  = telemetry.GetCounter("agent.packets_seen")
	mPacketsIrrel = telemetry.GetCounter("agent.packets_irrelevant")
	mParsed       = telemetry.GetCounter("agent.packets_parsed")
	mParseErrors  = telemetry.GetCounter("agent.parse_errors")
	mEmittedBySvc = func() []*telemetry.Counter {
		svcs := trace.Services()
		out := make([]*telemetry.Counter, len(svcs)+1) // values are contiguous from SvcUnknown
		out[trace.SvcUnknown] = telemetry.GetCounter("agent.events_emitted.unknown")
		for _, s := range svcs {
			out[s] = telemetry.GetCounter("agent.events_emitted." + s.String())
		}
		return out
	}()
)

// Sink receives parsed events in capture order.
type Sink func(trace.Event)

// GroundTruth optionally decorates events with the evaluation-only
// operation identity. Detectors never read these fields.
type GroundTruth func(connID uint64, msgID string) (opID uint64, opName string)

// errMessageRe extracts the human-readable error from an OpenStack-style
// REST error body — the paper's "lightweight regular expression checks"
// over the payload (§5.3, §6).
var errMessageRe = regexp.MustCompile(`"message"\s*:\s*"([^"]*)"`)

// rpcFailureRe extracts the oslo failure string from an RPC reply body.
var rpcFailureRe = regexp.MustCompile(`"failure"\s*:\s*"([^"]*)"`)

// Monitor is one node-resident network agent. Feed it tapped packets; it
// emits events through the sink. It is driven single-threaded by the
// simulation (or by one reader goroutine per TCP tap in live mode).
type Monitor struct {
	Node string
	// ReportPublishLeg controls whether broker publish frames also emit
	// events. Default false: only deliver frames are reported, so each
	// logical RPC message is counted once despite its two wire hops.
	ReportPublishLeg bool
	// Emit, when set, decides whether a parsed event is reported. The
	// monitor still parses everything it sees (pairing state must stay
	// complete); Emit only gates the sink. Per-node deployments feed both
	// endpoints' agents every packet and use OwnerPolicy so each message
	// is reported exactly once.
	Emit func(ev *trace.Event, pkt *cluster.Packet) bool

	sink  Sink
	truth GroundTruth

	// conns maps connID -> pending request metadata for REST pairing.
	conns map[uint64]*pendingREST
	// calls maps RPC msgID -> API for reply pairing.
	calls map[string]trace.API
	// streams accumulates partial bytes per (connID, direction).
	streams map[streamKey][]byte

	// Parsed counts successfully parsed messages; ParseErrors counts
	// stream bytes abandoned as unparseable; Ignored counts packets
	// dropped by the relevance filter.
	Parsed      uint64
	ParseErrors uint64
	Ignored     uint64
}

type streamKey struct {
	conn uint64
	src  string
}

type pendingREST struct {
	api     trace.API
	src     string
	reqNode string
}

// NewMonitor builds an agent for a node. truth may be nil.
func NewMonitor(node string, sink Sink, truth GroundTruth) *Monitor {
	return &Monitor{
		Node:    node,
		sink:    sink,
		truth:   truth,
		conns:   make(map[uint64]*pendingREST),
		calls:   make(map[string]trace.API),
		streams: make(map[streamKey][]byte),
	}
}

// relevant implements the capture filter: GRETEL monitors only the
// "relevant OpenStack REST and RPC communication" (§5); database traffic
// (MySQL's port) is invisible to it by design — its effects surface
// through API errors and the dependency watchers instead.
func relevant(pkt *cluster.Packet) bool {
	mysqlPort := itoa(cluster.ServicePorts[trace.SvcMySQL])
	for _, addr := range []string{pkt.SrcAddr, pkt.DstAddr} {
		if _, port, ok := strings.Cut(addr, ":"); ok && port == mysqlPort {
			return false
		}
	}
	return true
}

// HandlePacket ingests one tapped packet, reassembling the directional
// byte stream and parsing any complete messages. Irrelevant traffic
// (database protocol) is dropped by the capture filter.
func (m *Monitor) HandlePacket(pkt cluster.Packet) {
	mPacketsSeen.Inc()
	if !relevant(&pkt) {
		m.Ignored++
		mPacketsIrrel.Inc()
		return
	}
	key := streamKey{pkt.ConnID, pkt.SrcAddr}
	buf := append(m.streams[key], pkt.Payload...)
	for len(buf) > 0 {
		n, ok := m.parseOne(pkt, buf)
		if !ok {
			break
		}
		buf = buf[n:]
	}
	if len(buf) == 0 {
		delete(m.streams, key)
	} else {
		m.streams[key] = buf
	}
}

// parseOne attempts to parse a single message from buf, emitting an event
// on success. It reports bytes consumed and whether parsing should
// continue.
func (m *Monitor) parseOne(pkt cluster.Packet, buf []byte) (int, bool) {
	switch {
	case amqp.IsAMQP(buf):
		msg, n, err := amqp.Unmarshal(buf)
		if err != nil {
			if err == amqp.ErrShort {
				return 0, false // wait for more bytes
			}
			m.ParseErrors++
			mParseErrors.Inc()
			return len(buf), false // abandon the stream
		}
		m.Parsed++
		mParsed.Inc()
		m.emitRPC(pkt, msg, n)
		return n, true
	case rest.IsResponse(buf):
		resp, n, err := rest.ParseResponse(buf)
		if err != nil {
			if err == rest.ErrShortMessage {
				return 0, false
			}
			m.ParseErrors++
			mParseErrors.Inc()
			return len(buf), false
		}
		m.Parsed++
		mParsed.Inc()
		m.emitRESTResponse(pkt, resp, n)
		return n, true
	default:
		req, n, err := rest.ParseRequest(buf)
		if err != nil {
			if err == rest.ErrShortMessage {
				return 0, false
			}
			m.ParseErrors++
			mParseErrors.Inc()
			return len(buf), false
		}
		m.Parsed++
		mParsed.Inc()
		m.emitRESTRequest(pkt, req, n)
		return n, true
	}
}

func (m *Monitor) base(pkt cluster.Packet, wire int) trace.Event {
	ev := trace.Event{
		Time:      pkt.Time,
		SrcNode:   pkt.SrcNode,
		DstNode:   pkt.DstNode,
		SrcAddr:   pkt.SrcAddr,
		DstAddr:   pkt.DstAddr,
		ConnID:    pkt.ConnID,
		WireBytes: wire,
	}
	return ev
}

func (m *Monitor) decorate(ev *trace.Event) {
	if m.truth != nil {
		ev.OpID, ev.OpName = m.truth(ev.ConnID, ev.MsgID)
	}
}

// deliver gates and sends one parsed event.
func (m *Monitor) deliver(ev trace.Event, pkt *cluster.Packet) {
	m.decorate(&ev)
	if m.Emit != nil && !m.Emit(&ev, pkt) {
		return
	}
	if svc := int(ev.API.Service); svc < len(mEmittedBySvc) {
		mEmittedBySvc[svc].Inc()
	}
	m.sink(ev)
}

// OwnerPolicy returns the per-node Emit policy: a message is owned by the
// server side of its exchange — requests and RPC deliveries by their
// destination node, responses by their source node — so running one agent
// per node reports every message exactly once with pairing intact.
func OwnerPolicy(node string) func(ev *trace.Event, pkt *cluster.Packet) bool {
	return func(ev *trace.Event, pkt *cluster.Packet) bool {
		switch ev.Type {
		case trace.RESTResponse:
			return pkt.SrcNode == node
		default:
			return pkt.DstNode == node
		}
	}
}

func (m *Monitor) emitRESTRequest(pkt cluster.Packet, req *rest.Request, wire int) {
	svc := serviceFromHost(req.Header.Get("Host"))
	if svc == trace.SvcUnknown {
		svc = serviceFromPort(pkt.DstAddr)
	}
	api := trace.RESTAPI(svc, req.Method, rest.NormalizePath(req.Path))
	m.conns[pkt.ConnID] = &pendingREST{api: api, src: pkt.SrcAddr, reqNode: pkt.SrcNode}
	ev := m.base(pkt, wire)
	ev.Type = trace.RESTRequest
	ev.API = api
	ev.CorrID = req.Header.Get("X-Openstack-Request-Id")
	m.deliver(ev, &pkt)
}

func (m *Monitor) emitRESTResponse(pkt cluster.Packet, resp *rest.Response, wire int) {
	ev := m.base(pkt, wire)
	ev.Type = trace.RESTResponse
	ev.Status = resp.Status
	ev.CorrID = resp.Header.Get("X-Openstack-Request-Id")
	if p, ok := m.conns[pkt.ConnID]; ok {
		ev.API = p.api
		delete(m.conns, pkt.ConnID)
	} else {
		// Unpaired response: classify by source port only.
		ev.API = trace.RESTAPI(serviceFromPort(pkt.SrcAddr), "", "")
	}
	if resp.Status >= 400 {
		if mtx := errMessageRe.FindSubmatch(resp.Body); mtx != nil {
			ev.ErrorText = string(mtx[1])
		} else {
			ev.ErrorText = rest.ReasonPhrase(resp.Status)
		}
	}
	m.deliver(ev, &pkt)
}

func (m *Monitor) emitRPC(pkt cluster.Packet, msg *amqp.Message, wire int) {
	if msg.MethodID == amqp.BasicPublish && !m.ReportPublishLeg {
		return
	}
	env := &msg.Envelope
	ev := m.base(pkt, wire)
	ev.MsgID = env.MsgID
	ev.CorrID = env.ReqID
	switch {
	case env.Method != "":
		svc := serviceFromTopic(msg.Exchange, msg.RoutingKey)
		api := trace.RPCAPI(svc, env.Method)
		ev.API = api
		if env.ReplyTo != "" {
			ev.Type = trace.RPCCall
			m.calls[env.MsgID] = api
		} else {
			ev.Type = trace.RPCCast
		}
	default:
		ev.Type = trace.RPCReply
		if api, ok := m.calls[env.MsgID]; ok {
			ev.API = api
			delete(m.calls, env.MsgID)
		}
		// The agents' regex scan over the raw envelope text is what the
		// paper prescribes for RPC errors; our Unmarshal has already
		// surfaced the failure string, so the scan runs over it directly.
		if mtx := rpcFailureRe.FindSubmatch([]byte(`"failure":"` + env.Failure + `"`)); mtx != nil && env.Failure != "" {
			ev.Status = 1
			ev.ErrorText = string(mtx[1])
		}
	}
	m.deliver(ev, &pkt)
}

// serviceFromHost maps an HTTP Host header to the owning service.
func serviceFromHost(host string) trace.Service {
	host, _, _ = strings.Cut(host, ":")
	for _, svc := range trace.Services() {
		if svc.String() == host {
			return svc
		}
	}
	return trace.SvcUnknown
}

// serviceFromPort maps an "ip:port" endpoint to the service listening on
// that well-known port.
func serviceFromPort(addr string) trace.Service {
	_, port, ok := strings.Cut(addr, ":")
	if !ok {
		return trace.SvcUnknown
	}
	for svc, p := range cluster.ServicePorts {
		if port == itoa(p) {
			return svc
		}
	}
	return trace.SvcUnknown
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// serviceFromTopic maps broker routing metadata to the consumer service.
func serviceFromTopic(exchange, routingKey string) trace.Service {
	switch {
	case routingKey == "compute" || strings.HasPrefix(routingKey, "compute."):
		return trace.SvcNovaCompute
	case strings.HasPrefix(routingKey, "q-agent-notifier"):
		return trace.SvcNeutronAgent
	case strings.HasPrefix(routingKey, "topic."):
		name := strings.TrimPrefix(routingKey, "topic.")
		for _, svc := range trace.Services() {
			if svc.String() == name {
				return svc
			}
		}
	case strings.HasPrefix(routingKey, "reply_"):
		name := strings.TrimPrefix(routingKey, "reply_")
		for _, svc := range trace.Services() {
			if svc.String() == name {
				return svc
			}
		}
	}
	// Fall back to the exchange name.
	for _, svc := range trace.Services() {
		if svc.String() == exchange {
			return svc
		}
	}
	return trace.SvcUnknown
}

// DepStatus is one watcher observation: a software dependency and whether
// it is alive on a node.
type DepStatus struct {
	Node    string
	Name    string
	Running bool
}

// WatchDependencies snapshots the watcher view of every dependency on
// every node — TCP-level reachability to MySQL/RabbitMQ/NTP and liveness
// of installed agents/plugins (§6 "System state monitoring").
func WatchDependencies(f *cluster.Fabric) []DepStatus {
	var out []DepStatus
	for _, n := range f.Nodes() {
		for _, d := range n.Dependencies() {
			out = append(out, DepStatus{Node: n.Name, Name: d.Name, Running: d.Running && n.Up})
		}
	}
	return out
}

// CheckTCPReachable performs the watcher's live TCP-level reachability
// probe (§6: "watchers to detect TCP-level reachability to MySQL,
// RabbitMQ and NTP servers"): dial with a deadline, close immediately.
func CheckTCPReachable(addr string, timeout time.Duration) bool {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return false
	}
	conn.Close()
	return true
}
