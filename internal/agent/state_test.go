package agent

import (
	"testing"

	"gretel/internal/cluster"
	"gretel/internal/metrics"
	"gretel/internal/simclock"
	"gretel/internal/trace"
)

func TestCollectState(t *testing.T) {
	sim := simclock.New()
	f := cluster.NewFabric(sim, 3)
	up := f.AddNode("nova-node", "10.0.0.3", trace.SvcNova)
	down := f.AddNode("glance-node", "10.0.0.6", trace.SvcGlance)
	down.Up = false
	up.SetDependency("ntp", false)

	u := CollectState(f, sim.Now())
	if len(u.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(u.Nodes))
	}
	byName := map[string]NodeState{}
	for _, n := range u.Nodes {
		byName[n.Name] = n
	}
	if byName["glance-node"].Up {
		t.Fatal("down node reported up")
	}
	ntpOK := true
	for _, d := range byName["nova-node"].Deps {
		if d.Name == "ntp" {
			ntpOK = d.Running
		}
	}
	if ntpOK {
		t.Fatal("stopped ntp reported running")
	}
	// Samples only from live nodes: 5 metrics x 1 up node.
	if len(u.Samples) != len(metrics.MetricNames) {
		t.Fatalf("samples = %d, want %d", len(u.Samples), len(metrics.MetricNames))
	}
	for _, sm := range u.Samples {
		if sm.Node != "nova-node" || !sm.Time.Equal(sim.Now()) {
			t.Fatalf("sample from wrong node/time: %+v", sm)
		}
	}
	if byName["nova-node"].MemTotalMB <= 0 {
		t.Fatal("mem total missing")
	}
}
