// Package window implements GRETEL's sliding-window machinery (§5.3.1 and
// §6): a dual-buffer ring of the most recent α messages, freeze-on-fault
// snapshots capturing both the past and the future of a faulty message,
// and the growing context buffer the operation detector walks outward
// from the fault.
//
// α = 2·max(FPmax, Prate·t): twice the larger of the biggest fingerprint
// and the message volume of a t-second interval. On a fault, the window
// slides ahead by α/2 messages and waits for the receiver to deliver the
// remaining α/2, yielding a snapshot centered on the offending message.
package window

import (
	"gretel/internal/trace"
)

// Alpha computes the sliding-window size from FPmax, the incoming message
// rate (packets/second) and the time horizon t (seconds). The paper's
// deployment: FPmax=384, Prate≈150, t=1 ⇒ α=768.
func Alpha(fpMax int, prate, t float64) int {
	m := float64(fpMax)
	if v := prate * t; v > m {
		m = v
	}
	return 2 * int(m)
}

// Snapshot is a frozen fault-centered message window.
type Snapshot struct {
	// Events holds the α messages around the fault, oldest first.
	Events []trace.Event
	// FaultIndex locates the offending message within Events.
	FaultIndex int
}

// Context returns the events within beta messages centered on the fault
// (beta/2 on each side), clamped to the snapshot bounds — the context
// buffer β that sits atop the sliding window.
func (s *Snapshot) Context(beta int) []trace.Event {
	if beta <= 0 {
		return nil
	}
	half := beta / 2
	lo := s.FaultIndex - half
	if lo < 0 {
		lo = 0
	}
	hi := s.FaultIndex + half + 1
	if hi > len(s.Events) {
		hi = len(s.Events)
	}
	return s.Events[lo:hi]
}

// Covered reports whether a context of the given beta already spans the
// whole snapshot, i.e. growing further cannot add messages.
func (s *Snapshot) Covered(beta int) bool {
	half := beta / 2
	return s.FaultIndex-half <= 0 && s.FaultIndex+half+1 >= len(s.Events)
}

type pending struct {
	remaining int
	onReady   func(*Snapshot)
}

// Dual is the dual-buffer receive window: a ring of the last α messages
// plus armed freeze points waiting for their future half to fill. It is
// not safe for concurrent use; the event receiver drives it from one
// goroutine (§5.2: TCP delivery preserves order).
type Dual struct {
	alpha int
	ring  []trace.Event
	// start indexes the oldest element; size is the fill level.
	start, size int
	pushed      uint64
	armed       []*pending
}

// New returns a window of size alpha (minimum 2).
func New(alpha int) *Dual {
	if alpha < 2 {
		alpha = 2
	}
	return &Dual{alpha: alpha, ring: make([]trace.Event, alpha)}
}

// Alpha returns the configured window size.
func (w *Dual) Alpha() int { return w.alpha }

// Len reports the current fill level (at most α).
func (w *Dual) Len() int { return w.size }

// Pushed reports the total number of messages ever pushed.
func (w *Dual) Pushed() uint64 { return w.pushed }

// Push appends a message, evicting the oldest once full, and fires any
// armed snapshot whose future half has filled.
func (w *Dual) Push(ev trace.Event) {
	if w.size == w.alpha {
		w.ring[w.start] = ev
		w.start = (w.start + 1) % w.alpha
	} else {
		w.ring[(w.start+w.size)%w.alpha] = ev
		w.size++
	}
	w.pushed++

	if len(w.armed) == 0 {
		return
	}
	kept := w.armed[:0]
	for _, p := range w.armed {
		p.remaining--
		if p.remaining > 0 {
			kept = append(kept, p)
			continue
		}
		snap := w.snapshotCentered()
		p.onReady(snap)
	}
	w.armed = kept
}

// contents returns the window oldest-first as a fresh slice.
func (w *Dual) contents() []trace.Event {
	out := make([]trace.Event, w.size)
	for i := 0; i < w.size; i++ {
		out[i] = w.ring[(w.start+i)%w.alpha]
	}
	return out
}

// snapshotCentered freezes the current window. The fault was the message
// pushed α/2 messages ago, so it sits at index size-1-α/2 (clamped).
func (w *Dual) snapshotCentered() *Snapshot {
	evs := w.contents()
	idx := w.size - 1 - w.alpha/2
	if idx < 0 {
		idx = 0
	}
	return &Snapshot{Events: evs, FaultIndex: idx}
}

// Arm registers a freeze point at the most recently pushed message (the
// fault). After α/2 further messages arrive, onReady receives a snapshot
// whose fault index points at the offending message, giving the detector
// α/2 of past and α/2 of future (§5.3.1). Multiple faults may be armed
// simultaneously; each gets its own snapshot.
func (w *Dual) Arm(onReady func(*Snapshot)) {
	w.armed = append(w.armed, &pending{remaining: w.alpha / 2, onReady: onReady})
}

// ArmedCount reports how many freeze points are waiting to fill.
func (w *Dual) ArmedCount() int { return len(w.armed) }

// Flush fires every armed snapshot immediately with whatever the window
// currently holds — used at end of stream so trailing faults still get a
// (possibly shorter) snapshot.
func (w *Dual) Flush() {
	for _, p := range w.armed {
		evs := w.contents()
		idx := w.size - 1 - (w.alpha/2 - p.remaining)
		if idx < 0 {
			idx = 0
		}
		p.onReady(&Snapshot{Events: evs, FaultIndex: idx})
	}
	w.armed = nil
}
