// Package window implements GRETEL's sliding-window machinery (§5.3.1 and
// §6): a dual-buffer ring of the most recent α messages, freeze-on-fault
// snapshots capturing both the past and the future of a faulty message,
// and the growing context buffer the operation detector walks outward
// from the fault.
//
// α = 2·max(FPmax, Prate·t): twice the larger of the biggest fingerprint
// and the message volume of a t-second interval. On a fault, the window
// slides ahead by α/2 messages and waits for the receiver to deliver the
// remaining α/2, yielding a snapshot centered on the offending message.
package window

import (
	"math"
	"sync"
	"sync/atomic"

	"gretel/internal/trace"
)

// Alpha computes the sliding-window size from FPmax, the incoming message
// rate (packets/second) and the time horizon t (seconds). The paper's
// deployment: FPmax=384, Prate≈150, t=1 ⇒ α=768. Fractional Prate·t is
// rounded up — the window must hold at least a t-second interval, so
// truncating (e.g. prate=150.7, t=1 ⇒ α=300 instead of 302) would
// silently undersize it.
func Alpha(fpMax int, prate, t float64) int {
	m := float64(fpMax)
	if v := prate * t; v > m {
		m = v
	}
	return 2 * int(math.Ceil(m))
}

// snapBuf is one ring copy shared by every snapshot that fired on the
// same push, refcounted so the last Release returns it to the window's
// buffer pool.
type snapBuf struct {
	evs  []trace.Event // cap == alpha
	refs atomic.Int32
}

// Snapshot is a frozen fault-centered message window.
type Snapshot struct {
	// Events holds the α messages around the fault, oldest first.
	Events []trace.Event
	// FaultIndex locates the offending message within Events.
	FaultIndex int

	// buf/pool back pooled snapshots (nil for literal snapshots).
	buf  *snapBuf
	pool *sync.Pool
}

// Release hands the snapshot's shared ring copy back to the window's
// buffer pool once every consumer has released it. Call it when the
// detector is done with the snapshot; the Events slice must not be used
// afterwards. Safe (a no-op) on snapshots not backed by a pooled buffer.
// Each consumer must release at most once; concurrent releases from
// different detect workers are safe.
func (s *Snapshot) Release() {
	if s == nil || s.buf == nil {
		return
	}
	buf, pool := s.buf, s.pool
	s.buf, s.pool, s.Events = nil, nil, nil
	if buf.refs.Add(-1) == 0 && pool != nil {
		pool.Put(buf)
	}
}

// ContextBounds returns the [lo, hi) range of Events within beta
// messages centered on the fault (beta/2 on each side), clamped to the
// snapshot bounds.
func (s *Snapshot) ContextBounds(beta int) (lo, hi int) {
	if beta <= 0 {
		return 0, 0
	}
	half := beta / 2
	lo = s.FaultIndex - half
	if lo < 0 {
		lo = 0
	}
	hi = s.FaultIndex + half + 1
	if hi > len(s.Events) {
		hi = len(s.Events)
	}
	return lo, hi
}

// Context returns the events within beta messages centered on the fault
// (beta/2 on each side), clamped to the snapshot bounds — the context
// buffer β that sits atop the sliding window.
func (s *Snapshot) Context(beta int) []trace.Event {
	if beta <= 0 {
		return nil
	}
	lo, hi := s.ContextBounds(beta)
	return s.Events[lo:hi]
}

// Covered reports whether a context of the given beta already spans the
// whole snapshot, i.e. growing further cannot add messages.
func (s *Snapshot) Covered(beta int) bool {
	half := beta / 2
	return s.FaultIndex-half <= 0 && s.FaultIndex+half+1 >= len(s.Events)
}

type pending struct {
	remaining int
	onReady   func(*Snapshot)
}

// Dual is the dual-buffer receive window: a ring of the last α messages
// plus armed freeze points waiting for their future half to fill. Push,
// Arm, and Flush are not safe for concurrent use; the event receiver
// drives them from one goroutine (§5.2: TCP delivery preserves order).
// Snapshot.Release alone may be called from other goroutines — detect
// workers return ring copies to the pool when they finish.
type Dual struct {
	alpha int
	ring  []trace.Event
	// start indexes the oldest element; size is the fill level.
	start, size int
	pushed      uint64
	armed       []*pending
	// pool recycles snapshot ring copies; Release may return buffers
	// from concurrent detect workers, hence sync.Pool rather than a
	// plain free list.
	pool sync.Pool
}

// New returns a window of size alpha (minimum 2).
func New(alpha int) *Dual {
	if alpha < 2 {
		alpha = 2
	}
	w := &Dual{alpha: alpha, ring: make([]trace.Event, alpha)}
	w.pool.New = func() any { return &snapBuf{evs: make([]trace.Event, alpha)} }
	return w
}

// Alpha returns the configured window size.
func (w *Dual) Alpha() int { return w.alpha }

// Len reports the current fill level (at most α).
func (w *Dual) Len() int { return w.size }

// Pushed reports the total number of messages ever pushed.
func (w *Dual) Pushed() uint64 { return w.pushed }

// Push appends a message, evicting the oldest once full, and fires any
// armed snapshot whose future half has filled.
func (w *Dual) Push(ev trace.Event) {
	if w.size == w.alpha {
		w.ring[w.start] = ev
		w.start = (w.start + 1) % w.alpha
	} else {
		w.ring[(w.start+w.size)%w.alpha] = ev
		w.size++
	}
	w.pushed++

	if len(w.armed) == 0 {
		return
	}
	kept := w.armed[:0]
	var ready []*pending
	for _, p := range w.armed {
		p.remaining--
		if p.remaining > 0 {
			kept = append(kept, p)
			continue
		}
		ready = append(ready, p)
	}
	w.armed = kept
	if len(ready) == 0 {
		return
	}
	// Every pending firing on the same push freezes the identical
	// window, so they all share one ring copy — and one Snapshot, with
	// the reference count set to the number of consumers.
	idx := w.size - 1 - w.alpha/2
	if idx < 0 {
		idx = 0
	}
	snap := w.sharedSnapshot(len(ready), idx)
	for _, p := range ready {
		p.onReady(snap)
	}
}

// contents returns the window oldest-first as a fresh slice.
func (w *Dual) contents() []trace.Event {
	out := make([]trace.Event, w.size)
	for i := 0; i < w.size; i++ {
		out[i] = w.ring[(w.start+i)%w.alpha]
	}
	return out
}

// sharedCopy copies the window into a pooled buffer carrying the given
// reference count.
func (w *Dual) sharedCopy(refs int) *snapBuf {
	buf := w.pool.Get().(*snapBuf)
	buf.refs.Store(int32(refs))
	evs := buf.evs[:w.size]
	for i := 0; i < w.size; i++ {
		evs[i] = w.ring[(w.start+i)%w.alpha]
	}
	return buf
}

// sharedSnapshot freezes the current window into a pooled snapshot held
// by refs consumers.
func (w *Dual) sharedSnapshot(refs, faultIdx int) *Snapshot {
	buf := w.sharedCopy(refs)
	return &Snapshot{Events: buf.evs[:w.size], FaultIndex: faultIdx, buf: buf, pool: &w.pool}
}

// Arm registers a freeze point at the most recently pushed message (the
// fault). After α/2 further messages arrive, onReady receives a snapshot
// whose fault index points at the offending message, giving the detector
// α/2 of past and α/2 of future (§5.3.1). Multiple faults may be armed
// simultaneously; each gets its own snapshot.
func (w *Dual) Arm(onReady func(*Snapshot)) {
	w.armed = append(w.armed, &pending{remaining: w.alpha / 2, onReady: onReady})
}

// ArmedCount reports how many freeze points are waiting to fill.
func (w *Dual) ArmedCount() int { return len(w.armed) }

// Flush fires every armed snapshot immediately with whatever the window
// currently holds — used at end of stream so trailing faults still get a
// (possibly shorter) snapshot.
func (w *Dual) Flush() {
	if len(w.armed) == 0 {
		return
	}
	armed := w.armed
	w.armed = nil
	// One ring copy serves every armed pending; fault indexes differ, so
	// each gets its own Snapshot over the shared buffer.
	buf := w.sharedCopy(len(armed))
	for _, p := range armed {
		idx := w.size - 1 - (w.alpha/2 - p.remaining)
		if idx < 0 {
			idx = 0
		}
		p.onReady(&Snapshot{Events: buf.evs[:w.size], FaultIndex: idx, buf: buf, pool: &w.pool})
	}
}
