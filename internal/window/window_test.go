package window

import (
	"testing"
	"testing/quick"

	"gretel/internal/trace"
)

func ev(seq uint64) trace.Event { return trace.Event{Seq: seq} }

func TestAlpha(t *testing.T) {
	cases := []struct {
		name  string
		fpMax int
		prate float64
		t     float64
		want  int
	}{
		// The paper's deployment: FPmax=384, Prate=150, t=1 => alpha=768.
		{"paper", 384, 150, 1, 768},
		// High message rate dominates.
		{"rate-dominates", 100, 500, 2, 2000},
		// Fractional rate rounds up, never down: 150.7 msgs/s needs 151
		// slots per half, not 150.
		{"fractional-rate", 100, 150.7, 1, 302},
		// Fractional product from a sub-second horizon.
		{"fractional-horizon", 100, 301, 0.5, 302},
		// Sub-FPmax rate: the fingerprint bound wins and stays exact.
		{"sub-fpmax-rate", 384, 150.7, 1, 768},
		{"sub-fpmax-fractional-tie", 10, 9.4, 1, 20},
		// Rate a hair over FPmax must still round up past it.
		{"just-over-fpmax", 10, 10.2, 1, 22},
	}
	for _, c := range cases {
		if got := Alpha(c.fpMax, c.prate, c.t); got != c.want {
			t.Errorf("%s: Alpha(%d, %g, %g) = %d, want %d", c.name, c.fpMax, c.prate, c.t, got, c.want)
		}
	}
}

func TestPushEvictsOldest(t *testing.T) {
	w := New(4)
	for i := uint64(1); i <= 6; i++ {
		w.Push(ev(i))
	}
	if w.Len() != 4 || w.Pushed() != 6 {
		t.Fatalf("len=%d pushed=%d", w.Len(), w.Pushed())
	}
	got := w.contents()
	for i, want := range []uint64{3, 4, 5, 6} {
		if got[i].Seq != want {
			t.Fatalf("contents[%d] = %d, want %d", i, got[i].Seq, want)
		}
	}
}

func TestArmSnapshotCentersFault(t *testing.T) {
	w := New(8)
	for i := uint64(1); i <= 10; i++ {
		w.Push(ev(i))
	}
	// Message 10 is the fault.
	var snap *Snapshot
	w.Arm(func(s *Snapshot) { snap = s })
	if w.ArmedCount() != 1 {
		t.Fatal("not armed")
	}
	// Needs alpha/2 = 4 more messages.
	for i := uint64(11); i <= 13; i++ {
		w.Push(ev(i))
		if snap != nil {
			t.Fatalf("snapshot fired early at %d", i)
		}
	}
	w.Push(ev(14))
	if snap == nil {
		t.Fatal("snapshot never fired")
	}
	if len(snap.Events) != 8 {
		t.Fatalf("snapshot size = %d, want 8", len(snap.Events))
	}
	if got := snap.Events[snap.FaultIndex].Seq; got != 10 {
		t.Fatalf("fault event seq = %d, want 10", got)
	}
	// Past half: 7,8,9; future half: 11..14.
	if snap.Events[0].Seq != 7 || snap.Events[len(snap.Events)-1].Seq != 14 {
		t.Fatalf("snapshot range [%d, %d]", snap.Events[0].Seq, snap.Events[len(snap.Events)-1].Seq)
	}
	if w.ArmedCount() != 0 {
		t.Fatal("armed entry not cleared")
	}
}

func TestMultipleArmedSnapshots(t *testing.T) {
	w := New(8)
	for i := uint64(1); i <= 8; i++ {
		w.Push(ev(i))
	}
	var got []uint64
	w.Arm(func(s *Snapshot) { got = append(got, s.Events[s.FaultIndex].Seq) })
	w.Push(ev(9))
	w.Push(ev(10))
	w.Arm(func(s *Snapshot) { got = append(got, s.Events[s.FaultIndex].Seq) })
	for i := uint64(11); i <= 20; i++ {
		w.Push(ev(i))
	}
	if len(got) != 2 || got[0] != 8 || got[1] != 10 {
		t.Fatalf("fault seqs = %v, want [8 10]", got)
	}
}

func TestSnapshotEarlyFault(t *testing.T) {
	// Fault before the window ever filled: index clamps to 0.
	w := New(8)
	w.Push(ev(1))
	var snap *Snapshot
	w.Arm(func(s *Snapshot) { snap = s })
	for i := uint64(2); i <= 5; i++ {
		w.Push(ev(i))
	}
	if snap == nil {
		t.Fatal("snapshot never fired")
	}
	if snap.FaultIndex != 0 || snap.Events[0].Seq != 1 {
		t.Fatalf("fault index = %d, first = %d", snap.FaultIndex, snap.Events[0].Seq)
	}
}

func TestContextGrowth(t *testing.T) {
	evs := make([]trace.Event, 100)
	for i := range evs {
		evs[i] = ev(uint64(i))
	}
	s := &Snapshot{Events: evs, FaultIndex: 50}
	c := s.Context(10)
	if len(c) != 11 { // 5 each side + fault
		t.Fatalf("context size = %d", len(c))
	}
	if c[0].Seq != 45 || c[len(c)-1].Seq != 55 {
		t.Fatalf("context range [%d,%d]", c[0].Seq, c[len(c)-1].Seq)
	}
	if s.Covered(10) {
		t.Fatal("covered too early")
	}
	full := s.Context(1000)
	if len(full) != 100 {
		t.Fatalf("full context = %d", len(full))
	}
	if !s.Covered(1000) {
		t.Fatal("not covered at 1000")
	}
	if s.Context(0) != nil {
		t.Fatal("Context(0) should be nil")
	}
}

func TestContextClampsAtEdges(t *testing.T) {
	evs := make([]trace.Event, 10)
	for i := range evs {
		evs[i] = ev(uint64(i))
	}
	s := &Snapshot{Events: evs, FaultIndex: 1}
	c := s.Context(8)
	if c[0].Seq != 0 {
		t.Fatalf("context start = %d", c[0].Seq)
	}
	s.FaultIndex = 9
	c = s.Context(8)
	if c[len(c)-1].Seq != 9 {
		t.Fatalf("context end = %d", c[len(c)-1].Seq)
	}
}

func TestFlushFiresPartialSnapshots(t *testing.T) {
	w := New(8)
	for i := uint64(1); i <= 8; i++ {
		w.Push(ev(i))
	}
	var snap *Snapshot
	w.Arm(func(s *Snapshot) { snap = s })
	w.Push(ev(9)) // only 1 of 4 future messages
	w.Flush()
	if snap == nil {
		t.Fatal("flush did not fire")
	}
	if got := snap.Events[snap.FaultIndex].Seq; got != 8 {
		t.Fatalf("flushed fault seq = %d, want 8", got)
	}
	if w.ArmedCount() != 0 {
		t.Fatal("armed not cleared by flush")
	}
}

func TestMinimumAlpha(t *testing.T) {
	w := New(0)
	if w.Alpha() < 2 {
		t.Fatal("alpha floor missing")
	}
}

// Property: after any push sequence, window contents are the most recent
// min(n, alpha) events in order.
func TestQuickWindowContents(t *testing.T) {
	f := func(n uint16, alphaRaw uint8) bool {
		alpha := int(alphaRaw%64) + 2
		w := New(alpha)
		total := int(n % 500)
		for i := 1; i <= total; i++ {
			w.Push(ev(uint64(i)))
		}
		got := w.contents()
		want := total
		if want > alpha {
			want = alpha
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Seq != uint64(total-want+i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamePushSharesOneSnapshot(t *testing.T) {
	w := New(8)
	for i := uint64(1); i <= 8; i++ {
		w.Push(ev(i))
	}
	// Two faults armed on the same message fire on the same push and
	// must share one Snapshot (one ring copy).
	var got []*Snapshot
	w.Arm(func(s *Snapshot) { got = append(got, s) })
	w.Arm(func(s *Snapshot) { got = append(got, s) })
	for i := uint64(9); i <= 12; i++ {
		w.Push(ev(i))
	}
	if len(got) != 2 {
		t.Fatalf("snapshots fired = %d, want 2", len(got))
	}
	if got[0] != got[1] {
		t.Fatal("same-push snapshots not shared")
	}
	if got[0].buf == nil || got[0].buf.refs.Load() != 2 {
		t.Fatalf("shared buffer refcount = %v, want 2", got[0].buf.refs.Load())
	}
}

func TestFlushSharesOneCopy(t *testing.T) {
	w := New(8)
	for i := uint64(1); i <= 8; i++ {
		w.Push(ev(i))
	}
	var got []*Snapshot
	w.Arm(func(s *Snapshot) { got = append(got, s) })
	w.Push(ev(9))
	w.Push(ev(10))
	w.Arm(func(s *Snapshot) { got = append(got, s) })
	w.Flush()
	if len(got) != 2 {
		t.Fatalf("snapshots fired = %d, want 2", len(got))
	}
	// Distinct snapshots (fault indexes differ) over one shared buffer.
	if got[0] == got[1] || got[0].buf != got[1].buf {
		t.Fatal("flush snapshots should share one buffer via distinct Snapshots")
	}
	if &got[0].Events[0] != &got[1].Events[0] {
		t.Fatal("flush snapshots do not share backing storage")
	}
	if got[0].FaultIndex == got[1].FaultIndex {
		t.Fatal("fault indexes should differ")
	}
	if got[0].Events[got[0].FaultIndex].Seq != 8 || got[1].Events[got[1].FaultIndex].Seq != 10 {
		t.Fatalf("fault seqs = %d, %d; want 8, 10",
			got[0].Events[got[0].FaultIndex].Seq, got[1].Events[got[1].FaultIndex].Seq)
	}
}

func TestReleaseRecyclesBuffer(t *testing.T) {
	w := New(4)
	fire := func() *Snapshot {
		var snap *Snapshot
		for i := uint64(1); i <= 4; i++ {
			w.Push(ev(i))
		}
		w.Arm(func(s *Snapshot) { snap = s })
		w.Push(ev(5))
		w.Push(ev(6))
		if snap == nil {
			t.Fatal("snapshot never fired")
		}
		return snap
	}
	first := fire()
	buf := first.buf
	first.Release()
	if first.Events != nil || first.buf != nil {
		t.Fatal("Release did not clear the snapshot")
	}
	first.Release() // second release of the same consumer handle: no-op
	// Under the race detector sync.Pool drops a fraction of puts on
	// purpose, so recycling is probabilistic there: retry until the pool
	// hands the released buffer back.
	recycled := false
	for i := 0; i < 20 && !recycled; i++ {
		second := fire()
		recycled = second.buf == buf
		// The recycled snapshot carries the fresh window, not stale events.
		if second.Events[second.FaultIndex].Seq != 4 {
			t.Fatalf("recycled snapshot fault seq = %d, want 4", second.Events[second.FaultIndex].Seq)
		}
		buf = second.buf
		second.Release()
	}
	if !recycled {
		t.Fatal("released buffer was not recycled")
	}

	// Literal snapshots (no pooled buffer) tolerate Release.
	lit := &Snapshot{Events: []trace.Event{ev(1)}, FaultIndex: 0}
	lit.Release()
	var nilSnap *Snapshot
	nilSnap.Release()
}
