// Package packet implements Ethernet/IPv4/TCP frame encoding and
// decoding — the L2-L4 envelope around the simulated deployment's REST
// and AMQP payloads.
//
// The paper's monitoring pipeline worked on real packets: Bro captured
// them, tcpreplay replayed them (§6, §7.4.1). This package lets the
// reproduction round-trip its wire traffic through the same shape: fabric
// messages are wrapped in properly checksummed Ethernet+IPv4+TCP headers,
// written to standard pcap files (package pcap), and parsed back into
// monitor-consumable packets by walking the layers, in the style of a
// minimal gopacket.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Header sizes (no options).
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	TCPHeaderLen      = 20
	headerOverhead    = EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen
)

// EtherTypeIPv4 is the Ethernet payload type for IPv4.
const EtherTypeIPv4 uint16 = 0x0800

// ProtocolTCP is the IPv4 protocol number for TCP.
const ProtocolTCP byte = 6

// Parsing errors.
var (
	ErrTruncated   = errors.New("packet: truncated frame")
	ErrNotIPv4     = errors.New("packet: not an IPv4 frame")
	ErrNotTCP      = errors.New("packet: not a TCP segment")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
	ErrBadAddr     = errors.New("packet: bad address")
)

// Ethernet is the L2 header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// IPv4 is the L3 header (no options).
type IPv4 struct {
	TOS      byte
	ID       uint16
	TTL      byte
	Protocol byte
	Src, Dst [4]byte
}

// TCP is the L4 header (no options).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
}

// TCP flag bits.
const (
	FlagFIN byte = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Frame is a complete Ethernet/IPv4/TCP frame with payload.
type Frame struct {
	Eth     Ethernet
	IP      IPv4
	TCP     TCP
	Payload []byte
}

// macFor derives a stable locally-administered MAC address from an IPv4
// address (the simulation has no ARP; addresses only need consistency).
func macFor(ip [4]byte) [6]byte {
	return [6]byte{0x02, 0x00, ip[0], ip[1], ip[2], ip[3]}
}

// Build wraps payload in Ethernet/IPv4/TCP headers for the given
// "ip:port" endpoints. Sequence numbers are the caller's to manage (zero
// is acceptable for capture purposes).
func Build(srcAddr, dstAddr string, payload []byte) (*Frame, error) {
	src, err := netip.ParseAddrPort(srcAddr)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrBadAddr, srcAddr)
	}
	dst, err := netip.ParseAddrPort(dstAddr)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrBadAddr, dstAddr)
	}
	if !src.Addr().Is4() || !dst.Addr().Is4() {
		return nil, fmt.Errorf("%w: IPv4 required", ErrBadAddr)
	}
	f := &Frame{
		IP: IPv4{
			TTL:      64,
			Protocol: ProtocolTCP,
			Src:      src.Addr().As4(),
			Dst:      dst.Addr().As4(),
		},
		TCP: TCP{
			SrcPort: src.Port(),
			DstPort: dst.Port(),
			Flags:   FlagPSH | FlagACK,
			Window:  65535,
		},
		Payload: payload,
	}
	f.Eth = Ethernet{
		Dst:       macFor(f.IP.Dst),
		Src:       macFor(f.IP.Src),
		EtherType: EtherTypeIPv4,
	}
	return f, nil
}

// SrcAddr renders the source "ip:port".
func (f *Frame) SrcAddr() string {
	return netip.AddrPortFrom(netip.AddrFrom4(f.IP.Src), f.TCP.SrcPort).String()
}

// DstAddr renders the destination "ip:port".
func (f *Frame) DstAddr() string {
	return netip.AddrPortFrom(netip.AddrFrom4(f.IP.Dst), f.TCP.DstPort).String()
}

// FlowID returns a direction-independent identifier for the frame's
// 4-tuple, so both halves of a connection share an id (the replacement
// for the simulator's connection ids when traffic round-trips through
// pcap). FNV-1a over the sorted endpoints.
func (f *Frame) FlowID() uint64 {
	a := make([]byte, 0, 12)
	x := append(append([]byte{}, f.IP.Src[:]...), byte(f.TCP.SrcPort>>8), byte(f.TCP.SrcPort))
	y := append(append([]byte{}, f.IP.Dst[:]...), byte(f.TCP.DstPort>>8), byte(f.TCP.DstPort))
	if lessBytes(y, x) {
		x, y = y, x
	}
	a = append(append(a, x...), y...)
	var h uint64 = 14695981039346656037
	for _, c := range a {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func lessBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Marshal encodes the frame with correct length fields, the IPv4 header
// checksum, and the TCP checksum over the pseudo-header.
func (f *Frame) Marshal() []byte {
	total := headerOverhead + len(f.Payload)
	out := make([]byte, total)

	// Ethernet.
	copy(out[0:6], f.Eth.Dst[:])
	copy(out[6:12], f.Eth.Src[:])
	binary.BigEndian.PutUint16(out[12:14], f.Eth.EtherType)

	// IPv4.
	ip := out[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = f.IP.TOS
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+TCPHeaderLen+len(f.Payload)))
	binary.BigEndian.PutUint16(ip[4:6], f.IP.ID)
	// no fragmentation: flags/offset zero
	ip[8] = f.IP.TTL
	ip[9] = f.IP.Protocol
	copy(ip[12:16], f.IP.Src[:])
	copy(ip[16:20], f.IP.Dst[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip, 0))

	// TCP.
	tcp := out[EthernetHeaderLen+IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], f.TCP.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], f.TCP.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], f.TCP.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], f.TCP.Ack)
	tcp[12] = 5 << 4 // data offset 5 words
	tcp[13] = f.TCP.Flags
	binary.BigEndian.PutUint16(tcp[14:16], f.TCP.Window)
	copy(tcp[TCPHeaderLen:], f.Payload)
	binary.BigEndian.PutUint16(tcp[16:18], f.tcpChecksum(tcp))

	return out
}

// tcpChecksum computes the TCP checksum over the pseudo-header and
// segment (with the checksum field zeroed).
func (f *Frame) tcpChecksum(segment []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], f.IP.Src[:])
	copy(pseudo[4:8], f.IP.Dst[:])
	pseudo[9] = ProtocolTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	sum := partialChecksum(pseudo[:], 0)
	return checksum(segment, sum)
}

// partialChecksum folds data into a running ones-complement sum.
func partialChecksum(data []byte, sum uint32) uint32 {
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	return sum
}

// checksum finalizes the ones-complement checksum of data (plus a prior
// partial sum). The checksum field inside data must be zero.
func checksum(data []byte, prior uint32) uint16 {
	sum := partialChecksum(data, prior)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// Parse decodes an Ethernet/IPv4/TCP frame, verifying both checksums.
func Parse(raw []byte) (*Frame, error) {
	if len(raw) < headerOverhead {
		return nil, ErrTruncated
	}
	var f Frame
	copy(f.Eth.Dst[:], raw[0:6])
	copy(f.Eth.Src[:], raw[6:12])
	f.Eth.EtherType = binary.BigEndian.Uint16(raw[12:14])
	if f.Eth.EtherType != EtherTypeIPv4 {
		return nil, ErrNotIPv4
	}

	ip := raw[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return nil, ErrNotIPv4
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return nil, ErrTruncated
	}
	if checksum(ip[:ihl], 0) != 0 {
		return nil, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}
	f.IP.TOS = ip[1]
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	f.IP.ID = binary.BigEndian.Uint16(ip[4:6])
	f.IP.TTL = ip[8]
	f.IP.Protocol = ip[9]
	copy(f.IP.Src[:], ip[12:16])
	copy(f.IP.Dst[:], ip[16:20])
	if f.IP.Protocol != ProtocolTCP {
		return nil, ErrNotTCP
	}
	if totalLen < ihl+TCPHeaderLen || len(ip) < totalLen {
		return nil, ErrTruncated
	}

	tcp := ip[ihl:totalLen]
	f.TCP.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	f.TCP.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	f.TCP.Seq = binary.BigEndian.Uint32(tcp[4:8])
	f.TCP.Ack = binary.BigEndian.Uint32(tcp[8:12])
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < TCPHeaderLen || len(tcp) < dataOff {
		return nil, ErrTruncated
	}
	f.TCP.Flags = tcp[13]
	f.TCP.Window = binary.BigEndian.Uint16(tcp[14:16])
	// Verify the TCP checksum: zero the field and recompute.
	seg := make([]byte, len(tcp))
	copy(seg, tcp)
	stored := binary.BigEndian.Uint16(seg[16:18])
	seg[16], seg[17] = 0, 0
	if f2 := (&Frame{IP: f.IP}); f2.tcpChecksum(seg) != stored {
		return nil, fmt.Errorf("%w: TCP", ErrBadChecksum)
	}
	f.Payload = tcp[dataOff:]
	return &f, nil
}
