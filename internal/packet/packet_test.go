package packet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBuildMarshalParseRoundTrip(t *testing.T) {
	payload := []byte("GET /v2.1/servers HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
	f, err := Build("10.0.0.11:43210", "10.0.0.13:8774", payload)
	if err != nil {
		t.Fatal(err)
	}
	f.TCP.Seq = 12345
	raw := f.Marshal()
	if len(raw) != headerOverhead+len(payload) {
		t.Fatalf("frame length = %d", len(raw))
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcAddr() != "10.0.0.11:43210" || got.DstAddr() != "10.0.0.13:8774" {
		t.Fatalf("addresses: %s -> %s", got.SrcAddr(), got.DstAddr())
	}
	if got.TCP.Seq != 12345 {
		t.Fatalf("seq = %d", got.TCP.Seq)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
	if got.IP.TTL != 64 || got.IP.Protocol != ProtocolTCP {
		t.Fatalf("IP fields: %+v", got.IP)
	}
}

func TestBuildRejectsBadAddresses(t *testing.T) {
	if _, err := Build("nonsense", "10.0.0.1:80", nil); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Build("10.0.0.1:80", "nonsense", nil); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Build("[::1]:80", "10.0.0.1:80", nil); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("IPv6 accepted: %v", err)
	}
}

func TestParseDetectsIPv4Corruption(t *testing.T) {
	f, _ := Build("10.0.0.1:1000", "10.0.0.2:2000", []byte("hello"))
	raw := f.Marshal()
	raw[EthernetHeaderLen+8]++ // flip the TTL: IPv4 header checksum breaks
	if _, err := Parse(raw); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want checksum error", err)
	}
}

func TestParseDetectsPayloadCorruption(t *testing.T) {
	f, _ := Build("10.0.0.1:1000", "10.0.0.2:2000", []byte("hello world"))
	raw := f.Marshal()
	raw[len(raw)-1] ^= 0xff // corrupt payload: TCP checksum breaks
	if _, err := Parse(raw); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want TCP checksum error", err)
	}
}

func TestParseRejectsNonIPv4(t *testing.T) {
	f, _ := Build("10.0.0.1:1", "10.0.0.2:2", nil)
	raw := f.Marshal()
	raw[12], raw[13] = 0x86, 0xdd // EtherType IPv6
	if _, err := Parse(raw); !errors.Is(err, ErrNotIPv4) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRejectsNonTCP(t *testing.T) {
	f, _ := Build("10.0.0.1:1", "10.0.0.2:2", nil)
	f.IP.Protocol = 17 // UDP
	raw := f.Marshal()
	if _, err := Parse(raw); !errors.Is(err, ErrNotTCP) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseTruncated(t *testing.T) {
	f, _ := Build("10.0.0.1:1", "10.0.0.2:2", []byte("data"))
	raw := f.Marshal()
	for _, cut := range []int{0, 10, EthernetHeaderLen + 5, len(raw) - 1} {
		if _, err := Parse(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d parsed", cut)
		}
	}
}

func TestFlowIDSymmetric(t *testing.T) {
	a, _ := Build("10.0.0.1:1000", "10.0.0.2:2000", nil)
	b, _ := Build("10.0.0.2:2000", "10.0.0.1:1000", nil)
	if a.FlowID() != b.FlowID() {
		t.Fatal("flow id not direction-independent")
	}
	c, _ := Build("10.0.0.1:1001", "10.0.0.2:2000", nil)
	if a.FlowID() == c.FlowID() {
		t.Fatal("distinct flows share an id")
	}
}

func TestMACDerivation(t *testing.T) {
	f, _ := Build("10.0.0.7:1", "10.0.0.9:2", nil)
	if f.Eth.Src[0] != 0x02 || f.Eth.Src[5] != 7 || f.Eth.Dst[5] != 9 {
		t.Fatalf("MACs: src=%x dst=%x", f.Eth.Src, f.Eth.Dst)
	}
}

// Property: any payload round-trips intact with valid checksums.
func TestQuickRoundTrip(t *testing.T) {
	fn := func(payload []byte, srcPort, dstPort uint16) bool {
		if srcPort == 0 || dstPort == 0 {
			return true
		}
		f, err := Build("192.168.1.10:"+itoa(srcPort), "192.168.1.20:"+itoa(dstPort), payload)
		if err != nil {
			return false
		}
		got, err := Parse(f.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload) &&
			got.TCP.SrcPort == srcPort && got.TCP.DstPort == dstPort
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(v uint16) string {
	if v == 0 {
		return "0"
	}
	var b [5]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Odd-length payloads exercise the checksum padding path.
func TestOddLengthChecksum(t *testing.T) {
	f, _ := Build("10.0.0.1:1", "10.0.0.2:2", []byte("odd"))
	if _, err := Parse(f.Marshal()); err != nil {
		t.Fatal(err)
	}
}
