package packet

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the L2-L4 frame parser: no panics on arbitrary input;
// valid parses re-marshal stably with checksums intact.
func FuzzParse(f *testing.F) {
	good, _ := Build("10.0.0.1:33000", "10.0.0.3:8774", []byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add(good.Marshal())
	f.Add(make([]byte, EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := Parse(raw)
		if err != nil {
			return
		}
		re := fr.Marshal()
		fr2, err := Parse(re)
		if err != nil {
			t.Fatalf("re-parse of valid frame failed: %v", err)
		}
		if !bytes.Equal(fr2.Payload, fr.Payload) || fr2.SrcAddr() != fr.SrcAddr() {
			t.Fatal("round trip not stable")
		}
	})
}
