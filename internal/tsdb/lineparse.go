// Line-protocol parser: the inverse of internal/telemetry/export's
// encoder. It accepts the subset the exporter emits — numeric fields
// (int64 'i' or float64), backslash escapes, nanosecond timestamps —
// plus booleans for compatibility, and tolerates unknown constructs by
// rejecting only the line they appear on: a /write batch with one
// malformed line still lands the rest, with the failure counted.

package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedPoint is one decoded line. Series is the canonical series key:
// the measurement plus its sorted tag set in escaped line-protocol
// form ("core.events_ingested,host=a,proc=gretel,rev=abc"), which is
// also what /query and /series use as the series identifier.
type ParsedPoint struct {
	Series string
	Fields map[string]float64
	TimeNS int64
}

// ParseLine decodes one line-protocol line (no trailing newline).
func ParseLine(line string) (ParsedPoint, error) {
	var p ParsedPoint
	seriesEnd := indexUnescaped(line, ' ')
	if seriesEnd <= 0 {
		return p, fmt.Errorf("tsdb: no measurement/field separator in %q", clip(line))
	}
	series := line[:seriesEnd]
	rest := line[seriesEnd+1:]

	// Timestamp: everything after the last unescaped space. Field
	// string values could in principle contain spaces, but the exporter
	// never emits strings and we reject them below, so scanning from
	// the right is safe for the accepted subset.
	tsStart := strings.LastIndexByte(rest, ' ')
	if tsStart < 0 {
		return p, fmt.Errorf("tsdb: missing timestamp in %q", clip(line))
	}
	ts, err := strconv.ParseInt(rest[tsStart+1:], 10, 64)
	if err != nil {
		return p, fmt.Errorf("tsdb: bad timestamp in %q: %v", clip(line), err)
	}
	p.TimeNS = ts
	fieldsPart := rest[:tsStart]

	p.Series, err = canonicalSeries(series)
	if err != nil {
		return p, err
	}

	p.Fields = make(map[string]float64, 4)
	for len(fieldsPart) > 0 {
		end := indexUnescaped(fieldsPart, ',')
		var one string
		if end < 0 {
			one, fieldsPart = fieldsPart, ""
		} else {
			one, fieldsPart = fieldsPart[:end], fieldsPart[end+1:]
		}
		eq := indexUnescaped(one, '=')
		if eq <= 0 {
			return p, fmt.Errorf("tsdb: malformed field %q", clip(one))
		}
		key := unescape(one[:eq])
		val := one[eq+1:]
		f, err := parseFieldValue(val)
		if err != nil {
			return p, fmt.Errorf("tsdb: field %s: %v", key, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		p.Fields[key] = f
	}
	if len(p.Fields) == 0 {
		return p, fmt.Errorf("tsdb: no usable fields in %q", clip(line))
	}
	return p, nil
}

// parseFieldValue decodes one field value: int64 ('i' suffix), float,
// or boolean (mapped to 0/1). Strings are rejected — the telemetry
// stream is numeric, and accepting strings would make the in-memory
// columns heterogeneous.
func parseFieldValue(val string) (float64, error) {
	if val == "" {
		return 0, fmt.Errorf("empty value")
	}
	if val[0] == '"' {
		return 0, fmt.Errorf("string fields are not supported")
	}
	switch val {
	case "t", "T", "true", "True", "TRUE":
		return 1, nil
	case "f", "F", "false", "False", "FALSE":
		return 0, nil
	}
	if last := val[len(val)-1]; last == 'i' {
		n, err := strconv.ParseInt(val[:len(val)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", clip(val))
		}
		return float64(n), nil
	} else if last == 'u' {
		n, err := strconv.ParseUint(val[:len(val)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad unsigned %q", clip(val))
		}
		return float64(n), nil
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", clip(val))
	}
	return f, nil
}

// canonicalSeries normalizes a measurement+tags prefix: tags sorted by
// key so the same series always maps to the same key regardless of the
// client's tag order. The escaped form is preserved — it is the
// canonical identifier, not a display string.
func canonicalSeries(series string) (string, error) {
	first := indexUnescaped(series, ',')
	if first < 0 {
		if series == "" {
			return "", fmt.Errorf("tsdb: empty measurement")
		}
		return series, nil
	}
	if first == 0 {
		return "", fmt.Errorf("tsdb: empty measurement in %q", clip(series))
	}
	measurement := series[:first]
	rest := series[first+1:]
	var tags []string
	for len(rest) > 0 {
		end := indexUnescaped(rest, ',')
		var one string
		if end < 0 {
			one, rest = rest, ""
		} else {
			one, rest = rest[:end], rest[end+1:]
		}
		if indexUnescaped(one, '=') <= 0 {
			return "", fmt.Errorf("tsdb: malformed tag %q", clip(one))
		}
		tags = append(tags, one)
	}
	sort.Strings(tags)
	if len(tags) == 0 {
		return measurement, nil
	}
	return measurement + "," + strings.Join(tags, ","), nil
}

// indexUnescaped finds the first occurrence of sep not preceded by a
// backslash, or -1.
func indexUnescaped(s string, sep byte) int {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escaped byte
		case sep:
			return i
		}
	}
	return -1
}

// unescape removes backslash escapes.
func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// clip bounds error-message excerpts.
func clip(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}
