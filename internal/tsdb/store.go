// Package tsdb is the embedded time-series store behind gretel-tsdb:
// the receiving end of the telemetry export pipeline. Writes land in
// append-only, time-partitioned segments framed with the WAL record
// codec (kind 'P', CRC-checked, skip-and-count recovery), and an
// in-memory series index serves range queries — so an hours-long soak
// gets queryable per-interval history with zero external dependencies,
// and a crash loses at most the torn tail of the active segment.
//
// The durable unit is one /write body: the raw line-protocol batch is
// the record body, so recovery replays exactly what was posted and the
// same parser handles both paths. Segments rotate on a partition
// boundary (default 1h) or a size bound, whichever comes first, and
// are named tsdb-<first-seq>.seg in WAL style.
package tsdb

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gretel/internal/telemetry"
	"gretel/internal/wal"
)

var (
	mPointsWritten = telemetry.GetCounter("tsdb.points_written")
	mLinesRejected = telemetry.GetCounter("tsdb.lines_rejected")
	mBatches       = telemetry.GetCounter("tsdb.batches")
	mRecovered     = telemetry.GetCounter("tsdb.points_recovered")
	mBytesSkipped  = telemetry.GetCounter("tsdb.bytes_skipped")
	mQueries       = telemetry.GetCounter("tsdb.queries")
	mSegsAbandoned = telemetry.GetCounter("tsdb.segments_abandoned")
	hWrite         = telemetry.GetHistogram("tsdb.write")
	hQuery         = telemetry.GetHistogram("tsdb.query")
)

const (
	segPrefix = "tsdb-"
	segSuffix = ".seg"
)

// Options tunes the store. The zero value (plus Dir) is usable.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// PartitionDur bounds a segment's time span: the active segment
	// rotates when a write crosses into the next partition
	// (default 1h).
	PartitionDur time.Duration
	// SegmentBytes rotates the active segment once it would exceed this
	// size (default 64 MiB).
	SegmentBytes int64
}

func (o *Options) defaults() {
	if o.PartitionDur <= 0 {
		o.PartitionDur = time.Hour
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
}

// Stats is the store's accounting.
type Stats struct {
	// Points counts points currently queryable (recovered + written).
	Points uint64 `json:"points"`
	// Series counts distinct series.
	Series int `json:"series"`
	// Written counts points accepted this session; Rejected counts
	// lines refused by the parser (counted, never silently dropped).
	Written  uint64 `json:"written"`
	Rejected uint64 `json:"rejected"`
	// Recovered counts points replayed from segments at Open;
	// SkippedBytes counts bytes quarantined by CRC/resync during that
	// replay (the torn tail of a crashed store).
	Recovered    uint64 `json:"recovered"`
	SkippedBytes uint64 `json:"skipped_bytes"`
	// Segments / Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

// Point is one sample of one series.
type Point struct {
	TimeNS int64              `json:"t"`
	Fields map[string]float64 `json:"f"`
}

type seriesData struct {
	pts []Point // sorted by TimeNS
}

// Store is the embedded TSDB. All methods are safe for concurrent use.
type Store struct {
	opts Options

	mu     sync.Mutex
	series map[string]*seriesData

	f           *os.File
	bw          *bufio.Writer
	activeBytes int64
	activePart  int64 // partition start (unix ns); 0 = no active segment
	nextSeq     uint64
	segs        int
	diskBytes   int64

	stats Stats
}

// Open opens (or creates) the store at opts.Dir, replaying every intact
// record in its segments to rebuild the in-memory index. Corruption is
// skipped and counted, never fatal — the WAL recovery discipline.
func Open(opts Options) (*Store, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("tsdb: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: creating %s: %w", opts.Dir, err)
	}
	s := &Store{opts: opts, series: make(map[string]*seriesData)}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// segName renders the segment file name for a first record sequence.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

// listSegments returns the store's segments sorted by first sequence.
func (s *Store) listSegments() ([]string, error) {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasPrefix(n, segPrefix) || !strings.HasSuffix(n, segSuffix) {
			continue
		}
		if _, err := strconv.ParseUint(n[len(segPrefix):len(n)-len(segSuffix)], 10, 64); err != nil {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names) // fixed-width zero-padded seq: lexical == numeric
	return names, nil
}

// recover replays all segments through the shared record codec and the
// line parser, rebuilding the series index.
func (s *Store) recover() error {
	names, err := s.listSegments()
	if err != nil {
		return fmt.Errorf("tsdb: listing %s: %w", s.opts.Dir, err)
	}
	var buf []byte
	sizes := make([]int64, len(names))
	counted := make([]bool, len(names))
	lastIntact := -1 // index of the newest segment holding an intact record
	for i, name := range names {
		path := filepath.Join(s.opts.Dir, name)
		f, err := os.Open(path)
		if err != nil {
			continue // unreadable segment: its bytes are simply absent
		}
		if fi, err := f.Stat(); err == nil {
			sizes[i] = fi.Size()
			s.diskBytes += fi.Size()
		}
		s.segs++
		counted[i] = true
		br := bufio.NewReaderSize(f, 256<<10)
		for {
			seq, body, skipped, rerr := wal.ReadRecord(br, wal.KindPoints, buf)
			if skipped > 0 {
				s.stats.SkippedBytes += uint64(skipped)
				mBytesSkipped.Add(uint64(skipped))
			}
			if rerr != nil {
				break
			}
			lastIntact = i
			if cap(body) > cap(buf) {
				buf = body[:0]
			}
			if seq > s.nextSeq {
				s.nextSeq = seq
			}
			n, _ := s.ingestLocked(string(body))
			s.stats.Recovered += uint64(n)
			mRecovered.Add(uint64(n))
		}
		f.Close()
	}
	// Trailing segments holding no intact record — a crash created them
	// and died before the first flush, or tore the first record — must
	// go: they carry the name rotateIfDue's next O_EXCL create would use
	// (segName(nextSeq+1), since nothing in them advanced nextSeq), so
	// leaving them would fail every future Write with EEXIST. Same
	// discipline as wal.Open; their torn bytes are already counted in
	// SkippedBytes.
	for i := lastIntact + 1; i < len(names); i++ {
		path := filepath.Join(s.opts.Dir, names[i])
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("tsdb: removing recordless segment %s: %w", path, err)
		}
		if counted[i] {
			s.segs--
			s.diskBytes -= sizes[i]
		}
		telemetry.LogFirst("tsdb.recordless", "tsdb: dropped recordless torn segment %s (%d bytes)", path, sizes[i])
	}
	s.stats.Segments = s.segs
	s.stats.Bytes = s.diskBytes
	return nil
}

// ingestLocked parses a line-protocol batch into the index, returning
// accepted and rejected line counts. Callers hold mu (or are in Open).
func (s *Store) ingestLocked(body string) (accepted, rejected int) {
	for len(body) > 0 {
		nl := strings.IndexByte(body, '\n')
		var line string
		if nl < 0 {
			line, body = body, ""
		} else {
			line, body = body[:nl], body[nl+1:]
		}
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		p, err := ParseLine(line)
		if err != nil {
			rejected++
			telemetry.LogFirst("tsdb.parse", "tsdb: rejecting line: %v", err)
			continue
		}
		sd := s.series[p.Series]
		if sd == nil {
			sd = &seriesData{}
			s.series[p.Series] = sd
		}
		sd.insert(Point{TimeNS: p.TimeNS, Fields: p.Fields})
		accepted++
	}
	s.stats.Points += uint64(accepted)
	return accepted, rejected
}

// insert keeps pts sorted by time. The exporter's stream is already
// monotonic per series, so the common case is a tail append; a
// backdated point (bulk-loaded history) binary-searches its slot.
func (sd *seriesData) insert(p Point) {
	n := len(sd.pts)
	if n == 0 || sd.pts[n-1].TimeNS <= p.TimeNS {
		sd.pts = append(sd.pts, p)
		return
	}
	i := sort.Search(n, func(i int) bool { return sd.pts[i].TimeNS > p.TimeNS })
	sd.pts = append(sd.pts, Point{})
	copy(sd.pts[i+1:], sd.pts[i:])
	sd.pts[i] = p
}

// Write ingests one line-protocol batch: durably appended as a single
// record first, then indexed. now drives partition rotation. It
// returns accepted/rejected line counts; a batch whose every line is
// rejected is still durable (recovery recounts the rejects) but
// reports an error to the poster.
func (s *Store) Write(body []byte, now time.Time) (accepted, rejected int, err error) {
	if len(body) == 0 {
		return 0, 0, nil
	}
	if len(body) > wal.MaxRecord {
		return 0, 0, fmt.Errorf("tsdb: batch is %d bytes, over the %d-byte record bound", len(body), wal.MaxRecord)
	}
	sp := hWrite.Start()
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rotateIfDue(now, int64(len(body))+24); err != nil {
		return 0, 0, err
	}
	rec := wal.EncodeRecord(nil, wal.KindPoints, s.nextSeq+1, body)
	if _, err := s.bw.Write(rec); err != nil {
		s.abandonActive()
		return 0, 0, fmt.Errorf("tsdb: appending: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		s.abandonActive()
		return 0, 0, fmt.Errorf("tsdb: flushing: %w", err)
	}
	s.nextSeq++
	s.activeBytes += int64(len(rec))
	s.diskBytes += int64(len(rec))
	s.stats.Bytes = s.diskBytes

	accepted, rejected = s.ingestLocked(string(body))
	s.stats.Written += uint64(accepted)
	s.stats.Rejected += uint64(rejected)
	mPointsWritten.Add(uint64(accepted))
	mLinesRejected.Add(uint64(rejected))
	mBatches.Inc()
	return accepted, rejected, nil
}

// rotateIfDue opens the first segment lazily and rotates when the write
// would land in a new time partition or push the segment over the size
// bound.
func (s *Store) rotateIfDue(now time.Time, need int64) error {
	part := now.Truncate(s.opts.PartitionDur).UnixNano()
	if s.f != nil {
		newPart := part != s.activePart
		over := s.activeBytes > 0 && s.activeBytes+need > s.opts.SegmentBytes
		if !newPart && !over {
			return nil
		}
		if err := s.closeActive(); err != nil {
			return err
		}
	}
	path := filepath.Join(s.opts.Dir, segName(s.nextSeq+1))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: creating segment %s: %w", path, err)
	}
	s.f = f
	s.bw = bufio.NewWriterSize(f, 64<<10)
	s.activeBytes = 0
	s.activePart = part
	s.segs++
	s.stats.Segments = s.segs
	return nil
}

// closeActive flushes, fsyncs, and closes the active segment — a
// rotated-away segment is finished history. The handles are released
// even on failure: bufio latches its first I/O error (ENOSPC, EIO), so
// once a Flush fails it fails forever, and keeping s.f/s.bw would pin
// every later Write to the same sticky error until process restart.
// Dropping them instead lets the next Write rotate to a fresh segment
// once the condition clears; the unflushed tail is abandoned (counted
// below) and whatever partial bytes did land read back as a torn tail.
func (s *Store) closeActive() error {
	if s.f == nil {
		return nil
	}
	flushErr := s.bw.Flush()
	var syncErr error
	if flushErr == nil {
		syncErr = s.f.Sync()
	}
	closeErr := s.f.Close()
	s.f, s.bw = nil, nil
	switch {
	case flushErr != nil:
		mSegsAbandoned.Inc()
		return fmt.Errorf("tsdb: flushing segment: %w", flushErr)
	case syncErr != nil:
		mSegsAbandoned.Inc()
		return fmt.Errorf("tsdb: syncing segment: %w", syncErr)
	case closeErr != nil:
		return fmt.Errorf("tsdb: closing segment: %w", closeErr)
	}
	return nil
}

// abandonActive drops a segment whose writer just hit an I/O error:
// the bufio error is latched, so the handles must go for the store to
// recover (see closeActive). A segment that never flushed an intact
// record is also removed from disk — its name is segName(nextSeq+1),
// exactly what the next rotation's O_EXCL create would use.
func (s *Store) abandonActive() {
	if s.f == nil {
		return
	}
	path := s.f.Name()
	s.f.Close()
	s.f, s.bw = nil, nil
	if s.activeBytes == 0 {
		os.Remove(path)
		s.segs--
		s.stats.Segments = s.segs
	}
	mSegsAbandoned.Inc()
	telemetry.LogFirst("tsdb.abandon", "tsdb: abandoned active segment %s after write error", path)
}

// Query returns series points with from <= t <= to (ns). A zero `to`
// means no upper bound. Unknown series yield an empty slice, not an
// error — a soak dashboard polling a series that has not reported yet
// should see [] rather than a failure.
func (s *Store) Query(series string, from, to int64) []Point {
	sp := hQuery.Start()
	defer sp.End()
	mQueries.Inc()
	if to == 0 {
		to = int64(^uint64(0) >> 1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.series[series]
	if sd == nil {
		return []Point{}
	}
	lo := sort.Search(len(sd.pts), func(i int) bool { return sd.pts[i].TimeNS >= from })
	hi := sort.Search(len(sd.pts), func(i int) bool { return sd.pts[i].TimeNS > to })
	out := make([]Point, hi-lo)
	copy(out, sd.pts[lo:hi])
	return out
}

// SeriesInfo summarizes one series for /series.
type SeriesInfo struct {
	Series  string `json:"series"`
	Points  int    `json:"points"`
	FirstNS int64  `json:"first_ns"`
	LastNS  int64  `json:"last_ns"`
}

// Series lists every known series sorted by key.
func (s *Store) Series() []SeriesInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesInfo, 0, len(s.series))
	for key, sd := range s.series {
		info := SeriesInfo{Series: key, Points: len(sd.pts)}
		if len(sd.pts) > 0 {
			info.FirstNS = sd.pts[0].TimeNS
			info.LastNS = sd.pts[len(sd.pts)-1].TimeNS
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series < out[j].Series })
	return out
}

// Stats snapshots the accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Series = len(s.series)
	return st
}

// Sync flushes and fsyncs the active segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("tsdb: flushing: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("tsdb: syncing: %w", err)
	}
	return nil
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeActive()
}
