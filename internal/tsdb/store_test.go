package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gretel/internal/telemetry/export"
)

func TestParseLineRoundTrip(t *testing.T) {
	// Everything the export encoder emits must parse back exactly.
	cases := []export.Point{
		{
			Name:   "core.events_ingested",
			Tags:   []export.Tag{{Key: "host", Value: "node-a"}, {Key: "proc", Value: "gretel"}},
			Fields: []export.Field{{Key: "delta", Value: 128, Integer: true}, {Key: "total", Value: 4096, Integer: true}},
			TimeNS: 1700000000000000000,
		},
		{
			Name:   "odd metric,name",
			Tags:   []export.Tag{{Key: "ta g", Value: "va,lue"}, {Key: "k=ey", Value: "v=al"}},
			Fields: []export.Field{{Key: "fie ld", Value: 1.5}, {Key: "f,k", Value: -3, Integer: true}},
			TimeNS: 42,
		},
		{
			Name:   "detect.score",
			Fields: []export.Field{{Key: "value", Value: 0.30000000000000004}, {Key: "neg", Value: -12, Integer: true}},
			TimeNS: -5,
		},
	}
	for _, c := range cases {
		enc, err := export.AppendPoint(nil, &c)
		if err != nil {
			t.Fatal(err)
		}
		line := strings.TrimSuffix(string(enc), "\n")
		p, err := ParseLine(line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if p.TimeNS != c.TimeNS {
			t.Fatalf("timestamp %d != %d for %q", p.TimeNS, c.TimeNS, line)
		}
		if len(p.Fields) != len(c.Fields) {
			t.Fatalf("field count %d != %d for %q (%v)", len(p.Fields), len(c.Fields), line, p.Fields)
		}
		for _, f := range c.Fields {
			got, ok := p.Fields[f.Key]
			if !ok {
				t.Fatalf("field %q missing after round trip of %q (%v)", f.Key, line, p.Fields)
			}
			if got != f.Value {
				t.Fatalf("field %q = %v, want %v", f.Key, got, f.Value)
			}
		}
	}
}

func TestParseLineCanonicalizesTagOrder(t *testing.T) {
	a, err := ParseLine(`m,b=2,a=1 v=1i 5`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseLine(`m,a=1,b=2 v=1i 5`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Series != b.Series || a.Series != "m,a=1,b=2" {
		t.Fatalf("series keys not canonical: %q vs %q", a.Series, b.Series)
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"nofields 123",
		"m v= 123",
		`m v="str" 123`,
		"m v=1i",          // no timestamp
		"m v=1i notanum",  // bad timestamp
		",t=1 v=1i 5",     // empty measurement
		"m,badtag v=1i 5", // tag without =
		"m v=12.3.4i 5",   // bad int
		"m =1i 5",         // empty field key
	} {
		if _, err := ParseLine(bad); err == nil {
			t.Fatalf("ParseLine(%q) accepted, want error", bad)
		}
	}
}

func TestStoreWriteQueryRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PartitionDur: time.Hour, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		batch := fmt.Sprintf("core.events,host=a delta=%di,total=%di %d\nwal.appended,host=a delta=1i %d\n",
			i, i*10, int64(i)*1e9, int64(i)*1e9)
		acc, rej, err := s.Write([]byte(batch), now)
		if err != nil || acc != 2 || rej != 0 {
			t.Fatalf("write %d: acc=%d rej=%d err=%v", i, acc, rej, err)
		}
	}

	pts := s.Query("core.events,host=a", 0, 0)
	if len(pts) != 10 {
		t.Fatalf("query returned %d points, want 10", len(pts))
	}
	// Range query: t in [2s, 5s].
	pts = s.Query("core.events,host=a", 2e9, 5e9)
	if len(pts) != 4 {
		t.Fatalf("range query returned %d points, want 4", len(pts))
	}
	if pts[0].TimeNS != 2e9 || pts[3].TimeNS != 5e9 {
		t.Fatalf("range bounds wrong: %d..%d", pts[0].TimeNS, pts[3].TimeNS)
	}
	if pts[0].Fields["delta"] != 2 {
		t.Fatalf("fields wrong: %v", pts[0].Fields)
	}
	if got := s.Query("no.such.series", 0, 0); len(got) != 0 {
		t.Fatalf("unknown series returned %d points", len(got))
	}

	infos := s.Series()
	if len(infos) != 2 {
		t.Fatalf("series list %v, want 2 entries", infos)
	}
	if infos[0].Series != "core.events,host=a" || infos[0].Points != 10 {
		t.Fatalf("series info wrong: %+v", infos[0])
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must come back from the segments.
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Recovered != 20 || st.Points != 20 {
		t.Fatalf("recovery stats %+v, want 20 points", st)
	}
	pts = s2.Query("wal.appended,host=a", 0, 0)
	if len(pts) != 10 {
		t.Fatalf("post-recovery query returned %d points, want 10", len(pts))
	}
	// Writes continue after recovery without segment-name collisions.
	if _, _, err := s2.Write([]byte("core.events,host=a delta=99i 99000000000\n"), now); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Write([]byte("m,h=a v=1i 1\nm,h=a v=2i 2\n"), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage at the end of the segment.
	names, err := s.listSegments()
	if err != nil || len(names) != 1 {
		t.Fatalf("segments: %v %v", names, err)
	}
	path := filepath.Join(dir, names[0])
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xF5, 0x9E, 'P', 0, 1, 2, 3}) // torn header
	f.Close()

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Recovered != 2 {
		t.Fatalf("recovered %d points, want 2", st.Recovered)
	}
	if st.SkippedBytes == 0 {
		t.Fatal("torn tail not counted in SkippedBytes")
	}
	// The store keeps working after recovering a torn segment.
	if _, _, err := s2.Write([]byte("m,h=a v=3i 3\n"), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if got := s2.Query("m,h=a", 0, 0); len(got) != 3 {
		t.Fatalf("post-tear query returned %d points, want 3", len(got))
	}
}

func TestStoreReopenAfterTornFirstRecord(t *testing.T) {
	// A crash after rotateIfDue creates a segment but before its first
	// record flushes leaves a trailing recordless segment named
	// segName(nextSeq+1) — exactly what the next Write's O_EXCL create
	// uses. Open must drop it, or every Write after reopen fails EEXIST.
	for _, tornBytes := range [][]byte{nil, {0xF5, 0x9E, 'P', 0, 1, 2}} {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Write([]byte("m,h=a v=1i 1\n"), time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Simulate the crash: a segment at the next sequence holding no
		// intact record (empty, or a torn first header).
		torn := filepath.Join(dir, segName(s.nextSeq+1))
		if err := os.WriteFile(torn, tornBytes, 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(torn); !os.IsNotExist(err) {
			t.Fatalf("recordless segment %s survived reopen (stat err %v)", torn, err)
		}
		if st := s2.Stats(); st.Segments != 1 || st.Recovered != 1 {
			t.Fatalf("stats after dropping recordless segment: %+v", st)
		}
		if _, _, err := s2.Write([]byte("m,h=a v=2i 2\n"), time.Unix(0, 0)); err != nil {
			t.Fatalf("write after reopen with %d torn bytes: %v", len(tornBytes), err)
		}
		if got := s2.Query("m,h=a", 0, 0); len(got) != 2 {
			t.Fatalf("query returned %d points, want 2", len(got))
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreRecoversFromWriteError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Write([]byte("m,h=a v=1i 1\n"), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}

	// Mid-segment failure: yank the fd so the next flush fails the way a
	// transient ENOSPC/EIO would. bufio latches the error; the store must
	// abandon the segment rather than return the sticky error forever.
	s.f.Close()
	if _, _, err := s.Write([]byte("m,h=a v=2i 2\n"), time.Unix(0, 0)); err == nil {
		t.Fatal("write on a dead fd unexpectedly succeeded")
	}
	if s.f != nil {
		t.Fatal("handles not released after write error")
	}
	if _, _, err := s.Write([]byte("m,h=a v=3i 3\n"), time.Unix(0, 0)); err != nil {
		t.Fatalf("write after abandoning dead segment: %v", err)
	}

	// First-write failure: a segment that never flushed a record must be
	// removed on abandon, or the next rotation's O_EXCL create of the
	// same name fails EEXIST.
	s.f.Close()
	if _, _, err := s.Write([]byte("m,h=a v=4i 4\n"), time.Unix(0, 0)); err == nil {
		t.Fatal("second dead-fd write unexpectedly succeeded")
	}
	if err := s.rotateIfDue(time.Unix(0, 0), 1); err != nil {
		t.Fatal(err)
	}
	s.f.Close() // fresh segment, zero records flushed
	if _, _, err := s.Write([]byte("m,h=a v=5i 5\n"), time.Unix(0, 0)); err == nil {
		t.Fatal("write into closed fresh segment unexpectedly succeeded")
	}
	if _, _, err := s.Write([]byte("m,h=a v=6i 6\n"), time.Unix(0, 0)); err != nil {
		t.Fatalf("write after abandoning recordless segment: %v", err)
	}

	// Everything durable must survive a reopen, and the abandoned tails
	// must not confuse recovery.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Query("m,h=a", 0, 0); len(got) != 3 {
		t.Fatalf("recovered %d points, want 3 (v=1, v=3, v=6)", len(got))
	}
}

func TestStorePartitionRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PartitionDur: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Write([]byte("m v=1i 1\n"), time.Unix(30, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Write([]byte("m v=2i 2\n"), time.Unix(31, 0)); err != nil {
		t.Fatal(err)
	}
	// Crossing the minute boundary must rotate to a new segment.
	if _, _, err := s.Write([]byte("m v=3i 3\n"), time.Unix(61, 0)); err != nil {
		t.Fatal(err)
	}
	names, _ := s.listSegments()
	if len(names) != 2 {
		t.Fatalf("expected 2 segments after partition rotation, got %v", names)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mux := http.NewServeMux()
	for _, m := range s.Mounts() {
		mux.Handle(m.Pattern, m.Handler)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("core.x,host=a delta=1i 1000\ncore.x,host=a delta=2i 2000\n"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("write status %d", resp.StatusCode)
	}
	// Partial batch: one bad line rejected, rest accepted.
	if resp := post("garbage line\ncore.x,host=a delta=3i 3000\n"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("partial write status %d", resp.StatusCode)
	} else if resp.Header.Get("X-Tsdb-Rejected") != "1" {
		t.Fatalf("rejected header %q, want 1", resp.Header.Get("X-Tsdb-Rejected"))
	}
	// Fully bad batch: 400.
	if resp := post("garbage\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad write status %d, want 400", resp.StatusCode)
	}
	// GET on /write: 405.
	if resp, _ := http.Get(srv.URL + "/write"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /write status %d", resp.StatusCode)
	}

	var qr struct {
		Series string  `json:"series"`
		Count  int     `json:"count"`
		Points []Point `json:"points"`
	}
	getJSON(t, srv.URL+"/query?series=core.x,host=a&from=1500&to=3000", &qr)
	if qr.Count != 2 || len(qr.Points) != 2 {
		t.Fatalf("query result %+v, want 2 points", qr)
	}
	if qr.Points[0].TimeNS != 2000 || qr.Points[0].Fields["delta"] != 2 {
		t.Fatalf("query point wrong: %+v", qr.Points[0])
	}

	var infos []SeriesInfo
	getJSON(t, srv.URL+"/series", &infos)
	if len(infos) != 1 || infos[0].Points != 3 {
		t.Fatalf("series listing wrong: %+v", infos)
	}

	var st Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Written != 3 || st.Rejected != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
