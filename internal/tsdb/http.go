// HTTP surface: /write (line protocol in), /query and /series (JSON
// out). Handlers are exposed as telemetry.Mounts so gretel-tsdb serves
// them on the same mux as /metrics and /healthz.

package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"gretel/internal/telemetry"
	"gretel/internal/wal"
)

// Mounts returns the store's HTTP handlers for telemetry.Serve.
func (s *Store) Mounts() []telemetry.Mount {
	return []telemetry.Mount{
		{Pattern: "/write", Handler: http.HandlerFunc(s.handleWrite)},
		{Pattern: "/query", Handler: http.HandlerFunc(s.handleQuery)},
		{Pattern: "/series", Handler: http.HandlerFunc(s.handleSeries)},
		{Pattern: "/stats", Handler: http.HandlerFunc(s.handleStats)},
	}
}

// handleWrite ingests a line-protocol batch. 204 on success (including
// partial acceptance — rejected lines are counted and reported in the
// X-Tsdb-Rejected header), 400 when nothing in the batch was usable,
// 413 over the record bound.
func (s *Store) handleWrite(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, wal.MaxRecord+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > wal.MaxRecord {
		http.Error(w, fmt.Sprintf("batch over the %d-byte bound", wal.MaxRecord), http.StatusRequestEntityTooLarge)
		return
	}
	accepted, rejected, err := s.Write(body, time.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if rejected > 0 {
		w.Header().Set("X-Tsdb-Rejected", strconv.Itoa(rejected))
	}
	if accepted == 0 && rejected > 0 {
		http.Error(w, fmt.Sprintf("all %d lines rejected", rejected), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleQuery serves /query?series=<key>&from=<ns>&to=<ns> as JSON.
// from/to are optional nanosecond bounds (inclusive).
func (s *Store) handleQuery(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	series := q.Get("series")
	if series == "" {
		http.Error(w, "series parameter is required (see /series for keys)", http.StatusBadRequest)
		return
	}
	from, err := parseNS(q.Get("from"))
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseNS(q.Get("to"))
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	pts := s.Query(series, from, to)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Series string  `json:"series"`
		Count  int     `json:"count"`
		Points []Point `json:"points"`
	}{Series: series, Count: len(pts), Points: pts})
}

// handleSeries lists every series with its point count and time span.
func (s *Store) handleSeries(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Series())
}

// handleStats serves the store accounting.
func (s *Store) handleStats(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// parseNS parses an optional int64 nanosecond parameter (empty = 0).
func parseNS(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.ParseInt(v, 10, 64)
}
