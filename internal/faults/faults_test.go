package faults

import (
	"testing"
	"time"

	"gretel/internal/cluster"
	"gretel/internal/openstack"
	"gretel/internal/simclock"
	"gretel/internal/trace"
)

func mkNodes() (*cluster.Fabric, *cluster.Node, *cluster.Node) {
	f := cluster.NewFabric(simclock.New(), 1)
	caller := f.AddNode("horizon-node", "10.0.0.1", trace.SvcHorizon)
	target := f.AddNode("nova-node", "10.0.0.3", trace.SvcNova)
	return f, caller, target
}

func mkInst(id uint64, name string) *openstack.Instance {
	return &openstack.Instance{ID: id, Op: &openstack.Operation{Name: name}}
}

func step(api trace.API) openstack.Step { return openstack.Step{API: api} }

func TestRuleMatchingDimensions(t *testing.T) {
	_, caller, target := mkNodes()
	api := trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers")
	other := trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers")

	p := NewPlan()
	p.Add(Rule{OpID: 7, API: api, StepIndex: -1, Outcome: openstack.Outcome{Status: 500}})

	if out := p.Outcome(mkInst(7, "x"), 3, step(api), caller, target); out.Status != 500 {
		t.Fatal("matching rule did not fire")
	}
	if out := p.Outcome(mkInst(8, "x"), 3, step(api), caller, target); out.Status != 0 {
		t.Fatal("wrong instance fired")
	}
	if out := p.Outcome(mkInst(7, "x"), 3, step(other), caller, target); out.Status != 0 {
		t.Fatal("wrong API fired")
	}
	if p.Fired != 1 {
		t.Fatalf("Fired = %d", p.Fired)
	}
}

func TestRuleOnceAndStepIndex(t *testing.T) {
	_, caller, target := mkNodes()
	api := trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers")
	p := NewPlan()
	p.Add(Rule{API: api, StepIndex: 2, Once: true, Outcome: openstack.Outcome{Status: 503}})

	if out := p.Outcome(mkInst(1, "x"), 1, step(api), caller, target); out.Status != 0 {
		t.Fatal("wrong step index fired")
	}
	if out := p.Outcome(mkInst(1, "x"), 2, step(api), caller, target); out.Status != 503 {
		t.Fatal("step-index rule did not fire")
	}
	if out := p.Outcome(mkInst(1, "x"), 2, step(api), caller, target); out.Status != 0 {
		t.Fatal("Once rule fired twice")
	}
}

func TestRuleServiceAndOpName(t *testing.T) {
	_, caller, target := mkNodes()
	p := NewPlan()
	p.Add(Rule{OpName: "vm-create", Service: trace.SvcNova, StepIndex: -1,
		Outcome: openstack.Outcome{Status: 500}})
	novaAPI := trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/limits")
	glanceAPI := trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images")

	if out := p.Outcome(mkInst(1, "vm-create"), 0, step(novaAPI), caller, target); out.Status != 500 {
		t.Fatal("service+name rule did not fire")
	}
	if out := p.Outcome(mkInst(1, "vm-create"), 0, step(glanceAPI), caller, target); out.Status != 0 {
		t.Fatal("service filter ignored")
	}
	if out := p.Outcome(mkInst(1, "vm-delete"), 0, step(novaAPI), caller, target); out.Status != 0 {
		t.Fatal("op-name filter ignored")
	}
}

func TestDepDownRules(t *testing.T) {
	_, caller, target := mkNodes()
	caller.AddDependency("ntp")
	p := NewPlan()
	p.FailWhenDepDown(trace.SvcNova, "libvirt", 500, "libvirt gone")
	p.Add(Rule{WhenDepDown: "ntp", DepOnCaller: true, StepIndex: -1,
		Outcome: openstack.Outcome{Status: 401}})
	api := trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/limits")

	// Dependencies healthy: nothing fires.
	if out := p.Outcome(mkInst(1, "x"), 0, step(api), caller, target); out.Status != 0 {
		t.Fatal("fired with healthy deps")
	}
	// Target-side dep down.
	target.SetDependency("libvirt", false)
	if out := p.Outcome(mkInst(1, "x"), 0, step(api), caller, target); out.Status != 500 {
		t.Fatal("target dep rule did not fire")
	}
	target.SetDependency("libvirt", true)
	// Caller-side dep down.
	caller.SetDependency("ntp", false)
	if out := p.Outcome(mkInst(1, "x"), 0, step(api), caller, target); out.Status != 401 {
		t.Fatal("caller dep rule did not fire")
	}
	// Nil node never matches a dep rule.
	if out := p.Outcome(mkInst(1, "x"), 0, step(api), nil, nil); out.Status != 0 {
		t.Fatal("nil nodes matched a dep rule")
	}
}

func TestResourceInjectorsRestore(t *testing.T) {
	_, _, target := mkNodes()
	base := target.Base.DiskFreeGB
	restoreDisk := ExhaustDisk(target, 0.5)
	if target.Base.DiskFreeGB != 0.5 {
		t.Fatal("disk not exhausted")
	}
	restoreDisk()
	if target.Base.DiskFreeGB != base {
		t.Fatal("disk not restored")
	}

	restoreCPU := InjectCPUSurge(target, 50)
	if target.CPUSurge != 50 {
		t.Fatal("surge not applied")
	}
	restoreCPU()
	if target.CPUSurge != 0 {
		t.Fatal("surge not removed")
	}

	restart := StopDependency(target, "mysql-conn")
	if target.Dependency("mysql-conn").Running {
		t.Fatal("dep not stopped")
	}
	restart()
	if !target.Dependency("mysql-conn").Running {
		t.Fatal("dep not restarted")
	}
}

func TestInjectLatencyWindow(t *testing.T) {
	d := openstack.NewDeployment(openstack.Config{Seed: 5})
	InjectLatency(d, "glance-node", 50*time.Millisecond, 10*time.Second, 20*time.Second)
	d.Sim.RunUntil(d.Sim.Now().Add(15 * time.Second))
	if d.Fabric.InjectedLatency("glance-node") != 50*time.Millisecond {
		t.Fatal("latency not injected inside the window")
	}
	d.Sim.RunUntil(d.Sim.Now().Add(20 * time.Second))
	if d.Fabric.InjectedLatency("glance-node") != 0 {
		t.Fatal("latency not removed after the window")
	}
}
