// Package faults provides the fault injectors the evaluation drives the
// deployment with (§7): API error outcomes (operational faults),
// dependency-conditioned failures (a crashed agent or stopped NTP daemon
// surfacing as API errors), injected latency (the tc analogue), and
// resource perturbations (CPU surges, disk exhaustion).
package faults

import (
	"time"

	"gretel/internal/cluster"
	"gretel/internal/openstack"
	"gretel/internal/trace"
)

// Rule matches operation steps and assigns an outcome. Zero-valued match
// fields are wildcards.
type Rule struct {
	// OpID matches a specific instance (0 = any).
	OpID uint64
	// OpName matches an operation type ("" = any).
	OpName string
	// API matches a specific API (zero = any).
	API trace.API
	// Service matches the API's owning service (SvcUnknown = any).
	Service trace.Service
	// StepIndex matches a specific step (-1 = any). Note that 0 is a
	// valid index, so the zero value of Rule must set StepIndex.
	StepIndex int
	// WhenDepDown makes the rule fire only while the named dependency is
	// stopped on the step's target node (or the caller's node when
	// DepOnCaller is set) — models errors caused by crashed agents,
	// stopped NTP, etc.
	WhenDepDown string
	// DepOnCaller checks WhenDepDown on the caller's node instead of the
	// target's (e.g. a stopped NTP agent on the Cinder host breaking its
	// Keystone authentication, §7.2.4).
	DepOnCaller bool
	// Outcome is what the step returns when the rule fires.
	Outcome openstack.Outcome
	// Once disarms the rule after its first firing.
	Once  bool
	fired bool
}

// matches reports whether the rule applies to the given step execution.
func (r *Rule) matches(inst *openstack.Instance, idx int, step openstack.Step, caller, target *cluster.Node) bool {
	if r.Once && r.fired {
		return false
	}
	if r.OpID != 0 && inst.ID != r.OpID {
		return false
	}
	if r.OpName != "" && inst.Op.Name != r.OpName {
		return false
	}
	if !r.API.Zero() && step.API != r.API {
		return false
	}
	if r.Service != trace.SvcUnknown && step.API.Service != r.Service {
		return false
	}
	if r.StepIndex >= 0 && idx != r.StepIndex {
		return false
	}
	if r.WhenDepDown != "" {
		node := target
		if r.DepOnCaller {
			node = caller
		}
		if node == nil {
			return false
		}
		d := node.Dependency(r.WhenDepDown)
		if d == nil || d.Running {
			return false
		}
	}
	return true
}

// Plan is an ordered rule list implementing openstack.Injector: the first
// matching rule decides the outcome.
type Plan struct {
	rules []*Rule
	// Fired counts rule firings (injected faults).
	Fired int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Add appends a rule and returns the stored copy (whose fired flag
// tracks state). Set StepIndex to -1 to match any step — 0 means
// literally the first step.
func (p *Plan) Add(r Rule) *Rule {
	rc := r
	p.rules = append(p.rules, &rc)
	return &rc
}

// FailAPI adds a rule failing every execution of api with the HTTP status
// (REST) or failure class (RPC) and error text.
func (p *Plan) FailAPI(api trace.API, status int, errText string) *Rule {
	return p.Add(Rule{API: api, StepIndex: -1, Outcome: openstack.Outcome{Status: status, ErrText: errText}})
}

// FailInstanceAt adds a rule failing one specific instance at an API.
func (p *Plan) FailInstanceAt(opID uint64, api trace.API, status int, errText string) *Rule {
	return p.Add(Rule{OpID: opID, API: api, StepIndex: -1,
		Outcome: openstack.Outcome{Status: status, ErrText: errText}})
}

// FailWhenDepDown adds a rule that fails steps of the given service's
// APIs while dep is stopped on the target node.
func (p *Plan) FailWhenDepDown(svc trace.Service, dep string, status int, errText string) *Rule {
	return p.Add(Rule{Service: svc, WhenDepDown: dep, StepIndex: -1,
		Outcome: openstack.Outcome{Status: status, ErrText: errText}})
}

// Outcome implements openstack.Injector.
func (p *Plan) Outcome(inst *openstack.Instance, idx int, step openstack.Step, caller, target *cluster.Node) openstack.Outcome {
	for _, r := range p.rules {
		if r.matches(inst, idx, step, caller, target) {
			r.fired = true
			p.Fired++
			return r.Outcome
		}
	}
	return openstack.Outcome{}
}

// InjectCPUSurge raises a node's CPU by pct points (the §7.2.2 scenario);
// returns a function that removes it.
func InjectCPUSurge(n *cluster.Node, pct float64) func() {
	n.CPUSurge += pct
	return func() { n.CPUSurge -= pct }
}

// ExhaustDisk drops a node's free disk to freeGB (the §7.2.1 scenario);
// returns a restore function.
func ExhaustDisk(n *cluster.Node, freeGB float64) func() {
	old := n.Base.DiskFreeGB
	n.Base.DiskFreeGB = freeGB
	return func() { n.Base.DiskFreeGB = old }
}

// StopDependency stops a software dependency on a node (crashed
// linuxbridge agent, stopped NTP, §7.2.3/§7.2.4); returns a restart
// function.
func StopDependency(n *cluster.Node, dep string) func() {
	n.SetDependency(dep, false)
	return func() { n.SetDependency(dep, true) }
}

// InjectLatency applies the tc analogue: extra one-way latency on all
// traffic to/from a node for a window of simulated time. If duration is
// zero the injection persists until the returned cancel runs.
func InjectLatency(d *openstack.Deployment, node string, extra time.Duration, after, duration time.Duration) func() {
	d.Sim.After(after, func() { d.Fabric.InjectLatency(node, extra) })
	if duration > 0 {
		d.Sim.After(after+duration, func() { d.Fabric.InjectLatency(node, 0) })
	}
	return func() { d.Fabric.InjectLatency(node, 0) }
}
