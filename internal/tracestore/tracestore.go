// Package tracestore holds GRETEL's evidence traces: the complete,
// replayable record of one Algorithm 2 decision — the paired
// request/response spans of the matched window, every fingerprint
// candidate with its match score and concrete rejection reason, each
// context-buffer growth step, the RCA inputs behind the root-cause
// verdict, and the identifier-chain links a HANSEL-style stitcher finds
// around the fault. A verdict alone ("op-x, θ=99.9%") asks operators to
// trust passive localization blindly; the trace lets them replay the
// reasoning (the state-graph and event-analysis literature both make
// this the precondition for adoption).
//
// Traces live in a bounded, sharded in-memory store. Eviction is FIFO
// per shard and always counted (tracestore.evicted) — the store never
// drops evidence silently. Browsing and export live in http.go
// (/traces endpoints) and export.go (text, NDJSON, Chrome trace-event
// JSON loadable in Perfetto).
package tracestore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gretel/internal/telemetry"
)

// Store telemetry: stored/evicted are counters (never reset by the
// store), live is the current resident count.
var (
	mStored  = telemetry.GetCounter("tracestore.stored")
	mEvicted = telemetry.GetCounter("tracestore.evicted")
	gLive    = telemetry.GetGauge("tracestore.live")
)

// Window summarizes the frozen α-window a detection ran over: how far
// the dual buffer slid past the fault before freezing, and the event
// bounds the context buffer grew inside.
type Window struct {
	// Alpha is the configured sliding-window size.
	Alpha int `json:"alpha"`
	// Events is the number of messages in the frozen snapshot (≤ α).
	Events int `json:"events"`
	// FaultIndex locates the offending message within the snapshot.
	FaultIndex int `json:"fault_index"`
	// PastEvents/FutureEvents count messages before/after the fault —
	// FutureEvents is how many slides the window made after arming
	// (α/2 on a full snapshot, fewer when Flush fired early).
	PastEvents   int `json:"past_events"`
	FutureEvents int `json:"future_events"`
	// FirstSeq and LastSeq bound the snapshot in receiver sequence.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// Truncated marks snapshots frozen before the future half filled
	// (end-of-stream Flush).
	Truncated bool `json:"truncated,omitempty"`
}

// Span is one paired request/response exchange inside the matched
// context buffer — a node of the evidence span tree. Parent is the
// index of the enclosing span (-1 for roots): an RPC nests under the
// REST exchange whose server issued it (matched by correlation id when
// stamped, by node adjacency otherwise).
type Span struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	API    string `json:"api"`
	Kind   string `json:"kind"` // "REST" | "RPC" | "RPC-cast"
	// Node is the serving endpoint (the request's destination).
	Node     string        `json:"node,omitempty"`
	StartSeq uint64        `json:"start_seq"`
	EndSeq   uint64        `json:"end_seq"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Status   int           `json:"status,omitempty"`
	Error    string        `json:"error,omitempty"`
	// Fault marks the span containing the offending message.
	Fault bool `json:"fault,omitempty"`
	// Unpaired marks half-exchanges whose other side fell outside the
	// context buffer.
	Unpaired bool `json:"unpaired,omitempty"`
}

// Candidate records how one fingerprint fared against the final context
// buffer: its score, and — when it lost — the concrete reason.
type Candidate struct {
	Name string `json:"name"`
	// Variant disambiguates branched operations registering several
	// fingerprints under one name.
	Variant int `json:"variant,omitempty"`
	// FPLen is the symbol count actually matched (after truncation at
	// the offending API and RPC pruning).
	FPLen int `json:"fp_len"`
	// Truncated reports the fingerprint was cut at the offending API.
	Truncated bool `json:"truncated,omitempty"`
	Matched   bool `json:"matched"`
	// Score is the fraction of the match obligation satisfied:
	// mandatory symbols found in order for the ordered walks, pattern
	// coverage for correlation-filtered matching.
	Score float64 `json:"score"`
	// MandatoryHit / MandatoryTotal / Omitted break the score down.
	MandatoryHit   int `json:"mandatory_hit"`
	MandatoryTotal int `json:"mandatory_total"`
	Omitted        int `json:"omitted,omitempty"`
	// Reason is the concrete rejection reason, empty on a match.
	Reason string `json:"reason,omitempty"`
}

// GrowthStep is one iteration of the β context-buffer growth loop.
type GrowthStep struct {
	Beta int `json:"beta"`
	// Lo and Hi are the event bounds within the snapshot at this β.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Pattern is the number of matchable symbols in the view.
	Pattern int      `json:"pattern"`
	Matched []string `json:"matched"`
	// Stopped marks the step discarded by the §5.3.1 stop rule (the
	// matched set grew; the previous, tighter set was kept).
	Stopped bool `json:"stopped,omitempty"`
	// Covered marks the step at which the view spanned the snapshot.
	Covered bool `json:"covered,omitempty"`
}

// EventRef references one snapshot event (the error messages feeding
// offending-API selection).
type EventRef struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	API    string    `json:"api"`
	Node   string    `json:"node,omitempty"`
	Status int       `json:"status,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// ChainLink is one event a HANSEL-style identifier stitch links to the
// fault — cross-operation evidence the span tree cannot show.
type ChainLink struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	API   string    `json:"api"`
	Ident string    `json:"ident"`
}

// RCADep is one watched software dependency's status on an examined node.
type RCADep struct {
	Name    string `json:"name"`
	Running bool   `json:"running"`
}

// RCAMetric is one resource time series the RCA engine inspected.
type RCAMetric struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	Last    float64 `json:"last"`
	Mean    float64 `json:"mean"`
	Shifted bool    `json:"shifted,omitempty"`
	ShiftTo float64 `json:"shift_to,omitempty"`
}

// RCANode records everything the RCA engine saw on one node.
type RCANode struct {
	Node string `json:"node"`
	// Stage is "error" for nodes the error messages touch (examined
	// first) or "operation" for the wider candidate-operation set.
	Stage    string      `json:"stage"`
	Up       bool        `json:"up"`
	Deps     []RCADep    `json:"deps,omitempty"`
	Metrics  []RCAMetric `json:"metrics,omitempty"`
	Findings []string    `json:"findings,omitempty"`
}

// RCAEvidence is the root-cause verdict's inputs: the nodes examined in
// order, with the metric windows and watcher statuses judged on each.
type RCAEvidence struct {
	Nodes []RCANode `json:"nodes"`
}

// Trace is the complete evidence record behind one fault report.
type Trace struct {
	// ID is the fault-arrival sequence assigned on the receiver
	// goroutine — identical across DetectWorkers settings.
	ID   uint64 `json:"id"`
	Kind string `json:"kind"` // "operational" | "performance"

	FaultSeq     uint64    `json:"fault_seq"`
	FaultTime    time.Time `json:"fault_time"`
	DetectedAt   time.Time `json:"detected_at"`
	OffendingAPI string    `json:"offending_api"`
	// LatencyMs carries the anomalous latency for performance faults.
	LatencyMs float64 `json:"latency_ms,omitempty"`
	// CorrID is set when correlation-id-filtered matching was used.
	CorrID string `json:"corr_id,omitempty"`
	// StrictMatch / RPCPruned record the matcher configuration.
	StrictMatch bool `json:"strict_match,omitempty"`
	RPCPruned   bool `json:"rpc_pruned,omitempty"`

	Window     Window       `json:"window"`
	Errors     []EventRef   `json:"errors,omitempty"`
	Growth     []GrowthStep `json:"growth"`
	Candidates []Candidate  `json:"candidates"`
	Spans      []Span       `json:"spans"`
	Chain      []ChainLink  `json:"chain,omitempty"`
	// ChainTruncated counts chain links dropped past the recording cap
	// (never silently: the count is the evidence they existed).
	ChainTruncated int `json:"chain_truncated,omitempty"`

	// The verdict, duplicated from the report for self-containment.
	Matched       []string     `json:"matched"`
	Beta          int          `json:"beta"`
	Precision     float64      `json:"precision"`
	RootCauses    []string     `json:"root_causes,omitempty"`
	RCA           *RCAEvidence `json:"rca,omitempty"`
	DegradedNodes []string     `json:"degraded_nodes,omitempty"`
}

// shardCount spreads the store across this many locks so concurrent
// detect workers and HTTP readers never contend on one mutex. Must be a
// power of two.
const shardCount = 16

// DefaultCap bounds the store when the caller passes cap ≤ 0.
const DefaultCap = 4096

type shard struct {
	mu     sync.Mutex
	byID   map[uint64]*Trace
	fifo   []uint64 // insertion order, head at [drop:]
	drop   int      // evicted prefix of fifo (compacted lazily)
	capped int      // per-shard capacity
}

// Store is the bounded, sharded evidence-trace store. All methods are
// safe for concurrent use.
type Store struct {
	shards  [shardCount]shard
	stored  atomic.Uint64
	evicted atomic.Uint64
}

// New returns a store holding at most cap traces (DefaultCap when
// cap ≤ 0). When full, the oldest trace in the incoming trace's shard
// is evicted and counted in tracestore.evicted — never silently.
func New(cap int) *Store {
	if cap <= 0 {
		cap = DefaultCap
	}
	per := cap / shardCount
	if per < 1 {
		per = 1
	}
	s := &Store{}
	for i := range s.shards {
		s.shards[i] = shard{byID: make(map[uint64]*Trace), capped: per}
	}
	return s
}

// Cap returns the effective capacity.
func (s *Store) Cap() int { return s.shards[0].capped * shardCount }

func (s *Store) shardFor(id uint64) *shard {
	return &s.shards[id&(shardCount-1)]
}

// Put stores a trace under its pre-assigned ID, evicting the shard's
// oldest trace when full. Re-putting an existing ID replaces it.
func (s *Store) Put(t *Trace) {
	sh := s.shardFor(t.ID)
	sh.mu.Lock()
	if _, exists := sh.byID[t.ID]; !exists {
		if len(sh.byID) >= sh.capped {
			// FIFO eviction: drop the oldest still-resident id.
			for sh.drop < len(sh.fifo) {
				old := sh.fifo[sh.drop]
				sh.drop++
				if _, ok := sh.byID[old]; ok {
					delete(sh.byID, old)
					s.evicted.Add(1)
					mEvicted.Inc()
					gLive.Add(-1)
					break
				}
			}
			if sh.drop > len(sh.fifo)/2 && sh.drop > 16 {
				sh.fifo = append(sh.fifo[:0], sh.fifo[sh.drop:]...)
				sh.drop = 0
			}
		}
		sh.fifo = append(sh.fifo, t.ID)
		s.stored.Add(1)
		mStored.Inc()
		gLive.Add(1)
	}
	sh.byID[t.ID] = t
	sh.mu.Unlock()
}

// Get returns the trace with the given ID, or nil.
func (s *Store) Get(id uint64) *Trace {
	sh := s.shardFor(id)
	sh.mu.Lock()
	t := sh.byID[id]
	sh.mu.Unlock()
	return t
}

// Len reports the number of resident traces.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.byID)
		sh.mu.Unlock()
	}
	return n
}

// Stored reports the total traces ever stored.
func (s *Store) Stored() uint64 { return s.stored.Load() }

// Evicted reports the total traces evicted under the size cap.
func (s *Store) Evicted() uint64 { return s.evicted.Load() }

// IDs returns the resident trace IDs in ascending order.
func (s *Store) IDs() []uint64 {
	out := make([]uint64, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.byID {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns the resident traces in ascending ID order.
func (s *Store) All() []*Trace {
	ids := s.IDs()
	out := make([]*Trace, 0, len(ids))
	for _, id := range ids {
		if t := s.Get(id); t != nil {
			out = append(out, t)
		}
	}
	return out
}
