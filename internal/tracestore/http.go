// /traces endpoints: live browsing of the evidence-trace store over the
// telemetry mux. /traces lists the resident traces (one line each);
// /traces/<id> serves one trace's full evidence. Both honor ?format=:
// "json" (indented JSON), "ndjson" (one object per line), "chrome"
// (Chrome trace-event JSON — save and load in Perfetto or
// chrome://tracing). The default is human-readable text.
package tracestore

import (
	"net/http"
	"strconv"
	"strings"
)

// Handler serves the /traces index and /traces/<id> detail views. Mount
// it at both "/traces" and "/traces/" on the telemetry mux.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/traces")
		rest = strings.Trim(rest, "/")
		format := r.URL.Query().Get("format")

		if rest == "" {
			s.serveIndex(w, format)
			return
		}
		id, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id: "+rest, http.StatusBadRequest)
			return
		}
		t := s.Get(id)
		if t == nil {
			http.Error(w, "no such trace (evicted or never stored)", http.StatusNotFound)
			return
		}
		s.serveTrace(w, t, format)
	})
}

func (s *Store) serveIndex(w http.ResponseWriter, format string) {
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, s.All())
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteNDJSON(w, s.All())
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, s.All())
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteIndex(w, s)
	}
}

func (s *Store) serveTrace(w http.ResponseWriter, t *Trace, format string) {
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, []*Trace{t})
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteNDJSON(w, []*Trace{t})
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, []*Trace{t})
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, t)
	}
}
