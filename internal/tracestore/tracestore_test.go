package tracestore

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkTrace(id uint64) *Trace {
	at := time.Date(2016, 12, 12, 10, 0, 0, int(id)*1e6, time.UTC)
	return &Trace{
		ID: id, Kind: "operational", OffendingAPI: "POST /v2.1/servers",
		FaultSeq: 100 + id, FaultTime: at, DetectedAt: at.Add(50 * time.Millisecond),
		Window: Window{Alpha: 768, Events: 768, FaultIndex: 384, FirstSeq: 1, LastSeq: 768},
		Growth: []GrowthStep{{Beta: 76, Lo: 346, Hi: 423, Pattern: 40, Matched: []string{"op-a"}}},
		Candidates: []Candidate{
			{Name: "op-a", FPLen: 7, Truncated: true, Matched: true, Score: 1, MandatoryHit: 7, MandatoryTotal: 7},
			{Name: "op-b", FPLen: 5, Truncated: true, Matched: false, Score: 0.4, MandatoryHit: 2,
				MandatoryTotal: 5, Reason: "offending symbol POST /v2.1/servers absent from the context buffer"},
		},
		Spans: []Span{
			{ID: 0, Parent: -1, API: "POST /v2.1/servers", Kind: "REST", Node: "ctl-1",
				StartSeq: 99, EndSeq: 100 + id, Start: at.Add(-12 * time.Millisecond),
				Duration: 12 * time.Millisecond, Status: 500, Fault: true},
			{ID: 1, Parent: 0, API: "compute.run_instance", Kind: "RPC", Node: "cmp-1",
				StartSeq: 99, EndSeq: 100, Start: at.Add(-10 * time.Millisecond),
				Duration: 5 * time.Millisecond},
		},
		Matched: []string{"op-a"}, Beta: 76, Precision: 0.99,
	}
}

func TestStorePutGetEvict(t *testing.T) {
	s := New(32) // 2 per shard
	if s.Cap() != 32 {
		t.Fatalf("Cap() = %d, want 32", s.Cap())
	}
	// Fill one shard (ids congruent mod 16) past its per-shard cap.
	for _, id := range []uint64{16, 32, 48} {
		s.Put(mkTrace(id))
	}
	if s.Get(16) != nil {
		t.Error("oldest trace in the full shard should have been evicted")
	}
	if s.Get(32) == nil || s.Get(48) == nil {
		t.Error("newer traces must survive eviction")
	}
	if s.Evicted() != 1 {
		t.Errorf("Evicted() = %d, want 1 (eviction must be counted, never silent)", s.Evicted())
	}
	if s.Stored() != 3 {
		t.Errorf("Stored() = %d, want 3", s.Stored())
	}
	if s.Len() != 2 {
		t.Errorf("Len() = %d, want 2", s.Len())
	}
}

func TestStoreIDsSorted(t *testing.T) {
	s := New(0)
	for _, id := range []uint64{7, 3, 21, 1, 14} {
		s.Put(mkTrace(id))
	}
	ids := s.IDs()
	want := []uint64{1, 3, 7, 14, 21}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
	all := s.All()
	for i, tr := range all {
		if tr.ID != want[i] {
			t.Fatalf("All()[%d].ID = %d, want %d", i, tr.ID, want[i])
		}
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := uint64(g*100 + i)
				s.Put(mkTrace(id))
				s.Get(id)
				if i%10 == 0 {
					s.IDs()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Stored() != 800 {
		t.Errorf("Stored() = %d, want 800", s.Stored())
	}
	if got := uint64(s.Len()) + s.Evicted(); got != 800 {
		t.Errorf("Len()+Evicted() = %d, want 800", got)
	}
}

func TestWriteNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, []*Trace{mkTrace(1), mkTrace(2)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d, want 2", len(lines))
	}
	var rt Trace
	if err := json.Unmarshal([]byte(lines[0]), &rt); err != nil {
		t.Fatalf("NDJSON line does not round-trip: %v", err)
	}
	if rt.ID != 1 || len(rt.Candidates) != 2 || rt.Candidates[1].Reason == "" {
		t.Errorf("round-tripped trace lost fields: %+v", rt)
	}
}

func TestWriteChromeTraceLoads(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Trace{mkTrace(1)}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var haveComplete, haveMeta, haveInstant bool
	for _, ev := range out.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("trace event missing required key %q: %v", k, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			haveComplete = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "M":
			haveMeta = true
		case "i":
			haveInstant = true
		}
	}
	if !haveComplete || !haveMeta || !haveInstant {
		t.Errorf("export should contain complete, metadata, and instant events (got X=%v M=%v i=%v)",
			haveComplete, haveMeta, haveInstant)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	s := New(0)
	s.Put(mkTrace(3))

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/traces")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "trace 3") {
		t.Errorf("/traces index: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("/traces Content-Type = %q", ct)
	}

	rec = get("/traces/3")
	body := rec.Body.String()
	if rec.Code != 200 {
		t.Fatalf("/traces/3: code=%d", rec.Code)
	}
	for _, want := range []string{"operational fault", "context-buffer growth", "candidates",
		"span tree", "absent from the context buffer", "FAULT"} {
		if !strings.Contains(body, want) {
			t.Errorf("/traces/3 text missing %q in:\n%s", want, body)
		}
	}

	rec = get("/traces/3?format=json")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var arr []Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &arr); err != nil || len(arr) != 1 {
		t.Errorf("json detail: err=%v n=%d", err, len(arr))
	}

	rec = get("/traces/3?format=chrome")
	if !strings.Contains(rec.Body.String(), "traceEvents") {
		t.Error("chrome detail missing traceEvents")
	}

	if rec = get("/traces/99"); rec.Code != 404 {
		t.Errorf("missing trace: code=%d, want 404", rec.Code)
	}
	if rec = get("/traces/bogus"); rec.Code != 400 {
		t.Errorf("bad id: code=%d, want 400", rec.Code)
	}
}
