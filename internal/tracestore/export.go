// Evidence-trace exports: a human-readable text rendering for the
// /traces endpoints, NDJSON structured logs for offline diffing, and
// Chrome trace-event JSON loadable in Perfetto / chrome://tracing. All
// renderings are pure functions of the trace — deterministic, so two
// runs producing the same traces export byte-identical files.
package tracestore

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteNDJSON writes one JSON object per line per trace — the diffable
// structured-log export.
func WriteNDJSON(w io.Writer, traces []*Trace) error {
	enc := json.NewEncoder(w)
	for _, t := range traces {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the traces as one JSON array.
func WriteJSON(w io.Writer, traces []*Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

// chromeEvent is one Chrome trace-event (the Trace Event Format consumed
// by Perfetto and chrome://tracing): ph "X" complete events for spans,
// ph "i" instants for point evidence, ph "M" metadata naming the lanes.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // µs
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// algorithmTid is the synthetic lane carrying Algorithm 2's own steps
// (growth iterations, candidate verdicts, the fault instant). Node span
// lanes start at 1.
const algorithmTid = 0

// WriteChromeTrace writes the traces in Chrome trace-event JSON. Each
// trace becomes one process (pid = trace ID); each node in its span
// tree becomes one thread lane, plus an "algorithm 2" lane holding the
// growth steps and candidate verdicts as instant events. Timestamps are
// event (virtual) time relative to the trace's earliest span, in µs.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	events := make([]chromeEvent, 0, 64*len(traces)+2)
	for _, t := range traces {
		events = append(events, chromeEvents(t)...)
	}
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func chromeEvents(t *Trace) []chromeEvent {
	// Timebase: the earliest span start (fault time when there are no
	// spans), so every trace starts near ts 0 regardless of how long the
	// replay ran before it.
	t0 := t.FaultTime
	for i := range t.Spans {
		if t.Spans[i].Start.Before(t0) {
			t0 = t.Spans[i].Start
		}
	}
	us := func(at time.Time) float64 { return float64(at.Sub(t0)) / 1e3 }

	// One thread lane per node, in sorted order for determinism.
	nodeSet := map[string]bool{}
	for i := range t.Spans {
		nodeSet[t.Spans[i].Node] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	tid := map[string]int{}
	for i, n := range nodes {
		tid[n] = i + 1
	}

	procName := fmt.Sprintf("trace %d: %s fault at %s", t.ID, t.Kind, t.OffendingAPI)
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: t.ID, Tid: algorithmTid,
			Args: map[string]any{"name": procName}},
		{Name: "thread_name", Ph: "M", Pid: t.ID, Tid: algorithmTid,
			Args: map[string]any{"name": "algorithm 2"}},
	}
	for _, n := range nodes {
		name := n
		if name == "" {
			name = "(unknown node)"
		}
		evs = append(evs, chromeEvent{Name: "thread_name", Ph: "M", Pid: t.ID,
			Tid: tid[n], Args: map[string]any{"name": name}})
	}

	for i := range t.Spans {
		sp := &t.Spans[i]
		args := map[string]any{
			"kind": sp.Kind, "start_seq": sp.StartSeq, "end_seq": sp.EndSeq,
		}
		if sp.Status != 0 {
			args["status"] = sp.Status
		}
		if sp.Error != "" {
			args["error"] = sp.Error
		}
		if sp.Fault {
			args["fault"] = true
		}
		if sp.Unpaired {
			evs = append(evs, chromeEvent{Name: sp.API, Cat: sp.Kind, Ph: "i",
				Ts: us(sp.Start), Pid: t.ID, Tid: tid[sp.Node], S: "t", Args: args})
			continue
		}
		dur := float64(sp.Duration) / 1e3
		if dur < 1 {
			dur = 1 // sub-µs exchanges still need a visible slice
		}
		evs = append(evs, chromeEvent{Name: sp.API, Cat: sp.Kind, Ph: "X",
			Ts: us(sp.Start), Dur: dur, Pid: t.ID, Tid: tid[sp.Node], Args: args})
	}

	// Algorithm 2's own steps as instants on the synthetic lane,
	// staggered by a µs each so Perfetto keeps their order visible.
	at := us(t.FaultTime)
	evs = append(evs, chromeEvent{Name: "fault: " + t.OffendingAPI, Cat: "fault",
		Ph: "i", Ts: at, Pid: t.ID, Tid: algorithmTid, S: "t",
		Args: map[string]any{"fault_seq": t.FaultSeq, "kind": t.Kind}})
	for i, g := range t.Growth {
		name := fmt.Sprintf("grow β=%d → %d matched", g.Beta, len(g.Matched))
		if g.Stopped {
			name = fmt.Sprintf("grow β=%d STOPPED (matched set grew, kept previous)", g.Beta)
		}
		evs = append(evs, chromeEvent{Name: name, Cat: "growth", Ph: "i",
			Ts: at + float64(i+1), Pid: t.ID, Tid: algorithmTid, S: "t",
			Args: map[string]any{"beta": g.Beta, "matched": g.Matched, "pattern": g.Pattern}})
	}
	base := at + float64(len(t.Growth)+1)
	for i, c := range t.Candidates {
		verdict := "rejected"
		if c.Matched {
			verdict = "matched"
		}
		args := map[string]any{"score": c.Score, "verdict": verdict}
		if c.Reason != "" {
			args["reason"] = c.Reason
		}
		evs = append(evs, chromeEvent{Name: fmt.Sprintf("%s: %s", verdict, c.Name),
			Cat: "candidate", Ph: "i", Ts: base + float64(i), Pid: t.ID,
			Tid: algorithmTid, S: "t", Args: args})
	}
	return evs
}

// WriteText renders one trace's full evidence in human-readable form —
// the /traces/<id> default view.
func WriteText(w io.Writer, t *Trace) {
	fmt.Fprintf(w, "trace %d: %s fault at %s (fault seq %d, detected %s",
		t.ID, t.Kind, t.OffendingAPI, t.FaultSeq, t.DetectedAt.Format("15:04:05.000"))
	if t.LatencyMs > 0 {
		fmt.Fprintf(w, ", latency %.1fms", t.LatencyMs)
	}
	fmt.Fprintf(w, ")\n")

	flags := make([]string, 0, 3)
	if t.StrictMatch {
		flags = append(flags, "strict-match")
	}
	if t.RPCPruned {
		flags = append(flags, "rpc-pruned")
	}
	if t.CorrID != "" {
		flags = append(flags, "corr-id="+t.CorrID)
	}
	if len(flags) > 0 {
		fmt.Fprintf(w, "  matcher: %s\n", strings.Join(flags, ", "))
	}

	win := t.Window
	fmt.Fprintf(w, "  window: alpha=%d, %d events [seq %d..%d], fault at index %d (%d past / %d future)",
		win.Alpha, win.Events, win.FirstSeq, win.LastSeq, win.FaultIndex, win.PastEvents, win.FutureEvents)
	if win.Truncated {
		fmt.Fprintf(w, " [flushed early]")
	}
	fmt.Fprintln(w)

	if len(t.Errors) > 0 {
		fmt.Fprintf(w, "  errors in window (%d):\n", len(t.Errors))
		for _, e := range t.Errors {
			fmt.Fprintf(w, "    seq %-8d %-12s %-50s node=%-10s", e.Seq, e.Type, e.API, e.Node)
			if e.Status != 0 {
				fmt.Fprintf(w, " status=%d", e.Status)
			}
			if e.Error != "" {
				fmt.Fprintf(w, " %q", e.Error)
			}
			fmt.Fprintln(w)
		}
	}

	if len(t.Growth) > 0 {
		fmt.Fprintf(w, "  context-buffer growth:\n")
		for _, g := range t.Growth {
			fmt.Fprintf(w, "    beta=%-5d events[%d..%d) pattern=%-5d matched=%d %v",
				g.Beta, g.Lo, g.Hi, g.Pattern, len(g.Matched), g.Matched)
			if g.Stopped {
				fmt.Fprintf(w, "  <- STOPPED: matched set grew; kept previous step")
			}
			if g.Covered {
				fmt.Fprintf(w, "  <- window covered")
			}
			fmt.Fprintln(w)
		}
	}

	matched := 0
	for _, c := range t.Candidates {
		if c.Matched {
			matched++
		}
	}
	fmt.Fprintf(w, "  candidates (%d matched of %d):\n", matched, len(t.Candidates))
	for _, c := range t.Candidates {
		mark := "-"
		if c.Matched {
			mark = "+"
		}
		name := c.Name
		if c.Variant > 0 {
			name = fmt.Sprintf("%s#%d", c.Name, c.Variant)
		}
		fmt.Fprintf(w, "    %s %-55s score=%.2f (%d/%d mandatory",
			mark, name, c.Score, c.MandatoryHit, c.MandatoryTotal)
		if c.Omitted > 0 {
			fmt.Fprintf(w, ", %d omitted", c.Omitted)
		}
		fmt.Fprintf(w, ", fp=%d syms", c.FPLen)
		if c.Truncated {
			fmt.Fprintf(w, " truncated")
		}
		fmt.Fprintf(w, ")")
		if c.Reason != "" {
			fmt.Fprintf(w, " — %s", c.Reason)
		}
		fmt.Fprintln(w)
	}

	if len(t.Spans) > 0 {
		fmt.Fprintf(w, "  span tree (%d spans):\n", len(t.Spans))
		children := make(map[int][]int)
		var roots []int
		for i := range t.Spans {
			p := t.Spans[i].Parent
			if p < 0 {
				roots = append(roots, i)
			} else {
				children[p] = append(children[p], i)
			}
		}
		var render func(i, depth int)
		render = func(i, depth int) {
			sp := &t.Spans[i]
			fmt.Fprintf(w, "    %s[%d] %-8s %-50s node=%-10s seq %d..%d %.2fms",
				strings.Repeat("  ", depth), sp.ID, sp.Kind, sp.API, sp.Node,
				sp.StartSeq, sp.EndSeq, float64(sp.Duration)/1e6)
			if sp.Status != 0 {
				fmt.Fprintf(w, " status=%d", sp.Status)
			}
			if sp.Error != "" {
				fmt.Fprintf(w, " %q", sp.Error)
			}
			if sp.Unpaired {
				fmt.Fprintf(w, " [unpaired]")
			}
			if sp.Fault {
				fmt.Fprintf(w, "  <== FAULT")
			}
			fmt.Fprintln(w)
			for _, c := range children[i] {
				render(c, depth+1)
			}
		}
		for _, r := range roots {
			render(r, 0)
		}
	}

	if len(t.Chain) > 0 {
		fmt.Fprintf(w, "  identifier chain (%d links", len(t.Chain))
		if t.ChainTruncated > 0 {
			fmt.Fprintf(w, ", %d more truncated", t.ChainTruncated)
		}
		fmt.Fprintf(w, "):\n")
		for _, l := range t.Chain {
			fmt.Fprintf(w, "    seq %-8d %-50s via %s\n", l.Seq, l.API, l.Ident)
		}
	}

	if t.RCA != nil {
		fmt.Fprintf(w, "  rca evidence:\n")
		for _, n := range t.RCA.Nodes {
			up := "up"
			if !n.Up {
				up = "DOWN"
			}
			fmt.Fprintf(w, "    node %s (%s stage, %s)\n", n.Node, n.Stage, up)
			for _, d := range n.Deps {
				st := "running"
				if !d.Running {
					st = "STOPPED"
				}
				fmt.Fprintf(w, "      dep %-24s %s\n", d.Name, st)
			}
			for _, m := range n.Metrics {
				fmt.Fprintf(w, "      metric %-16s n=%-4d last=%-10.2f mean=%-10.2f",
					m.Name, m.Samples, m.Last, m.Mean)
				if m.Shifted {
					fmt.Fprintf(w, " SHIFT->%.2f", m.ShiftTo)
				}
				fmt.Fprintln(w)
			}
			for _, f := range n.Findings {
				fmt.Fprintf(w, "      finding: %s\n", f)
			}
		}
	}

	fmt.Fprintf(w, "  verdict: %d operations %v, beta=%d, precision=%.2f%%\n",
		len(t.Matched), t.Matched, t.Beta, t.Precision*100)
	for _, rc := range t.RootCauses {
		fmt.Fprintf(w, "  root cause: %s\n", rc)
	}
	if len(t.DegradedNodes) > 0 {
		fmt.Fprintf(w, "  degraded confidence: monitoring gaps on %s\n",
			strings.Join(t.DegradedNodes, ", "))
	}
}

// WriteIndex renders the one-line-per-trace store listing — the /traces
// default view.
func WriteIndex(w io.Writer, s *Store) {
	traces := s.All()
	fmt.Fprintf(w, "# %d evidence traces resident (stored %d, evicted %d, cap %d)\n",
		len(traces), s.Stored(), s.Evicted(), s.Cap())
	for _, t := range traces {
		matched := 0
		rejected := 0
		for _, c := range t.Candidates {
			if c.Matched {
				matched++
			} else {
				rejected++
			}
		}
		fmt.Fprintf(w, "trace %-6d %-12s %-50s matched=%-3d rejected=%-3d beta=%-5d precision=%.2f%%\n",
			t.ID, t.Kind, t.OffendingAPI, matched, rejected, t.Beta, t.Precision*100)
	}
}
