package metrics

import (
	"testing"
	"time"

	"gretel/internal/cluster"
	"gretel/internal/simclock"
	"gretel/internal/trace"
)

func ts(sec int) time.Time { return simclock.Epoch.Add(time.Duration(sec) * time.Second) }

func TestSeriesWindow(t *testing.T) {
	s := &Series{name: "n/cpu"}
	for i := 0; i < 10; i++ {
		s.Append(ts(i), float64(i))
	}
	got := s.Window(ts(3), ts(6))
	if len(got) != 4 || got[0].Value != 3 || got[3].Value != 6 {
		t.Fatalf("Window = %v", got)
	}
	if len(s.Window(ts(100), ts(200))) != 0 {
		t.Fatal("empty window not empty")
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSeriesLast(t *testing.T) {
	s := &Series{}
	for i := 0; i < 5; i++ {
		s.Append(ts(i), float64(i))
	}
	last := s.Last(2)
	if len(last) != 2 || last[1].Value != 4 {
		t.Fatalf("Last(2) = %v", last)
	}
	if got := s.Last(99); len(got) != 5 {
		t.Fatalf("Last(99) = %d points", len(got))
	}
}

func TestCollectorRecordAndSeries(t *testing.T) {
	c := NewCollector()
	c.Record("nova-node", MetricCPU, ts(0), 5)
	c.Record("nova-node", MetricCPU, ts(1), 6)
	s := c.Series("nova-node", MetricCPU)
	if s == nil || s.Len() != 2 {
		t.Fatalf("series missing or wrong length: %v", s)
	}
	if c.Series("ghost", MetricCPU) != nil {
		t.Fatal("ghost series exists")
	}
}

func TestPollNodeRecordsAllMetrics(t *testing.T) {
	sim := simclock.New()
	f := cluster.NewFabric(sim, 1)
	n := f.AddNode("glance-node", "10.0.0.6", trace.SvcGlance)
	c := NewCollector()
	c.PollNode(n, sim.Now())
	for _, m := range MetricNames {
		if s := c.Series("glance-node", m); s == nil || s.Len() != 1 {
			t.Errorf("metric %q not recorded", m)
		}
	}
}

func TestStartPollingPeriodAndStop(t *testing.T) {
	sim := simclock.New()
	f := cluster.NewFabric(sim, 1)
	f.AddNode("a", "10.0.0.1", trace.SvcNova)
	down := f.AddNode("b", "10.0.0.2", trace.SvcNeutron)
	down.Up = false
	c := NewCollector()
	c.StartPolling(f, sim, time.Second, func() bool { return sim.Now().After(ts(10)) })
	sim.RunUntil(ts(30))
	s := c.Series("a", MetricCPU)
	if s == nil {
		t.Fatal("no samples for node a")
	}
	// Polls at t=1..10 inclusive: 10 samples.
	if s.Len() != 10 {
		t.Fatalf("sample count = %d, want 10", s.Len())
	}
	if c.Series("b", MetricCPU) != nil {
		t.Fatal("down node was polled")
	}
}

func TestSnapshot(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 20; i++ {
		c.Record("n1", MetricCPU, ts(i), float64(i))
		c.Record("n1", MetricDiskFree, ts(i), 100-float64(i))
	}
	snap := c.Snapshot("n1", ts(5), ts(8))
	if len(snap[MetricCPU]) != 4 || len(snap[MetricDiskFree]) != 4 {
		t.Fatalf("snapshot sizes: cpu=%d disk=%d", len(snap[MetricCPU]), len(snap[MetricDiskFree]))
	}
	if len(snap[MetricNet]) != 0 {
		t.Fatal("unexpected net samples")
	}
}

func TestSummarize(t *testing.T) {
	pts := []Point{{ts(0), 2}, {ts(1), 8}, {ts(2), 5}}
	st := Summarize(pts)
	if st.N != 3 || st.Min != 2 || st.Max != 8 || st.Mean != 5 || st.Last != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summarize")
	}
	if st.String() == "" {
		t.Fatal("empty string")
	}
}
