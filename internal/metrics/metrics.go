// Package metrics is the collectd analogue: it periodically samples every
// node's resource state into named time series and serves windowed queries
// to the root-cause analysis engine.
//
// The paper installed collectd on all OpenStack nodes with a 1 s poll
// frequency (§6, §7 "Experimental setup") and shipped snapshots to the
// analyzer. Here the collector polls cluster nodes on the simulation
// clock and keeps the series in memory.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gretel/internal/cluster"
	"gretel/internal/simclock"
)

// Standard metric names, one per collectd plugin the paper relied on.
const (
	MetricCPU      = "cpu"
	MetricMemUsed  = "mem_used_mb"
	MetricDiskFree = "disk_free_gb"
	MetricNet      = "net_mbps"
	MetricDiskIOPS = "disk_iops"
)

// MetricNames lists every metric the collector records per node.
var MetricNames = []string{MetricCPU, MetricMemUsed, MetricDiskFree, MetricNet, MetricDiskIOPS}

// Point is one sample.
type Point struct {
	Time  time.Time
	Value float64
}

// Series is an append-only time series. Safe for concurrent use.
type Series struct {
	mu     sync.RWMutex
	name   string
	points []Point
}

// Name returns the series key ("node/metric").
func (s *Series) Name() string { return s.name }

// Append records a sample. Samples must arrive in nondecreasing time
// order, which the poller guarantees.
func (s *Series) Append(t time.Time, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{t, v})
	s.mu.Unlock()
}

// Len reports the number of samples.
func (s *Series) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.points)
}

// Window returns samples with from <= t <= to.
func (s *Series) Window(from, to time.Time) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].Time.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].Time.After(to) })
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

// Last returns up to n most recent samples.
func (s *Series) Last(n int) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n > len(s.points) {
		n = len(s.points)
	}
	out := make([]Point, n)
	copy(out, s.points[len(s.points)-n:])
	return out
}

// Key builds the series key for a node and metric.
func Key(node, metric string) string { return node + "/" + metric }

// Collector polls nodes and stores their resource series.
type Collector struct {
	mu     sync.RWMutex
	series map[string]*Series
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{series: make(map[string]*Series)}
}

// Record appends one sample to the node/metric series, creating it on
// first use.
func (c *Collector) Record(node, metric string, t time.Time, v float64) {
	c.getOrCreate(Key(node, metric)).Append(t, v)
}

func (c *Collector) getOrCreate(key string) *Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.series[key]
	if !ok {
		s = &Series{name: key}
		c.series[key] = s
	}
	return s
}

// Series returns the series for node/metric, or nil if never recorded.
func (c *Collector) Series(node, metric string) *Series {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.series[Key(node, metric)]
}

// PollNode samples all resource metrics of a node at time t.
func (c *Collector) PollNode(n *cluster.Node, t time.Time) {
	r := n.Sample()
	c.Record(n.Name, MetricCPU, t, r.CPUPercent)
	c.Record(n.Name, MetricMemUsed, t, r.MemUsedMB)
	c.Record(n.Name, MetricDiskFree, t, r.DiskFreeGB)
	c.Record(n.Name, MetricNet, t, r.NetMbps)
	c.Record(n.Name, MetricDiskIOPS, t, r.DiskIOPS)
}

// StartPolling schedules periodic polls of every fabric node on the
// simulation clock until stop returns true. The paper used a 1 s period.
func (c *Collector) StartPolling(f *cluster.Fabric, sim *simclock.Sim, period time.Duration, stop func() bool) {
	sim.Every(period, stop, func() {
		for _, n := range f.Nodes() {
			if n.Up {
				c.PollNode(n, sim.Now())
			}
		}
	})
}

// Snapshot returns, for one node, every metric's samples within the given
// window — what the analyzer requests for root-cause analysis over the
// context-buffer duration.
func (c *Collector) Snapshot(node string, from, to time.Time) map[string][]Point {
	out := make(map[string][]Point, len(MetricNames))
	for _, m := range MetricNames {
		if s := c.Series(node, m); s != nil {
			out[m] = s.Window(from, to)
		}
	}
	return out
}

// Stats summarizes a set of points.
type Stats struct {
	N        int
	Min, Max float64
	Mean     float64
	Last     float64
}

// Summarize computes summary statistics over points.
func Summarize(pts []Point) Stats {
	st := Stats{N: len(pts)}
	if len(pts) == 0 {
		return st
	}
	st.Min, st.Max = pts[0].Value, pts[0].Value
	sum := 0.0
	for _, p := range pts {
		if p.Value < st.Min {
			st.Min = p.Value
		}
		if p.Value > st.Max {
			st.Max = p.Value
		}
		sum += p.Value
	}
	st.Mean = sum / float64(len(pts))
	st.Last = pts[len(pts)-1].Value
	return st
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d min=%.2f mean=%.2f max=%.2f last=%.2f", s.N, s.Min, s.Mean, s.Max, s.Last)
}
