package simclock

import (
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("Real clock went backward: %v then %v", a, b)
	}
}

func TestAtOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(Epoch.Add(3*time.Second), func() { got = append(got, 3) })
	s.At(Epoch.Add(1*time.Second), func() { got = append(got, 1) })
	s.At(Epoch.Add(2*time.Second), func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Epoch.Add(3*time.Second) {
		t.Errorf("Now() = %v, want %v", s.Now(), Epoch.Add(3*time.Second))
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	s := New()
	var got []int
	at := Epoch.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("equal-time events ran out of order: %v", got)
		}
	}
}

func TestPastEventsRunNow(t *testing.T) {
	s := New()
	s.RunUntil(Epoch.Add(time.Minute))
	ran := false
	s.At(Epoch, func() { ran = true }) // in the past
	s.Run()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
	if s.Now().Before(Epoch.Add(time.Minute)) {
		t.Fatalf("clock moved backward to %v", s.Now())
	}
}

func TestAfterNegative(t *testing.T) {
	s := New()
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want epoch", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			s.After(time.Second, recur)
		}
	}
	s.After(0, recur)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != Epoch.Add(4*time.Second) {
		t.Errorf("Now() = %v, want epoch+4s", s.Now())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	hit := 0
	s.After(time.Second, func() { hit++ })
	s.After(time.Hour, func() { hit++ })
	s.RunUntil(Epoch.Add(time.Minute))
	if hit != 1 {
		t.Fatalf("hit = %d, want 1 (only the 1s event)", hit)
	}
	if s.Now() != Epoch.Add(time.Minute) {
		t.Errorf("Now() = %v, want epoch+1m", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
}

func TestEvery(t *testing.T) {
	s := New()
	n := 0
	s.Every(time.Second, func() bool { return n >= 3 }, func() { n++ })
	s.RunUntil(Epoch.Add(10 * time.Second))
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
}

func TestEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	New().Every(0, nil, func() {})
}

func TestProcessed(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", s.Processed())
	}
}

func TestNewAt(t *testing.T) {
	at := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewAt(at)
	if !s.Now().Equal(at) {
		t.Fatalf("Now() = %v, want %v", s.Now(), at)
	}
}

func TestRunForRelative(t *testing.T) {
	s := New()
	s.RunFor(time.Minute)
	s.RunFor(time.Minute)
	if s.Now() != Epoch.Add(2*time.Minute) {
		t.Fatalf("Now() = %v, want epoch+2m", s.Now())
	}
}
