// Package simclock provides a virtual clock and a deterministic
// discrete-event scheduler used by the OpenStack simulation.
//
// All simulated work is expressed as callbacks scheduled at virtual
// timestamps. Running the simulation executes callbacks in timestamp order
// (FIFO among equal timestamps), advancing the virtual clock as it goes.
// Given a fixed seed for any randomness in the callbacks themselves, a
// simulation run is bit-for-bit reproducible.
package simclock

import (
	"container/heap"
	"time"
)

// Clock supplies the current time. The simulator implements it with a
// virtual clock; Real implements it with the wall clock, so components can
// be reused unchanged inside and outside the simulation.
type Clock interface {
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now returns the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// Epoch is the virtual time at which every simulation starts. A fixed epoch
// keeps all simulated timestamps reproducible.
var Epoch = time.Date(2016, time.December, 12, 0, 0, 0, 0, time.UTC)

type item struct {
	at  time.Time
	seq uint64
	fn  func()
}

type queue []*item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(*item)) }
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Sim is a single-threaded discrete-event scheduler with a virtual clock.
// It is not safe for concurrent use; the simulation runs on one goroutine
// by design so that event order is deterministic.
type Sim struct {
	now  time.Time
	seq  uint64
	q    queue
	runs uint64
}

// New returns a simulator whose clock starts at Epoch.
func New() *Sim { return &Sim{now: Epoch} }

// NewAt returns a simulator whose clock starts at the given time.
func NewAt(t time.Time) *Sim { return &Sim{now: t} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Processed reports how many events have been executed so far.
func (s *Sim) Processed() uint64 { return s.runs }

// Pending reports how many events are waiting to run.
func (s *Sim) Pending() int { return len(s.q) }

// At schedules fn to run at virtual time t. Times in the past run at the
// current virtual time (the clock never moves backward).
func (s *Sim) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.q, &item{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Every schedules fn to run every period starting after the first period
// elapses, until stop returns true (checked before each run).
func (s *Sim) Every(period time.Duration, stop func() bool, fn func()) {
	if period <= 0 {
		panic("simclock: Every requires a positive period")
	}
	var tick func()
	tick = func() {
		if stop != nil && stop() {
			return
		}
		fn()
		s.After(period, tick)
	}
	s.After(period, tick)
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (s *Sim) Step() bool {
	if len(s.q) == 0 {
		return false
	}
	it := heap.Pop(&s.q).(*item)
	s.now = it.at
	s.runs++
	it.fn()
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps at or before t, then advances
// the clock to t if it has not already passed it.
func (s *Sim) RunUntil(t time.Time) {
	for len(s.q) > 0 && !s.q[0].at.After(t) {
		s.Step()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor executes events for a virtual duration d from the current time.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }
