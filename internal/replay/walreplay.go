// WAL replay: feed the durable event log back through the analyzer.
// Two callers share this path — gretel's boot-time crash recovery
// (replay the retained log, then go live on the same analyzer) and
// gretel-experiments' offline reanalysis ("reanalyze yesterday's
// incident with today's fingerprints").

package replay

import (
	"io"
	"time"

	"gretel/internal/core"
	"gretel/internal/trace"
	"gretel/internal/wal"
)

// WALResult is DriveWAL's summary: the usual replay accounting plus the
// recovery scan's quarantine bookkeeping.
type WALResult struct {
	Result
	Recovery wal.ReadStats
}

// WALDrive tunes one DriveWAL pass.
type WALDrive struct {
	// From and To bound the record sequences fed through the analyzer
	// (inclusive; 0 = open bound).
	From, To uint64
	// Barrier splits the replay at a record sequence: before the first
	// record with sequence > Barrier is ingested, the pending batch is
	// flushed through the analyzer and OnBarrier (if set) is invoked.
	// Boot recovery sets it to the durable consumer cursor so report
	// suppression is lifted exactly at the already-reported/unreported
	// boundary — never mid-batch, which would silently drop reports for
	// records past the cursor. 0 means no barrier.
	Barrier   uint64
	OnBarrier func()
	// OnBatch, when non-nil, is called after each ingested batch with
	// scan progress (1-based current segment, total segments, last
	// record sequence fed) — gretel's readiness endpoint serves it
	// during boot recovery.
	OnBatch func(segment, total int, lastSeq uint64)
}

// DriveWAL replays the write-ahead log at dir through the analyzer.
// Records with sequence in [opt.From, opt.To] (0 = open bound) are fed
// through IngestBatch in the analyzer's configured batch size (default
// 256); corrupt or torn records are quarantined by the reader, never
// fatal.
//
// The analyzer is NOT flushed or closed: boot recovery continues
// driving live events on the same analyzer (flushing here would tear
// windows mid-stream and diverge from an uninterrupted run), and
// offline reanalysis closes it when done. Reports in the result count
// only what had been produced when the scan finished.
func DriveWAL(a *core.Analyzer, dir string, opt WALDrive) (WALResult, error) {
	r, err := wal.OpenReader(dir)
	if err != nil {
		return WALResult{}, err
	}
	defer r.Close()

	batchSize := a.Config().IngestBatch
	if batchSize <= 0 {
		batchSize = 256
	}
	batch := make([]trace.Event, 0, batchSize)

	start := time.Now()
	var res WALResult
	var lastSeq uint64
	flush := func() {
		if len(batch) == 0 {
			return
		}
		a.IngestBatch(batch)
		res.Events += len(batch)
		batch = batch[:0]
		if opt.OnBatch != nil {
			seg, total := r.Progress()
			opt.OnBatch(seg, total, lastSeq)
		}
	}
	crossed := opt.Barrier == 0
	for {
		seq, ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		if opt.From > 0 && seq < opt.From {
			continue
		}
		if opt.To > 0 && seq > opt.To {
			break
		}
		if !crossed && seq > opt.Barrier {
			// Everything at or below the barrier must be through the
			// analyzer before the caller's barrier action (lifting report
			// suppression) takes effect for the records after it.
			flush()
			crossed = true
			if opt.OnBarrier != nil {
				opt.OnBarrier()
			}
		}
		lastSeq = seq
		res.Bytes += uint64(ev.WireBytes)
		batch = append(batch, ev)
		if len(batch) >= batchSize {
			flush()
		}
	}
	flush()
	res.Wall = time.Since(start)
	if res.Wall > 0 {
		res.EventsPerSec = float64(res.Events) / res.Wall.Seconds()
		res.Mbps = float64(res.Bytes) * 8 / 1e6 / res.Wall.Seconds()
	}
	res.Reports = len(a.Reports())
	res.SnapshotsShed = a.Stats.SnapshotsShed
	r.Close() // finalizes torn-tail attribution before the stats snapshot
	res.Recovery = r.Stats()
	return res, nil
}
