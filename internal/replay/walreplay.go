// WAL replay: feed the durable event log back through the analyzer.
// Two callers share this path — gretel's boot-time crash recovery
// (replay the retained log, then go live on the same analyzer) and
// gretel-experiments' offline reanalysis ("reanalyze yesterday's
// incident with today's fingerprints").

package replay

import (
	"io"
	"time"

	"gretel/internal/core"
	"gretel/internal/trace"
	"gretel/internal/wal"
)

// WALResult is DriveWAL's summary: the usual replay accounting plus the
// recovery scan's quarantine bookkeeping.
type WALResult struct {
	Result
	Recovery wal.ReadStats
}

// DriveWAL replays the write-ahead log at dir through the analyzer.
// Records with sequence in [from, to] (0 = open bound) are fed through
// IngestBatch in the analyzer's configured batch size (default 256);
// corrupt or torn records are quarantined by the reader, never fatal.
// onBatch, when non-nil, is called after each batch with scan progress
// (1-based current segment, total segments, last record sequence fed)
// — gretel's readiness endpoint serves it during boot recovery.
//
// The analyzer is NOT flushed or closed: boot recovery continues
// driving live events on the same analyzer (flushing here would tear
// windows mid-stream and diverge from an uninterrupted run), and
// offline reanalysis closes it when done. Reports in the result count
// only what had been produced when the scan finished.
func DriveWAL(a *core.Analyzer, dir string, from, to uint64, onBatch func(segment, total int, lastSeq uint64)) (WALResult, error) {
	r, err := wal.OpenReader(dir)
	if err != nil {
		return WALResult{}, err
	}
	defer r.Close()

	batchSize := a.Config().IngestBatch
	if batchSize <= 0 {
		batchSize = 256
	}
	batch := make([]trace.Event, 0, batchSize)

	start := time.Now()
	var res WALResult
	var lastSeq uint64
	flush := func() {
		if len(batch) == 0 {
			return
		}
		a.IngestBatch(batch)
		res.Events += len(batch)
		batch = batch[:0]
		if onBatch != nil {
			seg, total := r.Progress()
			onBatch(seg, total, lastSeq)
		}
	}
	for {
		seq, ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		if from > 0 && seq < from {
			continue
		}
		if to > 0 && seq > to {
			break
		}
		lastSeq = seq
		res.Bytes += uint64(ev.WireBytes)
		batch = append(batch, ev)
		if len(batch) >= batchSize {
			flush()
		}
	}
	flush()
	res.Wall = time.Since(start)
	if res.Wall > 0 {
		res.EventsPerSec = float64(res.Events) / res.Wall.Seconds()
		res.Mbps = float64(res.Bytes) * 8 / 1e6 / res.Wall.Seconds()
	}
	res.Reports = len(a.Reports())
	res.SnapshotsShed = a.Stats.SnapshotsShed
	r.Close() // finalizes torn-tail attribution before the stats snapshot
	res.Recovery = r.Stats()
	return res, nil
}
