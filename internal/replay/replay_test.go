package replay

import (
	"testing"

	"gretel/internal/core"
	"gretel/internal/hansel"
	"gretel/internal/scenario"
	"gretel/internal/trace"
)

func TestSynthesizeShape(t *testing.T) {
	events := Synthesize(StreamConfig{Events: 5000, Concurrency: 50, FaultEvery: 500, Seed: 1})
	if len(events) != 5000 {
		t.Fatalf("events = %d", len(events))
	}
	var faults, reqs, resps int
	for i := range events {
		ev := &events[i]
		if ev.Faulty() {
			faults++
		}
		if ev.Type.Request() {
			reqs++
		} else {
			resps++
		}
		if i > 0 && !events[i].Time.After(events[i-1].Time) {
			t.Fatal("timestamps not increasing")
		}
		if ev.WireBytes == 0 || ev.OpID == 0 || ev.OpName == "" {
			t.Fatalf("event missing fields: %+v", ev)
		}
	}
	// Roughly 1/500 messages faulty (only REST slots are eligible).
	if faults == 0 || faults > 5000/500+5 {
		t.Fatalf("faults = %d", faults)
	}
	if reqs == 0 || resps == 0 {
		t.Fatal("one-sided stream")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(StreamConfig{Events: 1000, Seed: 9})
	b := Synthesize(StreamConfig{Events: 1000, Seed: 9})
	for i := range a {
		if a[i].API != b[i].API || a[i].Type != b[i].Type {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestRequestsPairWithResponses(t *testing.T) {
	events := Synthesize(StreamConfig{Events: 2000, Concurrency: 20, Seed: 3})
	open := map[uint64]bool{}
	openMsg := map[string]bool{}
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case trace.RESTRequest:
			open[ev.ConnID] = true
		case trace.RESTResponse:
			if !open[ev.ConnID] {
				t.Fatalf("response without request: %+v", ev)
			}
			delete(open, ev.ConnID)
		case trace.RPCCall:
			openMsg[ev.MsgID] = true
		case trace.RPCReply:
			if !openMsg[ev.MsgID] {
				t.Fatalf("reply without call: %+v", ev)
			}
			delete(openMsg, ev.MsgID)
		}
	}
}

func TestDriveAnalyzer(t *testing.T) {
	lib := scenario.CoreLibrary()
	a := core.New(lib, core.Config{Alpha: 256})
	events := Synthesize(StreamConfig{Events: 20000, Concurrency: 50, FaultEvery: 1000, Seed: 5})
	res := Drive(a, events)
	if res.Events != 20000 || res.Bytes == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Reports == 0 {
		t.Fatal("no fault reports from replay")
	}
	if res.EventsPerSec <= 0 || res.Mbps <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.MaxReportDelay <= 0 {
		t.Fatal("report delay not measured")
	}
}

func TestDriveHanselBaseline(t *testing.T) {
	s := hansel.New(hansel.Config{})
	events := Synthesize(StreamConfig{Events: 20000, Concurrency: 50, FaultEvery: 1000, Seed: 5})
	res := DriveHansel(s, events)
	if res.Reports == 0 {
		t.Fatal("HANSEL reported nothing")
	}
	// HANSEL's report latency is dominated by the 30 s bucket window.
	if res.MaxReportDelay < 29e9 {
		t.Fatalf("HANSEL report delay = %v, want ~30s", res.MaxReportDelay)
	}
}

func TestFaultFrequencyAffectsWork(t *testing.T) {
	lib := scenario.CoreLibrary()
	mk := func(every int) uint64 {
		a := core.New(lib, core.Config{Alpha: 256})
		Drive(a, Synthesize(StreamConfig{Events: 30000, Concurrency: 50, FaultEvery: every, Seed: 7}))
		return a.Stats.Snapshots
	}
	frequent := mk(100)
	rare := mk(2000)
	if frequent <= rare {
		t.Fatalf("snapshots: 1/100 = %d, 1/2000 = %d; frequent faults must do more work", frequent, rare)
	}
}
