// Package replay is the tcpreplay analogue (§7.4.1): it synthesizes
// high-rate REST/RPC event streams shaped like concurrent OpenStack
// operations, with a configurable fault frequency, and drives them
// through the GRETEL analyzer (or the HANSEL baseline) at full speed to
// measure sustained processing throughput.
//
// The paper replayed captured RPC events at up to 50 Kpps and measured
// the throughput GRETEL sustained for fault frequencies from 1/100 to
// 1/2K messages (Fig 8c). Event timestamps here advance on a virtual
// clock at the configured packet rate; the measurement is wall-clock
// processing time, so Mbps = wire bytes processed / wall seconds.
package replay

import (
	"math/rand"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/hansel"
	"gretel/internal/openstack"
	"gretel/internal/trace"
)

// StreamConfig shapes a synthetic workload stream.
type StreamConfig struct {
	// Ops is the operation mix the stream interleaves.
	Ops []*openstack.Operation
	// Concurrency is the number of simultaneously progressing operation
	// instances.
	Concurrency int
	// Events is the total number of messages to generate.
	Events int
	// FaultEvery injects one REST error per this many messages (0 = no
	// faults).
	FaultEvery int
	// PPS sets the virtual packets-per-second rate used for timestamps.
	PPS int
	// Seed drives all randomness.
	Seed int64
}

func (c *StreamConfig) defaults() {
	if c.Concurrency == 0 {
		c.Concurrency = 100
	}
	if c.Events == 0 {
		c.Events = 100000
	}
	if c.PPS == 0 {
		c.PPS = 50000
	}
}

// cursor walks one operation instance through its steps.
type cursor struct {
	op   *openstack.Operation
	id   uint64
	step int
	// pendingResp holds a response event to emit right after a request.
	pendingResp *trace.Event
}

// Synthesize generates the event stream. Each operation step yields a
// request event followed (a few messages later) by its response; faults
// flip the response of the current message slot into an error, after
// which that instance stops (as a failed operation would).
func Synthesize(cfg StreamConfig) []trace.Event {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if len(cfg.Ops) == 0 {
		cfg.Ops = openstack.CoreOperations()
	}

	var nextID uint64
	newCursor := func() *cursor {
		nextID++
		return &cursor{op: cfg.Ops[rng.Intn(len(cfg.Ops))], id: nextID}
	}
	cursors := make([]*cursor, cfg.Concurrency)
	for i := range cursors {
		cursors[i] = newCursor()
	}

	interval := time.Second / time.Duration(cfg.PPS)
	now := time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)
	var connID uint64
	var msgSeq uint64

	out := make([]trace.Event, 0, cfg.Events)
	emit := func(ev trace.Event) {
		ev.Seq = uint64(len(out) + 1)
		ev.Time = now
		now = now.Add(interval)
		out = append(out, ev)
	}

	for len(out) < cfg.Events {
		c := cursors[rng.Intn(len(cursors))]
		if c.pendingResp != nil {
			resp := *c.pendingResp
			c.pendingResp = nil
			faulty := cfg.FaultEvery > 0 && (len(out)+1)%cfg.FaultEvery == 0 &&
				resp.Type == trace.RESTResponse
			if faulty {
				resp.Status = 500
				resp.ErrorText = "Internal Server Error (injected)"
			}
			emit(resp)
			if faulty {
				// Failed instance: replace with a fresh one.
				*c = *newCursor()
				continue
			}
			c.step++
			if c.step >= len(c.op.Steps) {
				*c = *newCursor()
			}
			continue
		}

		step := c.op.Steps[c.step]
		wire := 150 + rng.Intn(120)
		switch step.API.Kind {
		case trace.REST:
			connID++
			emit(trace.Event{
				Type: trace.RESTRequest, API: step.API, ConnID: connID,
				OpID: c.id, OpName: c.op.Name, WireBytes: wire,
				SrcNode: step.Caller.String() + "-node", DstNode: step.API.Service.String() + "-node",
			})
			c.pendingResp = &trace.Event{
				Type: trace.RESTResponse, API: step.API, ConnID: connID, Status: 200,
				OpID: c.id, OpName: c.op.Name, WireBytes: wire + 30,
				SrcNode: step.API.Service.String() + "-node", DstNode: step.Caller.String() + "-node",
			}
		default:
			msgSeq++
			mid := "rp-" + u64str(msgSeq)
			emit(trace.Event{
				Type: trace.RPCCall, API: step.API, MsgID: mid,
				OpID: c.id, OpName: c.op.Name, WireBytes: wire + 60,
				SrcNode: step.Caller.String() + "-node", DstNode: "rabbitmq-node",
			})
			c.pendingResp = &trace.Event{
				Type: trace.RPCReply, API: step.API, MsgID: mid,
				OpID: c.id, OpName: c.op.Name, WireBytes: wire,
				SrcNode: "rabbitmq-node", DstNode: step.Caller.String() + "-node",
			}
		}
	}
	return out
}

func u64str(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Result summarizes one replay run.
type Result struct {
	Events       int
	Bytes        uint64
	Wall         time.Duration
	EventsPerSec float64
	Mbps         float64
	Reports      int
	// SnapshotsShed counts detections dropped under backpressure when the
	// analyzer runs with a shedding worker pool (zero in inline mode).
	SnapshotsShed uint64
	// MaxReportDelay is the worst virtual-time delay between a fault
	// message and its report (the paper observed <2 s).
	MaxReportDelay time.Duration
	// Gaps and Missed count monitoring-plane loss records applied to the
	// analyzer when driving from a live transport (DriveTransport):
	// gap/down health records, and the total frames they reported lost.
	Gaps, Missed uint64
	// TracesStored and TracesEvicted report the evidence-trace store's
	// counters after the run — total traces recorded and how many the
	// size cap pushed out. Zero unless the analyzer ran in explain mode.
	TracesStored, TracesEvicted uint64
}

// explainCounters copies the evidence-trace store's counters into the
// result when the analyzer ran in explain mode.
func (r *Result) explainCounters(a *core.Analyzer) {
	if s := a.ExplainStore(); s != nil {
		r.TracesStored = s.Stored()
		r.TracesEvicted = s.Evicted()
	}
}

// Drive pushes the stream through a GRETEL analyzer at full speed. If
// the analyzer was configured with a detect worker pool
// (Config.DetectWorkers > 0), detection runs in parallel with ingest,
// and with a sharded ingest front-end (Config.IngestShards > 0) events
// are fed in Config.IngestBatch chunks through IngestBatch; Close
// drains the pipeline before the wall clock stops, so the measured
// throughput includes finishing every report.
func Drive(a *core.Analyzer, events []trace.Event) Result {
	return DriveFrom(a, events, 0, 0)
}

// DriveFrom is Drive with a resume offset and optional pacing: events
// before skip are treated as already ingested (a restarted gretel
// replays them from the WAL, then resumes the synthesized stream
// here), and when pace > 0 the driver sleeps that long per 1000 events
// — the crash-recovery smoke uses pacing to guarantee a kill -9 lands
// mid-burst. Closes the analyzer like Drive.
func DriveFrom(a *core.Analyzer, events []trace.Event, skip int, pace time.Duration) Result {
	if skip > len(events) {
		skip = len(events)
	}
	events = events[skip:]
	start := time.Now()
	paceEvery := 1000
	sincePace := 0
	step := func(n int) {
		if pace <= 0 {
			return
		}
		sincePace += n
		for sincePace >= paceEvery {
			sincePace -= paceEvery
			time.Sleep(pace)
		}
	}
	if batch := a.Config().IngestBatch; a.Config().IngestShards > 0 && batch > 0 {
		for lo := 0; lo < len(events); lo += batch {
			hi := lo + batch
			if hi > len(events) {
				hi = len(events)
			}
			a.IngestBatch(events[lo:hi])
			step(hi - lo)
		}
	} else {
		for i := range events {
			a.Ingest(events[i])
			step(1)
		}
	}
	a.Close()
	wall := time.Since(start)

	var bytes uint64
	for i := range events {
		bytes += uint64(events[i].WireBytes)
	}
	res := Result{
		Events:        len(events),
		Bytes:         bytes,
		Wall:          wall,
		Reports:       len(a.Reports()),
		SnapshotsShed: a.Stats.SnapshotsShed,
	}
	if wall > 0 {
		res.EventsPerSec = float64(len(events)) / wall.Seconds()
		res.Mbps = float64(bytes) * 8 / 1e6 / wall.Seconds()
	}
	for _, rep := range a.Reports() {
		if rep.ReportDelay > res.MaxReportDelay {
			res.MaxReportDelay = rep.ReportDelay
		}
	}
	res.explainCounters(a)
	return res
}

// DriveTransport drains a live agent.Receiver into the analyzer until
// the receiver is closed: events feed Ingest, state updates feed
// onState (may be nil), and monitoring-plane health records feed the
// analyzer's graceful degradation — a frame gap or a dark agent flushes
// that node's pending pairs and marks reports degraded until the agent
// returns (core.Analyzer.NodeGap / NodeRecovered). Agent names double
// as node names in per-node deployments; a single merged agent degrades
// under its own name, marking the whole feed.
//
// All analyzer access stays on this goroutine, preserving Ingest's
// single-caller contract. Returns after a.Close, so Reports and Stats
// are complete.
func DriveTransport(a *core.Analyzer, recv *agent.Receiver, onState func(agent.StateUpdate)) Result {
	events, states, health := recv.Events(), recv.States(), recv.Health()
	start := time.Now()
	var bytes uint64
	var n int
	// Batched draining for the sharded front-end: one blocking receive,
	// then top the batch up with whatever already arrived. Sparse streams
	// degrade to single-event batches (no added latency).
	batchMax := 0
	var batch []trace.Event
	if cfg := a.Config(); cfg.IngestShards > 0 && cfg.IngestBatch > 1 {
		batchMax = cfg.IngestBatch
		batch = make([]trace.Event, 0, batchMax)
	}
	for events != nil || states != nil || health != nil {
		select {
		case ev, ok := <-events:
			if !ok {
				events = nil
				continue
			}
			if batchMax > 0 {
				batch = append(batch[:0], ev)
				batch = recv.DrainEvents(batch, batchMax)
				for i := range batch {
					bytes += uint64(batch[i].WireBytes)
				}
				n += len(batch)
				a.IngestBatch(batch)
				continue
			}
			n++
			bytes += uint64(ev.WireBytes)
			a.Ingest(ev)
		case u, ok := <-states:
			if !ok {
				states = nil
				continue
			}
			if onState != nil {
				onState(u)
			}
		case h, ok := <-health:
			if !ok {
				health = nil
				continue
			}
			switch h.Kind {
			case agent.HealthGap, agent.HealthDown:
				a.NodeGap(h.Agent, h.Missing, h.At)
			case agent.HealthUp:
				a.NodeRecovered(h.Agent)
			}
		}
	}
	a.Close()
	wall := time.Since(start)

	res := Result{
		Events:        n,
		Bytes:         bytes,
		Wall:          wall,
		Reports:       len(a.Reports()),
		SnapshotsShed: a.Stats.SnapshotsShed,
		Gaps:          a.Stats.NodeGaps,
		Missed:        a.Stats.FramesMissed,
	}
	if wall > 0 {
		res.EventsPerSec = float64(n) / wall.Seconds()
		res.Mbps = float64(bytes) * 8 / 1e6 / wall.Seconds()
	}
	for _, rep := range a.Reports() {
		if rep.ReportDelay > res.MaxReportDelay {
			res.MaxReportDelay = rep.ReportDelay
		}
	}
	res.explainCounters(a)
	return res
}

// DriveHansel pushes the same stream through the HANSEL baseline.
func DriveHansel(s *hansel.Stitcher, events []trace.Event) Result {
	start := time.Now()
	for i := range events {
		s.Ingest(events[i])
	}
	if len(events) > 0 {
		s.Flush(events[len(events)-1].Time)
	}
	wall := time.Since(start)

	var bytes uint64
	for i := range events {
		bytes += uint64(events[i].WireBytes)
	}
	res := Result{
		Events:  len(events),
		Bytes:   bytes,
		Wall:    wall,
		Reports: len(s.Reports()),
	}
	if wall > 0 {
		res.EventsPerSec = float64(len(events)) / wall.Seconds()
		res.Mbps = float64(bytes) * 8 / 1e6 / wall.Seconds()
	}
	for _, rep := range s.Reports() {
		if d := rep.ReportedAt.Sub(rep.Fault.Time); d > res.MaxReportDelay {
			res.MaxReportDelay = d
		}
	}
	return res
}
