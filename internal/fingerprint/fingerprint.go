// Package fingerprint implements GRETEL's operational fingerprints:
// Algorithm 1 (offline learning from repeated isolated executions) and the
// matching machinery Algorithm 2 builds on (truncation at the offending
// API, relaxed state-change-preserving matching, per-symbol posting lists).
//
// A fingerprint is the most precise API sequence identifying one
// high-level administrative task. Learning filters noise (heartbeats,
// Keystone auth, repeated idempotent calls) from each captured trace and
// intersects the runs with a longest-common-subsequence pass so transient
// invocations drop out. The result is rendered over the symbol table as a
// regular expression in which state-change APIs (POST/PUT/DELETE, RPCs)
// are mandatory literals and read-only APIs carry a '*' (§5.3.1, §6).
package fingerprint

import (
	"fmt"
	"sort"
	"strings"

	"gretel/internal/symbol"
	"gretel/internal/trace"
)

// Fingerprint is one learned operational fingerprint.
type Fingerprint struct {
	// Name identifies the operation (the Tempest test name).
	Name string
	// Category is the operation's Table 1 category name.
	Category string
	// APIs is the learned API sequence after noise filtering and LCS.
	APIs []trace.API
	// Symbols is APIs encoded through the library's symbol table.
	Symbols []rune
	// state[i] reports whether Symbols[i] is state-changing.
	state []bool
}

// Len returns the fingerprint length in symbols.
func (f *Fingerprint) Len() int { return len(f.Symbols) }

// StateChange reports whether symbol i is a mandatory (state-change)
// literal.
func (f *Fingerprint) StateChange(i int) bool { return f.state[i] }

// Regex renders the paper's regular-expression form: state-change symbols
// as literals, read-only symbols suffixed with '*'.
func (f *Fingerprint) Regex() string {
	var b strings.Builder
	for i, r := range f.Symbols {
		b.WriteRune(r)
		if !f.state[i] {
			b.WriteByte('*')
		}
	}
	return b.String()
}

// SymbolSet returns the distinct symbols in the fingerprint.
func (f *Fingerprint) SymbolSet() map[rune]bool {
	out := make(map[rune]bool, len(f.Symbols))
	for _, r := range f.Symbols {
		out[r] = true
	}
	return out
}

// WithoutRPC returns a copy with RPC symbols removed — the §6 matching
// optimization ("GRETEL removes symbols corresponding to RPC messages to
// speed up operation detection").
func (f *Fingerprint) WithoutRPC(tbl *symbol.Table) *Fingerprint {
	out := &Fingerprint{Name: f.Name, Category: f.Category}
	for i, api := range f.APIs {
		if api.Kind == trace.RPC {
			continue
		}
		out.APIs = append(out.APIs, api)
		out.Symbols = append(out.Symbols, f.Symbols[i])
		out.state = append(out.state, f.state[i])
	}
	return out
}

// Truncate returns the fingerprint cut at the LAST occurrence of the
// offending symbol, inclusive (Algorithm 2's
// TRUNCATE_OPERATION_FINGERPRINTS). It returns nil if the symbol does not
// occur.
func (f *Fingerprint) Truncate(offending rune) *Fingerprint {
	last := -1
	for i, r := range f.Symbols {
		if r == offending {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	return &Fingerprint{
		Name:     f.Name,
		Category: f.Category,
		APIs:     f.APIs[:last+1],
		Symbols:  f.Symbols[:last+1],
		state:    f.state[:last+1],
	}
}

// mandatory returns the symbols that a relaxed match must find in order:
// the state-change literals, always including the final symbol (the
// offending API for truncated fingerprints). If the fingerprint has no
// state-change symbols at all, every symbol is mandatory — otherwise a
// read-only operation would match any snapshot.
func (f *Fingerprint) mandatory() []rune {
	out := make([]rune, 0, len(f.Symbols))
	for i, r := range f.Symbols {
		if f.state[i] || i == len(f.Symbols)-1 {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return f.Symbols
	}
	return out
}

// SnapshotIndex pre-indexes a snapshot's symbol occurrences so many
// fingerprints can be matched against one context buffer cheaply (the
// §6 optimization of offloading regex matching applies the same idea:
// index once, match hundreds of patterns). An index carries view bounds
// [lo, hi) over the indexed sequence: Slice produces a sub-view sharing
// the posting lists, so a growing context buffer re-slices one index
// built over the whole snapshot instead of rebuilding per β step.
type SnapshotIndex struct {
	occ    map[rune][]int32
	lo, hi int32
}

// NewSnapshotIndex builds the occurrence index for a symbol sequence.
func NewSnapshotIndex(s []rune) *SnapshotIndex {
	idx := &SnapshotIndex{occ: make(map[rune][]int32), hi: int32(len(s))}
	for i, r := range s {
		idx.occ[r] = append(idx.occ[r], int32(i))
	}
	return idx
}

// Slice returns a view of the index restricted to positions [lo, hi) of
// the originally indexed sequence. The posting lists are shared — the
// call is O(1) and the view is read-only like its parent.
func (idx *SnapshotIndex) Slice(lo, hi int) *SnapshotIndex {
	l, h := int32(lo), int32(hi)
	if l < idx.lo {
		l = idx.lo
	}
	if h > idx.hi {
		h = idx.hi
	}
	if h < l {
		h = l
	}
	return &SnapshotIndex{occ: idx.occ, lo: l, hi: h}
}

// Len reports the view length (the full snapshot length for an unsliced
// index).
func (idx *SnapshotIndex) Len() int { return int(idx.hi - idx.lo) }

// searchPos returns the first index in positions holding a value >= j.
func searchPos(positions []int32, j int32) int {
	lo, hi := 0, len(positions)
	for lo < hi {
		mid := (lo + hi) / 2
		if positions[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// firstAtOrAfter returns the first occurrence position of r at or after
// j within the view, or -1.
func (idx *SnapshotIndex) firstAtOrAfter(r rune, j int32) int32 {
	if j < idx.lo {
		j = idx.lo
	}
	positions := idx.occ[r]
	i := searchPos(positions, j)
	if i == len(positions) || positions[i] >= idx.hi {
		return -1
	}
	return positions[i]
}

// contains reports whether r occurs anywhere within the view.
func (idx *SnapshotIndex) contains(r rune) bool {
	return idx.firstAtOrAfter(r, idx.lo) >= 0
}

// count returns the number of occurrences of r within the view.
func (idx *SnapshotIndex) count(r rune) int {
	positions := idx.occ[r]
	return searchPos(positions, idx.hi) - searchPos(positions, idx.lo)
}

// MatchRelaxed reports whether the fingerprint matches the snapshot under
// the paper's relaxed semantics (§5.3.1 "Example", Fig 4): the mandatory
// (state-change) symbols that are PRESENT in the snapshot must appear in
// fingerprint order; symbols entirely absent from the snapshot are
// tolerated (concurrent operations displace them out of the context
// buffer — "even though symbol A is missing from the context buffer, the
// truncated regular expression still matches as it preserves the order of
// E and F"). The fingerprint's final symbol — the offending API for
// truncated fingerprints — must itself be present.
//
// Growing the context buffer makes this test stricter, not looser: more
// of a wrong candidate's symbols become present and must then be
// explained in order, which is why a larger β "forces a more precise
// match" (§7.3).
func (f *Fingerprint) MatchRelaxed(snapshot []rune) bool {
	return f.MatchRelaxedIndexed(NewSnapshotIndex(snapshot))
}

// MatchRelaxedIndexed is MatchRelaxed over a pre-built index.
func (f *Fingerprint) MatchRelaxedIndexed(idx *SnapshotIndex) bool {
	ok, _ := f.matchOrdered(idx, true, nil)
	return ok
}

// MatchExactIndexed requires every mandatory (state-change) symbol to be
// present in order, with no omissions.
func (f *Fingerprint) MatchExactIndexed(idx *SnapshotIndex) bool {
	ok, _ := f.matchOrdered(idx, false, nil)
	return ok
}

// MatchCorrelated matches a snapshot pre-filtered to one operation's own
// messages (the §5.3.1 correlation-id extension). Because every pattern
// symbol now belongs to a single operation, the decisive test flips: the
// candidate's fingerprint must EXPLAIN the pattern — at least
// corrCoverage of the pattern's symbol occurrences must be symbols of the
// candidate — in addition to the ordered walk over whatever mandatory
// symbols are present. The true operation always explains its own
// messages (they are literally its fingerprint's symbols, plus idempotent
// retries of them); unrelated candidates cannot.
// An ordered walk is deliberately NOT applied here: when the window
// truncates a long operation, repeated symbols make even the true
// operation's own sequence appear locally out of order.
func (f *Fingerprint) MatchCorrelated(idx *SnapshotIndex) bool {
	n := idx.Len()
	if n == 0 || len(f.Symbols) == 0 {
		return false
	}
	if !idx.contains(f.Symbols[len(f.Symbols)-1]) {
		return false // the offending (final) symbol must be present
	}
	set := f.SymbolSet()
	covered := 0
	for sym := range set {
		covered += idx.count(sym)
	}
	return float64(covered) >= corrCoverage*float64(n)
}

// corrCoverage is the fraction of a correlation-filtered pattern that a
// matching candidate's fingerprint must explain.
const corrCoverage = 0.95

// matchOrdered is the shared ordered walk behind the relaxed and exact
// matchers. When exp is non-nil (the explain path) it records, without
// changing the verdict, the walk's evidence: the mandatory-symbol total,
// omissions tolerated, and — on failure — the concrete rejection reason.
// The hot path passes nil and pays nothing.
func (f *Fingerprint) matchOrdered(idx *SnapshotIndex, allowOmission bool, exp *Explanation) (bool, int) {
	pattern := f.mandatory()
	if len(pattern) == 0 {
		if exp != nil {
			exp.Reason = "empty fingerprint: no mandatory symbols to match"
		}
		return false, 0
	}
	if exp != nil {
		exp.MandatoryTotal = len(pattern)
	}
	j := idx.lo
	matched := 0
	for i, p := range pattern {
		k := idx.firstAtOrAfter(p, j)
		if k < 0 {
			if idx.contains(p) {
				// Present in the snapshot, but only before our match
				// point: the state-change order is violated.
				if exp != nil {
					exp.Reason = fmt.Sprintf(
						"order violated: %s occurs in the context buffer only before the match point (after %d of %d mandatory symbols)",
						exp.sym(p), matched, len(pattern))
				}
				return false, matched
			}
			if !allowOmission || i == len(pattern)-1 {
				// Absent symbol: fatal in exact mode, and the offending
				// (final) symbol must be present in every mode.
				if exp != nil {
					if i == len(pattern)-1 {
						exp.Reason = fmt.Sprintf(
							"offending symbol %s absent from the context buffer", exp.sym(p))
					} else {
						exp.Reason = fmt.Sprintf(
							"%s absent from the context buffer (exact mode tolerates no omissions)", exp.sym(p))
					}
				}
				return false, matched
			}
			if exp != nil {
				exp.Omitted++
			}
			continue // absent from the snapshot: omission allowed
		}
		matched++
		j = k + 1
	}
	return true, matched
}

// MatchStrict reports whether every fingerprint symbol (reads included)
// appears in order in the snapshot, with no omissions. Used by the
// ablation comparing the relaxed matcher against a strict full-sequence
// match.
func (f *Fingerprint) MatchStrict(snapshot []rune) bool {
	return isSubsequence(f.Symbols, snapshot)
}

func isSubsequence(pattern, s []rune) bool {
	if len(pattern) == 0 {
		return true
	}
	i := 0
	for _, r := range s {
		if r == pattern[i] {
			i++
			if i == len(pattern) {
				return true
			}
		}
	}
	return false
}

// Overlap computes |sym(f) ∩ sym(g)| / |sym(f)| — the Fig 5 overlap
// measure between two fingerprints, asymmetric in f.
func Overlap(f, g *Fingerprint) float64 {
	fs := f.SymbolSet()
	if len(fs) == 0 {
		return 0
	}
	gs := g.SymbolSet()
	n := 0
	for r := range fs {
		if gs[r] {
			n++
		}
	}
	return float64(n) / float64(len(fs))
}

// NoiseFilter implements FILTER_NOISE from Algorithm 1: it removes
// heartbeat/status RPCs, common Keystone REST invocations, and repeat
// occurrences of idempotent REST actions for a specific URI.
type NoiseFilter struct {
	// NoiseAPIs are exact APIs always pruned (heartbeats, auth calls).
	NoiseAPIs map[trace.API]bool
	// NoiseServices prunes every API owned by these services (Keystone).
	NoiseServices map[trace.Service]bool
	// CollapseRepeats removes consecutive duplicate idempotent (GET/HEAD)
	// invocations of the same API.
	CollapseRepeats bool
}

// NewNoiseFilter returns the standard filter configured per §5: the given
// noise APIs (heartbeat RPCs and the common Keystone auth invocations)
// plus idempotent-repeat collapsing. Note that only the *common* Keystone
// calls are noise — admin tasks that legitimately query Keystone (listing
// projects, users) keep those APIs in their fingerprints.
func NewNoiseFilter(noiseAPIs []trace.API) *NoiseFilter {
	m := make(map[trace.API]bool, len(noiseAPIs))
	for _, a := range noiseAPIs {
		m[a] = true
	}
	return &NoiseFilter{
		NoiseAPIs:       m,
		NoiseServices:   map[trace.Service]bool{},
		CollapseRepeats: true,
	}
}

// Filter returns the API sequence with noise removed.
func (nf *NoiseFilter) Filter(apis []trace.API) []trace.API {
	out := make([]trace.API, 0, len(apis))
	for _, a := range apis {
		if nf.NoiseAPIs != nil && nf.NoiseAPIs[a] {
			continue
		}
		if nf.NoiseServices != nil && nf.NoiseServices[a.Service] {
			continue
		}
		if nf.CollapseRepeats && len(out) > 0 && out[len(out)-1] == a &&
			(a.Method == "GET" || a.Method == "HEAD") {
			continue
		}
		out = append(out, a)
	}
	return out
}

// LCS computes the longest common subsequence of two API sequences — the
// pruning step of Algorithm 1 that keeps only APIs common to every
// successful re-execution.
func LCS(a, b []trace.API) []trace.API {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	// dp[i][j] = LCS length of a[i:], b[j:].
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := make([]trace.API, 0, dp[0][0])
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// Learn implements GET_OPERATIONAL_FINGERPRINT (Algorithm 1): sort traces
// by length, noise-filter each, and fold them together with LCS so only
// the APIs common to every successful iteration remain.
func Learn(traces [][]trace.API, nf *NoiseFilter) []trace.API {
	if len(traces) == 0 {
		return nil
	}
	sorted := make([][]trace.API, len(traces))
	copy(sorted, traces)
	// Sort by trace length ascending (shortest first seeds the fold).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && len(sorted[j]) < len(sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	fp := nf.Filter(sorted[0])
	for _, tr := range sorted[1:] {
		fp = LCS(fp, nf.Filter(tr))
	}
	return fp
}

// LearnVariants is the branched-fingerprint extension the paper leaves as
// future work (§8 limitation 6: "GRETEL does not handle asynchronous
// calls that occur in the middle of an operation and lead to a branched
// fingerprint. Currently, GRETEL's re-execution of operations removes
// truly asynchronous APIs from the fingerprint."). Instead of collapsing
// all runs with LCS, it groups noise-filtered traces by exact sequence
// and keeps each variant observed in at least minSupport runs (up to
// maxVariants, by support). When no variant reaches support, it falls
// back to the classic LCS fingerprint.
func LearnVariants(traces [][]trace.API, nf *NoiseFilter, minSupport, maxVariants int) [][]trace.API {
	if len(traces) == 0 {
		return nil
	}
	if minSupport < 1 {
		minSupport = 1
	}
	if maxVariants < 1 {
		maxVariants = 2
	}
	type group struct {
		apis    []trace.API
		support int
		first   int
	}
	groups := map[string]*group{}
	var order []string
	for i, tr := range traces {
		filtered := nf.Filter(tr)
		key := apiKey(filtered)
		g, ok := groups[key]
		if !ok {
			g = &group{apis: filtered, first: i}
			groups[key] = g
			order = append(order, key)
		}
		g.support++
	}
	var qualified []*group
	for _, key := range order {
		if g := groups[key]; g.support >= minSupport {
			qualified = append(qualified, g)
		}
	}
	// Highest support first; ties by first appearance for determinism.
	sort.SliceStable(qualified, func(i, j int) bool {
		if qualified[i].support != qualified[j].support {
			return qualified[i].support > qualified[j].support
		}
		return qualified[i].first < qualified[j].first
	})
	if len(qualified) == 0 {
		return [][]trace.API{Learn(traces, nf)}
	}
	if len(qualified) > maxVariants {
		qualified = qualified[:maxVariants]
	}
	out := make([][]trace.API, len(qualified))
	for i, g := range qualified {
		out[i] = g.apis
	}
	return out
}

func apiKey(apis []trace.API) string {
	var b strings.Builder
	for _, a := range apis {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Library holds every learned fingerprint, the shared symbol table, and
// the per-symbol posting lists used to pre-select candidate operations
// for a fault (GET_POSSIBLE_OFFENDING_OPERATIONS in Algorithm 2).
type Library struct {
	Table   *symbol.Table
	fps     []*Fingerprint
	byName  map[string]*Fingerprint
	posting map[rune][]int
}

// NewLibrary returns an empty library over a fresh symbol table.
func NewLibrary() *Library {
	return &Library{
		Table:   symbol.NewTable(),
		byName:  make(map[string]*Fingerprint),
		posting: make(map[rune][]int),
	}
}

// Add learns a fingerprint from traces and registers it. It returns the
// stored fingerprint. Adding a duplicate name replaces the previous entry
// in the name index but keeps library order stable for the original.
func (l *Library) Add(name, category string, traces [][]trace.API, nf *NoiseFilter) *Fingerprint {
	apis := Learn(traces, nf)
	return l.AddAPIs(name, category, apis)
}

// AddAPIs registers a fingerprint from an already-learned API sequence.
func (l *Library) AddAPIs(name, category string, apis []trace.API) *Fingerprint {
	fp := &Fingerprint{Name: name, Category: category, APIs: apis}
	fp.Symbols = make([]rune, len(apis))
	fp.state = make([]bool, len(apis))
	for i, a := range apis {
		fp.Symbols[i] = l.Table.Assign(a)
		fp.state[i] = a.StateChanging()
	}
	idx := len(l.fps)
	l.fps = append(l.fps, fp)
	l.byName[name] = fp
	seen := map[rune]bool{}
	for _, r := range fp.Symbols {
		if !seen[r] {
			seen[r] = true
			l.posting[r] = append(l.posting[r], idx)
		}
	}
	return fp
}

// Len reports the number of fingerprints (the paper's N).
func (l *Library) Len() int { return len(l.fps) }

// All returns every fingerprint in registration order.
func (l *Library) All() []*Fingerprint { return l.fps }

// ByName returns the named fingerprint, or nil.
func (l *Library) ByName(name string) *Fingerprint { return l.byName[name] }

// Candidates returns the fingerprints containing the offending symbol —
// the operations that could possibly contain the faulty API.
func (l *Library) Candidates(offending rune) []*Fingerprint {
	idxs := l.posting[offending]
	out := make([]*Fingerprint, len(idxs))
	for i, idx := range idxs {
		out[i] = l.fps[idx]
	}
	return out
}

// CandidatesForAPI resolves the API through the symbol table first.
func (l *Library) CandidatesForAPI(api trace.API) []*Fingerprint {
	r, ok := l.Table.Lookup(api)
	if !ok {
		return nil
	}
	return l.Candidates(r)
}

// MaxLen returns FPmax — the size of the largest fingerprint across all
// operations (384 in the paper's characterization).
func (l *Library) MaxLen() int {
	max := 0
	for _, fp := range l.fps {
		if fp.Len() > max {
			max = fp.Len()
		}
	}
	return max
}

// Stats summarizes fingerprints per category: count and average length
// with and without RPC symbols (Table 1's last columns).
type Stats struct {
	Category    string
	Count       int
	AvgLenWith  float64
	AvgLenNoRPC float64
	UniqueREST  int
	UniqueRPC   int
}

// StatsByCategory aggregates Table 1 style statistics.
func (l *Library) StatsByCategory() []Stats {
	type agg struct {
		count, lenWith, lenNo int
		rest, rpc             map[trace.API]bool
	}
	byCat := map[string]*agg{}
	var order []string
	for _, fp := range l.fps {
		a, ok := byCat[fp.Category]
		if !ok {
			a = &agg{rest: map[trace.API]bool{}, rpc: map[trace.API]bool{}}
			byCat[fp.Category] = a
			order = append(order, fp.Category)
		}
		a.count++
		for _, api := range fp.APIs {
			if api.Kind == trace.RPC {
				a.rpc[api] = true
			} else {
				a.rest[api] = true
				a.lenNo++
			}
			a.lenWith++
		}
	}
	out := make([]Stats, 0, len(order))
	for _, cat := range order {
		a := byCat[cat]
		out = append(out, Stats{
			Category:    cat,
			Count:       a.count,
			AvgLenWith:  float64(a.lenWith) / float64(a.count),
			AvgLenNoRPC: float64(a.lenNo) / float64(a.count),
			UniqueREST:  len(a.rest),
			UniqueRPC:   len(a.rpc),
		})
	}
	return out
}

// String renders library-level info.
func (l *Library) String() string {
	return fmt.Sprintf("fingerprint.Library{n=%d, FPmax=%d, symbols=%d}", l.Len(), l.MaxLen(), l.Table.Len())
}
