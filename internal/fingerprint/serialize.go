// Fingerprint-library persistence: the offline learning phase (Algorithm
// 1) runs once in a controlled setting, and the resulting library is
// shipped to production analyzers (§7.1: "GRETEL's fingerprint generation
// is an offline process... GRETEL does not require learning atop
// production environments"). Libraries serialize as JSON; loading
// rebuilds the symbol table deterministically in fingerprint order.

package fingerprint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gretel/internal/trace"
)

type apiJSON struct {
	Service string `json:"service"`
	Kind    string `json:"kind"`
	Method  string `json:"method"`
	Path    string `json:"path,omitempty"`
}

type fpJSON struct {
	Name     string    `json:"name"`
	Category string    `json:"category"`
	APIs     []apiJSON `json:"apis"`
}

type libraryJSON struct {
	Version      int      `json:"version"`
	Fingerprints []fpJSON `json:"fingerprints"`
}

// Save writes the library as JSON.
func (l *Library) Save(w io.Writer) error {
	out := libraryJSON{Version: 1}
	for _, fp := range l.fps {
		j := fpJSON{Name: fp.Name, Category: fp.Category}
		for _, a := range fp.APIs {
			kind := "REST"
			if a.Kind == trace.RPC {
				kind = "RPC"
			}
			j.APIs = append(j.APIs, apiJSON{
				Service: a.Service.String(), Kind: kind, Method: a.Method, Path: a.Path,
			})
		}
		out.Fingerprints = append(out.Fingerprints, j)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// SaveFile writes the library to a file.
func (l *Library) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fingerprint: creating %s: %w", path, err)
	}
	defer f.Close()
	return l.Save(f)
}

// Load reads a library saved by Save, rebuilding the symbol table and
// posting lists.
func Load(r io.Reader) (*Library, error) {
	var in libraryJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("fingerprint: decoding library: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("fingerprint: unsupported library version %d", in.Version)
	}
	lib := NewLibrary()
	for _, j := range in.Fingerprints {
		apis := make([]trace.API, 0, len(j.APIs))
		for _, a := range j.APIs {
			svc := trace.ServiceByName(a.Service)
			if svc == trace.SvcUnknown {
				return nil, fmt.Errorf("fingerprint: unknown service %q in %s", a.Service, j.Name)
			}
			switch a.Kind {
			case "REST":
				apis = append(apis, trace.RESTAPI(svc, a.Method, a.Path))
			case "RPC":
				apis = append(apis, trace.RPCAPI(svc, a.Method))
			default:
				return nil, fmt.Errorf("fingerprint: unknown kind %q in %s", a.Kind, j.Name)
			}
		}
		lib.AddAPIs(j.Name, j.Category, apis)
	}
	return lib, nil
}

// LoadFile reads a library from a file.
func LoadFile(path string) (*Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
