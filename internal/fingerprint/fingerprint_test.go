package fingerprint

import (
	"testing"
	"testing/quick"

	"gretel/internal/trace"
)

func get(p string) trace.API  { return trace.RESTAPI(trace.SvcNova, "GET", p) }
func post(p string) trace.API { return trace.RESTAPI(trace.SvcNova, "POST", p) }
func rpc(m string) trace.API  { return trace.RPCAPI(trace.SvcNovaCompute, m) }
func auth() trace.API         { return trace.RESTAPI(trace.SvcKeystone, "POST", "/v3/auth/tokens") }

func nf() *NoiseFilter {
	return NewNoiseFilter([]trace.API{trace.RPCAPI(trace.SvcNova, "report_state"), auth()})
}

func TestNoiseFilterDropsAuthAndHeartbeats(t *testing.T) {
	seq := []trace.API{auth(), get("/a"), trace.RPCAPI(trace.SvcNova, "report_state"), post("/b"), auth()}
	got := nf().Filter(seq)
	if len(got) != 2 || got[0] != get("/a") || got[1] != post("/b") {
		t.Fatalf("Filter = %v", got)
	}
}

func TestNoiseFilterKeepsLegitimateKeystoneCalls(t *testing.T) {
	// Only the common auth calls are noise; admin tasks listing Keystone
	// resources keep those APIs (the Misc category queries projects/users).
	projects := trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/projects")
	got := nf().Filter([]trace.API{auth(), projects})
	if len(got) != 1 || got[0] != projects {
		t.Fatalf("Filter = %v, want [projects]", got)
	}
}

func TestNoiseFilterServiceWideConfig(t *testing.T) {
	f := nf()
	f.NoiseServices[trace.SvcKeystone] = true
	projects := trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/projects")
	if got := f.Filter([]trace.API{projects, get("/a")}); len(got) != 1 || got[0] != get("/a") {
		t.Fatalf("service-wide filter = %v", got)
	}
}

func TestNoiseFilterCollapsesIdempotentRepeats(t *testing.T) {
	seq := []trace.API{get("/a"), get("/a"), get("/a"), post("/b"), post("/b"), get("/a")}
	got := nf().Filter(seq)
	// Consecutive GET repeats collapse; POST repeats do not; the later
	// GET /a is not adjacent so it stays.
	want := []trace.API{get("/a"), post("/b"), post("/b"), get("/a")}
	if len(got) != len(want) {
		t.Fatalf("Filter = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Filter[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLCSBasics(t *testing.T) {
	a := []trace.API{get("/a"), post("/b"), get("/c"), post("/d")}
	b := []trace.API{get("/a"), get("/x"), get("/c"), post("/d")}
	got := LCS(a, b)
	want := []trace.API{get("/a"), get("/c"), post("/d")}
	if len(got) != len(want) {
		t.Fatalf("LCS = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LCS[%d] = %v", i, got[i])
		}
	}
	if LCS(nil, a) != nil || LCS(a, nil) != nil {
		t.Fatal("LCS with empty input should be nil")
	}
}

// Property: LCS output is a subsequence of both inputs and is no longer
// than either.
func TestQuickLCSSubsequence(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := make([]trace.API, len(xs))
		for i, x := range xs {
			a[i] = get(string(rune('a' + x%8)))
		}
		b := make([]trace.API, len(ys))
		for i, y := range ys {
			b[i] = get(string(rune('a' + y%8)))
		}
		c := LCS(a, b)
		if len(c) > len(a) || len(c) > len(b) {
			return false
		}
		return apiSubseq(c, a) && apiSubseq(c, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func apiSubseq(p, s []trace.API) bool {
	i := 0
	for _, x := range s {
		if i < len(p) && p[i] == x {
			i++
		}
	}
	return i == len(p)
}

func TestLearnRemovesTransients(t *testing.T) {
	base := []trace.API{get("/a"), post("/b"), rpc("build"), get("/c")}
	t1 := append([]trace.API{auth()}, base...)
	// Run 2 has a transient repeat of /a in the middle.
	t2 := []trace.API{auth(), get("/a"), post("/b"), get("/x-transient"), rpc("build"), get("/c")}
	t3 := append([]trace.API{}, t1...)
	got := Learn([][]trace.API{t2, t1, t3}, nf())
	if len(got) != len(base) {
		t.Fatalf("Learn = %v, want %v", got, base)
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("Learn[%d] = %v", i, got[i])
		}
	}
	if Learn(nil, nf()) != nil {
		t.Fatal("Learn(nil)")
	}
}

func newLib(t *testing.T) *Library {
	t.Helper()
	l := NewLibrary()
	l.AddAPIs("vm-create", "Compute", []trace.API{get("/a"), post("/b"), rpc("build"), get("/c"), post("/d")})
	l.AddAPIs("vm-delete", "Compute", []trace.API{get("/a"), post("/del"), rpc("terminate")})
	l.AddAPIs("vol-create", "Storage", []trace.API{post("/vol"), get("/vol-status")})
	return l
}

func TestLibraryLookupAndPosting(t *testing.T) {
	l := newLib(t)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.ByName("vm-create") == nil || l.ByName("ghost") != nil {
		t.Fatal("ByName broken")
	}
	cands := l.CandidatesForAPI(get("/a"))
	if len(cands) != 2 {
		t.Fatalf("candidates for /a = %d, want 2", len(cands))
	}
	cands = l.CandidatesForAPI(post("/vol"))
	if len(cands) != 1 || cands[0].Name != "vol-create" {
		t.Fatalf("candidates for /vol = %v", cands)
	}
	if l.CandidatesForAPI(get("/never-seen")) != nil {
		t.Fatal("candidates for unknown API")
	}
	if l.MaxLen() != 5 {
		t.Fatalf("MaxLen = %d", l.MaxLen())
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRegexRendering(t *testing.T) {
	l := newLib(t)
	fp := l.ByName("vm-create")
	re := []rune(fp.Regex())
	// get(*), post, rpc, get(*), post => symbols: s0 * s1 s2 s3 * s4
	if len(re) != 7 {
		t.Fatalf("regex runes = %d (%q)", len(re), string(re))
	}
	if re[1] != '*' || re[5] != '*' {
		t.Fatalf("stars misplaced: %q", string(re))
	}
}

func TestTruncate(t *testing.T) {
	l := NewLibrary()
	fp := l.AddAPIs("op", "Compute", []trace.API{get("/a"), post("/b"), get("/a"), post("/c")})
	symA, _ := l.Table.Lookup(get("/a"))
	tr := fp.Truncate(symA)
	if tr == nil || tr.Len() != 3 {
		t.Fatalf("Truncate at last /a: %v", tr)
	}
	if tr.Symbols[2] != symA {
		t.Fatal("truncation did not end at offending symbol")
	}
	symZ := rune(0xF000)
	if fp.Truncate(symZ) != nil {
		t.Fatal("Truncate with absent symbol should be nil")
	}
	// Original untouched.
	if fp.Len() != 4 {
		t.Fatal("Truncate mutated the original")
	}
}

func TestMatchRelaxed(t *testing.T) {
	l := NewLibrary()
	fp := l.AddAPIs("op", "Compute", []trace.API{get("/a"), post("/b"), get("/c"), post("/d")})
	sym := func(a trace.API) rune { r, _ := l.Table.Lookup(a); return r }
	sA, sB, sC, sD := sym(get("/a")), sym(post("/b")), sym(get("/c")), sym(post("/d"))
	noise := rune(0xF123)

	// State-change order preserved, reads missing, noise interleaved:
	// matches (the paper's Fig 4 example: symbol A missing still matches).
	snap := []rune{noise, sB, noise, noise, sD}
	if !fp.MatchRelaxed(snap) {
		t.Fatal("relaxed match failed despite preserved state-change order")
	}
	// State-change out of order: no match.
	if fp.MatchRelaxed([]rune{sD, sB}) {
		t.Fatal("matched out-of-order state changes")
	}
	// Missing a state-change symbol: no match.
	if fp.MatchRelaxed([]rune{sB, noise}) {
		t.Fatal("matched with missing mandatory symbol")
	}
	// Strict match needs the reads too.
	if fp.MatchStrict(snap) {
		t.Fatal("strict match ignored missing reads")
	}
	if !fp.MatchStrict([]rune{sA, noise, sB, sC, sD}) {
		t.Fatal("strict match failed on full sequence")
	}
}

func TestMatchRelaxedLastSymbolMandatory(t *testing.T) {
	// A truncated fingerprint ending in a GET must still require that GET
	// (it is the offending API).
	l := NewLibrary()
	fp := l.AddAPIs("op", "Compute", []trace.API{post("/b"), get("/c")})
	sym := func(a trace.API) rune { r, _ := l.Table.Lookup(a); return r }
	sB, sC := sym(post("/b")), sym(get("/c"))
	if fp.MatchRelaxed([]rune{sB}) {
		t.Fatal("matched without the trailing offending GET")
	}
	if !fp.MatchRelaxed([]rune{sB, sC}) {
		t.Fatal("failed with full mandatory sequence")
	}
}

func TestMatchRelaxedAllReadsFallback(t *testing.T) {
	// A fingerprint with no state-change symbols must require all its
	// symbols, not match everything.
	l := NewLibrary()
	fp := l.AddAPIs("list-op", "Misc", []trace.API{get("/x"), get("/y")})
	sym := func(a trace.API) rune { r, _ := l.Table.Lookup(a); return r }
	if fp.MatchRelaxed([]rune{sym(get("/x"))}) {
		t.Fatal("read-only fingerprint matched partial snapshot")
	}
	if !fp.MatchRelaxed([]rune{sym(get("/x")), sym(get("/y"))}) {
		t.Fatal("read-only fingerprint failed full snapshot")
	}
}

func TestWithoutRPC(t *testing.T) {
	l := NewLibrary()
	fp := l.AddAPIs("op", "Compute", []trace.API{get("/a"), rpc("build"), post("/b")})
	lean := fp.WithoutRPC(l.Table)
	if lean.Len() != 2 {
		t.Fatalf("WithoutRPC len = %d", lean.Len())
	}
	for _, a := range lean.APIs {
		if a.Kind == trace.RPC {
			t.Fatal("RPC survived pruning")
		}
	}
	if fp.Len() != 3 {
		t.Fatal("original mutated")
	}
}

func TestOverlap(t *testing.T) {
	l := NewLibrary()
	a := l.AddAPIs("a", "Compute", []trace.API{get("/1"), get("/2"), get("/3"), get("/4")})
	b := l.AddAPIs("b", "Network", []trace.API{get("/3"), get("/4"), get("/5")})
	if got := Overlap(a, b); got != 0.5 {
		t.Fatalf("Overlap(a,b) = %v, want 0.5", got)
	}
	if got := Overlap(b, a); got < 0.66 || got > 0.67 {
		t.Fatalf("Overlap(b,a) = %v, want 2/3", got)
	}
	empty := &Fingerprint{}
	if Overlap(empty, a) != 0 {
		t.Fatal("Overlap with empty fingerprint")
	}
}

func TestStatsByCategory(t *testing.T) {
	l := newLib(t)
	stats := l.StatsByCategory()
	if len(stats) != 2 {
		t.Fatalf("stats categories = %d", len(stats))
	}
	var compute *Stats
	for i := range stats {
		if stats[i].Category == "Compute" {
			compute = &stats[i]
		}
	}
	if compute == nil || compute.Count != 2 {
		t.Fatalf("compute stats = %+v", compute)
	}
	// vm-create len 5 (1 RPC), vm-delete len 3 (1 RPC): avg 4 with, 3 without.
	if compute.AvgLenWith != 4 || compute.AvgLenNoRPC != 3 {
		t.Fatalf("avg lens = %v / %v", compute.AvgLenWith, compute.AvgLenNoRPC)
	}
	if compute.UniqueRPC != 2 {
		t.Fatalf("unique RPC = %d", compute.UniqueRPC)
	}
}

// Property: Truncate never lengthens and always ends with the offending
// symbol when it occurs.
func TestQuickTruncate(t *testing.T) {
	f := func(seq []uint8, off uint8) bool {
		l := NewLibrary()
		apis := make([]trace.API, len(seq))
		for i, x := range seq {
			apis[i] = post(string(rune('a' + x%6)))
		}
		fp := l.AddAPIs("x", "C", apis)
		offAPI := post(string(rune('a' + off%6)))
		r, ok := l.Table.Lookup(offAPI)
		if !ok {
			return fp.Truncate(rune(0xF8FE)) == nil
		}
		tr := fp.Truncate(r)
		contains := false
		for _, s := range fp.Symbols {
			if s == r {
				contains = true
			}
		}
		if !contains {
			return tr == nil
		}
		return tr != nil && tr.Len() <= fp.Len() && tr.Symbols[tr.Len()-1] == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatchExactIndexed(t *testing.T) {
	l := NewLibrary()
	fp := l.AddAPIs("op", "Compute", []trace.API{post("/a"), get("/r"), post("/b"), post("/c")})
	sym := func(a trace.API) rune { r, _ := l.Table.Lookup(a); return r }
	sA, sB, sC := sym(post("/a")), sym(post("/b")), sym(post("/c"))
	noise := rune(0xF222)

	full := []rune{sA, noise, sB, sC}
	if !fp.MatchExactIndexed(NewSnapshotIndex(full)) {
		t.Fatal("exact match failed on complete in-order pattern")
	}
	// Missing a mandatory symbol: exact fails where relaxed succeeds.
	partial := []rune{sB, sC}
	if fp.MatchExactIndexed(NewSnapshotIndex(partial)) {
		t.Fatal("exact match tolerated an omission")
	}
	if !fp.MatchRelaxedIndexed(NewSnapshotIndex(partial)) {
		t.Fatal("relaxed match should tolerate the omission")
	}
}

func TestMatchCorrelated(t *testing.T) {
	l := NewLibrary()
	fp := l.AddAPIs("op", "Compute", []trace.API{post("/a"), get("/r"), post("/b")})
	other := l.AddAPIs("other", "Compute", []trace.API{post("/x"), post("/b")})
	sym := func(a trace.API) rune { r, _ := l.Table.Lookup(a); return r }
	sA, sR, sB, sX := sym(post("/a")), sym(get("/r")), sym(post("/b")), sym(post("/x"))

	// The operation's own pattern: fully covered by its fingerprint.
	own := []rune{sA, sR, sR, sB} // includes an idempotent retry of /r
	if !fp.MatchCorrelated(NewSnapshotIndex(own)) {
		t.Fatal("true operation failed correlated match on its own pattern")
	}
	// A different candidate explains only half the pattern: rejected.
	if other.MatchCorrelated(NewSnapshotIndex(own)) {
		t.Fatal("foreign candidate passed coverage on another op's pattern")
	}
	// The offending (final) symbol must be present.
	if fp.MatchCorrelated(NewSnapshotIndex([]rune{sA, sR})) {
		t.Fatal("correlated match without the offending symbol")
	}
	// Empty pattern never matches.
	if fp.MatchCorrelated(NewSnapshotIndex(nil)) {
		t.Fatal("correlated match on empty pattern")
	}
	_ = sX
}

func TestLearnVariantsKeepsBranches(t *testing.T) {
	// An operation with an async middle step: half the runs include
	// post(/async), half don't. Classic LCS drops it; variant learning
	// keeps both branches.
	withStep := []trace.API{post("/a"), post("/async"), post("/b")}
	without := []trace.API{post("/a"), post("/b")}
	traces := [][]trace.API{withStep, without, withStep, without, withStep}

	classic := Learn(traces, nf())
	if len(classic) != 2 {
		t.Fatalf("classic LCS = %v, want async step removed", classic)
	}

	variants := LearnVariants(traces, nf(), 2, 2)
	if len(variants) != 2 {
		t.Fatalf("variants = %d, want 2", len(variants))
	}
	// Highest support first: withStep (3 runs) then without (2 runs).
	if len(variants[0]) != 3 || len(variants[1]) != 2 {
		t.Fatalf("variant lengths = %d, %d", len(variants[0]), len(variants[1]))
	}
}

func TestLearnVariantsSupportThreshold(t *testing.T) {
	a := []trace.API{post("/a")}
	b := []trace.API{post("/b")}
	traces := [][]trace.API{a, a, a, b} // b seen once
	variants := LearnVariants(traces, nf(), 2, 4)
	if len(variants) != 1 || len(variants[0]) != 1 || variants[0][0] != post("/a") {
		t.Fatalf("variants = %v", variants)
	}
}

func TestLearnVariantsFallbackToLCS(t *testing.T) {
	// Every run unique (heavy transient noise): nothing reaches support 2,
	// so the classic LCS fingerprint is returned.
	traces := [][]trace.API{
		{post("/a"), get("/x1"), post("/b")},
		{post("/a"), get("/x2"), post("/b")},
		{post("/a"), get("/x3"), post("/b")},
	}
	variants := LearnVariants(traces, nf(), 2, 2)
	if len(variants) != 1 {
		t.Fatalf("variants = %d, want LCS fallback", len(variants))
	}
	want := []trace.API{post("/a"), post("/b")}
	if len(variants[0]) != 2 || variants[0][0] != want[0] || variants[0][1] != want[1] {
		t.Fatalf("fallback = %v", variants[0])
	}
}

func TestLearnVariantsMaxCap(t *testing.T) {
	traces := [][]trace.API{
		{post("/a")}, {post("/a")},
		{post("/b")}, {post("/b")},
		{post("/c")}, {post("/c")},
	}
	variants := LearnVariants(traces, nf(), 2, 2)
	if len(variants) != 2 {
		t.Fatalf("cap not applied: %d", len(variants))
	}
	if LearnVariants(nil, nf(), 1, 2) != nil {
		t.Fatal("empty input")
	}
}

// TestSliceViewMatchesRebuilt is the contract the detector's incremental
// context growth relies on: matching against a Slice view of a full
// snapshot index is equivalent to rebuilding the index from the
// sub-pattern at every β step.
func TestSliceViewMatchesRebuilt(t *testing.T) {
	l := NewLibrary()
	fps := []*Fingerprint{
		l.AddAPIs("op1", "Compute", []trace.API{post("/a"), get("/r"), post("/b"), post("/c")}),
		l.AddAPIs("op2", "Compute", []trace.API{post("/x"), post("/b")}),
		l.AddAPIs("op3", "Storage", []trace.API{post("/c"), get("/r")}),
	}
	// Patterns drawn from the allocated symbol set plus noise runes.
	var syms []rune
	for _, api := range l.Table.APIs() {
		if r, ok := l.Table.Lookup(api); ok {
			syms = append(syms, r)
		}
	}
	f := func(raw []uint8, loRaw, hiRaw uint8) bool {
		pattern := make([]rune, len(raw))
		for i, v := range raw {
			if int(v)%4 == 0 {
				pattern[i] = rune(0xF300 + int(v)) // noise
			} else {
				pattern[i] = syms[int(v)%len(syms)]
			}
		}
		lo := int(loRaw) % (len(pattern) + 1)
		hi := lo + int(hiRaw)%(len(pattern)-lo+1)
		view := NewSnapshotIndex(pattern).Slice(lo, hi)
		rebuilt := NewSnapshotIndex(pattern[lo:hi])
		if view.Len() != rebuilt.Len() {
			return false
		}
		for _, fp := range fps {
			if fp.MatchExactIndexed(view) != fp.MatchExactIndexed(rebuilt) ||
				fp.MatchRelaxedIndexed(view) != fp.MatchRelaxedIndexed(rebuilt) ||
				fp.MatchCorrelated(view) != fp.MatchCorrelated(rebuilt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceClampsBounds(t *testing.T) {
	idx := NewSnapshotIndex([]rune{'a', 'b', 'c'})
	if got := idx.Slice(-5, 99).Len(); got != 3 {
		t.Fatalf("clamped slice len = %d, want 3", got)
	}
	if got := idx.Slice(2, 1).Len(); got != 0 {
		t.Fatalf("inverted slice len = %d, want 0", got)
	}
	// Nested views intersect (bounds are absolute positions in the
	// original sequence); a sub-view can never widen its parent.
	if got := idx.Slice(1, 3).Slice(2, 3); got.Len() != 1 {
		t.Fatalf("nested slice len = %d, want 1", got.Len())
	}
	if got := idx.Slice(1, 3).Slice(0, 99); got.Len() != 2 {
		t.Fatalf("nested slice did not clamp to parent: len = %d, want 2", got.Len())
	}
}
