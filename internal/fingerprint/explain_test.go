package fingerprint

import (
	"strings"
	"testing"

	"gretel/internal/symbol"
	"gretel/internal/trace"
)

// explainLib builds a small library with overlapping operations plus the
// symbol table needed to render rejection reasons.
func explainLib() *Library {
	lib := NewLibrary()
	lib.AddAPIs("op-a", "Compute", []trace.API{get("/list"), post("/a1"), rpc("build"), post("/a2"), get("/status")})
	lib.AddAPIs("op-b", "Compute", []trace.API{get("/list"), post("/b1"), post("/a2"), get("/status")})
	lib.AddAPIs("op-c", "Storage", []trace.API{post("/c1"), get("/c2")})
	return lib
}

// snapshots generates deterministic symbol sequences exercising matches,
// order violations, absences, and empties: permutations and slices of
// the library's own fingerprints interleaved with noise symbols from a
// tiny LCG.
func snapshots(lib *Library) [][]rune {
	var fps []*Fingerprint
	for _, name := range []string{"op-a", "op-b", "op-c"} {
		fps = append(fps, lib.ByName(name))
	}
	noise := []rune{'x', 'y', 'z'}
	var out [][]rune
	state := uint32(12345)
	next := func(n int) int {
		state = state*1664525 + 1013904223
		return int(state>>16) % n
	}
	for _, fp := range fps {
		s := fp.Symbols
		out = append(out, s)            // verbatim
		out = append(out, s[:len(s)/2]) // truncated
		out = append(out, s[len(s)/2:]) // tail only
		rev := make([]rune, len(s))     // reversed (order violations)
		for i, r := range s {
			rev[len(s)-1-i] = r
		}
		out = append(out, rev)
		// Interleaved with noise and another operation's symbols.
		for trial := 0; trial < 8; trial++ {
			mix := make([]rune, 0, 3*len(s))
			other := fps[next(len(fps))]
			oi := 0
			for _, r := range s {
				for next(3) == 0 {
					mix = append(mix, noise[next(len(noise))])
				}
				if oi < len(other.Symbols) && next(2) == 0 {
					mix = append(mix, other.Symbols[oi])
					oi++
				}
				if next(4) != 0 { // sometimes drop the symbol entirely
					mix = append(mix, r)
				}
			}
			out = append(out, mix)
		}
	}
	out = append(out, nil) // empty snapshot
	return out
}

// TestExplainVerdictsEqualMatchVerdicts is the no-drift contract: every
// Explain* twin must return exactly the verdict of its production
// matcher, with a non-empty reason on rejection and score 1 on a match.
func TestExplainVerdictsEqualMatchVerdicts(t *testing.T) {
	lib := explainLib()
	var fps []*Fingerprint
	for _, name := range []string{"op-a", "op-b", "op-c"} {
		fp := lib.ByName(name)
		fps = append(fps, fp)
		// Truncated variants: what detect actually matches.
		for _, r := range fp.Symbols {
			if tr := fp.Truncate(r); tr != nil {
				fps = append(fps, tr)
			}
		}
	}

	check := func(t *testing.T, mode string, got Explanation, want bool, name string, snapLen int) {
		t.Helper()
		if got.Matched != want {
			t.Fatalf("%s: explain verdict %v != match verdict %v (fp=%s snap=%d syms)",
				mode, got.Matched, want, name, snapLen)
		}
		if got.Matched {
			if got.Score != 1 {
				t.Fatalf("%s: matched but score %.2f != 1 (fp=%s)", mode, got.Score, name)
			}
			if got.Reason != "" {
				t.Fatalf("%s: matched but reason %q", mode, got.Reason)
			}
		} else {
			if got.Reason == "" {
				t.Fatalf("%s: rejected without a reason (fp=%s snap=%d syms)", mode, name, snapLen)
			}
			if got.Score < 0 || got.Score > 1 {
				t.Fatalf("%s: score %.2f out of range", mode, got.Score)
			}
		}
	}

	n := 0
	for _, snap := range snapshots(lib) {
		idx := NewSnapshotIndex(snap)
		for _, fp := range fps {
			check(t, "relaxed", fp.ExplainRelaxed(idx, lib.Table), fp.MatchRelaxedIndexed(idx), fp.Name, len(snap))
			check(t, "exact", fp.ExplainExact(idx, lib.Table), fp.MatchExactIndexed(idx), fp.Name, len(snap))
			check(t, "strict", fp.ExplainStrict(snap, lib.Table), fp.MatchStrict(snap), fp.Name, len(snap))
			check(t, "correlated", fp.ExplainCorrelated(idx, lib.Table), fp.MatchCorrelated(idx), fp.Name, len(snap))
			n += 4
		}
	}
	if n < 500 {
		t.Fatalf("only %d verdict pairs exercised; generator degenerated", n)
	}
}

// TestExplainReasonsNameAPIs verifies rejection reasons render symbols as
// API names through the table, not raw code points.
func TestExplainReasonsNameAPIs(t *testing.T) {
	lib := explainLib()
	opA := lib.ByName("op-a")
	// A snapshot holding everything except op-a's final symbol.
	snap := opA.Symbols[:len(opA.Symbols)-1]
	exp := opA.ExplainRelaxed(NewSnapshotIndex(snap), lib.Table)
	if exp.Matched {
		t.Fatal("should reject: final symbol absent")
	}
	if !strings.Contains(exp.Reason, "GET /status") {
		t.Fatalf("reason should name the missing API: %q", exp.Reason)
	}
	if strings.Contains(exp.Reason, "U+") {
		t.Fatalf("reason leaked a raw code point: %q", exp.Reason)
	}

	// Without a table the raw code point is the fallback.
	var noTbl *symbol.Table
	exp = opA.ExplainRelaxed(NewSnapshotIndex(snap), noTbl)
	if !strings.Contains(exp.Reason, "U+") {
		t.Fatalf("tableless reason should fall back to code points: %q", exp.Reason)
	}
}
