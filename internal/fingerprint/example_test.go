package fingerprint_test

import (
	"fmt"

	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/trace"
)

// Learn an operational fingerprint from repeated isolated executions:
// noise (auth, heartbeats) and transient retries drop out.
func ExampleLearn() {
	auth := trace.RESTAPI(trace.SvcKeystone, "POST", "/v3/auth/tokens")
	create := trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers")
	build := trace.RPCAPI(trace.SvcNovaCompute, "build_and_run_instance")
	status := trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}")
	transient := trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/limits")

	run1 := []trace.API{auth, create, build, status}
	run2 := []trace.API{auth, create, transient, build, status} // one stray call
	run3 := []trace.API{auth, create, build, status, status}    // idempotent repeat

	nf := fingerprint.NewNoiseFilter(openstack.NoiseAPIs())
	for _, api := range fingerprint.Learn([][]trace.API{run1, run2, run3}, nf) {
		fmt.Println(api)
	}
	// Output:
	// nova REST POST /v2.1/servers
	// nova-compute RPC build_and_run_instance
	// nova REST GET /v2.1/servers/{id}
}

// Truncate a fingerprint at the offending API and match it against a
// snapshot under the relaxed (state-change order) semantics of §5.3.1.
func ExampleFingerprint_MatchRelaxed() {
	lib := fingerprint.NewLibrary()
	fp := lib.AddAPIs("vm-create", "Compute", []trace.API{
		trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}"),
		trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/ports.json"),
	})
	offending, _ := lib.Table.Lookup(trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/ports.json"))
	truncated := fp.Truncate(offending)

	// Snapshot: the POST /servers and the failing POST /ports.json are in
	// the context buffer; the GET (read-only) was displaced by concurrent
	// traffic — the match still holds.
	snapshot := []rune{fp.Symbols[0], 'x', 'y', fp.Symbols[2]}
	fmt.Println(truncated.MatchRelaxed(snapshot))
	// Out of order: no match.
	fmt.Println(truncated.MatchRelaxed([]rune{fp.Symbols[2], fp.Symbols[0]}))
	// Output:
	// true
	// false
}
