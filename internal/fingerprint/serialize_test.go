package fingerprint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gretel/internal/trace"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	lib := NewLibrary()
	lib.AddAPIs("vm-create", "Compute", []trace.API{
		trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers"),
		trace.RPCAPI(trace.SvcNovaCompute, "build_and_run_instance"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}"),
	})
	lib.AddAPIs("image-upload", "Image", []trace.API{
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/images"),
		trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
	})

	var buf bytes.Buffer
	if err := lib.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d fingerprints", got.Len())
	}
	for _, name := range []string{"vm-create", "image-upload"} {
		a, b := lib.ByName(name), got.ByName(name)
		if b == nil || a.Category != b.Category || a.Len() != b.Len() {
			t.Fatalf("%s mismatch after load", name)
		}
		for i := range a.APIs {
			if a.APIs[i] != b.APIs[i] {
				t.Fatalf("%s API %d: %v vs %v", name, i, a.APIs[i], b.APIs[i])
			}
			if a.StateChange(i) != b.StateChange(i) {
				t.Fatalf("%s state flag %d differs", name, i)
			}
		}
	}
	// Posting lists rebuilt: candidates for the RPC API resolve.
	cands := got.CandidatesForAPI(trace.RPCAPI(trace.SvcNovaCompute, "build_and_run_instance"))
	if len(cands) != 1 || cands[0].Name != "vm-create" {
		t.Fatalf("candidates after load: %v", cands)
	}
}

func TestSaveLoadFile(t *testing.T) {
	lib := NewLibrary()
	lib.AddAPIs("op", "Misc", []trace.API{trace.RESTAPI(trace.SvcSwift, "HEAD", "/v1/{id}")})
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := lib.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.ByName("op") == nil {
		t.Fatal("file round trip failed")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := Load(strings.NewReader(
		`{"version":1,"fingerprints":[{"name":"x","category":"C","apis":[{"service":"nope","kind":"REST","method":"GET"}]}]}`)); err == nil {
		t.Fatal("unknown service accepted")
	}
	if _, err := Load(strings.NewReader(
		`{"version":1,"fingerprints":[{"name":"x","category":"C","apis":[{"service":"nova","kind":"SOAP","method":"GET"}]}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
