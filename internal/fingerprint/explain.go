// Explainable matching: every Match* verdict can be re-run through an
// Explain* twin that records the evidence — how many mandatory symbols
// were satisfied, which omissions the relaxed semantics tolerated, and
// the concrete reason a losing candidate lost. The explain path reuses
// the production walk (matchOrdered) wherever one exists, so verdicts
// cannot drift between what the analyzer decided and what the evidence
// trace claims.
package fingerprint

import (
	"fmt"

	"gretel/internal/symbol"
)

// Explanation is the evidence behind one fingerprint-vs-snapshot verdict.
type Explanation struct {
	// Matched is the verdict, identical to the corresponding Match*.
	Matched bool
	// Mode names the matcher: "relaxed", "exact", "strict", "correlated".
	Mode string
	// MandatoryTotal is the size of the match obligation: mandatory
	// symbols for the ordered walks, full symbol count for strict.
	MandatoryTotal int
	// Satisfied counts obligation symbols found in order.
	Satisfied int
	// Omitted counts mandatory symbols absent from the snapshot that the
	// relaxed semantics tolerated.
	Omitted int
	// Coverage is the fraction of the correlation-filtered pattern the
	// fingerprint explains (correlated mode only).
	Coverage float64
	// Score is the fraction of the obligation satisfied — Satisfied /
	// MandatoryTotal for the ordered and strict walks, Coverage for
	// correlated. 1.0 on a match.
	Score float64
	// Reason is the concrete rejection reason; empty when Matched.
	Reason string

	tbl *symbol.Table
}

// sym renders a symbol as its API name when a table is available.
func (e *Explanation) sym(r rune) string {
	if e.tbl != nil {
		if api, ok := e.tbl.API(r); ok {
			return api.String()
		}
	}
	return fmt.Sprintf("symbol U+%04X", r)
}

// ExplainRelaxed is MatchRelaxedIndexed with evidence: same walk, same
// verdict, plus the score and rejection reason.
func (f *Fingerprint) ExplainRelaxed(idx *SnapshotIndex, tbl *symbol.Table) Explanation {
	return f.explainOrdered(idx, tbl, true, "relaxed")
}

// ExplainExact is MatchExactIndexed with evidence.
func (f *Fingerprint) ExplainExact(idx *SnapshotIndex, tbl *symbol.Table) Explanation {
	return f.explainOrdered(idx, tbl, false, "exact")
}

func (f *Fingerprint) explainOrdered(idx *SnapshotIndex, tbl *symbol.Table, allowOmission bool, mode string) Explanation {
	exp := Explanation{Mode: mode, tbl: tbl}
	ok, matched := f.matchOrdered(idx, allowOmission, &exp)
	exp.Matched = ok
	exp.Satisfied = matched
	if exp.MandatoryTotal > 0 {
		exp.Score = float64(matched) / float64(exp.MandatoryTotal)
	}
	if ok {
		exp.Score = 1
	}
	return exp
}

// ExplainStrict is MatchStrict with evidence: the full-sequence
// subsequence walk, recording where it stalled.
func (f *Fingerprint) ExplainStrict(snapshot []rune, tbl *symbol.Table) Explanation {
	exp := Explanation{Mode: "strict", tbl: tbl, MandatoryTotal: len(f.Symbols)}
	if len(f.Symbols) == 0 {
		// isSubsequence vacuously matches an empty pattern; mirror it.
		exp.Matched = true
		exp.Score = 1
		return exp
	}
	i := 0
	for _, r := range snapshot {
		if r == f.Symbols[i] {
			i++
			if i == len(f.Symbols) {
				break
			}
		}
	}
	exp.Satisfied = i
	exp.Matched = i == len(f.Symbols)
	exp.Score = float64(i) / float64(len(f.Symbols))
	if !exp.Matched {
		exp.Reason = fmt.Sprintf(
			"strict subsequence stalled at symbol %d of %d: no %s after the match point",
			i+1, len(f.Symbols), exp.sym(f.Symbols[i]))
	}
	return exp
}

// ExplainCorrelated is MatchCorrelated with evidence: the coverage
// computation over the correlation-filtered pattern, verbatim.
func (f *Fingerprint) ExplainCorrelated(idx *SnapshotIndex, tbl *symbol.Table) Explanation {
	exp := Explanation{Mode: "correlated", tbl: tbl, MandatoryTotal: len(f.Symbols)}
	n := idx.Len()
	if n == 0 || len(f.Symbols) == 0 {
		exp.Reason = "empty correlation-filtered pattern or empty fingerprint"
		return exp
	}
	final := f.Symbols[len(f.Symbols)-1]
	if !idx.contains(final) {
		exp.Reason = fmt.Sprintf(
			"offending symbol %s absent from the correlation-filtered pattern", exp.sym(final))
		return exp
	}
	set := f.SymbolSet()
	covered := 0
	for sym := range set {
		covered += idx.count(sym)
	}
	exp.Coverage = float64(covered) / float64(n)
	exp.Score = exp.Coverage
	exp.Satisfied = covered
	exp.Matched = float64(covered) >= corrCoverage*float64(n)
	if !exp.Matched {
		exp.Reason = fmt.Sprintf(
			"fingerprint explains only %d of %d pattern occurrences (%.0f%%, below the %.0f%% coverage bar)",
			covered, n, exp.Coverage*100, corrCoverage*100)
	}
	return exp
}
