package openstack

import (
	"fmt"

	"gretel/internal/trace"
)

// Step is one API invocation inside an operation: the caller service
// invokes the API's owning service. REST steps produce a request/response
// pair on the wire; RPC steps produce publish and deliver frames through
// the broker (plus a reply unless Cast).
type Step struct {
	API    trace.API
	Caller trace.Service
	// Cast marks fire-and-forget RPCs (no reply leg).
	Cast bool
	// Noise marks steps that are per-operation background (Keystone auth
	// preamble). They appear on the wire but must be pruned by GRETEL's
	// noise filter; they are not part of the operation's true fingerprint.
	Noise bool
	// Optional gives the probability this step is SKIPPED in a given
	// execution — the asynchronous/conditional calls of §8 limitation 6
	// that branch an operation's fingerprint. Zero means the step always
	// runs.
	Optional float64
}

// Operation is one high-level administrative task type: a named, ordered
// sequence of API invocations (a Tempest test in the paper's terms, §7.1).
type Operation struct {
	Name     string
	Category Category
	Steps    []Step
}

// APIs returns the non-noise API sequence — the ground-truth fingerprint
// the learner should recover.
func (o *Operation) APIs() []trace.API {
	out := make([]trace.API, 0, len(o.Steps))
	for _, s := range o.Steps {
		if !s.Noise {
			out = append(out, s.API)
		}
	}
	return out
}

// FingerprintLen reports the ground-truth fingerprint length, optionally
// excluding RPC symbols (Table 1's "w/ RPC" vs "w/o RPC" columns).
func (o *Operation) FingerprintLen(withRPC bool) int {
	n := 0
	for _, s := range o.Steps {
		if s.Noise {
			continue
		}
		if !withRPC && s.API.Kind == trace.RPC {
			continue
		}
		n++
	}
	return n
}

// Services returns the distinct services participating in the operation,
// in first-touch order. RCA maps these to deployment nodes.
func (o *Operation) Services() []trace.Service {
	seen := make(map[trace.Service]bool)
	var out []trace.Service
	add := func(s trace.Service) {
		if s != trace.SvcUnknown && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range o.Steps {
		add(s.Caller)
		add(s.API.Service)
	}
	return out
}

// StepIndexOf returns the index of the first non-noise step invoking api,
// or -1.
func (o *Operation) StepIndexOf(api trace.API) int {
	for i, s := range o.Steps {
		if !s.Noise && s.API == api {
			return i
		}
	}
	return -1
}

// String implements fmt.Stringer.
func (o *Operation) String() string {
	return fmt.Sprintf("%s[%s, %d steps]", o.Name, o.Category, len(o.Steps))
}

// withAuth prepends the standard Keystone auth preamble every CLI/dashboard
// task performs. These are wire-visible noise.
func withAuth(caller trace.Service, steps []Step) []Step {
	pre := []Step{
		{API: AuthAPIs[0], Caller: caller, Noise: true},
		{API: AuthAPIs[1], Caller: caller, Noise: true},
	}
	return append(pre, steps...)
}

func restStep(caller trace.Service, svc trace.Service, method, path string) Step {
	return Step{API: trace.RESTAPI(svc, method, path), Caller: caller}
}

func rpcStep(caller trace.Service, svc trace.Service, method string) Step {
	return Step{API: trace.RPCAPI(svc, method), Caller: caller}
}

func castStep(caller trace.Service, svc trace.Service, method string) Step {
	return Step{API: trace.RPCAPI(svc, method), Caller: caller, Cast: true}
}

// OpVMCreate reproduces the §2.1 "launch a new VM" workflow (Fig 2): the
// paper's canonical example with 7 REST and 3 RPC fingerprint entries.
func OpVMCreate() *Operation {
	h, n, nc, g, q := trace.SvcHorizon, trace.SvcNova, trace.SvcNovaCompute, trace.SvcGlance, trace.SvcNeutron
	steps := withAuth(h, []Step{
		// (1) Horizon POSTs to Nova to create the VM.
		restStep(h, n, "POST", "/v2.1/servers"),
		// (2) Control migrates to nova-compute via RPC.
		rpcStep(n, n, "select_destinations"),
		rpcStep(n, nc, "build_and_run_instance"),
		// (3) Nova fetches the image from Glance.
		restStep(n, g, "GET", "/v2/images/{id}"),
		// (4) Nova queries Neutron for network/port/security bindings.
		restStep(n, q, "GET", "/v2.0/networks.json"),
		restStep(n, q, "GET", "/v2.0/ports.json"),
		restStep(n, q, "GET", "/v2.0/security-groups.json"),
		// (5) Nova asks Neutron to create and attach a port.
		restStep(n, q, "POST", "/v2.0/ports.json"),
		restStep(n, q, "PUT", "/v2.0/ports/{id}"),
		// (6) Neutron plumbs the virtual interface via its L2 agent.
		rpcStep(q, trace.SvcNeutronAgent, "port_update"),
		// (7) Neutron calls back to Nova when the port is attached.
		restStep(q, n, "POST", "/v2.1/os-server-external-events"),
		// (8) Dashboard polls the boot result.
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
	})
	return &Operation{Name: "vm-create", Category: Compute, Steps: steps}
}

// OpVMDelete tears an instance down.
func OpVMDelete() *Operation {
	h, n, nc, q := trace.SvcHorizon, trace.SvcNova, trace.SvcNovaCompute, trace.SvcNeutron
	steps := withAuth(h, []Step{
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
		restStep(h, n, "DELETE", "/v2.1/servers/{id}"),
		rpcStep(n, nc, "terminate_instance"),
		restStep(n, q, "GET", "/v2.0/ports.json"),
		restStep(n, q, "DELETE", "/v2.0/ports/{id}"),
		rpcStep(q, trace.SvcNeutronAgent, "port_delete"),
		// Conductor bookkeeping is fire-and-forget.
		castStep(n, n, "instance_update"),
	})
	return &Operation{Name: "vm-delete", Category: Compute, Steps: steps}
}

// OpVolumeCreate is S2 from §4: create a volume.
func OpVolumeCreate() *Operation {
	h, c := trace.SvcHorizon, trace.SvcCinder
	steps := withAuth(h, []Step{
		restStep(h, c, "POST", "/v2/volumes"),
		rpcStep(c, c, "create_volume"),
		restStep(h, c, "GET", "/v2/volumes/{id}"),
	})
	return &Operation{Name: "volume-create", Category: Storage, Steps: steps}
}

// OpVMSnapshot is S1 from §4: snapshot a VM. Per the paper it subsumes
// volume creation, preceded and succeeded by additional compute steps.
func OpVMSnapshot() *Operation {
	h, n, nc, c, g := trace.SvcHorizon, trace.SvcNova, trace.SvcNovaCompute, trace.SvcCinder, trace.SvcGlance
	steps := withAuth(h, []Step{
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
		restStep(h, n, "POST", "/v2.1/servers/{id}/action/createImage"),
		rpcStep(n, nc, "snapshot_instance"),
		// Subsumed volume-create body.
		restStep(h, c, "POST", "/v2/volumes"),
		rpcStep(c, c, "create_volume"),
		restStep(h, c, "GET", "/v2/volumes/{id}"),
		// Snapshot upload to Glance.
		restStep(n, g, "POST", "/v2/images"),
		restStep(n, g, "PUT", "/v2/images/{id}/file"),
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
	})
	return &Operation{Name: "vm-snapshot", Category: Compute, Steps: steps}
}

// OpImageUpload is the §7.2.1 case-study operation: upload a VM image via
// Horizon, which PUTs the image file to Glance.
func OpImageUpload() *Operation {
	h, g := trace.SvcHorizon, trace.SvcGlance
	steps := withAuth(h, []Step{
		restStep(h, g, "POST", "/v2/images"),
		restStep(h, g, "PUT", "/v2/images/{id}/file"),
		restStep(h, g, "GET", "/v2/images/{id}"),
	})
	return &Operation{Name: "image-upload", Category: Image, Steps: steps}
}

// OpCinderList is the §7.2.4 case-study operation: `cinder list` on the
// controller, which first authenticates against Keystone. The auth calls
// here are the operation itself, not noise — but they are still Keystone
// calls that the fingerprint filter prunes, which is exactly why the
// paper's RCA had to look at software dependencies to find the stopped
// NTP agent.
func OpCinderList() *Operation {
	h, c, k := trace.SvcHorizon, trace.SvcCinder, trace.SvcKeystone
	steps := withAuth(h, []Step{
		restStep(h, c, "GET", "/v2/volumes/detail"),
		// Cinder validates the caller's token against Keystone — the
		// call that fails with 401 when the Cinder host's clock drifts
		// (stopped NTP).
		{API: trace.RESTAPI(k, "GET", "/v3/auth/tokens"), Caller: c, Noise: true},
		restStep(h, c, "GET", "/v2/volumes"),
	})
	return &Operation{Name: "cinder-list", Category: Storage, Steps: steps}
}

// OpNetworkCreate creates a network with a subnet.
func OpNetworkCreate() *Operation {
	h, q := trace.SvcHorizon, trace.SvcNeutron
	steps := withAuth(h, []Step{
		restStep(h, q, "POST", "/v2.0/networks"),
		restStep(h, q, "POST", "/v2.0/subnets.json"),
		rpcStep(q, trace.SvcNeutronAgent, "network_delete"), // dhcp reconfigure analogue
		restStep(h, q, "GET", "/v2.0/networks/{id}"),
	})
	return &Operation{Name: "network-create", Category: Network, Steps: steps}
}

// OpRouterCreate creates a router and attaches an interface.
func OpRouterCreate() *Operation {
	h, q := trace.SvcHorizon, trace.SvcNeutron
	steps := withAuth(h, []Step{
		restStep(h, q, "POST", "/v2.0/routers"),
		restStep(h, q, "PUT", "/v2.0/routers/{id}/add_router_interface"),
		rpcStep(q, q, "sync_routers"),
		restStep(h, q, "GET", "/v2.0/routers/{id}"),
	})
	return &Operation{Name: "router-create", Category: Network, Steps: steps}
}

// OpVMMigrate live-migrates an instance between compute hosts.
func OpVMMigrate() *Operation {
	h, n, nc := trace.SvcHorizon, trace.SvcNova, trace.SvcNovaCompute
	steps := withAuth(h, []Step{
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
		restStep(h, n, "POST", "/v2.1/servers/{id}/action/os-migrateLive"),
		rpcStep(n, n, "select_destinations"),
		rpcStep(n, nc, "check_can_live_migrate_destination"),
		rpcStep(n, nc, "pre_live_migration"),
		rpcStep(n, nc, "live_migration"),
		rpcStep(n, nc, "post_live_migration_at_destination"),
		restStep(n, trace.SvcNeutron, "PUT", "/v2.0/ports/{id}"),
		rpcStep(trace.SvcNeutron, trace.SvcNeutronAgent, "port_update"),
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
	})
	return &Operation{Name: "vm-migrate", Category: Compute, Steps: steps}
}

// OpVMResize resizes an instance through the prep/finish/confirm dance.
func OpVMResize() *Operation {
	h, n, nc := trace.SvcHorizon, trace.SvcNova, trace.SvcNovaCompute
	steps := withAuth(h, []Step{
		restStep(h, n, "GET", "/v2.1/flavors"),
		restStep(h, n, "POST", "/v2.1/servers/{id}/action/resize"),
		rpcStep(n, n, "select_destinations"),
		rpcStep(n, nc, "prep_resize"),
		rpcStep(n, nc, "resize_instance"),
		rpcStep(n, nc, "finish_resize"),
		restStep(h, n, "POST", "/v2.1/servers/{id}/action/confirmResize"),
		rpcStep(n, nc, "confirm_resize"),
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
	})
	return &Operation{Name: "vm-resize", Category: Compute, Steps: steps}
}

// OpVolumeAttach attaches a Cinder volume to a running instance —
// Nova and Cinder cooperating through both REST and RPC.
func OpVolumeAttach() *Operation {
	h, n, nc, c := trace.SvcHorizon, trace.SvcNova, trace.SvcNovaCompute, trace.SvcCinder
	steps := withAuth(h, []Step{
		restStep(h, c, "GET", "/v2/volumes/{id}"),
		restStep(h, n, "POST", "/v2.1/os-volume_attachments"),
		rpcStep(c, c, "initialize_connection"),
		rpcStep(n, nc, "attach_volume"),
		rpcStep(c, c, "attach_volume"),
		restStep(n, c, "POST", "/v2/volumes/{id}/action/os-attach"),
		restStep(h, c, "GET", "/v2/volumes/{id}"),
	})
	return &Operation{Name: "volume-attach", Category: Storage, Steps: steps}
}

// OpFloatingIPAssociate allocates a floating IP and binds it to a port.
func OpFloatingIPAssociate() *Operation {
	h, q, n := trace.SvcHorizon, trace.SvcNeutron, trace.SvcNova
	steps := withAuth(h, []Step{
		restStep(h, q, "GET", "/v2.0/floatingips.json"),
		restStep(h, q, "POST", "/v2.0/floatingips"),
		restStep(h, q, "GET", "/v2.0/ports.json"),
		restStep(h, q, "PUT", "/v2.0/floatingips/{id}"),
		rpcStep(q, q, "update_floatingip_statuses"),
		restStep(h, n, "GET", "/v2.1/servers/{id}"),
	})
	return &Operation{Name: "floatingip-associate", Category: Network, Steps: steps}
}

// OpSecurityGroupCreate creates a security group with one rule and
// propagates it to the L2 agents.
func OpSecurityGroupCreate() *Operation {
	h, q := trace.SvcHorizon, trace.SvcNeutron
	steps := withAuth(h, []Step{
		restStep(h, q, "POST", "/v2.0/security-groups"),
		restStep(h, q, "POST", "/v2.0/security-group-rules.json"),
		rpcStep(q, trace.SvcNeutronAgent, "security_groups_rule_updated"),
		restStep(h, q, "GET", "/v2.0/security-groups.json"),
	})
	return &Operation{Name: "security-group-create", Category: Network, Steps: steps}
}

// RelayAPI returns the status-poll REST API through which errors in a
// category's RPC invocations surface at the dashboard/CLI (§5.3.1
// "Improving precision": "Errors manifesting in RPC invocations are
// typically communicated back to the dashboard or CLI via REST calls").
// When an operation fails inside an RPC, the deployment issues this GET,
// which returns the error to Horizon.
func RelayAPI(cat Category) trace.API {
	switch cat {
	case Compute:
		return trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}")
	case Image:
		return trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}")
	case Network:
		return trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/networks/{id}")
	case Storage:
		return trace.RESTAPI(trace.SvcCinder, "GET", "/v2/volumes/{id}")
	default:
		return trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/os-services/detail")
	}
}

// CoreOperations lists the hand-written workflows used by the case
// studies; the Tempest catalog generates the remaining 1200-odd tests
// around templates derived from these.
func CoreOperations() []*Operation {
	return []*Operation{
		OpVMCreate(), OpVMDelete(), OpVMSnapshot(), OpVMMigrate(), OpVMResize(),
		OpVolumeCreate(), OpVolumeAttach(), OpImageUpload(), OpCinderList(),
		OpNetworkCreate(), OpRouterCreate(), OpFloatingIPAssociate(),
		OpSecurityGroupCreate(),
	}
}
