package openstack

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"gretel/internal/amqp"
	"gretel/internal/bus"
	"gretel/internal/cluster"
	"gretel/internal/metrics"
	"gretel/internal/rest"
	"gretel/internal/simclock"
	"gretel/internal/trace"
)

// InstanceState tracks an operation instance through its lifecycle.
type InstanceState uint8

// Instance lifecycle states.
const (
	StateRunning InstanceState = iota
	StateSucceeded
	StateFailed  // a step returned an error and the operation stopped
	StateAborted // the operation stopped without a wire-visible error
)

// String implements fmt.Stringer.
func (s InstanceState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateSucceeded:
		return "succeeded"
	case StateFailed:
		return "failed"
	case StateAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Instance is one execution of an Operation.
type Instance struct {
	ID         uint64
	CorrID     string
	Op         *Operation
	State      InstanceState
	FailedStep int
	FailedAPI  trace.API
	Started    time.Time
	Ended      time.Time

	rng  *rand.Rand
	done func(*Instance)
}

// Outcome is a fault injector's decision for one step.
type Outcome struct {
	// Status overrides the HTTP status (REST) or marks an RPC failure
	// (any nonzero value). Zero means success.
	Status int
	// ErrText is the error message placed in the response body (REST) or
	// the oslo failure field (RPC).
	ErrText string
	// Abort stops the operation after this step even on success-shaped
	// statuses (used for silent hangs). Error statuses abort by default.
	Abort bool
	// Drop suppresses the response entirely: the request appears on the
	// wire but no answer ever comes (a stuck operation, paper limitation 2).
	Drop bool
}

// Injector decides per-step outcomes. The zero decision (Outcome{}) means
// the step succeeds.
type Injector interface {
	// Outcome decides the result of one step. callerNode is the node the
	// invoking service runs on; targetNode hosts the API's owning service
	// (the RPC consumer for RPC steps).
	Outcome(inst *Instance, stepIdx int, step Step, callerNode, targetNode *cluster.Node) Outcome
}

// Config tunes deployment pacing. Zero values select defaults that put
// the 400-concurrent-op message rate near the paper's ~150 pps.
type Config struct {
	Seed int64
	// ThinkMin/ThinkMax bound the client-side delay between steps.
	ThinkMin, ThinkMax time.Duration
	// ProcMin/ProcMax bound the service-side processing time per API
	// (before load penalties); each API gets a stable base in this range.
	ProcMin, ProcMax time.Duration
	// RetryProb is the probability a GET step transiently repeats once —
	// the inadvertent invocations fingerprint learning must prune.
	RetryProb float64
	// HeartbeatPeriod spaces the background status-report RPCs. Zero
	// disables heartbeats.
	HeartbeatPeriod time.Duration
	// ComputeNodes is the number of compute hosts (paper: 3).
	ComputeNodes int
	// CorrelationIDs stamps every message of an operation with a shared
	// X-Openstack-Request-Id (REST header / oslo envelope field) — the
	// correlation-identifier rollout §5.3.1 anticipates. Off by default,
	// matching OpenStack LIBERTY.
	CorrelationIDs bool
}

func (c *Config) defaults() {
	if c.ThinkMin == 0 {
		c.ThinkMin = 2 * time.Second
	}
	if c.ThinkMax == 0 {
		c.ThinkMax = 10 * time.Second
	}
	if c.ProcMin == 0 {
		c.ProcMin = 20 * time.Millisecond
	}
	if c.ProcMax == 0 {
		c.ProcMax = 80 * time.Millisecond
	}
	if c.RetryProb == 0 {
		c.RetryProb = 0.05
	}
	if c.ComputeNodes == 0 {
		c.ComputeNodes = 3
	}
}

type opRef struct {
	id   uint64
	name string
}

// Deployment wires the simulated OpenStack installation: one node per
// component service, three compute nodes, a RabbitMQ broker node and a
// MySQL node, all connected by a tapped fabric.
type Deployment struct {
	Sim     *simclock.Sim
	Fabric  *cluster.Fabric
	Broker  *bus.Broker
	Metrics *metrics.Collector
	Config  Config

	// Injector, when non-nil, decides per-step outcomes.
	Injector Injector

	rng        *rand.Rand
	brokerNode *cluster.Node
	computes   []*cluster.Node

	nextOpID  uint64
	nextMsgID uint64
	nextUUID  uint64

	connOp map[uint64]opRef
	msgOp  map[string]opRef

	running   int
	completed []*Instance
	stopped   bool
}

// NewDeployment builds the reference topology on a fresh simulator.
func NewDeployment(cfg Config) *Deployment {
	cfg.defaults()
	sim := simclock.New()
	d := &Deployment{
		Sim:     sim,
		Fabric:  cluster.NewFabric(sim, cfg.Seed),
		Broker:  bus.New(),
		Metrics: metrics.NewCollector(),
		Config:  cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		connOp:  make(map[uint64]opRef),
		msgOp:   make(map[string]opRef),
	}

	ip := 10
	addNode := func(name string, svc trace.Service) *cluster.Node {
		ip++
		return d.Fabric.AddNode(name, fmt.Sprintf("10.0.0.%d", ip), svc)
	}
	for _, svc := range []trace.Service{
		trace.SvcHorizon, trace.SvcKeystone, trace.SvcNova, trace.SvcNeutron,
		trace.SvcGlance, trace.SvcCinder, trace.SvcSwift,
	} {
		addNode(svc.String()+"-node", svc)
	}
	d.brokerNode = addNode("rabbitmq-node", trace.SvcRabbitMQ)
	addNode("mysql-node", trace.SvcMySQL)
	for i := 1; i <= cfg.ComputeNodes; i++ {
		n := addNode(fmt.Sprintf("compute-%d", i), trace.SvcNovaCompute)
		n.AddDependency("neutron-plugin-linuxbridge-agent")
		n.AddDependency("libvirt")
		d.computes = append(d.computes, n)
	}

	// Topic queues per consumer service, plus reply queues per caller.
	for _, svc := range trace.Services() {
		topic := topicFor(svc)
		d.Broker.Bind(exchangeFor(svc), topic, topic)
		d.Broker.DeclareQueue(replyQueue(svc))
	}
	// Compute and agent topics are consumed on every compute node; other
	// topics on the service's own node.
	for _, n := range d.Fabric.Nodes() {
		switch n.Service {
		case trace.SvcNovaCompute, trace.SvcNeutronAgent:
			// compute nodes consume both compute and neutron-agent topics
		case trace.SvcRabbitMQ, trace.SvcMySQL:
			continue
		default:
			d.Broker.Subscribe(topicFor(n.Service), bus.Consumer{Node: n.Name, Tag: n.Name})
			d.Broker.Subscribe(replyQueue(n.Service), bus.Consumer{Node: n.Name, Tag: n.Name})
		}
	}
	for _, n := range d.computes {
		d.Broker.Subscribe(topicFor(trace.SvcNovaCompute), bus.Consumer{Node: n.Name, Tag: n.Name})
		d.Broker.Subscribe(topicFor(trace.SvcNeutronAgent), bus.Consumer{Node: n.Name, Tag: n.Name})
	}
	// nova-compute and neutron-agent replies land on the controller nodes
	// of their parent services.
	d.Broker.Subscribe(replyQueue(trace.SvcNovaCompute), bus.Consumer{Node: d.NodeFor(trace.SvcNova).Name})
	d.Broker.Subscribe(replyQueue(trace.SvcNeutronAgent), bus.Consumer{Node: d.NodeFor(trace.SvcNeutron).Name})

	if cfg.HeartbeatPeriod > 0 {
		d.startHeartbeats(cfg.HeartbeatPeriod)
	}
	return d
}

func exchangeFor(svc trace.Service) string {
	switch svc {
	case trace.SvcNovaCompute:
		return "nova"
	case trace.SvcNeutronAgent:
		return "neutron"
	default:
		return svc.String()
	}
}

func topicFor(svc trace.Service) string {
	switch svc {
	case trace.SvcNovaCompute:
		return "compute"
	case trace.SvcNeutronAgent:
		return "q-agent-notifier"
	default:
		return "topic." + svc.String()
	}
}

func replyQueue(svc trace.Service) string { return "reply_" + svc.String() }

// NodeFor returns the node hosting svc (the first compute for
// SvcNovaCompute).
func (d *Deployment) NodeFor(svc trace.Service) *cluster.Node {
	if svc == trace.SvcNovaCompute || svc == trace.SvcNeutronAgent {
		if len(d.computes) > 0 {
			return d.computes[0]
		}
		return nil
	}
	return d.Fabric.NodeFor(svc)
}

// ComputeNodes returns the compute hosts.
func (d *Deployment) ComputeNodes() []*cluster.Node { return d.computes }

// BrokerNode returns the RabbitMQ host.
func (d *Deployment) BrokerNode() *cluster.Node { return d.brokerNode }

// Lookup returns the ground-truth operation for a REST connection id.
func (d *Deployment) Lookup(connID uint64) (uint64, string) {
	r := d.connOp[connID]
	return r.id, r.name
}

// LookupMsg returns the ground-truth operation for an RPC message id.
func (d *Deployment) LookupMsg(msgID string) (uint64, string) {
	r := d.msgOp[msgID]
	return r.id, r.name
}

// GroundTruth resolves the evaluation-only operation identity for an
// event, preferring the RPC message id over the connection id. It has the
// signature the agent package expects.
func (d *Deployment) GroundTruth(connID uint64, msgID string) (uint64, string) {
	if msgID != "" {
		if r, ok := d.msgOp[msgID]; ok {
			return r.id, r.name
		}
	}
	r := d.connOp[connID]
	return r.id, r.name
}

// Running reports the number of in-flight operation instances.
func (d *Deployment) Running() int { return d.running }

// Completed returns finished instances in completion order.
func (d *Deployment) Completed() []*Instance { return d.completed }

// StopNoise halts heartbeat generation (used at the end of experiments so
// the simulator drains).
func (d *Deployment) StopNoise() { d.stopped = true }

func (d *Deployment) uuid(r *rand.Rand) string {
	d.nextUUID++
	return fmt.Sprintf("%08x-%04x-4%03x-%04x-%012x",
		r.Uint32(), r.Uint32()&0xffff, r.Uint32()&0xfff, r.Uint32()&0xffff, d.nextUUID)
}

// concretePath fills {id} placeholders with generated UUIDs so the wire
// carries realistic URIs that the agent must re-normalize.
func (d *Deployment) concretePath(template string, r *rand.Rand) string {
	out := template
	for i := 0; i < 8; i++ {
		idx := indexOf(out, "{id}")
		if idx < 0 {
			break
		}
		out = out[:idx] + d.uuid(r) + out[idx+4:]
	}
	return out
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// procTime returns the service-side processing time for an API on a node:
// a stable per-API base, small jitter, and a load penalty when the node's
// effective CPU crosses saturation — the mechanism behind the paper's
// §3.1.2/§7.2.2 performance-fault scenarios.
func (d *Deployment) procTime(api trace.API, node *cluster.Node, r *rand.Rand) time.Duration {
	span := d.Config.ProcMax - d.Config.ProcMin
	h := apiHash(api)
	base := d.Config.ProcMin + time.Duration(h%uint64(span+1))
	jitter := time.Duration(float64(base) * 0.1 * (r.Float64() - 0.5))
	proc := base + jitter
	if node != nil {
		load := node.Base.CPUPercent + float64(node.ActiveOps)*node.CPUPerOp + node.CPUSurge
		if load > 70 {
			factor := 1 + (load-70)/15
			if factor > 6 {
				factor = 6
			}
			proc = time.Duration(float64(proc) * factor)
		}
	}
	return proc
}

func apiHash(a trace.API) uint64 {
	var h uint64 = 14695981039346656037
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(a.Service.String())
	mix(a.Method)
	mix(a.Path)
	return h
}

func (d *Deployment) think(r *rand.Rand) time.Duration {
	span := d.Config.ThinkMax - d.Config.ThinkMin
	return d.Config.ThinkMin + time.Duration(r.Int63n(int64(span)+1))
}

// Start launches an operation instance. done (optional) runs at
// completion. Execution is driven entirely by the simulation clock; the
// caller advances it with d.Sim.Run or RunUntil.
func (d *Deployment) Start(op *Operation, done func(*Instance)) *Instance {
	d.nextOpID++
	inst := &Instance{
		ID:         d.nextOpID,
		Op:         op,
		FailedStep: -1,
		Started:    d.Sim.Now(),
		rng:        rand.New(rand.NewSource(d.Config.Seed ^ int64(d.nextOpID)*7919)),
		done:       done,
	}
	if d.Config.CorrelationIDs {
		inst.CorrID = fmt.Sprintf("req-%s", d.uuid(inst.rng))
	}
	d.running++
	d.adjustLoad(op, +1)
	d.Sim.After(time.Duration(inst.rng.Int63n(int64(time.Second))), func() {
		d.runStep(inst, 0)
	})
	return inst
}

func (d *Deployment) adjustLoad(op *Operation, delta int) {
	for _, svc := range op.Services() {
		if n := d.NodeFor(svc); n != nil {
			n.ActiveOps += delta
			if n.ActiveOps < 0 {
				n.ActiveOps = 0
			}
		}
	}
}

func (d *Deployment) complete(inst *Instance, state InstanceState) {
	if inst.State != StateRunning {
		return
	}
	inst.State = state
	inst.Ended = d.Sim.Now()
	d.running--
	d.adjustLoad(inst.Op, -1)
	d.completed = append(d.completed, inst)
	if inst.done != nil {
		inst.done(inst)
	}
}

func (d *Deployment) runStep(inst *Instance, idx int) {
	if inst.State != StateRunning {
		return
	}
	if idx >= len(inst.Op.Steps) {
		d.complete(inst, StateSucceeded)
		return
	}
	step := inst.Op.Steps[idx]
	if step.Optional > 0 && inst.rng.Float64() < step.Optional {
		// Asynchronous/conditional call skipped in this execution
		// (§8 limitation 6: branched fingerprints).
		d.runStep(inst, idx+1)
		return
	}
	next := func() {
		d.Sim.After(d.think(inst.rng), func() { d.runStep(inst, idx+1) })
	}
	fail := func(api trace.API, errText string) {
		inst.FailedStep = idx
		inst.FailedAPI = api
		if api.Kind == trace.RPC {
			// RPC errors surface at the dashboard through a status-poll
			// REST call that returns the error (§5.3.1).
			d.Sim.After(d.think(inst.rng)/2, func() { d.execErrorRelay(inst, errText) })
			return
		}
		d.complete(inst, StateFailed)
	}

	if step.API.Kind == trace.REST {
		d.execREST(inst, idx, step, false, next, fail)
	} else {
		d.execRPC(inst, idx, step, next, fail)
	}
}

func (d *Deployment) outcomeFor(inst *Instance, idx int, step Step, caller, target *cluster.Node) Outcome {
	if d.Injector == nil {
		return Outcome{}
	}
	return d.Injector.Outcome(inst, idx, step, caller, target)
}

// execREST performs one HTTP exchange. When repeat is false and the step
// is a GET, a transient duplicate may follow (pruned later by learning).
func (d *Deployment) execREST(inst *Instance, idx int, step Step, repeat bool, next func(), fail func(trace.API, string)) {
	callerNode := d.NodeFor(step.Caller)
	targetNode := d.NodeFor(step.API.Service)
	if callerNode == nil || targetNode == nil || !callerNode.Up || !targetNode.Up {
		// Connection refused: nothing on the wire, operation stalls.
		d.complete(inst, StateAborted)
		return
	}
	outcome := d.outcomeFor(inst, idx, step, callerNode, targetNode)

	connID := d.Fabric.NewConnID()
	d.connOp[connID] = opRef{inst.ID, inst.Op.Name}
	cliPort := d.Fabric.EphemeralPort()
	cliAddr := cluster.Addr(callerNode, cliPort)
	srvAddr := cluster.Addr(targetNode, cluster.ServicePorts[step.API.Service])

	req := &rest.Request{Method: step.API.Method, Path: d.concretePath(step.API.Path, inst.rng)}
	req.Header.Set("Host", step.API.Service.String())
	req.Header.Set("X-Auth-Token", d.uuid(inst.rng)[:13])
	req.Header.Set("X-Service", step.Caller.String())
	if inst.CorrID != "" {
		req.Header.Set("X-Openstack-Request-Id", inst.CorrID)
	}
	req.Body = []byte(`{}`)
	reqBytes := rest.MarshalRequest(req)

	err := d.Fabric.Send(callerNode.Name, targetNode.Name, cliAddr, srvAddr, connID, reqBytes, func(cluster.Packet) {
		// Server side: process, then respond (unless dropped).
		if outcome.Drop {
			// The client eventually times the connection out.
			d.Fabric.ReleasePort(cliPort)
			return
		}
		// State-change handlers persist through MySQL (§2 "Dependencies").
		// This traffic is on the wire but filtered out by the monitoring
		// agents' relevance filter.
		if step.API.StateChanging() {
			d.sendDBQuery(targetNode, inst)
		}
		proc := d.procTime(step.API, targetNode, inst.rng)
		d.Sim.After(proc, func() {
			if !targetNode.Up || !callerNode.Up {
				d.Fabric.ReleasePort(cliPort)
				return
			}
			status := outcome.Status
			if status == 0 {
				status = defaultStatus(step.API.Method)
			}
			resp := &rest.Response{Status: status}
			resp.Header.Set("Content-Type", "application/json")
			resp.Header.Set("X-Service", step.API.Service.String())
			if inst.CorrID != "" {
				resp.Header.Set("X-Openstack-Request-Id", inst.CorrID)
			}
			resp.Body = responseBody(step.API, status, outcome.ErrText)
			respBytes := rest.MarshalResponse(resp)
			rerr := d.Fabric.Send(targetNode.Name, callerNode.Name, srvAddr, cliAddr, connID, respBytes, func(cluster.Packet) {
				d.Fabric.ReleasePort(cliPort)
				if status >= 400 {
					fail(step.API, outcome.ErrText)
					return
				}
				if outcome.Abort {
					d.complete(inst, StateAborted)
					return
				}
				if !repeat && step.API.Method == "GET" && inst.rng.Float64() < d.Config.RetryProb {
					// Transient duplicate of an idempotent call.
					d.Sim.After(d.think(inst.rng)/4, func() {
						d.execREST(inst, idx, step, true, next, fail)
					})
					return
				}
				next()
			})
			if rerr != nil {
				d.Fabric.ReleasePort(cliPort)
			}
		})
	})
	if err != nil {
		d.Fabric.ReleasePort(cliPort)
		d.complete(inst, StateAborted)
	}
}

func defaultStatus(method string) int {
	switch method {
	case "POST":
		return 201
	case "DELETE":
		return 204
	default:
		return 200
	}
}

func responseBody(api trace.API, status int, errText string) []byte {
	if status < 400 {
		return []byte(fmt.Sprintf(`{"%s": {"status": "ok"}}`, api.Service))
	}
	if errText == "" {
		errText = rest.ReasonPhrase(status)
	}
	b, _ := json.Marshal(map[string]any{
		"error": map[string]any{"code": status, "message": errText, "title": rest.ReasonPhrase(status)},
	})
	return b
}

// execRPC performs one broker-routed RPC: publish leg, deliver leg, and
// (for calls) the reply's publish and deliver legs.
func (d *Deployment) execRPC(inst *Instance, idx int, step Step, next func(), fail func(trace.API, string)) {
	pubNode := d.NodeFor(step.Caller)
	if pubNode == nil || !pubNode.Up || !d.brokerNode.Up {
		d.complete(inst, StateAborted)
		return
	}
	d.nextMsgID++
	msgID := fmt.Sprintf("msg-%010d", d.nextMsgID)
	d.msgOp[msgID] = opRef{inst.ID, inst.Op.Name}

	env := amqp.Envelope{MsgID: msgID, ReqID: inst.CorrID, Method: step.API.Method, Args: json.RawMessage(`{}`)}
	if !step.Cast {
		env.ReplyTo = replyQueue(step.Caller)
	}
	pub := &amqp.Message{
		MethodID:   amqp.BasicPublish,
		Exchange:   exchangeFor(step.API.Service),
		RoutingKey: topicFor(step.API.Service),
		Envelope:   env,
	}
	pubBytes, _ := amqp.Marshal(pub)
	pubPort := d.Fabric.EphemeralPort()
	pubAddr := cluster.Addr(pubNode, pubPort)
	brokerAddr := cluster.Addr(d.brokerNode, cluster.ServicePorts[trace.SvcRabbitMQ])
	connID := d.Fabric.NewConnID()
	d.connOp[connID] = opRef{inst.ID, inst.Op.Name}

	err := d.Fabric.Send(pubNode.Name, d.brokerNode.Name, pubAddr, brokerAddr, connID, pubBytes, func(cluster.Packet) {
		// Publish acknowledged: the one-shot publisher connection closes.
		d.Fabric.ReleasePort(pubPort)
		deliveries := d.Broker.Route(pub)
		if len(deliveries) == 0 {
			// No consumer (e.g. all compute services down): the call
			// silently times out; nothing more on the wire.
			return
		}
		for _, del := range deliveries {
			del := del
			consumerNode := d.Fabric.Node(del.Consumer.Node)
			if consumerNode == nil || !consumerNode.Up {
				continue
			}
			delBytes, _ := amqp.Marshal(del.Message)
			consAddr := cluster.Addr(consumerNode, cluster.ServicePorts[step.API.Service])
			dConnID := d.Fabric.NewConnID()
			d.connOp[dConnID] = opRef{inst.ID, inst.Op.Name}
			d.Fabric.Send(d.brokerNode.Name, consumerNode.Name, brokerAddr, consAddr, dConnID, delBytes, func(cluster.Packet) {
				outcome := d.outcomeFor(inst, idx, step, pubNode, consumerNode)
				proc := d.procTime(step.API, consumerNode, inst.rng)
				d.Sim.After(proc, func() {
					if step.Cast {
						return
					}
					if outcome.Drop {
						return
					}
					d.sendRPCReply(inst, step, msgID, consumerNode, outcome, next, fail)
				})
			})
		}
	})
	if err != nil {
		d.Fabric.ReleasePort(pubPort)
		d.complete(inst, StateAborted)
		return
	}
	if step.Cast {
		// Fire and forget: the caller proceeds without waiting.
		next()
	}
}

func (d *Deployment) sendRPCReply(inst *Instance, step Step, msgID string, consumerNode *cluster.Node, outcome Outcome, next func(), fail func(trace.API, string)) {
	reply := &amqp.Message{
		MethodID:   amqp.BasicPublish,
		Exchange:   "",
		RoutingKey: replyQueue(step.Caller),
		Envelope:   amqp.Envelope{MsgID: msgID, ReqID: inst.CorrID, Result: json.RawMessage(`{}`)},
	}
	if outcome.Status != 0 {
		reply.Envelope.Result = nil
		reply.Envelope.Failure = outcome.ErrText
		if reply.Envelope.Failure == "" {
			reply.Envelope.Failure = "RemoteError: unexpected failure"
		}
	}
	replyBytes, _ := amqp.Marshal(reply)
	consPort := d.Fabric.EphemeralPort()
	consAddr := cluster.Addr(consumerNode, consPort)
	brokerAddr := cluster.Addr(d.brokerNode, cluster.ServicePorts[trace.SvcRabbitMQ])
	rConnID := d.Fabric.NewConnID()
	d.connOp[rConnID] = opRef{inst.ID, inst.Op.Name}
	rerr := d.Fabric.Send(consumerNode.Name, d.brokerNode.Name, consAddr, brokerAddr, rConnID, replyBytes, func(cluster.Packet) {
		d.Fabric.ReleasePort(consPort)
		dels := d.Broker.Route(reply)
		for _, del := range dels {
			del := del
			callerNode := d.Fabric.Node(del.Consumer.Node)
			if callerNode == nil || !callerNode.Up {
				continue
			}
			delBytes, _ := amqp.Marshal(del.Message)
			dConnID := d.Fabric.NewConnID()
			d.connOp[dConnID] = opRef{inst.ID, inst.Op.Name}
			delPort := d.Fabric.EphemeralPort()
			derr := d.Fabric.Send(d.brokerNode.Name, callerNode.Name, brokerAddr, cluster.Addr(callerNode, delPort), dConnID, delBytes, func(cluster.Packet) {
				d.Fabric.ReleasePort(delPort)
				if outcome.Status != 0 {
					fail(step.API, reply.Envelope.Failure)
					return
				}
				if outcome.Abort {
					d.complete(inst, StateAborted)
					return
				}
				next()
			})
			if derr != nil {
				d.Fabric.ReleasePort(delPort)
			}
		}
	})
	if rerr != nil {
		d.Fabric.ReleasePort(consPort)
	}
}

// sendDBQuery emits a best-effort opaque database exchange from a service
// node to the MySQL node — wire realism for the §2 data dependency. The
// payload is deliberately not an OpenStack protocol; monitoring agents
// must filter it out rather than choke on it.
func (d *Deployment) sendDBQuery(from *cluster.Node, inst *Instance) {
	mysql := d.Fabric.NodeFor(trace.SvcMySQL)
	if mysql == nil || !mysql.Up || !from.Up {
		return
	}
	// A MySQL-protocol-shaped packet: 3-byte length, sequence id, COM_QUERY.
	query := []byte("UPDATE instances SET state=? WHERE id=?")
	payload := make([]byte, 0, 5+len(query))
	payload = append(payload, byte(len(query)+1), 0, 0, 0, 0x03)
	payload = append(payload, query...)
	connID := d.Fabric.NewConnID()
	srcPort := d.Fabric.EphemeralPort()
	src := cluster.Addr(from, srcPort)
	dst := cluster.Addr(mysql, cluster.ServicePorts[trace.SvcMySQL])
	if err := d.Fabric.Send(from.Name, mysql.Name, src, dst, connID, payload, func(cluster.Packet) {
		d.Fabric.ReleasePort(srcPort)
	}); err != nil {
		d.Fabric.ReleasePort(srcPort)
	}
}

// execErrorRelay performs the status-poll REST exchange that surfaces an
// RPC failure at the dashboard: Horizon GETs the category's primary
// resource and receives the error in the response. The operation
// completes as failed once the error response is delivered.
func (d *Deployment) execErrorRelay(inst *Instance, errText string) {
	api := RelayAPI(inst.Op.Category)
	callerNode := d.NodeFor(trace.SvcHorizon)
	targetNode := d.NodeFor(api.Service)
	if callerNode == nil || targetNode == nil || !callerNode.Up || !targetNode.Up {
		d.complete(inst, StateFailed)
		return
	}
	connID := d.Fabric.NewConnID()
	d.connOp[connID] = opRef{inst.ID, inst.Op.Name}
	cliPort := d.Fabric.EphemeralPort()
	cliAddr := cluster.Addr(callerNode, cliPort)
	srvAddr := cluster.Addr(targetNode, cluster.ServicePorts[api.Service])

	req := &rest.Request{Method: api.Method, Path: d.concretePath(api.Path, inst.rng), Body: []byte(`{}`)}
	req.Header.Set("Host", api.Service.String())
	req.Header.Set("X-Service", trace.SvcHorizon.String())
	if inst.CorrID != "" {
		req.Header.Set("X-Openstack-Request-Id", inst.CorrID)
	}
	err := d.Fabric.Send(callerNode.Name, targetNode.Name, cliAddr, srvAddr, connID, rest.MarshalRequest(req), func(cluster.Packet) {
		proc := d.procTime(api, targetNode, inst.rng)
		d.Sim.After(proc, func() {
			if !targetNode.Up || !callerNode.Up {
				d.Fabric.ReleasePort(cliPort)
				d.complete(inst, StateFailed)
				return
			}
			resp := &rest.Response{Status: 500}
			resp.Header.Set("Content-Type", "application/json")
			if inst.CorrID != "" {
				resp.Header.Set("X-Openstack-Request-Id", inst.CorrID)
			}
			resp.Body = responseBody(api, 500, errText)
			rerr := d.Fabric.Send(targetNode.Name, callerNode.Name, srvAddr, cliAddr, connID, rest.MarshalResponse(resp), func(cluster.Packet) {
				d.Fabric.ReleasePort(cliPort)
				d.complete(inst, StateFailed)
			})
			if rerr != nil {
				d.Fabric.ReleasePort(cliPort)
			}
		})
	})
	if err != nil {
		d.Fabric.ReleasePort(cliPort)
		d.complete(inst, StateFailed)
	}
}

// startHeartbeats schedules the periodic status RPCs: nova-compute
// report_state from each compute node, neutron agent state_report, and
// cinder capability reports. All are casts routed through the broker.
func (d *Deployment) startHeartbeats(period time.Duration) {
	offsets := 0
	hb := func(from *cluster.Node, api trace.API, exch, topic string) {
		offsets++
		startDelay := time.Duration(offsets) * period / 10
		d.Sim.After(startDelay, func() {
			d.Sim.Every(period, func() bool { return d.stopped }, func() {
				if !from.Up || !d.brokerNode.Up {
					return
				}
				d.nextMsgID++
				msgID := fmt.Sprintf("hb-%010d", d.nextMsgID)
				m := &amqp.Message{
					MethodID:   amqp.BasicPublish,
					Exchange:   exch,
					RoutingKey: topic,
					Envelope:   amqp.Envelope{MsgID: msgID, Method: api.Method, Args: json.RawMessage(`{"status":"alive"}`)},
				}
				raw, _ := amqp.Marshal(m)
				connID := d.Fabric.NewConnID()
				srcPort := d.Fabric.EphemeralPort()
				src := cluster.Addr(from, srcPort)
				dst := cluster.Addr(d.brokerNode, cluster.ServicePorts[trace.SvcRabbitMQ])
				herr := d.Fabric.Send(from.Name, d.brokerNode.Name, src, dst, connID, raw, func(cluster.Packet) {
					d.Fabric.ReleasePort(srcPort)
					// Heartbeats are consumed by the parent controller.
					var target *cluster.Node
					switch api.Service {
					case trace.SvcNova:
						target = d.Fabric.NodeFor(trace.SvcNova)
					case trace.SvcNeutron:
						target = d.Fabric.NodeFor(trace.SvcNeutron)
					default:
						target = d.Fabric.NodeFor(trace.SvcCinder)
					}
					if target == nil || !target.Up {
						return
					}
					dm := *m
					dm.MethodID = amqp.BasicDeliver
					delBytes, _ := amqp.Marshal(&dm)
					dConnID := d.Fabric.NewConnID()
					d.Fabric.Send(d.brokerNode.Name, target.Name, dst, cluster.Addr(target, cluster.ServicePorts[target.Service]), dConnID, delBytes, nil)
				})
				if herr != nil {
					d.Fabric.ReleasePort(srcPort)
				}
			})
		})
	}
	for _, n := range d.computes {
		hb(n, HeartbeatAPIs[0], "nova", "topic.nova")
		hb(n, HeartbeatAPIs[1], "neutron", "topic.neutron")
	}
	if c := d.Fabric.NodeFor(trace.SvcCinder); c != nil {
		hb(c, HeartbeatAPIs[2], "cinder", "topic.cinder")
	}
}
