// Package openstack simulates an OpenStack LIBERTY deployment at the
// level GRETEL observes it: services on nodes exchanging wire-encoded
// REST and RPC messages, high-level administrative operations composed of
// those messages, background noise (heartbeats, auth calls, transient
// retries), and hooks for fault injection.
//
// Nothing in this package implements cloud semantics (no actual VMs are
// booted); it reproduces the paper's observable surface — the message
// sequences, timings, error codes and resource perturbations that the
// monitoring agents capture.
package openstack

import (
	"fmt"

	"gretel/internal/trace"
)

// Category classifies operations the way §7.1 classifies Tempest tests.
type Category uint8

// The five categories of Table 1.
const (
	Compute Category = iota
	Image
	Network
	Storage
	Misc
	NumCategories
)

var categoryNames = [...]string{"Compute", "Image", "Network", "Storage", "Misc"}

// String implements fmt.Stringer.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Categories lists all categories in Table 1 order.
func Categories() []Category {
	return []Category{Compute, Image, Network, Storage, Misc}
}

// APIPool is the set of unique APIs a category's operations draw from.
// Table 1 fixes the pool sizes: e.g. Compute tests touch 195 unique REST
// and 61 unique RPC interfaces.
type APIPool struct {
	Category Category
	REST     []trace.API
	RPC      []trace.API
}

// poolSpec pins the unique-API counts from Table 1.
var poolSpec = map[Category]struct{ rpc, rest int }{
	Compute: {61, 195},
	Image:   {10, 38},
	Network: {24, 70},
	Storage: {11, 40},
	Misc:    {11, 20},
}

// crossMethods enumerates a full CRUD surface over a collection resource.
func crossMethods(svc trace.Service, version, resource string) []trace.API {
	base := fmt.Sprintf("/%s/%s", version, resource)
	return []trace.API{
		trace.RESTAPI(svc, "GET", base),
		trace.RESTAPI(svc, "GET", base+"/{id}"),
		trace.RESTAPI(svc, "POST", base),
		trace.RESTAPI(svc, "PUT", base+"/{id}"),
		trace.RESTAPI(svc, "DELETE", base+"/{id}"),
	}
}

func take(apis []trace.API, n int, what string) []trace.API {
	if len(apis) < n {
		panic(fmt.Sprintf("openstack: %s pool has %d APIs, need %d", what, len(apis), n))
	}
	return apis[:n]
}

// computeREST builds the Nova REST surface: CRUD over its resource
// collections plus the server action sub-APIs.
func computeREST() []trace.API {
	resources := []string{
		"servers", "flavors", "os-keypairs", "os-server-groups",
		"os-hypervisors", "os-instance-actions", "os-migrations",
		"os-aggregates", "os-services", "os-quota-sets",
		"os-security-groups", "os-floating-ips", "os-networks",
		"os-tenant-networks", "os-fixed-ips", "os-hosts", "os-cells",
		"os-consoles", "os-volumes", "os-snapshots", "os-interface",
		"os-volume_attachments", "os-virtual-interfaces",
		"os-baremetal-nodes", "os-fping", "os-agents", "os-certificates",
		"os-cloudpipe", "os-coverage", "os-instance-usage-audit-log",
	}
	var out []trace.API
	for _, r := range resources {
		out = append(out, crossMethods(trace.SvcNova, "v2.1", r)...)
	}
	actions := []string{
		"reboot", "resize", "confirmResize", "revertResize", "pause",
		"unpause", "suspend", "resume", "lock", "unlock", "rescue",
		"unrescue", "shelve", "unshelve", "migrate", "os-migrateLive",
		"evacuate", "createImage", "rebuild", "changePassword",
		"addSecurityGroup", "removeSecurityGroup", "addFloatingIp",
		"removeFloatingIp", "os-getConsoleOutput", "os-getVNCConsole",
		"createBackup", "os-resetState", "forceDelete", "restore",
		"os-startServer", "os-stopServer", "trigger_crash_dump",
		"injectNetworkInfo", "resetNetwork",
	}
	for _, a := range actions {
		out = append(out, trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers/{id}/action/"+a))
	}
	out = append(out,
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/limits"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/os-availability-zone"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/os-simple-tenant-usage"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}/diagnostics"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}/os-instance-actions"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}/ips"),
		trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers/{id}/metadata"),
		trace.RESTAPI(trace.SvcNova, "DELETE", "/v2.1/servers/{id}/metadata/{id}"),
		trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/os-server-external-events"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/detail"),
	)
	return out
}

// computeRPC builds the Nova RPC surface: nova-compute manager methods,
// scheduler and conductor interfaces.
func computeRPC() []trace.API {
	methods := []string{
		// nova-compute manager
		"build_and_run_instance", "terminate_instance", "reboot_instance",
		"pause_instance", "unpause_instance", "suspend_instance",
		"resume_instance", "rescue_instance", "unrescue_instance",
		"snapshot_instance", "backup_instance", "rebuild_instance",
		"resize_instance", "confirm_resize", "revert_resize",
		"finish_resize", "prep_resize", "live_migration",
		"pre_live_migration", "post_live_migration_at_destination",
		"rollback_live_migration_at_destination", "shelve_instance",
		"shelve_offload_instance", "unshelve_instance", "attach_volume",
		"detach_volume", "swap_volume", "attach_interface",
		"detach_interface", "inject_network_info", "reset_network",
		"change_instance_metadata", "get_console_output",
		"get_vnc_console", "get_diagnostics", "set_admin_password",
		"inject_file", "trigger_crash_dump", "get_host_uptime",
		"host_power_action", "host_maintenance_mode", "set_host_enabled",
		"refresh_security_group_rules", "refresh_instance_security_rules",
		"remove_fixed_ip_from_instance", "add_fixed_ip_to_instance",
		"remove_volume_connection", "check_can_live_migrate_destination",
		"check_can_live_migrate_source", "check_instance_shared_storage",
		// scheduler
		"select_destinations", "update_aggregates", "sync_instance_info",
		// conductor
		"instance_update", "object_action", "object_class_action_versions",
		"build_instances", "migration_update", "task_log_begin_task",
		"task_log_end_task", "notify_usage_exists",
	}
	out := make([]trace.API, 0, len(methods))
	for i, m := range methods {
		svc := trace.SvcNovaCompute
		if i >= 50 { // scheduler + conductor methods live on the controller
			svc = trace.SvcNova
		}
		out = append(out, trace.RPCAPI(svc, m))
	}
	return out
}

func imageREST() []trace.API {
	var out []trace.API
	for _, r := range []string{"images", "metadefs/namespaces", "tasks"} {
		out = append(out, crossMethods(trace.SvcGlance, "v2", r)...)
	}
	out = append(out,
		trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}/file"),
		trace.RESTAPI(trace.SvcGlance, "PATCH", "/v2/images/{id}"),
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/images/{id}/members"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}/members"),
		trace.RESTAPI(trace.SvcGlance, "DELETE", "/v2/images/{id}/members/{id}"),
		trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/members/{id}"),
		trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/tags/{id}"),
		trace.RESTAPI(trace.SvcGlance, "DELETE", "/v2/images/{id}/tags/{id}"),
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/images/{id}/actions/deactivate"),
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/images/{id}/actions/reactivate"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/schemas/image"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/schemas/images"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/info/stores"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/info/import"),
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/images/{id}/import"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/metadefs/resource_types"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/metadefs/namespaces/{id}/objects"),
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/metadefs/namespaces/{id}/objects"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/metadefs/namespaces/{id}/properties"),
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/metadefs/namespaces/{id}/properties"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/metadefs/namespaces/{id}/tags"),
		trace.RESTAPI(trace.SvcGlance, "POST", "/v2/metadefs/namespaces/{id}/tags"),
	)
	return out
}

func imageRPC() []trace.API {
	methods := []string{
		"image_create", "image_update", "image_destroy", "image_get",
		"image_get_all", "image_member_create", "image_member_delete",
		"image_member_update", "image_tag_create", "image_tag_delete",
	}
	out := make([]trace.API, len(methods))
	for i, m := range methods {
		out[i] = trace.RPCAPI(trace.SvcGlance, m)
	}
	return out
}

func networkREST() []trace.API {
	var out []trace.API
	for _, r := range []string{
		"networks", "subnets", "ports", "routers", "floatingips",
		"security-groups", "security-group-rules", "subnetpools",
		"metering/metering-labels", "qos/policies",
	} {
		out = append(out, crossMethods(trace.SvcNeutron, "v2.0", r)...)
	}
	out = append(out,
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/networks.json"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/ports.json"),
		trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/ports.json"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/quotas/{id}"),
		trace.RESTAPI(trace.SvcNeutron, "PUT", "/v2.0/quotas/{id}"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/extensions"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/agents"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/agents/{id}"),
		trace.RESTAPI(trace.SvcNeutron, "PUT", "/v2.0/routers/{id}/add_router_interface"),
		trace.RESTAPI(trace.SvcNeutron, "PUT", "/v2.0/routers/{id}/remove_router_interface"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/service-providers"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/availability_zones"),
		trace.RESTAPI(trace.SvcNeutron, "PUT", "/v2.0/networks/{id}/dhcp-agents"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/networks/{id}/dhcp-agents"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/security-groups.json"),
		trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/security-group-rules.json"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/floatingips.json"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/subnets.json"),
		trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/subnets.json"),
		trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/routers.json"),
	)
	return out
}

func networkRPC() []trace.API {
	agentMethods := []string{
		"get_devices_details_list", "security_group_info_for_devices",
		"port_update", "port_delete", "network_delete", "security_groups_rule_updated",
		"security_groups_member_updated", "tunnel_sync", "tunnel_update",
		"update_device_up", "update_device_down", "get_device_details",
	}
	serverMethods := []string{
		"sync_routers", "get_ports", "update_floatingip_statuses",
		"get_agent_count", "report_agent_resources", "release_dhcp_port",
		"create_dhcp_port", "get_active_networks_info", "update_dhcp_port",
		"get_network_info", "update_port_status", "get_service_plugin_list",
	}
	var out []trace.API
	for _, m := range agentMethods {
		out = append(out, trace.RPCAPI(trace.SvcNeutronAgent, m))
	}
	for _, m := range serverMethods {
		out = append(out, trace.RPCAPI(trace.SvcNeutron, m))
	}
	return out
}

func storageREST() []trace.API {
	var out []trace.API
	for _, r := range []string{
		"volumes", "snapshots", "backups", "types", "attachments",
		"qos-specs", "os-volume-transfer",
	} {
		out = append(out, crossMethods(trace.SvcCinder, "v2", r)...)
	}
	out = append(out,
		trace.RESTAPI(trace.SvcCinder, "GET", "/v2/volumes/detail"),
		trace.RESTAPI(trace.SvcCinder, "POST", "/v2/volumes/{id}/action/os-attach"),
		trace.RESTAPI(trace.SvcCinder, "POST", "/v2/volumes/{id}/action/os-detach"),
		trace.RESTAPI(trace.SvcCinder, "POST", "/v2/volumes/{id}/action/os-extend"),
		trace.RESTAPI(trace.SvcCinder, "POST", "/v2/volumes/{id}/action/os-reset_status"),
		trace.RESTAPI(trace.SvcCinder, "GET", "/v2/scheduler-stats/get_pools"),
		trace.RESTAPI(trace.SvcCinder, "GET", "/v2/limits"),
	)
	return out
}

func storageRPC() []trace.API {
	methods := []string{
		"create_volume", "delete_volume", "attach_volume", "detach_volume",
		"extend_volume", "create_snapshot", "delete_snapshot",
		"initialize_connection", "terminate_connection", "copy_volume_to_image",
		"publish_service_capabilities",
	}
	out := make([]trace.API, len(methods))
	for i, m := range methods {
		out[i] = trace.RPCAPI(trace.SvcCinder, m)
	}
	return out
}

func miscREST() []trace.API {
	return []trace.API{
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/os-keypairs"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/os-keypairs/{id}"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/os-availability-zone/detail"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/extensions"),
		trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/os-services/detail"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/projects"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/projects/{id}"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/users"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/users/{id}"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/roles"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/domains"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/services"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/endpoints"),
		trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/regions"),
		trace.RESTAPI(trace.SvcSwift, "GET", "/v1/{id}"),
		trace.RESTAPI(trace.SvcSwift, "GET", "/v1/{id}/{id}"),
		trace.RESTAPI(trace.SvcSwift, "PUT", "/v1/{id}/{id}"),
		trace.RESTAPI(trace.SvcSwift, "HEAD", "/v1/{id}"),
		trace.RESTAPI(trace.SvcSwift, "GET", "/info"),
		trace.RESTAPI(trace.SvcHorizon, "GET", "/dashboard/api/usage"),
	}
}

func miscRPC() []trace.API {
	methods := []string{
		"service_update", "service_get_all", "get_backdoor_port",
		"agent_heartbeat_check", "availability_zone_sync", "quota_refresh",
		"cache_images_status", "host_inventory_get", "audit_period_start",
		"audit_period_end", "usage_report",
	}
	out := make([]trace.API, len(methods))
	for i, m := range methods {
		out[i] = trace.RPCAPI(trace.SvcNova, m)
	}
	return out
}

// Pools builds the five category API pools with the exact unique-API
// counts of Table 1. It panics if a builder produced fewer than needed —
// a programming error caught by tests.
func Pools() map[Category]*APIPool {
	builders := map[Category]struct {
		rest, rpc func() []trace.API
	}{
		Compute: {computeREST, computeRPC},
		Image:   {imageREST, imageRPC},
		Network: {networkREST, networkRPC},
		Storage: {storageREST, storageRPC},
		Misc:    {miscREST, miscRPC},
	}
	out := make(map[Category]*APIPool, len(builders))
	for cat, b := range builders {
		spec := poolSpec[cat]
		rest := dedupeAPIs(b.rest())
		rpc := dedupeAPIs(b.rpc())
		out[cat] = &APIPool{
			Category: cat,
			REST:     take(rest, spec.rest, cat.String()+" REST"),
			RPC:      take(rpc, spec.rpc, cat.String()+" RPC"),
		}
	}
	return out
}

func dedupeAPIs(in []trace.API) []trace.API {
	seen := make(map[trace.API]bool, len(in))
	out := in[:0]
	for _, a := range in {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// AuthAPIs are the Keystone calls every operation performs before real
// work; GRETEL's noise filter removes them from fingerprints (§5
// "Fingerprinting operations").
var AuthAPIs = []trace.API{
	trace.RESTAPI(trace.SvcKeystone, "POST", "/v3/auth/tokens"),
	trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/auth/tokens"),
}

// HeartbeatAPIs are the periodic status-update RPCs that run regardless of
// user activity; also pruned as noise.
var HeartbeatAPIs = []trace.API{
	trace.RPCAPI(trace.SvcNova, "report_state"),
	trace.RPCAPI(trace.SvcNeutron, "state_report"),
	trace.RPCAPI(trace.SvcCinder, "report_capabilities"),
}

// NoiseAPIs returns the full noise set the fingerprint filter prunes:
// heartbeats plus the common Keystone auth calls every operation performs.
func NoiseAPIs() []trace.API {
	out := make([]trace.API, 0, len(HeartbeatAPIs)+len(AuthAPIs))
	out = append(out, HeartbeatAPIs...)
	out = append(out, AuthAPIs...)
	return out
}
