package openstack

import (
	"testing"
	"time"

	"gretel/internal/agent"
	"gretel/internal/cluster"
	"gretel/internal/trace"
)

func TestPoolsMatchTable1(t *testing.T) {
	pools := Pools()
	for cat, spec := range poolSpec {
		p := pools[cat]
		if p == nil {
			t.Fatalf("no pool for %v", cat)
		}
		if len(p.REST) != spec.rest {
			t.Errorf("%v REST pool = %d, want %d", cat, len(p.REST), spec.rest)
		}
		if len(p.RPC) != spec.rpc {
			t.Errorf("%v RPC pool = %d, want %d", cat, len(p.RPC), spec.rpc)
		}
		seen := map[trace.API]bool{}
		for _, a := range append(append([]trace.API{}, p.REST...), p.RPC...) {
			if seen[a] {
				t.Errorf("%v pool duplicates %v", cat, a)
			}
			seen[a] = true
		}
		for _, a := range p.REST {
			if a.Kind != trace.REST {
				t.Errorf("%v REST pool contains %v", cat, a)
			}
		}
		for _, a := range p.RPC {
			if a.Kind != trace.RPC {
				t.Errorf("%v RPC pool contains %v", cat, a)
			}
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Compute.String() != "Compute" || Misc.String() != "Misc" {
		t.Fatal("category names wrong")
	}
	if len(Categories()) != int(NumCategories) {
		t.Fatal("Categories() incomplete")
	}
}

func TestOperationAccessors(t *testing.T) {
	op := OpVMCreate()
	apis := op.APIs()
	// §5.3.1 example: the VM create fingerprint has 7 REST and 3 RPC
	// invocations.
	var nREST, nRPC int
	for _, a := range apis {
		if a.Kind == trace.REST {
			nREST++
		} else {
			nRPC++
		}
	}
	if nRPC != 3 {
		t.Errorf("vm-create RPC count = %d, want 3", nRPC)
	}
	if op.FingerprintLen(true) != len(apis) {
		t.Errorf("FingerprintLen(true) = %d, want %d", op.FingerprintLen(true), len(apis))
	}
	if op.FingerprintLen(false) != nREST {
		t.Errorf("FingerprintLen(false) = %d, want %d", op.FingerprintLen(false), nREST)
	}
	// Noise steps (Keystone auth) are excluded from APIs().
	for _, a := range apis {
		if a.Service == trace.SvcKeystone {
			t.Errorf("noise API %v leaked into fingerprint", a)
		}
	}
	svcs := op.Services()
	want := map[trace.Service]bool{
		trace.SvcHorizon: true, trace.SvcNova: true, trace.SvcNovaCompute: true,
		trace.SvcGlance: true, trace.SvcNeutron: true, trace.SvcNeutronAgent: true,
		trace.SvcKeystone: true,
	}
	if len(svcs) != len(want) {
		t.Errorf("Services() = %v", svcs)
	}
	if idx := op.StepIndexOf(trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/ports.json")); idx < 0 {
		t.Error("StepIndexOf missed the port-create step")
	}
	if op.StepIndexOf(trace.RESTAPI(trace.SvcSwift, "GET", "/nope")) != -1 {
		t.Error("StepIndexOf found a bogus API")
	}
	if op.String() == "" {
		t.Error("empty op string")
	}
}

func TestVMSnapshotSubsumesVolumeCreate(t *testing.T) {
	// §4: S1 (snapshot) subsumes S2 (volume create): S2's API sequence
	// appears contiguously inside S1's.
	snap, vol := OpVMSnapshot().APIs(), OpVolumeCreate().APIs()
	found := false
	for i := 0; i+len(vol) <= len(snap); i++ {
		match := true
		for j := range vol {
			if snap[i+j] != vol[j] {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("volume-create not subsumed by vm-snapshot")
	}
}

// collectEvents runs instances of the given ops on a fresh deployment and
// returns the events an agent observed, in capture order.
func collectEvents(t *testing.T, cfg Config, ops []*Operation, horizon time.Duration) ([]trace.Event, *Deployment, []*Instance) {
	t.Helper()
	d := NewDeployment(cfg)
	var events []trace.Event
	mon := agent.NewMonitor("analyzer", func(ev trace.Event) {
		ev.Seq = uint64(len(events) + 1)
		events = append(events, ev)
	}, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	var insts []*Instance
	for _, op := range ops {
		insts = append(insts, d.Start(op, nil))
	}
	d.Sim.RunUntil(d.Sim.Now().Add(horizon))
	d.StopNoise()
	d.Sim.Run()
	if mon.ParseErrors != 0 {
		t.Fatalf("agent hit %d parse errors", mon.ParseErrors)
	}
	return events, d, insts
}

func TestVMCreateEndToEnd(t *testing.T) {
	ops := []*Operation{OpVMCreate()}
	events, _, insts := collectEvents(t, Config{Seed: 7}, ops, time.Hour)

	if insts[0].State != StateSucceeded {
		t.Fatalf("vm-create state = %v", insts[0].State)
	}
	if len(events) == 0 {
		t.Fatal("no events captured")
	}

	// Reconstruct the REST request API sequence and compare to the
	// operation's steps (noise included, transient repeats allowed).
	var reqs []trace.API
	for _, ev := range events {
		if ev.Type == trace.RESTRequest {
			reqs = append(reqs, ev.API)
		}
	}
	// First two REST requests are the Keystone auth preamble.
	if reqs[0].Service != trace.SvcKeystone || reqs[1].Service != trace.SvcKeystone {
		t.Fatalf("auth preamble missing: %v %v", reqs[0], reqs[1])
	}
	// The POST /v2.1/servers call must be present and attributed to nova.
	found := false
	for _, a := range reqs {
		if a == trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers") {
			found = true
		}
	}
	if !found {
		t.Fatalf("POST /v2.1/servers not captured; reqs = %v", reqs)
	}

	// Every REST request has a matching response with a success status.
	var nReq, nResp int
	for _, ev := range events {
		switch ev.Type {
		case trace.RESTRequest:
			nReq++
		case trace.RESTResponse:
			nResp++
			if ev.Status >= 400 {
				t.Errorf("unexpected error status %d on %v", ev.Status, ev.API)
			}
			if ev.API.Zero() {
				t.Error("response not paired with request API")
			}
		}
	}
	if nReq != nResp {
		t.Fatalf("unpaired REST: %d req vs %d resp", nReq, nResp)
	}

	// RPC calls appear with correct APIs and get replies.
	var calls, replies int
	for _, ev := range events {
		switch ev.Type {
		case trace.RPCCall:
			calls++
			if ev.API.Service == trace.SvcUnknown {
				t.Errorf("RPC call with unknown service: %+v", ev)
			}
		case trace.RPCReply:
			replies++
			if ev.API.Zero() {
				t.Error("reply not paired to call API")
			}
		}
	}
	if calls != 3 || replies != 3 {
		t.Fatalf("RPC calls=%d replies=%d, want 3/3", calls, replies)
	}

	// Ground truth decorates every operation event.
	for _, ev := range events {
		if ev.Type == trace.RESTRequest && ev.OpID == 0 {
			t.Fatalf("missing ground truth on %+v", ev)
		}
	}
}

func TestNormalizedPathsRoundTrip(t *testing.T) {
	events, _, _ := collectEvents(t, Config{Seed: 11}, []*Operation{OpVMDelete()}, time.Hour)
	for _, ev := range events {
		if ev.Type == trace.RESTRequest && ev.API.Kind == trace.REST {
			for _, c := range ev.API.Path {
				if c >= '0' && c <= '9' && len(ev.API.Path) > 40 {
					t.Fatalf("path not normalized: %q", ev.API.Path)
				}
			}
		}
	}
}

type stepFaulter struct {
	api     trace.API
	status  int
	errText string
}

func (s stepFaulter) Outcome(inst *Instance, idx int, step Step, caller, node *cluster.Node) Outcome {
	if step.API == s.api {
		return Outcome{Status: s.status, ErrText: s.errText}
	}
	return Outcome{}
}

func TestInjectedRESTFaultFailsOperation(t *testing.T) {
	target := trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/ports.json")
	d := NewDeployment(Config{Seed: 3})
	d.Injector = stepFaulter{api: target, status: 500, errText: "No valid host was found"}
	var events []trace.Event
	mon := agent.NewMonitor("analyzer", func(ev trace.Event) { events = append(events, ev) }, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	inst := d.Start(OpVMCreate(), nil)
	d.Sim.Run()
	if inst.State != StateFailed {
		t.Fatalf("state = %v, want failed", inst.State)
	}
	if inst.FailedAPI != target {
		t.Fatalf("FailedAPI = %v", inst.FailedAPI)
	}
	var sawError bool
	for _, ev := range events {
		if ev.Type == trace.RESTResponse && ev.Status == 500 {
			sawError = true
			if ev.ErrorText != "No valid host was found" {
				t.Fatalf("error text = %q", ev.ErrorText)
			}
			if ev.API != target {
				t.Fatalf("error API = %v", ev.API)
			}
		}
	}
	if !sawError {
		t.Fatal("injected error never observed on the wire")
	}
	// Steps after the failure never ran.
	for _, ev := range events {
		if ev.Type == trace.RESTRequest && ev.API == trace.RESTAPI(trace.SvcNova, "GET", "/v2.1/servers/{id}") {
			t.Fatal("post-failure step executed")
		}
	}
}

func TestInjectedRPCFaultFailsOperation(t *testing.T) {
	target := trace.RPCAPI(trace.SvcCinder, "create_volume")
	d := NewDeployment(Config{Seed: 5})
	d.Injector = stepFaulter{api: target, status: 1, errText: "VolumeBackendAPIException: failed to create volume"}
	var events []trace.Event
	mon := agent.NewMonitor("analyzer", func(ev trace.Event) { events = append(events, ev) }, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	inst := d.Start(OpVolumeCreate(), nil)
	d.Sim.Run()
	if inst.State != StateFailed {
		t.Fatalf("state = %v, want failed", inst.State)
	}
	var sawFailure bool
	for _, ev := range events {
		if ev.Type == trace.RPCReply && ev.Status != 0 {
			sawFailure = true
			if ev.ErrorText == "" || ev.API != target {
				t.Fatalf("bad failure reply: %+v", ev)
			}
		}
	}
	if !sawFailure {
		t.Fatal("RPC failure never observed")
	}
}

func TestHeartbeatsAppearAsNoise(t *testing.T) {
	d := NewDeployment(Config{Seed: 9, HeartbeatPeriod: 10 * time.Second})
	var casts int
	mon := agent.NewMonitor("analyzer", func(ev trace.Event) {
		if ev.Type == trace.RPCCast && ev.OpID == 0 {
			casts++
		}
	}, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	d.Sim.RunUntil(d.Sim.Now().Add(65 * time.Second))
	d.StopNoise()
	d.Sim.Run()
	// 3 compute nodes x 2 heartbeats + cinder = 7 per ~10s => ~42 in 65s.
	if casts < 20 {
		t.Fatalf("heartbeat casts = %d, want >= 20", casts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []trace.API {
		var apis []trace.API
		d := NewDeployment(Config{Seed: 31})
		mon := agent.NewMonitor("a", func(ev trace.Event) {
			if ev.Type.Request() {
				apis = append(apis, ev.API)
			}
		}, nil)
		d.Fabric.Tap(mon.HandlePacket)
		d.Start(OpVMSnapshot(), nil)
		d.Sim.Run()
		return apis
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTransientRetriesVaryAcrossInstances(t *testing.T) {
	d := NewDeployment(Config{Seed: 17, RetryProb: 0.5})
	counts := map[uint64]int{}
	mon := agent.NewMonitor("a", func(ev trace.Event) {
		if ev.Type == trace.RESTRequest {
			counts[ev.OpID]++
		}
	}, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	const insts = 8
	for i := 0; i < insts; i++ {
		d.Start(OpVMCreate(), nil)
	}
	d.Sim.Run()
	// With 50% retry probability the instances should not all have the
	// same request count.
	allEqual := true
	for i := uint64(2); i <= insts; i++ {
		if counts[i] != counts[1] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatalf("instances identical despite retries: %v", counts)
	}
}

func TestDownNodeAbortsSilently(t *testing.T) {
	d := NewDeployment(Config{Seed: 21})
	d.Fabric.NodeFor(trace.SvcGlance).Up = false
	var events int
	mon := agent.NewMonitor("a", func(trace.Event) { events++ }, nil)
	d.Fabric.Tap(mon.HandlePacket)
	inst := d.Start(OpImageUpload(), nil)
	d.Sim.Run()
	if inst.State != StateAborted {
		t.Fatalf("state = %v, want aborted", inst.State)
	}
}

func TestWatchDependencies(t *testing.T) {
	d := NewDeployment(Config{Seed: 1})
	d.ComputeNodes()[0].SetDependency("neutron-plugin-linuxbridge-agent", false)
	statuses := agent.WatchDependencies(d.Fabric)
	var found, running bool
	for _, s := range statuses {
		if s.Node == "compute-1" && s.Name == "neutron-plugin-linuxbridge-agent" {
			found, running = true, s.Running
		}
	}
	if !found || running {
		t.Fatalf("watcher missed crashed agent: found=%v running=%v", found, running)
	}
}

func TestInstanceStateStrings(t *testing.T) {
	for s, want := range map[InstanceState]string{
		StateRunning: "running", StateSucceeded: "succeeded",
		StateFailed: "failed", StateAborted: "aborted", InstanceState(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestNewCoreOperationsExecute(t *testing.T) {
	// Every core operation must run to successful completion on a clean
	// deployment.
	for _, op := range CoreOperations() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			d := NewDeployment(Config{Seed: 33})
			inst := d.Start(op, nil)
			d.Sim.Run()
			if inst.State != StateSucceeded {
				t.Fatalf("%s state = %v", op.Name, inst.State)
			}
		})
	}
}

func TestCoreOperationNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, op := range CoreOperations() {
		if seen[op.Name] {
			t.Fatalf("duplicate core op name %q", op.Name)
		}
		seen[op.Name] = true
		if len(op.APIs()) == 0 {
			t.Fatalf("%s has an empty fingerprint", op.Name)
		}
	}
}

func TestVolumeAttachFaultLocalized(t *testing.T) {
	// A cinder-side RPC failure during volume attach surfaces via the
	// storage relay API and is localized.
	target := trace.RPCAPI(trace.SvcCinder, "attach_volume")
	d := NewDeployment(Config{Seed: 35})
	d.Injector = stepFaulter{api: target, status: 1,
		errText: "VolumeAttachmentFailed: connection to target lost"}
	var errEvents int
	mon := agent.NewMonitor("a", func(ev trace.Event) {
		if ev.Faulty() {
			errEvents++
		}
	}, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	inst := d.Start(OpVolumeAttach(), nil)
	d.Sim.Run()
	if inst.State != StateFailed {
		t.Fatalf("state = %v", inst.State)
	}
	// RPC failure + relayed REST error both visible.
	if errEvents < 2 {
		t.Fatalf("error events = %d, want >= 2", errEvents)
	}
}

func TestDBTrafficFilteredByAgents(t *testing.T) {
	d := NewDeployment(Config{Seed: 41})
	var events []trace.Event
	mon := agent.NewMonitor("a", func(ev trace.Event) { events = append(events, ev) }, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	d.Start(OpVMCreate(), nil)
	d.Sim.Run()

	if mon.Ignored == 0 {
		t.Fatal("no database packets were filtered (state-change steps must persist)")
	}
	if mon.ParseErrors != 0 {
		t.Fatalf("DB traffic leaked into the parser: %d errors", mon.ParseErrors)
	}
	for _, ev := range events {
		if ev.API.Service == trace.SvcMySQL {
			t.Fatalf("MySQL event emitted: %+v", ev)
		}
	}
}
