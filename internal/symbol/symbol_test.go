package symbol

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"gretel/internal/trace"
)

func api(i int) trace.API {
	return trace.RESTAPI(trace.SvcNova, "GET", fmt.Sprintf("/v2.1/x/%d", i))
}

func TestAssignStable(t *testing.T) {
	tb := NewTable()
	a := trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers")
	r1 := tb.Assign(a)
	r2 := tb.Assign(a)
	if r1 != r2 {
		t.Fatalf("re-assignment changed rune: %q then %q", r1, r2)
	}
	if r1 != Base {
		t.Fatalf("first rune = %#U, want %#U", r1, Base)
	}
}

func TestAssignDistinct(t *testing.T) {
	tb := NewTable()
	seen := map[rune]bool{}
	for i := 0; i < 643; i++ { // the paper's API count
		r := tb.Assign(api(i))
		if seen[r] {
			t.Fatalf("rune %#U assigned twice", r)
		}
		seen[r] = true
		if r < Base || r >= Max {
			t.Fatalf("rune %#U outside private-use area", r)
		}
	}
	if tb.Len() != 643 {
		t.Fatalf("Len() = %d, want 643", tb.Len())
	}
}

func TestLookupAndAPI(t *testing.T) {
	tb := NewTable()
	a := trace.RPCAPI(trace.SvcNovaCompute, "build_and_run_instance")
	if _, ok := tb.Lookup(a); ok {
		t.Fatal("Lookup found unassigned API")
	}
	r := tb.Assign(a)
	if got, ok := tb.Lookup(a); !ok || got != r {
		t.Fatalf("Lookup = %#U,%v", got, ok)
	}
	back, ok := tb.API(r)
	if !ok || back != a {
		t.Fatalf("API(%#U) = %+v,%v", r, back, ok)
	}
	if _, ok := tb.API(r + 1); ok {
		t.Fatal("API found unassigned rune")
	}
}

func TestStateChangingThroughTable(t *testing.T) {
	tb := NewTable()
	get := tb.Assign(trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/ports"))
	post := tb.Assign(trace.RESTAPI(trace.SvcNeutron, "POST", "/v2.0/ports"))
	rpc := tb.Assign(trace.RPCAPI(trace.SvcNeutronAgent, "port_update"))
	if tb.StateChanging(get) {
		t.Error("GET flagged state-changing")
	}
	if !tb.StateChanging(post) || !tb.StateChanging(rpc) {
		t.Error("POST/RPC not flagged state-changing")
	}
	if tb.StateChanging(Max - 1) {
		t.Error("unassigned rune flagged state-changing")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tb := NewTable()
	apis := []trace.API{
		trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers"),
		trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}"),
		trace.RPCAPI(trace.SvcNovaCompute, "build_and_run_instance"),
		trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers"), // repeat
	}
	s := tb.EncodeAPIs(apis)
	if utf8.RuneCountInString(s) != len(apis) {
		t.Fatalf("encoded %d runes, want %d", utf8.RuneCountInString(s), len(apis))
	}
	if !utf8.ValidString(s) {
		t.Fatal("encoded string is invalid UTF-8")
	}
	back, err := tb.Decode(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range apis {
		if back[i] != apis[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, back[i], apis[i])
		}
	}
}

func TestEncodeEvents(t *testing.T) {
	tb := NewTable()
	evs := []trace.Event{
		{API: trace.RESTAPI(trace.SvcNova, "GET", "/a")},
		{API: trace.RESTAPI(trace.SvcNova, "GET", "/b")},
		{API: trace.RESTAPI(trace.SvcNova, "GET", "/a")},
	}
	s := tb.Encode(evs)
	runes := []rune(s)
	if len(runes) != 3 || runes[0] != runes[2] || runes[0] == runes[1] {
		t.Fatalf("Encode produced %q", s)
	}
}

func TestDecodeUnassigned(t *testing.T) {
	tb := NewTable()
	if _, err := tb.Decode(string(Base)); err == nil {
		t.Fatal("Decode of unassigned rune succeeded")
	}
}

func TestAPIsOrdered(t *testing.T) {
	tb := NewTable()
	var want []trace.API
	for i := 0; i < 20; i++ {
		a := api(i)
		tb.Assign(a)
		want = append(want, a)
	}
	got := tb.APIs()
	if len(got) != len(want) {
		t.Fatalf("APIs() returned %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("APIs()[%d] = %v, want %v (assignment order)", i, got[i], want[i])
		}
	}
}

func TestConcurrentAssign(t *testing.T) {
	tb := NewTable()
	var wg sync.WaitGroup
	const workers = 8
	runes := make([][]rune, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				runes[w] = append(runes[w], tb.Assign(api(i)))
			}
		}()
	}
	wg.Wait()
	if tb.Len() != 100 {
		t.Fatalf("Len() = %d, want 100 (concurrent Assign must dedupe)", tb.Len())
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < 100; i++ {
			if runes[w][i] != runes[0][i] {
				t.Fatalf("worker %d saw different rune for api %d", w, i)
			}
		}
	}
}

// Property: for any set of distinct APIs, encode/decode round-trips and
// every rune stays within the private-use area.
func TestQuickRoundTrip(t *testing.T) {
	f := func(paths []string) bool {
		tb := NewTable()
		apis := make([]trace.API, len(paths))
		for i, p := range paths {
			apis[i] = trace.RESTAPI(trace.SvcNova, "GET", p)
		}
		s := tb.EncodeAPIs(apis)
		for _, r := range s {
			if r < Base || r >= Max {
				return false
			}
		}
		back, err := tb.Decode(s)
		if err != nil || len(back) != len(apis) {
			return false
		}
		for i := range apis {
			if back[i] != apis[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
