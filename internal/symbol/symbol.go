// Package symbol maps OpenStack API identities to single Unicode runes.
//
// GRETEL's operation detection matches fingerprints against message
// snapshots as strings, one symbol per API (§6 "Optimizations": "Since the
// number of unique OpenStack APIs is 643, we use Unicode encoding to assign
// a symbol to each API"). Assigning runes from the Basic Multilingual
// Plane private-use area (U+E000..U+F8FF, 6400 code points) comfortably
// covers the 643 public APIs and keeps the encoded strings valid UTF-8.
package symbol

import (
	"fmt"
	"sort"
	"sync"

	"gretel/internal/trace"
)

// Base is the first rune handed out. U+E000 starts the BMP private-use area.
const Base rune = 0xE000

// Max is one past the last assignable rune.
const Max rune = 0xF8FF + 1

// Table assigns stable runes to APIs. Assignment order determines the rune,
// so building the table deterministically (e.g. from a sorted API catalog)
// yields identical encodings across runs. Table is safe for concurrent use.
type Table struct {
	mu     sync.RWMutex
	byAPI  map[trace.API]rune
	byRune map[rune]trace.API
	next   rune
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{
		byAPI:  make(map[trace.API]rune),
		byRune: make(map[rune]trace.API),
		next:   Base,
	}
}

// Assign returns the rune for api, allocating one if it has not been seen.
// It panics if the private-use area is exhausted (far beyond OpenStack's
// 643 APIs; exhaustion indicates a bug in the caller).
func (t *Table) Assign(api trace.API) rune {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.byAPI[api]; ok {
		return r
	}
	if t.next >= Max {
		panic("symbol: private-use area exhausted")
	}
	r := t.next
	t.next++
	t.byAPI[api] = r
	t.byRune[r] = api
	return r
}

// Lookup returns the rune for api without allocating.
func (t *Table) Lookup(api trace.API) (rune, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.byAPI[api]
	return r, ok
}

// API returns the API a rune was assigned to.
func (t *Table) API(r rune) (trace.API, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	api, ok := t.byRune[r]
	return api, ok
}

// Len reports how many APIs have been assigned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byAPI)
}

// StateChanging reports whether the API behind r is state-changing.
// Unknown runes are treated as read-only.
func (t *Table) StateChanging(r rune) bool {
	api, ok := t.API(r)
	return ok && api.StateChanging()
}

// APIs returns all assigned APIs in rune order (i.e. assignment order).
func (t *Table) APIs() []trace.API {
	t.mu.RLock()
	defer t.mu.RUnlock()
	runes := make([]rune, 0, len(t.byRune))
	for r := range t.byRune {
		runes = append(runes, r)
	}
	sort.Slice(runes, func(i, j int) bool { return runes[i] < runes[j] })
	out := make([]trace.API, len(runes))
	for i, r := range runes {
		out[i] = t.byRune[r]
	}
	return out
}

// Encode maps a sequence of events to a symbol string, one rune per event,
// allocating symbols for unseen APIs. Events are encoded in slice order.
func (t *Table) Encode(events []trace.Event) string {
	runes := make([]rune, len(events))
	for i := range events {
		runes[i] = t.Assign(events[i].API)
	}
	return string(runes)
}

// EncodeAPIs maps a sequence of APIs to a symbol string.
func (t *Table) EncodeAPIs(apis []trace.API) string {
	runes := make([]rune, len(apis))
	for i, a := range apis {
		runes[i] = t.Assign(a)
	}
	return string(runes)
}

// Decode maps a symbol string back to APIs. It returns an error on the
// first rune that has no assignment.
func (t *Table) Decode(s string) ([]trace.API, error) {
	out := make([]trace.API, 0, len(s))
	for i, r := range s {
		api, ok := t.API(r)
		if !ok {
			return nil, fmt.Errorf("symbol: rune %q at index %d is unassigned", r, i)
		}
		out = append(out, api)
	}
	return out, nil
}
