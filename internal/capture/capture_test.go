package capture_test

import (
	"bytes"
	"os/exec"
	"testing"
	"time"

	"gretel/internal/agent"
	"gretel/internal/capture"
	"gretel/internal/cluster"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/scenario"
	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

// record drives one faulty image upload and captures all traffic to pcap.
func record(t *testing.T) (*bytes.Buffer, *openstack.Deployment) {
	t.Helper()
	d := openstack.NewDeployment(openstack.Config{Seed: 55})
	plan := faults.NewPlan()
	plan.FailAPI(trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
		413, "Request Entity Too Large")
	d.Injector = plan

	var buf bytes.Buffer
	rec := capture.NewRecorder(&buf)
	d.Fabric.Tap(rec.Tap)

	d.Start(openstack.OpImageUpload(), nil)
	d.Start(openstack.OpVMCreate(), nil)
	d.Sim.Run()
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Frames == 0 {
		t.Fatal("no frames recorded")
	}
	return &buf, d
}

func TestRecordReplayThroughMonitor(t *testing.T) {
	buf, d := record(t)

	// Replay the pcap through a fresh monitoring agent and analyzer —
	// the full capture pipeline with no simulator state.
	lib := scenario.CoreLibrary()
	analyzer := core.New(lib, core.Config{Alpha: 256})
	mon := agent.NewMonitor("replay", analyzer.Ingest, nil)
	n, err := capture.Replay(bytes.NewReader(buf.Bytes()),
		capture.ResolverFromFabric(d.Fabric), mon.HandlePacket)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing replayed")
	}
	analyzer.Flush()
	if mon.ParseErrors != 0 {
		t.Fatalf("parse errors on replayed traffic: %d", mon.ParseErrors)
	}
	reps := analyzer.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1", len(reps))
	}
	rep := reps[0]
	if rep.Fault.Status != 413 {
		t.Fatalf("fault status = %d", rep.Fault.Status)
	}
	hit := false
	for _, c := range rep.Candidates {
		if c == "image-upload" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("image-upload not identified from replayed pcap: %v", rep.Candidates)
	}
	// Node labels restored through the resolver.
	if rep.Fault.SrcNode != "glance-node" {
		t.Fatalf("src node = %q", rep.Fault.SrcNode)
	}
}

func TestReplayWithoutResolverUsesIPs(t *testing.T) {
	buf, _ := record(t)
	var first *trace.Event
	mon := agent.NewMonitor("replay", func(ev trace.Event) {
		if first == nil {
			first = &ev
		}
	}, nil)
	if _, err := capture.Replay(bytes.NewReader(buf.Bytes()), nil, mon.HandlePacket); err != nil {
		t.Fatal(err)
	}
	if first == nil || first.SrcNode == "" {
		t.Fatal("no events replayed")
	}
	for _, c := range first.SrcNode {
		if c != '.' && (c < '0' || c > '9') {
			t.Fatalf("expected bare IP node label, got %q", first.SrcNode)
		}
	}
}

func TestCapturesReadableByTcpdump(t *testing.T) {
	// If tcpdump is installed, the capture must be a valid pcap to it —
	// proof the file format is the real thing, not a lookalike.
	tcpdump, err := exec.LookPath("tcpdump")
	if err != nil {
		t.Skip("tcpdump not installed")
	}
	buf, _ := record(t)
	cmd := exec.Command(tcpdump, "-r", "-", "-c", "5", "-nn")
	cmd.Stdin = bytes.NewReader(buf.Bytes())
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tcpdump rejected the capture: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("10.0.0.")) {
		t.Fatalf("tcpdump output missing deployment addresses:\n%s", out)
	}
}

func TestRecorderTimestampsMonotonic(t *testing.T) {
	buf, _ := record(t)
	var last time.Time
	n, err := capture.Replay(bytes.NewReader(buf.Bytes()), nil, func(p cluster.Packet) {
		if p.Time.Before(last) {
			t.Fatalf("timestamps regressed: %v after %v", p.Time, last)
		}
		last = p.Time
	})
	if err != nil || n == 0 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
}

func TestRecorderStickyErrorOnBadAddress(t *testing.T) {
	var buf bytes.Buffer
	rec := capture.NewRecorder(&buf)
	rec.Tap(cluster.Packet{SrcAddr: "not-an-addr", DstAddr: "10.0.0.1:80"})
	if rec.Err == nil {
		t.Fatal("bad address accepted")
	}
	// Sticky: later good packets are dropped, frame count unchanged.
	rec.Tap(cluster.Packet{SrcAddr: "10.0.0.1:1", DstAddr: "10.0.0.2:2", Payload: []byte("x")})
	if rec.Frames != 0 {
		t.Fatalf("frames after sticky error: %d", rec.Frames)
	}
	if err := rec.Flush(); err == nil {
		t.Fatal("Flush hid the sticky error")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := capture.Replay(bytes.NewReader([]byte("not a pcap")), nil, nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestRecorderTelemetry: frames are counted in the registry (the
// satellite "expose Frames through the registry") and a sticky error
// increments capture.errors instead of vanishing into the Err field.
func TestRecorderTelemetry(t *testing.T) {
	frames := telemetry.GetCounter("capture.frames_written")
	errs := telemetry.GetCounter("capture.errors")
	framesBefore, errsBefore := frames.Value(), errs.Value()

	var buf bytes.Buffer
	rec := capture.NewRecorder(&buf)
	rec.Tap(cluster.Packet{SrcAddr: "10.0.0.1:1", DstAddr: "10.0.0.2:2", Payload: []byte("x")})
	if rec.Frames != 1 {
		t.Fatalf("Frames = %d, want 1", rec.Frames)
	}
	if got := frames.Value(); got != framesBefore+1 {
		t.Fatalf("capture.frames_written = %d, want %d", got, framesBefore+1)
	}

	rec2 := capture.NewRecorder(&bytes.Buffer{})
	rec2.Tap(cluster.Packet{SrcAddr: "not-an-addr", DstAddr: "10.0.0.1:80"})
	if rec2.Err == nil {
		t.Fatal("bad address accepted")
	}
	if got := errs.Value(); got != errsBefore+1 {
		t.Fatalf("capture.errors = %d, want %d", got, errsBefore+1)
	}
	// Sticky: further taps don't re-count the same dead recorder.
	rec2.Tap(cluster.Packet{SrcAddr: "10.0.0.1:1", DstAddr: "10.0.0.2:2", Payload: []byte("x")})
	if got := errs.Value(); got != errsBefore+1 {
		t.Fatalf("capture.errors after sticky tap = %d, want %d", got, errsBefore+1)
	}
}
