// Package capture bridges the simulated fabric and standard pcap files:
// a Recorder taps fabric traffic, wraps each message in checksummed
// Ethernet/IPv4/TCP framing, and writes libpcap records; Replay walks a
// pcap back into monitor-consumable packets. Together they reproduce the
// paper's capture pipeline (Bro reading packets, tcpreplay replaying
// them) against files any standard tool can read.
package capture

import (
	"fmt"
	"io"

	"gretel/internal/cluster"
	"gretel/internal/packet"
	"gretel/internal/pcap"
	"gretel/internal/telemetry"
)

// Pipeline telemetry: frames written across every recorder (exposing the
// per-recorder Frames field through the registry) and sticky errors,
// which previously vanished into the Err field without a trace.
var (
	mFramesWritten = telemetry.GetCounter("capture.frames_written")
	mCaptureErrors = telemetry.GetCounter("capture.errors")
	mFramesReplay  = telemetry.GetCounter("capture.frames_replayed")
)

// Recorder is a fabric tap writing every delivered message to a pcap
// stream. Errors are sticky (captures are best-effort observers; the
// simulation must not fail because a disk filled).
type Recorder struct {
	w      *pcap.Writer
	ipSeq  uint16
	Frames uint64
	Err    error
}

// NewRecorder wraps an output stream.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: pcap.NewWriter(w)}
}

// Tap implements cluster.TapFn.
func (r *Recorder) Tap(pkt cluster.Packet) {
	if r.Err != nil {
		return
	}
	f, err := packet.Build(pkt.SrcAddr, pkt.DstAddr, pkt.Payload)
	if err != nil {
		r.fail(fmt.Errorf("capture: framing %s->%s: %w", pkt.SrcAddr, pkt.DstAddr, err))
		return
	}
	r.ipSeq++
	f.IP.ID = r.ipSeq
	// Thread the simulator's connection id through the TCP sequence
	// number so replay can recover exact connection identity; standard
	// tools just see a sequence number.
	f.TCP.Seq = uint32(pkt.ConnID)
	if err := r.w.WritePacket(pkt.Time, f.Marshal()); err != nil {
		r.fail(err)
		return
	}
	r.Frames++
	mFramesWritten.Inc()
}

// fail records the sticky error so the tap stays best-effort, but no
// longer silently: the drop is counted and the first occurrence logged.
func (r *Recorder) fail(err error) {
	r.Err = err
	mCaptureErrors.Inc()
	telemetry.LogFirst("capture.errors", "capture: recorder disabled: %v", err)
}

// Flush finalizes the capture (writes the header even if no packets).
func (r *Recorder) Flush() error {
	if r.Err != nil {
		return r.Err
	}
	if err := r.w.Flush(); err != nil {
		r.fail(err)
		return err
	}
	return nil
}

// NodeResolver maps an IPv4 address (dotted quad, no port) to a
// deployment node name. Replay uses it to restore the node labels
// monitoring events carry; unknown addresses fall back to the IP string.
type NodeResolver func(ip string) string

// ResolverFromFabric builds a NodeResolver from a fabric's node table.
func ResolverFromFabric(f *cluster.Fabric) NodeResolver {
	byIP := map[string]string{}
	for _, n := range f.Nodes() {
		byIP[n.IP] = n.Name
	}
	return func(ip string) string {
		if name, ok := byIP[ip]; ok {
			return name
		}
		return ip
	}
}

// Replay decodes a pcap stream and emits each frame as a cluster.Packet.
// Connection identity prefers the recorded TCP sequence number (written
// by Recorder) and falls back to a symmetric flow hash for foreign
// captures. Returns the number of frames replayed.
func Replay(rd io.Reader, resolve NodeResolver, emit func(cluster.Packet)) (int, error) {
	pr, err := pcap.NewReader(rd)
	if err != nil {
		return 0, err
	}
	if pr.LinkType != pcap.LinkTypeEthernet {
		return 0, fmt.Errorf("capture: unsupported link type %d", pr.LinkType)
	}
	if resolve == nil {
		resolve = func(ip string) string { return ip }
	}
	n := 0
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		f, err := packet.Parse(rec.Data)
		if err != nil {
			return n, fmt.Errorf("capture: frame %d: %w", n+1, err)
		}
		connID := uint64(f.TCP.Seq)
		if connID == 0 {
			connID = f.FlowID()
		}
		srcIP := fmt.Sprintf("%d.%d.%d.%d", f.IP.Src[0], f.IP.Src[1], f.IP.Src[2], f.IP.Src[3])
		dstIP := fmt.Sprintf("%d.%d.%d.%d", f.IP.Dst[0], f.IP.Dst[1], f.IP.Dst[2], f.IP.Dst[3])
		emit(cluster.Packet{
			Time:    rec.Time,
			SrcNode: resolve(srcIP),
			DstNode: resolve(dstIP),
			SrcAddr: f.SrcAddr(),
			DstAddr: f.DstAddr(),
			ConnID:  connID,
			Payload: f.Payload,
		})
		n++
		mFramesReplay.Inc()
	}
}
