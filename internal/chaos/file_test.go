package chaos

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWriterKillPoint(t *testing.T) {
	var sink bytes.Buffer
	w := WrapWriter(&sink, WriterConfig{Seed: 1, KillAfterBytes: 10})

	if n, err := w.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("pre-kill write: n=%d err=%v", n, err)
	}
	// This write crosses byte 10: 4 bytes land, the rest vanish.
	if _, err := w.Write(make([]byte, 6)); !errors.Is(err, ErrKilled) {
		t.Fatalf("kill write: err=%v, want ErrKilled", err)
	}
	if sink.Len() != 10 {
		t.Fatalf("torn write landed %d bytes, want exactly the 10-byte prefix", sink.Len())
	}
	if !w.Killed() {
		t.Fatalf("writer not marked killed")
	}
	// Dead means dead: later writes leave no ink.
	if _, err := w.Write([]byte("zombie")); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill write: err=%v", err)
	}
	if sink.Len() != 10 {
		t.Fatalf("post-kill write leaked %d bytes", sink.Len()-10)
	}
	if st := w.Stats(); st.Kills != 1 || st.BytesOut != 10 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriterKillAtExactBoundary(t *testing.T) {
	var sink bytes.Buffer
	w := WrapWriter(&sink, WriterConfig{Seed: 1, KillAfterBytes: 8})
	w.Write(make([]byte, 8)) // lands exactly at the kill point: clean
	if _, err := w.Write(make([]byte, 4)); !errors.Is(err, ErrKilled) {
		t.Fatalf("boundary kill: err=%v", err)
	}
	if sink.Len() != 8 {
		t.Fatalf("boundary kill left %d bytes, want 8 (no partial record)", sink.Len())
	}
}

func TestWriterShortWrites(t *testing.T) {
	var sink bytes.Buffer
	w := WrapWriter(&sink, WriterConfig{Seed: 7, ShortWrite: 1})
	n, err := w.Write(make([]byte, 100))
	if err != io.ErrShortWrite {
		t.Fatalf("err=%v, want io.ErrShortWrite", err)
	}
	if n <= 0 || n >= 100 || sink.Len() != n {
		t.Fatalf("short write landed %d bytes (reported %d)", sink.Len(), n)
	}
	if w.Stats().Shorts != 1 {
		t.Fatalf("stats %+v", w.Stats())
	}
}

func TestWriterCorrupt(t *testing.T) {
	var sink bytes.Buffer
	w := WrapWriter(&sink, WriterConfig{Seed: 3, Corrupt: 1})
	src := bytes.Repeat([]byte{0xAA}, 64)
	orig := append([]byte(nil), src...)
	if n, err := w.Write(src); n != 64 || err != nil {
		t.Fatalf("corrupt write: n=%d err=%v", n, err)
	}
	if !bytes.Equal(src, orig) {
		t.Fatalf("caller's buffer was mangled")
	}
	diff := 0
	for i, b := range sink.Bytes() {
		if b != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
}

func TestWriterDeterministic(t *testing.T) {
	run := func() []byte {
		var sink bytes.Buffer
		w := WrapWriter(&sink, WriterConfig{Seed: 99, ShortWrite: 0.3, Corrupt: 0.3})
		for i := 0; i < 50; i++ {
			w.Write(bytes.Repeat([]byte{byte(i)}, 32))
		}
		return sink.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatalf("same seed produced different fault schedules")
	}
}
