// Package chaos wraps net.Conn with seeded, deterministic fault
// injection for soak-testing the monitoring plane: writes can be
// dropped, corrupted, delayed, split, stalled, or met with a connection
// reset. The wrapped connection is what a WAN with a dying switch looks
// like to the transport — the soak tests in internal/chaos and
// internal/agent drive the full replay pipeline through it and assert
// zero silent loss.
//
// Determinism: every fault decision comes from a rand.Rand seeded from
// Config.Seed (per connection: Seed + connection index), so a failing
// soak run replays bit-identically from its seed.
package chaos

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets per-write fault probabilities (each in [0,1], rolled
// independently in the order Reset, Stall, Drop, Delay, Corrupt,
// Split). The zero value injects nothing.
type Config struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// Reset closes the underlying connection and fails the write, as a
	// peer RST would.
	Reset float64
	// Stall sleeps StallFor before the write (long freeze).
	Stall float64
	// StallFor is the stall duration (default 200ms).
	StallFor time.Duration
	// Drop swallows the write whole while reporting success — the
	// cruelest fault: the sender believes the bytes left.
	Drop float64
	// Delay sleeps DelayBy before the write (jittery latency).
	Delay float64
	// DelayBy is the delay duration (default 2ms).
	DelayBy time.Duration
	// Corrupt flips one random byte of the write.
	Corrupt float64
	// Split issues the write as two underlying writes, exercising
	// partial-frame boundaries in the receiver.
	Split float64
}

func (c Config) stallFor() time.Duration {
	if c.StallFor > 0 {
		return c.StallFor
	}
	return 200 * time.Millisecond
}

func (c Config) delayBy() time.Duration {
	if c.DelayBy > 0 {
		return c.DelayBy
	}
	return 2 * time.Millisecond
}

// Stats counts the faults a connection actually injected.
type Stats struct {
	Writes, Resets, Stalls, Drops, Delays, Corrupts, Splits uint64
}

// Conn is a net.Conn that injects faults on Write. Reads pass through
// untouched: the transport's fault surface is the sender→analyzer
// direction.
type Conn struct {
	net.Conn
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// Wrap adorns conn with fault injection driven by cfg.
func Wrap(conn net.Conn, cfg Config) *Conn {
	return &Conn{Conn: conn, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counts.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Write applies the fault schedule to one write.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.stats.Writes++
	roll := func(prob float64) bool { return prob > 0 && c.rng.Float64() < prob }

	if roll(c.cfg.Reset) {
		c.stats.Resets++
		c.mu.Unlock()
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	var sleep time.Duration
	if roll(c.cfg.Stall) {
		c.stats.Stalls++
		sleep += c.cfg.stallFor()
	}
	if roll(c.cfg.Drop) {
		c.stats.Drops++
		c.mu.Unlock()
		if sleep > 0 {
			time.Sleep(sleep)
		}
		return len(p), nil // swallowed: caller sees success
	}
	if roll(c.cfg.Delay) {
		c.stats.Delays++
		sleep += c.cfg.delayBy()
	}
	corruptAt := -1
	if len(p) > 0 && roll(c.cfg.Corrupt) {
		c.stats.Corrupts++
		corruptAt = c.rng.Intn(len(p))
	}
	splitAt := -1
	if len(p) > 1 && roll(c.cfg.Split) {
		c.stats.Splits++
		splitAt = 1 + c.rng.Intn(len(p)-1)
	}
	c.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if corruptAt >= 0 {
		// Copy before mangling: the caller's buffer is not ours to edit.
		q := make([]byte, len(p))
		copy(q, p)
		q[corruptAt] ^= 0xff
		p = q
	}
	if splitAt > 0 {
		n1, err := c.Conn.Write(p[:splitAt])
		if err != nil {
			return n1, err
		}
		n2, err := c.Conn.Write(p[splitAt:])
		return n1 + n2, err
	}
	return c.Conn.Write(p)
}

// Dialer returns a dial function (matching agent.SenderConfig.Dialer)
// whose connections inject faults per cfg. Each connection gets its own
// deterministic schedule: cfg.Seed plus the connection's ordinal, so
// reconnects do not replay the same fault sequence.
func Dialer(cfg Config) func(addr string, timeout time.Duration) (net.Conn, error) {
	var n atomic.Int64
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Seed = cfg.Seed + n.Add(1)
		return Wrap(conn, c), nil
	}
}
