// Soak tests: the full replay pipeline (synthetic OpenStack workload →
// sender → TCP → receiver → analyzer) driven through a faulty
// transport. The invariant under chaos is zero silent loss — every
// event is delivered exactly once or accounted for in shed/gap records
// — and with a healthy transport, reports are byte-identical to
// in-process ingestion.
package chaos_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"gretel/internal/agent"
	"gretel/internal/chaos"
	"gretel/internal/core"
	"gretel/internal/replay"
	"gretel/internal/scenario"
)

// soakStream is the shared workload: virtual-clocked and seeded, so
// both soak tests replay the same events.
func soakStream() replay.StreamConfig {
	return replay.StreamConfig{Events: 4000, Concurrency: 40, FaultEvery: 400, Seed: 11}
}

// sendAll streams events with light throttling so the bufio writer
// flushes many small chunks — giving per-write fault injection plenty
// of frame boundaries to hit — then waits until the receiver's
// high-water mark covers the whole stream (heartbeats advance it past
// trailing losses).
func sendAll(t *testing.T, snd *agent.Sender, recv *agent.Receiver, agentName string, events int) agent.AgentStat {
	t.Helper()
	evs := replay.Synthesize(soakStream())
	for i := range evs {
		snd.Send(evs[i])
		if i%16 == 15 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := recv.AgentStats()[agentName]
		if st.LastSeq >= uint64(events) {
			return st
		}
		if time.Now().After(deadline) {
			t.Errorf("receiver high-water stuck at %d/%d: %+v", st.LastSeq, events, st)
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosSoakZeroSilentLoss runs the pipeline through a transport
// that drops, corrupts, delays, splits, stalls, and resets — and checks
// the accounting invariant: events ingested + frames recorded missing
// equals events sent, with no duplicates ingested and nothing shed.
func TestChaosSoakZeroSilentLoss(t *testing.T) {
	cfg := soakStream()
	recv, err := agent.ListenConfig(agent.ReceiverConfig{
		Addr: "127.0.0.1:0", ReadTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	snd, err := agent.DialConfig(agent.SenderConfig{
		Addr: recv.Addr(), Agent: "chaos-agent",
		Ring:       1 << 15, // retain the whole stream: resets replay, nothing sheds
		Heartbeat:  5 * time.Millisecond,
		BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		WriteTimeout: 2 * time.Second, DrainTimeout: 30 * time.Second,
		Dialer: chaos.Dialer(chaos.Config{
			Seed: 1971,
			Drop: 0.03, Corrupt: 0.03, Split: 0.1,
			Delay: 0.05, DelayBy: 200 * time.Microsecond,
			Stall: 0.005, StallFor: 20 * time.Millisecond,
			Reset: 0.01,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	a := core.New(scenario.CoreLibrary(), core.Config{Alpha: 256})
	var final agent.AgentStat
	go func() {
		final = sendAll(t, snd, recv, "chaos-agent", cfg.Events)
		snd.Close()
		recv.Close()
	}()
	res := replay.DriveTransport(a, recv, nil)

	sst := snd.Stats()
	if sst.Shed != 0 {
		t.Fatalf("shed %d frames with a ring larger than the stream", sst.Shed)
	}
	delivered := a.Stats.Events
	if delivered+final.Missing != uint64(cfg.Events) {
		t.Fatalf("silent loss: %d delivered + %d recorded missing != %d sent (dups dropped: %d)",
			delivered, final.Missing, cfg.Events, final.Dups)
	}
	// The chaos schedule must actually have bitten, or the run proves
	// nothing: either frames were lost (gaps) or connections were killed
	// and replayed (dups).
	if final.Missing == 0 && final.Dups == 0 {
		t.Fatalf("chaos injected no observable faults: %+v", final)
	}
	// Losses surfaced through the Health channel degrade the analyzer;
	// its gap count can trail the receiver's (bounded channel, non-fatal)
	// but must never exceed it.
	if res.Missed > final.Missing {
		t.Fatalf("analyzer saw %d missing frames, receiver recorded %d", res.Missed, final.Missing)
	}
	if final.Missing > 0 && res.Gaps == 0 {
		t.Fatal("frames went missing but the analyzer never learned (no NodeGap)")
	}
	// Reports produced while the feed had unhealed loss carry the
	// degraded annotation.
	if res.Gaps > 0 {
		annotated := false
		for _, rep := range a.Reports() {
			for _, n := range rep.DegradedNodes {
				if n == "chaos-agent" {
					annotated = true
				}
			}
		}
		if len(a.Reports()) > 0 && !annotated {
			t.Logf("no report overlapped the degraded window (reports: %d, gaps: %d)",
				len(a.Reports()), res.Gaps)
		}
	}
	t.Logf("soak: %d delivered, %d missing (accounted), %d dups dropped, %d gaps applied, %d reports",
		delivered, final.Missing, final.Dups, res.Gaps, len(a.Reports()))
}

// TestHealthyTransportByteIdenticalReports: with no chaos, driving the
// stream through the real transport must produce fault reports
// byte-identical to ingesting the events in-process — the transport
// adds resilience, not noise.
func TestHealthyTransportByteIdenticalReports(t *testing.T) {
	cfg := soakStream()
	events := replay.Synthesize(cfg)

	direct := core.New(scenario.CoreLibrary(), core.Config{Alpha: 256})
	replay.Drive(direct, events)

	recv, err := agent.ListenConfig(agent.ReceiverConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	snd, err := agent.DialConfig(agent.SenderConfig{
		Addr: recv.Addr(), Agent: "agent",
		Heartbeat: 10 * time.Millisecond, DrainTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wired := core.New(scenario.CoreLibrary(), core.Config{Alpha: 256})
	go func() {
		for i := range events {
			snd.Send(events[i])
		}
		if err := snd.Close(); err != nil {
			t.Errorf("drain: %v", err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for recv.AgentStats()["agent"].LastSeq < uint64(len(events)) {
			if time.Now().After(deadline) {
				t.Error("receiver never caught up")
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		recv.Close()
	}()
	res := replay.DriveTransport(wired, recv, nil)

	if res.Gaps != 0 || res.Missed != 0 {
		t.Fatalf("healthy transport recorded loss: gaps=%d missed=%d", res.Gaps, res.Missed)
	}
	if got, want := len(wired.Reports()), len(direct.Reports()); got != want {
		t.Fatalf("report count %d over transport, %d direct", got, want)
	}
	a, err := json.Marshal(direct.Reports())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(wired.Reports())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("reports over a healthy transport differ from direct ingestion")
	}
}
