// File-side chaos: a seeded, deterministic io.Writer wrapper that does
// to a WAL segment what a dying disk and a kill -9 do — short writes,
// a torn record at the kill point, bit flips. The WAL crash soak
// installs it under the log's buffered writer (wal.Options.WrapWriter)
// and asserts the recovery invariant recovered + quarantined == written
// against the faults it injected.
package chaos

import (
	"errors"
	"io"
	"math/rand"
)

// ErrKilled is returned by a Writer once its kill point has fired: the
// write in flight landed only a prefix and every later write vanishes,
// which is exactly what a process killed mid-append observes (nothing).
var ErrKilled = errors.New("chaos: writer killed at kill point")

// WriterConfig sets the file-side fault schedule. The zero value (plus
// Seed) injects nothing.
type WriterConfig struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// KillAfterBytes arms a kill point: the write that crosses this
	// cumulative byte offset is torn — a prefix reaches the underlying
	// writer, the rest is discarded, and the write (and every write
	// after it) fails with ErrKilled. <= 0 disables.
	KillAfterBytes int64
	// ShortWrite is the per-write probability that only a prefix lands
	// and the write reports io.ErrShortWrite — a disk-full or
	// interrupted syscall the caller must treat as append failure.
	ShortWrite float64
	// Corrupt is the per-write probability that one random byte is
	// flipped before landing (silent media corruption; only recovery's
	// CRC check can catch it).
	Corrupt float64
}

// WriterStats counts the faults a Writer actually injected.
type WriterStats struct {
	// Writes counts Write calls; BytesIn the bytes offered;
	// BytesOut the bytes that truly reached the underlying writer.
	Writes, BytesIn, BytesOut int64
	// Shorts, Corrupts, Kills count injected faults (Kills is 0 or 1:
	// a killed writer stays dead).
	Shorts, Corrupts, Kills int64
}

// Writer injects faults on Write. Single-writer like the files it
// stands in for; not safe for concurrent use.
type Writer struct {
	w     io.Writer
	cfg   WriterConfig
	rng   *rand.Rand
	stats WriterStats
	dead  bool
}

// WrapWriter adorns w with fault injection driven by cfg.
func WrapWriter(w io.Writer, cfg WriterConfig) *Writer {
	return &Writer{w: w, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counts.
func (w *Writer) Stats() WriterStats { return w.stats }

// Killed reports whether the kill point has fired.
func (w *Writer) Killed() bool { return w.dead }

// Write applies the fault schedule to one write.
func (w *Writer) Write(p []byte) (int, error) {
	w.stats.Writes++
	w.stats.BytesIn += int64(len(p))
	if w.dead {
		return 0, ErrKilled
	}
	if w.cfg.KillAfterBytes > 0 && w.stats.BytesOut+int64(len(p)) > w.cfg.KillAfterBytes {
		// The kill point lands inside this write: tear it. The prefix
		// that "made it to disk" is whatever fits below the kill byte.
		keep := int(w.cfg.KillAfterBytes - w.stats.BytesOut)
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			n, _ := w.w.Write(p[:keep])
			w.stats.BytesOut += int64(n)
		}
		w.dead = true
		w.stats.Kills++
		return 0, ErrKilled
	}
	roll := func(prob float64) bool { return prob > 0 && w.rng.Float64() < prob }
	if len(p) > 1 && roll(w.cfg.ShortWrite) {
		w.stats.Shorts++
		keep := 1 + w.rng.Intn(len(p)-1)
		n, err := w.w.Write(p[:keep])
		w.stats.BytesOut += int64(n)
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	if len(p) > 0 && roll(w.cfg.Corrupt) {
		w.stats.Corrupts++
		// Copy before mangling: the caller's buffer is not ours to edit.
		q := make([]byte, len(p))
		copy(q, p)
		q[w.rng.Intn(len(q))] ^= 0xff
		p = q
	}
	n, err := w.w.Write(p)
	w.stats.BytesOut += int64(n)
	return n, err
}
