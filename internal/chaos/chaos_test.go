package chaos

import (
	"bytes"
	"net"
	"testing"
)

// fakeConn records writes; only Write and Close are exercised by Conn.
type fakeConn struct {
	net.Conn
	buf    bytes.Buffer
	writes int
	closed bool
}

func (c *fakeConn) Write(p []byte) (int, error) { c.writes++; return c.buf.Write(p) }
func (c *fakeConn) Close() error                { c.closed = true; return nil }

func TestZeroConfigPassesThrough(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1})
	msg := []byte("hello world")
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(fc.buf.Bytes(), msg) {
		t.Fatalf("bytes mangled: %q", fc.buf.Bytes())
	}
	if st := c.Stats(); st.Writes != 1 || st.Drops+st.Corrupts+st.Resets+st.Splits != 0 {
		t.Fatalf("faults injected with zero config: %+v", st)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() (Stats, []byte) {
		fc := &fakeConn{}
		c := Wrap(fc, Config{Seed: 7, Drop: 0.2, Corrupt: 0.2, Split: 0.2})
		for i := 0; i < 200; i++ {
			c.Write([]byte("payload-payload-payload-payload"))
		}
		return c.Stats(), fc.buf.Bytes()
	}
	s1, b1 := run()
	s2, b2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("byte streams diverge for the same seed")
	}
	if s1.Drops == 0 || s1.Corrupts == 0 || s1.Splits == 0 {
		t.Fatalf("schedule too tame over 200 writes: %+v", s1)
	}
}

func TestDropSwallowsWrite(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1, Drop: 1})
	n, err := c.Write([]byte("gone"))
	if err != nil || n != 4 {
		t.Fatalf("drop must report success: n=%d err=%v", n, err)
	}
	if fc.buf.Len() != 0 {
		t.Fatal("dropped write reached the wire")
	}
}

func TestCorruptFlipsOneByteOnCopy(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 3, Corrupt: 1})
	orig := []byte("pristine-payload")
	keep := append([]byte{}, orig...)
	if _, err := c.Write(orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, keep) {
		t.Fatal("caller's buffer was mutated")
	}
	got := fc.buf.Bytes()
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d", len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestResetClosesAndFails(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1, Reset: 1})
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("reset must fail the write")
	}
	if !fc.closed {
		t.Fatal("reset must close the underlying connection")
	}
}

func TestSplitIssuesTwoWrites(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1, Split: 1})
	msg := []byte("split-me-in-two")
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if fc.writes != 2 {
		t.Fatalf("underlying writes = %d, want 2", fc.writes)
	}
	if !bytes.Equal(fc.buf.Bytes(), msg) {
		t.Fatal("split mangled the payload")
	}
}
