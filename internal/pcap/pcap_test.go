package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

var t0 = time.Date(2016, 12, 12, 10, 30, 0, 123456000, time.UTC)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	packets := [][]byte{
		[]byte("first frame bytes"),
		[]byte("second"),
		bytes.Repeat([]byte{0xab}, 1500),
	}
	for i, p := range packets {
		if err := w.WritePacket(t0.Add(time.Duration(i)*time.Millisecond), p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count != 3 {
		t.Fatalf("Count = %d", w.Count)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeEthernet {
		t.Fatalf("link type = %d", r.LinkType)
	}
	for i, want := range packets {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(rec.Data, want) || rec.Orig != len(want) {
			t.Fatalf("packet %d mismatch", i)
		}
		wantT := t0.Add(time.Duration(i) * time.Millisecond)
		if !rec.Time.Equal(wantT) {
			t.Fatalf("packet %d time = %v, want %v", i, rec.Time, wantT)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEmptyCaptureStillValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian capture with one 4-byte packet.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], uint32(t0.Unix()))
	binary.BigEndian.PutUint32(rec[4:8], 500)
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec[:])
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("data = %v", p.Data)
	}
	if p.Time.UnixMicro() != t0.Unix()*1e6+500 {
		t.Fatalf("time = %v", p.Time)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedHeaderAndRecord(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header err = %v", err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WritePacket(t0, []byte("abcdef"))
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated record err = %v", err)
	}
}

func TestSnapLenApplied(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.snapLen = 8
	big := bytes.Repeat([]byte{7}, 100)
	if err := w.WritePacket(t0, big); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 8 || p.Orig != 100 {
		t.Fatalf("snapped: cap=%d orig=%d", len(p.Data), p.Orig)
	}
}
