// Package pcap reads and writes the classic libpcap capture file format
// (the format Bro ingests and tcpreplay replays, §6/§7.4.1):
// a 24-byte global header followed by per-packet records with
// microsecond timestamps. Only the parts the reproduction needs are
// implemented: linktype EN10MB (Ethernet), microsecond magic, host-order
// native writing and both byte orders on read.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// MagicMicroseconds is the standard pcap magic for microsecond
// timestamps, written in the producer's byte order.
const MagicMicroseconds = 0xa1b2c3d4

// LinkTypeEthernet is DLT_EN10MB.
const LinkTypeEthernet = 1

// DefaultSnapLen is the capture length limit we write.
const DefaultSnapLen = 262144

// Errors.
var (
	ErrBadMagic  = errors.New("pcap: unrecognized magic number")
	ErrTruncated = errors.New("pcap: truncated file")
)

// Packet is one captured record.
type Packet struct {
	Time time.Time
	// Data is the captured frame (possibly snapped short of Orig).
	Data []byte
	// Orig is the original wire length.
	Orig int
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen uint32
	wrote   bool
	Count   uint64
}

// NewWriter creates a writer; the global header is emitted lazily before
// the first packet (or by Flush on an empty capture).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snapLen: DefaultSnapLen}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	w.wrote = true
	return err
}

// WritePacket appends one record, snapping data to the snap length.
func (w *Writer) WritePacket(t time.Time, data []byte) error {
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	orig := len(data)
	if uint32(len(data)) > w.snapLen {
		data = data[:w.snapLen]
	}
	var rec [16]byte
	usec := t.UnixMicro()
	binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(orig))
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	w.Count++
	return nil
}

// Flush ensures at least the global header exists (empty captures are
// still valid pcap files).
func (w *Writer) Flush() error {
	if !w.wrote {
		return w.writeHeader()
	}
	return nil
}

// Reader consumes a pcap stream.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	snapLen  uint32
	LinkType uint32
}

// NewReader validates the global header and prepares to read records.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: global header", ErrTruncated)
	}
	var order binary.ByteOrder
	switch {
	case binary.LittleEndian.Uint32(hdr[0:4]) == MagicMicroseconds:
		order = binary.LittleEndian
	case binary.BigEndian.Uint32(hdr[0:4]) == MagicMicroseconds:
		order = binary.BigEndian
	default:
		return nil, ErrBadMagic
	}
	return &Reader{
		r:        r,
		order:    order,
		snapLen:  order.Uint32(hdr[16:20]),
		LinkType: order.Uint32(hdr[20:24]),
	}, nil
}

// Next returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Next() (*Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: record header", ErrTruncated)
	}
	sec := r.order.Uint32(rec[0:4])
	usec := r.order.Uint32(rec[4:8])
	capLen := r.order.Uint32(rec[8:12])
	origLen := r.order.Uint32(rec[12:16])
	if capLen > r.snapLen && r.snapLen > 0 {
		return nil, fmt.Errorf("pcap: record capture length %d exceeds snaplen %d", capLen, r.snapLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return nil, fmt.Errorf("%w: record body", ErrTruncated)
	}
	return &Packet{
		Time: time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data: data,
		Orig: int(origLen),
	}, nil
}
