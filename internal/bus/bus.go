// Package bus implements the RabbitMQ message-broker analogue: topic
// exchanges, queues, bindings, and round-robin delivery to consumers.
//
// OpenStack routes all intra-service RPC through a RabbitMQ broker (§2
// "Communication"). The broker here is pure routing logic — it decides
// which queues a published message lands on and which consumer takes it —
// while the cluster layer moves the encoded frames across the simulated
// network so monitoring taps see real bytes on both the publish and
// deliver legs.
package bus

import (
	"fmt"
	"sort"
	"strings"

	"gretel/internal/amqp"
)

// Delivery is the broker's routing decision for one queue: the consumer
// that receives the message, rewritten as a basic.deliver.
type Delivery struct {
	Queue    string
	Consumer Consumer
	Message  *amqp.Message
}

// Consumer identifies a subscribed service endpoint: the deployment node
// it runs on and the callback invoked when a delivery reaches it.
type Consumer struct {
	Node string
	Tag  string
	Fn   func(*amqp.Message)
}

type queue struct {
	name      string
	consumers []Consumer
	next      int
}

type binding struct {
	exchange string
	pattern  string
	queue    string
}

// Broker is a topic-exchange message broker. It is not safe for concurrent
// use; inside the simulation all access happens on the event loop.
type Broker struct {
	queues   map[string]*queue
	bindings []binding
	// Published counts messages accepted; Unroutable counts messages that
	// matched no queue (RabbitMQ would drop or return these).
	Published  uint64
	Unroutable uint64
}

// New returns an empty broker.
func New() *Broker {
	return &Broker{queues: make(map[string]*queue)}
}

// DeclareQueue creates the queue if it does not exist. Declaring an
// existing queue is a no-op, matching AMQP semantics.
func (b *Broker) DeclareQueue(name string) {
	if _, ok := b.queues[name]; !ok {
		b.queues[name] = &queue{name: name}
	}
}

// DeleteQueue removes a queue and its bindings (e.g. a reply queue torn
// down when its client disconnects).
func (b *Broker) DeleteQueue(name string) {
	delete(b.queues, name)
	kept := b.bindings[:0]
	for _, bd := range b.bindings {
		if bd.queue != name {
			kept = append(kept, bd)
		}
	}
	b.bindings = kept
}

// Bind routes messages published to exchange whose routing key matches
// pattern into the named queue. The queue is declared implicitly.
// Duplicate bindings are ignored.
func (b *Broker) Bind(exchange, pattern, queueName string) {
	b.DeclareQueue(queueName)
	for _, bd := range b.bindings {
		if bd.exchange == exchange && bd.pattern == pattern && bd.queue == queueName {
			return
		}
	}
	b.bindings = append(b.bindings, binding{exchange, pattern, queueName})
}

// Subscribe registers a consumer on a queue. Multiple consumers on one
// queue receive messages round-robin (work-queue semantics, used by e.g.
// the pool of nova-conductor workers).
func (b *Broker) Subscribe(queueName string, c Consumer) error {
	q, ok := b.queues[queueName]
	if !ok {
		return fmt.Errorf("bus: subscribe to undeclared queue %q", queueName)
	}
	q.consumers = append(q.consumers, c)
	return nil
}

// Unsubscribe removes all consumers on the queue whose tag matches
// (simulating a crashed agent's channel closing).
func (b *Broker) Unsubscribe(queueName, tag string) {
	q, ok := b.queues[queueName]
	if !ok {
		return
	}
	kept := q.consumers[:0]
	for _, c := range q.consumers {
		if c.Tag != tag {
			kept = append(kept, c)
		}
	}
	q.consumers = kept
	if q.next >= len(q.consumers) {
		q.next = 0
	}
}

// Consumers reports the number of live consumers on a queue.
func (b *Broker) Consumers(queueName string) int {
	if q, ok := b.queues[queueName]; ok {
		return len(q.consumers)
	}
	return 0
}

// Route determines the deliveries for a published message without invoking
// consumers. The default exchange ("") routes directly to the queue named
// by the routing key; topic exchanges route through bindings. Queues are
// visited in deterministic (sorted) order. A queue with no consumers
// produces no delivery (the message would sit in the queue; the simulation
// treats it as dropped, which is what a fault injector wants to observe).
func (b *Broker) Route(m *amqp.Message) []Delivery {
	b.Published++
	var queueNames []string
	if m.Exchange == "" {
		if _, ok := b.queues[m.RoutingKey]; ok {
			queueNames = []string{m.RoutingKey}
		}
	} else {
		seen := map[string]bool{}
		for _, bd := range b.bindings {
			if bd.exchange == m.Exchange && MatchTopic(bd.pattern, m.RoutingKey) && !seen[bd.queue] {
				seen[bd.queue] = true
				queueNames = append(queueNames, bd.queue)
			}
		}
		sort.Strings(queueNames)
	}
	if len(queueNames) == 0 {
		b.Unroutable++
		return nil
	}
	var out []Delivery
	for _, qn := range queueNames {
		q := b.queues[qn]
		if len(q.consumers) == 0 {
			continue
		}
		c := q.consumers[q.next%len(q.consumers)]
		q.next++
		dm := *m
		dm.MethodID = amqp.BasicDeliver
		out = append(out, Delivery{Queue: qn, Consumer: c, Message: &dm})
	}
	return out
}

// Publish routes the message and synchronously invokes each chosen
// consumer. The cluster layer uses Route directly so it can interpose
// network latency; Publish is a convenience for tests and simple users.
func (b *Broker) Publish(m *amqp.Message) int {
	ds := b.Route(m)
	for _, d := range ds {
		if d.Consumer.Fn != nil {
			d.Consumer.Fn(d.Message)
		}
	}
	return len(ds)
}

// MatchTopic implements AMQP topic matching: patterns and keys are
// dot-separated words; "*" matches exactly one word, "#" matches zero or
// more words.
func MatchTopic(pattern, key string) bool {
	return matchWords(strings.Split(pattern, "."), strings.Split(key, "."))
}

func matchWords(pat, key []string) bool {
	for len(pat) > 0 {
		switch pat[0] {
		case "#":
			if len(pat) == 1 {
				return true
			}
			for i := 0; i <= len(key); i++ {
				if matchWords(pat[1:], key[i:]) {
					return true
				}
			}
			return false
		case "*":
			if len(key) == 0 {
				return false
			}
		default:
			if len(key) == 0 || key[0] != pat[0] {
				return false
			}
		}
		pat, key = pat[1:], key[1:]
	}
	return len(key) == 0
}
