package bus

import (
	"strings"
	"testing"
	"testing/quick"

	"gretel/internal/amqp"
)

func msg(exchange, key string) *amqp.Message {
	return &amqp.Message{
		MethodID:   amqp.BasicPublish,
		Exchange:   exchange,
		RoutingKey: key,
		Envelope:   amqp.Envelope{MsgID: "m1", Method: "ping"},
	}
}

func TestMatchTopic(t *testing.T) {
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"compute.compute-1", "compute.compute-1", true},
		{"compute.compute-1", "compute.compute-2", false},
		{"compute.*", "compute.compute-1", true},
		{"compute.*", "compute", false},
		{"compute.*", "compute.a.b", false},
		{"compute.#", "compute", true},
		{"compute.#", "compute.a.b.c", true},
		{"#", "anything.at.all", true},
		{"#", "", true}, // empty key is a single empty word; # matches all
		{"*.info", "agent.info", true},
		{"*.info", "agent.debug", false},
		{"a.#.z", "a.z", true},
		{"a.#.z", "a.b.c.z", true},
		{"a.#.z", "a.b.c", false},
		{"a.*.z", "a.b.z", true},
		{"a.*.z", "a.b.c.z", false},
	}
	for _, c := range cases {
		if got := MatchTopic(c.pattern, c.key); got != c.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", c.pattern, c.key, got, c.want)
		}
	}
}

func TestDefaultExchangeRoutesToQueueByName(t *testing.T) {
	b := New()
	b.DeclareQueue("reply_q1")
	got := 0
	if err := b.Subscribe("reply_q1", Consumer{Node: "n1", Fn: func(*amqp.Message) { got++ }}); err != nil {
		t.Fatal(err)
	}
	if n := b.Publish(msg("", "reply_q1")); n != 1 || got != 1 {
		t.Fatalf("deliveries = %d, invoked = %d", n, got)
	}
}

func TestUnroutableCounted(t *testing.T) {
	b := New()
	if n := b.Publish(msg("", "nowhere")); n != 0 {
		t.Fatalf("unroutable delivered %d times", n)
	}
	if b.Unroutable != 1 || b.Published != 1 {
		t.Fatalf("counters: published=%d unroutable=%d", b.Published, b.Unroutable)
	}
}

func TestTopicBindingAndDeliverRewrite(t *testing.T) {
	b := New()
	b.Bind("nova", "compute.*", "q-compute-1")
	var delivered *amqp.Message
	b.Subscribe("q-compute-1", Consumer{Node: "compute-1", Fn: func(m *amqp.Message) { delivered = m }})
	b.Publish(msg("nova", "compute.compute-1"))
	if delivered == nil {
		t.Fatal("no delivery")
	}
	if delivered.MethodID != amqp.BasicDeliver {
		t.Fatalf("delivery MethodID = %d, want BasicDeliver", delivered.MethodID)
	}
	if delivered.Envelope.Method != "ping" {
		t.Fatalf("envelope lost: %+v", delivered.Envelope)
	}
}

func TestFanoutToMultipleQueues(t *testing.T) {
	b := New()
	b.Bind("neutron", "agent.#", "q-agent-a")
	b.Bind("neutron", "agent.#", "q-agent-b")
	hits := map[string]int{}
	b.Subscribe("q-agent-a", Consumer{Node: "na", Fn: func(*amqp.Message) { hits["a"]++ }})
	b.Subscribe("q-agent-b", Consumer{Node: "nb", Fn: func(*amqp.Message) { hits["b"]++ }})
	if n := b.Publish(msg("neutron", "agent.port_update")); n != 2 {
		t.Fatalf("deliveries = %d, want 2", n)
	}
	if hits["a"] != 1 || hits["b"] != 1 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestRoundRobinConsumers(t *testing.T) {
	b := New()
	b.DeclareQueue("work")
	hits := map[string]int{}
	for _, tag := range []string{"w1", "w2", "w3"} {
		tag := tag
		b.Subscribe("work", Consumer{Node: tag, Tag: tag, Fn: func(*amqp.Message) { hits[tag]++ }})
	}
	for i := 0; i < 9; i++ {
		b.Publish(msg("", "work"))
	}
	for _, tag := range []string{"w1", "w2", "w3"} {
		if hits[tag] != 3 {
			t.Fatalf("round robin uneven: %v", hits)
		}
	}
}

func TestSubscribeUndeclared(t *testing.T) {
	b := New()
	if err := b.Subscribe("ghost", Consumer{}); err == nil {
		t.Fatal("subscribe to undeclared queue succeeded")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := New()
	b.DeclareQueue("q")
	n := 0
	b.Subscribe("q", Consumer{Tag: "c1", Fn: func(*amqp.Message) { n++ }})
	b.Publish(msg("", "q"))
	b.Unsubscribe("q", "c1")
	if got := b.Publish(msg("", "q")); got != 0 {
		t.Fatalf("delivered to unsubscribed consumer: %d", got)
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if b.Consumers("q") != 0 {
		t.Fatalf("Consumers = %d, want 0", b.Consumers("q"))
	}
}

func TestDeleteQueueRemovesBindings(t *testing.T) {
	b := New()
	b.Bind("nova", "compute.#", "q1")
	b.DeleteQueue("q1")
	if n := b.Publish(msg("nova", "compute.x")); n != 0 {
		t.Fatalf("deleted queue still routed: %d", n)
	}
}

func TestDuplicateBindingIgnored(t *testing.T) {
	b := New()
	b.Bind("nova", "compute.#", "q1")
	b.Bind("nova", "compute.#", "q1")
	n := 0
	b.Subscribe("q1", Consumer{Fn: func(*amqp.Message) { n++ }})
	b.Publish(msg("nova", "compute.x"))
	if n != 1 {
		t.Fatalf("duplicate binding caused %d deliveries", n)
	}
}

func TestQueueWithNoConsumersDropsButRoutes(t *testing.T) {
	b := New()
	b.Bind("nova", "compute.#", "q1")
	if n := b.Publish(msg("nova", "compute.x")); n != 0 {
		t.Fatalf("consumerless queue delivered %d", n)
	}
	// Not counted unroutable: the queue matched.
	if b.Unroutable != 0 {
		t.Fatalf("Unroutable = %d, want 0", b.Unroutable)
	}
}

func TestRouteDeterministicOrder(t *testing.T) {
	b := New()
	b.Bind("e", "k", "zq")
	b.Bind("e", "k", "aq")
	b.Subscribe("zq", Consumer{Node: "z"})
	b.Subscribe("aq", Consumer{Node: "a"})
	ds := b.Route(msg("e", "k"))
	if len(ds) != 2 || ds[0].Queue != "aq" || ds[1].Queue != "zq" {
		t.Fatalf("route order not deterministic: %+v", ds)
	}
}

func TestDeliveryDoesNotAliasPublished(t *testing.T) {
	b := New()
	b.DeclareQueue("q")
	b.Subscribe("q", Consumer{Node: "n"})
	m := msg("", "q")
	ds := b.Route(m)
	if len(ds) != 1 {
		t.Fatal("no route")
	}
	if ds[0].Message == m {
		t.Fatal("delivery aliases the published message")
	}
	if m.MethodID != amqp.BasicPublish {
		t.Fatal("published message mutated")
	}
}

// Property: "#" matches every key; exact patterns match only themselves;
// "*"-per-segment patterns match keys of equal segment count.
func TestQuickMatchTopic(t *testing.T) {
	mkKey := func(raw []uint8) string {
		if len(raw) == 0 {
			return "x"
		}
		if len(raw) > 5 {
			raw = raw[:5]
		}
		segs := make([]string, len(raw))
		for i, b := range raw {
			segs[i] = string(rune('a' + b%4))
		}
		return strings.Join(segs, ".")
	}
	f := func(rawA, rawB []uint8) bool {
		a, b := mkKey(rawA), mkKey(rawB)
		if !MatchTopic("#", a) {
			return false
		}
		if !MatchTopic(a, a) {
			return false
		}
		if MatchTopic(a, b) && a != b {
			// Exact patterns (no wildcards here) must only match equals.
			return false
		}
		// All-star pattern of the same arity matches.
		nSegs := strings.Count(a, ".") + 1
		stars := strings.TrimSuffix(strings.Repeat("*.", nSegs), ".")
		return MatchTopic(stars, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
