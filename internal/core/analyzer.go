// Package core implements the GRETEL analyzer service (§5): the event
// receiver, the anomaly detector for operational and performance faults,
// and Algorithm 2's operation-detection mechanism — dual-buffer sliding
// window, freeze-on-fault snapshots, truncated-fingerprint matching over
// a growing context buffer, and the precision metric θ.
//
// The analyzer consumes trace.Events from monitoring agents in arrival
// order (TCP from each agent preserves per-stream order, §5.2), pairs
// requests with responses to compute per-API latencies, detects REST
// error statuses and RPC failures with lightweight checks, and — only when
// a fault is present — spawns operation detection against the fingerprint
// library, followed by optional root-cause analysis.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"gretel/internal/fingerprint"
	"gretel/internal/stats"
	"gretel/internal/telemetry"
	"gretel/internal/trace"
	"gretel/internal/tracestore"
	"gretel/internal/tsoutliers"
	"gretel/internal/window"
)

// Analyzer telemetry: the per-Analyzer Stats struct keeps serving the
// experiments; these process-wide metrics feed the live /metrics
// endpoint. The histograms time the two heavy stages — Algorithm 2's
// window matching and the RCA hook — in wall-clock time, which is what
// "lightweight" must be judged by.
var (
	mEventsIngested = telemetry.GetCounter("core.events_ingested")
	mRESTPairs      = telemetry.GetCounter("core.rest_pairs")
	mRPCPairs       = telemetry.GetCounter("core.rpc_pairs")
	mFaultsOper     = telemetry.GetCounter("core.faults.operational")
	mFaultsPerf     = telemetry.GetCounter("core.faults.performance")
	mDetectAttempts = telemetry.GetCounter("core.opdetect.attempts")
	mDetectHits     = telemetry.GetCounter("core.opdetect.hits")
	mDetectMisses   = telemetry.GetCounter("core.opdetect.misses")
	hWindowMatch    = telemetry.GetHistogram("core.window_match")
	hRCA            = telemetry.GetHistogram("core.rca")
)

// FaultKind distinguishes the two fault classes GRETEL localizes.
type FaultKind uint8

const (
	// Operational faults are API error responses (§3).
	Operational FaultKind = iota + 1
	// Performance faults are anomalous API latencies.
	Performance
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case Operational:
		return "operational"
	case Performance:
		return "performance"
	default:
		return "unknown"
	}
}

// RootCause is one finding of the root-cause analysis engine, attached to
// a report by the configured RCA hook.
type RootCause struct {
	Node   string
	Kind   string // "resource" or "software"
	Detail string
}

// String implements fmt.Stringer.
func (r RootCause) String() string {
	return fmt.Sprintf("%s: %s (%s)", r.Node, r.Detail, r.Kind)
}

// Report is the analyzer's output for one detected fault.
type Report struct {
	Kind FaultKind
	// Fault is the offending message: the error event for operational
	// faults, the slow response for performance faults.
	Fault trace.Event
	// OffendingAPI is the API used for candidate selection — the earliest
	// error in the snapshot for operational faults (an upstream RPC error
	// takes precedence over the REST error that relayed it).
	OffendingAPI trace.API
	// Errors lists every error event found in the snapshot (REST and
	// RPC together, §5.3.1), for root-cause analysis.
	Errors []trace.Event
	// Candidates is the final matched operation set (the paper's n).
	Candidates []string
	// CandidatesByErrorOnly counts operations matched on just the error
	// API, without the snapshot (Fig 7b/7c "With API error").
	CandidatesByErrorOnly int
	// Precision is θ = (N-n)/(N-1).
	Precision float64
	// Beta is the final context-buffer size used.
	Beta int
	// Latency carries the anomalous latency for performance faults.
	Latency time.Duration
	// DetectedAt is the receiver time when the report was produced;
	// ReportDelay is DetectedAt minus the fault message's capture time.
	DetectedAt  time.Time
	ReportDelay time.Duration
	// RootCauses is filled by the RCA hook, if configured.
	RootCauses []RootCause
	// DegradedNodes lists nodes whose monitoring feed had unhealed loss
	// (frame gaps or a down agent) when this report was produced: the
	// snapshot may be missing that node's messages, so the candidate set
	// is lower-confidence. Empty on a healthy monitoring plane.
	DegradedNodes []string
	// TraceID links the report to its evidence trace in the installed
	// trace store (explain mode). Zero — and omitted from JSON — when
	// explain mode is off, keeping reports byte-identical to a run
	// without the subsystem.
	TraceID uint64 `json:",omitempty"`
	// Member names the analyzer instance that produced this report when
	// it runs as one partition of a federation (Config.Member). Empty —
	// and omitted from JSON — on a standalone analyzer, keeping
	// single-process output byte-identical to a federation of one.
	Member string `json:",omitempty"`

	// TruthOp is ground truth (evaluation only): the operation that
	// actually contained the fault.
	TruthOp string

	// evidence is the in-flight evidence trace, carried from the detect
	// worker to finish, which stores it. Nil outside explain mode.
	evidence *tracestore.Trace
}

// Hit reports whether ground truth is among the candidates (evaluation).
func (r *Report) Hit() bool {
	for _, c := range r.Candidates {
		if c == r.TruthOp {
			return true
		}
	}
	return false
}

// Config tunes the analyzer. Zero values take the paper's §7 settings.
type Config struct {
	// Alpha is the sliding-window size (paper: 768). If zero it is
	// derived as window.Alpha(FPmax, Prate, T).
	Alpha int
	// Prate and T feed the α computation when Alpha is zero.
	Prate float64
	T     float64
	// C1 and C2 set the context buffer start (β₀ = c1·α) and growth step
	// (δ = c2·α); paper: 0.1 and 0.04.
	C1, C2 float64
	// PruneRPC drops RPC symbols from fingerprints and snapshots before
	// matching (the §6 optimization). Default true.
	PruneRPC bool
	// DisablePruneRPC turns PruneRPC off explicitly (Fig 7c ablation).
	DisablePruneRPC bool
	// StrictMatch uses the full-sequence matcher instead of the relaxed
	// state-change matcher (ablation).
	StrictMatch bool
	// SnapshotOnRPCErrors also arms snapshots for RPC failures instead of
	// waiting for the relayed REST error (ablation; default off, §5.3.1
	// "Improving precision").
	SnapshotOnRPCErrors bool
	// GrowToCover disables the §5.3.1 stop rule (stop growing the
	// context buffer as soon as the matched set grows) and always grows
	// to the whole window. Default off: the paper's rule keeps the
	// matched set tight; growing to cover lets densely shared API symbols
	// from concurrent operations satisfy almost every candidate's
	// in-order test, inflating n (the ablation bench quantifies this).
	GrowToCover bool
	// UseCorrelationIDs restricts snapshot matching to events sharing the
	// fault's correlation identifier when one is present — the §5.3.1
	// extension ("GRETEL can exploit these correlation identifiers to
	// increase its precision by reducing the number of packets against
	// which a fingerprint is matched"). Requires a deployment that stamps
	// X-Openstack-Request-Id.
	UseCorrelationIDs bool
	// Latency configures the per-API level-shift detectors.
	Latency tsoutliers.Options
	// PerfDetection enables operation detection for latency alarms.
	PerfDetection bool
	// PerfCooldown suppresses further performance snapshots for an API
	// within this window of the previous one, so a sustained anomaly does
	// not spawn a snapshot per affected exchange (default 30s; negative
	// disables the cooldown).
	PerfCooldown time.Duration
	// TotalOps overrides N in θ; defaults to the library size.
	TotalOps int
	// Member names this analyzer instance when it runs as one partition
	// of a federation; every report is stamped with it so the merged
	// stream stays attributable. Empty (the default) stamps nothing,
	// keeping standalone output byte-identical.
	Member string
	// DetectWorkers sets the number of concurrent detection workers that
	// run Algorithm 2 off the ingest hot path. 0 (the default) detects
	// inline on the receiver goroutine — bit-for-bit the classic
	// single-goroutine path, kept for ablation. Negative uses
	// GOMAXPROCS. The worker pool preserves report order: a sequenced
	// collector delivers reports in fault-arrival order, so inline and
	// parallel modes produce identical output.
	DetectWorkers int
	// DetectBacklog bounds the snapshot queue feeding the worker pool
	// (default 4×workers). When the queue is full the receiver blocks
	// (backpressure) unless DetectShed is set.
	DetectBacklog int
	// DetectShed drops snapshots instead of blocking the receiver when
	// the detection queue is full. Shed snapshots are counted in
	// Stats.SnapshotsShed and the core.snapshots_shed telemetry counter.
	DetectShed bool
	// PairTTL evicts request-side pairing state (REST by connection, RPC
	// by message id) whose response never arrived, once older than this
	// in event time (default 10m; negative disables age eviction).
	PairTTL time.Duration
	// MaxPairs caps each pairing map; when full, the oldest quarter is
	// evicted (default 65536; negative disables the cap). With ingest
	// shards the cap is split evenly across shards (ceil(MaxPairs/N) per
	// shard), preserving the global bound.
	MaxPairs int
	// IngestShards partitions the keyed ingest state — pairing maps,
	// per-API latency summaries and level-shift detectors, TTL/cap
	// eviction — across this many shards fed by IngestBatch. 0 (the
	// default) keeps the classic inline path, kept for ablation; negative
	// uses GOMAXPROCS. Shard outcomes are re-sequenced by event order
	// before the global window and detection, so reports and evidence
	// traces are byte-identical across shard counts (shard.go).
	IngestShards int
	// IngestBatch is the batch size drivers should feed IngestBatch with
	// when IngestShards > 0 (default 256). Batching amortizes per-event
	// dispatch across the shard barrier.
	IngestBatch int
}

func (c *Config) defaults(lib *fingerprint.Library) {
	if c.Alpha == 0 {
		fpMax := lib.MaxLen()
		if fpMax == 0 {
			fpMax = 384
		}
		prate := c.Prate
		if prate == 0 {
			prate = 150
		}
		t := c.T
		if t == 0 {
			t = 1
		}
		c.Alpha = window.Alpha(fpMax, prate, t)
	}
	if c.C1 == 0 {
		c.C1 = 0.1
	}
	if c.C2 == 0 {
		c.C2 = 0.04
	}
	c.PruneRPC = !c.DisablePruneRPC
	if c.TotalOps == 0 {
		c.TotalOps = lib.Len()
	}
	if c.PerfCooldown == 0 {
		c.PerfCooldown = 30 * time.Second
	}
	if c.Latency.MinSpread == 0 {
		// API latencies are tens of milliseconds; floor the spread at 5ms
		// so micro-jitter never alarms.
		c.Latency.MinSpread = 5e-3
	}
	if c.Latency.MaxAlarms == 0 {
		// Bound each per-API detector's alarm history so hours-long
		// chaos soaks cannot grow analyzer memory without limit; alarm
		// *counts* stay exact. Negative keeps the unbounded history.
		c.Latency.MaxAlarms = 4096
	}
	if c.DetectWorkers < 0 {
		c.DetectWorkers = runtime.GOMAXPROCS(0)
	}
	if c.DetectBacklog <= 0 {
		c.DetectBacklog = 4 * c.DetectWorkers
	}
	if c.PairTTL == 0 {
		c.PairTTL = 10 * time.Minute
	}
	if c.MaxPairs == 0 {
		c.MaxPairs = 1 << 16
	}
	if c.IngestShards < 0 {
		c.IngestShards = runtime.GOMAXPROCS(0)
	}
	if c.IngestShards > 0 && c.IngestBatch <= 0 {
		c.IngestBatch = 256
	}
}

// Stats counts analyzer work for the throughput experiments. Receiver
// fields (Events…Snapshots, SnapshotsShed, PairsEvicted) are written by
// the ingest goroutine, report fields (Reports, FalseNegs, MatchedTotal)
// by the report collector; read them after Flush or Close.
type Stats struct {
	Events        uint64
	Bytes         uint64
	RESTPairs     uint64
	RPCPairs      uint64
	Faults        uint64
	PerfAlarms    uint64
	Snapshots     uint64
	SnapshotsShed uint64 // snapshots dropped under DetectShed backpressure
	PairsEvicted  uint64 // pairing-state entries evicted by TTL or cap
	NodeGaps      uint64 // monitoring-plane gap/down records applied (NodeGap)
	FramesMissed  uint64 // frames the transport reported lost across all gaps
	PairsFlushed  uint64 // pairing-state entries flushed by NodeGap
	CaptureErrors uint64 // durable-capture appends that failed (events processed uncaptured)
	Reports       uint64
	FalseNegs     uint64 // faults whose API had no fingerprint candidates
	MatchedTotal  uint64 // sum of candidate-set sizes across reports
}

type pendingReq struct {
	at   time.Time
	api  trace.API
	seq  uint64 // event sequence, for deterministic eviction tie-breaks
	node string // responder node, for NodeGap flushes
}

// Analyzer is the central GRETEL service.
type Analyzer struct {
	cfg Config
	lib *fingerprint.Library

	win     *window.Dual
	pending map[uint64]pendingReq // REST pairing by connection
	calls   map[string]pendingReq // RPC pairing by message id
	lat     latTrack              // per-API latency summaries + level-shift detectors
	// degraded marks nodes with unhealed monitoring-feed loss (NodeGap)
	// until the agent provably returns (NodeRecovered); value is the time
	// of the last recorded loss.
	degraded map[string]time.Time

	// leanCache caches RPC-pruned fingerprints by name; sync.Map because
	// concurrent detect workers populate it.
	leanCache sync.Map // string -> *fingerprint.Fingerprint

	onReport   func(*Report)
	rca        func(*Report) []RootCause
	rcaExplain func(*Report) ([]RootCause, *tracestore.RCAEvidence)

	// explain is the evidence-trace store (nil unless explain mode is
	// on); traceSeq assigns trace IDs on the receiver goroutine, in
	// fault-arrival order, so IDs are identical across worker counts.
	explain  *tracestore.Store
	traceSeq uint64

	reports []*Report
	Stats   Stats

	// Detection pipeline state (pipeline.go); jobs is nil in inline mode.
	jobs          chan detectJob
	results       chan detectResult
	nextSeq       uint64
	inFlight      sync.WaitGroup
	workersWG     sync.WaitGroup
	collectorDone chan struct{}

	// Sharded ingest front-end state (shard.go); shards is nil in inline
	// mode, shardsOff flips after Close stops the workers.
	shards    []*ingestShard
	shardsWG  sync.WaitGroup
	shardsOff bool
	batchWG   sync.WaitGroup
	batchBuf  []trace.Event
	outcomes  []ingestOutcome
	pairIdx   [][]int32
	latIdx    [][]int32
	one       [1]trace.Event

	// Durable event plane (capture.go); capture is nil unless SetCapture
	// attached a WAL. capturing guards the Ingest⇄IngestBatch routing so
	// each event is appended exactly once; captureLast is the record
	// sequence the cursor advances to when the call completes.
	capture     Capture
	capturing   bool
	captureLast uint64
	capOne      [1]trace.Event
}

// New builds an analyzer over a learned fingerprint library. When
// cfg.DetectWorkers is non-zero the detection worker pool starts
// immediately, and when cfg.IngestShards is non-zero so does the
// sharded ingest front-end; call Close to stop them (Flush alone drains
// the detection pipeline).
func New(lib *fingerprint.Library, cfg Config) *Analyzer {
	cfg.defaults(lib)
	a := &Analyzer{
		cfg:      cfg,
		lib:      lib,
		win:      window.New(cfg.Alpha),
		pending:  make(map[uint64]pendingReq),
		calls:    make(map[string]pendingReq),
		lat:      newLatTrack(cfg.Latency),
		degraded: make(map[string]time.Time),
	}
	if cfg.DetectWorkers > 0 {
		a.startPipeline(cfg.DetectWorkers)
	}
	if cfg.IngestShards > 0 {
		a.startShards(cfg.IngestShards)
	}
	return a
}

// Config returns the effective configuration (with defaults resolved).
func (a *Analyzer) Config() Config { return a.cfg }

// OnReport registers a callback invoked for every report as it is
// produced.
func (a *Analyzer) OnReport(fn func(*Report)) { a.onReport = fn }

// SetRCA installs the root-cause analysis hook (Algorithm 3, implemented
// in the rca package).
func (a *Analyzer) SetRCA(fn func(*Report) []RootCause) { a.rca = fn }

// Reports returns all reports produced so far, in fault-arrival order.
// With a detection worker pool configured, call Flush or Close first to
// drain in-flight detections.
func (a *Analyzer) Reports() []*Report { return a.reports }

// Ingest processes one event from the monitoring agents. It must be
// called from a single goroutine (the event receiver). With the sharded
// front-end running (Config.IngestShards > 0) the event is routed
// through a single-event batch so pairing state stays coherent with
// batched callers; high-rate drivers should call IngestBatch instead.
func (a *Analyzer) Ingest(ev trace.Event) {
	if a.capture != nil && !a.capturing {
		a.capturing = true
		defer a.endCapture()
		a.capOne[0] = ev
		a.captureEvents(a.capOne[:])
	}
	if a.shards != nil && !a.shardsOff {
		a.one[0] = ev
		a.IngestBatch(a.one[:])
		return
	}
	a.Stats.Events++
	mEventsIngested.Inc()
	a.Stats.Bytes += uint64(ev.WireBytes)
	if ev.Seq == 0 {
		ev.Seq = a.Stats.Events
	}

	// Request/response pairing and latency measurement (§5.3: REST by
	// TCP connection metadata, RPC by message identifier).
	var latency time.Duration
	var havePair bool
	switch ev.Type {
	case trace.RESTRequest:
		a.Stats.PairsEvicted += capPairs(a.pending, a.cfg.MaxPairs)
		a.pending[ev.ConnID] = pendingReq{ev.Time, ev.API, ev.Seq, ev.DstNode}
	case trace.RESTResponse:
		if req, ok := a.pending[ev.ConnID]; ok {
			delete(a.pending, ev.ConnID)
			latency = ev.Time.Sub(req.at)
			havePair = true
			a.Stats.RESTPairs++
			mRESTPairs.Inc()
		}
	case trace.RPCCall:
		if ev.MsgID != "" {
			a.Stats.PairsEvicted += capPairs(a.calls, a.cfg.MaxPairs)
			a.calls[ev.MsgID] = pendingReq{ev.Time, ev.API, ev.Seq, ev.DstNode}
		}
	case trace.RPCReply:
		if req, ok := a.calls[ev.MsgID]; ok {
			delete(a.calls, ev.MsgID)
			latency = ev.Time.Sub(req.at)
			havePair = true
			a.Stats.RPCPairs++
			mRPCPairs.Inc()
		}
	}
	// Amortized age sweep: requests whose responses were lost on the
	// wire must not grow the pairing maps forever.
	if a.Stats.Events&(pairSweepEvery-1) == 0 {
		a.evictAgedPairs(ev.Time)
	}

	a.win.Push(ev)

	// Operational fault detection: error statuses found by the agents'
	// regex scans. Snapshots are armed only for REST errors (RPC errors
	// ride along inside the snapshot) unless configured otherwise.
	if ev.Faulty() {
		a.Stats.Faults++
		mFaultsOper.Inc()
		if ev.Type == trace.RESTResponse || a.cfg.SnapshotOnRPCErrors {
			a.armSnapshot(ev, Operational, 0)
		}
	}

	// Performance fault detection: feed the paired latency to the per-API
	// level-shift detector and the operator-facing summary.
	if havePair && !ev.Faulty() {
		alarms, armPerf := a.lat.observe(ev.API, ev.Time, latency, &a.cfg)
		if alarms > 0 {
			a.Stats.PerfAlarms += uint64(alarms)
			mFaultsPerf.Add(uint64(alarms))
			if armPerf {
				a.armSnapshot(ev, Performance, latency)
			}
		}
	}
}

// LatencyDetector exposes the per-API latency detector (for experiment
// plots of the adjusted series and level shifts). With the sharded
// front-end, the detector lives on the shard that owns the API.
func (a *Analyzer) LatencyDetector(api trace.API) *tsoutliers.Detector {
	if s := a.latShard(api); s != nil {
		if d := s.lat.bank.Detector(api.String()); d != nil {
			return d
		}
	}
	return a.lat.bank.Detector(api.String())
}

// APILatency pairs an API with its latency summary.
type APILatency struct {
	API     trace.API
	Summary *stats.Summary
}

// LatencySummaries returns per-API latency summaries sorted by p95
// descending — the operator's view of the deployment's slowest APIs.
// With the sharded front-end the shards' summaries are merged in; each
// API lives on exactly one shard, but an inline summary for the same
// API can exist if events were ingested after Close stopped the shards
// (the larger count wins).
func (a *Analyzer) LatencySummaries() []APILatency {
	merged := make(map[trace.API]*stats.Summary, len(a.lat.stats))
	for api, sum := range a.lat.stats {
		merged[api] = sum
	}
	for _, s := range a.shards {
		for api, sum := range s.lat.stats {
			if prev, ok := merged[api]; !ok || sum.Count() > prev.Count() {
				merged[api] = sum
			}
		}
	}
	out := make([]APILatency, 0, len(merged))
	for api, sum := range merged {
		out = append(out, APILatency{api, sum})
	}
	sort.Slice(out, func(i, j int) bool {
		qi, qj := out[i].Summary.Quantile(0.95), out[j].Summary.Quantile(0.95)
		if qi != qj {
			return qi > qj
		}
		return out[i].API.String() < out[j].API.String()
	})
	return out
}

// Flush forces any armed snapshots to fire with the data already in the
// window, then drains the detection pipeline — called at end of stream.
// Once Flush returns, Reports and Stats reflect every fault ingested so
// far.
func (a *Analyzer) Flush() {
	a.win.Flush()
	if a.jobs != nil {
		a.inFlight.Wait()
	}
}

// NodeGap tells the analyzer the monitoring feed from node lost data —
// a frame-sequence gap (missing counts the lost frames) or the agent
// going dark entirely (missing 0). The analyzer flushes pairing state
// waiting on responses from that node (the responses may never come,
// and a latency computed across the gap would be fiction) and marks the
// node degraded: reports produced until NodeRecovered carry it in
// DegradedNodes. Call from the ingest goroutine, like Ingest.
func (a *Analyzer) NodeGap(node string, missing uint64, at time.Time) {
	a.Stats.NodeGaps++
	a.Stats.FramesMissed += missing
	mNodeGaps.Inc()
	a.degraded[node] = at
	var flushed uint64
	for k, p := range a.pending {
		if p.node == node {
			delete(a.pending, k)
			flushed++
		}
	}
	for k, p := range a.calls {
		if p.node == node {
			delete(a.calls, k)
			flushed++
		}
	}
	// Shard pairing maps are safe to touch here: IngestBatch is
	// synchronous, so no shard worker is running between calls, and the
	// next batch's channel send orders these writes before its reads.
	for _, s := range a.shards {
		for k, p := range s.pending {
			if p.node == node {
				delete(s.pending, k)
				flushed++
			}
		}
		for k, p := range s.calls {
			if p.node == node {
				delete(s.calls, k)
				flushed++
			}
		}
	}
	if flushed > 0 {
		a.Stats.PairsFlushed += flushed
		mPairsFlushed.Add(flushed)
		telemetry.LogFirst("core.nodegap",
			"core: monitoring gap on %s (%d frames missing): flushed %d pending pairs", node, missing, flushed)
	}
}

// NodeRecovered clears a node's degraded mark after its agent provably
// returned (the transport saw fresh frames from it).
func (a *Analyzer) NodeRecovered(node string) {
	delete(a.degraded, node)
}

// degradedList snapshots the degraded node set, sorted for determinism;
// nil when the monitoring plane is healthy, so healthy-plane reports
// are byte-identical to runs without degradation tracking.
func (a *Analyzer) degradedList() []string {
	if len(a.degraded) == 0 {
		return nil
	}
	nodes := make([]string, 0, len(a.degraded))
	for n := range a.degraded {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

func (a *Analyzer) armSnapshot(ev trace.Event, kind FaultKind, latency time.Duration) {
	a.Stats.Snapshots++
	a.win.Arm(func(snap *window.Snapshot) {
		a.dispatch(ev, kind, latency, snap)
	})
}

// snapPattern is a snapshot's symbol pattern, computed once per snapshot:
// syms holds the matchable symbols, evIdx maps each symbol back to its
// event index in the snapshot (the fault-centered position map), and idx
// is the occurrence index over the whole snapshot that β views re-slice.
// Growing the context buffer is O(log) per step instead of rebuilding
// pattern and index from the events each time.
type snapPattern struct {
	syms  []rune
	evIdx []int32
	idx   *fingerprint.SnapshotIndex
}

// snapshotPattern builds the pattern from snapshot events: one symbol
// per *request-side* message (responses repeat the API and would only
// duplicate symbols), skipping RPC symbols when pruning. When corrID is
// non-empty (correlation-id mode), only events stamped with it
// contribute — the precision extension of §5.3.1.
func (a *Analyzer) snapshotPattern(snap *window.Snapshot, corrID string) snapPattern {
	events := snap.Events
	syms := make([]rune, 0, len(events))
	evIdx := make([]int32, 0, len(events))
	for i := range events {
		ev := &events[i]
		if !ev.Type.Request() {
			continue
		}
		if corrID != "" && ev.CorrID != corrID {
			continue
		}
		if a.cfg.PruneRPC && ev.API.Kind == trace.RPC {
			continue
		}
		r, ok := a.lib.Table.Lookup(ev.API)
		if !ok {
			continue // API never fingerprinted: cannot help matching
		}
		syms = append(syms, r)
		evIdx = append(evIdx, int32(i))
	}
	return snapPattern{syms: syms, evIdx: evIdx, idx: fingerprint.NewSnapshotIndex(syms)}
}

// view restricts the pattern to the symbols of events [lo, hi) by
// re-slicing the precomputed pattern and index — no rebuild.
func (p *snapPattern) view(lo, hi int) ([]rune, *fingerprint.SnapshotIndex) {
	sLo := sort.Search(len(p.evIdx), func(i int) bool { return p.evIdx[i] >= int32(lo) })
	sHi := sLo + sort.Search(len(p.evIdx)-sLo, func(i int) bool { return p.evIdx[sLo+i] >= int32(hi) })
	return p.syms[sLo:sHi], p.idx.Slice(sLo, sHi)
}

// lean returns the fingerprint with RPC symbols pruned (cached), or the
// fingerprint itself when pruning is off. The cache key includes the
// truncation point: the same operation truncated at different offending
// APIs yields different fingerprints. Safe for concurrent detect
// workers; racing workers may both compute the same pruned fingerprint,
// but the result is identical and one copy wins.
func (a *Analyzer) lean(fp *fingerprint.Fingerprint, offending rune) *fingerprint.Fingerprint {
	if !a.cfg.PruneRPC {
		return fp
	}
	key := fp.Name + "@" + string(offending)
	if c, ok := a.leanCache.Load(key); ok {
		return c.(*fingerprint.Fingerprint)
	}
	c := fp.WithoutRPC(a.lib.Table)
	if prev, loaded := a.leanCache.LoadOrStore(key, c); loaded {
		return prev.(*fingerprint.Fingerprint)
	}
	return c
}

func (a *Analyzer) match(fp *fingerprint.Fingerprint, pattern []rune, idx *fingerprint.SnapshotIndex, corrFiltered bool) bool {
	if fp.Len() == 0 {
		return false
	}
	if a.cfg.StrictMatch {
		return fp.MatchStrict(pattern)
	}
	if corrFiltered {
		// The pattern holds one operation's own messages; require real
		// in-order evidence beyond the offending symbol alone.
		return fp.MatchCorrelated(idx)
	}
	return fp.MatchRelaxedIndexed(idx)
}

// detect runs Algorithm 2 over a filled snapshot and returns the report.
// It reads only immutable analyzer state (config, library, lean cache)
// plus the snapshot, so concurrent detect workers may run it in
// parallel; all mutable bookkeeping happens in finish. traceID is
// nonzero only in explain mode, in which case detect also assembles the
// report's evidence trace (explain.go) — here on the worker, never on
// the ingest path.
func (a *Analyzer) detect(faultEv trace.Event, kind FaultKind, latency time.Duration, snap *window.Snapshot, traceID uint64) *Report {
	mDetectAttempts.Inc()
	span := hWindowMatch.Start()
	rep := &Report{
		Kind:       kind,
		Fault:      faultEv,
		Latency:    latency,
		DetectedAt: snap.Events[len(snap.Events)-1].Time,
		TruthOp:    faultEv.OpName,
	}
	rep.ReportDelay = rep.DetectedAt.Sub(faultEv.Time)
	if traceID != 0 {
		rep.TraceID = traceID
		rep.evidence = a.newEvidence(traceID, faultEv, kind, latency, snap)
	}

	// Gather every error message in the snapshot (REST and RPC are
	// analyzed together, §5.3.1); the earliest is the most upstream
	// manifestation and selects the offending API.
	offending := faultEv.API
	if kind == Operational {
		for i := range snap.Events {
			ev := &snap.Events[i]
			if ev.Faulty() {
				rep.Errors = append(rep.Errors, *ev)
			}
		}
		if len(rep.Errors) > 0 {
			first := rep.Errors[0]
			if first.OpID == faultEv.OpID && !first.API.Zero() {
				offending = first.API
			}
		}
	}
	rep.OffendingAPI = offending

	// Candidate operations: fingerprints containing the offending API
	// (distinct operation names; branched operations register one
	// fingerprint per variant).
	cands := a.lib.CandidatesForAPI(offending)
	uniqueNames := map[string]bool{}
	for _, c := range cands {
		uniqueNames[c.Name] = true
	}
	rep.CandidatesByErrorOnly = len(uniqueNames)
	if len(cands) == 0 {
		rep.Precision = 0
		if rep.evidence != nil {
			// No fingerprint contains the offending API: the whole window
			// is the evidence for the empty verdict.
			recordErrors(rep.evidence, rep.Errors)
			a.finalizeEvidence(rep.evidence, rep, snap.Events)
		}
		span.End()
		return rep
	}
	offSym, _ := a.lib.Table.Lookup(offending)

	// Prepare the per-candidate patterns: operational faults match the
	// truncated fingerprint (the operation stopped at the fault);
	// performance faults match the whole fingerprint against the whole
	// buffer (the operation proceeds to completion).
	preps := make([]prepared, 0, len(cands))
	for _, c := range cands {
		fp := c
		key := rune(0)
		truncated := false
		if kind == Operational {
			if t := c.Truncate(offSym); t != nil {
				fp = t
				key = offSym
				truncated = true
			}
		}
		fp = a.lean(fp, key)
		preps = append(preps, prepared{c.Name, fp, truncated})
	}

	var matched []string
	var beta int
	corrID := ""
	if a.cfg.UseCorrelationIDs {
		corrID = faultEv.CorrID
	}
	pat := a.snapshotPattern(snap, corrID)
	if rep.evidence != nil {
		rep.evidence.CorrID = corrID
		recordErrors(rep.evidence, rep.Errors)
	}
	if kind == Performance {
		beta = a.cfg.Alpha
		for _, p := range preps {
			if a.match(p.fp, pat.syms, pat.idx, corrID != "") {
				matched = append(matched, p.name)
			}
		}
		if rep.evidence != nil {
			// No growth loop for performance faults: the whole window is
			// matched at once.
			rep.evidence.Growth = []tracestore.GrowthStep{{
				Beta: beta, Lo: 0, Hi: len(snap.Events),
				Pattern: len(pat.syms), Matched: append([]string(nil), matched...),
				Covered: true,
			}}
		}
	} else {
		matched, beta = a.growContext(snap, preps, &pat, corrID, rep.evidence)
	}

	rep.Candidates = matched
	rep.Beta = beta
	n := len(matched)
	N := a.cfg.TotalOps
	if N > 1 {
		rep.Precision = float64(N-n) / float64(N-1)
	} else {
		rep.Precision = 1
	}
	if rep.evidence != nil {
		// Explain every candidate against the FINAL context buffer —
		// exactly the view the verdict came from.
		var pattern []rune
		var idx *fingerprint.SnapshotIndex
		ctx := snap.Events
		if kind == Performance {
			pattern, idx = pat.syms, pat.idx
		} else {
			lo, hi := snap.ContextBounds(beta)
			pattern, idx = pat.view(lo, hi)
			ctx = snap.Events[lo:hi]
		}
		a.explainCandidates(rep.evidence, preps, pattern, idx, corrID != "")
		a.finalizeEvidence(rep.evidence, rep, ctx)
	}
	span.End()
	return rep
}

// prepared pairs a candidate operation name with the (truncated, possibly
// RPC-pruned) fingerprint it is matched by.
type prepared struct {
	name      string
	fp        *fingerprint.Fingerprint
	truncated bool
}

// growContext iterates the context buffer from β₀ by δ per side, stopping
// as soon as the precision drops (the matched set grows), per §5.3.1.
// The snapshot's pattern and occurrence index were built once by the
// caller; each β step re-slices them (O(α) total instead of O(α²)).
// When ev is non-nil (explain mode) every step — including the final,
// discarded one the stop rule rejects — is recorded in the evidence.
func (a *Analyzer) growContext(snap *window.Snapshot, preps []prepared, pat *snapPattern, corrID string, ev *tracestore.Trace) ([]string, int) {
	beta0 := int(a.cfg.C1 * float64(a.cfg.Alpha))
	delta := int(a.cfg.C2 * float64(a.cfg.Alpha))
	if beta0 < 2 {
		beta0 = 2
	}
	if delta < 1 {
		delta = 1
	}
	var prev []string
	prevBeta := 0
	seen := make(map[string]bool, len(preps))
	for beta := beta0; ; beta += 2 * delta {
		lo, hi := snap.ContextBounds(beta)
		pattern, idx := pat.view(lo, hi)
		var matched []string
		clear(seen)
		for _, p := range preps {
			if !seen[p.name] && a.match(p.fp, pattern, idx, corrID != "") {
				seen[p.name] = true
				matched = append(matched, p.name)
			}
		}
		stopped := !a.cfg.GrowToCover && corrID == "" && len(prev) > 0 && len(matched) > len(prev)
		covered := snap.Covered(beta)
		if ev != nil {
			ev.Growth = append(ev.Growth, tracestore.GrowthStep{
				Beta: beta, Lo: lo, Hi: hi, Pattern: len(pattern),
				Matched: append([]string(nil), matched...),
				Stopped: stopped, Covered: covered && !stopped,
			})
		}
		if stopped {
			// Precision dropped: keep the tighter previous set.
			return prev, prevBeta
		}
		if covered {
			return matched, beta
		}
		prev, prevBeta = matched, beta
	}
}

// finish applies a completed report to the analyzer's mutable state —
// stats, report log, RCA, the OnReport callback. In inline mode it runs
// on the receiver goroutine; with a worker pool it runs on the sequenced
// collector, which delivers reports in fault-arrival order so parallel
// detection produces byte-identical output.
func (a *Analyzer) finish(rep *Report) {
	if a.cfg.Member != "" {
		rep.Member = a.cfg.Member
	}
	if len(rep.Candidates) > 0 {
		mDetectHits.Inc()
	} else {
		mDetectMisses.Inc()
		a.Stats.FalseNegs++
	}
	if a.rcaExplain != nil {
		span := hRCA.Start()
		var rcaEv *tracestore.RCAEvidence
		rep.RootCauses, rcaEv = a.rcaExplain(rep)
		if rep.evidence != nil {
			rep.evidence.RCA = rcaEv
		}
		span.End()
	} else if a.rca != nil {
		span := hRCA.Start()
		rep.RootCauses = a.rca(rep)
		span.End()
	}
	a.Stats.Reports++
	a.Stats.MatchedTotal += uint64(len(rep.Candidates))
	a.reports = append(a.reports, rep)
	if ev := rep.evidence; ev != nil {
		// finish runs in fault-arrival order in both inline and pooled
		// modes, so store contents and eviction order are deterministic.
		for _, rc := range rep.RootCauses {
			ev.RootCauses = append(ev.RootCauses, rc.String())
		}
		ev.DegradedNodes = rep.DegradedNodes
		if a.explain != nil {
			a.explain.Put(ev)
		}
		rep.evidence = nil
	}
	if a.onReport != nil {
		a.onReport(rep)
	}
}
