package core

import (
	"reflect"
	"testing"
	"time"

	"gretel/internal/trace"
	"gretel/internal/tracestore"
)

// driveFaulty pushes a deterministic multi-fault stream through an
// analyzer and closes it: 30 rounds of a failing op-a run interleaved
// with a failing op-c request, with background filler so every snapshot
// fills mid-stream.
func driveFaulty(cfg Config) *Analyzer {
	return driveFaultyExplain(cfg, nil)
}

// driveFaultyExplain is driveFaulty with an evidence-trace store
// installed when non-nil (explain mode).
func driveFaultyExplain(cfg Config, store *tracestore.Store) *Analyzer {
	a := newAnalyzer(cfg)
	a.SetExplain(store)
	faultyScript(&stream{a: a})
	a.Close()
	return a
}

// faultyScript plays the shared multi-fault stream into a stream
// helper — also recorded as a plain event slice by the shard tests.
func faultyScript(s *stream) {
	for i := 0; i < 30; i++ {
		id := uint64(i * 10)
		s.rest(get("/list"), 200, id+1, "op-a")
		s.rest(post("/a1"), 200, id+1, "op-a")
		s.rpcCall(rpc("build"), false, id+1, "op-a")
		s.rest(post("/a2"), 500, id+1, "op-a") // fault
		s.filler(3)
		s.rest(post("/c1"), 409, id+2, "op-c") // second fault
		s.filler(10)
	}
	s.filler(40)
}

// TestParallelMatchesInlineReports is the determinism contract of the
// concurrent pipeline: the same faulty stream through inline detection
// (DetectWorkers: 0) and a worker pool must produce identical reports —
// candidates, β, θ — in identical (fault-arrival) order. Run under
// -race this also exercises the receiver/worker/collector sharing.
func TestParallelMatchesInlineReports(t *testing.T) {
	inline := driveFaulty(Config{Alpha: 32})
	// A tiny backlog forces the receiver through the blocking
	// backpressure path as well.
	parallel := driveFaulty(Config{Alpha: 32, DetectWorkers: 4, DetectBacklog: 2})

	ri, rp := inline.Reports(), parallel.Reports()
	if len(ri) == 0 {
		t.Fatal("no reports produced")
	}
	if len(ri) != len(rp) {
		t.Fatalf("report counts differ: inline=%d parallel=%d", len(ri), len(rp))
	}
	for i := range ri {
		if !reflect.DeepEqual(*ri[i], *rp[i]) {
			t.Fatalf("report %d differs:\ninline:   %+v\nparallel: %+v", i, *ri[i], *rp[i])
		}
	}
	if inline.Stats != parallel.Stats {
		t.Fatalf("stats differ:\ninline:   %+v\nparallel: %+v", inline.Stats, parallel.Stats)
	}
}

// TestParallelReportCallbackOrder asserts the OnReport callback also
// observes fault-arrival order under a worker pool.
func TestParallelReportCallbackOrder(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32, DetectWorkers: 4})
	var seen []time.Time
	a.OnReport(func(r *Report) { seen = append(seen, r.Fault.Time) })
	s := &stream{a: a}
	for i := 0; i < 20; i++ {
		s.rest(post("/a2"), 500, uint64(i+1), "op-a")
		s.filler(8)
	}
	s.filler(20)
	a.Close()
	if len(seen) != len(a.Reports()) || len(seen) == 0 {
		t.Fatalf("callback fired %d times, reports %d", len(seen), len(a.Reports()))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Before(seen[i-1]) {
			t.Fatalf("reports out of fault order at %d: %v after %v", i, seen[i], seen[i-1])
		}
	}
}

// TestDetectShed wedges the collector behind a blocking RCA hook so the
// bounded pipeline fills, and asserts the receiver sheds instead of
// stalling, with every armed snapshot accounted for as either a report
// or a shed.
func TestDetectShed(t *testing.T) {
	block := make(chan struct{})
	a := newAnalyzer(Config{Alpha: 16, DetectWorkers: 1, DetectBacklog: 1, DetectShed: true})
	a.SetRCA(func(r *Report) []RootCause {
		<-block
		return nil
	})
	s := &stream{a: a}
	for i := 0; i < 500 && a.Stats.SnapshotsShed == 0; i++ {
		s.rest(post("/a2"), 500, uint64(i+1), "op-a")
		s.filler(10)
	}
	if a.Stats.SnapshotsShed == 0 {
		t.Fatal("pipeline never shed despite a blocked collector")
	}
	close(block)
	a.Close()
	if a.Stats.Reports == 0 {
		t.Fatal("everything shed; expected the drained jobs to report")
	}
	if got := a.Stats.Reports + a.Stats.SnapshotsShed; got != a.Stats.Snapshots {
		t.Fatalf("reports(%d) + shed(%d) = %d, want snapshots(%d)",
			a.Stats.Reports, a.Stats.SnapshotsShed, got, a.Stats.Snapshots)
	}
}

// TestPairEvictionSizeCap floods the analyzer with requests whose
// responses never arrive and asserts the pairing maps stay bounded.
func TestPairEvictionSizeCap(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16, MaxPairs: 64, PairTTL: -1})
	for i := 1; i <= 300; i++ {
		a.Ingest(trace.Event{Time: at(i * 10), Type: trace.RESTRequest, API: get("/x"), ConnID: uint64(i)})
	}
	if len(a.pending) > 64 {
		t.Fatalf("pending grew to %d despite MaxPairs=64", len(a.pending))
	}
	for i := 1; i <= 300; i++ {
		a.Ingest(trace.Event{Time: at(3000 + i*10), Type: trace.RPCCall, API: rpc("build"), MsgID: "m" + itoa(i)})
	}
	if len(a.calls) > 64 {
		t.Fatalf("calls grew to %d despite MaxPairs=64", len(a.calls))
	}
	if a.Stats.PairsEvicted == 0 {
		t.Fatal("no evictions counted")
	}
}

// TestPairEvictionTTL ages out request-side state past PairTTL while
// keeping fresh requests pairable.
func TestPairEvictionTTL(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16, PairTTL: time.Second, MaxPairs: -1})
	const n = 5000 // > pairSweepEvery so the amortized sweep triggers
	for i := 1; i <= n; i++ {
		a.Ingest(trace.Event{Time: at(i * 10), Type: trace.RESTRequest, API: get("/x"), ConnID: uint64(i)})
	}
	if a.Stats.PairsEvicted == 0 {
		t.Fatal("TTL sweep never evicted")
	}
	if len(a.pending) >= n {
		t.Fatalf("pending holds all %d requests", len(a.pending))
	}
	// The most recent request still pairs with its response.
	a.Ingest(trace.Event{Time: at(n*10 + 5), Type: trace.RESTResponse, API: get("/x"), Status: 200, ConnID: uint64(n)})
	if a.Stats.RESTPairs != 1 {
		t.Fatalf("recent request did not pair: RESTPairs=%d", a.Stats.RESTPairs)
	}
	// A response for an evicted request is simply unmatched.
	a.Ingest(trace.Event{Time: at(n*10 + 6), Type: trace.RESTResponse, API: get("/x"), Status: 200, ConnID: 1})
	if a.Stats.RESTPairs != 1 {
		t.Fatalf("evicted request paired anyway: RESTPairs=%d", a.Stats.RESTPairs)
	}
}
