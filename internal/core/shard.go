// Sharded, batched ingest front-end: IngestBatch partitions the keyed
// per-event state — request/response pairing maps, per-API latency
// summaries and level-shift detectors, TTL/cap eviction — across N
// shards (Config.IngestShards) and fans a batch out to per-shard
// workers. Shard outputs are re-sequenced by event order before the
// global dual window and the detection stage, so Algorithm 2 sees
// exactly the arrival-order stream the classic inline path feeds it:
// reports and explain-mode evidence traces are byte-identical across
// shard counts.
//
// Two phases per batch, each closed by a barrier:
//
//	A (pairing)  — events route to shards by pairing key (REST: ConnID,
//	               RPC: MsgID), so a request and its response always
//	               meet on the same shard, in event order. Each shard
//	               writes {latency, havePair} into a disjoint slot of
//	               the outcomes array.
//	B (latency)  — paired non-faulty responses route to shards by API,
//	               so each API's summary and level-shift detector see
//	               their observations whole and in event order — the
//	               property that keeps perf alarms (and hence reports)
//	               identical across shard counts.
//
// The spine then applies outcomes in original event order: pair
// counters, window pushes, fault checks, snapshot arming. IngestBatch
// is synchronous — both barriers resolve before it returns — so state
// reads between calls (Stats, LatencySummaries, NodeGap) need no
// locks, and parallelism exists only within a batch.
//
// Eviction stays deterministic in the sense the tests pin: TTL and cap
// eviction only ever drop request-side entries whose response has not
// arrived. Whenever responses arrive within PairTTL and the maps stay
// under MaxPairs, no entry an outcome depends on is evicted, so reports
// are byte-identical across shard counts even though per-shard caps
// (ceil(MaxPairs/N)) trip at different fill levels.
package core

import (
	"fmt"
	"sync"
	"time"

	"gretel/internal/stats"
	"gretel/internal/telemetry"
	"gretel/internal/trace"
	"gretel/internal/tsoutliers"
)

var (
	mIngestBatches = telemetry.GetCounter("core.ingest_batches")
	gShardQueue    = telemetry.GetGauge("core.shard_queue_depth")
)

// latTrack bundles the per-API latency state one owner (the inline
// analyzer or one ingest shard) mutates: operator-facing summaries, the
// level-shift detector bank, the perf-snapshot cooldown clock, and a
// cache of API string keys (api.String() allocates; the bank is keyed
// by it on every observation).
type latTrack struct {
	bank         *tsoutliers.Bank
	stats        map[trace.API]*stats.Summary
	lastPerfSnap map[trace.API]time.Time
	keys         map[trace.API]string
	// sumPool slab-allocates the per-API summaries (16 per allocation):
	// first-observation cost for a new API stays off the per-event
	// allocation profile.
	sumPool stats.Pool
}

func newLatTrack(opt tsoutliers.Options) latTrack {
	return latTrack{
		bank:         tsoutliers.NewBank(opt),
		stats:        make(map[trace.API]*stats.Summary),
		lastPerfSnap: make(map[trace.API]time.Time),
		keys:         make(map[trace.API]string),
	}
}

// key returns the cached bank key for an API.
func (l *latTrack) key(api trace.API) string {
	k, ok := l.keys[api]
	if !ok {
		k = api.String()
		l.keys[api] = k
	}
	return k
}

// due applies the per-API performance-snapshot cooldown (stamping the
// clock as a side effect, so call it only when arming is otherwise
// warranted).
func (l *latTrack) due(api trace.API, at time.Time, cooldown time.Duration) bool {
	if cooldown < 0 {
		return true
	}
	if last, ok := l.lastPerfSnap[api]; ok && at.Sub(last) < cooldown {
		return false
	}
	l.lastPerfSnap[api] = at
	return true
}

// observe feeds one paired latency to the API's summary and level-shift
// detector, returning the alarm count and whether a performance
// snapshot should be armed — the same checks, in the same
// short-circuit order, as the classic inline path.
func (l *latTrack) observe(api trace.API, at time.Time, latency time.Duration, cfg *Config) (alarms int, armPerf bool) {
	sum := l.stats[api]
	if sum == nil {
		sum = l.sumPool.Get()
		l.stats[api] = sum
	}
	sum.Observe(latency.Seconds())
	hits := l.bank.Observe(l.key(api), at, latency.Seconds())
	if len(hits) == 0 {
		return 0, false
	}
	return len(hits), cfg.PerfDetection && l.due(api, at, cfg.PerfCooldown)
}

// ingestOutcome is one event's phase results, written by at most one
// shard per phase into its own slot — disjoint indices, no locks.
type ingestOutcome struct {
	latency  time.Duration
	alarms   uint16
	havePair bool
	armPerf  bool
}

// ingestShard owns one partition of the pairing maps and per-API
// latency state. Its worker goroutine runs the closures the spine
// sends on work; all shard state is touched only inside them (or by
// the spine between barriers, which the WaitGroup orders).
type ingestShard struct {
	pending map[uint64]pendingReq // REST pairing by connection
	calls   map[string]pendingReq // RPC pairing by message id
	lat     latTrack
	// maxPairs is this shard's slice of Config.MaxPairs
	// (ceil(MaxPairs/N); non-positive disables the cap, like inline).
	maxPairs int
	// evicted counts TTL/cap evictions in the current batch; the spine
	// zeroes it before phase A and folds it into Stats after the barrier.
	evicted uint64
	work    chan func()
	spans   *telemetry.Histogram
}

// startShards brings up the ingest shards and their workers.
func (a *Analyzer) startShards(n int) {
	perShard := a.cfg.MaxPairs
	if perShard > 0 {
		perShard = (perShard + n - 1) / n
	}
	a.shards = make([]*ingestShard, n)
	a.pairIdx = make([][]int32, n)
	a.latIdx = make([][]int32, n)
	for i := range a.shards {
		s := &ingestShard{
			pending:  make(map[uint64]pendingReq),
			calls:    make(map[string]pendingReq),
			lat:      newLatTrack(a.cfg.Latency),
			maxPairs: perShard,
			work:     make(chan func(), 1),
			spans:    telemetry.GetHistogram(fmt.Sprintf("core.ingest.shard%d", i)),
		}
		a.shards[i] = s
		a.shardsWG.Add(1)
		go s.run(&a.shardsWG)
	}
}

func (s *ingestShard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for fn := range s.work {
		sp := s.spans.Start()
		fn()
		sp.End()
		gShardQueue.Add(-1)
	}
}

// stopShards stops the shard workers. Shard state stays readable
// (LatencySummaries, LatencyDetector); later Ingest calls fall back to
// the inline maps.
func (a *Analyzer) stopShards() {
	if a.shards == nil || a.shardsOff {
		return
	}
	for _, s := range a.shards {
		close(s.work)
	}
	a.shardsWG.Wait()
	a.shardsOff = true
}

// pairBatch runs phase A for this shard's slice of the batch: the same
// pairing switch as the inline path, over this shard's maps, writing
// outcomes into disjoint slots.
func (s *ingestShard) pairBatch(batch []trace.Event, idxs []int32, out []ingestOutcome) {
	for _, i := range idxs {
		ev := &batch[i]
		switch ev.Type {
		case trace.RESTRequest:
			s.evicted += capPairs(s.pending, s.maxPairs)
			s.pending[ev.ConnID] = pendingReq{ev.Time, ev.API, ev.Seq, ev.DstNode}
		case trace.RESTResponse:
			if req, ok := s.pending[ev.ConnID]; ok {
				delete(s.pending, ev.ConnID)
				out[i].latency = ev.Time.Sub(req.at)
				out[i].havePair = true
			}
		case trace.RPCCall:
			if ev.MsgID != "" {
				s.evicted += capPairs(s.calls, s.maxPairs)
				s.calls[ev.MsgID] = pendingReq{ev.Time, ev.API, ev.Seq, ev.DstNode}
			}
		case trace.RPCReply:
			if req, ok := s.calls[ev.MsgID]; ok {
				delete(s.calls, ev.MsgID)
				out[i].latency = ev.Time.Sub(req.at)
				out[i].havePair = true
			}
		}
	}
}

// latBatch runs phase B for this shard's slice: per-API latency
// observation for paired non-faulty responses, in event order.
func (s *ingestShard) latBatch(batch []trace.Event, idxs []int32, out []ingestOutcome, cfg *Config) {
	for _, i := range idxs {
		ev := &batch[i]
		alarms, armPerf := s.lat.observe(ev.API, ev.Time, out[i].latency, cfg)
		out[i].alarms = uint16(alarms)
		out[i].armPerf = armPerf
	}
}

// IngestBatch processes a batch of events through the sharded
// front-end. Like Ingest it must be called from a single goroutine;
// without shards (or after Close stopped them) it degrades to a plain
// Ingest loop. The batch slice is not retained.
func (a *Analyzer) IngestBatch(evs []trace.Event) {
	if len(evs) == 0 {
		return
	}
	if a.capture != nil && !a.capturing {
		a.capturing = true
		defer a.endCapture()
		a.captureEvents(evs)
	}
	if a.shards == nil || a.shardsOff {
		for _, ev := range evs {
			a.Ingest(ev)
		}
		return
	}
	mIngestBatches.Inc()
	n := len(evs)
	if cap(a.batchBuf) < n {
		a.batchBuf = make([]trace.Event, n)
		a.outcomes = make([]ingestOutcome, n)
	}
	batch := a.batchBuf[:n]
	copy(batch, evs)
	outs := a.outcomes[:n]
	for i := range outs {
		outs[i] = ingestOutcome{}
	}

	// Sequencing runs on the spine so Seq assignment matches the inline
	// path exactly. A pairSweepEvery boundary inside the batch schedules
	// one TTL sweep on every shard, cut off at that event's time.
	mEventsIngested.Add(uint64(n))
	var sweep bool
	var cutoff time.Time
	for i := range batch {
		a.Stats.Events++
		a.Stats.Bytes += uint64(batch[i].WireBytes)
		if batch[i].Seq == 0 {
			batch[i].Seq = a.Stats.Events
		}
		if a.cfg.PairTTL > 0 && a.Stats.Events&(pairSweepEvery-1) == 0 {
			sweep = true
			cutoff = batch[i].Time.Add(-a.cfg.PairTTL)
		}
	}

	// Phase A: partition by pairing key and fan out.
	ns := uint64(len(a.shards))
	for si := range a.pairIdx {
		a.pairIdx[si] = a.pairIdx[si][:0]
	}
	for i := range batch {
		ev := &batch[i]
		var h uint64
		switch ev.Type {
		case trace.RESTRequest, trace.RESTResponse:
			h = hashU64(ev.ConnID)
		case trace.RPCCall, trace.RPCReply:
			if ev.MsgID == "" {
				continue
			}
			h = hashString(ev.MsgID)
		default:
			continue
		}
		si := int(h % ns)
		a.pairIdx[si] = append(a.pairIdx[si], int32(i))
	}
	for si, s := range a.shards {
		s.evicted = 0
		if len(a.pairIdx[si]) == 0 && !sweep {
			continue
		}
		sh, idxs := s, a.pairIdx[si]
		a.batchWG.Add(1)
		gShardQueue.Add(1)
		sh.work <- func() {
			defer a.batchWG.Done()
			sh.pairBatch(batch, idxs, outs)
			if sweep {
				sh.evicted += agePairs(sh.pending, cutoff) + agePairs(sh.calls, cutoff)
			}
		}
	}
	a.batchWG.Wait()
	for _, s := range a.shards {
		a.Stats.PairsEvicted += s.evicted
	}

	// Phase B: partition paired non-faulty responses by API and fan out.
	for si := range a.latIdx {
		a.latIdx[si] = a.latIdx[si][:0]
	}
	for i := range batch {
		if outs[i].havePair && !batch[i].Faulty() {
			si := int(hashAPI(batch[i].API) % ns)
			a.latIdx[si] = append(a.latIdx[si], int32(i))
		}
	}
	for si, s := range a.shards {
		if len(a.latIdx[si]) == 0 {
			continue
		}
		sh, idxs := s, a.latIdx[si]
		a.batchWG.Add(1)
		gShardQueue.Add(1)
		sh.work <- func() {
			defer a.batchWG.Done()
			sh.latBatch(batch, idxs, outs, &a.cfg)
		}
	}
	a.batchWG.Wait()

	// Spine: apply outcomes in original event order — the exact
	// sequencing the inline path feeds the window and detection stage.
	for i := range batch {
		ev := batch[i]
		o := &outs[i]
		if o.havePair {
			switch ev.Type {
			case trace.RESTResponse:
				a.Stats.RESTPairs++
				mRESTPairs.Inc()
			case trace.RPCReply:
				a.Stats.RPCPairs++
				mRPCPairs.Inc()
			}
		}
		a.win.Push(ev)
		if ev.Faulty() {
			a.Stats.Faults++
			mFaultsOper.Inc()
			if ev.Type == trace.RESTResponse || a.cfg.SnapshotOnRPCErrors {
				a.armSnapshot(ev, Operational, 0)
			}
		}
		if o.alarms > 0 {
			a.Stats.PerfAlarms += uint64(o.alarms)
			mFaultsPerf.Add(uint64(o.alarms))
			if o.armPerf {
				a.armSnapshot(ev, Performance, o.latency)
			}
		}
	}
}

// hashU64 mixes a ConnID into a shard hash (splitmix64 finalizer) —
// stable across runs, unlike map iteration, so shard routing is
// deterministic.
func hashU64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashString hashes an RPC MsgID (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// hashAPI hashes an API identity for phase-B routing — the same
// function LatencyDetector uses to find the owning shard.
func hashAPI(api trace.API) uint64 {
	h := uint64(fnvOffset)
	h ^= uint64(api.Service)
	h *= fnvPrime
	h ^= uint64(api.Kind)
	h *= fnvPrime
	for i := 0; i < len(api.Method); i++ {
		h ^= uint64(api.Method[i])
		h *= fnvPrime
	}
	h ^= 0xff // separator: Method/Path boundary must shift the hash
	h *= fnvPrime
	for i := 0; i < len(api.Path); i++ {
		h ^= uint64(api.Path[i])
		h *= fnvPrime
	}
	return h
}

// latShard returns the shard owning an API's latency state, or nil in
// inline mode.
func (a *Analyzer) latShard(api trace.API) *ingestShard {
	if a.shards == nil {
		return nil
	}
	return a.shards[int(hashAPI(api)%uint64(len(a.shards)))]
}
